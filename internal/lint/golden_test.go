package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"testing"
)

// wantRe extracts the expectation from a trailing `// want `+"`regex`"+`` comment.
var wantRe = regexp.MustCompile("// want `([^`]+)`")

type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// parseWants scans every fixture file for `// want` comments and returns
// one expectation per comment, anchored to the comment's own line.
func parseWants(t *testing.T, dir string) []*want {
	t.Helper()
	entries, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		t.Fatalf("glob %s: %v", dir, err)
	}
	sort.Strings(entries)
	var wants []*want
	for _, path := range entries {
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("open %s: %v", path, err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRe.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", path, line, m[1], err)
			}
			wants = append(wants, &want{file: path, line: line, re: re})
		}
		if err := sc.Err(); err != nil {
			t.Fatalf("scan %s: %v", path, err)
		}
		if err := f.Close(); err != nil {
			t.Fatalf("close %s: %v", path, err)
		}
	}
	if len(wants) == 0 {
		t.Fatalf("no // want comments found under %s", dir)
	}
	return wants
}

// runGolden typechecks one fixture directory under asPath, runs exactly one
// analyzer over it, and matches findings against the // want expectations in
// both directions: every finding must be wanted, every want must be found.
func runGolden(t *testing.T, analyzer, asPath string) {
	t.Helper()
	a := ByName(analyzer)
	if a == nil {
		t.Fatalf("no analyzer named %q", analyzer)
	}
	dir := filepath.Join("testdata", "src", analyzer)
	pkg, err := LoadDir(dir, asPath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	wants := parseWants(t, dir)
	findings := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if w.hit || filepath.Clean(w.file) != filepath.Clean(f.File) || w.line != f.Line {
				continue
			}
			if w.re.MatchString(f.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no finding matched want `%s`", w.file, w.line, w.re)
		}
	}
}

func TestGoldenNoPanic(t *testing.T) {
	runGolden(t, "nopanic", "repro/internal/nptest")
}

func TestGoldenCtxFlow(t *testing.T) {
	runGolden(t, "ctxflow", "repro/internal/ctxtest")
}

func TestGoldenErrDiscard(t *testing.T) {
	runGolden(t, "errdiscard", "repro/internal/edtest")
}

func TestGoldenDetRand(t *testing.T) {
	runGolden(t, "detrand", "repro/internal/qc/drtest")
}

func TestGoldenCtxSleep(t *testing.T) {
	runGolden(t, "ctxsleep", "repro/internal/cstest")
}

func TestGoldenGeomBounds(t *testing.T) {
	runGolden(t, "geombounds", "repro/internal/gbtest")
}

func TestGoldenDocComment(t *testing.T) {
	runGolden(t, "doccomment", "repro/internal/dctest")
}

// TestSuppressionMalformed checks that a directive missing its reason is
// itself reported under the "lint" pseudo-analyzer rather than silently
// swallowing findings.
func TestSuppressionMalformed(t *testing.T) {
	dir := t.TempDir()
	src := `package badpkg

func f() {
	//lint:ignore nopanic
	panic("still reported")
}
`
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(dir, "repro/internal/badtest")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	findings := RunAnalyzers([]*Package{pkg}, []*Analyzer{ByName("nopanic")})
	var gotMalformed, gotPanic bool
	for _, f := range findings {
		switch f.Analyzer {
		case "lint":
			gotMalformed = true
		case "nopanic":
			gotPanic = true
		}
	}
	if !gotMalformed {
		t.Errorf("malformed directive not reported: %v", findings)
	}
	if !gotPanic {
		t.Errorf("malformed directive suppressed the panic finding: %v", findings)
	}
}

// TestFindingString pins the human-readable output format the CLI prints.
func TestFindingString(t *testing.T) {
	f := Finding{Analyzer: "nopanic", Message: "call to panic", File: "a/b.go", Line: 7, Col: 3}
	got := f.String()
	expect := fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
	if got != expect {
		t.Errorf("Finding.String() = %q, want %q", got, expect)
	}
}
