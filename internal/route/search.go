package route

// search.go holds the A* search kernels: a concrete-typed 4-ary heap (no
// container/heap interface boxing — the old implementation spent ~87% of
// all routing allocations boxing pqItems), a pooled generation-stamped
// search state shared by the dense (flat-array) and sparse (hash-map)
// cell-indexing modes, the unidirectional multi-source/multi-target
// kernel, and the bidirectional meet-in-the-middle kernel used for
// single-start/single-target nets.

import (
	"math"
	"sync"

	"repro/internal/bridge"
	"repro/internal/geom"
)

// pqItem is an A* frontier entry. f is the priority (g + heuristic), g the
// cost from the seed set, and key the settled cell's cellLess rank within
// the search region (see searchState.key). The rank is invertible, so the
// cell itself is not stored: 24-byte entries halve the memory the heap
// sifts move, and (f, g) ties — the overwhelmingly common case while no
// congestion history has accrued and every cost is a small integer — are
// broken by one integer compare instead of a three-way coordinate compare.
type pqItem struct {
	f, g float64
	key  int64
}

// itemLess is the frontier order: by f, then g, then the region-local
// cellLess rank — a total order over all live and stale entries (two
// entries for the same cell always differ in g, distinct cells differ in
// key), so the pop sequence is independent of heap layout details and
// identical across runs, storage modes and schedulers.
func itemLess(a, b pqItem) bool {
	if a.f != b.f {
		return a.f < b.f
	}
	if a.g != b.g {
		return a.g < b.g
	}
	return a.key < b.key
}

// pq is a 4-ary min-heap of pqItems ordered by itemLess. It is a plain
// slice with manual sift loops: pushing and popping perform no interface
// conversions and no allocations beyond slice growth, and the backing
// array is recycled across searches by the searchState pool. The wider
// fan-out halves the tree depth versus a binary heap, trading a few
// extra in-cache sibling comparisons per level for far fewer
// cache-missing element moves — a net win on the router's large open
// lists. Because itemLess is a total order, the pop sequence is the
// same for every heap arity, so the shape never affects routing results.
type pq []pqItem

// push adds an entry and restores the heap order. The sift-up holds the
// new entry in a register and shifts ancestors down, writing it once at
// its final slot.
func (q *pq) push(it pqItem) {
	*q = append(*q, it)
	h := *q
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !itemLess(it, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = it
}

// pop removes and returns the minimum entry. The heap must be non-empty.
// The sift-down likewise shifts the smallest child up each level and
// writes the displaced last entry once at the hole's final position.
func (q *pq) pop() pqItem {
	h := *q
	top := h[0]
	last := len(h) - 1
	it := h[last]
	h = h[:last]
	*q = h
	i := 0
	for {
		c := 4*i + 1
		if c >= last {
			break
		}
		end := c + 4
		if end > last {
			end = last
		}
		m := c
		for j := c + 1; j < end; j++ {
			if itemLess(h[j], h[m]) {
				m = j
			}
		}
		if !itemLess(h[m], it) {
			break
		}
		h[i] = h[m]
		i = m
	}
	if last > 0 {
		h[i] = it
	}
	return top
}

// cellLess orders cells by (Z, Y, X); the router's deterministic
// tie-breaker wherever an arbitrary-but-reproducible cell choice is
// needed.
func cellLess(a, b geom.Point) bool {
	if a.Z != b.Z {
		return a.Z < b.Z
	}
	if a.Y != b.Y {
		return a.Y < b.Y
	}
	return a.X < b.X
}

// boxDistance returns the Manhattan distance from c to box b — the A*
// heuristic for a multi-target search (admissible: every target lies in
// the targets' bounding box).
func boxDistance(c geom.Point, b geom.Box) float64 {
	d := 0
	if c.X < b.Min.X {
		d += b.Min.X - c.X
	} else if c.X >= b.Max.X {
		d += c.X - (b.Max.X - 1)
	}
	if c.Y < b.Min.Y {
		d += b.Min.Y - c.Y
	} else if c.Y >= b.Max.Y {
		d += c.Y - (b.Max.Y - 1)
	}
	if c.Z < b.Min.Z {
		d += b.Min.Z - c.Z
	} else if c.Z >= b.Max.Z {
		d += c.Z - (b.Max.Z - 1)
	}
	return float64(d)
}

// searchState is the pooled per-search A* state: g-scores, parent links, a
// visited stamp and a target-membership stamp per cell slot, plus the open
// heap. Slots are region-local: in dense mode (region volume within
// denseSearchLimit) the slot of a cell is its cellIndexer index and the
// arrays cover the whole region; in sparse mode slots are handed out in
// discovery order through a hash map and the arrays grow on demand.
// Generation stamping makes reuse O(1): a search bumps cur instead of
// clearing the arrays, and entries stamped by earlier generations read as
// unseen. Both modes run the same kernel code, which is what guarantees
// the dense and sparse searches expand identical node sequences.
type searchState struct {
	dense bool
	idx   cellIndexer
	slotM map[geom.Point]int32 // sparse: cell -> slot
	cells []geom.Point         // sparse: slot -> cell

	// key() linearizes region cells in cellLess (Z, Y, X) order:
	// key(c) = (c.Z-kmin.Z)·kzMul + (c.Y-kmin.Y)·kyMul + (c.X-kmin.X).
	// Identical order to cellLess for every cell of the region, so pqItem
	// tie-breaking by key is exactly tie-breaking by cellLess.
	kmin         geom.Point
	kzMul, kyMul int64

	g      []float64
	parent []int32
	gen    []uint32 // visited stamp: gen[i] == cur means slot i has a g-score
	tgen   []uint32 // target stamp: tgen[i] == cur means slot i is a target
	cur    uint32
	open   pq
}

// searchPool recycles searchState buffers; one state is checked out per
// in-flight frontier (bidirectional searches take two).
var searchPool = sync.Pool{New: func() any { return &searchState{} }}

// reset prepares the state for one search over region. In dense mode the
// arrays are sized to the region volume up front; in sparse mode the slot
// map is cleared and slots are allocated as cells are first touched.
func (s *searchState) reset(region geom.Box, dense bool) {
	s.dense = dense
	s.open = s.open[:0]
	s.kmin = region.Min
	s.kyMul = int64(region.Dx())
	s.kzMul = int64(region.Dy()) * s.kyMul
	if dense {
		s.idx = newCellIndexer(region)
		if v := s.idx.volume(); v > len(s.g) {
			s.g = make([]float64, v)
			s.parent = make([]int32, v)
			s.gen = make([]uint32, v)
			s.tgen = make([]uint32, v)
			s.cur = 0
		}
	} else {
		if s.slotM == nil {
			s.slotM = map[geom.Point]int32{}
		} else {
			clear(s.slotM)
		}
		s.cells = s.cells[:0]
	}
	s.cur++
	if s.cur == 0 { // generation counter wrapped: invalidate everything
		for i := range s.gen {
			s.gen[i] = 0
			s.tgen[i] = 0
		}
		s.cur = 1
	}
}

// key returns c's cellLess rank within the search region, the integer
// tie-breaker carried by pqItems.
func (s *searchState) key(c geom.Point) int64 {
	return int64(c.Z-s.kmin.Z)*s.kzMul + int64(c.Y-s.kmin.Y)*s.kyMul + int64(c.X-s.kmin.X)
}

// cellOf inverts key. The region is never empty while a search is live
// (it contains the start cell), so both multipliers are positive.
func (s *searchState) cellOf(key int64) geom.Point {
	z := key / s.kzMul
	rem := key % s.kzMul
	return geom.Pt(s.kmin.X+int(rem%s.kyMul), s.kmin.Y+int(rem/s.kyMul), s.kmin.Z+int(z))
}

// slot returns the state slot for cell c, allocating one in sparse mode.
// c must lie inside the search region.
func (s *searchState) slot(c geom.Point) int32 {
	if s.dense {
		return int32(s.idx.index(c))
	}
	if i, ok := s.slotM[c]; ok {
		return i
	}
	i := int32(len(s.cells))
	s.slotM[c] = i
	s.cells = append(s.cells, c)
	if int(i) >= len(s.g) {
		s.g = append(s.g, 0)
		s.parent = append(s.parent, 0)
		s.gen = append(s.gen, 0)
		s.tgen = append(s.tgen, 0)
	}
	return i
}

// find returns the slot for cell c without allocating one; ok is false in
// sparse mode when c was never touched. The bidirectional kernel uses it
// to probe the opposite frontier.
func (s *searchState) find(c geom.Point) (int32, bool) {
	if s.dense {
		return int32(s.idx.index(c)), true
	}
	i, ok := s.slotM[c]
	return i, ok
}

// cellAt is the inverse of slot.
func (s *searchState) cellAt(i int32) geom.Point {
	if s.dense {
		return s.idx.point(int(i))
	}
	return s.cells[i]
}

// seen reports whether slot i has a g-score in this generation.
func (s *searchState) seen(i int32) bool { return s.gen[i] == s.cur }

// setG records g-score v and parent slot p (-1 marks a seed) for slot i in
// this generation.
func (s *searchState) setG(i int32, v float64, p int32) {
	s.gen[i] = s.cur
	s.g[i] = v
	s.parent[i] = p
}

// markTarget stamps slot i as a target cell for this generation.
func (s *searchState) markTarget(i int32) { s.tgen[i] = s.cur }

// isTarget reports whether slot i is a target cell in this generation.
func (s *searchState) isTarget(i int32) bool { return s.tgen[i] == s.cur }

// walk reconstructs the tree path from slot i back to its seed (parent -1)
// and appends the cells to dst in walk order (i first).
func (s *searchState) walk(i int32, dst geom.Path) geom.Path {
	for ; i >= 0; i = s.parent[i] {
		dst = append(dst, s.cellAt(i))
	}
	return dst
}

// passable reports whether net n may occupy the already-fetched cell state
// (net owner, pin owner, static flag as returned by grid.cellState).
func passable(n bridge.Net, net, pin int32, static bool) bool {
	if static {
		return false
	}
	if net >= 0 && int(net) != n.ID {
		return false // another net's committed cell
	}
	if pin >= 0 && int(pin) != n.PinA && int(pin) != n.PinB {
		return false // foreign pin access cell
	}
	return true
}

// shovable reports whether a cell that failed passable may still be
// crossed by a shove-rescue search: the only violation must be another
// net's committed cell. Statics and foreign pin cells stay impassable,
// so a failed shove search proves the net is enclosed by immovable
// geometry.
func shovable(n bridge.Net, net, pin int32, static bool) bool {
	return !static &&
		(pin < 0 || int(pin) == n.PinA || int(pin) == n.PinB) &&
		net >= 0 && int(net) != n.ID
}

// astar searches a cheapest path from any start to any target within the
// region, dispatching to the bidirectional kernel for the
// single-start/single-target case (when enabled) and the unidirectional
// kernel otherwise. Regions up to denseSearchLimit cells (all but
// degenerate whole-world rescues) index search state with flat arrays;
// larger ones fall back to a hash-map slot index. Both storage modes run
// the same kernel code and return identical paths.
func (r *router) astar(n bridge.Net, ep *netEndpoints, region geom.Box) geom.Path {
	// A region can never yield more useful expansions than it has cells.
	maxExp := r.opts.MaxExpansions
	if r.inFallback {
		// The rescue pass searches the whole world; give it more room
		// (still bounded so enclosed pins cannot wedge the router).
		maxExp *= 8
	}
	if v := region.Volume(); v < maxExp {
		maxExp = v
	}
	if r.shove {
		// Crossing penalties create cost plateaus that relax cells several
		// times each, so a volume-clamped budget is too tight for the
		// rescue search.
		maxExp *= 4
	}
	dense := region.Volume() <= denseSearchLimit
	starts := filterRegion(ep.starts, region)
	targets := filterRegion(ep.targets, region)
	if len(starts) == 0 || len(targets) == 0 {
		return nil
	}
	// Shove searches always run unidirectionally: the bidirectional cost
	// model has no notion of the crossing penalty.
	if r.opts.Bidirectional && !r.shove && len(starts) == 1 && len(targets) == 1 {
		return r.astarBidi(n, starts[0], targets[0], region, dense, maxExp)
	}
	// Anchor the heuristic on the in-region targets only: out-of-region
	// friend cells are unreachable this attempt, and a larger anchor box
	// is nearer to every cell, which only weakens the bound. The filtered
	// bounding box is tighter yet still admissible.
	return r.astarUni(n, starts, targets, cellsBounds(targets), region, dense, maxExp)
}

// filterRegion returns the cells contained in region, preserving order.
// The endpoint cache keeps cells cellLess-sorted, so the filtered slice is
// too; out-of-region friend cells are simply unusable this attempt.
func filterRegion(cells []geom.Point, region geom.Box) []geom.Point {
	out := make([]geom.Point, 0, len(cells))
	for _, c := range cells {
		if region.Contains(c) {
			out = append(out, c)
		}
	}
	return out
}

// astarUni is the unidirectional multi-source/multi-target kernel: seed
// every start at g=0, pop frontier entries in itemLess order, and stop at
// the first settled target. The heuristic is the Manhattan distance to
// tbox, the bounding box of the in-region target cells (admissible:
// every reachable target lies inside it; the caller keeps it tight by
// excluding out-of-region friend cells). Targets are enterable even when
// occupied (terminating on a friend path is the Fig. 19 deformation);
// every other cell must pass the occupancy/pin/static checks — unless a
// shove rescue is underway, in which case a foreign committed cell may
// be crossed at shovePenalty. Determinism: seeds are cellLess-sorted,
// the frontier order is total, and all tie-breaks are coordinate-based.
func (r *router) astarUni(n bridge.Net, starts, targets []geom.Point, tbox geom.Box, region geom.Box, dense bool, maxExp int) geom.Path {
	s := searchPool.Get().(*searchState)
	defer searchPool.Put(s)
	s.reset(region, dense)
	for _, c := range targets {
		s.markTarget(s.slot(c))
	}
	for _, c := range starts {
		i := s.slot(c)
		s.setG(i, 0, -1)
		s.open.push(pqItem{g: 0, f: boxDistance(c, tbox), key: s.key(c)})
	}
	// Fast-path toggles, constant for the whole search: a dense world grid
	// answers "is this cell free for everyone?" with one byte, and until
	// the first rip-up charges history every step costs exactly 1. A shove
	// rescue (r.shove) may cross other nets' cells at shovePenalty each.
	gr := r.grid
	fastGrid := gr.dense
	noHist := !gr.hasHist()
	shove := r.shove
	expansions := 0
	for len(s.open) > 0 {
		cur := s.open.pop()
		cell := s.cellOf(cur.key)
		ci := s.slot(cell)
		if cur.g > s.g[ci] {
			continue // stale entry
		}
		if s.isTarget(ci) {
			return s.walk(ci, nil).Reverse()
		}
		expansions++
		if expansions > maxExp {
			return nil
		}
		if expansions%cancelCheckExpansions == 0 && r.searchCanceled() {
			return nil
		}
		for _, d := range geom.Dirs6 {
			next := cell.Step(d)
			if !region.Contains(next) {
				continue
			}
			ni := s.slot(next)
			var hist, pen float64
			if fastGrid {
				gi := gr.idx.index(next)
				// Targets are enterable even when occupied by a friend
				// path; blocked cells may still belong to this net.
				if gr.blocked[gi] != 0 && !s.isTarget(ni) {
					c := &gr.cells[gi]
					if !passable(n, c.net, c.pin, c.static) {
						if !shove || !shovable(n, c.net, c.pin, c.static) {
							continue
						}
						pen = shovePenalty
					}
				}
				if !noHist {
					hist = gr.cells[gi].hist
				}
			} else {
				net, pin, static, h := gr.cellState(next)
				// Targets are enterable even when occupied by a friend path.
				if !s.isTarget(ni) && !passable(n, net, pin, static) {
					if !shove || !shovable(n, net, pin, static) {
						continue
					}
					pen = shovePenalty
				}
				hist = h
			}
			ng := cur.g + 1 + r.opts.HistoryWeight*hist + pen
			if s.seen(ni) && ng >= s.g[ni] {
				continue
			}
			s.setG(ni, ng, ci)
			s.open.push(pqItem{g: ng, f: ng + boxDistance(next, tbox), key: s.key(next)})
		}
	}
	return nil
}

// astarBidi is the bidirectional kernel for single-start/single-target
// nets: one frontier grows from the start with the forward cost model
// (entering a cell costs 1 + HistoryWeight·hist(cell)), one from the
// target with the mirrored model (leaving toward the target charges the
// cell being left), so for any cell m the sum gf(m)+gb(m) is exactly the
// cost of the concatenated start→m→target path. Whenever either side
// relaxes a cell the other side has seen, the sum becomes a meeting
// candidate; the best candidate μ (ties broken by cellLess on the meeting
// cell) is returned once μ ≤ max(min f of either open heap), the point at
// which no better meeting can exist (both heuristics are consistent).
// Which frontier expands next is itself chosen by itemLess on the two heap
// tops (forward wins ties), so the whole search is deterministic. The
// reconstructed path is simple: a shared non-meeting cell would produce a
// strictly cheaper candidate, contradicting μ's minimality.
func (r *router) astarBidi(n bridge.Net, start, target geom.Point, region geom.Box, dense bool, maxExp int) geom.Path {
	sf := searchPool.Get().(*searchState)
	sb := searchPool.Get().(*searchState)
	defer searchPool.Put(sf)
	defer searchPool.Put(sb)
	sf.reset(region, dense)
	sb.reset(region, dense)
	sbox := geom.CellBox(start)
	tbox := geom.CellBox(target)
	sf.setG(sf.slot(start), 0, -1)
	sf.open.push(pqItem{g: 0, f: boxDistance(start, tbox), key: sf.key(start)})
	sb.setG(sb.slot(target), 0, -1)
	sb.open.push(pqItem{g: 0, f: boxDistance(target, sbox), key: sb.key(target)})

	mu := math.Inf(1)
	var meet geom.Point
	// consider records a meeting candidate at cell c with path cost g.
	consider := func(c geom.Point, g float64) {
		if g < mu || (g == mu && cellLess(c, meet)) {
			mu, meet = g, c
		}
	}
	// Same fast-path toggles as the unidirectional kernel.
	gr := r.grid
	fastGrid := gr.dense
	noHist := !gr.hasHist()
	expansions := 0
	for {
		fTop, bTop := math.Inf(1), math.Inf(1)
		if len(sf.open) > 0 {
			fTop = sf.open[0].f
		}
		if len(sb.open) > 0 {
			bTop = sb.open[0].f
		}
		worst := fTop
		if bTop > worst {
			worst = bTop
		}
		if mu <= worst { // includes both-heaps-empty with mu still infinite
			break
		}
		// Expand the side whose top entry is smaller; forward on ties.
		forward := bTop == math.Inf(1) ||
			(fTop != math.Inf(1) && !itemLess(sb.open[0], sf.open[0]))
		s, o := sf, sb
		goal := target
		if !forward {
			s, o = sb, sf
			goal = start
		}
		cur := s.open.pop()
		cell := s.cellOf(cur.key)
		ci := s.slot(cell)
		if cur.g > s.g[ci] {
			continue // stale entry
		}
		expansions++
		if expansions > maxExp {
			return nil
		}
		if expansions%cancelCheckExpansions == 0 && r.searchCanceled() {
			return nil
		}
		// The backward cost model charges the cell being left (it is the
		// cell "entered" when the path is read start→target).
		var leaveCost float64
		if !forward && !noHist {
			var hist float64
			if fastGrid {
				hist = gr.cells[gr.idx.index(cell)].hist
			} else {
				_, _, _, hist = gr.cellState(cell)
			}
			leaveCost = r.opts.HistoryWeight * hist
		}
		hbox := tbox
		if !forward {
			hbox = sbox
		}
		for _, d := range geom.Dirs6 {
			next := cell.Step(d)
			if !region.Contains(next) {
				continue
			}
			var hist float64
			if fastGrid {
				gi := gr.idx.index(next)
				// Each frontier may enter its own goal cell
				// unconditionally, mirroring the unidirectional kernel's
				// seeded starts and enterable targets; other blocked
				// cells may still belong to this net.
				if gr.blocked[gi] != 0 && next != goal {
					c := &gr.cells[gi]
					if !passable(n, c.net, c.pin, c.static) {
						continue
					}
				}
				if forward && !noHist {
					hist = gr.cells[gi].hist
				}
			} else {
				net, pin, static, h := gr.cellState(next)
				// Each frontier may enter its own goal cell unconditionally.
				if next != goal && !passable(n, net, pin, static) {
					continue
				}
				hist = h
			}
			var ng float64
			if forward {
				ng = cur.g + 1 + r.opts.HistoryWeight*hist
			} else {
				ng = cur.g + 1 + leaveCost
			}
			ni := s.slot(next)
			if s.seen(ni) && ng >= s.g[ni] {
				continue
			}
			s.setG(ni, ng, ci)
			s.open.push(pqItem{g: ng, f: ng + boxDistance(next, hbox), key: s.key(next)})
			if oi, ok := o.find(next); ok && o.seen(oi) {
				consider(next, ng+o.g[oi])
			}
		}
	}
	if math.IsInf(mu, 1) {
		return nil
	}
	// Forward half start→meet, then the backward tree's meet→target tail.
	mf, _ := sf.find(meet)
	path := sf.walk(mf, nil).Reverse()
	mb, _ := sb.find(meet)
	return sb.walk(sb.parent[mb], path)
}
