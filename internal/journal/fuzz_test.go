package journal

import (
	"bytes"
	"testing"
)

// FuzzDecodeSegment feeds arbitrary bytes through the segment decoder: it
// must never panic, must report a clean prefix no longer than the input,
// and decoding the clean prefix again must reproduce exactly the same
// events (the prefix property the torn-tail truncation relies on). The
// seed corpus under testdata/fuzz is replayed by `make fuzz-seeds`.
func FuzzDecodeSegment(f *testing.F) {
	valid, err := encodeFrame(Event{Kind: KindAccepted, JobID: "a-1", Key: "k", Request: []byte(`{"bench":"x"}`)})
	if err != nil {
		f.Fatal(err)
	}
	done, err := encodeFrame(Event{Kind: KindDone, JobID: "a-1", Key: "k", Result: []byte(`{"volume":7}`), Outcome: "miss"})
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add(valid)
	f.Add(append(append([]byte{}, valid...), done...))
	f.Add(append(append([]byte{}, valid...), done[:len(done)/2]...)) // torn tail
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})                // absurd length
	// Boundary tears: a zero-length payload frame is eight zero bytes and
	// its CRC genuinely validates (CRC32 of "" is 0); checksum-valid "null"
	// and "{}" payloads decode to zero Events. None may yield a phantom.
	f.Add(append(append([]byte{}, valid...), 0, 0, 0, 0, 0, 0, 0, 0))
	f.Add(append(append([]byte{}, valid...), rawFrame([]byte("null"))...))
	f.Add(append(append([]byte{}, valid...), rawFrame([]byte("{}"))...))
	f.Fuzz(func(t *testing.T, data []byte) {
		events, clean := DecodeSegment(data)
		if clean < 0 || clean > int64(len(data)) {
			t.Fatalf("clean offset %d out of range [0,%d]", clean, len(data))
		}
		for i, ev := range events {
			if !ev.valid() {
				t.Fatalf("event %d is a phantom (empty job or unknown kind): %+v", i, ev)
			}
		}
		again, cleanAgain := DecodeSegment(data[:clean])
		if cleanAgain != clean {
			t.Fatalf("re-decode of clean prefix consumed %d, want %d", cleanAgain, clean)
		}
		if len(again) != len(events) {
			t.Fatalf("re-decode yielded %d events, want %d", len(again), len(events))
		}
		for i := range events {
			if events[i].Kind != again[i].Kind || events[i].JobID != again[i].JobID ||
				!bytes.Equal(events[i].Result, again[i].Result) || !bytes.Equal(events[i].Request, again[i].Request) {
				t.Fatalf("event %d differs across re-decode", i)
			}
		}
	})
}
