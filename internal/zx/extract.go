package zx

import "fmt"

// Circuit extraction from a simplified graph-like diagram, following the
// frontier/Gaussian-elimination scheme of Backens et al. ("There and back
// again: a circuit extraction tale"). The extractor walks from the
// outputs toward the inputs keeping one frontier spider per live wire:
// frontier phases leave as Z-phase gates, Hadamard edges between frontier
// spiders leave as CZ gates, and GF(2) row reduction of the
// frontier-to-neighbor biadjacency matrix leaves as CNOT gates, after
// which rows with a single remaining neighbor advance the frontier past
// one spider (one Hadamard gate each). Whatever remains at the end is a
// wire permutation, emitted as swaps. Gates are collected in reverse
// circuit order and reversed once at the end.
//
// Circuit-derived diagrams have gflow and the rewrite rules preserve it,
// so a round with no advanceable row should not happen; if it does (or
// any structural invariant breaks), extraction returns an error and the
// caller falls back to the unrewritten circuit.

// eop enumerates the gate alphabet the extractor emits.
type eop uint8

const (
	opZPhase eop = iota // phase gate Z^(phase/4) on wire a
	opCZ                // controlled-Z between wires a and b
	opCNOT              // CNOT, control a, target b
	opH                 // Hadamard on wire a
	opSwap              // wire swap between a and b
)

// egate is one extracted gate; phase is in π/4 units and only meaningful
// for opZPhase.
type egate struct {
	op    eop
	a, b  int
	phase int
}

// extractor carries the per-wire state of one extraction run.
type extractor struct {
	d        *diagram
	frontier []int  // frontier vertex per qubit, -1 once finished
	finished []bool // wire fully extracted
	wireIn   []int  // finished wires: input qubit feeding this output
	rev      []egate
}

// extract converts a simplified diagram into a gate list in circuit
// order. The diagram is consumed.
func extract(d *diagram) ([]egate, error) {
	n := len(d.outs)
	ex := &extractor{
		d:        d,
		frontier: make([]int, n),
		finished: make([]bool, n),
		wireIn:   make([]int, n),
	}
	for q := range ex.wireIn {
		ex.wireIn[q] = -1
		ex.frontier[q] = -1
	}
	if err := ex.normalize(); err != nil {
		return nil, err
	}
	for {
		active := ex.activeWires()
		if len(active) == 0 {
			break
		}
		ex.emitPhases(active)
		if err := ex.emitCZs(active); err != nil {
			return nil, err
		}
		progress, err := ex.eliminateAndAdvance(active)
		if err != nil {
			return nil, err
		}
		if !progress {
			return nil, fmt.Errorf("zx: extraction stuck with %d live wire(s)", len(active))
		}
	}
	ex.emitPermutation()
	// Reverse into circuit order.
	out := make([]egate, len(ex.rev))
	for i, g := range ex.rev {
		out[len(out)-1-i] = g
	}
	return out, nil
}

// normalize massages the simplified diagram into the shape the main loop
// assumes: every spider-spider and input-spider edge is a Hadamard edge
// (plain edges gain an interposed phase-0 spider, which is the inverse of
// identity removal), every output connects to its own frontier spider by
// a plain edge (an output Hadamard leaves as an H gate; direct
// input-output wires are recorded for the final permutation), and no two
// wires share a frontier spider.
func (ex *extractor) normalize() error {
	d := ex.d
	// Spider-spider plain edges -> H, dummy, H. The vertex range is
	// snapshotted by len so freshly inserted spiders (all-Hadamard by
	// construction) are not revisited.
	nv := len(d.kinds)
	for u := 0; u < nv; u++ {
		if d.kinds[u] != vZ {
			continue
		}
		for _, m := range d.neighbors(u) {
			if m < u || m >= nv || d.kinds[m] != vZ || d.edge(u, m) != ePlain {
				continue
			}
			s := d.newVertex(vZ, 0, -1)
			d.delEdge(u, m)
			d.setEdge(u, s, eHada)
			d.setEdge(s, m, eHada)
		}
	}
	// Outputs.
	for q := 0; q < len(d.outs); q++ {
		o := d.outs[q]
		if d.degree(o) != 1 {
			return fmt.Errorf("zx: output %d has degree %d", q, d.degree(o))
		}
		w := d.neighbors(o)[0]
		k := d.edge(o, w)
		if d.kinds[w] == vIn {
			if k == eHada {
				ex.rev = append(ex.rev, egate{op: opH, a: q})
			}
			ex.wireIn[q] = d.qubits[w]
			ex.finished[q] = true
			d.removeVertex(o)
			d.removeVertex(w)
			continue
		}
		if d.kinds[w] != vZ {
			return fmt.Errorf("zx: output %d connects to non-spider vertex %d", q, w)
		}
		if k == eHada {
			ex.rev = append(ex.rev, egate{op: opH, a: q})
			d.setEdge(o, w, ePlain)
		}
		ex.frontier[q] = w
	}
	// De-duplicate shared frontier spiders by splicing in a dummy pair
	// (plain, H, H composes back to the original plain wire).
	seen := map[int]bool{}
	for q := 0; q < len(d.outs); q++ {
		w := ex.frontier[q]
		if w < 0 {
			continue
		}
		if !seen[w] {
			seen[w] = true
			continue
		}
		s1 := d.newVertex(vZ, 0, -1)
		s2 := d.newVertex(vZ, 0, -1)
		d.delEdge(d.outs[q], w)
		d.setEdge(d.outs[q], s1, ePlain)
		d.setEdge(s1, s2, eHada)
		d.setEdge(s2, w, eHada)
		ex.frontier[q] = s1
	}
	// Input-spider plain edges -> H, dummy, H, so the elimination matrix
	// (which only sees Hadamard edges) covers inputs uniformly.
	for p := 0; p < len(d.ins); p++ {
		in := d.ins[p]
		if !d.alive(in) {
			continue
		}
		if d.degree(in) != 1 {
			return fmt.Errorf("zx: input %d has degree %d", p, d.degree(in))
		}
		x := d.neighbors(in)[0]
		if d.kinds[x] != vZ {
			return fmt.Errorf("zx: input %d connects to non-spider vertex %d", p, x)
		}
		if d.edge(in, x) == ePlain {
			s := d.newVertex(vZ, 0, -1)
			d.delEdge(in, x)
			d.setEdge(in, s, eHada)
			d.setEdge(s, x, eHada)
		}
	}
	return nil
}

// activeWires returns the unfinished qubit indices in ascending order.
func (ex *extractor) activeWires() []int {
	var qs []int
	for q, done := range ex.finished {
		if !done {
			qs = append(qs, q)
		}
	}
	return qs
}

// emitPhases moves every frontier spider's phase out as a Z-phase gate.
func (ex *extractor) emitPhases(active []int) {
	for _, q := range active {
		v := ex.frontier[q]
		if ph := ex.d.phases[v]; ph != 0 {
			ex.rev = append(ex.rev, egate{op: opZPhase, a: q, phase: ph})
			ex.d.phases[v] = 0
		}
	}
}

// emitCZs removes Hadamard edges between frontier spiders as CZ gates.
func (ex *extractor) emitCZs(active []int) error {
	d := ex.d
	for i := 0; i < len(active); i++ {
		for j := i + 1; j < len(active); j++ {
			u, v := ex.frontier[active[i]], ex.frontier[active[j]]
			switch d.edge(u, v) {
			case eNone:
			case eHada:
				ex.rev = append(ex.rev, egate{op: opCZ, a: active[i], b: active[j]})
				d.delEdge(u, v)
			default:
				return fmt.Errorf("zx: plain edge between frontier spiders %d and %d", u, v)
			}
		}
	}
	return nil
}

// eliminateAndAdvance builds the biadjacency matrix of frontier spiders
// versus their non-output neighbors, fully row-reduces it over GF(2)
// (each row operation leaves as a CNOT and is mirrored onto the diagram),
// then advances every row left with a single neighbor: past a spider
// (one H gate), or onto a free input (closing the wire). It reports
// whether any wire advanced or closed.
func (ex *extractor) eliminateAndAdvance(active []int) (bool, error) {
	d := ex.d
	// Columns: all non-output neighbors of the frontier, ascending.
	colSet := map[int]bool{}
	for _, q := range active {
		for _, n := range d.neighbors(ex.frontier[q]) {
			if d.kinds[n] != vOut {
				colSet[n] = true
			}
		}
	}
	cols := make([]int, 0, len(colSet))
	for c := range colSet {
		cols = append(cols, c)
	}
	insertionSort(cols)
	m := make([][]bool, len(active))
	for i, q := range active {
		m[i] = make([]bool, len(cols))
		for j, c := range cols {
			m[i][j] = d.edge(ex.frontier[q], c) != eNone
		}
	}
	// addRow: row i ^= row j; in diagram terms the frontier spider of row
	// i symmetric-differences its neighborhood with row j's, which peels
	// a CNOT with control on row i's wire and target on row j's off the
	// output side (convention verified against the simulator in
	// zx_test.go).
	addRow := func(i, j int) {
		for c, set := range m[j] {
			if set {
				d.toggleHada(ex.frontier[active[i]], cols[c])
				m[i][c] = !m[i][c]
			}
		}
		ex.rev = append(ex.rev, egate{op: opCNOT, a: active[i], b: active[j]})
	}
	r := 0
	for c := 0; c < len(cols) && r < len(active); c++ {
		pivot := -1
		for i := r; i < len(active); i++ {
			if m[i][c] {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			continue
		}
		if pivot != r {
			addRow(r, pivot) // swap-free: fold the pivot row upward
		}
		for i := 0; i < len(active); i++ {
			if i != r && m[i][c] {
				addRow(i, r)
			}
		}
		r++
	}
	progress := false
	for _, q := range active {
		v := ex.frontier[q]
		var nonOut []int
		for _, n := range d.neighbors(v) {
			if d.kinds[n] != vOut {
				nonOut = append(nonOut, n)
			}
		}
		if len(nonOut) != 1 {
			continue
		}
		w := nonOut[0]
		switch d.kinds[w] {
		case vIn:
			// Close only when the input is free; an input still
			// entangled with interior spiders resolves in a later round.
			if d.degree(w) != 1 {
				continue
			}
			ex.rev = append(ex.rev, egate{op: opH, a: q})
			ex.wireIn[q] = d.qubits[w]
			ex.finished[q] = true
			ex.frontier[q] = -1
			d.removeVertex(v)
			d.removeVertex(w)
			d.removeVertex(d.outs[q])
			progress = true
		case vZ:
			ex.rev = append(ex.rev, egate{op: opH, a: q})
			d.removeVertex(v)
			d.setEdge(d.outs[q], w, ePlain)
			ex.frontier[q] = w
			progress = true
		default:
			return false, fmt.Errorf("zx: frontier of wire %d reached unexpected vertex %d", q, w)
		}
	}
	return progress, nil
}

// emitPermutation appends the residual wire permutation as swaps. The
// swap list is built in circuit order (the permutation acts at the input
// end) and appended to rev reversed, so the final single reversal puts it
// first.
func (ex *extractor) emitPermutation() {
	n := len(ex.wireIn)
	cur := make([]int, n)
	for i := range cur {
		cur[i] = i
	}
	var swaps []egate
	for q := 0; q < n; q++ {
		if cur[q] == ex.wireIn[q] {
			continue
		}
		for r := q + 1; r < n; r++ {
			if cur[r] == ex.wireIn[q] {
				swaps = append(swaps, egate{op: opSwap, a: q, b: r})
				cur[q], cur[r] = cur[r], cur[q]
				break
			}
		}
	}
	for i := len(swaps) - 1; i >= 0; i-- {
		ex.rev = append(ex.rev, swaps[i])
	}
}
