// Package baseline reimplements the comparison flows of the paper's
// evaluation: the canonical form (no optimization) and the layout-synthesis
// approach of Lin et al. [22] with 1D and 2D qubit arrangements.
//
// Lin et al. compress only the time axis: qubit lines stay in a fixed 1D
// row (or 2D grid) arrangement, and CNOT routing patterns are packed into
// time slots by repeatedly extracting a maximum non-conflicting subset (a
// maximum-weight independent set heuristic over the conflict graph). Two
// CNOTs conflict when their routing patterns overlap:
//
//   - 1D: the dual loops occupy the interval of rows between control and
//     target — overlapping intervals conflict;
//   - 2D: the loops occupy the bounding box of control and target in the
//     grid — overlapping boxes conflict (plus a shared vertical routing
//     track per column, approximated by the box overlap test).
//
// The space axes follow [22]'s reported geometry: 1D keeps height 2 and
// widens the row to fit inter-qubit routing tracks (measured width ≈ 2.7×
// the line count in their Table IV); 2D folds lines into four double rows
// (height 8).
package baseline

import (
	"fmt"

	"repro/internal/icm"
)

// Layout summarizes a baseline layout's dimensions (W, H, D as in Table
// IV) and volume.
type Layout struct {
	Name    string
	W, H, D int
}

// Volume returns W×H×D.
func (l Layout) Volume() int { return l.W * l.H * l.D }

// TotalVolume adds the lower-bound distillation box volume (baselines do
// not integrate boxes into the layout, so Table II adds them separately).
func (l Layout) TotalVolume(boxVolume int) int { return l.Volume() + boxVolume }

// Canonical returns the canonical-form layout: one row per line, height 2,
// three time units per CNOT.
func Canonical(ic *icm.Circuit) Layout {
	return Layout{
		Name: "canonical",
		W:    len(ic.Lines),
		H:    2,
		D:    3 * len(ic.CNOTs),
	}
}

// rowSpacing1D is the per-line width multiplier of the 1D arrangement:
// each line needs flanking vertical routing tracks for the dual loops
// ([22]'s measured layouts use ≈ 2.7 tracks per line; we reserve e/w
// tracks plus the line itself).
const rowSpacing1D = 3

// Lin1D runs the 1D-arrangement depth compression: lines in identity
// order, CNOT patterns packed into slots by greedy maximal independent
// sets over interval conflicts, processed in program order (a CNOT may
// only enter a slot after every earlier CNOT sharing a line has been
// placed).
func Lin1D(ic *icm.Circuit) (Layout, error) {
	if err := ic.Validate(); err != nil {
		return Layout{}, fmt.Errorf("baseline: %w", err)
	}
	slots := scheduleIntervals(ic, func(g icm.CNOT) (int, int, int, int) {
		lo, hi := g.Control, g.Target
		if lo > hi {
			lo, hi = hi, lo
		}
		return lo, hi, 0, 0 // 1D: the second axis is unused
	})
	return Layout{
		Name: "lin-1d",
		W:    rowSpacing1D*len(ic.Lines) - (rowSpacing1D - 1),
		H:    2,
		D:    maxSlot(slots) + 1,
	}, nil
}

// grid2DRows is the number of double rows of the 2D arrangement ([22]'s
// layouts report height 8 = 4 rows × height 2).
const grid2DRows = 4

// colSpacing2D is the per-column width multiplier of the 2D arrangement.
const colSpacing2D = 3

// Lin2D runs the 2D-arrangement depth compression: lines fold row-major
// into a 4-row grid; CNOT patterns occupy the bounding box of their
// endpoints and pack into slots by the same greedy independent-set
// extraction.
func Lin2D(ic *icm.Circuit) (Layout, error) {
	if err := ic.Validate(); err != nil {
		return Layout{}, fmt.Errorf("baseline: %w", err)
	}
	cols := (len(ic.Lines) + grid2DRows - 1) / grid2DRows
	if cols == 0 {
		cols = 1
	}
	pos := func(line int) (row, col int) { return line / cols, line % cols }
	slots := scheduleIntervals(ic, func(g icm.CNOT) (int, int, int, int) {
		r1, c1 := pos(g.Control)
		r2, c2 := pos(g.Target)
		if c1 > c2 {
			c1, c2 = c2, c1
		}
		if r1 > r2 {
			r1, r2 = r2, r1
		}
		return c1, c2, r1, r2
	})
	return Layout{
		Name: "lin-2d",
		W:    colSpacing2D*cols - (colSpacing2D - 1),
		H:    2 * grid2DRows,
		D:    maxSlot(slots) + 1,
	}, nil
}

// scheduleIntervals assigns each CNOT a time slot: CNOTs are processed in
// program order; a CNOT enters the earliest slot after its per-line
// predecessors in which its pattern box conflicts with nothing already
// there. span returns (lo1, hi1, lo2, hi2): the inclusive pattern extent
// along the row axis and (for 2D) the column axis.
func scheduleIntervals(ic *icm.Circuit, span func(icm.CNOT) (int, int, int, int)) []int {
	type box struct{ lo1, hi1, lo2, hi2 int }
	slots := make([]int, len(ic.CNOTs))
	bySlot := map[int][]box{}
	lineReady := make([]int, len(ic.Lines)) // earliest slot per line
	for _, g := range ic.CNOTs {
		lo1, hi1, lo2, hi2 := span(g)
		b := box{lo1, hi1, lo2, hi2}
		s := lineReady[g.Control]
		if lineReady[g.Target] > s {
			s = lineReady[g.Target]
		}
		for {
			ok := true
			for _, o := range bySlot[s] {
				if b.lo1 <= o.hi1 && o.lo1 <= b.hi1 && b.lo2 <= o.hi2 && o.lo2 <= b.hi2 {
					ok = false
					break
				}
			}
			if ok {
				break
			}
			s++
		}
		slots[g.ID] = s
		bySlot[s] = append(bySlot[s], b)
		lineReady[g.Control] = s + 1
		lineReady[g.Target] = s + 1
	}
	return slots
}

func maxSlot(slots []int) int {
	m := 0
	for _, s := range slots {
		if s > m {
			m = s
		}
	}
	return m
}
