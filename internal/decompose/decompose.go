// Package decompose lowers an arbitrary reversible/quantum circuit to the
// TQEC-supported universal gate set {CNOT, P, V, T} (plus Pauli X/NOT gates,
// which are tracked in the Pauli frame and cost nothing in the ICM
// conversion), following Section III-A of the paper:
//
//   - Toffoli → the standard 15-gate network of [Nielsen & Chuang]:
//     6 CNOT + 7 T/T† + 2 H (the paper's Fig. 12),
//   - H → P · V · P (the paper's Fig. 13),
//   - Fredkin → CNOT · Toffoli · CNOT,
//   - Swap → 3 CNOT,
//   - multi-controlled Toffoli → Toffoli ladder over borrowed/clean
//     ancillas (V-chain construction),
//   - controlled-V/V† → {CNOT, T-layer} network.
//
// T† is emitted as GateTdag and treated by the ICM conversion exactly like
// T (same ancilla/CNOT footprint; only the classically tracked correction
// differs), matching the paper's accounting where every T-type gate
// consumes one |A⟩ and one |Y⟩ ancilla.
package decompose

import (
	"fmt"

	"repro/internal/qc"
)

// Result carries the decomposed circuit plus bookkeeping about the lowering.
type Result struct {
	Circuit *qc.Circuit
	// AncillaQubits is the number of workspace qubits appended to hold
	// MCT decomposition ancillas (not ICM ancilla lines; those are
	// created later by the ICM conversion).
	AncillaQubits int
}

// Decompose lowers c to the TQEC gate set. The input circuit is not
// modified. The output contains only GateCNOT, GateP, GatePdag, GateV,
// GateVdag, GateT, GateTdag and frame-tracked GateNOT/GateZ markers.
func Decompose(c *qc.Circuit) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("decompose: input invalid: %w", err)
	}
	d := &decomposer{
		out: &qc.Circuit{
			Name:   c.Name,
			Qubits: append([]string(nil), c.Qubits...),
		},
	}
	for i, g := range c.Gates {
		if err := d.lower(g); err != nil {
			return nil, fmt.Errorf("decompose: gate %d (%v): %w", i, g, err)
		}
	}
	if err := d.out.Validate(); err != nil {
		return nil, fmt.Errorf("decompose: internal error, output invalid: %w", err)
	}
	return &Result{Circuit: d.out, AncillaQubits: d.ancillas}, nil
}

type decomposer struct {
	out      *qc.Circuit
	ancillas int
}

// newAncilla appends a fresh workspace qubit and returns its index.
func (d *decomposer) newAncilla() int {
	idx := len(d.out.Qubits)
	d.out.Qubits = append(d.out.Qubits, fmt.Sprintf("anc%d", d.ancillas))
	d.ancillas++
	return idx
}

func (d *decomposer) emit(gates ...qc.Gate) {
	d.out.Append(gates...)
}

func (d *decomposer) lower(g qc.Gate) error {
	switch g.Kind {
	case qc.GateNOT, qc.GateZ:
		// Pauli gates are tracked in the Pauli frame: keep each as a
		// marker of its own kind (zero ICM cost). Folding Z into a NOT
		// marker would change the circuit's unitary (X ≠ Z on
		// superpositions), which the sim-based equivalence checks reject.
		d.emit(qc.Gate{Kind: g.Kind, Targets: []int{g.Targets[0]}})
	case qc.GateCNOT, qc.GateP, qc.GatePdag, qc.GateT, qc.GateTdag:
		d.emit(g)
	case qc.GateV, qc.GateVdag:
		if len(g.Controls) == 0 {
			d.emit(g)
		} else {
			d.lowerControlledV(g.Controls[0], g.Targets[0], g.Kind == qc.GateVdag)
		}
	case qc.GateH:
		d.lowerH(g.Targets[0])
	case qc.GateSwap:
		a, b := g.Targets[0], g.Targets[1]
		d.emit(qc.CNOT(a, b), qc.CNOT(b, a), qc.CNOT(a, b))
	case qc.GateToffoli:
		d.lowerToffoli(g.Controls[0], g.Controls[1], g.Targets[0])
	case qc.GateFredkin:
		c, a, b := g.Controls[0], g.Targets[0], g.Targets[1]
		d.emit(qc.CNOT(b, a))
		d.lowerToffoli(c, a, b)
		d.emit(qc.CNOT(b, a))
	case qc.GateMCT:
		return d.lowerMCT(g.Controls, g.Targets[0])
	default:
		return fmt.Errorf("unsupported gate kind %v", g.Kind)
	}
	return nil
}

// lowerH emits H = P · V · P (paper Section III-A).
func (d *decomposer) lowerH(t int) {
	d.emit(qc.P(t), qc.V(t), qc.P(t))
}

// lowerToffoli emits the standard 15-gate Toffoli network (Fig. 12):
// 6 CNOTs, 7 T/T† gates and 2 Hadamards (each lowered to P·V·P).
func (d *decomposer) lowerToffoli(a, b, t int) {
	d.lowerH(t)
	d.emit(
		qc.CNOT(b, t), qc.Tdag(t),
		qc.CNOT(a, t), qc.T(t),
		qc.CNOT(b, t), qc.Tdag(t),
		qc.CNOT(a, t),
		qc.T(b), qc.T(t),
	)
	d.lowerH(t)
	d.emit(
		qc.CNOT(a, b), qc.Tdag(b), qc.CNOT(a, b), qc.T(a),
	)
}

// lowerControlledV emits a controlled-V (or V†) using the standard
// two-CNOT, three-T-layer network:
//
//	CV(a,t) = (T(a) ⊗ V-layer) with V-layer = H·T(†)·H conjugation.
//
// Concretely we use: P(a) is absorbed as T(a)·T(a); the emitted network is
// T(a) · CNOT(a,t) · T†(t) · CNOT(a,t) · T(t) conjugated by H on the target
// when needed. This is the textbook CV up to Pauli frame.
func (d *decomposer) lowerControlledV(a, t int, dagger bool) {
	d.lowerH(t)
	if dagger {
		d.emit(qc.Tdag(a), qc.CNOT(a, t), qc.T(t), qc.CNOT(a, t), qc.Tdag(t))
	} else {
		d.emit(qc.T(a), qc.CNOT(a, t), qc.Tdag(t), qc.CNOT(a, t), qc.T(t))
	}
	d.lowerH(t)
}

// lowerMCT emits a multi-controlled Toffoli via the V-chain construction:
// with k ≥ 3 controls it allocates k−2 clean ancillas and expands into
// 2(k−2)+1 Toffolis, each of which is then lowered to the T network.
func (d *decomposer) lowerMCT(controls []int, t int) error {
	k := len(controls)
	if k < 3 {
		return fmt.Errorf("mct needs ≥3 controls, got %d", k)
	}
	anc := make([]int, k-2)
	for i := range anc {
		anc[i] = d.newAncilla()
	}
	// Compute chain: anc[0] = c0 AND c1; anc[i] = anc[i-1] AND c(i+1).
	d.lowerToffoli(controls[0], controls[1], anc[0])
	for i := 1; i < k-2; i++ {
		d.lowerToffoli(anc[i-1], controls[i+1], anc[i])
	}
	// Apply to target.
	d.lowerToffoli(anc[k-3], controls[k-1], t)
	// Uncompute the chain.
	for i := k - 3; i >= 1; i-- {
		d.lowerToffoli(anc[i-1], controls[i+1], anc[i])
	}
	d.lowerToffoli(controls[0], controls[1], anc[0])
	return nil
}

// Stats summarizes the gate composition of a decomposed circuit.
type Stats struct {
	CNOTs  int
	Ps     int // P and P†
	Vs     int // V and V†
	Ts     int // T and T†
	Paulis int // frame-tracked NOT/Z markers
}

// Count tallies the decomposed gate mix. A circuit still containing a
// non-lowered gate kind (a decomposer bug, or a circuit that never went
// through Decompose) is reported as an error instead of a panic.
func Count(c *qc.Circuit) (Stats, error) {
	var s Stats
	for i, g := range c.Gates {
		switch g.Kind {
		case qc.GateCNOT:
			s.CNOTs++
		case qc.GateP, qc.GatePdag:
			s.Ps++
		case qc.GateV, qc.GateVdag:
			s.Vs++
		case qc.GateT, qc.GateTdag:
			s.Ts++
		case qc.GateNOT, qc.GateZ:
			s.Paulis++
		default:
			return Stats{}, fmt.Errorf("decompose.Count: gate %d is non-lowered (%v)", i, g)
		}
	}
	return s, nil
}
