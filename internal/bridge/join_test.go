package bridge

import (
	"sort"
	"testing"
)

// chainPins flattens a chain list for comparison, sorted to be order-free.
func chainPins(chains []*Chain) [][]int {
	out := make([][]int, 0, len(chains))
	for _, c := range chains {
		out = append(out, append([]int(nil), c.Pins...))
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return out
}

// assertSimpleChains fails if any chain repeats a pin (a closed or
// self-intersecting chain cannot be decomposed back into its dual loop).
func assertSimpleChains(t *testing.T, chains []*Chain) {
	t.Helper()
	for _, c := range chains {
		seen := map[int]bool{}
		for _, p := range c.Pins {
			if seen[p] {
				t.Fatalf("chain %v repeats pin %d", c.Pins, p)
			}
			seen[p] = true
		}
	}
}

// TestJoinChainsSharedEndpoints is the regression for the chain-join
// endpoint edge case: when a loop's chains share endpoints (here pin 1 is
// an endpoint of three chains, and two of them share both endpoints 1 and
// 3), joining at (1, 3) has no legal realization — every candidate pair
// either closes a cycle or revisits a pin. The pre-fix code picked the
// last chains scanned and concatenated them blindly, producing the
// malformed chain [5 1 3 4 1] with pin 1 twice; the join must instead be
// refused and the chain list left intact.
func TestJoinChainsSharedEndpoints(t *testing.T) {
	r := &Result{Chains: [][]*Chain{{
		{Pins: []int{1, 2, 3}},
		{Pins: []int{3, 4, 1}},
		{Pins: []int{5, 1}},
	}}}
	before := chainPins(r.Chains[0])

	r.joinChainsAt(0, 1, 3)

	assertSimpleChains(t, r.Chains[0])
	after := chainPins(r.Chains[0])
	if len(after) != len(before) {
		t.Fatalf("illegal join altered the chain list: %v -> %v", before, after)
	}
	for i := range before {
		for k := range before[i] {
			if before[i][k] != after[i][k] {
				t.Fatalf("illegal join altered the chain list: %v -> %v", before, after)
			}
		}
	}

	// And pathValid must reject a path implying that join, instead of
	// letting applyMerge run into it.
	st := &Structure{Loops: []int{0}}
	if r.pathValid(st, []int{1, 3}) {
		t.Fatal("pathValid accepted a path whose join is unrealizable")
	}
}

// TestJoinChainsLegalCases pins the intended joinChains semantics: plain
// joins concatenate with correct orientation, existing connections and
// foreign pins are no-ops, and a single chain is never closed on itself.
func TestJoinChainsLegalCases(t *testing.T) {
	// Plain join: [1 2] + [3 4] at (2, 3) -> [1 2 3 4].
	chains, ok := joinChains([]*Chain{{Pins: []int{1, 2}}, {Pins: []int{3, 4}}}, 2, 3)
	if !ok || len(chains) != 1 {
		t.Fatalf("join failed: ok=%v chains=%v", ok, chainPins(chains))
	}
	got := chains[0].Pins
	want := []int{1, 2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("joined chain = %v, want %v", got, want)
		}
	}

	// Reversed orientation: [2 1] + [4 3] at (2, 3) joins the same way.
	chains, ok = joinChains([]*Chain{{Pins: []int{2, 1}}, {Pins: []int{4, 3}}}, 2, 3)
	if !ok || len(chains) != 1 {
		t.Fatalf("reversed join failed: ok=%v chains=%v", ok, chainPins(chains))
	}
	assertSimpleChains(t, chains)

	// Existing connection inside a chain: no-op, still ok.
	orig := []*Chain{{Pins: []int{1, 2, 3}}}
	chains, ok = joinChains(orig, 2, 3)
	if !ok || len(chains) != 1 || len(chains[0].Pins) != 3 {
		t.Fatalf("existing connection not a no-op: ok=%v chains=%v", ok, chainPins(chains))
	}

	// Connection not touching this loop's endpoints: no-op, still ok.
	chains, ok = joinChains(orig, 7, 8)
	if !ok || len(chains) != 1 {
		t.Fatalf("foreign connection not a no-op: ok=%v", ok)
	}

	// Closing a single chain into a cycle is illegal.
	if _, ok = joinChains([]*Chain{{Pins: []int{1, 2, 3}}}, 1, 3); ok {
		t.Fatal("joinChains closed a chain into a cycle")
	}
}

// TestJoinChainsPicksSimplePair verifies that when several chains end at
// the connection pins, the join picks a pair whose concatenation stays a
// simple path rather than the first (or last) chains scanned.
func TestJoinChainsPicksSimplePair(t *testing.T) {
	// Endpoint 1 is shared by [1 2 3] and [5 1]; endpoint 4 only by
	// [4 6]. Joining (1, 4) must use [5 1] or [1 2 3] with [4 6] — any
	// pair is fine as long as the result is simple and total pin count
	// is conserved.
	chains, ok := joinChains([]*Chain{
		{Pins: []int{1, 2, 3}},
		{Pins: []int{5, 1}},
		{Pins: []int{4, 6}},
	}, 1, 4)
	if !ok {
		t.Fatal("legal join refused")
	}
	assertSimpleChains(t, chains)
	total := 0
	for _, c := range chains {
		total += len(c.Pins)
	}
	if total != 7 || len(chains) != 2 {
		t.Fatalf("join lost or duplicated pins: %v", chainPins(chains))
	}
}
