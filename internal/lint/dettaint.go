package lint

import (
	"go/ast"
)

// DetTaint is the interprocedural determinism-taint analyzer. It tracks
// values derived from nondeterministic sources — wall-clock reads, the
// global math/rand source, map-iteration order, %p pointer formatting,
// os.Getpid — through assignments, struct fields, channels, closures and
// function calls (via the module-wide summary facts), and reports when
// such a value reaches a canonical-encoding sink: tqec.CacheKey /
// CacheKeyICM, icm.AppendCanonical, baseline.Canonical, journal record
// payloads, server.EncodeResult, or any field of tqec.Result except the
// wall-clock diagnostics Breakdown.
//
// Unlike detrand (which bans nondeterministic *control flow* in the
// seeded stages regardless of where the value goes), dettaint follows
// *data* across package boundaries: a helper in one package returning a
// time-derived string is caught when another package journals it.
//
// Known limitations: taint does not flow through control flow (a branch
// on time.Now influencing a result is invisible — that is detrand's
// residual job in the seeded stages), through calls to function values,
// or into summaries of functions outside the loaded set.
var DetTaint = &Analyzer{
	Name: "dettaint",
	Doc:  "nondeterministic values (time, global rand, map order, %p, pid) must not reach cache keys, canonical encodings, journals or tqec.Result",
	Run:  runDetTaint,
}

func runDetTaint(pass *Pass) {
	for _, f := range pass.SourceFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			scan := newTaintScan(pass.Pkg, pass.Facts, pass.Graph, fd)
			scan.propagate()
			for _, hit := range scan.sinkHits() {
				if hit.via != "" {
					pass.Reportf(hit.pos, "nondeterministic value (%s) reaches %s via %s: canonical bytes must be a pure function of circuit and options", hit.reason, hit.sink, hit.via)
					continue
				}
				pass.Reportf(hit.pos, "nondeterministic value (%s) reaches %s: canonical bytes must be a pure function of circuit and options", hit.reason, hit.sink)
			}
		}
	}
}
