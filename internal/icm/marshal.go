package icm

import (
	"encoding/binary"
	"sort"
)

// canonicalVersion tags the AppendCanonical encoding; bump it whenever the
// layout changes so stale content addresses can never alias new ones.
const canonicalVersion = 1

// AppendCanonical appends a deterministic binary encoding of the circuit to
// b and returns the extended slice. The encoding is injective over the
// circuit's semantic content (name, lines, CNOTs, T groups, TSLs, logical
// qubit count, Pauli count): two circuits encode identically iff they are
// the same ICM circuit. It exists to content-address compilations (the
// compile service's result cache keys include these bytes); it is not a
// serialization format and has no decoder.
func (c *Circuit) AppendCanonical(b []byte) []byte {
	b = append(b, 'i', 'c', 'm', canonicalVersion)
	b = appendString(b, c.Name)
	b = appendInt(b, int64(c.NumLogical))
	b = appendInt(b, int64(c.Paulis))

	b = appendInt(b, int64(len(c.Lines)))
	for _, l := range c.Lines {
		b = appendInt(b, int64(l.ID))
		b = appendInt(b, int64(l.Init))
		b = appendInt(b, int64(l.Meas))
		b = appendString(b, l.Label)
		b = appendInt(b, int64(l.Qubit))
	}

	b = appendInt(b, int64(len(c.CNOTs)))
	for _, g := range c.CNOTs {
		b = appendInt(b, int64(g.ID))
		b = appendInt(b, int64(g.Control))
		b = appendInt(b, int64(g.Target))
	}

	b = appendInt(b, int64(len(c.TGroups)))
	for _, g := range c.TGroups {
		b = appendInt(b, int64(g.ID))
		b = appendInt(b, int64(g.Qubit))
		b = appendInt(b, int64(g.Seq))
		b = appendInt(b, int64(g.ZMeasLine))
		for _, l := range g.TeleportLines {
			b = appendInt(b, int64(l))
		}
		b = appendInt(b, int64(len(g.CNOTs)))
		for _, id := range g.CNOTs {
			b = appendInt(b, int64(id))
		}
	}

	// Map iteration order is random; emit TSL entries sorted by qubit.
	qubits := make([]int, 0, len(c.TSL))
	for q := range c.TSL {
		qubits = append(qubits, q)
	}
	sort.Ints(qubits)
	b = appendInt(b, int64(len(qubits)))
	for _, q := range qubits {
		b = appendInt(b, int64(q))
		groups := c.TSL[q]
		b = appendInt(b, int64(len(groups)))
		for _, g := range groups {
			b = appendInt(b, int64(g))
		}
	}
	return b
}

// appendInt appends a little-endian int64.
func appendInt(b []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(b, uint64(v))
}

// appendString appends a length-prefixed string, keeping the encoding
// self-delimiting (and therefore injective).
func appendString(b []byte, s string) []byte {
	b = appendInt(b, int64(len(s)))
	return append(b, s...)
}
