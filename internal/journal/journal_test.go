package journal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// testOpts keeps segments tiny so rotation and compaction trigger quickly,
// and skips fsync so the suite stays fast.
func testOpts() Options {
	return Options{SegmentBytes: 1 << 10, RetainFinished: 4, NoSync: true}
}

// lifecycle appends a full accepted→running→done trajectory for one job.
func lifecycle(t *testing.T, j *Journal, id, key string, result []byte) {
	t.Helper()
	for _, ev := range []Event{
		{Kind: KindAccepted, JobID: id, Key: key, Request: []byte(`{"req":"` + id + `"}`)},
		{Kind: KindRunning, JobID: id},
		{Kind: KindDone, JobID: id, Key: key, Result: result, Outcome: "miss"},
	} {
		if err := j.Append(ev); err != nil {
			t.Fatalf("append %s/%s: %v", id, ev.Kind, err)
		}
	}
}

func TestRoundTripRecovery(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	lifecycle(t, j, "a-1", "key1", []byte(`{"volume":42}`))
	if err := j.Append(Event{Kind: KindAccepted, JobID: "a-2", Key: "key2", Request: []byte(`{"req":"a-2"}`)}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Event{Kind: KindRunning, JobID: "a-2"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Event{Kind: KindFailed, JobID: "a-3", Error: []byte(`{"message":"boom"}`)}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := j2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	rec := j2.Recovered()
	if len(rec) != 3 {
		t.Fatalf("recovered %d jobs, want 3: %+v", len(rec), rec)
	}
	byID := map[string]JobState{}
	for _, st := range rec {
		byID[st.ID] = st
	}
	done := byID["a-1"]
	if done.Status != StatusDone || !bytes.Equal(done.Result, []byte(`{"volume":42}`)) || done.Outcome != "miss" || done.Key != "key1" {
		t.Fatalf("done job replayed wrong: %+v", done)
	}
	if interrupted := byID["a-2"]; interrupted.Status != StatusRunning || !interrupted.Interrupted() {
		t.Fatalf("running job replayed wrong: %+v", interrupted)
	}
	if !bytes.Equal(byID["a-2"].Request, []byte(`{"req":"a-2"}`)) {
		t.Fatalf("request bytes lost: %+v", byID["a-2"])
	}
	if failed := byID["a-3"]; failed.Status != StatusFailed || !bytes.Equal(failed.Error, []byte(`{"message":"boom"}`)) {
		t.Fatalf("failed job replayed wrong: %+v", failed)
	}
}

// A crash mid-append leaves a torn final record; recovery must keep every
// whole record, truncate the tail, and keep appending cleanly afterwards.
func TestTornFinalRecordTruncated(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	lifecycle(t, j, "a-1", "key1", []byte(`{"ok":1}`))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	seg := filepath.Join(dir, "00000001.wal")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Append half of a would-be record: a plausible header with a body
	// that never finished writing.
	torn := append(append([]byte{}, data...), 0xFF, 0x00, 0x00, 0x00, 0x12, 0x34)
	if err := os.WriteFile(seg, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	rec := j2.Recovered()
	if len(rec) != 1 || rec[0].Status != StatusDone {
		t.Fatalf("recovered %+v, want the one done job", rec)
	}
	if st := j2.Stats(); st.TornBytes != 6 {
		t.Fatalf("torn bytes %d, want 6", st.TornBytes)
	}
	// The file must be back to a clean frame boundary.
	if got, err := os.ReadFile(seg); err != nil || int64(len(got)) != int64(len(data)) {
		t.Fatalf("tail not truncated: %d bytes, want %d (err %v)", len(got), len(data), err)
	}
	// Appends after truncation replay correctly.
	lifecycle(t, j2, "a-2", "key2", []byte(`{"ok":2}`))
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	j3, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rec := j3.Recovered(); len(rec) != 2 {
		t.Fatalf("post-truncate append lost: %+v", rec)
	}
	if err := j3.Close(); err != nil {
		t.Fatal(err)
	}
}

// A corrupted record (CRC mismatch) mid-segment cuts replay at that point:
// the bad record and everything after it in that segment are dropped, so a
// job whose done event got corrupted comes back as interrupted — it will
// re-run rather than serve corrupt bytes.
func TestCorruptRecordCutsReplay(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	lifecycle(t, j, "a-1", "key1", []byte(`{"big":"result-payload-to-corrupt"}`))
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "00000001.wal")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the final (done) record's payload.
	data[len(data)-2] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := j2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	rec := j2.Recovered()
	if len(rec) != 1 || rec[0].Status != StatusRunning || !rec[0].Interrupted() {
		t.Fatalf("corrupted done event should leave the job interrupted, got %+v", rec)
	}
}

// rawFrame builds a length+CRC framed record around an arbitrary payload,
// bypassing encodeFrame's validity guarantees — the shapes a torn or
// zero-filled tail can leave on disk.
func rawFrame(payload []byte) []byte {
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeader:], payload)
	return frame
}

// TestBoundaryTearReplay pins the torn-tail boundary cases: a tear landing
// exactly on a frame boundary is not torn at all, a zero-length payload
// frame (eight zero bytes — its CRC is genuinely valid) truncates cleanly,
// and a checksum-valid phantom payload ("null", "{}") must never fold an
// empty event into the replayed state.
func TestBoundaryTearReplay(t *testing.T) {
	valid, err := encodeFrame(Event{Kind: KindAccepted, JobID: "a-1", Key: "k", Request: []byte(`{"req":"a-1"}`)})
	if err != nil {
		t.Fatal(err)
	}
	done, err := encodeFrame(Event{Kind: KindDone, JobID: "a-1", Key: "k", Result: []byte(`{"volume":7}`), Outcome: "miss"})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name       string
		data       []byte
		wantEvents int
		wantClean  int64
	}{
		{"tear-on-frame-boundary", append(append([]byte{}, valid...), done...), 2, int64(len(valid) + len(done))},
		{"zero-length-payload-frame", append(append([]byte{}, valid...), rawFrame(nil)...), 1, int64(len(valid))},
		{"null-payload-frame", append(append([]byte{}, valid...), rawFrame([]byte("null"))...), 1, int64(len(valid))},
		{"empty-object-frame", append(append([]byte{}, valid...), rawFrame([]byte("{}"))...), 1, int64(len(valid))},
		{"invalid-kind-frame", append(append([]byte{}, valid...), rawFrame([]byte(`{"kind":"bogus","job_id":"a-1"}`))...), 1, int64(len(valid))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			events, clean := DecodeSegment(tc.data)
			if len(events) != tc.wantEvents || clean != tc.wantClean {
				t.Fatalf("DecodeSegment: %d events, clean %d; want %d events, clean %d",
					len(events), clean, tc.wantEvents, tc.wantClean)
			}
			for i, ev := range events {
				if !ev.valid() {
					t.Fatalf("event %d is a phantom: %+v", i, ev)
				}
			}

			// Full replay: only job a-1 may exist, and the segment file
			// must come back truncated to the clean prefix.
			dir := t.TempDir()
			seg := filepath.Join(dir, "00000001.wal")
			if err := os.WriteFile(seg, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			j, err := Open(dir, testOpts())
			if err != nil {
				t.Fatal(err)
			}
			defer func() {
				if err := j.Close(); err != nil {
					t.Fatal(err)
				}
			}()
			rec := j.Recovered()
			if len(rec) != 1 || rec[0].ID != "a-1" {
				t.Fatalf("replay folded a phantom job into the state: %+v", rec)
			}
			if got, err := os.ReadFile(seg); err != nil || int64(len(got)) != tc.wantClean {
				t.Fatalf("segment is %d bytes after replay, want %d (err %v)", len(got), tc.wantClean, err)
			}
			wantTorn := int64(len(tc.data)) - tc.wantClean
			if st := j.Stats(); st.TornBytes != wantTorn {
				t.Fatalf("torn bytes %d, want %d", st.TornBytes, wantTorn)
			}
		})
	}
}

// A crash between appending the done event and acknowledging it makes the
// server re-append it; replay must treat the duplicate as idempotent and
// keep the first terminal record.
func TestDuplicateDoneIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	lifecycle(t, j, "a-1", "key1", []byte(`{"first":true}`))
	// Crash-during-ack replays: a second done with different bytes, then
	// a contradictory failed event.
	if err := j.Append(Event{Kind: KindDone, JobID: "a-1", Key: "key1", Result: []byte(`{"second":true}`), Outcome: "hit"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Event{Kind: KindFailed, JobID: "a-1", Error: []byte(`{"message":"late"}`)}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(dir, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := j2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	rec := j2.Recovered()
	if len(rec) != 1 {
		t.Fatalf("duplicate done created extra jobs: %+v", rec)
	}
	st := rec[0]
	if st.Status != StatusDone || !bytes.Equal(st.Result, []byte(`{"first":true}`)) || st.Outcome != "miss" {
		t.Fatalf("first terminal record must win: %+v", st)
	}
}

// Rotation plus compaction: finished jobs beyond the retention cap are
// dropped, interrupted jobs always survive, and the segment count stays
// bounded no matter how many events flow through.
func TestRotationCompactsAndRetains(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	j, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	// One interrupted job up front; it must survive every compaction.
	if err := j.Append(Event{Kind: KindAccepted, JobID: "keep-0", Key: "k0", Request: []byte(`{"req":"keep"}`)}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		id := fmt.Sprintf("job-%03d", i)
		lifecycle(t, j, id, "key-"+id, bytes.Repeat([]byte("x"), 64))
	}
	st := j.Stats()
	if st.Rotations == 0 || st.Compactions == 0 {
		t.Fatalf("expected rotation+compaction with 1KiB segments: %+v", st)
	}
	if st.Segments > 2 {
		t.Fatalf("segment count unbounded: %+v", st)
	}
	if st.DroppedJobs == 0 {
		t.Fatalf("retention never dropped a finished job: %+v", st)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := j2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	rec := j2.Recovered()
	byID := map[string]JobState{}
	for _, s := range rec {
		byID[s.ID] = s
	}
	if kept, ok := byID["keep-0"]; !ok || !kept.Interrupted() {
		t.Fatalf("interrupted job dropped by compaction: %+v", rec)
	}
	// The newest finished job is always within the retention window.
	if newest, ok := byID["job-039"]; !ok || newest.Status != StatusDone {
		t.Fatalf("newest finished job lost: %+v", byID)
	}
	if len(rec) > 2+opts.RetainFinished+10 {
		t.Fatalf("recovered %d jobs; retention is not bounding the log", len(rec))
	}
}

// Append on a closed journal must fail loudly, not silently drop events.
func TestAppendAfterCloseFails(t *testing.T) {
	j, err := Open(t.TempDir(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Event{Kind: KindAccepted, JobID: "x"}); err == nil {
		t.Fatal("append after close succeeded")
	}
}

// The fsync histogram observes once per durable append.
func TestFsyncHistogramCounts(t *testing.T) {
	j, err := Open(t.TempDir(), Options{SegmentBytes: 1 << 20, RetainFinished: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	lifecycle(t, j, "a-1", "k", []byte(`{}`))
	if st := j.Stats(); st.FsyncNS.Count != 3 || st.Appends != 3 {
		t.Fatalf("fsync count %d appends %d, want 3/3", st.FsyncNS.Count, st.Appends)
	}
}
