// Package place implements the paper's time-ordering-aware 2.5D placement
// (Section III-C2): super-modules are distributed over stacked tiers, each
// tier is packed by a B*-tree, and a simulated-annealing engine perturbs
// the 2.5D forest with intra-/inter-tree node moves and swaps while
// minimizing
//
//	Φ = α·V/Vnorm + β·L/Lnorm + γ·(R−R*)²            (Eq. 7)
//
// with α=0.5, β=0.5, γ=0.25 and the desired aspect ratio R* = 1:2
// (width:height). Module rotation is disallowed (it would break the
// internal time ordering of super-modules), every block is expanded by a
// routing margin, and the time-dependent super-modules of each qubit's TSL
// are resized to a common footprint and reassigned to the x-sorted
// positions after every perturbation so T-gate measurements stay in
// program order along the time axis.
//
// For efficiency the engine packs only the tiers touched by a
// perturbation, keeps per-tier extents cached, and undoes rejected moves
// by restoring just the affected trees.
package place

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/bridge"
	"repro/internal/bstar"
	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/geom"
)

// cancelCheckInterval bounds how many SA moves may elapse between context
// checks: a deadline aborts the annealing loop within this many moves.
const cancelCheckInterval = 64

// DefaultTierPitch is the default z distance between consecutive tier
// bases: two cells of module body plus one shared inter-tier routing plane
// (the top pins of tier t and the bottom pins of tier t+1 meet in the same
// gap plane). Congested netlists (e.g. unbridged ablations) can raise
// Options.TierPitch to 4 for a dedicated routing plane per tier face.
const DefaultTierPitch = 3

// Options configures the SA engine.
type Options struct {
	// Tiers fixes the tier count; 0 derives it from the total block area
	// so the packed aspect ratio can approach R*.
	Tiers int
	// Iterations is the total number of SA moves; 0 derives a budget of
	// 200 moves per block (the paper runs 2000-3000 outer iterations).
	Iterations int
	// Seed drives the SA's PRNG.
	Seed int64
	// Alpha, Beta, Gamma weight volume, wirelength and aspect ratio.
	Alpha, Beta, Gamma float64
	// AspectTarget is R* (width:height); the paper uses 1:2 = 0.5.
	AspectTarget float64
	// Margin expands every block on each side to preserve routing space.
	Margin int
	// InitialTemp and FinalTemp bound the geometric cooling schedule.
	InitialTemp, FinalTemp float64
	// TierPitch overrides the tier z spacing (0 = DefaultTierPitch).
	TierPitch int
	// Restarts runs that many fully independent annealing chains
	// concurrently (seeds Seed, Seed+1, …) without exchange and keeps the
	// lowest-cost placement, ties broken by the lowest restart index.
	// 0 and 1 both mean no restart fan-out. When set to 2 or more it takes
	// precedence over Chains (legacy multi-start semantics).
	Restarts int
	// Chains runs that many cooperating SA chains concurrently with
	// deterministic per-chain seeds derived from Seed and periodic
	// best-cost exchange at temperature milestones; the lowest-cost chain
	// wins, ties broken by the lowest chain index. 0 derives
	// min(GOMAXPROCS, 4); 1 is byte-identical to the sequential placer.
	// For a fixed (Seed, Chains) pair the result is bit-identical across
	// runs.
	Chains int
}

// DefaultOptions returns the paper's parameterization.
func DefaultOptions() Options {
	return Options{
		Alpha:        0.5,
		Beta:         0.5,
		Gamma:        0.25,
		AspectTarget: 0.5,
		Margin:       1,
		InitialTemp:  0.05,
		FinalTemp:    1e-5,
	}
}

// Placement is the SA result.
type Placement struct {
	Clust *cluster.Clustering
	Nets  []bridge.Net
	// Pos is each super-module's absolute body origin (x=time, y=width,
	// z=height).
	Pos []geom.Point
	// TierOf is each super-module's tier.
	TierOf []int
	// Tiers is the tier count used.
	Tiers int
	// WireLength is the final total Manhattan wirelength estimate.
	WireLength int
	// Cost is the final Φ value.
	Cost float64
	// Moves is the number of SA moves performed.
	Moves int
}

// Run places the clustering's super-modules. With Restarts > 1 it anneals
// that many independent chains in parallel and returns the best.
func Run(cl *cluster.Clustering, nets []bridge.Net, opts Options) (*Placement, error) {
	//lint:ignore ctxflow sanctioned no-context entry point; RunContext is the threaded variant
	return RunContext(context.Background(), cl, nets, opts)
}

// RunContext is Run with cooperative cancellation: the SA loop checks ctx
// every cancelCheckInterval moves and aborts with an error wrapping
// faults.ErrCanceled when the deadline passes or the context is canceled.
func RunContext(ctx context.Context, cl *cluster.Clustering, nets []bridge.Net, opts Options) (*Placement, error) {
	if len(cl.Supers) == 0 {
		return nil, fmt.Errorf("place: %w: nothing to place", faults.ErrEmpty)
	}
	if err := faults.Canceled(ctx); err != nil {
		return nil, fmt.Errorf("place: %w", err)
	}
	restarts := opts.Restarts
	if restarts < 2 {
		return runChains(ctx, cl, nets, opts, opts.EffectiveChains())
	}
	type outcome struct {
		p   *Placement
		err error
	}
	results := make([]outcome, restarts)
	var wg sync.WaitGroup
	for k := 0; k < restarts; k++ {
		o := opts
		o.Seed = opts.Seed + int64(k)
		wg.Add(1)
		go func(k int, o Options) {
			defer wg.Done()
			// A panic in a restart chain must not crash the process: the
			// pipeline's recover guard only covers the calling goroutine.
			defer func() {
				if r := recover(); r != nil {
					results[k] = outcome{err: fmt.Errorf("place: %w: restart chain: %v", faults.ErrPanic, r)}
				}
			}()
			p, err := runOnce(ctx, cl, nets, o)
			results[k] = outcome{p: p, err: err}
		}(k, o)
	}
	wg.Wait()
	// Deterministic selection: errors and cost ties resolve by restart
	// index, never by goroutine completion order.
	var best *Placement
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		if best == nil || r.p.Cost < best.Cost {
			best = r.p
		}
	}
	return best, nil
}

// runOnce anneals a single sequential chain (the pre-multi-chain code
// path; Chains=1 reduces to exactly this).
func runOnce(ctx context.Context, cl *cluster.Clustering, nets []bridge.Net, opts Options) (*Placement, error) {
	e, err := newEngine(cl, nets, opts)
	if err != nil {
		return nil, err
	}
	if err := e.anneal(ctx, nil, 0); err != nil {
		return nil, err
	}
	return e.extract(), nil
}

// engine is the SA state.
type engine struct {
	cl   *cluster.Clustering
	nets []bridge.Net
	opts Options
	rng  *rand.Rand

	sizes  []geom.Point
	blocks []*bstar.Block
	trees  []*bstar.Tree
	tierOf []int

	// Cached per-tier pack extents; dirty tiers are repacked lazily.
	tierW, tierH []int

	// pinSuper/pinLocal approximate each net pin by its module center
	// within its super-module.
	pinSuper map[int]int
	pinLocal map[int]geom.Point
	// netList is the dense (superA, localA, superB, localB) view of nets.
	netList []netRef

	pitch        int
	vnorm, lnorm float64
	moves        int

	bestTrees  []*bstar.Tree
	bestTierOf []int
	bestCost   float64
}

type netRef struct {
	sa, sb int
	la, lb geom.Point
}

// EffectiveIterations returns the SA move budget Run will use for n blocks:
// the configured budget, or the automatic 200-moves-per-block rule when
// Iterations is 0. Retry escalation uses it to grow the budget from the
// auto-derived baseline.
func (o Options) EffectiveIterations(n int) int {
	if o.Iterations > 0 {
		return o.Iterations
	}
	return 200 * n
}

func newEngine(cl *cluster.Clustering, nets []bridge.Net, opts Options) (*engine, error) {
	if opts.Iterations < 0 {
		return nil, fmt.Errorf("place: negative iterations")
	}
	opts.Iterations = opts.EffectiveIterations(len(cl.Supers))
	if opts.InitialTemp <= 0 {
		opts.InitialTemp = 0.05
	}
	if opts.FinalTemp <= 0 || opts.FinalTemp >= opts.InitialTemp {
		opts.FinalTemp = opts.InitialTemp / 5000
	}
	pitch := opts.TierPitch
	if pitch <= 0 {
		pitch = DefaultTierPitch
	}
	e := &engine{
		cl:       cl,
		nets:     nets,
		opts:     opts,
		rng:      rand.New(rand.NewSource(opts.Seed)),
		pinSuper: map[int]int{},
		pinLocal: map[int]geom.Point{},
		pitch:    pitch,
	}
	e.resizeTSLs()
	e.buildBlocks()
	if err := e.assignTiers(); err != nil {
		return nil, err
	}
	e.buildPinMap()
	v, _, l := e.evaluateRaw()
	e.vnorm = math.Max(1, float64(v))
	e.lnorm = math.Max(1, float64(l))
	return e, nil
}

// resizeTSLs grows every time-dependent super-module in a TSL to the
// common maximum footprint so post-perturbation reallocation is
// position-neutral (Section III-C2).
func (e *engine) resizeTSLs() {
	e.sizes = make([]geom.Point, len(e.cl.Supers))
	for i, s := range e.cl.Supers {
		e.sizes[i] = s.Size
	}
	for _, tsl := range e.cl.TSLs {
		if len(tsl) < 2 {
			continue
		}
		var m geom.Point
		for _, id := range tsl {
			m = geom.MaxPoint(m, e.sizes[id])
		}
		for _, id := range tsl {
			e.sizes[id] = m
		}
	}
}

func (e *engine) buildBlocks() {
	e.blocks = make([]*bstar.Block, len(e.cl.Supers))
	for i := range e.cl.Supers {
		e.blocks[i] = &bstar.Block{
			W: e.sizes[i].X + 2*e.opts.Margin,
			H: e.sizes[i].Y + 2*e.opts.Margin,
		}
	}
}

// assignTiers distributes supers over the derived tier count, balancing
// area, and builds one shelf-shaped B*-tree per tier (rows of roughly the
// tier's target width, which gives the SA a compact warm start).
func (e *engine) assignTiers() error {
	area := 0
	for _, b := range e.blocks {
		area += b.W * b.H
	}
	n := e.opts.Tiers
	if n <= 0 {
		// Aiming for W:H ≈ R* with H = pitch·T and square tiers:
		// T ≈ (area·R*²/pitch²)^(1/3).
		r := e.opts.AspectTarget
		if r <= 0 {
			r = 0.5
		}
		t := math.Cbrt(float64(area) * r * r / float64(e.pitch*e.pitch))
		n = int(math.Round(t))
		if n < 1 {
			n = 1
		}
		if n > len(e.blocks) {
			n = len(e.blocks)
		}
	}
	// Big blocks first, round-robin: balances tier areas.
	order := make([]int, len(e.blocks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		a, b := e.blocks[order[i]], e.blocks[order[j]]
		return a.W*a.H > b.W*b.H
	})
	e.tierOf = make([]int, len(e.blocks))
	members := make([][]int, n)
	for k, b := range order {
		t := k % n
		e.tierOf[b] = t
		members[t] = append(members[t], b)
	}
	targetW := int(math.Sqrt(float64(area)/float64(n))) + 1
	e.trees = make([]*bstar.Tree, n)
	for t := range e.trees {
		tr, err := e.shelfTree(members[t], targetW)
		if err != nil {
			return fmt.Errorf("place: tier %d: %w: %w", t, faults.ErrInvariant, err)
		}
		e.trees[t] = tr
	}
	e.tierW = make([]int, n)
	e.tierH = make([]int, n)
	for t := range e.trees {
		e.tierW[t], e.tierH[t] = e.trees[t].Pack()
	}
	return nil
}

// shelfTree builds a B*-tree whose packing approximates row-major shelves
// of the target width: rows are chains of left children; each new row
// hangs as the right child of the previous row's first block. Insert
// failures (impossible on a fresh tree, but guarded) are returned, not
// panicked.
func (e *engine) shelfTree(members []int, targetW int) (*bstar.Tree, error) {
	tr := bstar.NewTree(e.blocks, nil)
	if len(members) == 0 {
		return tr, nil
	}
	if err := tr.Insert(members[0], -1, true); err != nil {
		return nil, err
	}
	rowStartNode := 0
	prevNode := 0
	rowWidth := e.blocks[members[0]].W
	for _, b := range members[1:] {
		w := e.blocks[b].W
		if rowWidth+w > targetW {
			// New row above the current row's first block.
			if err := tr.Insert(b, rowStartNode, false); err != nil {
				return nil, err
			}
			rowStartNode = tr.NodeOfLastInsert()
			prevNode = rowStartNode
			rowWidth = w
		} else {
			if err := tr.Insert(b, prevNode, true); err != nil {
				return nil, err
			}
			prevNode = tr.NodeOfLastInsert()
			rowWidth += w
		}
	}
	return tr, nil
}

func (e *engine) buildPinMap() {
	for _, n := range e.nets {
		for _, p := range []int{n.PinA, n.PinB} {
			if _, ok := e.pinSuper[p]; ok {
				continue
			}
			pin := e.cl.NL.Pins[p]
			m := e.cl.NL.Segments[pin.Segment].Module
			sid := e.cl.OfModule[m]
			e.pinSuper[p] = sid
			s := e.cl.Supers[sid]
			for i, mm := range s.Members {
				if mm == m {
					sz := cluster.ModuleSize(e.cl.NL, m)
					e.pinLocal[p] = s.Offsets[i].Add(geom.Pt(sz.X/2, sz.Y/2, sz.Z/2))
					break
				}
			}
		}
	}
	e.netList = make([]netRef, len(e.nets))
	for i, n := range e.nets {
		e.netList[i] = netRef{
			sa: e.pinSuper[n.PinA], la: e.pinLocal[n.PinA],
			sb: e.pinSuper[n.PinB], lb: e.pinLocal[n.PinB],
		}
	}
}

// repack refreshes the cached extents of the given tiers.
func (e *engine) repack(tiers ...int) {
	for _, t := range tiers {
		e.tierW[t], e.tierH[t] = e.trees[t].Pack()
	}
}

// positions extracts absolute super origins from the cached packings, with
// TSL reallocation applied.
func (e *engine) positions() []geom.Point {
	pos := make([]geom.Point, len(e.blocks))
	for i, b := range e.blocks {
		pos[i] = geom.Pt(b.X+e.opts.Margin, b.Y+e.opts.Margin, 1+e.tierOf[i]*e.pitch)
	}
	e.reallocateTSLs(pos)
	return pos
}

// reallocateTSLs restores per-qubit T ordering: the equally-sized supers of
// each TSL are reassigned to their position multiset sorted by x (then
// tier, then y), in Seq order.
func (e *engine) reallocateTSLs(pos []geom.Point) {
	for _, tsl := range e.cl.TSLs {
		if len(tsl) < 2 {
			continue
		}
		positions := make([]geom.Point, len(tsl))
		for i, id := range tsl {
			positions[i] = pos[id]
		}
		sort.Slice(positions, func(i, j int) bool {
			if positions[i].X != positions[j].X {
				return positions[i].X < positions[j].X
			}
			if positions[i].Z != positions[j].Z {
				return positions[i].Z < positions[j].Z
			}
			return positions[i].Y < positions[j].Y
		})
		for i, id := range tsl { // tsl is already in Seq order
			pos[id] = positions[i]
		}
	}
}

// evaluateRaw returns (volume, aspect ratio, wirelength) from the cached
// tier packings.
func (e *engine) evaluateRaw() (v int, r float64, l int) {
	depth, width := 0, 0
	for t := range e.trees {
		if e.tierW[t] > depth {
			depth = e.tierW[t]
		}
		if e.tierH[t] > width {
			width = e.tierH[t]
		}
	}
	height := len(e.trees) * e.pitch
	v = depth * width * height
	r = float64(width) / float64(height)
	pos := e.positions()
	for _, n := range e.netList {
		a := pos[n.sa].Add(n.la)
		b := pos[n.sb].Add(n.lb)
		l += a.Manhattan(b)
	}
	return v, r, l
}

func (e *engine) cost() float64 {
	v, r, l := e.evaluateRaw()
	dr := r - e.opts.AspectTarget
	return e.opts.Alpha*float64(v)/e.vnorm +
		e.opts.Beta*float64(l)/e.lnorm +
		e.opts.Gamma*dr*dr
}

// move describes one perturbation and how to undo it.
type move struct {
	tiers []int // affected tiers
	undo  func()
}

// perturb applies one random perturbation; returns nil when the draw was a
// no-op.
func (e *engine) perturb() *move {
	switch e.rng.Intn(4) {
	case 0: // intra-tree swap
		t := e.rng.Intn(len(e.trees))
		tr := e.trees[t]
		if tr.Len() < 2 {
			return nil
		}
		a, b := tr.RandomNode(e.rng), tr.RandomNode(e.rng)
		if a == b {
			return nil
		}
		tr.SwapBlocks(a, b)
		return &move{tiers: []int{t}, undo: func() { tr.SwapBlocks(a, b) }}
	case 1: // inter-tree swap
		if len(e.trees) < 2 {
			return nil
		}
		t1, t2 := e.rng.Intn(len(e.trees)), e.rng.Intn(len(e.trees))
		if t1 == t2 || e.trees[t1].Len() == 0 || e.trees[t2].Len() == 0 {
			return nil
		}
		a, b := e.trees[t1].RandomNode(e.rng), e.trees[t2].RandomNode(e.rng)
		ba, bb := e.trees[t1].BlockAt(a), e.trees[t2].BlockAt(b)
		bstar.SwapBlocksAcross(e.trees[t1], a, e.trees[t2], b)
		e.tierOf[ba], e.tierOf[bb] = t2, t1
		return &move{tiers: []int{t1, t2}, undo: func() {
			bstar.SwapBlocksAcross(e.trees[t1], a, e.trees[t2], b)
			e.tierOf[ba], e.tierOf[bb] = t1, t2
		}}
	case 2: // intra-tree move (restore by tree snapshot)
		t := e.rng.Intn(len(e.trees))
		tr := e.trees[t]
		if tr.Len() < 2 {
			return nil
		}
		saved := tr.CloneInto(e.blocks)
		n := tr.RandomNode(e.rng)
		b := tr.Remove(n)
		p := tr.RandomNode(e.rng)
		if err := tr.Insert(b, p, e.rng.Intn(2) == 0); err != nil {
			e.trees[t] = saved
			return nil
		}
		return &move{tiers: []int{t}, undo: func() { e.trees[t] = saved }}
	default: // inter-tree move
		if len(e.trees) < 2 {
			return nil
		}
		t1, t2 := e.rng.Intn(len(e.trees)), e.rng.Intn(len(e.trees))
		if t1 == t2 || e.trees[t1].Len() < 2 {
			return nil
		}
		saved1 := e.trees[t1].CloneInto(e.blocks)
		saved2 := e.trees[t2].CloneInto(e.blocks)
		n := e.trees[t1].RandomNode(e.rng)
		b := e.trees[t1].Remove(n)
		var err error
		if e.trees[t2].Len() == 0 {
			err = e.trees[t2].Insert(b, -1, true)
		} else {
			err = e.trees[t2].Insert(b, e.trees[t2].RandomNode(e.rng), e.rng.Intn(2) == 0)
		}
		if err != nil {
			e.trees[t1], e.trees[t2] = saved1, saved2
			return nil
		}
		e.tierOf[b] = t2
		return &move{tiers: []int{t1, t2}, undo: func() {
			e.trees[t1], e.trees[t2] = saved1, saved2
			e.tierOf[b] = t1
		}}
	}
}

// anneal runs the SA loop with a geometric cooling schedule, tracking the
// best forest seen. The context is checked every cancelCheckInterval moves
// so a deadline aborts within a bounded number of perturbations.
//
// With a non-nil exchanger the chain synchronizes with its peers at the
// exchanger's iteration milestones and adopts the global best forest when
// it is strictly better than its own (a strictly-better rule keeps a
// Chains=1 run byte-identical to the sequential placer: a lone chain never
// adopts its own best). Exchange consumes no PRNG draws, so the trajectory
// between milestones is exactly the single-chain trajectory.
func (e *engine) anneal(ctx context.Context, ex *exchanger, chain int) error {
	cur := e.cost()
	e.bestTrees, e.bestTierOf = e.snapshot()
	e.bestCost = cur
	n := e.opts.Iterations
	t0, tEnd := e.opts.InitialTemp, e.opts.FinalTemp
	decay := math.Pow(tEnd/t0, 1/math.Max(1, float64(n)))
	temp := t0
	sinceBest := 0
	nextMilestone := 0
	for it := 0; it < n; it++ {
		if it%cancelCheckInterval == 0 {
			if err := faults.Canceled(ctx); err != nil {
				return fmt.Errorf("place: SA aborted after %d/%d moves: %w", it, n, err)
			}
		}
		if ex != nil && nextMilestone < len(ex.milestones) && it == ex.milestones[nextMilestone] {
			nextMilestone++
			best := ex.exchange(chain, e.bestCost, e.bestTrees, e.bestTierOf)
			if best.valid && best.chain != chain && best.cost < e.bestCost {
				e.bestCost = best.cost
				e.bestTrees = cloneTrees(best.trees, e.blocks)
				e.bestTierOf = append([]int(nil), best.tierOf...)
				e.restoreBest()
				cur = e.bestCost
				sinceBest = 0
			}
		}
		mv := e.perturb()
		if mv == nil {
			continue
		}
		e.moves++
		savedW := append([]int(nil), e.tierW...)
		savedH := append([]int(nil), e.tierH...)
		e.repack(mv.tiers...)
		next := e.cost()
		accept := next <= cur || e.rng.Float64() < math.Exp(-(next-cur)/temp)
		if accept {
			cur = next
			if cur < e.bestCost {
				e.bestCost = cur
				e.bestTrees, e.bestTierOf = e.snapshot()
				sinceBest = 0
			} else {
				sinceBest++
			}
		} else {
			mv.undo()
			copy(e.tierW, savedW)
			copy(e.tierH, savedH)
			sinceBest++
		}
		// Restart from the best solution when stuck deep in the schedule.
		if sinceBest > n/4 && temp < t0/100 {
			e.restoreBest()
			cur = e.bestCost
			sinceBest = 0
		}
		temp *= decay
	}
	e.restoreBest()
	return nil
}

func (e *engine) snapshot() ([]*bstar.Tree, []int) {
	trees := make([]*bstar.Tree, len(e.trees))
	for i, t := range e.trees {
		trees[i] = t.CloneInto(e.blocks)
	}
	return trees, append([]int(nil), e.tierOf...)
}

func (e *engine) restoreBest() {
	e.trees = make([]*bstar.Tree, len(e.bestTrees))
	for i, t := range e.bestTrees {
		e.trees[i] = t.CloneInto(e.blocks)
	}
	copy(e.tierOf, e.bestTierOf)
	all := make([]int, len(e.trees))
	for i := range all {
		all[i] = i
	}
	e.repack(all...)
}

// extract materializes the final placement.
func (e *engine) extract() *Placement {
	pos := e.positions()
	wl := 0
	for _, n := range e.netList {
		a := pos[n.sa].Add(n.la)
		b := pos[n.sb].Add(n.lb)
		wl += a.Manhattan(b)
	}
	// TSL reallocation may have permuted supers across tiers; derive the
	// final tier of each super from its resolved z.
	tierOf := make([]int, len(pos))
	for i, p := range pos {
		tierOf[i] = (p.Z - 1) / e.pitch
	}
	return &Placement{
		Clust:      e.cl,
		Nets:       e.nets,
		Pos:        pos,
		TierOf:     tierOf,
		Tiers:      len(e.trees),
		WireLength: wl,
		Cost:       e.bestCost,
		Moves:      e.moves,
	}
}

// SuperBox returns the absolute body box of super s.
func (p *Placement) SuperBox(s int) geom.Box {
	sz := p.Clust.Supers[s].Size
	return geom.BoxAt(p.Pos[s], sz.X, sz.Y, sz.Z)
}

// ModuleBox returns the absolute body box of module m.
func (p *Placement) ModuleBox(m int) geom.Box {
	sid := p.Clust.OfModule[m]
	s := p.Clust.Supers[sid]
	for i, mm := range s.Members {
		if mm == m {
			sz := cluster.ModuleSize(p.Clust.NL, m)
			return geom.BoxAt(p.Pos[sid].Add(s.Offsets[i]), sz.X, sz.Y, sz.Z)
		}
	}
	return geom.Box{}
}

// BoxObstacles returns the absolute boxes of all embedded distillation
// boxes.
func (p *Placement) BoxObstacles() []geom.Box {
	var out []geom.Box
	for sid, s := range p.Clust.Supers {
		for _, bm := range s.Boxes {
			sz := bm.Kind.Size()
			out = append(out, geom.BoxAt(p.Pos[sid].Add(bm.Offset), sz.X, sz.Y, sz.Z))
		}
	}
	return out
}

// PinPos returns the absolute cell of pin id.
func (p *Placement) PinPos(id int) (geom.Point, error) {
	off, err := p.Clust.PinOffset(id)
	if err != nil {
		return geom.Point{}, err
	}
	pin := p.Clust.NL.Pins[id]
	m := p.Clust.NL.Segments[pin.Segment].Module
	sid := p.Clust.OfModule[m]
	s := p.Clust.Supers[sid]
	for i, mm := range s.Members {
		if mm == m {
			return p.Pos[sid].Add(s.Offsets[i]).Add(off), nil
		}
	}
	return geom.Point{}, fmt.Errorf("place: module %d missing from super %d", m, sid)
}

// Bounds returns the bounding box of all module bodies and boxes.
func (p *Placement) Bounds() geom.Box {
	var b geom.Box
	for m := range p.Clust.NL.Modules {
		b = b.Union(p.ModuleBox(m))
	}
	for _, ob := range p.BoxObstacles() {
		b = b.Union(ob)
	}
	return b
}

// Dims returns the W (y), H (z), D (x) extents of the placed bodies.
func (p *Placement) Dims() (w, h, d int) {
	b := p.Bounds()
	return b.Dy(), b.Dz(), b.Dx()
}

// CheckTimeOrdering verifies that every qubit's T blocks sit in
// non-decreasing x order (the geometric proxy for the time-ordered
// measurement constraint) and that, inside each time-dependent super, the
// Z module ends before the teleport modules end.
func (p *Placement) CheckTimeOrdering() error {
	for q, tsl := range p.Clust.TSLs {
		lastX := math.MinInt64
		for k, id := range tsl {
			x := p.Pos[id].X
			if x < lastX {
				return fmt.Errorf("place: qubit %d T block %d at x=%d before predecessor at x=%d",
					q, k, x, lastX)
			}
			lastX = x
		}
	}
	for _, s := range p.Clust.Supers {
		if s.Kind != cluster.KindTimeDep {
			continue
		}
		z := p.ModuleBox(s.Members[0])
		for _, m := range s.Members[1:] {
			t := p.ModuleBox(m)
			if t.Max.X < z.Max.X {
				return fmt.Errorf("place: super %d teleport module %d ends before Z module", s.ID, m)
			}
		}
	}
	return nil
}

// CheckNoOverlap verifies that no two module bodies or boxes overlap.
func (p *Placement) CheckNoOverlap() error {
	var boxes []geom.Box
	var names []string
	for m := range p.Clust.NL.Modules {
		boxes = append(boxes, p.ModuleBox(m))
		names = append(names, fmt.Sprintf("module %d", m))
	}
	for i, ob := range p.BoxObstacles() {
		boxes = append(boxes, ob)
		names = append(names, fmt.Sprintf("box %d", i))
	}
	for i := 0; i < len(boxes); i++ {
		for j := i + 1; j < len(boxes); j++ {
			if boxes[i].Intersects(boxes[j]) {
				return fmt.Errorf("place: %s overlaps %s (%v ∩ %v)", names[i], names[j], boxes[i], boxes[j])
			}
		}
	}
	return nil
}
