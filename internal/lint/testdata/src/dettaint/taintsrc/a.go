// Package taintsrc is the source half of the cross-package dettaint
// fixture: helpers here derive values from nondeterministic state, and the
// sink package (the fixture root) consumes them. Nothing in this package
// is a finding — the taint only becomes one when it reaches a sink.
package taintsrc

import (
	"fmt"
	"time"
)

// Stamp returns a wall-clock-derived integer. Its summary records result 0
// as tainted, so callers in other packages inherit the taint.
func Stamp() int {
	return int(time.Now().UnixNano())
}

// Label launders nothing: formatting a tainted value keeps it tainted.
func Label() string {
	return fmt.Sprintf("run-%d", Stamp())
}

// Echo flows its parameter to its result, so taint passes through it.
func Echo(v int) int {
	return v + 1
}

// Clean is genuinely deterministic; calling it must not create findings.
func Clean() int {
	return 42
}
