// Package faults defines the sentinel errors of the pipeline's failure
// taxonomy and small helpers shared by every stage. It is a leaf package so
// that both the internal stage packages (place, route, bridge, …) and the
// public tqec API can wrap the same sentinels without an import cycle;
// tqec re-exports them (tqec.ErrCanceled = faults.ErrCanceled, …) so
// callers only ever need errors.Is against the tqec names.
package faults

import (
	"context"
	"errors"
	"fmt"
)

var (
	// ErrCanceled marks work aborted by context cancellation or deadline.
	ErrCanceled = errors.New("canceled")
	// ErrUnroutable marks nets that exhausted every routing strategy,
	// including the straight-line fallback.
	ErrUnroutable = errors.New("unroutable")
	// ErrPlacementInvalid marks a placement that failed structural
	// validation (overlap or time-ordering) after all retry attempts.
	ErrPlacementInvalid = errors.New("placement invalid")
	// ErrDegraded marks a result produced under graceful degradation
	// (e.g. fallback-routed nets): usable, but not at full quality.
	ErrDegraded = errors.New("degraded result")
	// ErrPanic marks a recovered panic converted into an error.
	ErrPanic = errors.New("internal panic")
	// ErrInvariant marks a violated internal invariant that previously
	// would have panicked.
	ErrInvariant = errors.New("internal invariant violated")
	// ErrTransient marks a fault expected to clear on retry: injected
	// chaos faults, simulated worker crashes, and any backend hiccup a
	// caller wraps with Transient. The resilience layer classifies it as
	// retryable; everything else in the taxonomy is judged individually.
	ErrTransient = errors.New("transient fault")
	// ErrEmpty marks a workload that reduced to nothing to lay out — a
	// circuit (or partitioned sub-circuit) whose gates all canceled
	// during rewriting, leaving no modules to place. The partitioned
	// compiler treats a part failing with it as geometry-free rather
	// than as a compilation failure.
	ErrEmpty = errors.New("nothing to lay out")
)

// Transient wraps err (or creates a bare fault from msg when err is nil)
// so it matches ErrTransient under errors.Is, marking it safe to retry.
func Transient(msg string, err error) error {
	if err != nil {
		return fmt.Errorf("%w: %s: %w", ErrTransient, msg, err)
	}
	return fmt.Errorf("%w: %s", ErrTransient, msg)
}

// Canceled converts a done context into an ErrCanceled-wrapped error; it
// returns nil while ctx is live. Stages call it at loop checkpoints so a
// deadline aborts within a bounded number of iterations.
func Canceled(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	return nil
}

// IsCancellation reports whether err stems from context cancellation,
// whichever layer wrapped it.
func IsCancellation(err error) bool {
	return errors.Is(err, ErrCanceled) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}
