package server

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/faults"
	"repro/internal/metrics"
)

// task is one queued unit of work: f runs on a worker goroutine under the
// pool's lifetime context with the task's own deadline applied, and done
// closes when val/err are final.
type task struct {
	timeout time.Duration
	f       func(ctx context.Context) ([]byte, error)
	queued  time.Time

	val  []byte
	err  error
	done chan struct{}
}

// pool is a bounded FIFO job queue drained by a fixed set of worker
// goroutines. Enqueueing never blocks: a full queue rejects immediately
// (backpressure), and a draining pool rejects new work while workers finish
// everything already queued.
type pool struct {
	queue chan *task
	busy  metrics.Gauge
	wait  *metrics.Histogram // queue-wait latency

	mu      sync.Mutex
	closed  bool
	wg      sync.WaitGroup
	workers int
}

// newPool sizes the queue; workers start on start.
func newPool(workers, depth int) *pool {
	return &pool{
		queue:   make(chan *task, depth),
		wait:    metrics.NewHistogram(),
		workers: workers,
	}
}

// start launches the worker goroutines. ctx is the pool's lifetime: it
// parents every task context, so canceling it aborts in-flight compiles
// (hard stop). Graceful shutdown goes through drain instead, which lets
// workers finish the queue while ctx stays live.
func (p *pool) start(ctx context.Context) {
	for i := 0; i < p.workers; i++ {
		p.wg.Add(1)
		go p.worker(ctx)
	}
}

// worker drains the queue until it is closed and empty (graceful drain) or
// the lifetime context dies (hard stop, failing whatever is still queued so
// no waiter hangs).
func (p *pool) worker(ctx context.Context) {
	defer p.wg.Done()
	for {
		select {
		case t, ok := <-p.queue:
			if !ok {
				return
			}
			p.runTask(ctx, t)
		case <-ctx.Done():
			p.abort(ctx)
			return
		}
	}
}

// runTask executes one task under its own deadline.
func (p *pool) runTask(ctx context.Context, t *task) {
	p.busy.Add(1)
	defer p.busy.Add(-1)
	p.wait.Observe(time.Since(t.queued))
	tctx := ctx
	cancel := context.CancelFunc(func() {})
	if t.timeout > 0 {
		tctx, cancel = context.WithTimeout(ctx, t.timeout)
	}
	t.val, t.err = t.f(tctx)
	cancel()
	close(t.done)
}

// abort handles a hard stop: close the queue so enqueues reject and
// blocked workers exit, then fail every still-queued task so its waiters
// unblock. Safe to call from multiple workers; channel receives partition
// the stranded tasks among them.
func (p *pool) abort(ctx context.Context) {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	for t := range p.queue {
		t.err = faults.Canceled(ctx)
		close(t.done)
	}
}

// enqueue adds a task to the queue, failing fast with errOverloaded when
// the queue is full and errDraining after drain began.
func (p *pool) enqueue(t *task) error {
	t.done = make(chan struct{})
	t.queued = time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return fmt.Errorf("%w: no new jobs accepted", errDraining)
	}
	select {
	case p.queue <- t:
		return nil
	default:
		return fmt.Errorf("%w: %d job(s) queued", errOverloaded, len(p.queue))
	}
}

// run enqueues f and waits for its completion. The wait is unconditional:
// a queued task always completes (its own deadline bounds the compile), so
// run returns the worker's verdict even if the submitting client has gone
// away — necessary for single-flight correctness, where other callers may
// be waiting on this compute.
func (p *pool) run(timeout time.Duration, f func(ctx context.Context) ([]byte, error)) ([]byte, error) {
	t := &task{timeout: timeout, f: f}
	if err := p.enqueue(t); err != nil {
		return nil, err
	}
	<-t.done
	return t.val, t.err
}

// depth returns the current and maximum queue occupancy.
func (p *pool) depth() (cur, capacity int) {
	return len(p.queue), cap(p.queue)
}

// drain stops accepting work and waits until every queued task has run,
// bounded by ctx. It is idempotent.
func (p *pool) drain(ctx context.Context) error {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.mu.Unlock()
	finished := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("drain aborted with work pending: %w", ctx.Err())
	}
}
