package tqec

import (
	"testing"

	"repro/internal/icm"
	"repro/internal/metrics"
	"repro/internal/qc"
)

func TestCompileMotivatingExample(t *testing.T) {
	// The paper's Fig. 4/5 three-CNOT circuit.
	c := qc.New("fig4", 3)
	c.Append(qc.CNOT(0, 1), qc.CNOT(1, 2), qc.CNOT(0, 2))
	opts := FastOptions()
	opts.Place.Seed = 11
	res, err := Compile(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	if res.CanonicalVolume != 54 {
		t.Fatalf("canonical volume: %d want 54 (Fig. 4)", res.CanonicalVolume)
	}
	if res.Volume <= 0 {
		t.Fatalf("final volume: %d", res.Volume)
	}
	if res.Volume >= res.CanonicalVolume*3 {
		t.Fatalf("compression absent: %d vs canonical %d", res.Volume, res.CanonicalVolume)
	}
	if len(res.Routing.Failed) != 0 {
		t.Fatalf("unrouted nets: %v", res.Routing.Failed)
	}
}

func TestCompileWithTGates(t *testing.T) {
	c := qc.New("t2", 2)
	c.Append(qc.T(0), qc.CNOT(0, 1), qc.T(1))
	opts := FastOptions()
	opts.Place.Seed = 3
	res, err := Compile(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	s := res.ICM.Stats()
	if s.NumA != 2 || s.NumY != 2 {
		t.Fatalf("injections: %d A, %d Y", s.NumA, s.NumY)
	}
	// Boxes integrated: BoxVolume accounted but not added to Volume.
	if res.BoxVolume != 2*192+2*18 {
		t.Fatalf("box volume: %d", res.BoxVolume)
	}
	if len(res.Routing.Failed) != 0 {
		t.Fatalf("unrouted nets: %v", res.Routing.Failed)
	}
}

func TestCompileBenchmarkSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark in -short mode")
	}
	opts := FastOptions()
	opts.Place.Iterations = 600
	opts.Place.Seed = 5
	res, err := CompileBenchmark("4gt10-v1_81", opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	if res.CompressionRatio() <= 1.0 {
		t.Fatalf("no compression: ratio %.2f (volume %d vs canonical %d + boxes %d)",
			res.CompressionRatio(), res.Volume, res.CanonicalVolume, res.BoxVolume)
	}
	routed := len(res.Routing.Routes)
	total := len(res.Bridging.Nets)
	if routed < total {
		t.Errorf("routed %d/%d nets", routed, total)
	}
	t.Logf("4gt10: dims %v, volume %d, canonical+boxes %d, ratio %.2f, first-pass %d%%",
		res.Dims, res.Volume, res.CanonicalVolume+res.BoxVolume,
		res.CompressionRatio(), 100*res.Routing.FirstPassRouted/total)
}

func TestAblationsChangeBehavior(t *testing.T) {
	mk := func() *qc.Circuit {
		spec, err := qc.BenchmarkByName("4gt10-v1_81")
		if err != nil {
			t.Fatal(err)
		}
		c, err := spec.Generate()
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	// Auto SA budget: a starved placement makes the unbridged ablation's
	// routing pathologically slow.
	base := DefaultOptions()
	base.Place.Seed = 9

	noBridge := base
	noBridge.Bridging = false
	rb, err := Compile(mk(), noBridge)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Bridging.Merges != 0 {
		t.Fatal("bridging ablation still merged")
	}

	conf := base
	conf.PrimalGroups = false
	rc, err := Compile(mk(), conf)
	if err != nil {
		t.Fatal(err)
	}
	rj, err := Compile(mk(), base)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Clustering.Stats().Nodes <= rj.Clustering.Stats().Nodes {
		t.Fatalf("conference version should have more nodes: %d vs %d",
			rc.Clustering.Stats().Nodes, rj.Clustering.Stats().Nodes)
	}
}

func TestBreakdownCoversStages(t *testing.T) {
	c := qc.New("bd", 2)
	c.Append(qc.T(0), qc.CNOT(0, 1))
	opts := FastOptions()
	res, err := Compile(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Breakdown.Total() <= 0 {
		t.Fatal("no time recorded")
	}
	// other, zx rewrite, bridging, placement, routing.
	if len(res.Breakdown.Stages()) != 5 {
		t.Fatalf("stages: %v", res.Breakdown.Stages())
	}
	if res.Breakdown.Get(metrics.StageZX) < 0 {
		t.Fatal("zx stage missing from breakdown")
	}
	if res.Breakdown.Counter(metrics.CounterZXGatesBefore) == 0 {
		t.Fatal("zx gates-before counter not recorded")
	}
}

func TestPipelineDeterminism(t *testing.T) {
	mk := func() (*Result, error) {
		c := qc.New("det", 2)
		c.Append(qc.T(0), qc.CNOT(0, 1), qc.T(1))
		opts := FastOptions()
		opts.Place.Seed = 21
		return Compile(c, opts)
	}
	r1, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Volume != r2.Volume || r1.Dims != r2.Dims {
		t.Fatalf("non-deterministic: %v vs %v", r1.Dims, r2.Dims)
	}
	if len(r1.Routing.Routes) != len(r2.Routing.Routes) {
		t.Fatal("routing differs between identical runs")
	}
}

func TestCompileICMDirect(t *testing.T) {
	c := qc.New("icm3", 3)
	c.Append(qc.CNOT(0, 1), qc.CNOT(1, 2), qc.CNOT(0, 2))
	circuit, err := icm.FromDecomposed(c)
	if err != nil {
		t.Fatal(err)
	}
	opts := FastOptions()
	opts.Place.Seed = 2
	res, err := CompileICM(circuit, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	if res.Decomposed != nil {
		t.Fatal("CompileICM should skip decomposition")
	}
	if res.CanonicalVolume != 54 {
		t.Fatalf("canonical: %d", res.CanonicalVolume)
	}
}

func TestPrimalGapOption(t *testing.T) {
	spec, err := qc.BenchmarkByName("4gt10-v1_81")
	if err != nil {
		t.Fatal(err)
	}
	base := FastOptions()
	base.Place.Seed = 4
	r1, err := Compile(mustGen(t, spec), base)
	if err != nil {
		t.Fatal(err)
	}
	gapped := base
	gapped.PrimalGap = 3
	r2, err := Compile(mustGen(t, spec), gapped)
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Netlist.Modules) >= len(r1.Netlist.Modules) {
		t.Fatalf("primal bridging should reduce modules: %d vs %d",
			len(r2.Netlist.Modules), len(r1.Netlist.Modules))
	}
	if err := r2.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestCompileBenchmarkUnknown(t *testing.T) {
	if _, err := CompileBenchmark("nope", FastOptions()); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestCompileRejectsInvalidCircuit(t *testing.T) {
	c := qc.New("bad", 1)
	c.Append(qc.CNOT(0, 7))
	if _, err := Compile(c, FastOptions()); err == nil {
		t.Fatal("invalid circuit accepted")
	}
}

// mustGen generates a benchmark circuit, failing the test on error.
func mustGen(tb testing.TB, spec qc.BenchmarkSpec) *qc.Circuit {
	tb.Helper()
	c, err := spec.Generate()
	if err != nil {
		tb.Fatal(err)
	}
	return c
}
