package faults

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestCanceledLiveContext(t *testing.T) {
	if err := Canceled(context.Background()); err != nil {
		t.Fatalf("live context reported canceled: %v", err)
	}
}

func TestCanceledDoneContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Canceled(ctx)
	if err == nil {
		t.Fatal("done context not reported")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("missing ErrCanceled in chain: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("missing context.Canceled in chain: %v", err)
	}
}

func TestIsCancellation(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{errors.New("boom"), false},
		{ErrCanceled, true},
		{fmt.Errorf("stage: %w", ErrCanceled), true},
		{context.Canceled, true},
		{context.DeadlineExceeded, true},
		{fmt.Errorf("wrapped: %w", context.DeadlineExceeded), true},
		{ErrUnroutable, false},
	}
	for _, c := range cases {
		if got := IsCancellation(c.err); got != c.want {
			t.Errorf("IsCancellation(%v) = %v want %v", c.err, got, c.want)
		}
	}
}

func TestTransientWrapping(t *testing.T) {
	bare := Transient("worker crashed", nil)
	if !errors.Is(bare, ErrTransient) {
		t.Fatalf("bare transient lost sentinel: %v", bare)
	}
	inner := errors.New("connection reset")
	wrapped := Transient("fetch", inner)
	if !errors.Is(wrapped, ErrTransient) || !errors.Is(wrapped, inner) {
		t.Fatalf("wrapped transient lost a link: %v", wrapped)
	}
	if errors.Is(bare, ErrCanceled) {
		t.Fatalf("transient must not match cancellation: %v", bare)
	}
}
