package qc

import "testing"

// FuzzBenchmarkGenerate drives benchmark circuit construction with
// arbitrary specs: Generate must either reject the spec with an error
// (never a panic) or return a circuit that validates and matches the
// declared gate counts. The committed corpus under
// testdata/fuzz/FuzzBenchmarkGenerate pins the interesting boundaries
// (too few qubits for a Toffoli, negative counts, zero-gate specs), so a
// plain `go test` replays them as regression inputs.
func FuzzBenchmarkGenerate(f *testing.F) {
	f.Add(5, 10, 10, 5, int64(1))   // ordinary mixed benchmark
	f.Add(2, 1, 0, 0, int64(7))     // Toffoli needs 3 distinct qubits
	f.Add(0, 0, 0, 1, int64(0))     // no qubits at all
	f.Add(-3, -1, -1, -1, int64(2)) // negative everything
	f.Add(1, 0, 1, 0, int64(9))     // CNOT needs 2 distinct qubits
	f.Fuzz(func(t *testing.T, qubits, toffolis, cnots, nots int, seed int64) {
		// Bound sizes so the fuzzer explores validity boundaries rather
		// than allocation limits; negatives pass through untouched to
		// exercise the rejection path.
		if qubits > 64 {
			qubits %= 64
		}
		if toffolis > 512 {
			toffolis %= 512
		}
		if cnots > 512 {
			cnots %= 512
		}
		if nots > 512 {
			nots %= 512
		}
		spec := BenchmarkSpec{
			Name:     "fuzz",
			Qubits:   qubits,
			Toffolis: toffolis,
			CNOTs:    cnots,
			NOTs:     nots,
			Seed:     seed,
		}
		c, err := spec.Generate()
		if err != nil {
			if spec.Validate() == nil {
				t.Fatalf("Generate failed on a spec Validate accepts: %v", err)
			}
			return
		}
		if verr := c.Validate(); verr != nil {
			t.Fatalf("generated circuit invalid: %v", verr)
		}
		if c.NumGates() != spec.Gates() {
			t.Fatalf("gate count %d, want %d", c.NumGates(), spec.Gates())
		}
		if c.NumQubits() != spec.Qubits {
			t.Fatalf("qubit count %d, want %d", c.NumQubits(), spec.Qubits)
		}
	})
}
