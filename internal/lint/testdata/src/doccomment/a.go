// Package dcpkg is the tqeclint golden fixture for the doccomment
// analyzer: exported declarations carry doc comments.
package dcpkg

// Documented is fine.
type Documented struct{}

type Bare struct{} // want `exported type Bare has no doc comment`

// Hello is documented.
func Hello() {}

func World() {} // want `exported function World has no doc comment`

func internal() {} // unexported: exempt

// Method docs follow the same rule when the receiver type is exported.
func (Documented) Ok() {}

func (Documented) Nope() {} // want `exported method Documented.Nope has no doc comment`

type hidden struct{}

// Methods on unexported types are not package API.
func (hidden) Exported() {}

// Limit is documented.
const Limit = 3

const Bound = 4 // want `exported const Bound has no doc comment`

// Grouped blocks are covered by the block comment.
const (
	A = 1
	B = 2
)

var (
	// V is documented per spec.
	V int

	W int // want `exported var W has no doc comment`
)

var x int // unexported: exempt

// A documented block covers every grouped value.
var (
	Y int
)
