package route

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/geom"
)

// seamFixture builds two slab obstacles separated by a gap along X, with
// seam pins on the z=-1 plane just outside each slab's facing boundary —
// the exact geometry the partitioned compiler's stitcher produces.
func seamFixture() (obstacles []geom.Box, nets []SeamNet, base geom.Box) {
	slabA := geom.Box{Min: geom.Pt(0, 0, 0), Max: geom.Pt(6, 5, 4)}
	slabB := geom.Box{Min: geom.Pt(10, 0, 0), Max: geom.Pt(16, 5, 4)}
	obstacles = []geom.Box{slabA, slabB}
	nets = []SeamNet{
		{ID: 0, A: geom.Pt(6, 0, -1), B: geom.Pt(9, 0, -1)},
		{ID: 1, A: geom.Pt(6, 1, -1), B: geom.Pt(9, 1, -1)},
		{ID: 2, A: geom.Pt(6, 2, -1), B: geom.Pt(9, 2, -1)},
	}
	base = slabA.Union(slabB)
	return obstacles, nets, base
}

func TestRouteSeamsBetweenSlabs(t *testing.T) {
	obstacles, nets, base := seamFixture()
	res, err := RouteSeams(context.Background(), obstacles, nets, base, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySeams(obstacles, nets, res); err != nil {
		t.Fatal(err)
	}
	if len(res.Routes) != len(nets) {
		t.Fatalf("routed %d of %d seams", len(res.Routes), len(nets))
	}
	// The result bounds must cover both slabs even where no route went.
	if !reflect.DeepEqual(res.Bounds.Union(base), res.Bounds) {
		t.Fatalf("bounds %v do not cover the slab base %v", res.Bounds, base)
	}
}

func TestRouteSeamsDeterministic(t *testing.T) {
	obstacles, nets, base := seamFixture()
	a, err := RouteSeams(context.Background(), obstacles, nets, base, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RouteSeams(context.Background(), obstacles, nets, base, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Routes, b.Routes) {
		t.Fatal("seam routing is not deterministic for identical inputs")
	}
}

func TestRouteSeamsRejectsBadPins(t *testing.T) {
	obstacles, _, base := seamFixture()
	inObstacle := []SeamNet{{ID: 7, A: geom.Pt(1, 1, 1), B: geom.Pt(9, 0, -1)}}
	if _, err := RouteSeams(context.Background(), obstacles, inObstacle, base, DefaultOptions()); err == nil {
		t.Fatal("pin inside a slab accepted")
	}
	shared := []SeamNet{
		{ID: 0, A: geom.Pt(6, 0, -1), B: geom.Pt(9, 0, -1)},
		{ID: 1, A: geom.Pt(6, 0, -1), B: geom.Pt(9, 1, -1)},
	}
	if _, err := RouteSeams(context.Background(), obstacles, shared, base, DefaultOptions()); err == nil {
		t.Fatal("duplicate pin cell accepted")
	}
}

func TestVerifySeamsCatchesTampering(t *testing.T) {
	obstacles, nets, base := seamFixture()
	res, err := RouteSeams(context.Background(), obstacles, nets, base, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Shift one path's terminal off its pin.
	tampered := append(geom.Path{}, res.Routes[0]...)
	tampered[0] = tampered[0].Add(geom.Pt(0, 0, -1))
	res.Routes[0] = tampered
	if err := VerifySeams(obstacles, nets, res); err == nil {
		t.Fatal("tampered terminal passed verification")
	}
}
