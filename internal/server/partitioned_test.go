package server

import (
	"bytes"
	"encoding/json"
	"testing"
)

// clusteredSrc is a 6-qubit circuit with two CNOT clusters joined by one
// bridging CNOT, so a cap of 3 splits it into two parts and one seam.
const clusteredSrc = ".version 1.0\n.numvars 6\n.variables a b c d e f\n.begin\n" +
	"t2 a b\nt2 b c\nt2 a c\nt2 d e\nt2 e f\nt2 d f\n" +
	"t2 a b\nt2 b c\nt2 a c\nt2 d e\nt2 e f\nt2 d f\nt2 c d\n.end\n"

func TestCompilePartitionedEndpoint(t *testing.T) {
	s := startServer(t, testConfig())
	body := compileBody(t, clusteredSrc, "clustered", CompileOptions{Seed: 7, Iterations: 2000, PartitionQubits: 3})

	w := post(s, "/v1/compile", body)
	if w.Code != 200 {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if got := w.Header().Get("X-Tqecd-Cache"); got != "miss" {
		t.Fatalf("first compile cache header %q, want miss", got)
	}
	var resp PartitionedResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.Partition.Parts != 2 || resp.Partition.Seams != 1 || resp.Partition.PassThrough {
		t.Fatalf("partition %+v, want 2 parts / 1 seam", resp.Partition)
	}
	if resp.Seams.Routed != 1 || resp.Seams.Failed != 0 {
		t.Fatalf("seam routing %+v, want 1 routed", resp.Seams)
	}
	if resp.Volume <= 0 || len(resp.Parts) != 2 {
		t.Fatalf("volume %d, parts %d", resp.Volume, len(resp.Parts))
	}

	// Repeat must hit the cache byte-for-byte.
	w2 := post(s, "/v1/compile", body)
	if got := w2.Header().Get("X-Tqecd-Cache"); got != "hit" {
		t.Fatalf("repeat cache header %q, want hit", got)
	}
	if !bytes.Equal(w.Body.Bytes(), w2.Body.Bytes()) {
		t.Fatal("cached partitioned payload differs from the fresh one")
	}

	// The partition cap is part of the content address.
	other := post(s, "/v1/compile", compileBody(t, clusteredSrc, "clustered",
		CompileOptions{Seed: 7, Iterations: 2000, PartitionQubits: 4}))
	if other.Code != 200 {
		t.Fatalf("cap-4 status %d: %s", other.Code, other.Body.String())
	}
	if other.Header().Get("X-Tqecd-Cache-Key") == w.Header().Get("X-Tqecd-Cache-Key") {
		t.Fatal("different partition caps share a content address")
	}
}

func TestCompilePartitionedServerDefault(t *testing.T) {
	cfg := testConfig()
	cfg.PartitionQubits = 3
	s := startServer(t, cfg)

	// Unset partition_qubits inherits the server default.
	w := post(s, "/v1/compile", compileBody(t, clusteredSrc, "clustered", CompileOptions{Seed: 7, Iterations: 2000}))
	if w.Code != 200 {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp PartitionedResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.Partition.Parts != 2 || resp.Partition.MaxQubitsPerPart != 3 {
		t.Fatalf("server default not applied: %+v", resp.Partition)
	}

	// A negative request value forces the ordinary pipeline.
	w2 := post(s, "/v1/compile", compileBody(t, clusteredSrc, "clustered",
		CompileOptions{Seed: 7, Iterations: 2000, PartitionQubits: -1}))
	if w2.Code != 200 {
		t.Fatalf("opt-out status %d: %s", w2.Code, w2.Body.String())
	}
	var plain CompileResponse
	if err := json.Unmarshal(w2.Body.Bytes(), &plain); err != nil {
		t.Fatalf("decode plain: %v", err)
	}
	if plain.Routing.Routed == 0 && plain.Volume == 0 {
		t.Fatalf("opt-out did not produce an ordinary compile: %s", w2.Body.String())
	}
	if w2.Header().Get("X-Tqecd-Cache-Key") == w.Header().Get("X-Tqecd-Cache-Key") {
		t.Fatal("partitioned and plain compiles share a content address")
	}
}
