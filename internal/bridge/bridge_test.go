package bridge

import (
	"testing"
	"testing/quick"

	"repro/internal/canonical"
	"repro/internal/decompose"
	"repro/internal/icm"
	"repro/internal/modular"
	"repro/internal/qc"
)

func netlistFor(t testing.TB, c *qc.Circuit) *modular.Netlist {
	t.Helper()
	r, err := decompose.Decompose(c)
	if err != nil {
		t.Fatal(err)
	}
	ic, err := icm.FromDecomposed(r.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	d, err := canonical.Build(ic)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := modular.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

// chainCircuit: consecutive CNOTs share lines at adjacent slots, producing
// common modules so bridging has work to do.
func chainCircuit(n int) *qc.Circuit {
	c := qc.New("chain", n+1)
	for i := 0; i < n; i++ {
		c.Append(qc.CNOT(i, i+1))
	}
	return c
}

func TestBridgingMergesAdjacentLoops(t *testing.T) {
	nl := netlistFor(t, chainCircuit(3))
	r, err := Run(nl, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Merges == 0 {
		t.Fatal("adjacent loops share modules; at least one merge expected")
	}
	if len(r.Structures) >= len(nl.Loops) {
		t.Fatalf("structures %d should be fewer than loops %d", len(r.Structures), len(nl.Loops))
	}
	if r.RemovedSegments == 0 {
		t.Fatal("merging must remove shared dual segments")
	}
}

func TestNoBridgingAblation(t *testing.T) {
	nl := netlistFor(t, chainCircuit(3))
	r, err := Run(nl, false)
	if err != nil {
		t.Fatal(err)
	}
	if r.Merges != 0 || r.RemovedSegments != 0 {
		t.Fatal("disabled bridging must not merge")
	}
	if len(r.Structures) != len(nl.Loops) {
		t.Fatalf("structures %d want %d (one per loop)", len(r.Structures), len(nl.Loops))
	}
	// Unbridged: each loop contributes one net per penetrated module.
	want := 0
	for _, l := range nl.Loops {
		want += len(l.Modules)
	}
	if len(r.Nets) != want {
		t.Fatalf("nets %d want %d", len(r.Nets), want)
	}
}

func TestBridgingReducesNets(t *testing.T) {
	// Two CNOTs between the same line pair at adjacent slots: the loops
	// share two common modules, so the bridge path absorbs the
	// inter-module connections into a shared chain and the net count
	// drops (the mechanism behind the paper's Fig. 10 compression).
	parallel := func() *qc.Circuit {
		c := qc.New("parallel", 2)
		c.Append(qc.CNOT(0, 1), qc.CNOT(0, 1))
		return c
	}
	without, err := Run(netlistFor(t, parallel()), false)
	if err != nil {
		t.Fatal(err)
	}
	with, err := Run(netlistFor(t, parallel()), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(without.Nets) != 4 {
		t.Fatalf("unbridged nets: %d want 4", len(without.Nets))
	}
	if with.Merges != 1 {
		t.Fatalf("merges: %d want 1", with.Merges)
	}
	if len(with.Nets) >= len(without.Nets) {
		t.Fatalf("bridging should reduce nets: %d vs %d", len(with.Nets), len(without.Nets))
	}
}

func TestDisjointLoopsStaySeparate(t *testing.T) {
	// Two CNOTs on disjoint line sets, far apart: no common modules.
	c := qc.New("disjoint", 4)
	c.Append(qc.CNOT(0, 1), qc.CNOT(2, 3))
	nl := netlistFor(t, c)
	r, err := Run(nl, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Merges != 0 {
		t.Fatal("disjoint loops must not merge")
	}
	if len(r.Structures) != 2 {
		t.Fatalf("structures: %d want 2", len(r.Structures))
	}
}

func TestFriendGroupsAfterBridging(t *testing.T) {
	nl := netlistFor(t, chainCircuit(4))
	r, err := Run(nl, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Merges > 0 && len(r.FriendGroups()) == 0 {
		t.Fatal("bridged structures should produce friend nets (shared pins)")
	}
	for pin, nets := range r.FriendGroups() {
		if len(nets) < 2 {
			t.Fatalf("friend group at pin %d has %d nets", pin, len(nets))
		}
	}
}

func TestNoFriendNetsWithoutBridging(t *testing.T) {
	nl := netlistFor(t, chainCircuit(4))
	r, err := Run(nl, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.FriendGroups()) != 0 {
		t.Fatal("friend nets require shared chains, which require bridging")
	}
}

func TestNetsAreDeduplicated(t *testing.T) {
	nl := netlistFor(t, chainCircuit(5))
	r, err := Run(nl, true)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[[2]int]bool{}
	for _, n := range r.Nets {
		k := pairKey(n.PinA, n.PinB)
		if seen[k] {
			t.Fatalf("duplicate net %v", k)
		}
		seen[k] = true
		if n.PinA == n.PinB {
			t.Fatalf("degenerate net at pin %d", n.PinA)
		}
	}
}

func TestEveryModuleKeepsALiveSegment(t *testing.T) {
	nl := netlistFor(t, chainCircuit(6))
	r, err := Run(nl, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range nl.Modules {
		if len(r.NL.LiveSegmentsOf(m.ID)) == 0 {
			t.Fatalf("module %d lost all segments", m.ID)
		}
	}
}

func TestChainsArePinDisjointPerLoop(t *testing.T) {
	nl := netlistFor(t, chainCircuit(6))
	r, err := Run(nl, true)
	if err != nil {
		t.Fatal(err)
	}
	for lp, chains := range r.Chains {
		used := map[int]bool{}
		for _, c := range chains {
			if len(c.Pins) < 2 {
				t.Fatalf("loop %d has a degenerate chain", lp)
			}
			for _, p := range c.Pins {
				if used[p] {
					t.Fatalf("loop %d: pin %d in two chains", lp, p)
				}
				used[p] = true
			}
		}
	}
}

func TestRepresentativeSegmentsStayLive(t *testing.T) {
	nl := netlistFor(t, chainCircuit(6))
	r, err := Run(nl, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range r.Structures {
		for m, seg := range st.RepSeg {
			if nl.Segments[seg].Removed {
				t.Fatalf("structure %d: representative segment %d of module %d removed",
					st.ID, seg, m)
			}
		}
	}
}

func TestSearchPathOrdering(t *testing.T) {
	// Hand-built graph: 0-1-2-3 line; criticals (0,1,2,3) reachable in
	// order, but (0,1,3,2) is not a simple ordered path.
	g := &bridgeGraph{
		vertices:    map[int]bool{0: true, 1: true, 2: true, 3: true},
		adj:         map[int][]int{0: {1}, 1: {0, 2}, 2: {1, 3}, 3: {2}},
		consecutive: map[[2]int]bool{},
	}
	if p := searchPath(g, []int{0, 1, 2, 3}); p == nil {
		t.Fatal("ordered path should exist")
	}
	if p := searchPath(g, []int{0, 1, 3, 2}); p != nil {
		t.Fatalf("out-of-order criticals should fail, got %v", p)
	}
	// Intermediate non-critical vertices are allowed.
	if p := searchPath(g, []int{0, 2}); p == nil || len(p) != 3 {
		t.Fatalf("path through non-critical vertex: %v", p)
	}
}

func TestModuleOrders(t *testing.T) {
	if got := moduleOrders([]int{7}); len(got) != 1 {
		t.Fatalf("single module orders: %v", got)
	}
	if got := moduleOrders([]int{1, 2, 3}); len(got) != 6 {
		t.Fatalf("3 modules should give 6 permutations, got %d", len(got))
	}
	if got := moduleOrders([]int{1, 2, 3, 4, 5}); len(got) != 2 {
		t.Fatalf("5 modules should fall back to 2 orders, got %d", len(got))
	}
}

func TestBenchmarkScaleBridging(t *testing.T) {
	spec, err := qc.BenchmarkByName("4gt10-v1_81")
	if err != nil {
		t.Fatal(err)
	}
	nl := netlistFor(t, mustGen(t, spec))
	r, err := Run(nl, true)
	if err != nil {
		t.Fatal(err)
	}
	s := r.Stats()
	if s.Merges == 0 {
		t.Fatal("benchmark-scale circuit should bridge")
	}
	if s.Structures+s.Merges != len(nl.Loops) {
		t.Fatalf("structures %d + merges %d != loops %d", s.Structures, s.Merges, len(nl.Loops))
	}
	t.Logf("%s: %d loops → %d structures (%d merges), %d nets, %d segments removed",
		spec.Name, len(nl.Loops), s.Structures, s.Merges, s.Nets, s.RemovedSegments)
}

// Property: bridging on any generated circuit preserves the structural
// invariants: structures partition loops, removed segments stay in
// common modules only, every net references valid pins, and chain sets
// remain pin-disjoint per loop.
func TestQuickBridgingInvariants(t *testing.T) {
	f := func(q uint8, nt uint8, seed int64) bool {
		spec := qc.BenchmarkSpec{
			Name:     "fuzz",
			Qubits:   3 + int(q%8),
			Toffolis: 1 + int(nt%4),
			Seed:     seed,
		}
		r, err := decompose.Decompose(mustGen(t, spec))
		if err != nil {
			return false
		}
		ic, err := icm.FromDecomposed(r.Circuit)
		if err != nil {
			return false
		}
		d, err := canonical.Build(ic)
		if err != nil {
			return false
		}
		nl, err := modular.Build(d)
		if err != nil {
			return false
		}
		br, err := Run(nl, true)
		if err != nil {
			return false
		}
		// Partition check.
		seen := map[int]bool{}
		total := 0
		for _, st := range br.Structures {
			for _, lp := range st.Loops {
				if seen[lp] {
					return false
				}
				seen[lp] = true
				total++
			}
		}
		if total != len(nl.Loops) {
			return false
		}
		// Net pin validity.
		for _, n := range br.Nets {
			if n.PinA < 0 || n.PinA >= len(nl.Pins) || n.PinB < 0 || n.PinB >= len(nl.Pins) {
				return false
			}
		}
		// Module liveness.
		for _, m := range nl.Modules {
			if len(nl.LiveSegmentsOf(m.ID)) == 0 {
				return false
			}
		}
		// Per-loop chain pin disjointness.
		for _, chains := range br.Chains {
			used := map[int]bool{}
			for _, c := range chains {
				for _, p := range c.Pins {
					if used[p] {
						return false
					}
					used[p] = true
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// mustGen generates a benchmark circuit, failing the test on error.
func mustGen(tb testing.TB, spec qc.BenchmarkSpec) *qc.Circuit {
	tb.Helper()
	c, err := spec.Generate()
	if err != nil {
		tb.Fatal(err)
	}
	return c
}
