// Package lint implements tqeclint, the repo's stdlib-only static-analysis
// driver. It loads typed ASTs for a set of packages (see load.go) and runs a
// registry of repo-specific analyzers over them, reporting findings as
// "file:line:col: [analyzer] message". The analyzers enforce the pipeline's
// correctness invariants — panic-freedom, context threading, error
// propagation, deterministic randomness and geometry encapsulation — that
// are otherwise held only by convention.
//
// The driver is deliberately built on the standard library alone
// (go/parser, go/ast, go/types, go/importer): the repo's stdlib-only rule
// applies to its tooling too. Findings may be suppressed per line with a
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// directive, either trailing the offending line or on the line directly
// above it. The reason is mandatory; a malformed directive is itself
// reported as a finding of the pseudo-analyzer "lint".
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// Finding is one analyzer report, addressable by file position.
type Finding struct {
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
}

// String formats the finding in the canonical "file:line:col: [analyzer]
// message" shape used by the CLI and the test harnesses.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Package is one loaded, typechecked package ready for analysis.
type Package struct {
	// Path is the import path ("repro/internal/route").
	Path string
	// Name is the package name; "main" marks command packages, which some
	// analyzers treat more leniently (process exit, root contexts).
	Name string
	// Dir is the directory holding the source files.
	Dir string
	// Fset maps token positions for Files.
	Fset *token.FileSet
	// Files are the parsed source files (comments included).
	Files []*ast.File
	// Types is the typechecked package.
	Types *types.Package
	// Info carries the typechecker's expression and object resolutions.
	Info *types.Info
}

// IsMain reports whether the package is a command (package main).
func (p *Package) IsMain() bool { return p.Name == "main" }

// TestFile reports whether f is a _test.go file. Analyzers skip test files:
// tests may panic, use ad-hoc contexts and discard errors freely.
func (p *Package) TestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Fset.Position(f.Package).Filename, "_test.go")
}

// ownsFile reports whether the named file is one of the package's parsed
// sources — used to anchor module-wide findings (lock-order inversions) to
// exactly one reporting package.
func (p *Package) ownsFile(file string) bool {
	for _, f := range p.Files {
		if p.Fset.Position(f.Package).Filename == file {
			return true
		}
	}
	return false
}

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name is the registry key, used in findings and ignore directives.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Run applies the check to one package, reporting through the pass.
	Run func(*Pass)
}

// Pass carries one (analyzer, package) pairing through a run.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	// Facts is the module-wide function-summary store (taint, panic,
	// lock and goroutine-lifecycle facts), populated bottom-up before any
	// analyzer runs. Nil-safe through its methods.
	Facts *FactStore
	// Graph is the CHA call graph over every loaded package, nil when the
	// driver ran without one (single-fixture tests).
	Graph *CallGraph

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
	})
}

// reportAt records a finding at an explicit file:line — for checks whose
// anchor position came from the fact layer (serialized positions) rather
// than a live token.Pos.
func (p *Pass) reportAt(file string, line int, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		File:     file,
		Line:     line,
		Col:      1,
	})
}

// TypeOf returns the static type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// SourceFiles returns the package's non-test files — the surface the
// analyzers police.
func (p *Pass) SourceFiles() []*ast.File {
	var out []*ast.File
	for _, f := range p.Pkg.Files {
		if !p.Pkg.TestFile(f) {
			out = append(out, f)
		}
	}
	return out
}

// Analyzers returns the full registry in reporting order. Every analyzer
// here runs in `make lint`, in the tqeclint CLI default set, and in the
// self-check test that keeps CI and the CLI in lockstep. The first seven
// are per-package syntactic/typed checks; dettaint, goleak and lockcheck
// are interprocedural, consuming the call graph and fact store the driver
// builds before any analyzer runs.
func Analyzers() []*Analyzer {
	return []*Analyzer{NoPanic, CtxFlow, ErrDiscard, DetRand, DetTaint, GoLeak, LockCheck, CtxSleep, GeomBounds, DocComment}
}

// ByName returns the registered analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// AnalyzerStat aggregates one analyzer's work across a run.
type AnalyzerStat struct {
	Name     string        `json:"name"`
	Findings int           `json:"findings"`
	Duration time.Duration `json:"duration_ns"`
}

// RunStats is the run's timing and cache breakdown, published by the CLI
// to the CI job summary.
type RunStats struct {
	Packages       int            `json:"packages"`
	CachedPackages int            `json:"cached_packages"`
	Analyzers      []AnalyzerStat `json:"analyzers"`
	FactsDuration  time.Duration  `json:"facts_duration_ns"`
	TotalDuration  time.Duration  `json:"total_duration_ns"`
}

// RunAnalyzers builds the module-wide call graph and fact store, applies
// the analyzers to every package, drops findings covered by //lint:ignore
// directives, and returns the rest sorted by position. Malformed and
// no-longer-matching directives surface as "lint" findings so neither a
// typo nor a stale exemption can silently disable a check.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Finding {
	findings, _ := RunAnalyzersStats(pkgs, analyzers)
	return findings
}

// RunAnalyzersStats is RunAnalyzers plus per-analyzer timing.
func RunAnalyzersStats(pkgs []*Package, analyzers []*Analyzer) ([]Finding, *RunStats) {
	start := time.Now()
	stats := &RunStats{Packages: len(pkgs)}
	graph := BuildCallGraph(pkgs)
	store := NewFactStore()
	ComputeFacts(store, graph, pkgs)
	stats.FactsDuration = time.Since(start)
	all := analyzePackages(pkgs, analyzers, store, graph, stats)
	sortFindings(all)
	stats.TotalDuration = time.Since(start)
	return all, stats
}

// analyzePackages runs the analyzers over pkgs against an already-built
// fact store and call graph — the entry point the incremental driver uses
// to re-analyze only stale packages while warm facts stand in for the
// rest. Returned findings are unsorted.
func analyzePackages(pkgs []*Package, analyzers []*Analyzer, store *FactStore, graph *CallGraph, stats *RunStats) []Finding {
	runSet := map[string]bool{}
	for _, a := range analyzers {
		runSet[a.Name] = true
	}
	timing := map[string]*AnalyzerStat{}
	if stats != nil {
		for _, a := range analyzers {
			st := &AnalyzerStat{Name: a.Name}
			timing[a.Name] = st
			stats.Analyzers = append(stats.Analyzers, AnalyzerStat{Name: a.Name})
		}
	}
	var all []Finding
	for _, pkg := range pkgs {
		sup := collectSuppressions(pkg)
		all = append(all, sup.malformed...)
		var raw []Finding
		for _, a := range analyzers {
			began := time.Now()
			pass := &Pass{Analyzer: a, Pkg: pkg, Facts: store, Graph: graph, findings: &raw}
			a.Run(pass)
			if st := timing[a.Name]; st != nil {
				st.Duration += time.Since(began)
			}
		}
		for _, f := range raw {
			if !sup.covers(f) {
				all = append(all, f)
				if st := timing[f.Analyzer]; st != nil {
					st.Findings++
				}
			}
		}
		all = append(all, sup.audit(runSet)...)
	}
	if stats != nil {
		for i := range stats.Analyzers {
			if st := timing[stats.Analyzers[i].Name]; st != nil {
				stats.Analyzers[i] = *st
			}
		}
	}
	return all
}

// sortFindings orders findings by file, line, column, analyzer.
func sortFindings(all []Finding) {
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

// calleeFunc resolves the *types.Func a call invokes, or nil for builtins,
// type conversions and calls through function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// pkgFunc names a package-level function as "importpath.Name"; it returns
// "" for methods and unresolved callees so bans match only true package
// functions (a method named Fatal on a local type is not log.Fatal).
func pkgFunc(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return ""
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// namedType unwraps pointers and reports the named type's package path and
// name, or ok=false for unnamed types.
func namedType(t types.Type) (pkgPath, name string, ok bool) {
	if t == nil {
		return "", "", false
	}
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	n, isNamed := t.(*types.Named)
	if !isNamed || n.Obj().Pkg() == nil {
		return "", "", false
	}
	return n.Obj().Pkg().Path(), n.Obj().Name(), true
}
