package zx

import (
	"fmt"

	"repro/internal/qc"
)

// pdag and vdag build the dagger gates the qc package has kinds but no
// constructors for.
func pdag(t int) qc.Gate { return qc.Gate{Kind: qc.GatePdag, Targets: []int{t}} }
func vdag(t int) qc.Gate { return qc.Gate{Kind: qc.GateVdag, Targets: []int{t}} }

// lowerZPhase expands Z^(k/4) into the decomposed diagonal gate set,
// preferring forms whose ICM cost is lowest: Pauli Z is a free frame
// update, so 3π/4 and 5π/4 are written as Z plus a single T-class gate
// rather than three T gates.
func lowerZPhase(q, k int) ([]qc.Gate, error) {
	switch k & 7 {
	case 0:
		return nil, nil
	case 1:
		return []qc.Gate{qc.T(q)}, nil
	case 2:
		return []qc.Gate{qc.P(q)}, nil
	case 3:
		return []qc.Gate{qc.Z(q), qc.Tdag(q)}, nil
	case 4:
		return []qc.Gate{qc.Z(q)}, nil
	case 5:
		return []qc.Gate{qc.Z(q), qc.T(q)}, nil
	case 6:
		return []qc.Gate{pdag(q)}, nil
	case 7:
		return []qc.Gate{qc.Tdag(q)}, nil
	}
	return nil, fmt.Errorf("zx: phase %d out of range", k)
}

// lower converts the extractor's gate alphabet into the decomposed
// {CNOT, P, P†, V, V†, T, T†, NOT, Z} set the rest of the pipeline
// consumes:
//
//	H       = P · V · P            (up to global phase)
//	CZ(a,b) = CNOT(a,b) · P†(b) · CNOT(a,b) · P(a) · P(b)
//	SWAP    = three alternating CNOTs
//
// Both identities are checked against the state-vector simulator in the
// package tests. The qubit names of orig carry over so downstream
// reporting stays recognizable.
func lower(orig *qc.Circuit, gs []egate) (*qc.Circuit, error) {
	c := &qc.Circuit{
		Name:   orig.Name,
		Qubits: append([]string(nil), orig.Qubits...),
	}
	for _, g := range gs {
		switch g.op {
		case opZPhase:
			zs, err := lowerZPhase(g.a, g.phase)
			if err != nil {
				return nil, err
			}
			c.Gates = append(c.Gates, zs...)
		case opCZ:
			c.Gates = append(c.Gates,
				qc.CNOT(g.a, g.b), pdag(g.b), qc.CNOT(g.a, g.b), qc.P(g.a), qc.P(g.b))
		case opCNOT:
			c.Gates = append(c.Gates, qc.CNOT(g.a, g.b))
		case opH:
			c.Gates = append(c.Gates, qc.P(g.a), qc.V(g.a), qc.P(g.a))
		case opSwap:
			c.Gates = append(c.Gates,
				qc.CNOT(g.a, g.b), qc.CNOT(g.b, g.a), qc.CNOT(g.a, g.b))
		default:
			return nil, fmt.Errorf("zx: unknown extracted op %d", g.op)
		}
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("zx: lowered circuit invalid: %w", err)
	}
	return c, nil
}
