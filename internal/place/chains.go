package place

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/bridge"
	"repro/internal/bstar"
	"repro/internal/cluster"
	"repro/internal/faults"
)

// exchangeMilestones is the number of best-cost exchange rounds a
// multi-chain run performs. Milestones sit at fixed fractions of the
// iteration budget; because the cooling schedule is a deterministic
// function of the iteration index, they are equivalently temperature
// milestones.
const exchangeMilestones = 4

// chainSeed derives the PRNG seed of chain k from the base seed. Chain 0
// always anneals with the base seed itself, which is what makes a
// Chains=1 run byte-identical to the plain sequential placer; higher
// chains get decorrelated streams through a splitmix64-style mix.
func chainSeed(seed int64, k int) int64 {
	if k == 0 {
		return seed
	}
	z := uint64(seed) + uint64(k)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// EffectiveChains resolves the chain count Run will use: the configured
// Chains value, or min(GOMAXPROCS, 4) when it is zero or negative. For a
// fixed (Seed, chain count) pair the multi-chain result is bit-identical
// across runs and machines.
func (o Options) EffectiveChains() int {
	if o.Chains > 0 {
		return o.Chains
	}
	n := runtime.GOMAXPROCS(0)
	if n > 4 {
		n = 4
	}
	if n < 1 {
		n = 1
	}
	return n
}

// offer is one chain's contribution to an exchange round.
type offer struct {
	valid  bool
	cost   float64
	trees  []*bstar.Tree
	tierOf []int
	chain  int
}

// exchanger synchronizes K annealing chains at the iteration milestones.
// Every live chain arrives with its best-so-far forest; the last arrival
// picks the global best (lowest cost, ties broken by the lowest chain
// index) and releases the round. Chains that abort (cancellation, panic)
// leave the exchanger so the remaining chains never deadlock.
//
// The offered tree snapshots are safe to clone concurrently after the
// round completes: an engine only ever replaces its best-forest pointers
// with freshly cloned trees, it never mutates a published snapshot in
// place.
type exchanger struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	arrived int
	round   int
	offers  []offer
	best    offer

	// milestones are the iteration indices (sorted ascending) at which
	// chains exchange; identical for every chain of a run.
	milestones []int
}

// newExchanger builds the exchange schedule for k chains annealing n
// iterations each.
func newExchanger(k, n int) *exchanger {
	x := &exchanger{parties: k, offers: make([]offer, k)}
	x.cond = sync.NewCond(&x.mu)
	for m := 1; m < exchangeMilestones; m++ {
		it := m * n / exchangeMilestones
		if it > 0 && (len(x.milestones) == 0 || x.milestones[len(x.milestones)-1] != it) {
			x.milestones = append(x.milestones, it)
		}
	}
	return x
}

// exchange blocks chain until every live chain has arrived at the current
// milestone, then returns the round's global best offer. The returned
// snapshot must be treated as read-only; adopters clone it.
func (x *exchanger) exchange(chain int, cost float64, trees []*bstar.Tree, tierOf []int) offer {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.offers[chain] = offer{valid: true, cost: cost, trees: trees, tierOf: tierOf, chain: chain}
	x.arrived++
	round := x.round
	if x.arrived >= x.parties {
		x.completeRound()
	} else {
		for round == x.round {
			x.cond.Wait()
		}
	}
	return x.best
}

// leave removes a chain from the barrier (normal completion or abort). If
// the departure satisfies a round in progress, the round completes.
func (x *exchanger) leave(chain int) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.parties--
	x.offers[chain] = offer{}
	if x.parties > 0 && x.arrived >= x.parties {
		x.completeRound()
	}
}

// completeRound picks the global best among the arrived offers and wakes
// the waiting chains. Called with x.mu held.
func (x *exchanger) completeRound() {
	best := offer{}
	for _, o := range x.offers {
		if !o.valid {
			continue
		}
		if !best.valid || o.cost < best.cost {
			best = o
		}
	}
	x.best = best
	for i := range x.offers {
		x.offers[i] = offer{}
	}
	x.arrived = 0
	x.round++
	x.cond.Broadcast()
}

// cloneTrees deep-copies a forest snapshot, rebinding it to blocks.
func cloneTrees(trees []*bstar.Tree, blocks []*bstar.Block) []*bstar.Tree {
	out := make([]*bstar.Tree, len(trees))
	for i, t := range trees {
		out[i] = t.CloneInto(blocks)
	}
	return out
}

// runChains anneals k independent chains with periodic best-cost exchange
// and returns the lowest-cost placement, ties broken by the lowest chain
// index. Chain 0 uses opts.Seed verbatim; chain j > 0 uses a seed derived
// deterministically from (opts.Seed, j), so the result is a pure function
// of (seed, chain count): the exchange rounds are barriers, the adoption
// rule is deterministic, and the winner selection never depends on
// goroutine scheduling.
func runChains(ctx context.Context, cl *cluster.Clustering, nets []bridge.Net, opts Options, k int) (*Placement, error) {
	if k <= 1 {
		return runOnce(ctx, cl, nets, opts)
	}
	// Engines are built sequentially: construction is deterministic and
	// rng-free, so every chain starts from the identical initial forest
	// (and therefore shares comparable vnorm/lnorm cost normalization).
	engines := make([]*engine, k)
	for j := 0; j < k; j++ {
		o := opts
		o.Seed = chainSeed(opts.Seed, j)
		e, err := newEngine(cl, nets, o)
		if err != nil {
			return nil, err
		}
		engines[j] = e
	}
	ex := newExchanger(k, engines[0].opts.Iterations)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for j := 0; j < k; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			// A panic in a chain must not crash the process, and the
			// dying chain must leave the barrier or its peers deadlock.
			defer ex.leave(j)
			defer func() {
				if r := recover(); r != nil {
					errs[j] = fmt.Errorf("place: %w: SA chain %d: %v", faults.ErrPanic, j, r)
				}
			}()
			errs[j] = engines[j].anneal(ctx, ex, j)
		}(j)
	}
	wg.Wait()
	// Deterministic error propagation: the lowest-indexed chain's error
	// wins, regardless of which goroutine failed first in wall time.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// Winner selection: strictly lower cost wins, so cost ties resolve to
	// the lowest chain index by construction.
	best := engines[0]
	for j := 1; j < k; j++ {
		if engines[j].bestCost < best.bestCost {
			best = engines[j]
		}
	}
	return best.extract(), nil
}
