package repro

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// primal-group size cap, the routing margin around placed blocks, the tier
// count of the 2.5D architecture, and friend-net awareness. Each reports
// the resulting space-time volume so sweeps expose the trade-off.

import (
	"fmt"
	"testing"

	"repro/internal/qc"
	"repro/internal/route"
	"repro/tqec"
)

func ablationCompile(b *testing.B, mutate func(*tqec.Options)) *tqec.Result {
	b.Helper()
	spec, err := qc.BenchmarkByName(benchmarkCircuit)
	if err != nil {
		b.Fatal(err)
	}
	opts := tqec.DefaultOptions()
	opts.Place.Seed = benchSeed
	if mutate != nil {
		mutate(&opts)
	}
	res, err := tqec.Compile(mustGen(b, spec), opts)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationGroupSize sweeps the primal-group super-module size cap
// (Section III-C1's "upper limit").
func BenchmarkAblationGroupSize(b *testing.B) {
	for _, size := range []int{2, 6, 12} {
		b.Run(fmt.Sprintf("max%d", size), func(b *testing.B) {
			var vol, nodes int
			for i := 0; i < b.N; i++ {
				res := ablationCompile(b, func(o *tqec.Options) { o.MaxGroupSize = size })
				vol = res.Volume
				nodes = res.Clustering.Stats().Nodes
			}
			b.ReportMetric(float64(vol), "volume")
			b.ReportMetric(float64(nodes), "nodes")
		})
	}
}

// BenchmarkAblationMargin sweeps the per-block routing margin ("each
// module is slightly expanded to preserve some routing regions").
func BenchmarkAblationMargin(b *testing.B) {
	for _, margin := range []int{1, 2} {
		b.Run(fmt.Sprintf("margin%d", margin), func(b *testing.B) {
			var vol, failed int
			for i := 0; i < b.N; i++ {
				res := ablationCompile(b, func(o *tqec.Options) { o.Place.Margin = margin })
				vol = res.Volume
				failed = len(res.Routing.Failed)
			}
			b.ReportMetric(float64(vol), "volume")
			b.ReportMetric(float64(failed), "unrouted")
		})
	}
}

// BenchmarkAblationTiers sweeps the 2.5D tier count against the automatic
// cube-root heuristic (tiers=0).
func BenchmarkAblationTiers(b *testing.B) {
	for _, tiers := range []int{0, 4, 8, 16} {
		b.Run(fmt.Sprintf("tiers%d", tiers), func(b *testing.B) {
			var vol int
			for i := 0; i < b.N; i++ {
				vol = ablationCompile(b, func(o *tqec.Options) { o.Place.Tiers = tiers }).Volume
			}
			b.ReportMetric(float64(vol), "volume")
		})
	}
}

// BenchmarkAblationFriendNets routes one placement with and without
// friend-net awareness (the paper's claim that bridging and friend nets
// compound).
func BenchmarkAblationFriendNets(b *testing.B) {
	res := ablationCompile(b, nil)
	for _, friendly := range []bool{true, false} {
		name := "on"
		if !friendly {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			var cells, failed int
			for i := 0; i < b.N; i++ {
				o := route.DefaultOptions()
				o.FriendNets = friendly
				r, err := route.Run(res.Placement, o)
				if err != nil {
					b.Fatal(err)
				}
				cells = r.WireCells()
				failed = len(r.Failed)
			}
			b.ReportMetric(float64(cells), "wire-cells")
			b.ReportMetric(float64(failed), "unrouted")
		})
	}
}

// BenchmarkAblationPrimalGap sweeps the primal-bridging gap extension
// (gap=1 is the paper's dual-only bridging; larger gaps fuse primal-loop
// stretches across idle slots).
func BenchmarkAblationPrimalGap(b *testing.B) {
	for _, gap := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("gap%d", gap), func(b *testing.B) {
			var vol, modules int
			for i := 0; i < b.N; i++ {
				res := ablationCompile(b, func(o *tqec.Options) { o.PrimalGap = gap })
				vol = res.Volume
				modules = len(res.Netlist.Modules)
			}
			b.ReportMetric(float64(vol), "volume")
			b.ReportMetric(float64(modules), "modules")
		})
	}
}

// BenchmarkAblationWireRecycling measures the wire-recycling analysis
// extension: how far left-edge recycling shrinks the ICM line count.
func BenchmarkAblationWireRecycling(b *testing.B) {
	res := ablationCompile(b, nil)
	var wires int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, wires = res.ICM.RecycleWires()
	}
	b.ReportMetric(float64(len(res.ICM.Lines)), "lines")
	b.ReportMetric(float64(wires), "wires")
}
