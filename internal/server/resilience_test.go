package server

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestFaultInjectionGate rejects the chaos hook unless the server opted
// in.
func TestFaultInjectionGate(t *testing.T) {
	s := startServer(t, testConfig())
	body := compileBody(t, realSrc, "fig4", CompileOptions{Seed: 1, Iterations: 2000, FaultAttempts: 1})
	if w := post(s, "/v1/compile", body); w.Code != 400 {
		t.Fatalf("fault injection without opt-in: %d, want 400", w.Code)
	}
}

// TestRetryRecoversInjectedTransients proves the compile path retries
// through injected transient faults and still serves payloads
// byte-identical to an unfaulted direct compile.
func TestRetryRecoversInjectedTransients(t *testing.T) {
	cfg := testConfig()
	cfg.AllowFaultInjection = true
	s := startServer(t, cfg)
	o := CompileOptions{Seed: 4, Iterations: 2000, FaultAttempts: 2}
	w := post(s, "/v1/compile", compileBody(t, realSrc, "fig4", o))
	if w.Code != 200 {
		t.Fatalf("faulted compile: %d %s", w.Code, w.Body)
	}
	direct := directBytes(t, realSrc, "fig4", CompileOptions{Seed: 4, Iterations: 2000})
	if !bytes.Equal(w.Body.Bytes(), direct) {
		t.Fatal("retried payload differs from the unfaulted direct compile")
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(get(s, "/v1/metrics").Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Resilience.Retries != 2 || snap.Resilience.TransientFaults != 2 {
		t.Fatalf("resilience counters %+v, want 2 retries / 2 injected faults", snap.Resilience)
	}
}

// TestRetryBudgetExhaustion maps a transient that outlives every attempt
// onto 503 + transient sentinel, not a hard 500.
func TestRetryBudgetExhaustion(t *testing.T) {
	cfg := testConfig()
	cfg.AllowFaultInjection = true
	s := startServer(t, cfg)
	o := CompileOptions{Seed: 5, Iterations: 2000, FaultAttempts: 10}
	w := post(s, "/v1/compile", compileBody(t, realSrc, "fig4", o))
	if w.Code != 503 {
		t.Fatalf("exhausted retries: %d, want 503 (body %s)", w.Code, w.Body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil || er.Error.Sentinel != "transient" {
		t.Fatalf("error body %s", w.Body)
	}
}

// TestBreakerOpensAndSheds trips the breaker with persistent transients,
// then observes 503 breaker_open with a Retry-After hint, no compile run.
func TestBreakerOpensAndSheds(t *testing.T) {
	cfg := testConfig()
	cfg.AllowFaultInjection = true
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = time.Hour // stays open for the whole test
	s := startServer(t, cfg)
	for i := 0; i < 2; i++ {
		o := CompileOptions{Seed: int64(400 + i), Iterations: 2000, FaultAttempts: 10}
		if w := post(s, "/v1/compile", compileBody(t, realSrc, "fig4", o)); w.Code != 503 {
			t.Fatalf("trip %d: %d", i, w.Code)
		}
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(get(s, "/v1/metrics").Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Resilience.BreakerState != "open" || snap.Resilience.BreakerTrips != 1 {
		t.Fatalf("breaker %+v, want open after 1 trip", snap.Resilience)
	}
	compilesBefore := snap.Server.Compiles
	w := post(s, "/v1/compile", compileBody(t, realSrc, "fig4", CompileOptions{Seed: 999, Iterations: 2000}))
	if w.Code != 503 {
		t.Fatalf("open breaker admitted a compile: %d", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("breaker rejection missing Retry-After")
	}
	var er ErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil || er.Error.Sentinel != "breaker_open" {
		t.Fatalf("breaker error body %s", w.Body)
	}
	if err := json.Unmarshal(get(s, "/v1/metrics").Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Server.Compiles != compilesBefore {
		t.Fatal("shed request still reached the compiler")
	}
	// A cached key bypasses the breaker: hits consume no worker. (Nothing
	// is cached here, so assert the uncached path stays shut instead.)
	if w := post(s, "/v1/jobs", compileBody(t, realSrc2, "other", CompileOptions{Seed: 1})); w.Code != 503 {
		t.Fatalf("open breaker admitted an async job: %d", w.Code)
	}
}

// TestAdmissionControl drives the admission estimate directly: a loaded
// queue plus a latency estimate far beyond the request deadline must
// reject on arrival with 429 and Retry-After, and DisableAdmission must
// let the same request through to ordinary queueing.
func TestAdmissionControl(t *testing.T) {
	s, err := New(testConfig()) // pool never started: queued tasks stay put
	if err != nil {
		t.Fatal(err)
	}
	// Pretend compiles take 10s and two are already waiting.
	s.compileEWMA.Store(int64(10 * time.Second))
	for i := 0; i < 2; i++ {
		if err := s.pool.enqueue(&task{}); err != nil {
			t.Fatal(err)
		}
	}
	body := compileBody(t, realSrc, "fig4", CompileOptions{Seed: 2, Iterations: 2000, TimeoutMS: 50})
	w := post(s, "/v1/jobs", body)
	if w.Code != 429 {
		t.Fatalf("doomed request admitted: %d %s", w.Code, w.Body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("admission rejection missing Retry-After")
	}
	var er ErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil || er.Error.Sentinel != "admission" {
		t.Fatalf("admission error body %s", w.Body)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(get(s, "/v1/metrics").Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Resilience.AdmissionRejected != 1 {
		t.Fatalf("admission_rejected = %d, want 1", snap.Resilience.AdmissionRejected)
	}

	// Same pressure, admission off: the request queues normally (202).
	cfg := testConfig()
	cfg.DisableAdmission = true
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2.compileEWMA.Store(int64(10 * time.Second))
	for i := 0; i < 2; i++ {
		if err := s2.pool.enqueue(&task{}); err != nil {
			t.Fatal(err)
		}
	}
	if w := post(s2, "/v1/jobs", body); w.Code != 202 {
		t.Fatalf("disabled admission still rejected: %d %s", w.Code, w.Body)
	}
}
