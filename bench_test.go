// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation (Section IV); each Benchmark function corresponds to
// one table/figure and reports the headline quantity as a custom metric.
// Run them with:
//
//	go test -bench=. -benchmem
//
// cmd/tqecbench prints the full paper-style rows; these benches measure
// the regeneration cost and pin the reproduced quantities.
package repro

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/bridge"
	"repro/internal/canonical"
	"repro/internal/cluster"
	"repro/internal/decompose"
	"repro/internal/distill"
	"repro/internal/icm"
	"repro/internal/modular"
	"repro/internal/place"
	"repro/internal/qc"
	"repro/internal/route"
	"repro/tqec"
)

const benchSeed = 3

// benchmarkCircuit is the smallest paper benchmark; the full suite runs
// via cmd/tqecbench -full.
const benchmarkCircuit = "4gt10-v1_81"

func compileOnce(b *testing.B, mutate func(*tqec.Options)) *tqec.Result {
	b.Helper()
	opts := tqec.DefaultOptions()
	opts.Place.Seed = benchSeed
	if mutate != nil {
		mutate(&opts)
	}
	res, err := tqec.CompileBenchmark(benchmarkCircuit, opts)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkTable1Stats regenerates Table I's statistics pipeline: gate
// decomposition, ICM conversion, modularization, bridging and clustering.
func BenchmarkTable1Stats(b *testing.B) {
	spec, err := qc.BenchmarkByName(benchmarkCircuit)
	if err != nil {
		b.Fatal(err)
	}
	var nodes int
	for i := 0; i < b.N; i++ {
		d, err := decompose.Decompose(mustGen(b, spec))
		if err != nil {
			b.Fatal(err)
		}
		ic, err := icm.FromDecomposed(d.Circuit)
		if err != nil {
			b.Fatal(err)
		}
		cd, err := canonical.Build(ic)
		if err != nil {
			b.Fatal(err)
		}
		nl, err := modular.Build(cd)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := bridge.Run(nl, true); err != nil {
			b.Fatal(err)
		}
		cl, err := cluster.Build(nl, cluster.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		nodes = cl.Stats().Nodes
	}
	b.ReportMetric(float64(nodes), "nodes")
}

// BenchmarkTable2Compression regenerates the Table II "Ours" column: the
// full compression flow, reporting the space-time volume.
func BenchmarkTable2Compression(b *testing.B) {
	var vol int
	for i := 0; i < b.N; i++ {
		vol = compileOnce(b, nil).Volume
	}
	b.ReportMetric(float64(vol), "volume")
}

// BenchmarkTable2Baselines regenerates Table II's canonical and [22]
// 1D/2D columns.
func BenchmarkTable2Baselines(b *testing.B) {
	spec, err := qc.BenchmarkByName(benchmarkCircuit)
	if err != nil {
		b.Fatal(err)
	}
	d, err := decompose.Decompose(mustGen(b, spec))
	if err != nil {
		b.Fatal(err)
	}
	ic, err := icm.FromDecomposed(d.Circuit)
	if err != nil {
		b.Fatal(err)
	}
	var v1, v2 int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l1, err := baseline.Lin1D(ic)
		if err != nil {
			b.Fatal(err)
		}
		l2, err := baseline.Lin2D(ic)
		if err != nil {
			b.Fatal(err)
		}
		v1, v2 = l1.Volume(), l2.Volume()
	}
	b.ReportMetric(float64(v1), "vol-1d")
	b.ReportMetric(float64(v2), "vol-2d")
	b.ReportMetric(float64(baseline.Canonical(ic).Volume()), "vol-canonical")
}

// BenchmarkTable3Conference regenerates Table III's conference-version
// flow (no primal-group super-modules).
func BenchmarkTable3Conference(b *testing.B) {
	var vol, nodes int
	for i := 0; i < b.N; i++ {
		res := compileOnce(b, func(o *tqec.Options) { o.PrimalGroups = false })
		vol = res.Volume
		nodes = res.Clustering.Stats().Nodes
	}
	b.ReportMetric(float64(vol), "volume")
	b.ReportMetric(float64(nodes), "nodes")
}

// BenchmarkTable4Dimensions regenerates Table IV: the dimensions of the
// compressed layout.
func BenchmarkTable4Dimensions(b *testing.B) {
	var w, h, d int
	for i := 0; i < b.N; i++ {
		res := compileOnce(b, nil)
		w, h, d = res.Dims.W, res.Dims.H, res.Dims.D
	}
	b.ReportMetric(float64(w), "W")
	b.ReportMetric(float64(h), "H")
	b.ReportMetric(float64(d), "D")
}

// BenchmarkTable5Bridging regenerates Table V's ablation: the flow without
// iterative bridging.
func BenchmarkTable5Bridging(b *testing.B) {
	var vol int
	for i := 0; i < b.N; i++ {
		vol = compileOnce(b, func(o *tqec.Options) {
			o.Bridging = false
			// Unbridged netlists need more routing resource (the paper's
			// Table V explanation); match the harness configuration.
			o.Place.Margin = 2
			o.Place.TierPitch = 4
		}).Volume
	}
	b.ReportMetric(float64(vol), "volume-wo-bridging")
}

// BenchmarkTable6Breakdown regenerates Table VI: the stage shares of the
// full flow.
func BenchmarkTable6Breakdown(b *testing.B) {
	var placeShare, routeShare, bridgeShare float64
	for i := 0; i < b.N; i++ {
		res := compileOnce(b, nil)
		placeShare = res.Breakdown.Ratio("module placement")
		routeShare = res.Breakdown.Ratio("dual-defect net routing")
		bridgeShare = res.Breakdown.Ratio("iterative bridging")
	}
	b.ReportMetric(placeShare, "%place")
	b.ReportMetric(routeShare, "%route")
	b.ReportMetric(bridgeShare, "%bridge")
}

// BenchmarkFigMotivation regenerates the Fig. 4/5 motivating example.
func BenchmarkFigMotivation(b *testing.B) {
	var canonicalVol, vol int
	for i := 0; i < b.N; i++ {
		c := qc.New("fig4", 3)
		c.Append(qc.CNOT(0, 1), qc.CNOT(1, 2), qc.CNOT(0, 2))
		opts := tqec.DefaultOptions()
		opts.Place.Seed = benchSeed
		res, err := tqec.Compile(c, opts)
		if err != nil {
			b.Fatal(err)
		}
		canonicalVol, vol = res.CanonicalVolume, res.Volume
	}
	b.ReportMetric(float64(canonicalVol), "vol-canonical")
	b.ReportMetric(float64(vol), "vol-compressed")
}

// BenchmarkFigBoxes regenerates the Fig. 6/7 distillation circuits through
// the automated flow (the Fowler-Devitt manual-compression scenario).
func BenchmarkFigBoxes(b *testing.B) {
	var vol int
	for i := 0; i < b.N; i++ {
		opts := tqec.DefaultOptions()
		opts.Place.Seed = benchSeed
		opts.NoBoxes = true
		res, err := tqec.CompileICM(distill.YCircuit(), opts)
		if err != nil {
			b.Fatal(err)
		}
		vol = res.Volume
	}
	b.ReportMetric(float64(vol), "vol-Y-distill")
	b.ReportMetric(float64(distill.YBoxVolume), "vol-Y-manual")
}

// BenchmarkFigFriendNet regenerates the Fig. 19 experiment: the same
// placement routed with and without friend-net awareness.
func BenchmarkFigFriendNet(b *testing.B) {
	res := compileOnce(b, nil)
	var friendCells, plainCells int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		friendly := route.DefaultOptions()
		rf, err := route.Run(res.Placement, friendly)
		if err != nil {
			b.Fatal(err)
		}
		plain := route.DefaultOptions()
		plain.FriendNets = false
		rp, err := route.Run(res.Placement, plain)
		if err != nil {
			b.Fatal(err)
		}
		friendCells, plainCells = rf.WireCells(), rp.WireCells()
	}
	b.ReportMetric(float64(friendCells), "wire-friend")
	b.ReportMetric(float64(plainCells), "wire-plain")
}

// BenchmarkStageBridging isolates the iterative bridging stage (Table VI's
// ~1% share).
func BenchmarkStageBridging(b *testing.B) {
	spec, err := qc.BenchmarkByName(benchmarkCircuit)
	if err != nil {
		b.Fatal(err)
	}
	d, err := decompose.Decompose(mustGen(b, spec))
	if err != nil {
		b.Fatal(err)
	}
	ic, err := icm.FromDecomposed(d.Circuit)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cd, err := canonical.Build(ic)
		if err != nil {
			b.Fatal(err)
		}
		nl, err := modular.Build(cd)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := bridge.Run(nl, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStagePlacement isolates the SA placement stage.
func BenchmarkStagePlacement(b *testing.B) {
	spec, err := qc.BenchmarkByName(benchmarkCircuit)
	if err != nil {
		b.Fatal(err)
	}
	d, err := decompose.Decompose(mustGen(b, spec))
	if err != nil {
		b.Fatal(err)
	}
	ic, err := icm.FromDecomposed(d.Circuit)
	if err != nil {
		b.Fatal(err)
	}
	cd, err := canonical.Build(ic)
	if err != nil {
		b.Fatal(err)
	}
	nl, err := modular.Build(cd)
	if err != nil {
		b.Fatal(err)
	}
	br, err := bridge.Run(nl, true)
	if err != nil {
		b.Fatal(err)
	}
	cl, err := cluster.Build(nl, cluster.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		po := place.DefaultOptions()
		po.Seed = benchSeed
		if _, err := place.Run(cl, br.Nets, po); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStageRouting isolates the routing stage.
func BenchmarkStageRouting(b *testing.B) {
	res := compileOnce(b, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := route.Run(res.Placement, route.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// mustGen generates a benchmark circuit, failing the test on error.
func mustGen(tb testing.TB, spec qc.BenchmarkSpec) *qc.Circuit {
	tb.Helper()
	c, err := spec.Generate()
	if err != nil {
		tb.Fatal(err)
	}
	return c
}
