package zx

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/qc"
	"repro/internal/sim"
)

// mustEquivalent fails the test unless c1 and c2 implement the same
// unitary up to one global phase.
func mustEquivalent(t *testing.T, n int, c1, c2 *qc.Circuit) {
	t.Helper()
	ok, err := sim.EquivalentUpToPhase(n, c1, c2)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if !ok {
		t.Fatalf("circuits differ:\n  c1 (%d gates): %v\n  c2 (%d gates): %v",
			len(c1.Gates), c1.Gates, len(c2.Gates), c2.Gates)
	}
}

func circuitOf(n int, gs ...qc.Gate) *qc.Circuit {
	c := qc.New("test", n)
	c.Gates = gs
	return c
}

// TestLoweringIdentities pins the gate identities lower relies on against
// the simulator: the CZ and H expansions, the swap expansion, and every
// Z-phase residue class.
func TestLoweringIdentities(t *testing.T) {
	lowered := func(gs ...egate) *qc.Circuit {
		c, err := lower(qc.New("test", 2), gs)
		if err != nil {
			t.Fatalf("lower: %v", err)
		}
		return c
	}
	mustEquivalent(t, 2,
		lowered(egate{op: opH, a: 0}),
		circuitOf(2, qc.H(0)))
	mustEquivalent(t, 2,
		lowered(egate{op: opCZ, a: 0, b: 1}),
		circuitOf(2, qc.H(1), qc.CNOT(0, 1), qc.H(1)))
	mustEquivalent(t, 2,
		lowered(egate{op: opSwap, a: 0, b: 1}),
		circuitOf(2, qc.Swap(0, 1)))
	for k := 0; k < 8; k++ {
		ref := qc.New("test", 2)
		for i := 0; i < k; i++ {
			ref.Append(qc.T(0))
		}
		mustEquivalent(t, 2, lowered(egate{op: opZPhase, a: 0, phase: k}), ref)
	}
}

// TestReduceFixedCircuits runs the full rewrite+extract chain (no cost
// fall-back) on hand-picked circuits and checks unitary equivalence.
func TestReduceFixedCircuits(t *testing.T) {
	cases := []*qc.Circuit{
		circuitOf(1),
		circuitOf(1, qc.T(0)),
		circuitOf(2, qc.CNOT(0, 1)),
		circuitOf(2, qc.CNOT(1, 0)),
		circuitOf(2, qc.CNOT(0, 1), qc.CNOT(1, 0), qc.CNOT(0, 1)), // swap
		circuitOf(2, qc.P(0), qc.V(0), qc.P(0)),                   // H
		circuitOf(2, qc.T(0), qc.T(0), qc.CNOT(0, 1), qc.Tdag(1)),
		circuitOf(3, qc.CNOT(0, 1), qc.CNOT(1, 2), qc.V(1), qc.CNOT(0, 2), qc.Z(2)),
		circuitOf(2, qc.V(0), qc.V(0), qc.NOT(0), qc.CNOT(0, 1)),
	}
	for i, c := range cases {
		red, _, err := reduce(c)
		if err != nil {
			t.Errorf("case %d: reduce: %v", i, err)
			continue
		}
		if red.NumQubits() != c.NumQubits() {
			t.Errorf("case %d: qubit count changed %d -> %d", i, c.NumQubits(), red.NumQubits())
			continue
		}
		mustEquivalent(t, c.NumQubits(), c, red)
	}
}

// randomDecomposed builds a pseudo-random circuit over the decomposed
// gate set. Tests may use a seeded PRNG; the zx package itself is fully
// deterministic.
func randomDecomposed(rng *rand.Rand, qubits, gates int) *qc.Circuit {
	c := qc.New("random", qubits)
	for i := 0; i < gates; i++ {
		q := rng.Intn(qubits)
		switch rng.Intn(10) {
		case 0, 1, 2:
			r := rng.Intn(qubits - 1)
			if r >= q {
				r++
			}
			c.Append(qc.CNOT(q, r))
		case 3:
			c.Append(qc.P(q))
		case 4:
			c.Append(qc.Gate{Kind: qc.GatePdag, Targets: []int{q}})
		case 5:
			c.Append(qc.V(q))
		case 6:
			c.Append(qc.Gate{Kind: qc.GateVdag, Targets: []int{q}})
		case 7:
			c.Append(qc.T(q))
		case 8:
			c.Append(qc.Tdag(q))
		default:
			if rng.Intn(2) == 0 {
				c.Append(qc.NOT(q))
			} else {
				c.Append(qc.Z(q))
			}
		}
	}
	return c
}

// TestReduceRandomCircuits is the main soundness check: across many
// seeded random circuits the extracted circuit must implement the same
// unitary as the input.
func TestReduceRandomCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		qubits := 2 + rng.Intn(4) // 2..5
		gates := 5 + rng.Intn(36)
		c := randomDecomposed(rng, qubits, gates)
		red, _, err := reduce(c)
		if err != nil {
			t.Errorf("trial %d (%d qubits, %d gates): reduce: %v", trial, qubits, gates, err)
			continue
		}
		mustEquivalent(t, qubits, c, red)
	}
}

// TestReduceDeterministic checks that the pass is a pure function of the
// input circuit: two runs produce identical gate lists.
func TestReduceDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		c := randomDecomposed(rng, 4, 30)
		r1, n1, err := reduce(c)
		if err != nil {
			t.Fatalf("reduce: %v", err)
		}
		r2, n2, err := reduce(c.Clone())
		if err != nil {
			t.Fatalf("reduce: %v", err)
		}
		if n1 != n2 || !reflect.DeepEqual(r1.Gates, r2.Gates) {
			t.Fatalf("trial %d: nondeterministic reduce (%d vs %d rewrites)", trial, n1, n2)
		}
	}
}

// TestReduceLightFixedCircuits pins the wire-structured pass's rewrites
// on hand-picked circuits: CNOT pair cancellation (plain Hopf), phase
// folding through CNOT controls and targets, and inverse-phase
// annihilation — each checked for both the expected shrink and unitary
// equivalence.
func TestReduceLightFixedCircuits(t *testing.T) {
	cases := []struct {
		c    *qc.Circuit
		want int // expected gate count after the pass
	}{
		// CNOT·CNOT = I: everything cancels.
		{circuitOf(2, qc.CNOT(0, 1), qc.CNOT(0, 1)), 0},
		// A control-commuting T between a cancelling CNOT pair survives alone.
		{circuitOf(2, qc.CNOT(0, 1), qc.T(0), qc.CNOT(0, 1)), 1},
		// A target-commuting V between a cancelling CNOT pair survives alone.
		{circuitOf(2, qc.CNOT(0, 1), qc.V(1), qc.CNOT(0, 1)), 1},
		// T·T folds to P through an interposed control.
		{circuitOf(2, qc.T(0), qc.CNOT(0, 1), qc.T(0)), 2},
		// P·P† annihilates; V·V† annihilates across a shared target.
		{circuitOf(2, qc.P(0), pdag(0), qc.V(1), qc.CNOT(0, 1), vdag(1)), 1},
		// A NOT between the CNOT targets blocks nothing: X-runs fuse.
		{circuitOf(2, qc.CNOT(0, 1), qc.NOT(1), qc.CNOT(0, 1)), 1},
		// A NOT on the control wire blocks cancellation (different color).
		{circuitOf(2, qc.CNOT(0, 1), qc.NOT(0), qc.CNOT(0, 1)), 3},
	}
	for i, tc := range cases {
		red, _, err := reduceLight(tc.c)
		if err != nil {
			t.Errorf("case %d: reduceLight: %v", i, err)
			continue
		}
		if len(red.Gates) != tc.want {
			t.Errorf("case %d: got %d gates %v, want %d", i, len(red.Gates), red.Gates, tc.want)
		}
		mustEquivalent(t, tc.c.NumQubits(), tc.c, red)
	}
}

// TestReduceLightRandomCircuits checks the wire-structured pass's
// soundness the same way the graph-like chain is checked: seeded random
// circuits must keep their unitary.
func TestReduceLightRandomCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 60; trial++ {
		qubits := 2 + rng.Intn(4)
		gates := 5 + rng.Intn(36)
		c := randomDecomposed(rng, qubits, gates)
		red, _, err := reduceLight(c)
		if err != nil {
			t.Errorf("trial %d (%d qubits, %d gates): reduceLight: %v", trial, qubits, gates, err)
			continue
		}
		if len(red.Gates) > len(c.Gates) {
			t.Errorf("trial %d: light pass grew the circuit %d -> %d gates",
				trial, len(c.Gates), len(red.Gates))
		}
		mustEquivalent(t, qubits, c, red)
	}
}

// TestOptimizeNeverWorse checks the fall-back contract: the canonical
// volume of the returned circuit never exceeds the input's, and the
// returned circuit stays equivalent.
func TestOptimizeNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 25; trial++ {
		qubits := 2 + rng.Intn(3)
		c := randomDecomposed(rng, qubits, 8+rng.Intn(25))
		out, st, err := Optimize(c)
		if err != nil {
			t.Fatalf("trial %d: Optimize: %v", trial, err)
		}
		if st.CanonicalAfter > st.CanonicalBefore {
			t.Fatalf("trial %d: canonical volume regressed %d -> %d",
				trial, st.CanonicalBefore, st.CanonicalAfter)
		}
		if st.Applied == (st.FallbackReason != "") {
			t.Fatalf("trial %d: inconsistent stats: applied=%v reason=%q",
				trial, st.Applied, st.FallbackReason)
		}
		mustEquivalent(t, qubits, c, out)
	}
}

// TestOptimizeImproves feeds a circuit with obvious phase redundancy
// (T^2 = P costs one magic state instead of two T groups) and requires a
// strict canonical-volume win.
func TestOptimizeImproves(t *testing.T) {
	c := circuitOf(2,
		qc.T(0), qc.T(0),
		qc.CNOT(0, 1),
		qc.T(1), qc.T(1), qc.T(1), qc.T(1),
	)
	out, st, err := Optimize(c)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if !st.Applied {
		t.Fatalf("expected a strict improvement, got fallback: %s", st.FallbackReason)
	}
	if st.CanonicalAfter >= st.CanonicalBefore {
		t.Fatalf("expected canonical volume to drop, got %d -> %d",
			st.CanonicalBefore, st.CanonicalAfter)
	}
	if out.TCount() >= c.TCount() {
		t.Fatalf("expected T-count to drop, got %d -> %d", c.TCount(), out.TCount())
	}
	mustEquivalent(t, 2, c, out)
}

// TestOptimizeRejectsUndcomposed checks the input contract.
func TestOptimizeRejectsUndcomposed(t *testing.T) {
	if _, _, err := Optimize(circuitOf(2, qc.H(0))); err == nil {
		t.Fatal("expected an error for a non-decomposed circuit")
	}
	if _, _, err := Optimize(circuitOf(3, qc.Toffoli(0, 1, 2))); err == nil {
		t.Fatal("expected an error for a Toffoli circuit")
	}
}
