package icm

import "fmt"

// EventKind classifies causal-graph events.
type EventKind int

// Event kinds of the causal graph.
const (
	EvInit EventKind = iota
	EvCNOT
	EvMeas
)

// String returns a short mnemonic.
func (k EventKind) String() string {
	switch k {
	case EvInit:
		return "init"
	case EvCNOT:
		return "cnot"
	case EvMeas:
		return "meas"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one node of the causal graph: a line initialization, a CNOT, or
// a line measurement.
type Event struct {
	Kind EventKind
	// Line identifies the line for init/meas events; CNOT identifies the
	// gate for cnot events.
	Line, CNOT int
}

// CausalGraph is the DAG of temporal orderings of an ICM circuit (the
// causal graph of Paler & Wille, Section I-B), extended with the paper's
// time-ordered measurement constraints: a T block's input Z measurement
// precedes its selective teleportation measurements, and selective
// measurements of successive T gates on one qubit are ordered.
type CausalGraph struct {
	Events []Event
	// Succ holds successor event indices per event.
	Succ [][]int
	// eventOf locates init/meas/cnot events for lookups.
	initOf, measOf []int
	cnotOf         []int
}

// BuildCausalGraph constructs the DAG. It never fails on a valid Circuit;
// Validate the circuit first if unsure.
func (c *Circuit) BuildCausalGraph() *CausalGraph {
	g := &CausalGraph{
		initOf: make([]int, len(c.Lines)),
		measOf: make([]int, len(c.Lines)),
		cnotOf: make([]int, len(c.CNOTs)),
	}
	add := func(e Event) int {
		g.Events = append(g.Events, e)
		g.Succ = append(g.Succ, nil)
		return len(g.Events) - 1
	}
	for i := range c.Lines {
		g.initOf[i] = add(Event{Kind: EvInit, Line: i, CNOT: -1})
	}
	for i := range c.CNOTs {
		g.cnotOf[i] = add(Event{Kind: EvCNOT, Line: -1, CNOT: i})
	}
	for i := range c.Lines {
		g.measOf[i] = add(Event{Kind: EvMeas, Line: i, CNOT: -1})
	}
	edge := func(a, b int) { g.Succ[a] = append(g.Succ[a], b) }

	// Per-line program order: init → first CNOT → ... → last CNOT → meas.
	last := make([]int, len(c.Lines))
	for i := range last {
		last[i] = g.initOf[i]
	}
	for i, gate := range c.CNOTs {
		ev := g.cnotOf[i]
		edge(last[gate.Control], ev)
		edge(last[gate.Target], ev)
		last[gate.Control] = ev
		last[gate.Target] = ev
	}
	for i := range c.Lines {
		edge(last[i], g.measOf[i])
	}

	// T-block constraint: Z measurement before the four selective
	// teleportation measurements (Fig. 8(a,b)).
	for _, tg := range c.TGroups {
		for _, tl := range tg.TeleportLines {
			edge(g.measOf[tg.ZMeasLine], g.measOf[tl])
		}
	}
	// Per-qubit TSL ordering: selective measurements of T gate k precede
	// those of T gate k+1 (Fig. 8(c,d)).
	for _, tsl := range c.TSL {
		for k := 1; k < len(tsl); k++ {
			prev, cur := c.TGroups[tsl[k-1]], c.TGroups[tsl[k]]
			for _, a := range prev.TeleportLines {
				for _, b := range cur.TeleportLines {
					edge(g.measOf[a], g.measOf[b])
				}
			}
		}
	}
	return g
}

// InitEvent returns the init event index of a line.
func (g *CausalGraph) InitEvent(line int) int { return g.initOf[line] }

// MeasEvent returns the measurement event index of a line.
func (g *CausalGraph) MeasEvent(line int) int { return g.measOf[line] }

// CNOTEvent returns the event index of a CNOT.
func (g *CausalGraph) CNOTEvent(id int) int { return g.cnotOf[id] }

// TopoOrder returns a topological order of the events, or an error if the
// graph has a cycle (which would mean the circuit's time-ordering
// constraints are unsatisfiable).
func (g *CausalGraph) TopoOrder() ([]int, error) {
	indeg := make([]int, len(g.Events))
	for _, succ := range g.Succ {
		for _, b := range succ {
			indeg[b]++
		}
	}
	var queue []int
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	var order []int
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, b := range g.Succ[v] {
			indeg[b]--
			if indeg[b] == 0 {
				queue = append(queue, b)
			}
		}
	}
	if len(order) != len(g.Events) {
		return nil, fmt.Errorf("icm: causal graph has a cycle (%d of %d events ordered)",
			len(order), len(g.Events))
	}
	return order, nil
}

// Depth returns the longest path length (in events) through the DAG: a
// lower bound on the number of sequential steps any schedule needs.
func (g *CausalGraph) Depth() (int, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return 0, err
	}
	dist := make([]int, len(g.Events))
	depth := 0
	for _, v := range order {
		for _, b := range g.Succ[v] {
			if dist[v]+1 > dist[b] {
				dist[b] = dist[v] + 1
			}
			if dist[b]+1 > depth {
				depth = dist[b] + 1
			}
		}
	}
	if len(g.Events) > 0 && depth == 0 {
		depth = 1
	}
	return depth, nil
}

// CheckMeasurementOrder verifies that a given measurement time assignment
// (per line) satisfies every time-ordered measurement constraint.
func (g *CausalGraph) CheckMeasurementOrder(timeOf func(line int) int) error {
	for v, succ := range g.Succ {
		if g.Events[v].Kind != EvMeas {
			continue
		}
		for _, b := range succ {
			if g.Events[b].Kind != EvMeas {
				continue
			}
			ta := timeOf(g.Events[v].Line)
			tb := timeOf(g.Events[b].Line)
			if ta > tb {
				return fmt.Errorf("icm: measurement of line %d (t=%d) must precede line %d (t=%d)",
					g.Events[v].Line, ta, g.Events[b].Line, tb)
			}
		}
	}
	return nil
}
