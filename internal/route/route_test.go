package route

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/bridge"
	"repro/internal/canonical"
	"repro/internal/cluster"
	"repro/internal/decompose"
	"repro/internal/faults"
	"repro/internal/geom"
	"repro/internal/icm"
	"repro/internal/modular"
	"repro/internal/place"
	"repro/internal/qc"
)

func placed(t testing.TB, c *qc.Circuit, bridged bool, saIters int) *place.Placement {
	t.Helper()
	r, err := decompose.Decompose(c)
	if err != nil {
		t.Fatal(err)
	}
	ic, err := icm.FromDecomposed(r.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	d, err := canonical.Build(ic)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := modular.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	br, err := bridge.Run(nl, bridged)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.Build(nl, cluster.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	po := place.DefaultOptions()
	po.Iterations = saIters
	po.Seed = 7
	pl, err := place.Run(cl, br.Nets, po)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestRouteSmallCircuit(t *testing.T) {
	c := qc.New("small", 3)
	c.Append(qc.CNOT(0, 1), qc.CNOT(1, 2), qc.CNOT(0, 2))
	pl := placed(t, c, true, 150)
	res, err := Run(pl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 0 {
		t.Fatalf("failed nets: %v", res.Failed)
	}
	if len(res.Routes) != len(pl.Nets) {
		t.Fatalf("routed %d of %d nets", len(res.Routes), len(pl.Nets))
	}
	if err := Verify(pl, res); err != nil {
		t.Fatal(err)
	}
}

func TestRouteEndpointsMatchPins(t *testing.T) {
	c := qc.New("pins", 3)
	c.Append(qc.CNOT(0, 1), qc.CNOT(1, 2))
	pl := placed(t, c, false, 100)
	res, err := Run(pl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 0 {
		t.Fatalf("failed: %v", res.Failed)
	}
	for _, n := range pl.Nets {
		path := res.Routes[n.ID]
		a, err := pl.PinPos(n.PinA)
		if err != nil {
			t.Fatal(err)
		}
		b, err := pl.PinPos(n.PinB)
		if err != nil {
			t.Fatal(err)
		}
		// Without friend nets, endpoints are exactly the pins (order may
		// flip because A* starts from either end).
		first, last := path[0], path[len(path)-1]
		if !(first == a && last == b) && !(first == b && last == a) {
			t.Fatalf("net %d endpoints %v..%v want %v..%v", n.ID, first, last, a, b)
		}
	}
}

func TestRouteTGateWithBoxes(t *testing.T) {
	c := qc.New("t", 2)
	c.Append(qc.T(0), qc.CNOT(0, 1))
	pl := placed(t, c, true, 200)
	res, err := Run(pl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 0 {
		t.Fatalf("failed nets: %v (routed %d)", res.Failed, len(res.Routes))
	}
	if err := Verify(pl, res); err != nil {
		t.Fatal(err)
	}
	if res.Bounds.Empty() {
		t.Fatal("empty bounds")
	}
}

func TestFriendNetsReduceWirelength(t *testing.T) {
	// Bridged circuits produce shared pins; friend-net-aware routing must
	// use no more wire than pin-to-pin routing.
	mk := func() *qc.Circuit {
		c := qc.New("friend", 4)
		c.Append(qc.CNOT(0, 1), qc.CNOT(0, 1), qc.CNOT(1, 2), qc.CNOT(1, 2), qc.CNOT(2, 3))
		return c
	}
	plWith := placed(t, mk(), true, 150)
	oWith := DefaultOptions()
	resWith, err := Run(plWith, oWith)
	if err != nil {
		t.Fatal(err)
	}
	plWithout := placed(t, mk(), true, 150)
	oWithout := DefaultOptions()
	oWithout.FriendNets = false
	resWithout, err := Run(plWithout, oWithout)
	if err != nil {
		t.Fatal(err)
	}
	if len(resWith.Failed) > len(resWithout.Failed) {
		t.Fatalf("friend nets reduced routability: %d vs %d failures",
			len(resWith.Failed), len(resWithout.Failed))
	}
	if resWith.WireCells() > resWithout.WireCells() {
		t.Fatalf("friend nets increased wire: %d vs %d cells",
			resWith.WireCells(), resWithout.WireCells())
	}
	t.Logf("wire cells: %d (friend-aware) vs %d (plain)",
		resWith.WireCells(), resWithout.WireCells())
}

func TestVerifyCatchesOverlap(t *testing.T) {
	c := qc.New("v", 3)
	c.Append(qc.CNOT(0, 1), qc.CNOT(1, 2))
	pl := placed(t, c, false, 100)
	res, err := Run(pl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Routes) < 2 {
		t.Skip("need at least two routes")
	}
	// Corrupt: copy one net's mid-path into another's.
	var ids []int
	for id := range res.Routes {
		ids = append(ids, id)
	}
	a, b := ids[0], ids[1]
	if len(res.Routes[a]) >= 3 {
		mid := res.Routes[a][1]
		path := res.Routes[b]
		if len(path) >= 3 {
			path[1] = mid
			res.Routes[b] = path
			if err := Verify(pl, res); err == nil {
				t.Fatal("corrupted overlap not caught")
			}
		}
	}
}

func TestRouteBenchmarkScale(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-scale routing in -short mode")
	}
	spec, err := qc.BenchmarkByName("4gt10-v1_81")
	if err != nil {
		t.Fatal(err)
	}
	pl := placed(t, mustGen(t, spec), true, 500)
	res, err := Run(pl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	routed := len(res.Routes)
	total := len(pl.Nets)
	if routed < total*9/10 {
		t.Fatalf("only %d/%d nets routed", routed, total)
	}
	if err := Verify(pl, res); err != nil {
		t.Fatal(err)
	}
	firstPct := 100 * res.FirstPassRouted / total
	t.Logf("%s: %d/%d routed (%d%% first pass), %d iterations, %d rip-ups, bounds %v",
		spec.Name, routed, total, firstPct, res.Iterations, res.RippedUp, res.Bounds.Size())
}

func TestPinCellsUniqueAfterHoming(t *testing.T) {
	// Benchmark-scale placement with the shared inter-tier plane: facing
	// pins may collide geometrically; homePin must give every pin a
	// unique, obstacle-free cell.
	spec, err := qc.BenchmarkByName("4gt10-v1_81")
	if err != nil {
		t.Fatal(err)
	}
	pl := placed(t, mustGen(t, spec), true, 0)
	res, err := Run(pl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 0 {
		t.Fatalf("failed nets: %v", res.Failed)
	}
	// Verify rejects mid-path overlaps, which is where colliding pin
	// homes would surface.
	if err := Verify(pl, res); err != nil {
		t.Fatal(err)
	}
}

func TestRipUpBudgetBoundsWork(t *testing.T) {
	spec, err := qc.BenchmarkByName("4gt10-v1_81")
	if err != nil {
		t.Fatal(err)
	}
	pl := placed(t, mustGen(t, spec), true, 0)
	res, err := Run(pl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.RippedUp > 10*len(pl.Nets)+len(pl.Nets) {
		t.Fatalf("rip-ups %d exceed the budget for %d nets", res.RippedUp, len(pl.Nets))
	}
}

func TestBlockedDetection(t *testing.T) {
	c := qc.New("b", 2)
	c.Append(qc.CNOT(0, 1))
	pl := placed(t, c, false, 50)
	res, err := Run(pl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Every route cell must avoid module interiors.
	for id, path := range res.Routes {
		for _, cell := range path {
			for m := range pl.Clust.NL.Modules {
				if pl.ModuleBox(m).Contains(cell) {
					t.Fatalf("net %d passes through module %d at %v", id, m, cell)
				}
			}
		}
	}
	_ = geom.Pt(0, 0, 0)
}

// Verify must name the module a corrupted path pierces. The result is
// hand-built (PinCells nil) so only the structural checks run against a
// path driven straight through module 0's body.
func TestVerifyRejectsPathThroughModule(t *testing.T) {
	c := qc.New("pierce", 2)
	c.Append(qc.CNOT(0, 1))
	pl := placed(t, c, false, 50)
	mb := pl.ModuleBox(0)
	y, z := mb.Min.Y, mb.Min.Z
	var path geom.Path
	for x := mb.Min.X - 1; x <= mb.Max.X; x++ {
		path = append(path, geom.Pt(x, y, z))
	}
	res := &Result{Routes: map[int]geom.Path{0: path}}
	err := Verify(pl, res)
	if err == nil {
		t.Fatal("path through a module body not caught")
	}
	if !strings.Contains(err.Error(), "inside module 0 body") {
		t.Fatalf("error does not name the pierced module: %v", err)
	}
}

// Verify must reject a routed path whose terminal is anchored neither at
// its own pin cell nor on a friend's path. Truncating a real route's first
// cell detaches that terminal exactly the way a ripped-up friend would.
func TestVerifyRejectsDanglingFriendTerminal(t *testing.T) {
	c := qc.New("dangle", 3)
	c.Append(qc.CNOT(0, 1), qc.CNOT(1, 2))
	// Unbridged: no shared pins, so no friend path can legitimize the
	// detached terminal.
	pl := placed(t, c, false, 100)
	res, err := Run(pl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 0 {
		t.Fatalf("failed nets: %v", res.Failed)
	}
	if res.PinCells == nil {
		t.Fatal("router did not record PinCells")
	}
	if err := Verify(pl, res); err != nil {
		t.Fatalf("intact result must verify: %v", err)
	}
	corrupted := -1
	for _, n := range pl.Nets {
		if len(res.Routes[n.ID]) >= 3 {
			res.Routes[n.ID] = res.Routes[n.ID][1:]
			corrupted = n.ID
			break
		}
	}
	if corrupted < 0 {
		t.Skip("no route long enough to truncate")
	}
	err = Verify(pl, res)
	if err == nil {
		t.Fatalf("dangling terminal on net %d not caught", corrupted)
	}
	if !strings.Contains(err.Error(), "dangle") {
		t.Fatalf("unexpected error for dangling terminal: %v", err)
	}
}

// mustGen generates a benchmark circuit, failing the test on error.
func mustGen(tb testing.TB, spec qc.BenchmarkSpec) *qc.Circuit {
	tb.Helper()
	c, err := spec.Generate()
	if err != nil {
		tb.Fatal(err)
	}
	return c
}

// Verify must refuse degraded results: forced net failures either land in
// FallbackNets (fallback on, ErrDegraded) or Failed (fallback off,
// ErrUnroutable) — in neither case may Verify pass silently.
func TestVerifyRejectsDegradedRouting(t *testing.T) {
	c := qc.New("degraded", 3)
	c.Append(qc.CNOT(0, 1), qc.CNOT(1, 2), qc.CNOT(0, 2))
	pl := placed(t, c, true, 150)

	opts := DefaultOptions()
	opts.FailNet = func(int) bool { return true }
	res, err := Run(pl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || len(res.FallbackNets) == 0 {
		t.Fatalf("want fallback-degraded result, got degraded=%v fallback=%d failed=%d",
			res.Degraded, len(res.FallbackNets), len(res.Failed))
	}
	if err := Verify(pl, res); !errors.Is(err, faults.ErrDegraded) {
		t.Fatalf("want ErrDegraded from Verify, got %v", err)
	}

	opts.Fallback = false
	res, err = Run(pl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || len(res.Failed) == 0 {
		t.Fatalf("want unrouted nets, got degraded=%v failed=%d", res.Degraded, len(res.Failed))
	}
	for _, f := range res.FailedNets {
		if f.Reason == "" || f.Manhattan <= 0 {
			t.Fatalf("net %d: incomplete diagnostics: %+v", f.NetID, f)
		}
	}
	if err := Verify(pl, res); !errors.Is(err, faults.ErrUnroutable) {
		t.Fatalf("want ErrUnroutable from Verify, got %v", err)
	}
}

// TestNegotiationReanchorsFriendTerminals drives a deterministic
// negotiation round over a bridged circuit (shared pins, friend-anchored
// terminals): fault injection makes one friend-connected net fail its
// first attempts, so the router rips up the routed friends around its
// pins — exactly the paths other nets' terminals borrowed — before the
// net finally routes. Every victim must be re-routed and every terminal
// re-anchored onto a live path; Verify's terminal walk rejects any route
// left pointing at freed cells.
func TestNegotiationReanchorsFriendTerminals(t *testing.T) {
	c := qc.New("renego", 4)
	c.Append(qc.CNOT(0, 1), qc.CNOT(0, 1), qc.CNOT(1, 2), qc.CNOT(1, 2), qc.CNOT(2, 3))
	pl := placed(t, c, true, 150)

	// Fail the first friend-connected net (a net sharing a pin with
	// another) so its negotiation rounds rip up routed friends.
	sharedPins := map[int]int{}
	for _, n := range pl.Nets {
		sharedPins[n.PinA]++
		sharedPins[n.PinB]++
	}
	failTarget := -1
	for _, n := range pl.Nets {
		if sharedPins[n.PinA] > 1 || sharedPins[n.PinB] > 1 {
			failTarget = n.ID
			break
		}
	}
	if failTarget < 0 {
		t.Fatal("bridging produced no shared pins; cannot exercise friend anchoring")
	}

	opts := DefaultOptions()
	opts.Serial = true // FailNet below is stateful, so searches must not race
	attempts := 0
	opts.FailNet = func(id int) bool {
		if id != failTarget {
			return false
		}
		attempts++
		return attempts <= 2 // fail the first pass and one negotiation try
	}
	res, err := Run(pl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.RippedUp == 0 {
		t.Fatalf("negotiation never ripped up a friend (net %d, %d attempts)", failTarget, attempts)
	}
	if len(res.Failed) != 0 || res.Degraded {
		t.Fatalf("negotiation did not recover: failed=%v degraded=%v", res.Failed, res.Degraded)
	}
	if len(res.Routes) != len(pl.Nets) {
		t.Fatalf("routed %d of %d nets", len(res.Routes), len(pl.Nets))
	}
	if err := Verify(pl, res); err != nil {
		t.Fatalf("post-negotiation verify: %v", err)
	}
}
