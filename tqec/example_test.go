package tqec_test

import (
	"context"
	"fmt"
	"time"

	"repro/internal/qc"
	"repro/tqec"
)

// ExampleCompileContext compiles a small circuit end to end — preprocess,
// iterative bridging, SA placement, negotiated routing — under a
// deadline, then verifies the structural guarantees of the result. For a
// fixed seed (and place.Options.Chains count) the output is
// bit-identical across runs.
func ExampleCompileContext() {
	c := qc.New("toffoli-ish", 3)
	c.Append(qc.CNOT(0, 1), qc.CNOT(1, 2), qc.CNOT(0, 2))

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	opts := tqec.DefaultOptions()
	opts.Place.Seed = 7

	res, err := tqec.CompileContext(ctx, c, opts)
	if err != nil {
		fmt.Println("compile failed:", err)
		return
	}
	fmt.Println("verified:", res.Verify() == nil)
	fmt.Println("compressed volume positive:", res.Volume > 0)
	fmt.Println("compression ratio positive:", res.CompressionRatio() > 0)
	// Output:
	// verified: true
	// compressed volume positive: true
	// compression ratio positive: true
}
