# Build/verify entry points. `make ci` is the full gate: vet, the
# repo-specific tqeclint analyzers (doccomment included — the docs gate),
# build, race-enabled tests, a replay of the committed fuzz corpora, a
# one-iteration bench-json smoke run that validates the BENCH_*.json
# schema round-trips, and a bounded chaos soak of the resilient service
# layer (`make chaos`).

GO ?= go

# Minimum acceptable total statement coverage for `make cover`, in percent.
# Set ~2 points under the measured baseline so genuine regressions fail the
# gate without the threshold flaking on noise.
COVER_MIN ?= 79
COVER_OUT ?= $(if $(TMPDIR),$(TMPDIR),/tmp)/tqec_cover.out

.PHONY: all build vet lint test race cover fuzz-seeds bench bench-json bench-smoke check chaos ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Run the in-tree static analyzers (internal/lint) over the whole module.
# Exits non-zero on any finding; see DESIGN.md for the enforced invariants.
# Per-package function summaries and findings persist under LINT_FACTS
# keyed by content hash, so a no-change rerun replays from the cache
# instead of re-typechecking the module (LINT_FLAGS adds e.g. -stats or
# -summary "$GITHUB_STEP_SUMMARY" in CI).
LINT_FACTS ?= .cache/lint
LINT_FLAGS ?=
lint:
	$(GO) run ./cmd/tqeclint -facts-dir '$(LINT_FACTS)' $(LINT_FLAGS) ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Total statement coverage with an enforced floor. The profile is written
# to $(COVER_OUT) so `go tool cover -html` can inspect it afterwards.
cover:
	$(GO) test -coverprofile='$(COVER_OUT)' ./...
	@$(GO) tool cover -func='$(COVER_OUT)' | tail -n 1
	@total=$$($(GO) tool cover -func='$(COVER_OUT)' | awk '/^total:/ { gsub(/%/, "", $$3); print $$3 }'); \
	awk -v t="$$total" -v min="$(COVER_MIN)" 'BEGIN { \
		if (t + 0 < min + 0) { printf "cover: total %.1f%% is below the %.1f%% floor\n", t, min; exit 1 } \
		printf "cover: total %.1f%% meets the %.1f%% floor\n", t, min }'

# Replay the committed fuzz seed corpora as plain regression tests. The
# corpus packages are discovered, not hard-coded: every package with a
# testdata/fuzz directory is replayed, and finding none is an error (it
# would mean the corpora were silently dropped).
fuzz-seeds:
	@pkgs=$$($(GO) list -f '{{if .Dir}}{{.ImportPath}} {{.Dir}}{{end}}' ./... | \
		while read -r pkg dir; do [ -d "$$dir/testdata/fuzz" ] && echo "$$pkg"; done; true); \
	if [ -z "$$pkgs" ]; then echo "fuzz-seeds: no committed fuzz corpora under testdata/fuzz" >&2; exit 1; fi; \
	echo "fuzz-seeds: replaying corpora in:" $$pkgs; \
	$(GO) test -run 'Fuzz' $$pkgs

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# Regenerate the committed performance artifact (see BENCHMARKS.md). The
# partitioned section compiles the clustered workload whole and split so
# the artifact records whether partitioning pays on this machine.
bench-json:
	$(GO) run ./cmd/tqecbench -bench-out BENCH_seed.json -bench-iters 3 -bench-kernels -bench-partition 6

# One-iteration bench run into a scratch file: exercises the full
# measurement path and proves the JSON schema round-trips (-bench-out
# re-reads and validates what it wrote; the self-compare exercises the
# regression judge).
bench-smoke:
	$(GO) run ./cmd/tqecbench -bench-out $${TMPDIR:-/tmp}/BENCH_ci_smoke.json -bench-iters 1
	$(GO) run ./cmd/tqecbench -compare $${TMPDIR:-/tmp}/BENCH_ci_smoke.json $${TMPDIR:-/tmp}/BENCH_ci_smoke.json

# Differential and invariant verification (cmd/tqecverify): re-derives the
# pipeline's structural guarantees on the seed benchmarks plus randomized
# circuits, and cross-checks the determinism contracts (multi-chain
# placement, serial vs concurrent routing, cached vs fresh compile bytes,
# bridged vs unbridged). `-bench all` sweeps every paper benchmark but
# takes much longer; CI runs the seed set.
check:
	$(GO) run ./cmd/tqecverify -bench seed -random 2 -timeout 10m

# Bounded chaos soak under the race detector: the service-layer fault
# drill (internal/harness TestChaosSoak) hammers a journal-backed server
# with crashes, torn-tail journal corruption, 5xx bursts, slow responses
# and a fault mix of injected transients for CHAOS_SECONDS, then proves
# every accepted job terminal exactly once with byte-identical payloads.
CHAOS_SECONDS ?= 30
chaos:
	TQEC_CHAOS_SECONDS=$(CHAOS_SECONDS) $(GO) test -race -count=1 -run TestChaosSoak -timeout 10m ./internal/harness

ci: vet lint build race cover fuzz-seeds check bench-smoke chaos
