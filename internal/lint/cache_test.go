package lint

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// writeTempModule lays out a two-package module (b imports a) and returns
// its root. The deliberate panic in b is the finding whose replay the
// cache tests observe.
func writeTempModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	files := map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"a/a.go": `// Package a is the dependency half of the cache fixture.
package a

// V is a deterministic value.
func V() int { return 1 }
`,
		"b/b.go": `// Package b imports a and carries one deliberate finding.
package b

import "tmpmod/a"

// W wraps a.V.
func W() int { return a.V() }

// Boom trips the nopanic analyzer.
func Boom() {
	panic("deliberate")
}
`,
	}
	for name, content := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// chdir switches into dir for the duration of the test; the source
// importer resolves module-internal imports relative to the process
// working directory.
func chdir(t *testing.T, dir string) {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(cwd); err != nil {
			t.Fatalf("restoring working directory: %v", err)
		}
	})
}

// TestIncrementalCache drives the facts cache through its three regimes:
// cold (everything analyzed, entries written), fully warm (findings
// replayed with no analysis), and invalidation (editing a dependency
// re-analyzes its importer chain; editing a leaf leaves the dependency
// warm).
func TestIncrementalCache(t *testing.T) {
	root := writeTempModule(t)
	chdir(t, root)
	factsDir := filepath.Join(root, ".cache", "lint")

	cold, coldStats, err := RunIncremental(".", factsDir, nil, Analyzers())
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if coldStats.Packages != 2 || coldStats.CachedPackages != 0 {
		t.Fatalf("cold run: packages=%d cached=%d, want 2/0", coldStats.Packages, coldStats.CachedPackages)
	}
	if len(cold) != 1 || cold[0].Analyzer != "nopanic" {
		t.Fatalf("cold run findings = %v, want one nopanic finding", cold)
	}

	warm, warmStats, err := RunIncremental(".", factsDir, nil, Analyzers())
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if warmStats.CachedPackages != warmStats.Packages {
		t.Fatalf("warm run: cached=%d of %d, want fully warm", warmStats.CachedPackages, warmStats.Packages)
	}
	if warmStats.FactsDuration != 0 {
		t.Errorf("warm run computed facts (%v); the fully-warm path must not analyze", warmStats.FactsDuration)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Errorf("warm findings differ from cold:\ncold: %v\nwarm: %v", cold, warm)
	}

	// Editing the dependency invalidates both it and its importer.
	appendFile(t, filepath.Join(root, "a", "a.go"), "\n// V2 is another value.\nfunc V2() int { return 2 }\n")
	_, depStats, err := RunIncremental(".", factsDir, nil, Analyzers())
	if err != nil {
		t.Fatalf("post-dependency-edit run: %v", err)
	}
	if depStats.CachedPackages != 0 {
		t.Errorf("dependency edit left %d package(s) warm, want 0", depStats.CachedPackages)
	}

	// Editing the leaf importer leaves the dependency warm.
	appendFile(t, filepath.Join(root, "b", "b.go"), "\n// W2 wraps V2.\nfunc W2() int { return a.V2() }\n")
	_, leafStats, err := RunIncremental(".", factsDir, nil, Analyzers())
	if err != nil {
		t.Fatalf("post-leaf-edit run: %v", err)
	}
	if leafStats.CachedPackages != 1 {
		t.Errorf("leaf edit left %d package(s) warm, want 1 (the dependency)", leafStats.CachedPackages)
	}
}

func appendFile(t *testing.T, path, content string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(content); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCacheCorruptEntryIsCold proves a truncated entry degrades to a cold
// package instead of failing the run.
func TestCacheCorruptEntryIsCold(t *testing.T) {
	root := writeTempModule(t)
	chdir(t, root)
	factsDir := filepath.Join(root, ".cache", "lint")
	if _, _, err := RunIncremental(".", factsDir, nil, Analyzers()); err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if err := os.WriteFile(filepath.Join(factsDir, cacheFileName("tmpmod/a")), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, stats, err := RunIncremental(".", factsDir, nil, Analyzers())
	if err != nil {
		t.Fatalf("run with corrupt entry: %v", err)
	}
	if stats.CachedPackages != 1 {
		t.Errorf("corrupt entry: cached=%d, want 1 (only the intact package)", stats.CachedPackages)
	}
	if len(findings) != 1 {
		t.Errorf("corrupt entry changed findings: %v", findings)
	}
}
