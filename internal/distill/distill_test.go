package distill

import (
	"testing"

	"repro/internal/icm"
)

func TestBoxVolumes(t *testing.T) {
	if YBoxSize.X*YBoxSize.Y*YBoxSize.Z != YBoxVolume {
		t.Errorf("Y box size inconsistent with volume")
	}
	if ABoxSize.X*ABoxSize.Y*ABoxSize.Z != ABoxVolume {
		t.Errorf("A box size inconsistent with volume")
	}
	if YBoxVolume != 18 || ABoxVolume != 192 {
		t.Errorf("paper volumes: Y=%d A=%d", YBoxVolume, ABoxVolume)
	}
}

func TestBoxVolumeTableI(t *testing.T) {
	// Table I, 4gt10-v1_81: 42 |Y⟩ → 756, 21 |A⟩ → 4032.
	if got := BoxVolume(42, 0); got != 756 {
		t.Errorf("Vol_|Y⟩: %d want 756", got)
	}
	if got := BoxVolume(0, 21); got != 4032 {
		t.Errorf("Vol_|A⟩: %d want 4032", got)
	}
	if got := BoxVolume(42, 21); got != 756+4032 {
		t.Errorf("total: %d", got)
	}
	// ham15_107: 1246 |Y⟩ → 22428, 623 |A⟩ → 119616.
	if got := BoxVolume(1246, 623); got != 22428+119616 {
		t.Errorf("ham15 box volume: %d", got)
	}
}

func TestYCircuitShape(t *testing.T) {
	c := YCircuit()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.NumY != 7 {
		t.Errorf("|Y⟩ injections: %d want 7", s.NumY)
	}
	if s.NumA != 0 {
		t.Errorf("|A⟩ injections: %d want 0", s.NumA)
	}
	if s.Lines != 8 {
		t.Errorf("lines: %d want 8", s.Lines)
	}
	if s.CNOTs == 0 {
		t.Error("no CNOTs")
	}
	if c.Lines[0].Meas != icm.MeasOut {
		t.Error("output line should be unmeasured")
	}
}

func TestACircuitShape(t *testing.T) {
	c := ACircuit()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.NumA != 15 {
		t.Errorf("|A⟩ injections: %d want 15", s.NumA)
	}
	if s.Lines != 16 {
		t.Errorf("lines: %d want 16", s.Lines)
	}
	// RM(1,4) stabilizers touch 8 qubits each → 7 CNOTs per generator,
	// plus 4 decode CNOTs.
	if s.CNOTs != 4*7+4 {
		t.Errorf("CNOTs: %d want %d", s.CNOTs, 4*7+4)
	}
}

func TestStabilizerCoverage(t *testing.T) {
	// Every injected line of the Y circuit must participate in ≥1 CNOT:
	// an uncoupled injection would be undistilled.
	for _, c := range []*icm.Circuit{YCircuit(), ACircuit()} {
		touched := make(map[int]bool)
		for _, g := range c.CNOTs {
			touched[g.Control] = true
			touched[g.Target] = true
		}
		for _, l := range c.Lines {
			if l.Init == icm.InjectY || l.Init == icm.InjectA {
				if !touched[l.ID] {
					t.Errorf("%s: injected line %d uncoupled", c.Name, l.ID)
				}
			}
		}
	}
}
