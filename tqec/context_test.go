package tqec

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/bridge"
	"repro/internal/faults"
	"repro/internal/place"
	"repro/internal/qc"
	"repro/internal/route"
)

func cnot3() *qc.Circuit {
	c := qc.New("ctx-probe", 3)
	c.Append(qc.CNOT(0, 1), qc.CNOT(1, 2), qc.CNOT(0, 2))
	return c
}

// An already-canceled context must abort CompileContext promptly with a
// StageError wrapping ErrCanceled and a nil result.
func TestCompileContextAlreadyCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res, err := CompileContext(ctx, cnot3(), FastOptions())
	if res != nil {
		t.Fatal("result should be nil")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if _, ok := AsStageError(err); !ok {
		t.Fatalf("want StageError, got %T %v", err, err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("abort took %v, want prompt return", d)
	}
}

// Each iterative stage must individually observe an already-canceled
// context and return ErrCanceled.
func TestStageRunContextCanceled(t *testing.T) {
	res, err := Compile(cnot3(), FastOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := bridge.RunContext(ctx, res.Netlist, true); !errors.Is(err, faults.ErrCanceled) {
		t.Fatalf("bridge: want ErrCanceled, got %v", err)
	}
	if _, err := place.RunContext(ctx, res.Clustering, res.Bridging.Nets, place.DefaultOptions()); !errors.Is(err, faults.ErrCanceled) {
		t.Fatalf("place: want ErrCanceled, got %v", err)
	}
	if _, err := route.RunContext(ctx, res.Placement, route.DefaultOptions()); !errors.Is(err, faults.ErrCanceled) {
		t.Fatalf("route: want ErrCanceled, got %v", err)
	}
}

// A deadline expiring mid-SA must abort within a bounded wall-clock: the
// annealer polls cancellation every few dozen moves, so a huge iteration
// budget must not run to completion.
func TestDeadlineAbortsMidSA(t *testing.T) {
	opts := DefaultOptions()
	opts.Place.Iterations = 200_000_000 // hours if run to completion
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := CompileContext(ctx, cnot3(), opts)
	elapsed := time.Since(start)
	if res != nil {
		t.Fatal("result should be nil")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	se, ok := AsStageError(err)
	if !ok || se.Stage != StagePlacement {
		t.Fatalf("want placement StageError, got %v", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("mid-SA abort took %v, want bounded wall-clock", elapsed)
	}
}

// A successful compile records exactly one placement attempt and no
// fault-tolerance counters.
func TestCleanCompileCountsNothing(t *testing.T) {
	res, err := Compile(cnot3(), FastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.PlacementAttempts != 1 {
		t.Fatalf("PlacementAttempts = %d, want 1", res.PlacementAttempts)
	}
	if res.Degraded {
		t.Fatal("clean compile should not be degraded")
	}
	if err := res.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

// With fallback routing disabled, forced net failures leave unrouted nets:
// the compile still succeeds (degraded), Verify fails with ErrUnroutable,
// and StrictRouting turns the same situation into a hard routing error.
func TestUnroutableNetsDegradeOrFailStrict(t *testing.T) {
	opts := FastOptions()
	opts.Route.Fallback = false
	opts.Route.FailNet = func(int) bool { return true }
	res, err := Compile(cnot3(), opts)
	if err != nil {
		t.Fatalf("degraded compile should succeed, got %v", err)
	}
	if !res.Degraded || len(res.Routing.Failed) == 0 {
		t.Fatalf("want degraded result with unrouted nets, got degraded=%v failed=%d",
			res.Degraded, len(res.Routing.Failed))
	}
	for _, f := range res.Routing.FailedNets {
		if f.Fallback {
			t.Fatalf("net %d marked fallback-routed with fallback disabled", f.NetID)
		}
	}
	if verr := res.Verify(); !errors.Is(verr, ErrUnroutable) {
		t.Fatalf("Verify must fail with ErrUnroutable, got %v", verr)
	}

	opts.StrictRouting = true
	if _, err := Compile(cnot3(), opts); !errors.Is(err, ErrUnroutable) {
		t.Fatalf("strict routing: want ErrUnroutable, got %v", err)
	} else if se, ok := AsStageError(err); !ok || se.Stage != StageRouting {
		t.Fatalf("strict routing: want routing StageError, got %v", err)
	}
}
