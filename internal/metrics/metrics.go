// Package metrics collects the per-stage runtime breakdown and dimension
// summaries reported in the paper's Tables IV and VI.
package metrics

import (
	"fmt"
	"sort"
	"time"
)

// Stage names used by the compression pipeline (Table VI's columns, plus
// the ZX pre-compression stage added on top of the paper's flow).
const (
	StageOther     = "other"
	StageZX        = "zx rewrite"
	StageBridging  = "iterative bridging"
	StagePlacement = "module placement"
	StageRouting   = "dual-defect net routing"
	StagePartition = "qubit partition"
	StageStitch    = "seam stitching"
)

// Counter names used by the fault-tolerant pipeline.
const (
	CounterPlacementRetries = "placement retries"
	CounterFallbackNets     = "fallback-routed nets"
	CounterUnroutedNets     = "unrouted nets"
	CounterDegradations     = "degraded stages"
	CounterRecoveredPanics  = "recovered panics"
	CounterZXGatesBefore    = "zx gates before"
	CounterZXGatesAfter     = "zx gates after"
	CounterZXRewrites       = "zx rewrites"
	CounterZXFallbacks      = "zx fallbacks"
)

// Breakdown accumulates wall-clock time per pipeline stage plus event
// counters (retries, degradations, recovered panics).
type Breakdown struct {
	durations map[string]time.Duration
	order     []string

	counters     map[string]int
	counterOrder []string
}

// NewBreakdown returns an empty breakdown.
func NewBreakdown() *Breakdown {
	return &Breakdown{
		durations: map[string]time.Duration{},
		counters:  map[string]int{},
	}
}

// Time runs f and charges its wall time to the stage.
func (b *Breakdown) Time(stage string, f func()) {
	start := time.Now()
	f()
	b.Add(stage, time.Since(start))
}

// Add charges d to the stage.
func (b *Breakdown) Add(stage string, d time.Duration) {
	if _, ok := b.durations[stage]; !ok {
		b.order = append(b.order, stage)
	}
	b.durations[stage] += d
}

// Get returns the accumulated duration of a stage.
func (b *Breakdown) Get(stage string) time.Duration { return b.durations[stage] }

// Total returns the sum over all stages.
func (b *Breakdown) Total() time.Duration {
	var t time.Duration
	for _, d := range b.durations {
		t += d
	}
	return t
}

// Ratio returns the stage's share of the total in percent (0 when empty).
func (b *Breakdown) Ratio(stage string) float64 {
	total := b.Total()
	if total == 0 {
		return 0
	}
	return 100 * float64(b.durations[stage]) / float64(total)
}

// Stages returns the stage names in first-charge order.
func (b *Breakdown) Stages() []string { return append([]string(nil), b.order...) }

// Count adds delta to the named event counter.
func (b *Breakdown) Count(name string, delta int) {
	if _, ok := b.counters[name]; !ok {
		b.counterOrder = append(b.counterOrder, name)
	}
	b.counters[name] += delta
}

// Counter returns the accumulated count of the named event.
func (b *Breakdown) Counter(name string) int { return b.counters[name] }

// Counters returns the event counter names in first-count order.
func (b *Breakdown) Counters() []string {
	return append([]string(nil), b.counterOrder...)
}

// String renders a Table-VI style row set, followed by any non-zero event
// counters.
func (b *Breakdown) String() string {
	stages := b.Stages()
	sort.Strings(stages)
	s := ""
	for _, st := range stages {
		s += fmt.Sprintf("%-24s %10.3fs %6.2f%%\n", st, b.Get(st).Seconds(), b.Ratio(st))
	}
	s += fmt.Sprintf("%-24s %10.3fs\n", "total", b.Total().Seconds())
	counters := b.Counters()
	sort.Strings(counters)
	for _, c := range counters {
		if n := b.counters[c]; n != 0 {
			s += fmt.Sprintf("%-24s %10d\n", c, n)
		}
	}
	return s
}

// Dims is a W/H/D/Volume row (Table IV).
type Dims struct {
	W, H, D int
}

// Volume returns W×H×D.
func (d Dims) Volume() int { return d.W * d.H * d.D }

// String renders the row.
func (d Dims) String() string {
	return fmt.Sprintf("%d×%d×%d=%d", d.W, d.H, d.D, d.Volume())
}

// Ratio returns v's ratio over base (the paper's "Ratio" columns), or 0
// when base is 0.
func Ratio(v, base int) float64 {
	if base == 0 {
		return 0
	}
	return float64(v) / float64(base)
}
