package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// ErrJobEvicted marks an async job the registry evicted (TTL or capacity
// pressure) between submission and the poll that would have read its
// terminal state. It is a distinct outcome, not a transport failure: the
// job may well have finished, but its result is gone. Detect it with
// errors.Is on LoadResult.Err.
var ErrJobEvicted = errors.New("job evicted before poll observed a terminal state")

// LoadOptions configures RunLoad, the concurrent load generator for a tqecd
// compile service.
type LoadOptions struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8321".
	BaseURL string
	// Client performs the requests (nil = http.DefaultClient).
	Client *http.Client
	// Bodies holds one JSON compile-request body per request to fire.
	// Duplicates are how cache and single-flight behaviour get exercised.
	Bodies [][]byte
	// Concurrency is the number of in-flight requests (0 = 8).
	Concurrency int
	// Async routes requests through POST /v1/jobs plus polling instead of
	// the synchronous POST /v1/compile endpoint.
	Async bool
	// PollInterval is the async polling cadence (0 = 5ms).
	PollInterval time.Duration

	// FaultFraction selects that fraction of requests (deterministically,
	// from FaultSeed and the request index) to carry an injected
	// options.fault_attempts, exercising the server's retry path under
	// concurrency. The server must run with AllowFaultInjection; because
	// fault_attempts is excluded from the content address, a faulted
	// request must still produce bytes identical to its unfaulted twin.
	FaultFraction float64
	// FaultAttempts is the number of injected transient faults per
	// selected request (0 = 2, which a default retry budget absorbs).
	FaultAttempts int
	// FaultSeed decorrelates the fault-mix selection between runs.
	FaultSeed uint64
}

// LoadResult records the terminal outcome of one generated request.
type LoadResult struct {
	// Index is the request's position in LoadOptions.Bodies.
	Index int
	// Status is the final HTTP status (for async runs, the submit status;
	// job failures keep 202 and surface through ErrorBody).
	Status int
	// Cache is the reported cache outcome (hit/miss/shared), empty on
	// failure.
	Cache string
	// Key is the content address the server reported, when available.
	Key string
	// JobID is the async job ID the server assigned (empty for sync runs
	// and rejected submissions); crash-recovery tests use it to poll jobs
	// across a server restart.
	JobID string
	// Faulted marks a request the fault-mix mode mutated to carry
	// injected transient faults.
	Faulted bool
	// Body is the raw success payload (the compile result JSON).
	Body []byte
	// ErrorBody is the raw structured error payload, when the request
	// failed with a JSON error.
	ErrorBody []byte
	// Err is a transport or protocol failure (nil for clean HTTP
	// exchanges, including 4xx/5xx ones).
	Err error
}

// loadJobView mirrors the subset of the server's job view the generator
// needs; declared locally so the harness stays decoupled from the server
// package.
type loadJobView struct {
	ID     string          `json:"id"`
	Status string          `json:"status"`
	Key    string          `json:"key"`
	Cache  string          `json:"cache"`
	Result json.RawMessage `json:"result"`
	Error  json.RawMessage `json:"error"`
}

// RunLoad fires every body in opts.Bodies at the server with bounded
// concurrency and returns one LoadResult per body, index-aligned. Transport
// errors are recorded per request, not returned: the only error return is a
// configuration problem or a canceled context.
func RunLoad(ctx context.Context, opts LoadOptions) ([]LoadResult, error) {
	if opts.BaseURL == "" {
		return nil, errors.New("load: BaseURL required")
	}
	if len(opts.Bodies) == 0 {
		return nil, errors.New("load: no request bodies")
	}
	client := opts.Client
	if client == nil {
		client = http.DefaultClient
	}
	conc := opts.Concurrency
	if conc <= 0 {
		conc = 8
	}
	if conc > len(opts.Bodies) {
		conc = len(opts.Bodies)
	}
	poll := opts.PollInterval
	if poll <= 0 {
		poll = 5 * time.Millisecond
	}

	results := make([]LoadResult, len(opts.Bodies))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				r := &results[i]
				r.Index = i
				body := opts.Bodies[i]
				if faultSelected(opts, i) {
					mutated, err := injectFaultAttempts(body, opts.FaultAttempts)
					if err != nil {
						r.Err = fmt.Errorf("fault-mix mutate: %w", err)
						continue
					}
					body = mutated
					r.Faulted = true
				}
				if opts.Async {
					runAsync(ctx, client, opts.BaseURL, body, poll, r)
				} else {
					runSync(ctx, client, opts.BaseURL, body, r)
				}
			}
		}()
	}
feed:
	for i := range opts.Bodies {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	return results, ctx.Err()
}

// faultSelected decides deterministically whether request i joins the
// fault mix: the splitmix64 stream of FaultSeed maps each index onto
// [0, 1) and compares it against FaultFraction.
func faultSelected(opts LoadOptions, i int) bool {
	if opts.FaultFraction <= 0 {
		return false
	}
	return chaosFrac(chaosMix(opts.FaultSeed+uint64(i))) < opts.FaultFraction
}

// injectFaultAttempts rewrites a compile-request body to carry
// options.fault_attempts, preserving every other field. The rewrite works
// on raw JSON so the harness stays decoupled from the server's request
// types.
func injectFaultAttempts(body []byte, attempts int) ([]byte, error) {
	if attempts <= 0 {
		attempts = 2
	}
	var req map[string]json.RawMessage
	if err := json.Unmarshal(body, &req); err != nil {
		return nil, err
	}
	o := map[string]any{}
	if raw, ok := req["options"]; ok {
		if err := json.Unmarshal(raw, &o); err != nil {
			return nil, err
		}
	}
	o["fault_attempts"] = attempts
	enc, err := json.Marshal(o)
	if err != nil {
		return nil, err
	}
	req["options"] = enc
	return json.Marshal(req)
}

// CountFaulted tallies the fault-mixed requests in a result set.
func CountFaulted(results []LoadResult) int {
	n := 0
	for i := range results {
		if results[i].Faulted {
			n++
		}
	}
	return n
}

// postJSON posts body and returns the status, response headers and payload.
func postJSON(ctx context.Context, client *http.Client, url string, body []byte) (int, http.Header, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	payload, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	return resp.StatusCode, resp.Header, payload, err
}

// getJSON fetches url and returns the status and payload.
func getJSON(ctx context.Context, client *http.Client, url string) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	payload, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	return resp.StatusCode, payload, err
}

// runSync drives one request through POST /v1/compile.
func runSync(ctx context.Context, client *http.Client, base string, body []byte, r *LoadResult) {
	status, hdr, payload, err := postJSON(ctx, client, base+"/v1/compile", body)
	if err != nil {
		r.Err = err
		return
	}
	r.Status = status
	r.Key = hdr.Get("X-Tqecd-Cache-Key")
	if status == http.StatusOK {
		r.Cache = hdr.Get("X-Tqecd-Cache")
		r.Body = payload
		return
	}
	r.ErrorBody = payload
}

// runAsync drives one request through POST /v1/jobs and polls the job to a
// terminal state.
func runAsync(ctx context.Context, client *http.Client, base string, body []byte, poll time.Duration, r *LoadResult) {
	status, _, payload, err := postJSON(ctx, client, base+"/v1/jobs", body)
	if err != nil {
		r.Err = err
		return
	}
	r.Status = status
	if status != http.StatusAccepted && status != http.StatusOK {
		r.ErrorBody = payload
		return
	}
	var v loadJobView
	if err := json.Unmarshal(payload, &v); err != nil {
		r.Err = fmt.Errorf("job submit body: %w", err)
		return
	}
	r.JobID = v.ID
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for v.Status != "done" && v.Status != "failed" {
		select {
		case <-ctx.Done():
			r.Err = ctx.Err()
			return
		case <-ticker.C:
		}
		st, payload, err := getJSON(ctx, client, base+"/v1/jobs/"+v.ID)
		if err != nil {
			r.Err = err
			return
		}
		if st == http.StatusNotFound {
			// The job existed a moment ago — we submitted it — so a 404
			// mid-poll means the registry evicted it (TTL or capacity)
			// before we observed the terminal state. Surface that as its
			// own outcome rather than a generic poll failure: callers
			// treating any non-200 as "server broke" would misdiagnose a
			// registry sized below the polling cadence.
			r.Err = fmt.Errorf("job %s: %w", v.ID, ErrJobEvicted)
			return
		}
		if st != http.StatusOK {
			r.Err = fmt.Errorf("job poll status %d: %s", st, payload)
			return
		}
		if err := json.Unmarshal(payload, &v); err != nil {
			r.Err = fmt.Errorf("job poll body: %w", err)
			return
		}
	}
	r.Key = v.Key
	if v.Status == "done" {
		r.Cache = v.Cache
		r.Body = v.Result
		return
	}
	r.ErrorBody = v.Error
}
