package qc

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestGateConstructors(t *testing.T) {
	cases := []struct {
		g     Gate
		kind  GateKind
		ctrls int
		tgts  int
	}{
		{NOT(0), GateNOT, 0, 1},
		{CNOT(0, 1), GateCNOT, 1, 1},
		{Toffoli(0, 1, 2), GateToffoli, 2, 1},
		{Fredkin(0, 1, 2), GateFredkin, 1, 2},
		{Swap(0, 1), GateSwap, 0, 2},
		{MCT([]int{0, 1, 2}, 3), GateMCT, 3, 1},
		{H(0), GateH, 0, 1},
		{P(0), GateP, 0, 1},
		{V(0), GateV, 0, 1},
		{T(0), GateT, 0, 1},
		{Tdag(0), GateTdag, 0, 1},
	}
	for _, tc := range cases {
		if tc.g.Kind != tc.kind {
			t.Errorf("%v: kind %v", tc.g, tc.g.Kind)
		}
		if len(tc.g.Controls) != tc.ctrls || len(tc.g.Targets) != tc.tgts {
			t.Errorf("%v: operands %d/%d", tc.g, len(tc.g.Controls), len(tc.g.Targets))
		}
		if err := tc.g.Validate(); err != nil {
			t.Errorf("%v: validate: %v", tc.g, err)
		}
	}
}

func TestGateValidateRejects(t *testing.T) {
	bad := []Gate{
		{Kind: GateCNOT, Controls: []int{0}, Targets: []int{0}},          // duplicate
		{Kind: GateCNOT, Targets: []int{1}},                              // missing control
		{Kind: GateToffoli, Controls: []int{0, 1, 2}, Targets: []int{3}}, // too many controls
		{Kind: GateNOT, Targets: []int{-1}},                              // negative index
		{Kind: GateMCT, Controls: []int{0, 1}, Targets: []int{2}},        // mct needs ≥3 ctrls
		{Kind: GateKind(99), Targets: []int{0}},                          // unknown kind
	}
	for _, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("gate %v should fail validation", g)
		}
	}
}

func TestGateQubitsAndMax(t *testing.T) {
	g := Toffoli(4, 2, 7)
	q := g.Qubits()
	if len(q) != 3 || q[0] != 4 || q[1] != 2 || q[2] != 7 {
		t.Fatalf("qubits: %v", q)
	}
	if g.MaxQubit() != 7 {
		t.Fatalf("max: %d", g.MaxQubit())
	}
	if (Gate{}).MaxQubit() != -1 {
		t.Fatal("empty gate max should be -1")
	}
}

func TestCircuitValidate(t *testing.T) {
	c := New("test", 3)
	c.Append(Toffoli(0, 1, 2), CNOT(0, 2), NOT(1))
	if err := c.Validate(); err != nil {
		t.Fatalf("valid circuit rejected: %v", err)
	}
	c.Append(CNOT(0, 5))
	if err := c.Validate(); err == nil {
		t.Fatal("out-of-range qubit accepted")
	}
}

func TestCircuitCountKindClone(t *testing.T) {
	c := New("c", 4)
	c.Append(Toffoli(0, 1, 2), Toffoli(1, 2, 3), CNOT(0, 1), NOT(3))
	if c.CountKind(GateToffoli) != 2 || c.CountKind(GateCNOT) != 1 || c.CountKind(GateNOT) != 1 {
		t.Fatalf("counts wrong")
	}
	d := c.Clone()
	d.Gates[0].Controls[0] = 3
	if c.Gates[0].Controls[0] != 0 {
		t.Fatal("clone aliases controls")
	}
	d.Qubits[0] = "zzz"
	if c.Qubits[0] == "zzz" {
		t.Fatal("clone aliases qubit names")
	}
}

func TestParseRealRoundTrip(t *testing.T) {
	src := `# sample circuit
.version 2.0
.numvars 4
.variables a b c d
.inputs a b c d
.outputs a b c d
.begin
t1 a
t2 a b
t3 a b c
f2 c d
f3 a c d
.end
`
	c, err := ParseReal("sample", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits() != 4 || c.NumGates() != 5 {
		t.Fatalf("parsed %d qubits %d gates", c.NumQubits(), c.NumGates())
	}
	wantKinds := []GateKind{GateNOT, GateCNOT, GateToffoli, GateSwap, GateFredkin}
	for i, k := range wantKinds {
		if c.Gates[i].Kind != k {
			t.Errorf("gate %d kind %v want %v", i, c.Gates[i].Kind, k)
		}
	}
	var buf bytes.Buffer
	if err := WriteReal(&buf, c); err != nil {
		t.Fatal(err)
	}
	c2, err := ParseReal("sample", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if c2.NumGates() != c.NumGates() || c2.NumQubits() != c.NumQubits() {
		t.Fatalf("round trip changed shape")
	}
	for i := range c.Gates {
		if c.Gates[i].Kind != c2.Gates[i].Kind {
			t.Errorf("gate %d kind changed", i)
		}
	}
}

func TestParseRealMCTAndV(t *testing.T) {
	src := `.numvars 5
.variables a b c d e
.begin
t4 a b c d
v a b
v+ c
.end
`
	c, err := ParseReal("mct", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if c.Gates[0].Kind != GateMCT || len(c.Gates[0].Controls) != 3 {
		t.Fatalf("mct parse: %v", c.Gates[0])
	}
	if c.Gates[1].Kind != GateV || len(c.Gates[1].Controls) != 1 {
		t.Fatalf("controlled v parse: %v", c.Gates[1])
	}
	if c.Gates[2].Kind != GateVdag || len(c.Gates[2].Controls) != 0 {
		t.Fatalf("v+ parse: %v", c.Gates[2])
	}
}

func TestParseRealErrors(t *testing.T) {
	cases := []string{
		".numvars 2\n.variables a b\n.begin\nt2 a z\n.end\n", // unknown var
		".numvars 2\n.variables a b\nt1 a\n",                 // gate outside body
		".numvars 2\n.variables a b\n.begin\nq9 a\n.end\n",   // unknown mnemonic
		".numvars 2\n.variables a b\n.begin\nt3 a b\n.end\n", // wrong arity
		"",             // no variables
		".numvars x\n", // bad numvars
	}
	for i, src := range cases {
		if _, err := ParseReal("bad", strings.NewReader(src)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestWriteRealRejectsQuantumGates(t *testing.T) {
	c := New("q", 1)
	c.Append(T(0))
	if err := WriteReal(&bytes.Buffer{}, c); err == nil {
		t.Fatal("T gate should not be writable as .real")
	}
}

func TestBenchmarksTable(t *testing.T) {
	if len(Benchmarks) != 8 {
		t.Fatalf("want 8 benchmarks, got %d", len(Benchmarks))
	}
	// Published Table I columns: name, #Qubits_o, #Gates, #|A⟩ (= 7·Toffolis).
	want := []struct {
		name   string
		qubits int
		gates  int
		nA     int
	}{
		{"4gt10-v1_81", 5, 6, 21},
		{"4gt4-v0_73", 5, 17, 42},
		{"rd84_142", 15, 28, 147},
		{"hwb5_53", 5, 55, 217},
		{"add16_174", 49, 64, 224},
		{"sym6_145", 7, 36, 252},
		{"cycle17_3_112", 20, 48, 315},
		{"ham15_107", 15, 132, 623},
	}
	for i, w := range want {
		s := Benchmarks[i]
		if s.Name != w.name || s.Qubits != w.qubits {
			t.Errorf("bench %d: %s/%d", i, s.Name, s.Qubits)
		}
		if s.Gates() != w.gates {
			t.Errorf("%s: gates %d want %d", s.Name, s.Gates(), w.gates)
		}
		if s.Toffolis*7 != w.nA {
			t.Errorf("%s: toffolis %d give %d |A⟩, want %d", s.Name, s.Toffolis, s.Toffolis*7, w.nA)
		}
	}
}

func TestBenchmarkByName(t *testing.T) {
	s, err := BenchmarkByName("hwb5_53")
	if err != nil || s.Toffolis != 31 {
		t.Fatalf("lookup: %v %v", s, err)
	}
	if _, err := BenchmarkByName("nope"); err == nil {
		t.Fatal("unknown benchmark should error")
	}
}

func TestGenerateDeterministicAndValid(t *testing.T) {
	for _, s := range Benchmarks {
		c1 := mustGen(t, s)
		c2 := mustGen(t, s)
		if err := c1.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if c1.NumGates() != s.Gates() {
			t.Fatalf("%s: %d gates want %d", s.Name, c1.NumGates(), s.Gates())
		}
		if c1.NumQubits() != s.Qubits {
			t.Fatalf("%s: %d qubits want %d", s.Name, c1.NumQubits(), s.Qubits)
		}
		if c1.CountKind(GateToffoli) != s.Toffolis {
			t.Fatalf("%s: toffoli count", s.Name)
		}
		for i := range c1.Gates {
			g1, g2 := c1.Gates[i], c2.Gates[i]
			if g1.Kind != g2.Kind || g1.String() != g2.String() {
				t.Fatalf("%s: generation not deterministic at gate %d", s.Name, i)
			}
		}
	}
}

// Property: any generated spec produces a circuit whose gates all validate
// and whose operand sets are duplicate-free.
func TestQuickGenerate(t *testing.T) {
	f := func(q uint8, nt, nc, nn uint8, seed int64) bool {
		qubits := 3 + int(q%30)
		spec := BenchmarkSpec{
			Name:     "fuzz",
			Qubits:   qubits,
			Toffolis: int(nt % 40),
			CNOTs:    int(nc % 40),
			NOTs:     int(nn % 40),
			Seed:     seed,
		}
		c, err := spec.Generate()
		return err == nil && c.Validate() == nil && c.NumGates() == spec.Gates()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGateString(t *testing.T) {
	if s := Toffoli(0, 1, 2).String(); s != "t3 q0 q1 q2" {
		t.Errorf("toffoli string: %q", s)
	}
	if s := H(3).String(); s != "h q3" {
		t.Errorf("h string: %q", s)
	}
	if s := Swap(1, 2).String(); s != "f2 q1 q2" {
		t.Errorf("swap string: %q", s)
	}
}

func TestDepth(t *testing.T) {
	c := New("d", 4)
	c.Append(CNOT(0, 1), CNOT(2, 3), CNOT(1, 2), NOT(0))
	// Layer 0: CNOT(0,1) & CNOT(2,3); layer 1: CNOT(1,2) & NOT(0).
	if got := c.Depth(); got != 2 {
		t.Fatalf("depth: %d want 2", got)
	}
	if New("empty", 2).Depth() != 0 {
		t.Fatal("empty circuit depth should be 0")
	}
}

func TestHistogramAndTCount(t *testing.T) {
	c := New("h", 2)
	c.Append(T(0), Tdag(1), T(0), CNOT(0, 1), H(1))
	h := c.Histogram()
	if h[GateT] != 2 || h[GateTdag] != 1 || h[GateCNOT] != 1 || h[GateH] != 1 {
		t.Fatalf("histogram: %v", h)
	}
	if c.TCount() != 3 {
		t.Fatalf("T count: %d", c.TCount())
	}
}

// mustGen generates a benchmark circuit, failing the test on error.
func mustGen(tb testing.TB, spec BenchmarkSpec) *Circuit {
	tb.Helper()
	c, err := spec.Generate()
	if err != nil {
		tb.Fatal(err)
	}
	return c
}
