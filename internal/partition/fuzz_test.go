package partition

import (
	"reflect"
	"testing"

	"repro/internal/decompose"
	"repro/internal/qc"
	"repro/internal/sim"
)

// FuzzPartition generates seeded benchmark-shaped circuits, decomposes
// them, and checks the partitioner's contract on each: parts ∪ seams cover
// every gate exactly once (Verify + Reassemble), the result is identical
// across reruns with a fixed seed, and — on circuits small enough to
// simulate — the reassembled circuit is state-vector equivalent to the
// decomposed input. The seed corpus under testdata/fuzz is replayed by
// `make fuzz-seeds`.
func FuzzPartition(f *testing.F) {
	f.Add(uint8(5), uint8(1), uint8(4), uint8(2), int64(1), uint8(3))
	f.Add(uint8(6), uint8(2), uint8(6), uint8(0), int64(9), uint8(3))
	f.Add(uint8(24), uint8(0), uint8(40), uint8(8), int64(7), uint8(8))
	f.Add(uint8(2), uint8(0), uint8(1), uint8(1), int64(0), uint8(1))
	f.Add(uint8(9), uint8(3), uint8(0), uint8(3), int64(-5), uint8(4))
	f.Fuzz(func(t *testing.T, qubits, toffolis, cnots, nots uint8, seed int64, maxPer uint8) {
		nq := 2 + int(qubits)%30 // 2..31 qubits
		spec := qc.BenchmarkSpec{
			Name:     "fuzz",
			Qubits:   nq,
			Toffolis: int(toffolis) % 4,
			CNOTs:    int(cnots) % 48,
			NOTs:     int(nots) % 8,
			Seed:     seed,
		}
		if nq < 3 {
			spec.Toffolis = 0
		}
		if spec.Toffolis+spec.CNOTs+spec.NOTs == 0 {
			spec.NOTs = 1
		}
		raw, err := spec.Generate()
		if err != nil {
			t.Skip() // degenerate spec
		}
		d, err := decompose.Decompose(raw)
		if err != nil {
			t.Fatalf("decompose: %v", err)
		}
		opts := Options{MaxQubitsPerPart: 1 + int(maxPer)%16, Seed: seed}
		r, err := Partition(d.Circuit, opts)
		if err != nil {
			t.Fatalf("partition: %v", err)
		}
		if err := r.Verify(d.Circuit, opts); err != nil {
			t.Fatalf("coverage broken: %v", err)
		}
		again, err := Partition(d.Circuit, opts)
		if err != nil {
			t.Fatalf("repartition: %v", err)
		}
		if !reflect.DeepEqual(r, again) {
			t.Fatal("partition is not deterministic for a fixed seed")
		}
		n := d.Circuit.NumQubits()
		if n <= 8 && d.Circuit.NumGates() <= 64 {
			back, err := r.Reassemble(d.Circuit)
			if err != nil {
				t.Fatalf("reassemble: %v", err)
			}
			ok, err := sim.EquivalentUpToPhase(n, back, d.Circuit)
			if err != nil {
				t.Fatalf("sim: %v", err)
			}
			if !ok {
				t.Fatal("reassembled partition not sim-equivalent to decomposed input")
			}
		}
	})
}
