// Visualize: compress a benchmark and render its layout (the paper's
// Fig. 20) as ASCII height slices on stdout, optionally exporting a
// Wavefront OBJ model and a CSV cell dump.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/viz"
	"repro/tqec"
)

func main() {
	bench := flag.String("bench", "4gt10-v1_81", "benchmark to lay out")
	seed := flag.Int64("seed", 3, "placement seed")
	obj := flag.String("obj", "", "write a Wavefront OBJ model to this path")
	csv := flag.String("csv", "", "write a cell dump CSV to this path")
	svg := flag.String("svg", "", "write an SVG slice rendering to this path")
	slices := flag.Bool("slices", true, "print ASCII height slices")
	flag.Parse()

	opts := tqec.DefaultOptions()
	opts.Place.Seed = *seed
	res, err := tqec.CompileBenchmark(*bench, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %s — M module, B distillation box, * dual-defect net\n\n", *bench, res.Dims)

	scene := viz.BuildScene(res.Placement, res.Routing)
	if *slices {
		if err := scene.WriteSlices(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
	if *obj != "" {
		f, err := os.Create(*obj)
		if err != nil {
			log.Fatal(err)
		}
		if err := viz.WriteOBJ(f, res.Placement, res.Routing); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *obj)
	}
	if *csv != "" {
		f, err := os.Create(*csv)
		if err != nil {
			log.Fatal(err)
		}
		if err := scene.WriteCSV(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *csv)
	}
	if *svg != "" {
		f, err := os.Create(*svg)
		if err != nil {
			log.Fatal(err)
		}
		if err := scene.WriteSVG(f, 4); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *svg)
	}
}
