package harness

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// smokeRows runs the smallest benchmark once with low effort and caches it
// for all table-printing tests.
func smokeRows(t *testing.T) []*Row {
	t.Helper()
	cfg := Config{
		Benchmarks:      []string{"4gt10-v1_81"},
		PlaceIterations: 2000,
		Seed:            3,
		Ablations:       true,
	}
	rows, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestRunProducesCompleteRow(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test in -short mode")
	}
	rows := smokeRows(t)
	if len(rows) != 1 {
		t.Fatalf("rows: %d", len(rows))
	}
	r := rows[0]
	if r.Ours == nil || r.NoBridge == nil || r.Conference == nil {
		t.Fatal("missing results")
	}
	if r.Canonical.Volume() <= r.Lin1D.Volume() {
		t.Fatal("canonical should exceed 1D baseline")
	}
	if r.Ours.Volume >= r.Canonical.TotalVolume(r.boxVol()) {
		t.Fatalf("ours %d should beat canonical %d",
			r.Ours.Volume, r.Canonical.TotalVolume(r.boxVol()))
	}
	// Bridging ablation: without bridging the volume must not be smaller.
	if r.NoBridge.Volume < r.Ours.Volume {
		t.Fatalf("no-bridge volume %d smaller than bridged %d",
			r.NoBridge.Volume, r.Ours.Volume)
	}

	var buf bytes.Buffer
	tables := []func(io.Writer, []*Row) error{Table1, Table2, Table3, Table4, Table5, Table6, Summary}
	for i, table := range tables {
		if err := table(&buf, rows); err != nil {
			t.Fatalf("table %d: %v", i+1, err)
		}
	}
	out := buf.String()
	for _, want := range []string{"Table I", "Table II", "Table III", "Table IV",
		"Table V", "Table VI", "4gt10-v1_81", "Headline"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestFigures(t *testing.T) {
	var buf bytes.Buffer
	if err := FigMotivation(&buf, 3); err != nil {
		t.Fatal(err)
	}
	FigBoxes(&buf)
	out := buf.String()
	if !strings.Contains(out, "canonical volume: 54") {
		t.Errorf("motivation figure wrong: %s", out)
	}
	if !strings.Contains(out, "16×6×2 = 192") {
		t.Errorf("box figure wrong: %s", out)
	}
}

func TestConfigs(t *testing.T) {
	d := DefaultConfig()
	if len(d.Benchmarks) == 0 || !d.Ablations {
		t.Fatalf("default config: %+v", d)
	}
	f := FullConfig()
	if len(f.Benchmarks) != 8 {
		t.Fatalf("full config benchmarks: %d", len(f.Benchmarks))
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	_, err := Run(Config{Benchmarks: []string{"nope"}})
	if err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}
