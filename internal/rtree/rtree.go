// Package rtree implements a 3D R-tree spatial index over integer boxes.
//
// The router uses it to maintain the set of routing obstacles (module
// bodies, distillation boxes, routed net cells) and answer window queries
// in O(log n) on average, replacing the Boost.Geometry R-tree used by the
// paper's C++ implementation.
//
// The implementation follows Guttman's original R-tree with the quadratic
// split heuristic. Entries are (geom.Box, ID) pairs; deletion is by exact
// box + ID match (with a CondenseTree pass that dissolves underfull nodes
// and re-inserts their entries, so the index can be maintained
// incrementally through the router's rip-up rounds instead of rebuilt) or
// by bulk ID sweep.
package rtree

import (
	"math"

	"repro/internal/geom"
)

// Entry is one indexed item: a box and its caller-assigned identifier.
type Entry struct {
	Box geom.Box
	ID  int
}

const (
	maxEntries = 8
	minEntries = maxEntries / 2
)

type node struct {
	parent   *node
	leaf     bool
	bounds   geom.Box
	entries  []Entry // leaf payload
	children []*node // internal children
}

// Tree is a 3D R-tree. The zero value is not usable; call New.
type Tree struct {
	root *node
	size int
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &node{leaf: true}}
}

// Len returns the number of stored entries.
func (t *Tree) Len() int { return t.size }

// Bounds returns the bounding box of all stored entries.
func (t *Tree) Bounds() geom.Box { return t.root.bounds }

// Insert adds an entry to the index. Duplicate (box, id) pairs are allowed
// and will be returned multiple times by searches.
func (t *Tree) Insert(b geom.Box, id int) {
	leaf := chooseLeaf(t.root, b)
	leaf.entries = append(leaf.entries, Entry{Box: b, ID: id})
	t.size++
	t.fixUpward(leaf)
}

// fixUpward recomputes bounds from n to the root, splitting overfull nodes.
func (t *Tree) fixUpward(n *node) {
	for n != nil {
		n.recomputeBounds()
		if n.overfull() {
			t.split(n)
			// split re-handles propagation from the parent.
			return
		}
		n = n.parent
	}
}

func (n *node) overfull() bool {
	if n.leaf {
		return len(n.entries) > maxEntries
	}
	return len(n.children) > maxEntries
}

func chooseLeaf(n *node, b geom.Box) *node {
	for !n.leaf {
		best := n.children[0]
		bestGrowth := math.MaxFloat64
		bestVol := math.MaxFloat64
		for _, c := range n.children {
			u := c.bounds.Union(b)
			growth := float64(u.Volume() - c.bounds.Volume())
			vol := float64(c.bounds.Volume())
			if growth < bestGrowth || (growth == bestGrowth && vol < bestVol) {
				best, bestGrowth, bestVol = c, growth, vol
			}
		}
		n = best
	}
	return n
}

func (n *node) recomputeBounds() {
	var b geom.Box
	if n.leaf {
		for _, e := range n.entries {
			b = b.Union(e.Box)
		}
	} else {
		for _, c := range n.children {
			b = b.Union(c.bounds)
		}
	}
	n.bounds = b
}

// split divides an overfull node in two and propagates upward.
func (t *Tree) split(n *node) {
	left, right := quadraticSplit(n)
	parent := n.parent
	if parent == nil {
		// Root split: grow the tree.
		t.root = &node{leaf: false, children: []*node{left, right}}
		left.parent, right.parent = t.root, t.root
		t.root.recomputeBounds()
		return
	}
	for i, c := range parent.children {
		if c == n {
			parent.children[i] = left
			break
		}
	}
	parent.children = append(parent.children, right)
	left.parent, right.parent = parent, parent
	t.fixUpward(parent)
}

// quadraticSplit partitions an overfull node into two fresh nodes.
func quadraticSplit(n *node) (*node, *node) {
	if n.leaf {
		boxes := make([]geom.Box, len(n.entries))
		for i, e := range n.entries {
			boxes[i] = e.Box
		}
		g1, g2 := quadraticPartition(boxes)
		a := &node{leaf: true}
		b := &node{leaf: true}
		for _, i := range g1 {
			a.entries = append(a.entries, n.entries[i])
		}
		for _, i := range g2 {
			b.entries = append(b.entries, n.entries[i])
		}
		a.recomputeBounds()
		b.recomputeBounds()
		return a, b
	}
	boxes := make([]geom.Box, len(n.children))
	for i, c := range n.children {
		boxes[i] = c.bounds
	}
	g1, g2 := quadraticPartition(boxes)
	a := &node{leaf: false}
	b := &node{leaf: false}
	for _, i := range g1 {
		n.children[i].parent = a
		a.children = append(a.children, n.children[i])
	}
	for _, i := range g2 {
		n.children[i].parent = b
		b.children = append(b.children, n.children[i])
	}
	a.recomputeBounds()
	b.recomputeBounds()
	return a, b
}

// quadraticPartition returns two index groups per Guttman's quadratic split.
func quadraticPartition(boxes []geom.Box) (g1, g2 []int) {
	n := len(boxes)
	// Pick the pair wasting the most volume as seeds.
	s1, s2 := 0, 1
	worst := math.MinInt64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			u := boxes[i].Union(boxes[j])
			d := u.Volume() - boxes[i].Volume() - boxes[j].Volume()
			if d > worst {
				worst, s1, s2 = d, i, j
			}
		}
	}
	g1 = []int{s1}
	g2 = []int{s2}
	b1 := boxes[s1]
	b2 := boxes[s2]
	assigned := make([]bool, n)
	assigned[s1], assigned[s2] = true, true
	remaining := n - 2
	for remaining > 0 {
		// Force-assign when one group must take everything left to
		// reach the minimum fill.
		if len(g1)+remaining == minEntries {
			for i := 0; i < n; i++ {
				if !assigned[i] {
					g1 = append(g1, i)
					assigned[i] = true
				}
			}
			return g1, g2
		}
		if len(g2)+remaining == minEntries {
			for i := 0; i < n; i++ {
				if !assigned[i] {
					g2 = append(g2, i)
					assigned[i] = true
				}
			}
			return g1, g2
		}
		// Pick the unassigned entry with the largest preference gap.
		pick, pickDiff, pickTo1 := -1, -1, true
		for i := 0; i < n; i++ {
			if assigned[i] {
				continue
			}
			d1 := b1.Union(boxes[i]).Volume() - b1.Volume()
			d2 := b2.Union(boxes[i]).Volume() - b2.Volume()
			diff := d1 - d2
			if diff < 0 {
				diff = -diff
			}
			if diff > pickDiff {
				pick, pickDiff, pickTo1 = i, diff, d1 < d2
			}
		}
		if pickTo1 {
			g1 = append(g1, pick)
			b1 = b1.Union(boxes[pick])
		} else {
			g2 = append(g2, pick)
			b2 = b2.Union(boxes[pick])
		}
		assigned[pick] = true
		remaining--
	}
	return g1, g2
}

// Search appends to dst every entry whose box intersects the query window
// and returns the extended slice.
func (t *Tree) Search(window geom.Box, dst []Entry) []Entry {
	return searchNode(t.root, window, dst)
}

func searchNode(n *node, w geom.Box, dst []Entry) []Entry {
	if !n.bounds.Intersects(w) {
		return dst
	}
	if n.leaf {
		for _, e := range n.entries {
			if e.Box.Intersects(w) {
				dst = append(dst, e)
			}
		}
		return dst
	}
	for _, c := range n.children {
		dst = searchNode(c, w, dst)
	}
	return dst
}

// Intersects reports whether any stored entry intersects the window.
func (t *Tree) Intersects(window geom.Box) bool {
	return intersectsNode(t.root, window)
}

func intersectsNode(n *node, w geom.Box) bool {
	if !n.bounds.Intersects(w) {
		return false
	}
	if n.leaf {
		for _, e := range n.entries {
			if e.Box.Intersects(w) {
				return true
			}
		}
		return false
	}
	for _, c := range n.children {
		if intersectsNode(c, w) {
			return true
		}
	}
	return false
}

// IntersectsExcept reports whether any entry intersecting the window has an
// ID not contained in skip. It lets the router ignore a net's own cells and
// its friend nets' cells during legality checks.
func (t *Tree) IntersectsExcept(window geom.Box, skip map[int]bool) bool {
	return intersectsExceptNode(t.root, window, skip)
}

func intersectsExceptNode(n *node, w geom.Box, skip map[int]bool) bool {
	if !n.bounds.Intersects(w) {
		return false
	}
	if n.leaf {
		for _, e := range n.entries {
			if e.Box.Intersects(w) && !skip[e.ID] {
				return true
			}
		}
		return false
	}
	for _, c := range n.children {
		if intersectsExceptNode(c, w, skip) {
			return true
		}
	}
	return false
}

// Delete removes one entry exactly matching (b, id) and returns whether one
// was removed. The tree is condensed afterward (Guttman's CondenseTree):
// nodes left below the minimum fill are dissolved and their surviving
// entries re-inserted, so a long interleaving of inserts and deletes — the
// router's rip-up/re-route rounds — keeps query performance equivalent to a
// tree rebuilt from scratch over the same entry set.
func (t *Tree) Delete(b geom.Box, id int) bool {
	leaf := findLeaf(t.root, b, id)
	if leaf == nil {
		return false
	}
	for i, e := range leaf.entries {
		if e.Box == b && e.ID == id {
			leaf.entries = append(leaf.entries[:i], leaf.entries[i+1:]...)
			t.size--
			t.condense(leaf)
			return true
		}
	}
	return false
}

// underfull reports whether a non-root node is below the minimum fill.
func (n *node) underfull() bool {
	if n.leaf {
		return len(n.entries) < minEntries
	}
	return len(n.children) < minEntries
}

// condense restores the tree invariants after a removal from leaf n:
// walking toward the root, every underfull node is unlinked and its
// surviving entries collected, surviving ancestors get their bounds
// tightened, a root with a single internal child is shortened, and the
// orphaned entries are re-inserted.
func (t *Tree) condense(n *node) {
	var orphans []Entry
	for n.parent != nil {
		p := n.parent
		if n.underfull() {
			for i, c := range p.children {
				if c == n {
					p.children = append(p.children[:i], p.children[i+1:]...)
					break
				}
			}
			orphans = collectEntries(n, orphans)
		} else {
			n.recomputeBounds()
		}
		n = p
	}
	t.root.recomputeBounds()
	for !t.root.leaf && len(t.root.children) == 1 {
		t.root = t.root.children[0]
		t.root.parent = nil
	}
	if !t.root.leaf && len(t.root.children) == 0 {
		t.root = &node{leaf: true}
	}
	// Orphans are still counted in size; Insert re-counts them.
	t.size -= len(orphans)
	for _, e := range orphans {
		t.Insert(e.Box, e.ID)
	}
}

// collectEntries appends every entry stored under n to dst.
func collectEntries(n *node, dst []Entry) []Entry {
	if n.leaf {
		return append(dst, n.entries...)
	}
	for _, c := range n.children {
		dst = collectEntries(c, dst)
	}
	return dst
}

func findLeaf(n *node, b geom.Box, id int) *node {
	if !n.bounds.ContainsBox(b) {
		return nil
	}
	if n.leaf {
		for _, e := range n.entries {
			if e.Box == b && e.ID == id {
				return n
			}
		}
		return nil
	}
	for _, c := range n.children {
		if f := findLeaf(c, b, id); f != nil {
			return f
		}
	}
	return nil
}

// DeleteAll removes every entry with the given ID and returns the number
// removed. It is a bulk sweep: bounds are tightened but underfull nodes
// are tolerated (queries stay correct, occupancy may drop below the
// minimum fill); callers that interleave many deletes with searches
// should prefer per-entry Delete, which condenses the tree.
func (t *Tree) DeleteAll(id int) int {
	removed := 0
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			kept := n.entries[:0]
			for _, e := range n.entries {
				if e.ID == id {
					removed++
				} else {
					kept = append(kept, e)
				}
			}
			n.entries = kept
			n.recomputeBounds()
			return
		}
		for _, c := range n.children {
			walk(c)
		}
		n.recomputeBounds()
	}
	walk(t.root)
	t.size -= removed
	return removed
}

// All appends every stored entry to dst and returns the extended slice.
func (t *Tree) All(dst []Entry) []Entry {
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			dst = append(dst, n.entries...)
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return dst
}
