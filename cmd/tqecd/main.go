// Command tqecd serves the bridge-based compression pipeline over HTTP.
//
// Usage:
//
//	tqecd [-addr :8321] [-workers N] [-queue N] [-cache-bytes N]
//	      [-timeout 2m] [-max-timeout 10m] [-drain-timeout 30s]
//	      [-journal-dir DIR] [-journal-segment-bytes N]
//	      [-allow-fault-injection]
//
// Endpoints:
//
//	POST /v1/compile     synchronous compile (JSON in, JSON out)
//	POST /v1/jobs        submit an asynchronous compile job
//	GET  /v1/jobs/{id}   poll a job
//	GET  /v1/metrics     counters, gauges and latency histograms
//	GET  /healthz        liveness/readiness
//
// SIGINT/SIGTERM triggers a graceful drain: new work is rejected with 503
// while queued jobs finish, bounded by -drain-timeout.
//
// With -journal-dir set, async jobs are durable: every lifecycle event is
// fsync'd to a write-ahead log before it is acknowledged, and on restart
// the journal is replayed — interrupted jobs re-enqueue under their
// original IDs, finished jobs stay pollable with byte-identical results.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/journal"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8321", "listen address")
	workers := flag.Int("workers", 0, "compile worker goroutines (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "job queue depth (0 = default 64)")
	cacheBytes := flag.Int64("cache-bytes", 0, "result cache budget in bytes (0 = default 64MiB, <0 disables)")
	timeout := flag.Duration("timeout", 0, "default per-compile deadline (0 = default 2m)")
	maxTimeout := flag.Duration("max-timeout", 0, "ceiling on client-requested deadlines (0 = default 10m)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
	journalDir := flag.String("journal-dir", "", "directory for the durable job journal (empty = in-memory jobs only)")
	journalSegBytes := flag.Int64("journal-segment-bytes", 0, "journal segment rotation threshold (0 = default 8MiB)")
	allowFaults := flag.Bool("allow-fault-injection", false, "admit the fault_attempts chaos hook in request options")
	partitionQubits := flag.Int("partition-qubits", 0, "default per-part qubit cap for partitioned compiles (0 = unpartitioned; requests may override)")
	cacheShards := flag.Int("cache-shards", 0, "split the result cache into this many independently locked shards (0 or 1 = single shard)")
	flag.Parse()

	cfg := server.Config{
		Workers:             *workers,
		QueueDepth:          *queue,
		CacheBytes:          *cacheBytes,
		CacheShards:         *cacheShards,
		PartitionQubits:     *partitionQubits,
		DefaultTimeout:      *timeout,
		MaxTimeout:          *maxTimeout,
		AllowFaultInjection: *allowFaults,
	}
	if err := run(*addr, cfg, *drainTimeout, *journalDir, *journalSegBytes); err != nil {
		fmt.Fprintln(os.Stderr, "tqecd:", err)
		os.Exit(1)
	}
}

// run wires the compile server into an http.Server and blocks until a
// termination signal completes the drain. With a journal directory it
// opens (and replays) the write-ahead log first and closes it after the
// drain, so every completed job's terminal event is on disk before exit.
func run(addr string, cfg server.Config, drainTimeout time.Duration, journalDir string, journalSegBytes int64) error {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var jnl *journal.Journal
	if journalDir != "" {
		var err error
		jnl, err = journal.Open(journalDir, journal.Options{SegmentBytes: journalSegBytes})
		if err != nil {
			return err
		}
		cfg.Journal = jnl
		if n := len(jnl.Recovered()); n > 0 {
			fmt.Fprintf(os.Stderr, "tqecd: journal replayed %d job(s) from %s\n", n, journalDir)
		}
	}

	s, err := server.New(cfg)
	if err != nil {
		return err
	}
	s.Start(ctx)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "tqecd: listening on %s\n", ln.Addr())

	select {
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	stop() // a second signal now kills the process the default way

	fmt.Fprintf(os.Stderr, "tqecd: draining (budget %s)\n", drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Stop accepting connections and let in-flight requests finish, then
	// run the worker queue dry.
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if err := s.Drain(dctx); err != nil {
		return err
	}
	if jnl != nil {
		if err := jnl.Close(); err != nil {
			return err
		}
	}
	fmt.Fprintln(os.Stderr, "tqecd: drained cleanly")
	return nil
}
