package check

import (
	"bytes"
	"context"
	"fmt"

	"repro/internal/ccache"
	"repro/internal/decompose"
	"repro/internal/partition"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/server"
	"repro/internal/sim"
	"repro/tqec"
)

// DiffChains cross-checks the placement engine's determinism contract:
// two runs with the same (seed, chains=K) configuration must be
// bit-identical, and the single-chain configuration (specified to match
// the sequential annealer exactly) must produce a structurally legal
// placement of the same clustering.
func DiffChains(ctx context.Context, res *tqec.Result, opts tqec.Options, chains int) error {
	popts := opts.Place
	popts.Chains = chains
	popts.Restarts = 0
	first, err := place.RunContext(ctx, res.Clustering, res.Bridging.Nets, popts)
	if err != nil {
		return fmt.Errorf("chains=%d run 1: %w", chains, err)
	}
	second, err := place.RunContext(ctx, res.Clustering, res.Bridging.Nets, popts)
	if err != nil {
		return fmt.Errorf("chains=%d run 2: %w", chains, err)
	}
	if err := samePlacement(first, second); err != nil {
		return fmt.Errorf("chains=%d reruns diverge: %w", chains, err)
	}
	popts.Chains = 1
	seq, err := place.RunContext(ctx, res.Clustering, res.Bridging.Nets, popts)
	if err != nil {
		return fmt.Errorf("chains=1: %w", err)
	}
	if err := seq.CheckNoOverlap(); err != nil {
		return fmt.Errorf("chains=1: %w", err)
	}
	if err := seq.CheckTimeOrdering(); err != nil {
		return fmt.Errorf("chains=1: %w", err)
	}
	return nil
}

// samePlacement compares two placements for bit-identical geometry.
func samePlacement(a, b *place.Placement) error {
	if a.Tiers != b.Tiers {
		return fmt.Errorf("tiers %d vs %d", a.Tiers, b.Tiers)
	}
	if a.WireLength != b.WireLength {
		return fmt.Errorf("wirelength %d vs %d", a.WireLength, b.WireLength)
	}
	if len(a.Pos) != len(b.Pos) {
		return fmt.Errorf("%d vs %d supers", len(a.Pos), len(b.Pos))
	}
	for s := range a.Pos {
		if a.Pos[s] != b.Pos[s] {
			return fmt.Errorf("super %d at %v vs %v", s, a.Pos[s], b.Pos[s])
		}
		if a.TierOf[s] != b.TierOf[s] {
			return fmt.Errorf("super %d on tier %d vs %d", s, a.TierOf[s], b.TierOf[s])
		}
	}
	return nil
}

// DiffSerialRouting cross-checks the router's batched first pass against
// the serial pass across every scheduler mode: the conflict-graph batched
// implementation only co-schedules nets whose search regions are pairwise
// disjoint and commits in net order, so for the plain configuration, the
// unidirectional-only configuration, and (when friend nets are enabled)
// the multi-terminal Steiner configuration the two modes must agree on
// every routed cell and every diagnostic counter. The Steiner result is
// additionally re-verified structurally, since its terminal rule (group
// connectivity) differs from the two-pin modes.
func DiffSerialRouting(ctx context.Context, res *tqec.Result, opts tqec.Options) error {
	base := opts.Route
	modes := []struct {
		label string
		mut   func(*route.Options)
	}{
		{"default", func(*route.Options) {}},
		{"unidirectional", func(o *route.Options) { o.Bidirectional = false }},
	}
	if base.FriendNets {
		modes = append(modes, struct {
			label string
			mut   func(*route.Options)
		}{"steiner", func(o *route.Options) { o.Steiner = true }})
	}
	for _, m := range modes {
		mopts := base
		m.mut(&mopts)
		par, err := diffRoutePair(ctx, res, mopts, m.label)
		if err != nil {
			return err
		}
		if mopts.Steiner {
			if err := route.VerifyStructure(res.Placement, par); err != nil {
				return fmt.Errorf("%s: %w", m.label, err)
			}
		}
	}
	return nil
}

// diffRoutePair routes the placement serially and batched under the same
// options and returns the batched result after asserting both runs are
// identical in every deterministic field.
func diffRoutePair(ctx context.Context, res *tqec.Result, ropts route.Options, label string) (*route.Result, error) {
	serialOpts := ropts
	serialOpts.Serial = true
	serial, err := route.RunContext(ctx, res.Placement, serialOpts)
	if err != nil {
		return nil, fmt.Errorf("%s serial: %w", label, err)
	}
	parOpts := ropts
	parOpts.Serial = false
	par, err := route.RunContext(ctx, res.Placement, parOpts)
	if err != nil {
		return nil, fmt.Errorf("%s batched: %w", label, err)
	}
	if len(serial.Routes) != len(par.Routes) {
		return nil, fmt.Errorf("%s: serial routed %d nets, batched %d", label, len(serial.Routes), len(par.Routes))
	}
	for id, sp := range serial.Routes {
		pp, ok := par.Routes[id]
		if !ok {
			return nil, fmt.Errorf("%s: net %d routed serially but not batched", label, id)
		}
		if len(sp) != len(pp) {
			return nil, fmt.Errorf("%s: net %d path length %d serial vs %d batched", label, id, len(sp), len(pp))
		}
		for i := range sp {
			if sp[i] != pp[i] {
				return nil, fmt.Errorf("%s: net %d cell %d: %v serial vs %v batched", label, id, i, sp[i], pp[i])
			}
		}
	}
	if serial.Bounds != par.Bounds {
		return nil, fmt.Errorf("%s: bounds %v serial vs %v batched", label, serial.Bounds, par.Bounds)
	}
	if serial.FirstPassRouted != par.FirstPassRouted ||
		serial.Iterations != par.Iterations ||
		serial.RippedUp != par.RippedUp ||
		len(serial.Failed) != len(par.Failed) ||
		len(serial.FallbackNets) != len(par.FallbackNets) {
		return nil, fmt.Errorf("%s: diagnostics diverge: serial firstPass=%d iters=%d ripped=%d failed=%d fallback=%d, batched firstPass=%d iters=%d ripped=%d failed=%d fallback=%d",
			label, serial.FirstPassRouted, serial.Iterations, serial.RippedUp, len(serial.Failed), len(serial.FallbackNets),
			par.FirstPassRouted, par.Iterations, par.RippedUp, len(par.Failed), len(par.FallbackNets))
	}
	return par, nil
}

// diffCacheBudget bounds the scratch cache used by DiffCacheBytes; any
// real compile payload fits comfortably.
const diffCacheBudget = 1 << 24

// DiffCacheBytes cross-checks the compile service's content-addressed
// caching: a fresh compile routed through the cache must miss, the repeat
// must hit, and both payloads must be byte-identical to encoding the
// result under test directly — the property that makes serving cached
// bytes indistinguishable from recompiling.
func DiffCacheBytes(ctx context.Context, res *tqec.Result, opts tqec.Options) error {
	key, err := tqec.CacheKey(res.Circuit, opts)
	if err != nil {
		return err
	}
	cache := ccache.New(diffCacheBudget)
	compute := func() ([]byte, error) {
		fresh, err := tqec.CompileContext(ctx, res.Circuit, opts)
		if err != nil {
			return nil, err
		}
		return server.EncodeResult(key, fresh)
	}
	first, outcome, err := cache.Do(ctx, key, compute)
	if err != nil {
		return fmt.Errorf("cached compile: %w", err)
	}
	if outcome != ccache.Miss {
		return fmt.Errorf("first cache access was %v, want miss", outcome)
	}
	second, outcome, err := cache.Do(ctx, key, compute)
	if err != nil {
		return fmt.Errorf("cache replay: %w", err)
	}
	if outcome != ccache.Hit {
		return fmt.Errorf("second cache access was %v, want hit", outcome)
	}
	if !bytes.Equal(first, second) {
		return fmt.Errorf("cache replay returned different bytes (%d vs %d)", len(first), len(second))
	}
	direct, err := server.EncodeResult(key, res)
	if err != nil {
		return err
	}
	if !bytes.Equal(direct, first) {
		return fmt.Errorf("cached bytes differ from direct encoding (%d vs %d bytes)", len(first), len(direct))
	}
	return nil
}

// DiffBridging cross-checks a bridged compilation against the unbridged
// ablation of the same circuit: the ablation must satisfy the same
// structural invariants, share the ICM footprint and canonical volume
// (bridging is purely geometric), and perform no merges. On circuits
// whose decomposed form fits in maxSimQubits the decomposition both runs
// share is additionally verified against the source circuit by
// state-vector simulation; the returned flag reports whether that
// simulation ran.
func DiffBridging(ctx context.Context, res *tqec.Result, opts tqec.Options, maxSimQubits int) (bool, error) {
	ablOpts := opts
	ablOpts.Bridging = false
	// Unbridged netlists keep every dual segment and net and need more
	// routing resource (the paper's Table V explanation; same settings as
	// the harness ablation runs).
	ablOpts.Place.Margin = 2
	ablOpts.Place.TierPitch = 4
	abl, err := tqec.CompileContext(ctx, res.Circuit, ablOpts)
	if err != nil {
		return false, fmt.Errorf("unbridged compile: %w", err)
	}
	if err := BridgeReconstructable(abl); err != nil {
		return false, fmt.Errorf("unbridged: %w", err)
	}
	if err := PlacementLegal(abl); err != nil {
		return false, fmt.Errorf("unbridged: %w", err)
	}
	// The unbridged netlist may exhaust the router even with the extra
	// margin — the very congestion Table V quantifies — so degradation is
	// tolerated here; what did route must still be structurally sound.
	if err := RoutingStructurallySound(abl); err != nil {
		return false, fmt.Errorf("unbridged: %w", err)
	}
	if err := VolumeAccounting(abl); err != nil {
		return false, fmt.Errorf("unbridged: %w", err)
	}
	if abl.Bridging.Merges != 0 || abl.Bridging.RemovedSegments != 0 {
		return false, fmt.Errorf("unbridged run reports %d merges and %d removed segments",
			abl.Bridging.Merges, abl.Bridging.RemovedSegments)
	}
	if abl.CanonicalVolume != res.CanonicalVolume {
		return false, fmt.Errorf("canonical volume %d unbridged vs %d bridged", abl.CanonicalVolume, res.CanonicalVolume)
	}
	if a, b := abl.ICM.Stats(), res.ICM.Stats(); a != b {
		return false, fmt.Errorf("ICM stats diverge: %+v unbridged vs %+v bridged", a, b)
	}

	if res.Decomposed == nil || maxSimQubits <= 0 || len(res.Decomposed.Qubits) > maxSimQubits {
		return false, nil
	}
	nq := len(res.Decomposed.Qubits)
	padded := res.Circuit.Clone()
	padded.Qubits = append([]string(nil), res.Decomposed.Qubits...)
	ok, err := sim.EquivalentOnCleanAncillas(nq, res.Circuit.NumQubits(), padded, res.Decomposed)
	if err != nil {
		return false, fmt.Errorf("simulate: %w", err)
	}
	if !ok {
		return true, fmt.Errorf("decomposed circuit is not unitarily equivalent to %q", res.Circuit.Name)
	}
	return true, nil
}

// DiffPartition cross-checks the partitioned compile pipeline: the same
// circuit is recompiled through CompilePartitionedContext with a qubit
// cap of half the decomposed width (forcing a genuine cut on any circuit
// wider than one qubit), the resulting partition must verify against the
// decomposed circuit (parts ∪ seams cover every source gate exactly once
// and reassemble to the exact source gates), the stitched geometry must
// pass PartitionedResult.Verify (per-part structural invariants, slab
// disjointness, seam route legality), and a second run must be
// bit-identical in cut, slabs, seam routes and combined volume — the
// determinism contract that makes partitioned compiles content
// addressable. On circuits whose decomposed form fits in maxSimQubits the
// reassembled circuit is additionally verified unitarily equivalent to
// the source on clean ancillas by state-vector simulation; the returned
// flag reports whether that simulation ran.
func DiffPartition(ctx context.Context, res *tqec.Result, opts tqec.Options, maxSimQubits int) (bool, error) {
	d, err := decompose.Decompose(res.Circuit)
	if err != nil {
		return false, fmt.Errorf("decompose: %w", err)
	}
	nq := d.Circuit.NumQubits()
	popts := opts
	popts.Partition = partition.Options{
		MaxQubitsPerPart: (nq + 1) / 2,
		Seed:             opts.Place.Seed,
	}
	first, err := tqec.CompilePartitionedContext(ctx, res.Circuit, popts)
	if err != nil {
		return false, fmt.Errorf("partitioned compile: %w", err)
	}
	if nq > popts.Partition.MaxQubitsPerPart && first.PassThrough {
		return false, fmt.Errorf("cap %d on a %d-qubit decomposition did not split", popts.Partition.MaxQubitsPerPart, nq)
	}
	if err := first.Partition.Verify(d.Circuit, popts.Partition); err != nil {
		return false, err
	}
	if err := first.Verify(); err != nil {
		return false, err
	}
	second, err := tqec.CompilePartitionedContext(ctx, res.Circuit, popts)
	if err != nil {
		return false, fmt.Errorf("partitioned recompile: %w", err)
	}
	if err := samePartitioned(first, second); err != nil {
		return false, fmt.Errorf("partitioned reruns diverge: %w", err)
	}

	if maxSimQubits <= 0 || nq > maxSimQubits {
		return false, nil
	}
	back, err := first.Partition.Reassemble(d.Circuit)
	if err != nil {
		return false, err
	}
	padded := res.Circuit.Clone()
	padded.Qubits = append([]string(nil), d.Circuit.Qubits...)
	ok, err := sim.EquivalentOnCleanAncillas(nq, res.Circuit.NumQubits(), padded, back)
	if err != nil {
		return false, fmt.Errorf("simulate: %w", err)
	}
	if !ok {
		return true, fmt.Errorf("reassembled partition of %q is not unitarily equivalent to the source", res.Circuit.Name)
	}
	return true, nil
}

// samePartitioned compares two partitioned results for bit-identical
// output: the qubit cut, the slab geometry, every seam route and the
// combined measurements.
func samePartitioned(a, b *tqec.PartitionedResult) error {
	if la, lb := len(a.Partition.QubitPart), len(b.Partition.QubitPart); la != lb {
		return fmt.Errorf("qubit maps cover %d vs %d qubits", la, lb)
	}
	for q := range a.Partition.QubitPart {
		if a.Partition.QubitPart[q] != b.Partition.QubitPart[q] {
			return fmt.Errorf("qubit %d in part %d vs %d", q, a.Partition.QubitPart[q], b.Partition.QubitPart[q])
		}
	}
	if la, lb := len(a.Slabs), len(b.Slabs); la != lb {
		return fmt.Errorf("%d vs %d slabs", la, lb)
	}
	for i := range a.Slabs {
		if a.Slabs[i] != b.Slabs[i] {
			return fmt.Errorf("slab %d at %v vs %v", i, a.Slabs[i], b.Slabs[i])
		}
	}
	if a.Dims != b.Dims || a.Volume != b.Volume {
		return fmt.Errorf("geometry %v volume %d vs %v volume %d", a.Dims, a.Volume, b.Dims, b.Volume)
	}
	switch {
	case a.SeamRouting == nil && b.SeamRouting == nil:
	case a.SeamRouting == nil || b.SeamRouting == nil:
		return fmt.Errorf("seam routing present in only one run")
	default:
		if la, lb := len(a.SeamRouting.Routes), len(b.SeamRouting.Routes); la != lb {
			return fmt.Errorf("%d vs %d seam routes", la, lb)
		}
		for id, ap := range a.SeamRouting.Routes {
			bp, ok := b.SeamRouting.Routes[id]
			if !ok {
				return fmt.Errorf("seam %d routed in only one run", id)
			}
			if len(ap) != len(bp) {
				return fmt.Errorf("seam %d path length %d vs %d", id, len(ap), len(bp))
			}
			for i := range ap {
				if ap[i] != bp[i] {
					return fmt.Errorf("seam %d cell %d: %v vs %v", id, i, ap[i], bp[i])
				}
			}
		}
	}
	return nil
}

// DiffZX cross-checks the ZX pre-compression pass against its ablation:
// the same circuit is recompiled with Options.ZX flipped, the ablation
// must satisfy every structural invariant, the ZX-on run's canonical
// volume must never exceed the ZX-off run's (the pass's self-checking
// fall-back contract), both decompositions must agree on qubit count, and
// on circuits small enough for maxSimQubits the two decompositions are
// verified unitarily equivalent on clean ancillas by state-vector
// simulation. The returned flag reports whether the simulation ran.
func DiffZX(ctx context.Context, res *tqec.Result, opts tqec.Options, maxSimQubits int) (bool, error) {
	ablOpts := opts
	ablOpts.ZX = !opts.ZX
	abl, err := tqec.CompileContext(ctx, res.Circuit, ablOpts)
	if err != nil {
		return false, fmt.Errorf("zx ablation compile (ZX=%v): %w", ablOpts.ZX, err)
	}
	if err := BridgeReconstructable(abl); err != nil {
		return false, fmt.Errorf("zx ablation: %w", err)
	}
	if err := PlacementLegal(abl); err != nil {
		return false, fmt.Errorf("zx ablation: %w", err)
	}
	if err := RoutingStructurallySound(abl); err != nil {
		return false, fmt.Errorf("zx ablation: %w", err)
	}
	if err := VolumeAccounting(abl); err != nil {
		return false, fmt.Errorf("zx ablation: %w", err)
	}
	on, off := res, abl
	if !opts.ZX {
		on, off = abl, res
	}
	if on.CanonicalVolume > off.CanonicalVolume {
		return false, fmt.Errorf("ZX-on canonical volume %d exceeds ZX-off %d",
			on.CanonicalVolume, off.CanonicalVolume)
	}
	if a, b := on.Decomposed.NumQubits(), off.Decomposed.NumQubits(); a != b {
		return false, fmt.Errorf("decomposed qubit count diverges: %d ZX-on vs %d ZX-off", a, b)
	}

	nq := on.Decomposed.NumQubits()
	if maxSimQubits <= 0 || nq > maxSimQubits {
		return false, nil
	}
	ok, err := sim.EquivalentOnCleanAncillas(nq, res.Circuit.NumQubits(), on.Decomposed, off.Decomposed)
	if err != nil {
		return false, fmt.Errorf("simulate: %w", err)
	}
	if !ok {
		return true, fmt.Errorf("ZX-on and ZX-off decompositions of %q are not unitarily equivalent", res.Circuit.Name)
	}
	return true, nil
}
