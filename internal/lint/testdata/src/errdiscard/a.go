// Package edpkg is the tqeclint golden fixture for the errdiscard
// analyzer: no blank or bare-statement discards of errors, and error
// causes wrapped with %w.
package edpkg

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
)

func emit(s string) error {
	if s == "" {
		return fmt.Errorf("empty input")
	}
	return nil
}

func parse(s string) int {
	n, _ := strconv.Atoi(s) // want `error result discarded with _`
	return n
}

func run(s string) {
	_ = emit(s) // want `error result discarded with _`
	emit(s)     // want `call discards its error result`
}

func wrap(err error) error {
	return fmt.Errorf("stage failed: %v", err) // want `fmt.Errorf formats an error without %w`
}

func wrapOK(err error) error {
	return fmt.Errorf("stage failed: %w", err)
}

// In-memory writers cannot fail; discarding their results is legal.
func buffered() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "volume=%d", 42)
	b.WriteString("!")
	return b.String()
}

// bufio.Writer latches its first error for Flush, so intermediate writes
// may be discarded — but Flush itself must be checked.
func sticky(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "header")
	bw.WriteString("body")
	bw.Flush() // want `call discards its error result`
	return bw.Flush()
}

func ignored(s string) {
	//lint:ignore errdiscard fixture: best-effort emit
	emit(s)
}
