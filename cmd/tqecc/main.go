// Command tqecc compresses one circuit through the full bridge-based
// compression flow and reports the resulting geometry.
//
// Usage:
//
//	tqecc -bench 4gt10-v1_81 [-iters N] [-seed S] [-no-bridging] [-no-zx]
//	      [-conference] [-timeout 30s] [-viz slices|csv|obj] [-o out.txt]
//	tqecc -real circuit.real [...]
//
// Exactly one of -bench (a paper benchmark name) or -real (a RevLib .real
// file) selects the input. -viz writes a layout rendering of the result
// (the paper's Fig. 20) to -o (default stdout).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/partition"
	"repro/internal/qc"
	"repro/internal/viz"
	"repro/tqec"
)

func main() {
	bench := flag.String("bench", "", "paper benchmark name (see -list)")
	realFile := flag.String("real", "", "RevLib .real circuit file")
	list := flag.Bool("list", false, "list available benchmarks")
	iters := flag.Int("iters", 0, "SA move budget (0 = auto)")
	seed := flag.Int64("seed", 1, "random seed")
	noBridging := flag.Bool("no-bridging", false, "disable iterative bridging (Table V ablation)")
	noZX := flag.Bool("no-zx", false, "disable the ZX pre-compression pass (paper-faithful ablation)")
	conference := flag.Bool("conference", false, "disable primal-group clustering (conference version [36])")
	vizMode := flag.String("viz", "", "emit a layout rendering: slices, csv, svg or obj")
	out := flag.String("o", "", "visualization output file (default stdout)")
	timeout := flag.Duration("timeout", 0, "abort compilation after this long (0 = no limit)")
	partitionCap := flag.Int("partition", 0, "partitioned compile: max qubits per part (0 = whole-circuit compile)")
	flag.Parse()

	if *list {
		for _, b := range qc.Benchmarks {
			fmt.Printf("%-16s %2d qubits, %3d gates\n", b.Name, b.Qubits, b.Gates())
		}
		return
	}

	circuit, err := loadCircuit(*bench, *realFile)
	if err != nil {
		fatal(err)
	}

	opts := tqec.DefaultOptions()
	opts.Place.Iterations = *iters
	opts.Place.Seed = *seed
	opts.Bridging = !*noBridging
	opts.ZX = !*noZX
	opts.PrimalGroups = !*conference
	if *noBridging {
		// Unbridged netlists keep every dual segment and net and need
		// more routing resource (the paper's Table V explanation).
		opts.Place.Margin = 2
		opts.Place.TierPitch = 4
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if *partitionCap > 0 {
		opts.Partition = partition.Options{MaxQubitsPerPart: *partitionCap, Seed: *seed}
		runPartitioned(ctx, circuit, opts)
		return
	}
	res, err := tqec.CompileContext(ctx, circuit, opts)
	if err != nil {
		fatal(err)
	}
	if res.Degraded {
		fmt.Fprintf(os.Stderr, "tqecc: warning: degraded routing (%d fallback, %d unrouted net(s)); see diagnostics below\n",
			len(res.Routing.FallbackNets), len(res.Routing.Failed))
		for _, f := range res.Routing.FailedNets {
			fmt.Fprintf(os.Stderr, "tqecc:   net %d: %s\n", f.NetID, f.Reason)
		}
	}

	s := res.ICM.Stats()
	fmt.Printf("circuit:   %s (%d qubits, %d gates)\n", circuit.Name, circuit.NumQubits(), circuit.NumGates())
	fmt.Printf("ICM:       %d lines, %d CNOTs, %d |Y>, %d |A>\n", s.Lines, s.CNOTs, s.NumY, s.NumA)
	fmt.Printf("netlist:   %d modules, %d loops -> %d structures (%d merges), %d nets\n",
		len(res.Netlist.Modules), len(res.Netlist.Loops),
		len(res.Bridging.Structures), res.Bridging.Merges, len(res.Bridging.Nets))
	fmt.Printf("placement: %d nodes on %d tiers, wirelength %d\n",
		res.Clustering.Stats().Nodes, res.Placement.Tiers, res.Placement.WireLength)
	fmt.Printf("routing:   %d/%d nets routed (%d first pass, %d rip-ups)\n",
		len(res.Routing.Routes), len(res.Bridging.Nets),
		res.Routing.FirstPassRouted, res.Routing.RippedUp)
	fmt.Printf("result:    %s  (canonical %d + boxes %d; compression x%.2f)\n",
		res.Dims, res.CanonicalVolume, res.BoxVolume, res.CompressionRatio())
	fmt.Printf("runtime breakdown:\n%s", res.Breakdown)

	if *vizMode != "" {
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		scene := viz.BuildScene(res.Placement, res.Routing)
		switch *vizMode {
		case "slices":
			err = scene.WriteSlices(w)
		case "csv":
			err = scene.WriteCSV(w)
		case "obj":
			err = viz.WriteOBJ(w, res.Placement, res.Routing)
		case "svg":
			err = scene.WriteSVG(w, 4)
		default:
			err = fmt.Errorf("unknown viz mode %q", *vizMode)
		}
		if err != nil {
			fatal(err)
		}
	}
}

// runPartitioned compiles through the partitioned pipeline and prints the
// combined geometry plus the per-part and seam summaries.
func runPartitioned(ctx context.Context, circuit *qc.Circuit, opts tqec.Options) {
	res, err := tqec.CompilePartitionedContext(ctx, circuit, opts)
	if err != nil {
		fatal(err)
	}
	if res.Degraded {
		fmt.Fprintln(os.Stderr, "tqecc: warning: degraded routing in a part or the seam stitching")
	}
	parts, seams, largest := res.Partition.Stats()
	fmt.Printf("circuit:   %s (%d qubits, %d gates)\n", circuit.Name, circuit.NumQubits(), circuit.NumGates())
	fmt.Printf("partition: %d part(s), %d seam(s), largest part %d qubits (cap %d)\n",
		parts, seams, largest, opts.Partition.MaxQubitsPerPart)
	for i, part := range res.Parts {
		src := &res.Partition.Parts[i]
		if part == nil {
			fmt.Printf("  part %d:  %d qubits, %d gates — no geometry (slab %v)\n",
				i, len(src.Qubits), src.Circuit.NumGates(), res.Slabs[i])
			continue
		}
		fmt.Printf("  part %d:  %d qubits, %d gates -> %s (volume %d), slab %v\n",
			i, len(src.Qubits), src.Circuit.NumGates(), part.Dims, part.Volume, res.Slabs[i])
	}
	if sr := res.SeamRouting; sr != nil {
		fmt.Printf("seams:     %d/%d routed (%d fallback, %d failed)\n",
			len(sr.Routes), len(res.SeamNets), len(sr.FallbackNets), len(sr.Failed))
	}
	fmt.Printf("result:    %s  (canonical %d + boxes %d; compression x%.2f)\n",
		res.Dims, res.CanonicalVolume, res.BoxVolume, res.CompressionRatio())
	fmt.Printf("runtime breakdown:\n%s", res.Breakdown)
}

func loadCircuit(bench, realFile string) (*qc.Circuit, error) {
	switch {
	case bench != "" && realFile != "":
		return nil, fmt.Errorf("use either -bench or -real, not both")
	case bench != "":
		spec, err := qc.BenchmarkByName(bench)
		if err != nil {
			return nil, err
		}
		return spec.Generate()
	case realFile != "":
		f, err := os.Open(realFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return qc.ParseReal(realFile, f)
	default:
		return nil, fmt.Errorf("select an input with -bench or -real (or -list)")
	}
}

func fatal(err error) {
	if se, ok := tqec.AsStageError(err); ok {
		switch {
		case errors.Is(err, tqec.ErrCanceled):
			fmt.Fprintf(os.Stderr, "tqecc: stage %s aborted: %v\n", se.Stage, se.Err)
		case errors.Is(err, tqec.ErrPanic):
			fmt.Fprintf(os.Stderr, "tqecc: stage %s crashed: %v\n%s", se.Stage, se.Err, se.Stack)
		default:
			fmt.Fprintf(os.Stderr, "tqecc: stage %s failed: %v\n", se.Stage, se.Err)
		}
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "tqecc:", err)
	os.Exit(1)
}
