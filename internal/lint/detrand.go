package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// detPackages are the stages whose output must be a pure function of their
// inputs and the explicit seed: placement SA, routing, bridge negotiation
// and benchmark-circuit generation. Reproducibility of these stages is what
// makes the paper's tables replayable.
var detPackages = []string{
	"repro/internal/place",
	"repro/internal/route",
	"repro/internal/bridge",
	"repro/internal/qc",
}

// detRandDraws are the math/rand package-level functions that consume the
// global (process-wide, unseeded-by-us) source. Constructors (New,
// NewSource, NewZipf) stay legal: all randomness must flow from an
// explicitly seeded *rand.Rand.
var detRandDraws = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

// DetRand enforces determinism in the seeded stages.
//
//   - time.Now/Since/Until are banned: wall-clock values leak
//     irreproducible state into results.
//   - Draws from the global math/rand source are banned; only methods of an
//     explicitly seeded *rand.Rand may produce randomness.
//   - A slice appended to inside a range-over-map loop must be sorted
//     before the function ends (or the iteration rewritten over sorted
//     keys): map iteration order is the classic silent nondeterminism.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "seeded stages (place/route/bridge/qc) draw no wall-clock time, no global rand, no map-order output",
	Run:  runDetRand,
}

func inDetScope(path string) bool {
	for _, p := range detPackages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func runDetRand(pass *Pass) {
	if !inDetScope(pass.Pkg.Path) {
		return
	}
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Pkg.Info, call)
			switch name := pkgFunc(fn); name {
			case "time.Now", "time.Since", "time.Until":
				pass.Reportf(call.Pos(), "%s in a seeded stage: wall-clock state breaks reproducibility", name)
			default:
				if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "math/rand" &&
					name != "" && detRandDraws[fn.Name()] {
					pass.Reportf(call.Pos(), "rand.%s draws from the global source: use an explicitly seeded *rand.Rand", fn.Name())
				}
			}
			return true
		})
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkMapOrder(pass, fd)
			}
		}
	}
}

// checkMapOrder flags slices that accumulate elements in map-iteration
// order without a subsequent sort in the same function.
func checkMapOrder(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		for _, obj := range appendTargets(pass, rs) {
			if !sortedAfter(pass, fd, rs, obj) {
				pass.Reportf(rs.Pos(), "slice %q accumulates map-iteration order: sort it before use or range over sorted keys", obj.Name())
			}
		}
		return true
	})
}

// appendTargets returns the objects of slices appended to inside the range
// body that outlive the loop (declared outside it).
func appendTargets(pass *Pass, rs *ast.RangeStmt) []types.Object {
	seen := map[types.Object]bool{}
	var out []types.Object
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		callee, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		if b, isBuiltin := pass.Pkg.Info.Uses[callee].(*types.Builtin); !isBuiltin || b.Name() != "append" {
			return true
		}
		obj := pass.Pkg.Info.ObjectOf(id)
		if obj == nil || seen[obj] {
			return true
		}
		// A slice declared inside the loop body is rebuilt per iteration;
		// its order does not leak out of the range statement.
		if obj.Pos() >= rs.Body.Pos() && obj.Pos() <= rs.Body.End() {
			return true
		}
		seen[obj] = true
		out = append(out, obj)
		return true
	})
	return out
}

// detSortFuncs are calls accepted as establishing a deterministic order.
var detSortFuncs = map[string]bool{
	"sort.Ints": true, "sort.Strings": true, "sort.Float64s": true,
	"sort.Slice": true, "sort.SliceStable": true, "sort.Sort": true, "sort.Stable": true,
	"slices.Sort": true, "slices.SortFunc": true, "slices.SortStableFunc": true,
}

// sortedAfter reports whether obj is passed to a sort call after the range
// statement, anywhere in the enclosing function.
func sortedAfter(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || len(call.Args) == 0 {
			return true
		}
		if !detSortFuncs[pkgFunc(calleeFunc(pass.Pkg.Info, call))] {
			return true
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && pass.Pkg.Info.ObjectOf(id) == obj {
			found = true
		}
		return true
	})
	return found
}
