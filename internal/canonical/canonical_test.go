package canonical

import (
	"testing"
	"testing/quick"

	"repro/internal/decompose"
	"repro/internal/icm"
	"repro/internal/qc"
)

func build(t *testing.T, c *qc.Circuit) *Description {
	t.Helper()
	r, err := decompose.Decompose(c)
	if err != nil {
		t.Fatal(err)
	}
	ic, err := icm.FromDecomposed(r.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Build(ic)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCanonicalDims(t *testing.T) {
	c := qc.New("three", 3)
	c.Append(qc.CNOT(0, 1), qc.CNOT(1, 2), qc.CNOT(0, 2))
	d := build(t, c)
	w, h, depth := d.Dims()
	if w != 3 || h != 2 || depth != 9 {
		t.Fatalf("dims: %d×%d×%d want 3×2×9", w, h, depth)
	}
	if d.Volume() != 54 {
		t.Fatalf("volume: %d want 54 (the paper's Fig. 4 canonical volume)", d.Volume())
	}
}

func TestCanonicalVolumeIdentity(t *testing.T) {
	// Table IV canonical columns: Vol = #Qubits_d × 2 × 3·#CNOTs. Check
	// against the 4gt10 benchmark with our calibration.
	spec, err := qc.BenchmarkByName("4gt10-v1_81")
	if err != nil {
		t.Fatal(err)
	}
	d := build(t, mustGen(t, spec))
	w, h, depth := d.Dims()
	wantLines := spec.Qubits + 41*spec.Toffolis
	wantCNOTs := 54*spec.Toffolis + spec.CNOTs
	if w != wantLines || h != 2 || depth != 3*wantCNOTs {
		t.Fatalf("dims %d×%d×%d want %d×2×%d", w, h, depth, wantLines, 3*wantCNOTs)
	}
	if d.Volume() != wantLines*2*3*wantCNOTs {
		t.Fatalf("volume: %d", d.Volume())
	}
}

func TestTotalVolumeAddsBoxes(t *testing.T) {
	c := qc.New("t", 1)
	c.Append(qc.T(0))
	d := build(t, c)
	if d.TotalVolume(100) != d.Volume()+100 {
		t.Fatal("TotalVolume should add box volume")
	}
}

func TestLiveness(t *testing.T) {
	c := qc.New("life", 3)
	c.Append(qc.CNOT(0, 1), qc.CNOT(1, 2), qc.CNOT(0, 2))
	d := build(t, c)
	// Line 1 participates in CNOTs at slots 0 and 1 only.
	if !d.Alive(1, 0) || !d.Alive(1, 1) {
		t.Error("line 1 should be alive at slots 0-1")
	}
	if d.Alive(1, 2) {
		t.Error("line 1 should be dead at slot 2")
	}
	// Line 0 is alive for the whole schedule.
	for s := 0; s < 3; s++ {
		if !d.Alive(0, s) {
			t.Errorf("line 0 dead at slot %d", s)
		}
	}
}

func TestPenetrationsSkipDeadLines(t *testing.T) {
	c := qc.New("pen", 3)
	c.Append(qc.CNOT(0, 1), qc.CNOT(1, 2), qc.CNOT(0, 2))
	d := build(t, c)
	p := d.Penetrations(2) // CNOT(0,2) at slot 2; line 1 dead
	if len(p) != 2 || p[0] != 0 || p[1] != 2 {
		t.Fatalf("penetrations: %v want [0 2]", p)
	}
	p0 := d.Penetrations(0)
	if len(p0) != 2 {
		t.Fatalf("loop 0 penetrations: %v", p0)
	}
}

func TestLoopGeometry(t *testing.T) {
	c := qc.New("geo", 2)
	c.Append(qc.CNOT(0, 1))
	d := build(t, c)
	lb := d.LoopBox(0)
	if lb.Dx() != SlotWidth || lb.Dy() != 2 || lb.Dz() != 2 {
		t.Fatalf("loop box: %v", lb)
	}
	r0 := d.LineRail(0, 0)
	r1 := d.LineRail(0, 1)
	if r0.Intersects(r1) {
		t.Fatal("rails of one line must be disjoint")
	}
	if r0.Dy() != 1 || r0.Dz() != 1 {
		t.Fatalf("rail shape: %v", r0)
	}
}

func TestEmptyCircuit(t *testing.T) {
	ic := &icm.Circuit{Name: "empty", TSL: map[int][]int{}}
	d, err := Build(ic)
	if err != nil {
		t.Fatal(err)
	}
	if d.Volume() != 0 {
		t.Fatalf("gateless, lineless circuit volume: %d", d.Volume())
	}
}

func TestBuildRejectsInvalid(t *testing.T) {
	ic := &icm.Circuit{
		Name:  "bad",
		CNOTs: []icm.CNOT{{ID: 0, Control: 0, Target: 5}},
		TSL:   map[int][]int{},
	}
	if _, err := Build(ic); err == nil {
		t.Fatal("invalid ICM accepted")
	}
}

// Property: every loop's penetration list always contains control and
// target and is sorted ascending.
func TestQuickPenetrations(t *testing.T) {
	f := func(q uint8, nt uint8, seed int64) bool {
		spec := qc.BenchmarkSpec{
			Name:     "fuzz",
			Qubits:   3 + int(q%8),
			Toffolis: 1 + int(nt%6),
			Seed:     seed,
		}
		r, err := decompose.Decompose(mustGen(t, spec))
		if err != nil {
			return false
		}
		ic, err := icm.FromDecomposed(r.Circuit)
		if err != nil {
			return false
		}
		d, err := Build(ic)
		if err != nil {
			return false
		}
		for id, g := range ic.CNOTs {
			p := d.Penetrations(id)
			hasC, hasT := false, false
			for i, ln := range p {
				if ln == g.Control {
					hasC = true
				}
				if ln == g.Target {
					hasT = true
				}
				if i > 0 && p[i-1] >= ln {
					return false
				}
			}
			if !hasC || !hasT {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// mustGen generates a benchmark circuit, failing the test on error.
func mustGen(tb testing.TB, spec qc.BenchmarkSpec) *qc.Circuit {
	tb.Helper()
	c, err := spec.Generate()
	if err != nil {
		tb.Fatal(err)
	}
	return c
}
