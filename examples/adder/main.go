// Adder: build a reversible ripple-carry adder (the workload family behind
// the paper's add16_174 benchmark) from majority/unmajority blocks and
// compress it, comparing the result against the canonical form and the
// Lin et al. [22]-style baselines.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/baseline"
	"repro/internal/qc"
	"repro/tqec"
)

// rippleCarryAdder builds the Cuccaro-style in-place adder a+b over two
// n-bit registers plus one carry ancilla: MAJ blocks down, UMA blocks up.
func rippleCarryAdder(n int) *qc.Circuit {
	// Qubit layout: c, a0,b0, a1,b1, ..., a(n-1),b(n-1).
	c := qc.New(fmt.Sprintf("rca%d", n), 1+2*n)
	carry := 0
	a := func(i int) int { return 1 + 2*i }
	b := func(i int) int { return 2 + 2*i }

	maj := func(x, y, z int) {
		c.Append(qc.CNOT(z, y), qc.CNOT(z, x), qc.Toffoli(x, y, z))
	}
	uma := func(x, y, z int) {
		c.Append(qc.Toffoli(x, y, z), qc.CNOT(z, x), qc.CNOT(x, y))
	}

	prev := carry
	for i := 0; i < n; i++ {
		maj(prev, b(i), a(i))
		prev = a(i)
	}
	for i := n - 1; i >= 0; i-- {
		if i == 0 {
			uma(carry, b(i), a(i))
		} else {
			uma(a(i-1), b(i), a(i))
		}
	}
	return c
}

func main() {
	bits := flag.Int("bits", 4, "adder width in bits")
	seed := flag.Int64("seed", 1, "placement seed")
	flag.Parse()

	circuit := rippleCarryAdder(*bits)
	fmt.Printf("%d-bit ripple-carry adder: %d qubits, %d gates (%d Toffoli)\n",
		*bits, circuit.NumQubits(), circuit.NumGates(), circuit.CountKind(qc.GateToffoli))

	opts := tqec.DefaultOptions()
	opts.Place.Seed = *seed
	res, err := tqec.Compile(circuit, opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		log.Fatal(err)
	}

	// Baselines over the same ICM circuit.
	lin1d, err := baseline.Lin1D(res.ICM)
	if err != nil {
		log.Fatal(err)
	}
	lin2d, err := baseline.Lin2D(res.ICM)
	if err != nil {
		log.Fatal(err)
	}
	box := res.BoxVolume
	canonical := res.CanonicalVolume + box

	fmt.Printf("ICM: %d lines, %d CNOTs, %d |Y>, %d |A>\n",
		len(res.ICM.Lines), len(res.ICM.CNOTs),
		res.ICM.Stats().NumY, res.ICM.Stats().NumA)
	fmt.Printf("%-22s %12s %8s\n", "flow", "volume", "ratio")
	fmt.Printf("%-22s %12d %8.2f\n", "canonical (+boxes)", canonical, float64(canonical)/float64(res.Volume))
	fmt.Printf("%-22s %12d %8.2f\n", "[22] 1D (+boxes)", lin1d.TotalVolume(box), float64(lin1d.TotalVolume(box))/float64(res.Volume))
	fmt.Printf("%-22s %12d %8.2f\n", "[22] 2D (+boxes)", lin2d.TotalVolume(box), float64(lin2d.TotalVolume(box))/float64(res.Volume))
	fmt.Printf("%-22s %12d %8.2f  (%s)\n", "bridge-compressed", res.Volume, 1.0, res.Dims)
	fmt.Printf("routed %d/%d nets, %d unrouted\n",
		len(res.Routing.Routes), len(res.Bridging.Nets), len(res.Routing.Failed))
}
