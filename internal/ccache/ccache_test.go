package ccache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/faults"
)

func mustDo(t *testing.T, c *Cache, key string, compute func() ([]byte, error)) ([]byte, Outcome) {
	t.Helper()
	v, o, err := c.Do(context.Background(), key, compute)
	if err != nil {
		t.Fatalf("Do(%q): %v", key, err)
	}
	return v, o
}

func TestDoHitMiss(t *testing.T) {
	c := New(1 << 20)
	var calls int
	compute := func() ([]byte, error) { calls++; return []byte("payload"), nil }

	v, o := mustDo(t, c, "k", compute)
	if string(v) != "payload" || o != Miss {
		t.Fatalf("first Do = %q, %v; want payload, Miss", v, o)
	}
	v, o = mustDo(t, c, "k", compute)
	if string(v) != "payload" || o != Hit {
		t.Fatalf("second Do = %q, %v; want payload, Hit", v, o)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	if got, ok := c.Get("k"); !ok || string(got) != "payload" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	s := c.Stats()
	if s.Lookups != 2 || s.Hits != 1 || s.Misses != 1 || s.Shared != 0 || s.Entries != 1 || s.Bytes != 7 {
		t.Fatalf("stats %+v", s)
	}
}

func TestSingleFlight(t *testing.T) {
	c := New(1 << 20)
	const waiters = 16
	var computes atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once

	outcomes := make([]Outcome, waiters)
	vals := make([][]byte, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, o, err := c.Do(context.Background(), "k", func() ([]byte, error) {
				computes.Add(1)
				once.Do(func() { close(started) })
				<-release
				return []byte("shared-payload"), nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			outcomes[i] = o
			vals[i] = v
		}()
	}
	<-started
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times for %d concurrent callers", n, waiters)
	}
	var miss, shrd, hit int
	for i := range outcomes {
		if string(vals[i]) != "shared-payload" {
			t.Fatalf("waiter %d got %q", i, vals[i])
		}
		switch outcomes[i] {
		case Miss:
			miss++
		case Shared:
			shrd++
		case Hit:
			hit++
		}
	}
	// Exactly one caller computes; the rest either coalesced onto the
	// flight or arrived after publication and hit the cache.
	if miss != 1 || shrd+hit != waiters-1 {
		t.Fatalf("outcomes: %d miss, %d shared, %d hit", miss, shrd, hit)
	}
	s := c.Stats()
	if s.Lookups != waiters || s.Misses != 1 || s.Hits != waiters-1 || s.Shared > s.Hits {
		t.Fatalf("stats %+v", s)
	}
	if s.Hits+s.Misses != s.Lookups {
		t.Fatalf("hits+misses != lookups: %+v", s)
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := New(1 << 20)
	boom := errors.New("boom")
	_, _, err := c.Do(context.Background(), "k", func() ([]byte, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("failed compute was cached")
	}
	v, o := mustDo(t, c, "k", func() ([]byte, error) { return []byte("ok"), nil })
	if string(v) != "ok" || o != Miss {
		t.Fatalf("retry after error = %q, %v", v, o)
	}
}

func TestEvictionLRU(t *testing.T) {
	c := New(10)
	fill := func(key, val string) { mustDo(t, c, key, func() ([]byte, error) { return []byte(val), nil }) }
	fill("a", "aaaa") // 4 bytes
	fill("b", "bbbb") // 8 bytes
	// Touch a so b is the LRU tail.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	fill("c", "cccc") // 12 bytes -> evict b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted (LRU)")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived (recently used)")
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Entries != 2 || s.Bytes != 8 {
		t.Fatalf("stats %+v", s)
	}
}

func TestOversizePayloadUncacheable(t *testing.T) {
	c := New(4)
	v, o := mustDo(t, c, "big", func() ([]byte, error) { return []byte("too large"), nil })
	if string(v) != "too large" || o != Miss {
		t.Fatalf("Do = %q, %v", v, o)
	}
	if _, ok := c.Get("big"); ok {
		t.Fatal("oversize payload was cached")
	}
	if s := c.Stats(); s.Uncacheable != 1 || s.Entries != 0 {
		t.Fatalf("stats %+v", s)
	}
}

// TestBudgetBoundary pins cost accounting at the byte-budget edge: a
// payload exactly at the budget is cacheable and charged exactly once
// (evicting everything else), one byte over is uncacheable, and an
// uncacheable result never occupies bytes that would wedge later
// evictions.
func TestBudgetBoundary(t *testing.T) {
	c := New(8)
	mustDo(t, c, "small", func() ([]byte, error) { return []byte("xx"), nil })
	// Exactly at the budget: cached, evicts "small".
	mustDo(t, c, "exact", func() ([]byte, error) { return []byte("12345678"), nil })
	if _, ok := c.Get("exact"); !ok {
		t.Fatal("payload exactly at the budget was not cached")
	}
	if _, ok := c.Get("small"); ok {
		t.Fatal("small entry should have been evicted by the full-budget entry")
	}
	s := c.Stats()
	if s.Bytes != 8 || s.Entries != 1 || s.Evictions != 1 || s.Uncacheable != 0 {
		t.Fatalf("stats after exact-fit insert: %+v", s)
	}

	// One byte over: uncacheable, charged once, cache state untouched.
	mustDo(t, c, "over", func() ([]byte, error) { return []byte("123456789"), nil })
	s = c.Stats()
	if s.Uncacheable != 1 || s.Bytes != 8 || s.Entries != 1 {
		t.Fatalf("stats after oversize insert: %+v", s)
	}
	// The oversize result must not have wedged eviction: a new fitting
	// entry still displaces the old one normally.
	mustDo(t, c, "next", func() ([]byte, error) { return []byte("abcdefgh"), nil })
	if _, ok := c.Get("next"); !ok {
		t.Fatal("cache wedged: fitting entry not cached after oversize insert")
	}
	if s = c.Stats(); s.Entries != 1 || s.Bytes != 8 {
		t.Fatalf("stats after recovery insert: %+v", s)
	}
}

// TestZeroBudgetZeroBytePayload is the regression for the disabled-cache
// wedge: with a non-positive budget, a zero-byte payload used to slip past
// the oversize check into the LRU, where the byte-driven eviction loop
// could never remove it — the entry count grew without bound and the
// "disabled" cache started serving hits.
func TestZeroBudgetZeroBytePayload(t *testing.T) {
	c := New(0)
	for i := 0; i < 3; i++ {
		key := fmt.Sprintf("empty-%d", i)
		for pass := 0; pass < 2; pass++ {
			v, o := mustDo(t, c, key, func() ([]byte, error) { return []byte{}, nil })
			if len(v) != 0 || o != Miss {
				t.Fatalf("Do(%s) pass %d = %q, %v; want empty Miss", key, pass, v, o)
			}
		}
	}
	s := c.Stats()
	if s.Entries != 0 || s.Bytes != 0 {
		t.Fatalf("disabled cache retained entries: %+v", s)
	}
	if s.Hits != 0 || s.Misses != 6 || s.Uncacheable != 6 {
		t.Fatalf("disabled cache served hits or miscounted: %+v", s)
	}
}

func TestSharedWaitCancellation(t *testing.T) {
	c := New(1 << 20)
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		_, _, err := c.Do(context.Background(), "k", func() ([]byte, error) {
			close(started)
			<-release
			return []byte("v"), nil
		})
		if err != nil {
			t.Errorf("initiator: %v", err)
		}
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, o, err := c.Do(ctx, "k", func() ([]byte, error) { return nil, errors.New("must not run") })
	if o != Shared || !faults.IsCancellation(err) {
		t.Fatalf("canceled waiter: outcome %v, err %v", o, err)
	}
	close(release)
}

// TestConcurrentMixedKeys hammers the cache with many goroutines over a
// small key space (run under -race) and checks every caller observed the
// key's canonical payload.
func TestConcurrentMixedKeys(t *testing.T) {
	c := New(1 << 10)
	const goroutines, rounds, keys = 8, 200, 5
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				k := fmt.Sprintf("key-%d", (g+i)%keys)
				want := "payload-for-" + k
				v, _, err := c.Do(context.Background(), k, func() ([]byte, error) {
					return []byte(want), nil
				})
				if err != nil {
					t.Errorf("Do(%s): %v", k, err)
					return
				}
				if string(v) != want {
					t.Errorf("Do(%s) = %q", k, v)
					return
				}
			}
		}()
	}
	wg.Wait()
	s := c.Stats()
	if s.Lookups != goroutines*rounds {
		t.Fatalf("lookups = %d, want %d", s.Lookups, goroutines*rounds)
	}
	if s.Hits+s.Misses != s.Lookups || s.Shared > s.Hits {
		t.Fatalf("counter invariant violated: %+v", s)
	}
}

func TestDisabledCacheStillDedupes(t *testing.T) {
	c := New(0)
	v, o := mustDo(t, c, "k", func() ([]byte, error) { return []byte("v"), nil })
	if string(v) != "v" || o != Miss {
		t.Fatalf("Do = %q, %v", v, o)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("zero-budget cache stored a value")
	}
	if _, o := mustDo(t, c, "k", func() ([]byte, error) { return []byte("v"), nil }); o != Miss {
		t.Fatalf("second Do outcome = %v, want Miss (nothing cached)", o)
	}
}

func TestOutcomeString(t *testing.T) {
	for o, want := range map[Outcome]string{Miss: "miss", Hit: "hit", Shared: "shared", Outcome(9): "Outcome(9)"} {
		if got := o.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(o), got, want)
		}
	}
}
