// Package cspkg is the tqeclint golden fixture for the ctxsleep analyzer:
// no context-blind time.Sleep retry loops in library code.
package cspkg

import (
	"context"
	"errors"
	"time"
)

func attempt() error { return errors.New("transient") }

// retryLoop is the classic violation: a backoff that keeps sleeping after
// the caller gave up.
func retryLoop() error {
	var err error
	for i := 0; i < 3; i++ {
		if err = attempt(); err == nil {
			return nil
		}
		time.Sleep(10 * time.Millisecond) // want `time.Sleep in a loop is context-blind`
	}
	return err
}

// pollLoop violates through a range statement just the same.
func pollLoop(steps []int) {
	for range steps {
		time.Sleep(time.Millisecond) // want `time.Sleep in a loop is context-blind`
	}
}

// nestedLoop must be reported exactly once, from the inner loop.
func nestedLoop() {
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			time.Sleep(time.Millisecond) // want `time.Sleep in a loop is context-blind`
		}
	}
}

// oneShot is merely discouraged, not flagged: there is no loop to escape.
func oneShot() {
	time.Sleep(time.Millisecond)
}

// spawned sleeps inside a closure the loop only constructs; the closure
// runs on its own schedule, so the loop itself is not a sleep-retry loop.
func spawned(work chan<- func()) {
	for i := 0; i < 2; i++ {
		work <- func() { time.Sleep(time.Millisecond) }
	}
}

// ctxAware is the sanctioned shape: a timer raced against ctx.Done().
func ctxAware(ctx context.Context) error {
	for i := 0; i < 3; i++ {
		if err := attempt(); err == nil {
			return nil
		}
		t := time.NewTimer(10 * time.Millisecond)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
	return errors.New("exhausted")
}

// suppressed documents a reviewed exception.
func suppressed() {
	for i := 0; i < 2; i++ {
		//lint:ignore ctxsleep fixture: sanctioned wall-clock pacing loop
		time.Sleep(time.Millisecond)
	}
}
