package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// geomPkg owns the lattice-geometry primitives; only it may reach into
// their representation.
const geomPkg = "repro/internal/geom"

// GeomBounds keeps axis math behind internal/geom's helpers. Outside that
// package:
//
//   - Non-empty geom.Point/geom.Box composite literals are banned: the
//     constructors (Pt, NewBox, BoxAt, CellBox) normalize corners; raw
//     literals can build denormalized boxes. The zero literal (geom.Box{})
//     stays legal as the canonical empty value.
//   - Writing a field of a Point or Box is banned: mutation goes through
//     WithAxis, Add, Expand, Union and friends.
//   - Arithmetic or ordered comparison mixing different axes (p.X + q.Y)
//     is banned outright: on the lattice it is almost always a transposed-
//     coordinate bug.
var GeomBounds = &Analyzer{
	Name: "geombounds",
	Doc:  "geom.Point/Box stay behind geom's constructors and helpers: no raw literals, field writes, or mixed-axis math elsewhere",
	Run:  runGeomBounds,
}

func isGeomNamed(pass *Pass, e ast.Expr, name string) bool {
	path, n, ok := namedType(pass.TypeOf(e))
	return ok && path == geomPkg && n == name
}

func runGeomBounds(pass *Pass) {
	if pass.Pkg.Path == geomPkg || strings.HasPrefix(pass.Pkg.Path, geomPkg+"/") {
		return
	}
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				checkGeomLiteral(pass, n)
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					checkGeomFieldWrite(pass, lhs)
				}
			case *ast.IncDecStmt:
				checkGeomFieldWrite(pass, n.X)
			case *ast.BinaryExpr:
				checkMixedAxis(pass, n)
			}
			return true
		})
	}
}

// checkGeomLiteral flags non-empty Point/Box composite literals.
func checkGeomLiteral(pass *Pass, lit *ast.CompositeLit) {
	if len(lit.Elts) == 0 {
		return
	}
	if isGeomNamed(pass, lit, "Point") {
		pass.Reportf(lit.Pos(), "raw geom.Point literal: construct with geom.Pt")
	} else if isGeomNamed(pass, lit, "Box") {
		pass.Reportf(lit.Pos(), "raw geom.Box literal: construct with geom.NewBox, geom.BoxAt or geom.CellBox")
	}
}

// checkGeomFieldWrite flags assignments through a Point/Box field selector.
func checkGeomFieldWrite(pass *Pass, lhs ast.Expr) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return
	}
	if isGeomNamed(pass, sel.X, "Point") {
		pass.Reportf(lhs.Pos(), "write to geom.Point field outside geom: use geom.Pt, WithAxis or the arithmetic helpers")
	} else if isGeomNamed(pass, sel.X, "Box") {
		pass.Reportf(lhs.Pos(), "write to geom.Box field outside geom: rebuild via the box helpers (Expand, Union, Translate, ...)")
	}
}

// axisOf resolves e to the axis letter of a Point field selection (directly
// or through a Box's Min/Max corner, whose type is Point).
func axisOf(pass *Pass, e ast.Expr) (string, bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "X", "Y", "Z":
	default:
		return "", false
	}
	if !isGeomNamed(pass, sel.X, "Point") {
		return "", false
	}
	return sel.Sel.Name, true
}

// checkMixedAxis flags arithmetic and ordered comparison over two different
// axes.
func checkMixedAxis(pass *Pass, be *ast.BinaryExpr) {
	switch be.Op {
	case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.LSS, token.LEQ, token.GTR, token.GEQ:
	default:
		return
	}
	ax, okX := axisOf(pass, be.X)
	ay, okY := axisOf(pass, be.Y)
	if okX && okY && ax != ay {
		pass.Reportf(be.Pos(), "mixed-axis arithmetic (%s against %s): use geom's axis helpers", ax, ay)
	}
}
