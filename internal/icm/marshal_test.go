package icm

import (
	"bytes"
	"testing"

	"repro/internal/decompose"
	"repro/internal/qc"
)

func icmFor(t *testing.T, build func(c *qc.Circuit)) *Circuit {
	t.Helper()
	c := qc.New("m", 3)
	build(c)
	d, err := decompose.Decompose(c)
	if err != nil {
		t.Fatal(err)
	}
	ic, err := FromDecomposed(d.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	return ic
}

func TestAppendCanonicalDeterministic(t *testing.T) {
	build := func(c *qc.Circuit) {
		c.Append(qc.Toffoli(0, 1, 2), qc.CNOT(0, 1), qc.P(2))
	}
	a := icmFor(t, build).AppendCanonical(nil)
	for i := 0; i < 16; i++ {
		// Fresh conversion each round so TSL map iteration order gets a
		// chance to differ.
		b := icmFor(t, build).AppendCanonical(nil)
		if !bytes.Equal(a, b) {
			t.Fatalf("round %d: canonical bytes differ", i)
		}
	}
}

func TestAppendCanonicalDistinguishes(t *testing.T) {
	base := icmFor(t, func(c *qc.Circuit) { c.Append(qc.CNOT(0, 1), qc.CNOT(1, 2)) })
	variants := map[string]*Circuit{
		"swapped gates": icmFor(t, func(c *qc.Circuit) { c.Append(qc.CNOT(1, 2), qc.CNOT(0, 1)) }),
		"extra gate":    icmFor(t, func(c *qc.Circuit) { c.Append(qc.CNOT(0, 1), qc.CNOT(1, 2), qc.P(0)) }),
		"t gate":        icmFor(t, func(c *qc.Circuit) { c.Append(qc.CNOT(0, 1), qc.T(2)) }),
	}
	ref := base.AppendCanonical(nil)
	for name, v := range variants {
		if bytes.Equal(ref, v.AppendCanonical(nil)) {
			t.Errorf("%s: canonical bytes collide with base circuit", name)
		}
	}
	renamed := icmFor(t, func(c *qc.Circuit) { c.Append(qc.CNOT(0, 1), qc.CNOT(1, 2)) })
	renamed.Name = "other"
	if bytes.Equal(ref, renamed.AppendCanonical(nil)) {
		t.Error("renamed circuit: canonical bytes collide (name must be part of the address)")
	}
}

func TestAppendCanonicalExtends(t *testing.T) {
	ic := icmFor(t, func(c *qc.Circuit) { c.Append(qc.CNOT(0, 1)) })
	prefix := []byte("prefix")
	out := ic.AppendCanonical(append([]byte(nil), prefix...))
	if !bytes.HasPrefix(out, prefix) {
		t.Fatal("AppendCanonical did not preserve the prefix")
	}
	if !bytes.Equal(out[len(prefix):], ic.AppendCanonical(nil)) {
		t.Fatal("AppendCanonical output depends on the destination slice")
	}
}
