// Package tqec is the public API of the bridge-based TQEC circuit
// compressor: it reproduces the automated space-time-volume optimization
// flow of Tseng, Hsu, Lin and Chang (DAC'21 / TCAD), turning an arbitrary
// reversible or quantum circuit into a compacted 3D geometric description.
//
// The pipeline (Fig. 11 of the paper):
//
//	gate decomposition → ICM conversion → canonical geometric description
//	→ modularization → iterative bridging → super-module clustering
//	→ time-ordering-aware 2.5D placement (SA) → friend-net-aware routing.
//
// Compile runs the whole flow and returns every intermediate artifact plus
// the final dimensions, volume and per-stage runtime breakdown; the
// Options toggles reproduce the paper's ablations (bridging on/off for
// Table V, primal-group clustering on/off for Table III).
//
// # Fault tolerance
//
// CompileContext/CompileICMContext propagate a context.Context into every
// iterative stage (SA placement, A* negotiation, bridging), so deadlines
// and cancellation abort the pipeline within a bounded number of loop
// iterations. Failures come back as *StageError values tagging the stage
// that failed; errors.Is against the sentinel taxonomy (ErrCanceled,
// ErrUnroutable, ErrPlacementInvalid, ErrDegraded, ErrPanic) classifies
// the cause. Residual panics anywhere in a stage are recovered and
// converted into a StageError carrying the goroutine stack. Placement
// validation failures are retried with derived seeds and an escalated SA
// budget (Options.Retry); routing failures degrade gracefully into
// per-net diagnostics and an optional whole-world fallback route
// (Result.Degraded, Routing.FailedNets) instead of aborting compilation.
package tqec

import (
	"context"
	"fmt"
	"runtime/debug"
	"time"

	"repro/internal/bridge"
	"repro/internal/canonical"
	"repro/internal/cluster"
	"repro/internal/decompose"
	"repro/internal/distill"
	"repro/internal/faults"
	"repro/internal/icm"
	"repro/internal/metrics"
	"repro/internal/modular"
	"repro/internal/partition"
	"repro/internal/place"
	"repro/internal/qc"
	"repro/internal/route"
	"repro/internal/zx"
)

// Retry configures the staged retry-with-escalation policy applied when a
// placement fails structural validation (overlap or time-ordering).
type Retry struct {
	// MaxAttempts is the total number of placement attempts, including
	// the first. Values below 1 mean a single attempt (no retries).
	MaxAttempts int
	// Escalation multiplies the SA iteration budget on each retry
	// (attempt k runs with base·Escalation^k moves). Values at or below
	// 1 fall back to 2.
	Escalation float64
}

// Hooks lets callers observe or perturb the pipeline. The harness uses
// BeforeStage for fault injection (forced errors, panics, cancellation).
type Hooks struct {
	// BeforeStage runs before each stage; a non-nil return aborts the
	// pipeline with that error tagged by the stage.
	BeforeStage func(stage Stage) error
}

// Options configures a compilation.
type Options struct {
	// Bridging enables the iterative bridging stage (disable to
	// reproduce the paper's "w/o bridging" ablation, Table V).
	Bridging bool
	// ZX enables the ZX-calculus pre-compression pass on the decomposed
	// circuit before ICM conversion (disable for the paper-faithful
	// ablation). The pass is self-checking: it keeps the original
	// decomposition unless the rewritten one strictly lowers the
	// canonical space-time volume, so enabling it never worsens the
	// result (see internal/zx).
	ZX bool
	// PrimalGroups enables primal-group super-modules (disable to
	// reproduce the conference version [36], Table III).
	PrimalGroups bool
	// MaxGroupSize caps primal-group membership.
	MaxGroupSize int
	// NoBoxes skips distillation-box attachment: injections are treated
	// as raw state injections (used when compressing a distillation
	// circuit itself).
	NoBoxes bool
	// PrimalGap controls primal bridging, an extension beyond the paper:
	// penetrations of one line within this many canonical slots share a
	// module (fusing stretches of the primal loop across idle slots).
	// 0 or 1 reproduces the paper's dual-only bridging.
	PrimalGap int
	// StrictRouting turns residual routing failures (nets unroutable
	// even by the whole-world fallback) into an ErrUnroutable
	// compilation error instead of a degraded result.
	StrictRouting bool
	// Retry governs placement retry-with-escalation.
	Retry Retry
	// Hooks are observation/fault-injection callbacks.
	Hooks Hooks
	// Place configures the SA placement engine.
	Place place.Options
	// Route configures the dual-defect net router.
	Route route.Options
	// Partition configures the qubit-interaction-graph partitioner used
	// by CompilePartitionedContext: a positive MaxQubitsPerPart splits
	// the decomposed circuit into independently compiled sub-circuits
	// stitched into disjoint time slabs (see internal/partition).
	// CompileContext ignores it; CompilePartitionedContext with a
	// non-positive cap behaves exactly like CompileContext.
	Partition partition.Options
}

// DefaultOptions returns the journal-version flow with the paper's SA
// parameterization (2000 iterations).
func DefaultOptions() Options {
	return Options{
		Bridging:     true,
		ZX:           true,
		PrimalGroups: true,
		MaxGroupSize: 6,
		Retry:        Retry{MaxAttempts: 3, Escalation: 2},
		Place:        place.DefaultOptions(),
		Route:        route.DefaultOptions(),
	}
}

// FastOptions returns a reduced-effort configuration suitable for tests
// and quick exploration (a few thousand SA moves instead of the automatic
// 200-per-node budget).
func FastOptions() Options {
	o := DefaultOptions()
	o.Place.Iterations = 5000
	return o
}

// Result carries every artifact of a compilation.
type Result struct {
	// Input and intermediate representations.
	Circuit    *qc.Circuit
	Decomposed *qc.Circuit
	ICM        *icm.Circuit
	Canonical  *canonical.Description
	Netlist    *modular.Netlist
	Bridging   *bridge.Result
	Clustering *cluster.Clustering
	Placement  *place.Placement
	Routing    *route.Result

	// Dims are the final W/H/D extents of the compressed description
	// (module bodies, distillation boxes and routed nets).
	Dims metrics.Dims
	// Volume is the final space-time volume W×H×D. Distillation boxes
	// are integrated into the layout, so no separate box volume is added
	// (Table II's "Ours" column).
	Volume int
	// CanonicalVolume is the canonical-form volume of the same circuit.
	CanonicalVolume int
	// BoxVolume is the lower-bound distillation box volume (Vol_|Y⟩ +
	// Vol_|A⟩ of Table I), used when comparing against baselines that do
	// not integrate boxes.
	BoxVolume int
	// PlacementAttempts is how many SA placements ran (1 + retries).
	PlacementAttempts int
	// Degraded reports that routing fell back to degraded operation:
	// some nets needed the whole-world fallback router or remain
	// unrouted (see Routing.FailedNets for per-net diagnostics).
	Degraded bool
	// Breakdown is the per-stage wall-clock breakdown (Table VI), plus
	// fault-tolerance event counters (retries, fallbacks, panics).
	Breakdown *metrics.Breakdown
}

// CompressionRatio returns canonical volume over final volume (how many
// times smaller the compressed description is).
func (r *Result) CompressionRatio() float64 {
	if r.Volume == 0 {
		return 0
	}
	return float64(r.CanonicalVolume+r.BoxVolume) / float64(r.Volume)
}

// Compile runs the full compression flow on a reversible/quantum circuit.
func Compile(c *qc.Circuit, opts Options) (*Result, error) {
	//lint:ignore ctxflow sanctioned no-context entry point; CompileContext is the threaded variant
	return CompileContext(context.Background(), c, opts)
}

// CompileContext is Compile with cancellation: ctx deadlines and cancels
// abort the SA, negotiation and bridging loops within a bounded number of
// iterations, returning a StageError wrapping ErrCanceled.
func CompileContext(ctx context.Context, c *qc.Circuit, opts Options) (*Result, error) {
	res := &Result{Circuit: c, Breakdown: metrics.NewBreakdown()}
	err := runStage(res.Breakdown, metrics.StageOther, StagePreprocess, opts.Hooks, func() error {
		if err := faults.Canceled(ctx); err != nil {
			return err
		}
		d, err := decompose.Decompose(c)
		if err != nil {
			return err
		}
		res.Decomposed = d.Circuit
		return nil
	})
	if err != nil {
		return nil, err
	}
	if opts.ZX {
		err = runStage(res.Breakdown, metrics.StageZX, StageZXRewrite, opts.Hooks, func() error {
			if err := faults.Canceled(ctx); err != nil {
				return err
			}
			red, st, err := zx.Optimize(res.Decomposed)
			if err != nil {
				return err
			}
			res.Decomposed = red
			res.Breakdown.Count(metrics.CounterZXGatesBefore, st.GatesBefore)
			res.Breakdown.Count(metrics.CounterZXGatesAfter, st.GatesAfter)
			res.Breakdown.Count(metrics.CounterZXRewrites, st.Rewrites)
			if !st.Applied {
				res.Breakdown.Count(metrics.CounterZXFallbacks, 1)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	err = runStage(res.Breakdown, metrics.StageOther, StagePreprocess, opts.Hooks, func() error {
		var err error
		res.ICM, err = icm.FromDecomposed(res.Decomposed)
		return err
	})
	if err != nil {
		return nil, err
	}
	return compileFrom(ctx, res, opts)
}

// CompileICM runs the flow on a circuit already in ICM form (e.g. the
// state distillation circuits of package distill, the workloads Fowler &
// Devitt compressed by hand).
func CompileICM(ic *icm.Circuit, opts Options) (*Result, error) {
	//lint:ignore ctxflow sanctioned no-context entry point; CompileICMContext is the threaded variant
	return CompileICMContext(context.Background(), ic, opts)
}

// CompileICMContext is CompileICM with cancellation (see CompileContext).
func CompileICMContext(ctx context.Context, ic *icm.Circuit, opts Options) (*Result, error) {
	res := &Result{ICM: ic, Breakdown: metrics.NewBreakdown()}
	return compileFrom(ctx, res, opts)
}

// runStage executes one pipeline stage under the fault-containment guard:
// the Hooks.BeforeStage callback fires first, fn's wall-clock is charged
// to the breakdown stage mStage, any panic is recovered into a StageError
// wrapping ErrPanic with the stack attached, and plain errors are tagged
// with the stage and normalized for the cancellation sentinel.
func runStage(b *metrics.Breakdown, mStage string, stage Stage, hooks Hooks, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			b.Count(metrics.CounterRecoveredPanics, 1)
			err = &StageError{
				Stage: stage,
				Err:   fmt.Errorf("%w: %v", ErrPanic, r),
				Stack: debug.Stack(),
			}
		}
	}()
	if hooks.BeforeStage != nil {
		if herr := hooks.BeforeStage(stage); herr != nil {
			return stageError(stage, herr)
		}
	}
	var inner error
	b.Time(mStage, func() { inner = fn() })
	if inner != nil {
		return stageError(stage, inner)
	}
	return nil
}

// compileFrom continues the pipeline after res.ICM is set.
func compileFrom(ctx context.Context, res *Result, opts Options) (*Result, error) {
	// Canonical description and modularization (charged to "other" per
	// Table VI).
	err := runStage(res.Breakdown, metrics.StageOther, StagePreprocess, opts.Hooks, func() error {
		if err := faults.Canceled(ctx); err != nil {
			return err
		}
		var err error
		if res.Canonical, err = canonical.Build(res.ICM); err != nil {
			return err
		}
		gap := opts.PrimalGap
		if gap < 1 {
			gap = 1
		}
		res.Netlist, err = modular.BuildWithGap(res.Canonical, gap)
		return err
	})
	if err != nil {
		return nil, err
	}
	stats := res.ICM.Stats()
	res.CanonicalVolume = res.Canonical.Volume()
	res.BoxVolume = distill.BoxVolume(stats.NumY, stats.NumA)

	err = runStage(res.Breakdown, metrics.StageBridging, StageBridging, opts.Hooks, func() error {
		var err error
		res.Bridging, err = bridge.RunContext(ctx, res.Netlist, opts.Bridging)
		return err
	})
	if err != nil {
		return nil, err
	}

	err = runStage(res.Breakdown, metrics.StagePlacement, StagePlacement, opts.Hooks, func() error {
		cl, err := cluster.Build(res.Netlist, cluster.Options{
			PrimalGroups: opts.PrimalGroups,
			MaxGroupSize: opts.MaxGroupSize,
			NoBoxes:      opts.NoBoxes,
		})
		if err != nil {
			return err
		}
		res.Clustering = cl
		return res.placeWithRetry(ctx, cl, opts)
	})
	if err != nil {
		return nil, err
	}

	err = runStage(res.Breakdown, metrics.StageRouting, StageRouting, opts.Hooks, func() error {
		ropts := opts.Route
		if ropts.Clock == nil {
			// Inject a monotonic clock so the router can attribute time to
			// its sub-stages without reading the wall clock itself (the
			// route package is inside the detrand determinism scope).
			start := time.Now()
			ropts.Clock = func() time.Duration { return time.Since(start) }
		}
		var err error
		res.Routing, err = route.RunContext(ctx, res.Placement, ropts)
		if err != nil {
			return err
		}
		res.Degraded = res.Routing.Degraded
		if n := len(res.Routing.FallbackNets); n > 0 {
			res.Breakdown.Count(metrics.CounterFallbackNets, n)
		}
		if n := len(res.Routing.Failed); n > 0 {
			res.Breakdown.Count(metrics.CounterUnroutedNets, n)
			if opts.StrictRouting {
				return fmt.Errorf("%w: %d net(s) failed negotiation and fallback", faults.ErrUnroutable, n)
			}
		}
		if res.Degraded {
			res.Breakdown.Count(metrics.CounterDegradations, 1)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	b := res.Routing.Bounds
	res.Dims = metrics.Dims{W: b.Dy(), H: b.Dz(), D: b.Dx()}
	res.Volume = res.Dims.Volume()
	return res, nil
}

// placeWithRetry runs SA placement, re-validating the result and retrying
// with a derived seed and an escalated iteration budget when validation
// fails. Hard errors (cancellation, recovered restart panics) are not
// retried.
func (res *Result) placeWithRetry(ctx context.Context, cl *cluster.Clustering, opts Options) error {
	attempts := opts.Retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	esc := opts.Retry.Escalation
	if esc <= 1 {
		esc = 2
	}
	popts := opts.Place
	budget := popts.EffectiveIterations(len(cl.Supers))
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			// Derived seed + escalated budget: a fresh SA trajectory
			// with more moves, reproducible from the original seed.
			popts.Seed = opts.Place.Seed + 1000003*int64(attempt)
			budget = int(float64(budget) * esc)
			popts.Iterations = budget
			res.Breakdown.Count(metrics.CounterPlacementRetries, 1)
		}
		pl, err := place.RunContext(ctx, cl, res.Bridging.Nets, popts)
		if err != nil {
			return err
		}
		res.Placement = pl
		res.PlacementAttempts = attempt + 1
		if err := pl.CheckNoOverlap(); err != nil {
			lastErr = err
			continue
		}
		if err := pl.CheckTimeOrdering(); err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	return fmt.Errorf("%w after %d attempt(s): %w", faults.ErrPlacementInvalid, attempts, lastErr)
}

// CompileBenchmark generates one of the paper's RevLib benchmarks and
// compiles it.
func CompileBenchmark(name string, opts Options) (*Result, error) {
	spec, err := qc.BenchmarkByName(name)
	if err != nil {
		return nil, err
	}
	c, err := spec.Generate()
	if err != nil {
		return nil, err
	}
	return Compile(c, opts)
}

// Verify re-checks the result's structural guarantees: placement overlap
// freedom, time-ordering constraints, and routing legality. Degraded
// routing (fallback-routed or unrouted nets) fails verification with
// ErrDegraded/ErrUnroutable so a silently-degraded result cannot pass.
// It is meant for tests and examples; Compile's stages already maintain
// these invariants.
func (r *Result) Verify() error {
	if err := r.Netlist.Validate(); err != nil {
		return err
	}
	if err := r.Placement.CheckNoOverlap(); err != nil {
		return err
	}
	if err := r.Placement.CheckTimeOrdering(); err != nil {
		return err
	}
	return route.Verify(r.Placement, r.Routing)
}
