// Command tqecbench regenerates the paper's experimental tables and
// figure-shaped results, and produces/judges the repository's
// reproducible performance artifacts.
//
// Usage:
//
//	tqecbench [-table N | -fig name | -all] [-benchmarks a,b,c] [-full]
//	          [-iters N] [-seed S] [-no-ablations] [-timeout 10m]
//	tqecbench -bench-out BENCH_<name>.json [-bench-iters N] [-bench-kernels]
//	tqecbench -compare old.json new.json [-threshold 0.10] [-summary FILE]
//	tqecbench -compare-kernels-only old.json new.json [-threshold 0.5]
//
// Tables: 1 (benchmark statistics), 2 (space-time volumes vs canonical and
// [22]), 3 (conference-version ablation), 4 (dimensions), 5 (bridging
// ablation), 6 (runtime breakdown). Figures: "motivation" (Fig. 4/5),
// "boxes" (Fig. 6/7), "friendnet" (Fig. 19).
//
// -bench-out runs the benchmark suite -bench-iters times through the full
// pipeline, records per-stage wall time, allocation deltas and compression
// metrics, and writes a schema-versioned JSON artifact (see BENCHMARKS.md).
// -compare judges a new artifact against an old one and exits non-zero
// when any time metric regressed by more than -threshold; -summary
// additionally appends a markdown delta table (routing rows first) to the
// given file, which CI points at $GITHUB_STEP_SUMMARY.
// -compare-kernels-only judges only the isolated testing.Benchmark kernel
// ns/op numbers — the low-noise subset CI gates blockingly (the stage
// wall-clock comparison stays advisory via -compare-warn).
//
// The default benchmark set holds the two smallest circuits; -full runs
// all eight (the paper spends over an hour of workstation time there).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/bench"
	"repro/internal/harness"
	"repro/tqec"
)

func main() {
	table := flag.Int("table", 0, "regenerate one table (1-6)")
	fig := flag.String("fig", "", "regenerate one figure: motivation, boxes, friendnet")
	all := flag.Bool("all", false, "regenerate every table and figure")
	benchmarks := flag.String("benchmarks", "", "comma-separated benchmark names")
	full := flag.Bool("full", false, "run all eight paper benchmarks")
	iters := flag.Int("iters", 0, "SA move budget (0 = auto: 200 per node)")
	seed := flag.Int64("seed", 1, "random seed")
	noAblations := flag.Bool("no-ablations", false, "skip the no-bridging/conference runs")
	timeout := flag.Duration("timeout", 0, "abort each benchmark compilation after this long (0 = no limit)")
	benchOut := flag.String("bench-out", "", "write a BENCH_*.json performance artifact to this path and exit")
	benchIters := flag.Int("bench-iters", 3, "pipeline runs per circuit for -bench-out")
	benchKernels := flag.Bool("bench-kernels", false, "also measure the isolated place/route kernels for -bench-out")
	benchPartition := flag.Int("bench-partition", 0, "also measure whole vs partitioned compiles of a generated clustered circuit (4 rings of this many qubits) for -bench-out (0 = skip)")
	compare := flag.Bool("compare", false, "compare two BENCH_*.json artifacts (old new); exit non-zero on regression")
	compareWarn := flag.Bool("compare-warn", false, "with -compare, report regressions but exit zero (informational CI step)")
	compareKernelsOnly := flag.Bool("compare-kernels-only", false, "compare only the isolated kernel ns/op measurements (the blocking CI gate)")
	threshold := flag.Float64("threshold", bench.DefaultThreshold, "relative slowdown treated as a regression by -compare")
	summary := flag.String("summary", "", "with -compare, append a markdown delta table to this file (e.g. $GITHUB_STEP_SUMMARY)")
	flag.Parse()

	if *compare || *compareKernelsOnly {
		if err := runCompare(flag.Args(), *threshold, *compareWarn, *compareKernelsOnly, *summary); err != nil {
			fatal(err)
		}
		return
	}
	if *benchOut != "" {
		if err := runBench(*benchOut, *benchmarks, *full, *benchIters, *seed, *benchKernels, *benchPartition); err != nil {
			fatal(err)
		}
		return
	}

	if *table == 0 && *fig == "" && !*all {
		*all = true
	}

	cfg := harness.DefaultConfig()
	if *full {
		cfg = harness.FullConfig()
	}
	if *benchmarks != "" {
		cfg.Benchmarks = strings.Split(*benchmarks, ",")
	}
	cfg.PlaceIterations = *iters
	cfg.Seed = *seed
	cfg.Timeout = *timeout
	if *noAblations {
		cfg.Ablations = false
	}
	// Tables III and V need the ablation runs.
	if (*table == 3 || *table == 5) && !cfg.Ablations {
		fmt.Fprintln(os.Stderr, "tables 3 and 5 need ablations; ignoring -no-ablations")
		cfg.Ablations = true
	}

	out := os.Stdout
	if *fig != "" || *all {
		if err := figures(*fig, *all, *seed, cfg); err != nil {
			fatal(err)
		}
		if !*all && *table == 0 {
			return
		}
	}

	fmt.Fprintf(out, "Running %d benchmark(s): %s (ablations: %v)\n\n",
		len(cfg.Benchmarks), strings.Join(cfg.Benchmarks, ", "), cfg.Ablations)
	rows, err := harness.Run(cfg)
	if err != nil {
		fatal(err)
	}
	printed := false
	show := func(n int, f func() error) {
		if *all || *table == n {
			if printed {
				fmt.Fprintln(out)
			}
			if err := f(); err != nil {
				fatal(err)
			}
			printed = true
		}
	}
	show(1, func() error { return harness.Table1(out, rows) })
	show(2, func() error { return harness.Table2(out, rows) })
	show(3, func() error { return harness.Table3(out, rows) })
	show(4, func() error { return harness.Table4(out, rows) })
	show(5, func() error { return harness.Table5(out, rows) })
	show(6, func() error { return harness.Table6(out, rows) })
	if *all {
		fmt.Fprintln(out)
		if err := harness.Summary(out, rows); err != nil {
			fatal(err)
		}
	}
}

func figures(which string, all bool, seed int64, cfg harness.Config) error {
	out := os.Stdout
	if all || which == "motivation" {
		if err := harness.FigMotivation(out, seed); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if all || which == "boxes" {
		if err := harness.FigBoxes(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if all || which == "friendnet" {
		name := cfg.Benchmarks[0]
		if err := harness.FigFriendNet(out, name, seed); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	switch which {
	case "", "motivation", "boxes", "friendnet":
		return nil
	default:
		return fmt.Errorf("unknown figure %q", which)
	}
}

// runBench produces a BENCH_*.json artifact, reads it back and validates
// it so a malformed write can never land in the trajectory.
func runBench(out, benchmarks string, full bool, iters int, seed int64, kernels bool, partitionCap int) error {
	suite := harness.DefaultConfig().Benchmarks
	if full {
		suite = harness.FullConfig().Benchmarks
	}
	if benchmarks != "" {
		suite = strings.Split(benchmarks, ",")
	}
	name := strings.TrimSuffix(filepath.Base(out), ".json")
	name = strings.TrimPrefix(name, "BENCH_")
	fmt.Fprintf(os.Stderr, "benchmarking %d circuit(s) × %d iteration(s) (kernels: %v, partition cap: %d)...\n",
		len(suite), iters, kernels, partitionCap)
	f, err := bench.Run(bench.Options{
		Name:         name,
		Suite:        suite,
		Iterations:   iters,
		Seed:         seed,
		Kernels:      kernels,
		PartitionCap: partitionCap,
	})
	if err != nil {
		return err
	}
	if err := bench.WriteFile(out, f); err != nil {
		return err
	}
	if _, err := bench.ReadFile(out); err != nil {
		return fmt.Errorf("artifact failed round-trip validation: %w", err)
	}
	fmt.Printf("wrote %s: %d circuit(s), %d kernel(s), schema v%d\n",
		out, len(f.Circuits), len(f.Kernels), f.Schema)
	if p := f.Partitioned; p != nil {
		fmt.Printf("partitioned %s (%d qubits, cap %d): whole %.2fms vs split %.2fms (x%.2f), %d part(s), %d seam(s)\n",
			p.Circuit, p.Qubits, p.Cap, float64(p.Whole.MinNS)/1e6, float64(p.Split.MinNS)/1e6, p.Speedup, p.Parts, p.Seams)
	}
	return nil
}

// runCompare judges new against old and exits non-zero on regression
// unless warnOnly downgrades regressions to a printed warning —
// CI compares freshly measured numbers on shared runners against the
// committed workstation artifact, where absolute timings are advisory.
// kernelsOnly restricts the comparison to the testing.Benchmark kernel
// measurements, which are stable enough on shared runners to gate
// blockingly. A non-empty summaryPath additionally gets a markdown delta
// table appended (the Actions step-summary format).
func runCompare(args []string, threshold float64, warnOnly, kernelsOnly bool, summaryPath string) error {
	if len(args) != 2 {
		return fmt.Errorf("-compare needs exactly two arguments: old.json new.json")
	}
	old, err := bench.ReadFile(args[0])
	if err != nil {
		return err
	}
	cur, err := bench.ReadFile(args[1])
	if err != nil {
		return err
	}
	cmp := bench.Compare
	if kernelsOnly {
		cmp = bench.CompareKernels
	}
	rep, err := cmp(old, cur, threshold)
	if err != nil {
		return err
	}
	if summaryPath != "" {
		if err := writeSummary(summaryPath, args[0], args[1], rep); err != nil {
			return err
		}
	}
	for _, d := range rep.Deltas {
		mark := " "
		if d.Regression {
			mark = "!"
		}
		fmt.Printf("%s %-40s %12d -> %12d ns  (%+.1f%%)\n",
			mark, d.Metric, d.Old, d.New, (d.Ratio-1)*100)
	}
	for _, m := range rep.Missing {
		fmt.Printf("? missing in new artifact: %s\n", m)
	}
	if regs := rep.Regressions(); len(regs) > 0 {
		if warnOnly {
			fmt.Printf("warning: %d metric(s) regressed by more than %.0f%% (informational, not failing)\n",
				len(regs), rep.Threshold*100)
			return nil
		}
		return fmt.Errorf("%d metric(s) regressed by more than %.0f%%", len(regs), rep.Threshold*100)
	}
	fmt.Printf("no regressions beyond %.0f%% across %d metric(s)\n", rep.Threshold*100, len(rep.Deltas))
	return nil
}

// writeSummary appends a GitHub-flavored markdown table of the compared
// metrics to path, putting the routing rows (the stage the committed
// artifact shows dominating compile time) first so a routing regression
// is visible at the top of the step summary without expanding logs.
func writeSummary(path, oldName, newName string, rep *bench.Report) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	var b strings.Builder
	fmt.Fprintf(&b, "### Bench compare: `%s` vs `%s` (threshold %.0f%%)\n\n",
		filepath.Base(oldName), filepath.Base(newName), rep.Threshold*100)
	b.WriteString("| Metric | Old | New | Delta | |\n|---|---:|---:|---:|---|\n")
	row := func(d bench.Delta) {
		mark := ""
		if d.Regression {
			mark = "⚠️ regression"
		}
		fmt.Fprintf(&b, "| %s | %.2fms | %.2fms | %+.1f%% | %s |\n",
			d.Metric, float64(d.Old)/1e6, float64(d.New)/1e6, (d.Ratio-1)*100, mark)
	}
	for _, d := range rep.Deltas {
		if strings.Contains(d.Metric, "routing") {
			row(d)
		}
	}
	for _, d := range rep.Deltas {
		if !strings.Contains(d.Metric, "routing") {
			row(d)
		}
	}
	for _, m := range rep.Missing {
		fmt.Fprintf(&b, "| %s | — | missing | | |\n", m)
	}
	b.WriteString("\n")
	_, err = f.WriteString(b.String())
	return err
}

func fatal(err error) {
	if se, ok := tqec.AsStageError(err); ok {
		switch {
		case errors.Is(err, tqec.ErrCanceled):
			fmt.Fprintf(os.Stderr, "tqecbench: stage %s aborted (timed out?): %v\n", se.Stage, se.Err)
		case errors.Is(err, tqec.ErrPanic):
			fmt.Fprintf(os.Stderr, "tqecbench: stage %s crashed: %v\n%s", se.Stage, se.Err, se.Stack)
		default:
			fmt.Fprintf(os.Stderr, "tqecbench: stage %s failed: %v\n", se.Stage, se.Err)
		}
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "tqecbench:", err)
	os.Exit(1)
}
