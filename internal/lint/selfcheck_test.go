package lint

import "testing"

// TestSelfCheck runs the full analyzer registry over the repository's own
// packages and fails on any finding. This is the same gate `make lint`
// enforces, kept inside `go test ./...` so a violation cannot land even
// when the Makefile is bypassed.
func TestSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("self-check typechecks the whole module; skipped in -short mode")
	}
	if n := len(Analyzers()); n != 10 {
		t.Fatalf("analyzer registry has %d entries, want 10", n)
	}
	pkgs, err := LoadPackages("../..", "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) < 5 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	findings, stats := RunAnalyzersStats(pkgs, Analyzers())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(stats.Analyzers) != len(Analyzers()) {
		t.Errorf("stats cover %d analyzers, want %d", len(stats.Analyzers), len(Analyzers()))
	}
}
