package tqec

import (
	"testing"

	"repro/internal/qc"
)

func keyFor(t *testing.T, c *qc.Circuit, opts Options) string {
	t.Helper()
	k, err := CacheKey(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func testCircuit() *qc.Circuit {
	c := qc.New("key", 3)
	c.Append(qc.CNOT(0, 1), qc.Toffoli(0, 1, 2))
	return c
}

func TestCacheKeyStable(t *testing.T) {
	opts := DefaultOptions()
	a := keyFor(t, testCircuit(), opts)
	for i := 0; i < 8; i++ {
		if b := keyFor(t, testCircuit(), opts); b != a {
			t.Fatalf("round %d: key changed: %s vs %s", i, a, b)
		}
	}
	if len(a) != 64 {
		t.Fatalf("key %q is not a hex SHA-256", a)
	}
}

func TestCacheKeySensitivity(t *testing.T) {
	base := keyFor(t, testCircuit(), DefaultOptions())

	other := testCircuit()
	other.Append(qc.NOT(0))
	if keyFor(t, other, DefaultOptions()) == base {
		t.Error("different circuit, same key")
	}

	for name, mutate := range map[string]func(*Options){
		"seed":       func(o *Options) { o.Place.Seed++ },
		"iterations": func(o *Options) { o.Place.Iterations = 777 },
		"bridging":   func(o *Options) { o.Bridging = false },
		"strict":     func(o *Options) { o.StrictRouting = true },
		"chains":     func(o *Options) { o.Place.Chains = 3 },
	} {
		o := DefaultOptions()
		mutate(&o)
		if keyFor(t, testCircuit(), o) == base {
			t.Errorf("%s: option change did not change the key", name)
		}
	}
}

// TestCacheKeyCanonicalization checks that non-semantic differences hash
// identically: hooks, fault-injection callbacks, the Serial toggle, and
// out-of-range values that the pipeline clamps.
func TestCacheKeyCanonicalization(t *testing.T) {
	base := DefaultOptions()
	baseKey := keyFor(t, testCircuit(), base)

	hooked := base
	hooked.Hooks.BeforeStage = func(Stage) error { return nil }
	hooked.Route.FailNet = func(int) bool { return false }
	hooked.Route.Serial = true
	if keyFor(t, testCircuit(), hooked) != baseKey {
		t.Error("non-semantic fields changed the key")
	}

	clamped := base
	clamped.Retry.MaxAttempts = base.Retry.MaxAttempts
	clamped.PrimalGap = 0
	zeroGap := base
	zeroGap.PrimalGap = 1
	if keyFor(t, testCircuit(), clamped) != keyFor(t, testCircuit(), zeroGap) {
		t.Error("PrimalGap 0 and 1 should canonicalize identically")
	}

	r0 := base
	r0.Retry = Retry{}
	r1 := base
	r1.Retry = Retry{MaxAttempts: 1, Escalation: 2}
	if keyFor(t, testCircuit(), r0) != keyFor(t, testCircuit(), r1) {
		t.Error("zero Retry and its clamped form should canonicalize identically")
	}
}

func TestCacheKeyICMNil(t *testing.T) {
	if _, err := CacheKeyICM(nil, DefaultOptions()); err == nil {
		t.Fatal("CacheKeyICM(nil) succeeded")
	}
}

func TestCacheKeyInvalidCircuit(t *testing.T) {
	c := qc.New("bad", 1)
	c.Append(qc.CNOT(0, 5)) // target out of range
	if _, err := CacheKey(c, DefaultOptions()); err == nil {
		t.Fatal("CacheKey on an invalid circuit succeeded")
	}
}
