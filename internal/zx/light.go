package zx

import (
	"fmt"
	"sort"

	"repro/internal/qc"
)

// The light rewrite path: same-color spider fusion and Hopf cancellation
// applied to the circuit-shaped ZX diagram *before* it is normalized to
// graph-like form. Every spider keeps its qubit wire and its position in
// the original gate list, so the simplified diagram reads back by a plain
// index sort instead of the frontier/Gauss extraction — no Hadamard
// dummies, no re-synthesized CNOT layer. The rules it can apply are a
// strict subset of the full system (phase folding through CNOT controls
// and targets, CNOT pair cancellation via the Hopf law, identity
// removal), but what they save they save without extraction overhead,
// which on circuit-shaped inputs is usually the better trade. Optimize
// prices this path against the graph-like ones and keeps the cheapest.

// lnode is one spider on a qubit wire.
type lnode struct {
	kind  vkind // vZ (control/diagonal) or vX (target/antidiagonal)
	phase int   // π/4 units mod 8; X-spiders only ever hold even phases
	qubit int
	pos   int // original index of the node's earliest constituent gate
	prev  int // wire predecessor node id, -1 at the wire head
	next  int // wire successor node id, -1 at the wire tail
	live  bool
}

// ledge is one CNOT: a plain edge between a Z-spider (control wire) and
// an X-spider (target wire), remembering which gate it came from.
type ledge struct {
	z, x int // node ids
	idx  int // original gate index
	live bool
}

// ldiagram is the wire-structured diagram the light pass rewrites.
type ldiagram struct {
	nodes []lnode
	edges []ledge
	// byNode[v] lists edge ids incident to node v (stale entries are
	// filtered by the live flags).
	byNode [][]int
	heads  []int // first node id per wire, -1 for a bare wire
}

// buildLight translates a decomposed circuit into the wire-structured
// form. Unlike fromCircuit it performs no color change: X-spiders stay X.
func buildLight(c *qc.Circuit) (*ldiagram, error) {
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("zx: invalid circuit: %w", err)
	}
	n := c.NumQubits()
	d := &ldiagram{heads: make([]int, n)}
	tails := make([]int, n)
	for q := range d.heads {
		d.heads[q], tails[q] = -1, -1
	}
	app := func(q int, kind vkind, phase, pos int) int {
		id := len(d.nodes)
		d.nodes = append(d.nodes, lnode{
			kind: kind, phase: phase, qubit: q, pos: pos,
			prev: tails[q], next: -1, live: true,
		})
		d.byNode = append(d.byNode, nil)
		if tails[q] >= 0 {
			d.nodes[tails[q]].next = id
		} else {
			d.heads[q] = id
		}
		tails[q] = id
		return id
	}
	for i, g := range c.Gates {
		if len(g.Controls) > 0 && g.Kind != qc.GateCNOT {
			return nil, fmt.Errorf("zx: gate %d (%v): controlled gates other than CNOT must be decomposed first", i, g.Kind)
		}
		switch {
		case g.Kind == qc.GateCNOT:
			z := app(g.Controls[0], vZ, 0, i)
			x := app(g.Targets[0], vX, 0, i)
			eid := len(d.edges)
			d.edges = append(d.edges, ledge{z: z, x: x, idx: i, live: true})
			d.byNode[z] = append(d.byNode[z], eid)
			d.byNode[x] = append(d.byNode[x], eid)
		case zPhaseUnits(g.Kind) >= 0:
			app(g.Targets[0], vZ, zPhaseUnits(g.Kind), i)
		case xPhaseUnits(g.Kind) >= 0:
			app(g.Targets[0], vX, xPhaseUnits(g.Kind), i)
		default:
			return nil, fmt.Errorf("zx: gate %d: kind %v is not in the decomposed gate set", i, g.Kind)
		}
	}
	return d, nil
}

// liveEdges returns v's live incident edge ids, compacting the index.
func (d *ldiagram) liveEdges(v int) []int {
	out := d.byNode[v][:0]
	for _, e := range d.byNode[v] {
		if d.edges[e].live {
			out = append(out, e)
		}
	}
	d.byNode[v] = out
	return out
}

// fuseWire merges wire-adjacent same-color spiders (phases add, CNOT
// edges transfer) and cancels the parallel edge pairs fusion creates —
// two plain edges between a Z- and an X-spider vanish by the Hopf law,
// which is exactly the CNOT·CNOT = I cancellation. Returns rewrites done.
func (d *ldiagram) fuseWire(u int) int {
	count := 0
	for {
		v := d.nodes[u].next
		if v < 0 || d.nodes[v].kind != d.nodes[u].kind {
			return count
		}
		d.nodes[u].phase = (d.nodes[u].phase + d.nodes[v].phase) & 7
		for _, e := range d.liveEdges(v) {
			if d.edges[e].z == v {
				d.edges[e].z = u
			} else {
				d.edges[e].x = u
			}
			d.byNode[u] = append(d.byNode[u], e)
		}
		d.unlink(v)
		count++
		// Hopf: cancel duplicate edges to the same partner in pairs.
		partner := map[int]int{} // partner node -> last unmatched edge id
		for _, e := range d.liveEdges(u) {
			o := d.edges[e].z
			if o == u {
				o = d.edges[e].x
			}
			if prior, ok := partner[o]; ok {
				d.edges[prior].live = false
				d.edges[e].live = false
				delete(partner, o)
				count++
			} else {
				partner[o] = e
			}
		}
	}
}

// unlink removes node v from its wire, joining its neighbors.
func (d *ldiagram) unlink(v int) {
	p, n := d.nodes[v].prev, d.nodes[v].next
	if p >= 0 {
		d.nodes[p].next = n
	} else {
		d.heads[d.nodes[v].qubit] = n
	}
	if n >= 0 {
		d.nodes[n].prev = p
	}
	d.nodes[v].live = false
}

// simplifyLight runs fusion+Hopf and identity removal to a joint
// fixpoint. Dropping an identity makes its wire neighbors adjacent, which
// can enable another fusion, so the two sweeps alternate until quiet.
func (d *ldiagram) simplifyLight() int {
	rewrites := 0
	for {
		n := 0
		for q := range d.heads {
			for u := d.heads[q]; u >= 0; u = d.nodes[u].next {
				n += d.fuseWire(u)
			}
		}
		for v := range d.nodes {
			if d.nodes[v].live && d.nodes[v].phase == 0 && len(d.liveEdges(v)) == 0 {
				d.unlink(v)
				n++
			}
		}
		rewrites += n
		if n == 0 {
			return rewrites
		}
	}
}

// emit reads the simplified diagram back into a decomposed circuit. Every
// surviving CNOT edge keeps its original gate index and every phase run
// sits at its earliest constituent's index, so a stable index sort
// reproduces a valid ordering: the result is the original gate sequence
// minus the cancelled gates, with each folded phase at its run head
// (legal — a Z-phase commutes with the controls it fused through, an
// X-phase with the targets).
func (d *ldiagram) emit(orig *qc.Circuit) (*qc.Circuit, error) {
	type slot struct {
		idx   int
		gates []qc.Gate
	}
	var slots []slot
	for v := range d.nodes {
		nd := &d.nodes[v]
		if !nd.live || nd.phase == 0 {
			continue
		}
		var gs []qc.Gate
		if nd.kind == vZ {
			var err error
			gs, err = lowerZPhase(nd.qubit, nd.phase)
			if err != nil {
				return nil, err
			}
		} else {
			switch nd.phase & 7 {
			case 2:
				gs = []qc.Gate{qc.V(nd.qubit)}
			case 4:
				gs = []qc.Gate{qc.NOT(nd.qubit)}
			case 6:
				gs = []qc.Gate{vdag(nd.qubit)}
			default:
				return nil, fmt.Errorf("zx: odd X phase %d cannot appear on a wire spider", nd.phase)
			}
		}
		slots = append(slots, slot{idx: nd.pos, gates: gs})
	}
	for _, e := range d.edges {
		if e.live {
			slots = append(slots, slot{idx: e.idx, gates: []qc.Gate{
				qc.CNOT(d.nodes[e.z].qubit, d.nodes[e.x].qubit),
			}})
		}
	}
	sort.SliceStable(slots, func(i, j int) bool { return slots[i].idx < slots[j].idx })
	c := &qc.Circuit{
		Name:   orig.Name,
		Qubits: append([]string(nil), orig.Qubits...),
	}
	for _, s := range slots {
		c.Gates = append(c.Gates, s.gates...)
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("zx: light-pass circuit invalid: %w", err)
	}
	return c, nil
}

// reduceLight runs the wire-structured pass end to end.
func reduceLight(c *qc.Circuit) (*qc.Circuit, int, error) {
	d, err := buildLight(c)
	if err != nil {
		return nil, 0, err
	}
	rewrites := d.simplifyLight()
	out, err := d.emit(c)
	if err != nil {
		return nil, rewrites, err
	}
	return out, rewrites, nil
}
