// Package nppkg is the tqeclint golden fixture for the nopanic analyzer.
// It is typechecked under a library import path, so panic, log.Fatal* and
// os.Exit are all banned.
package nppkg

import (
	"fmt"
	"log"
	"os"
)

func boom(v int) error {
	if v < 0 {
		panic("negative") // want `call to panic`
	}
	if v == 0 {
		log.Fatal("zero") // want `call to log.Fatal in library code`
	}
	if v == 1 {
		log.Fatalf("one: %d", v) // want `call to log.Fatalf in library code`
	}
	if v == 2 {
		os.Exit(2) // want `call to os.Exit in library code`
	}
	return fmt.Errorf("v=%d", v)
}

func guarded(v int) {
	if v > 10 {
		//lint:ignore nopanic fixture: reviewed panic, impossible by construction
		panic("unreachable")
	}
}

// Fatal is a local method; its name must not trip the log.Fatal ban.
type reporter struct{}

func (reporter) Fatal(args ...any) {}

func local(r reporter) {
	r.Fatal("fine")
}
