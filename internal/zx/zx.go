// Package zx implements a ZX-calculus pre-compression pass over
// decomposed circuits: the CNOT+phase structure is translated into a
// graph-like ZX diagram, simplified by a terminating, deterministic
// rewrite system (spider fusion, identity removal, self-loop
// elimination, Hopf cancellation, local complementation and pivoting on
// the Clifford structure), and extracted back into a {CNOT, P, V, T}
// circuit from which the ICM is re-derived.
//
// The pass is sound by construction on the rewrite side (every rule is a
// ZX-calculus equality, applied only when its preconditions hold) and
// self-checking on the cost side: Optimize compares the canonical
// space-time volume of the rewritten circuit against the original and
// keeps the original unless the rewrite is a strict improvement, so the
// pipeline's compression is never made worse. Any extraction anomaly
// likewise falls back to the original circuit rather than failing the
// compilation.
package zx

import (
	"fmt"

	"repro/internal/canonical"
	"repro/internal/decompose"
	"repro/internal/icm"
	"repro/internal/qc"
)

// Stats reports what one Optimize call did.
type Stats struct {
	// Before and After are the gate-population counts of the input and of
	// whichever circuit Optimize returned.
	Before, After decompose.Stats
	// GatesBefore and GatesAfter are total gate counts.
	GatesBefore, GatesAfter int
	// CanonicalBefore and CanonicalAfter are the canonical space-time
	// volumes used for the keep/fall-back decision.
	CanonicalBefore, CanonicalAfter int
	// Rewrites is the number of diagram rewrites applied.
	Rewrites int
	// Applied reports whether the rewritten circuit replaced the input.
	Applied bool
	// FallbackReason is empty when Applied, and otherwise says why the
	// original circuit was kept.
	FallbackReason string
}

// reduce runs the full build → simplify → extract → lower chain with the
// complete rule set and returns the rewritten circuit unconditionally (no
// cost comparison). Optimize wraps it with the fall-back policy; tests
// call it directly so extraction bugs cannot hide behind the fall-back.
func reduce(c *qc.Circuit) (*qc.Circuit, int, error) {
	return reduceLevel(c, true)
}

// reduceLevel is reduce with the Clifford rules (local complementation,
// pivoting) made optional — see simplifyLevel for why both levels exist.
func reduceLevel(c *qc.Circuit, clifford bool) (*qc.Circuit, int, error) {
	d, err := fromCircuit(c)
	if err != nil {
		return nil, 0, err
	}
	rewrites, err := d.simplifyLevel(clifford)
	if err != nil {
		return nil, rewrites, err
	}
	gs, err := extract(d)
	if err != nil {
		return nil, rewrites, err
	}
	out, err := lower(c, gs)
	if err != nil {
		return nil, rewrites, err
	}
	return out, rewrites, nil
}

// canonicalVolume prices a decomposed circuit the way the downstream
// pipeline does: ICM conversion followed by the canonical layout.
func canonicalVolume(c *qc.Circuit) (int, error) {
	ic, err := icm.FromDecomposed(c)
	if err != nil {
		return 0, err
	}
	desc, err := canonical.Build(ic)
	if err != nil {
		return 0, err
	}
	return desc.Volume(), nil
}

// Optimize rewrites a decomposed circuit through the ZX pass and returns
// whichever of {original, rewritten} has the smaller canonical space-time
// volume, with ties kept on the original. The returned circuit is always
// valid input for icm.FromDecomposed. An error is returned only when the
// input itself is not a decomposed circuit; internal rewrite or
// extraction failures fall back to the original and are reported in
// Stats.FallbackReason.
func Optimize(c *qc.Circuit) (*qc.Circuit, Stats, error) {
	var st Stats
	before, err := decompose.Count(c)
	if err != nil {
		return nil, st, fmt.Errorf("zx: input is not a decomposed circuit: %w", err)
	}
	volBefore, err := canonicalVolume(c)
	if err != nil {
		return nil, st, fmt.Errorf("zx: input has no canonical layout: %w", err)
	}
	st.Before, st.After = before, before
	st.GatesBefore, st.GatesAfter = len(c.Gates), len(c.Gates)
	st.CanonicalBefore, st.CanonicalAfter = volBefore, volBefore

	// Three rewrite strategies compete: the wire-structured light pass
	// (phase folding + CNOT cancellation, no extraction overhead), the
	// full Clifford system (deepest rewrites, but its extraction
	// re-synthesizes the CNOT layer), and graph-like fusion without the
	// Clifford rules. Each is priced by canonical volume; the cheapest
	// wins, with ties broken toward the earlier strategy so the output is
	// a deterministic function of the input. The last failure is kept for
	// the all-failed fall-back message.
	strategies := []func(*qc.Circuit) (*qc.Circuit, int, error){
		reduceLight,
		func(c *qc.Circuit) (*qc.Circuit, int, error) { return reduceLevel(c, true) },
		func(c *qc.Circuit) (*qc.Circuit, int, error) { return reduceLevel(c, false) },
	}
	var red *qc.Circuit
	volAfter := 0
	fallback := ""
	for _, strategy := range strategies {
		cand, rewrites, err := strategy(c)
		if err != nil {
			fallback = err.Error()
			continue
		}
		vol, err := canonicalVolume(cand)
		if err != nil {
			fallback = fmt.Sprintf("rewritten circuit not priceable: %v", err)
			continue
		}
		if red == nil || vol < volAfter {
			red, volAfter = cand, vol
			st.Rewrites = rewrites
		}
	}
	if red == nil {
		st.FallbackReason = fallback
		return c, st, nil
	}
	if volAfter >= volBefore {
		st.FallbackReason = fmt.Sprintf("no improvement (canonical volume %d -> %d)", volBefore, volAfter)
		return c, st, nil
	}
	after, err := decompose.Count(red)
	if err != nil {
		st.FallbackReason = fmt.Sprintf("rewritten circuit left the gate set: %v", err)
		return c, st, nil
	}
	st.After = after
	st.GatesAfter = len(red.Gates)
	st.CanonicalAfter = volAfter
	st.Applied = true
	return red, st, nil
}
