# Build/verify entry points. `make ci` is the full gate: vet, the
# repo-specific tqeclint analyzers, build, race-enabled tests, and a
# replay of the committed fuzz corpora.

GO ?= go

.PHONY: all build vet lint test race fuzz-seeds bench ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Run the in-tree static analyzers (internal/lint) over the whole module.
# Exits non-zero on any finding; see DESIGN.md for the enforced invariants.
lint:
	$(GO) run ./cmd/tqeclint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Replay the committed fuzz seed corpora as plain regression tests.
fuzz-seeds:
	$(GO) test -run 'Fuzz' ./internal/qc/

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

ci: vet lint build race fuzz-seeds
