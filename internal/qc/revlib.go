package qc

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseReal parses a RevLib ".real" reversible circuit description.
//
// The subset supported covers the constructs used by the paper's
// benchmarks: the .version/.numvars/.variables/.inputs/.outputs/.constants/
// .garbage headers, the .begin/.end gate section, t<k> (multi-controlled
// Toffoli: t1 = NOT, t2 = CNOT, t3 = Toffoli), f<k> (multi-controlled
// Fredkin: f2 = SWAP, f3 = Fredkin) and the v/v+ controlled-sqrt-of-NOT
// gates (parsed as V on the target; RevLib writes them with one control,
// which we decompose later). Lines starting with '#' are comments.
func ParseReal(name string, r io.Reader) (*Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	c := &Circuit{Name: name}
	varIndex := map[string]int{}
	inBody := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		key := strings.ToLower(fields[0])
		switch {
		case key == ".version", key == ".inputs", key == ".outputs",
			key == ".constants", key == ".garbage", key == ".inputbus",
			key == ".outputbus", key == ".define", key == ".module":
			// Metadata we do not need for layout synthesis.
		case key == ".numvars":
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: malformed .numvars", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("line %d: bad .numvars %q", lineNo, fields[1])
			}
			if len(c.Qubits) == 0 {
				for i := 0; i < n; i++ {
					c.Qubits = append(c.Qubits, fmt.Sprintf("x%d", i))
					varIndex[fmt.Sprintf("x%d", i)] = i
				}
			}
		case key == ".variables":
			c.Qubits = c.Qubits[:0]
			varIndex = map[string]int{}
			for _, v := range fields[1:] {
				varIndex[v] = len(c.Qubits)
				c.Qubits = append(c.Qubits, v)
			}
		case key == ".begin":
			inBody = true
		case key == ".end":
			inBody = false
		case strings.HasPrefix(key, "."):
			// Unknown directive: tolerate, RevLib has many dialects.
		default:
			if !inBody {
				return nil, fmt.Errorf("line %d: gate %q outside .begin/.end", lineNo, line)
			}
			g, err := parseRealGate(fields, varIndex)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			c.Gates = append(c.Gates, g)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(c.Qubits) == 0 {
		return nil, fmt.Errorf("no variables declared")
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

func parseRealGate(fields []string, varIndex map[string]int) (Gate, error) {
	mnemonic := strings.ToLower(fields[0])
	operands := make([]int, 0, len(fields)-1)
	for _, v := range fields[1:] {
		idx, ok := varIndex[v]
		if !ok {
			return Gate{}, fmt.Errorf("unknown variable %q", v)
		}
		operands = append(operands, idx)
	}
	switch {
	case strings.HasPrefix(mnemonic, "t"):
		k, err := strconv.Atoi(mnemonic[1:])
		if err != nil || k < 1 {
			return Gate{}, fmt.Errorf("bad toffoli mnemonic %q", mnemonic)
		}
		if len(operands) != k {
			return Gate{}, fmt.Errorf("%s: want %d operands, got %d", mnemonic, k, len(operands))
		}
		ctrls, tgt := operands[:k-1], operands[k-1]
		switch k {
		case 1:
			return NOT(tgt), nil
		case 2:
			return CNOT(ctrls[0], tgt), nil
		case 3:
			return Toffoli(ctrls[0], ctrls[1], tgt), nil
		default:
			return MCT(ctrls, tgt), nil
		}
	case strings.HasPrefix(mnemonic, "f"):
		k, err := strconv.Atoi(mnemonic[1:])
		if err != nil || k < 2 {
			return Gate{}, fmt.Errorf("bad fredkin mnemonic %q", mnemonic)
		}
		if len(operands) != k {
			return Gate{}, fmt.Errorf("%s: want %d operands, got %d", mnemonic, k, len(operands))
		}
		switch k {
		case 2:
			return Swap(operands[0], operands[1]), nil
		case 3:
			return Fredkin(operands[0], operands[1], operands[2]), nil
		default:
			return Gate{}, fmt.Errorf("fredkin with %d controls unsupported", k-2)
		}
	case mnemonic == "v", mnemonic == "v+":
		// RevLib's v gates carry one control and one target; we record the
		// controlled form as a Gate with a control so decompose can expand
		// it. An uncontrolled v acts on a single target.
		kind := GateV
		if mnemonic == "v+" {
			kind = GateVdag
		}
		switch len(operands) {
		case 1:
			return Gate{Kind: kind, Targets: operands}, nil
		case 2:
			return Gate{Kind: kind, Controls: operands[:1], Targets: operands[1:]}, nil
		default:
			return Gate{}, fmt.Errorf("v gate with %d operands unsupported", len(operands))
		}
	default:
		return Gate{}, fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
}

// WriteReal writes the circuit in RevLib .real format. Only the reversible
// subset (NOT/CNOT/Toffoli/MCT/Fredkin/Swap) can be emitted; other kinds
// return an error.
func WriteReal(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".version 2.0\n.numvars %d\n.variables", len(c.Qubits))
	for _, q := range c.Qubits {
		fmt.Fprintf(bw, " %s", q)
	}
	fmt.Fprintf(bw, "\n.begin\n")
	for _, g := range c.Gates {
		switch g.Kind {
		case GateNOT, GateCNOT, GateToffoli, GateMCT:
			fmt.Fprintf(bw, "t%d", len(g.Controls)+1)
		case GateFredkin, GateSwap:
			fmt.Fprintf(bw, "f%d", len(g.Controls)+2)
		default:
			return fmt.Errorf("gate kind %v not representable in .real", g.Kind)
		}
		for _, q := range g.Qubits() {
			fmt.Fprintf(bw, " %s", c.Qubits[q])
		}
		fmt.Fprintln(bw)
	}
	fmt.Fprintf(bw, ".end\n")
	return bw.Flush()
}
