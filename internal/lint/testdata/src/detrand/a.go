// Package drpkg is the tqeclint golden fixture for the detrand analyzer.
// The golden test typechecks it under a path inside internal/qc, one of
// the seeded stages whose output must be reproducible.
package drpkg

import (
	"math/rand"
	"sort"
	"time"
)

func jitter() int64 {
	return time.Now().UnixNano() // want `time.Now in a seeded stage`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since in a seeded stage`
}

func draw() int {
	return rand.Intn(6) // want `rand.Intn draws from the global source`
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand.Shuffle draws from the global source`
}

// Constructing a seeded source is the sanctioned pattern.
func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(6)
}

func keys(m map[int]bool) []int {
	var out []int
	for k := range m { // want `slice "out" accumulates map-iteration order`
		out = append(out, k)
	}
	return out
}

func keysSorted(m map[int]bool) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// A slice rebuilt inside the loop body does not leak iteration order.
func rows(m map[int][]int) int {
	total := 0
	for _, vs := range m {
		var row []int
		row = append(row, vs...)
		total += len(row)
	}
	return total
}

func stamp() time.Time {
	//lint:ignore detrand fixture: wall-clock timestamp for reporting only
	return time.Now()
}
