package server

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/ccache"
)

// JobStatus is the lifecycle state of an asynchronous compile job.
type JobStatus string

// Job lifecycle states.
const (
	// JobQueued means the job sits in the FIFO queue.
	JobQueued JobStatus = "queued"
	// JobRunning means a worker is compiling (or waiting on another
	// in-flight compilation of the same content address).
	JobRunning JobStatus = "running"
	// JobDone means the result payload is available.
	JobDone JobStatus = "done"
	// JobFailed means the compile failed; the structured error is
	// available.
	JobFailed JobStatus = "failed"
)

// JobView is the JSON body of GET /v1/jobs/{id}.
type JobView struct {
	// ID is the job's identifier.
	ID string `json:"id"`
	// Status is the current lifecycle state.
	Status JobStatus `json:"status"`
	// Key is the compilation's content address.
	Key string `json:"key"`
	// Cache reports how the result was obtained (hit/miss/shared), set
	// once the job finishes successfully.
	Cache string `json:"cache,omitempty"`
	// Result is the compile payload when Status is done.
	Result json.RawMessage `json:"result,omitempty"`
	// Error is the structured failure when Status is failed.
	Error *ErrorBody `json:"error,omitempty"`
}

// job tracks one async compilation.
type job struct {
	mu      sync.Mutex
	id      string
	key     string
	status  JobStatus
	outcome ccache.Outcome
	body    []byte
	apiErr  *apiError
}

// view snapshots the job for serving.
func (j *job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{ID: j.id, Status: j.status, Key: j.key}
	switch j.status {
	case JobDone:
		v.Cache = j.outcome.String()
		v.Result = json.RawMessage(j.body)
	case JobFailed:
		body := j.apiErr.Body
		v.Error = &body
	}
	return v
}

// setRunning marks the job as picked up by a worker.
func (j *job) setRunning() {
	j.mu.Lock()
	j.status = JobRunning
	j.mu.Unlock()
}

// finish records the job's terminal state.
func (j *job) finish(body []byte, outcome ccache.Outcome, aerr *apiError) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if aerr != nil {
		j.status = JobFailed
		j.apiErr = aerr
		return
	}
	j.status = JobDone
	j.outcome = outcome
	j.body = body
}

// terminal reports whether the job has finished (done or failed).
func (j *job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status == JobDone || j.status == JobFailed
}

// jobRegistry issues job IDs and retains finished jobs up to a cap, evicting
// the oldest finished jobs first so results stay pollable for a while
// without unbounded memory growth. Unfinished jobs are never evicted (their
// count is bounded by the queue depth plus the worker count).
type jobRegistry struct {
	mu     sync.Mutex
	prefix string
	seq    int64
	max    int
	jobs   map[string]*job
	order  []string // insertion order, for eviction scans
}

// newJobRegistry seeds the process-unique ID prefix from crypto/rand.
func newJobRegistry(maxJobs int) (*jobRegistry, error) {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return nil, fmt.Errorf("job id prefix: %w", err)
	}
	return &jobRegistry{
		prefix: hex.EncodeToString(b[:]),
		max:    maxJobs,
		jobs:   map[string]*job{},
	}, nil
}

// add registers a new queued job for the given content address.
func (r *jobRegistry) add(key string) *job {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	j := &job{id: fmt.Sprintf("%s-%d", r.prefix, r.seq), key: key, status: JobQueued}
	r.jobs[j.id] = j
	r.order = append(r.order, j.id)
	if len(r.jobs) > r.max {
		r.evictLocked()
	}
	return j
}

// evictLocked removes the oldest finished job, if any. Callers hold r.mu.
func (r *jobRegistry) evictLocked() {
	for i, id := range r.order {
		j, ok := r.jobs[id]
		if ok && !j.terminal() {
			continue
		}
		if ok {
			delete(r.jobs, id)
		}
		r.order = append(r.order[:i], r.order[i+1:]...)
		return
	}
}

// get looks a job up by ID.
func (r *jobRegistry) get(id string) (*job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

// counts tallies jobs by lifecycle state.
func (r *jobRegistry) counts() (queued, running, done, failed int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, j := range r.jobs {
		j.mu.Lock()
		st := j.status
		j.mu.Unlock()
		switch st {
		case JobQueued:
			queued++
		case JobRunning:
			running++
		case JobDone:
			done++
		case JobFailed:
			failed++
		}
	}
	return
}
