// Package gbpkg is the tqeclint golden fixture for the geombounds
// analyzer: geometry stays behind internal/geom's constructors and
// helpers.
package gbpkg

import "repro/internal/geom"

func build(x, y, z int) geom.Point {
	return geom.Point{X: x, Y: y, Z: z} // want `raw geom.Point literal`
}

func buildBox(p geom.Point) geom.Box {
	return geom.Box{Min: p, Max: p} // want `raw geom.Box literal`
}

// The zero literal is the canonical empty value and stays legal.
func zero() geom.Box {
	return geom.Box{}
}

func widen(b geom.Box) geom.Box {
	b.Max.X++ // want `write to geom.Point field`
	return b
}

func move(p geom.Point) geom.Point {
	p.Y = 3 // want `write to geom.Point field`
	return p
}

func reframe(b geom.Box, p geom.Point) geom.Box {
	b.Min = p // want `write to geom.Box field`
	return b
}

func skew(p, q geom.Point) int {
	return p.X + q.Y // want `mixed-axis arithmetic \(X against Y\)`
}

func compare(b geom.Box, p geom.Point) bool {
	return b.Min.Z < p.X // want `mixed-axis arithmetic \(Z against X\)`
}

// Same-axis math is legal raw.
func span(b geom.Box) int {
	return b.Max.X - b.Min.X
}

func legacy(x, y, z int) geom.Point {
	//lint:ignore geombounds fixture: raw literal retained for comparison
	return geom.Point{X: x, Y: y, Z: z}
}
