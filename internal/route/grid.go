package route

import (
	"repro/internal/geom"
)

// denseGridLimit bounds the cell count up to which world-wide per-cell
// state (static obstacles, net ownership, pin ownership, congestion
// history) is stored in flat arrays indexed by a region-local cell index.
// Larger worlds fall back to the original hash maps: a pathological
// bounding volume must not force a multi-hundred-megabyte allocation.
const denseGridLimit = 4 << 20

// denseSearchLimit bounds the search-region volume up to which one A*
// attempt uses pooled flat-array scratch state. Regions beyond it (only
// the whole-world fallback on extreme layouts) use the map-based search.
// A variable rather than a constant so tests can force the sparse path.
var denseSearchLimit = 4 << 20

// cellIndexer maps lattice cells of a bounding box to dense linear
// indices in a fixed x-major, then y, then z order.
type cellIndexer struct {
	box    geom.Box
	ny, nz int
}

// newCellIndexer builds an indexer over b.
func newCellIndexer(b geom.Box) cellIndexer {
	return cellIndexer{box: b, ny: b.Dy(), nz: b.Dz()}
}

// volume returns the number of indexable cells.
func (ci cellIndexer) volume() int { return ci.box.Volume() }

// index returns the linear index of p, which must lie inside the box.
func (ci cellIndexer) index(p geom.Point) int {
	return ((p.X-ci.box.Min.X)*ci.ny+(p.Y-ci.box.Min.Y))*ci.nz + (p.Z - ci.box.Min.Z)
}

// point is the inverse of index.
func (ci cellIndexer) point(i int) geom.Point {
	z := i % ci.nz
	i /= ci.nz
	y := i % ci.ny
	x := i / ci.ny
	return geom.Pt(ci.box.Min.X+x, ci.box.Min.Y+y, ci.box.Min.Z+z)
}

// denseCell packs every per-cell fact into one struct so the A* inner
// loop's cellState probe touches a single cache line instead of four
// parallel arrays.
type denseCell struct {
	hist     float64
	net, pin int32
	static   bool
}

// grid holds the router's per-cell world state: static obstacles, net
// ownership, pin ownership and congestion history. Worlds up to
// denseGridLimit cells use one flat array of denseCell indexed by
// cellIndexer (the A* inner loop then runs without a single map
// operation); larger worlds degrade to the original hash maps
// transparently.
type grid struct {
	world geom.Box
	dense bool
	idx   cellIndexer

	cells []denseCell
	// blocked mirrors cells: 1 when the cell is static, net-owned or
	// pin-owned. The A* kernels test this one byte on the fast path and
	// fall back to the full cellState/passable check only for blocked
	// cells (the owner might be the searching net itself), keeping the
	// common free-cell probe inside a 24× denser array.
	blocked []uint8
	// histCells counts cells carrying a positive history charge. While it
	// is zero (the whole first pass) every step costs exactly 1 and the
	// kernels skip the per-neighbor history load altogether.
	histCells int

	staticM map[geom.Point]bool
	netAtM  map[geom.Point]int
	pinAtM  map[geom.Point]int
	histM   map[geom.Point]float64
}

// newGrid builds the per-cell state store for the given routable world.
func newGrid(world geom.Box) *grid {
	g := &grid{world: world}
	if v := world.Volume(); v > 0 && v <= denseGridLimit {
		g.dense = true
		g.idx = newCellIndexer(world)
		g.cells = make([]denseCell, v)
		g.blocked = make([]uint8, v)
		for i := range g.cells {
			g.cells[i].net = -1
			g.cells[i].pin = -1
		}
		return g
	}
	g.staticM = map[geom.Point]bool{}
	g.netAtM = map[geom.Point]int{}
	g.pinAtM = map[geom.Point]int{}
	g.histM = map[geom.Point]float64{}
	return g
}

// in reports whether p is indexable (inside the world). Out-of-world
// cells carry no state; callers only probe cells inside search regions,
// which are clamped to the world.
func (g *grid) in(p geom.Point) bool { return g.world.Contains(p) }

// setStatic marks p as a static obstacle cell.
func (g *grid) setStatic(p geom.Point) {
	if !g.in(p) {
		return
	}
	if g.dense {
		i := g.idx.index(p)
		g.cells[i].static = true
		g.blocked[i] = 1
		return
	}
	g.staticM[p] = true
}

// isStatic reports whether p is a static obstacle cell.
func (g *grid) isStatic(p geom.Point) bool {
	if !g.in(p) {
		return false
	}
	if g.dense {
		return g.cells[g.idx.index(p)].static
	}
	return g.staticM[p]
}

// setNet records net id as the owner of cell p (first owner wins is the
// caller's rule; setNet overwrites unconditionally).
func (g *grid) setNet(p geom.Point, id int) {
	if !g.in(p) {
		return
	}
	if g.dense {
		i := g.idx.index(p)
		g.cells[i].net = int32(id)
		g.blocked[i] = 1
		return
	}
	g.netAtM[p] = id
}

// clearNet removes net id's ownership of p if it is the recorded owner.
func (g *grid) clearNet(p geom.Point, id int) {
	if !g.in(p) {
		return
	}
	if g.dense {
		i := g.idx.index(p)
		if c := &g.cells[i]; c.net == int32(id) {
			c.net = -1
			if !c.static && c.pin < 0 {
				g.blocked[i] = 0
			}
		}
		return
	}
	if g.netAtM[p] == id {
		delete(g.netAtM, p)
	}
}

// netOwner returns the net occupying p, if any.
func (g *grid) netOwner(p geom.Point) (int, bool) {
	if !g.in(p) {
		return 0, false
	}
	if g.dense {
		if id := g.cells[g.idx.index(p)].net; id >= 0 {
			return int(id), true
		}
		return 0, false
	}
	id, ok := g.netAtM[p]
	return id, ok
}

// setPin records pin pid as owning cell p.
func (g *grid) setPin(p geom.Point, pid int) {
	if !g.in(p) {
		return
	}
	if g.dense {
		i := g.idx.index(p)
		g.cells[i].pin = int32(pid)
		g.blocked[i] = 1
		return
	}
	g.pinAtM[p] = pid
}

// pinOwner returns the pin homed at p, if any.
func (g *grid) pinOwner(p geom.Point) (int, bool) {
	if !g.in(p) {
		return 0, false
	}
	if g.dense {
		if pid := g.cells[g.idx.index(p)].pin; pid >= 0 {
			return int(pid), true
		}
		return 0, false
	}
	pid, ok := g.pinAtM[p]
	return pid, ok
}

// cellState returns every per-cell fact the A* inner loop needs — the
// owning net (-1 when free), the owning pin (-1 when none), the
// static-obstacle flag and the congestion history — with a single bounds
// check and index computation instead of one per probe.
func (g *grid) cellState(p geom.Point) (net, pin int32, static bool, hist float64) {
	if !g.in(p) {
		return -1, -1, false, 0
	}
	if g.dense {
		c := &g.cells[g.idx.index(p)]
		return c.net, c.pin, c.static, c.hist
	}
	net, pin = -1, -1
	if id, ok := g.netAtM[p]; ok {
		net = int32(id)
	}
	if pid, ok := g.pinAtM[p]; ok {
		pin = int32(pid)
	}
	return net, pin, g.staticM[p], g.histM[p]
}

// histAt returns the accumulated congestion history charge of p.
func (g *grid) histAt(p geom.Point) float64 {
	if !g.in(p) {
		return 0
	}
	if g.dense {
		return g.cells[g.idx.index(p)].hist
	}
	return g.histM[p]
}

// histAdd charges v onto p's congestion history.
func (g *grid) histAdd(p geom.Point, v float64) {
	if !g.in(p) {
		return
	}
	if g.dense {
		c := &g.cells[g.idx.index(p)]
		if c.hist == 0 && v > 0 {
			g.histCells++
		}
		c.hist += v
		return
	}
	if g.histM[p] == 0 && v > 0 {
		g.histCells++
	}
	g.histM[p] += v
}

// hasHist reports whether any cell carries history charge; while false,
// every step costs exactly 1 and the kernels skip history loads.
func (g *grid) hasHist() bool { return g.histCells > 0 }

// histStats returns the number of cells carrying history charge and the
// maximum charge. Both are order-independent aggregates, so the result is
// identical for the dense array walk and the map fallback regardless of
// iteration order.
func (g *grid) histStats() (cells int, maxCharge float64) {
	if g.dense {
		for i := range g.cells {
			if h := g.cells[i].hist; h > 0 {
				cells++
				if h > maxCharge {
					maxCharge = h
				}
			}
		}
		return cells, maxCharge
	}
	for _, h := range g.histM {
		if h > 0 {
			cells++
			if h > maxCharge {
				maxCharge = h
			}
		}
	}
	return cells, maxCharge
}

