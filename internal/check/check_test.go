package check

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/bridge"
	"repro/internal/geom"
	"repro/internal/qc"
	"repro/internal/route"
	"repro/tqec"
)

var (
	benchOnce sync.Once
	benchRes  *tqec.Result
	benchErr  error
)

// compiledBenchmark compiles the smallest paper benchmark once and shares
// the result across tests; callers must not mutate it (corruption tests
// work on copies).
func compiledBenchmark(t *testing.T) *tqec.Result {
	t.Helper()
	benchOnce.Do(func() {
		spec, err := qc.BenchmarkByName("4gt10-v1_81")
		if err != nil {
			benchErr = err
			return
		}
		c, err := spec.Generate()
		if err != nil {
			benchErr = err
			return
		}
		benchRes, benchErr = tqec.CompileContext(context.Background(), c, tqec.FastOptions())
	})
	if benchErr != nil {
		t.Fatal(benchErr)
	}
	return benchRes
}

func TestRunBenchmarkAllPasses(t *testing.T) {
	rep, err := RunBenchmark(context.Background(), "4gt10-v1_81", DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("report not clean:\n%s", rep)
	}
	want := []string{
		"bridge-reconstructable", "placement-legal", "routing-legal", "volume-accounting",
		"diff-chains", "diff-serial-routing", "diff-cache-bytes", "diff-bridging", "diff-zx",
		"diff-partition",
	}
	if len(rep.Passes) != len(want) {
		t.Fatalf("got %d passes, want %d:\n%s", len(rep.Passes), len(want), rep)
	}
	for i, name := range want {
		if rep.Passes[i].Name != name {
			t.Errorf("pass %d = %q, want %q", i, rep.Passes[i].Name, name)
		}
	}
	if !strings.Contains(rep.String(), "volume-accounting") {
		t.Error("report rendering lost a pass name")
	}
}

func TestInvariantsPassOnBenchmark(t *testing.T) {
	res := compiledBenchmark(t)
	for name, pass := range map[string]func(*tqec.Result) error{
		"bridge":    BridgeReconstructable,
		"placement": PlacementLegal,
		"routing":   RoutingLegal,
		"volume":    VolumeAccounting,
	} {
		if err := pass(res); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestBridgeReconstructableCatchesCorruption corrupts independent aspects
// of a genuine bridging result and checks each is detected.
func TestBridgeReconstructableCatchesCorruption(t *testing.T) {
	res := compiledBenchmark(t)

	t.Run("merge-counter", func(t *testing.T) {
		c := *res
		br := *res.Bridging
		br.Merges++
		c.Bridging = &br
		if BridgeReconstructable(&c) == nil {
			t.Fatal("inflated merge counter not detected")
		}
	})
	t.Run("repeated-pin", func(t *testing.T) {
		c := *res
		br := *res.Bridging
		br.Chains = append([][]*bridge.Chain(nil), res.Bridging.Chains...)
		lp := 0
		orig := br.Chains[lp][0]
		bad := &bridge.Chain{Pins: append(append([]int(nil), orig.Pins...), orig.Pins[0])}
		br.Chains[lp] = append([]*bridge.Chain{bad}, br.Chains[lp][1:]...)
		c.Bridging = &br
		if BridgeReconstructable(&c) == nil {
			t.Fatal("repeated pin in a chain not detected")
		}
	})
	t.Run("net-to-self", func(t *testing.T) {
		c := *res
		br := *res.Bridging
		br.Nets = append([]bridge.Net(nil), res.Bridging.Nets...)
		br.Nets[0].PinB = br.Nets[0].PinA
		c.Bridging = &br
		if BridgeReconstructable(&c) == nil {
			t.Fatal("self-loop net not detected")
		}
	})
}

func TestPlacementLegalCatchesCorruption(t *testing.T) {
	res := compiledBenchmark(t)
	if len(res.Placement.Pos) < 2 {
		t.Skip("needs at least two supers")
	}
	c := *res
	// Collapse two supers onto the same origin: overlap (same tier) or a
	// broken tier plane (different tiers) — either way illegal.
	pl2 := *res.Placement
	pl2.Pos = append(pl2.Pos[:0:0], res.Placement.Pos...)
	pl2.Pos[0] = pl2.Pos[1]
	c.Placement = &pl2
	if PlacementLegal(&c) == nil {
		t.Fatal("collapsed supers not detected")
	}
}

func TestRoutingLegalCatchesCorruption(t *testing.T) {
	res := compiledBenchmark(t)
	if len(res.Routing.Routes) == 0 {
		t.Skip("benchmark routed no nets")
	}
	t.Run("dropped-route", func(t *testing.T) {
		c := *res
		r := *res.Routing
		r.Routes = copyRoutes(res.Routing)
		for id := range r.Routes {
			delete(r.Routes, id)
			break
		}
		c.Routing = &r
		if RoutingLegal(&c) == nil {
			t.Fatal("dropped route not detected")
		}
	})
	t.Run("disconnected-path", func(t *testing.T) {
		c := *res
		r := *res.Routing
		r.Routes = copyRoutes(res.Routing)
		for id, p := range r.Routes {
			if len(p) >= 3 {
				// Excise an interior cell: the walk must notice the gap.
				q := append(append(p[:0:0], p[:1]...), p[2:]...)
				r.Routes[id] = q
				c.Routing = &r
				if RoutingLegal(&c) == nil {
					t.Fatal("disconnected path not detected")
				}
				return
			}
		}
		t.Skip("no path long enough to cut")
	})
}

func TestVolumeAccountingCatchesCorruption(t *testing.T) {
	res := compiledBenchmark(t)
	t.Run("volume", func(t *testing.T) {
		c := *res
		c.Volume++
		if VolumeAccounting(&c) == nil {
			t.Fatal("inflated volume not detected")
		}
	})
	t.Run("bounds", func(t *testing.T) {
		c := *res
		r := *res.Routing
		r.Bounds = res.Routing.Bounds.Expand(1)
		c.Routing = &r
		if VolumeAccounting(&c) == nil {
			t.Fatal("inflated bounds not detected")
		}
	})
	t.Run("box-volume", func(t *testing.T) {
		c := *res
		c.BoxVolume++
		if VolumeAccounting(&c) == nil {
			t.Fatal("wrong box volume not detected")
		}
	})
}

// copyRoutes clones a routing result's path map so tests can corrupt it
// without touching the shared benchmark result.
func copyRoutes(r *route.Result) map[int]geom.Path {
	out := make(map[int]geom.Path, len(r.Routes))
	for id, p := range r.Routes {
		out[id] = append(p[:0:0], p...)
	}
	return out
}

func TestDiffSerialRoutingDetectsDivergence(t *testing.T) {
	res := compiledBenchmark(t)
	// A FailNet hook that fails net 0 only on the serial run makes the two
	// modes genuinely diverge; the differential must notice.
	opts := tqec.FastOptions()
	var calls atomic.Int32
	opts.Route.Serial = false
	opts.Route.FailNet = func(id int) bool {
		return id == 0 && calls.Add(1) == 1
	}
	if err := DiffSerialRouting(context.Background(), res, opts); err == nil {
		t.Fatal("asymmetric fault injection not detected")
	}
}

func TestShrinkFindsMinimalCircuit(t *testing.T) {
	c := qc.New("shrink-me", 6)
	c.Append(qc.NOT(4), qc.CNOT(0, 3), qc.Toffoli(0, 1, 2), qc.NOT(5), qc.CNOT(1, 2), qc.NOT(0))
	failing := func(_ context.Context, cand *qc.Circuit) bool {
		return cand.CountKind(qc.GateToffoli) >= 1
	}
	got := Shrink(context.Background(), c, 0, failing)
	if !failing(context.Background(), got) {
		t.Fatal("shrunk circuit no longer fails")
	}
	if got.NumGates() != 1 {
		t.Fatalf("shrunk to %d gates, want 1 (%v)", got.NumGates(), got.Gates)
	}
	if got.NumQubits() != 3 {
		t.Fatalf("shrunk to %d qubits, want 3", got.NumQubits())
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("shrunk circuit invalid: %v", err)
	}
	if c.NumGates() != 6 || c.NumQubits() != 6 {
		t.Fatal("shrink mutated its input")
	}
}

func TestShrinkRespectsProbeBudget(t *testing.T) {
	c := qc.New("budget", 3)
	for i := 0; i < 12; i++ {
		c.Append(qc.NOT(i % 3))
	}
	probes := 0
	got := Shrink(context.Background(), c, 5, func(_ context.Context, cand *qc.Circuit) bool {
		probes++
		return true
	})
	if probes > 5 {
		t.Fatalf("ran %d probes, budget was 5", probes)
	}
	if got.NumGates() == 0 {
		t.Fatal("shrink removed every gate")
	}
}

// TestDiffBridgingSimsTinyCircuit checks the bridging differential's
// simulation branch actually runs on circuits small enough to simulate.
func TestDiffBridgingSimsTinyCircuit(t *testing.T) {
	c := qc.New("tiny", 3)
	c.Append(qc.CNOT(0, 1), qc.NOT(2), qc.CNOT(1, 2), qc.CNOT(0, 2))
	rep, err := Run(context.Background(), c, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatalf("report not clean:\n%s", rep)
	}
	for _, p := range rep.Passes {
		if p.Name == "diff-bridging" {
			if p.Detail != "sim verified" {
				t.Fatalf("diff-bridging detail = %q, want simulation to run", p.Detail)
			}
			return
		}
	}
	t.Fatal("diff-bridging pass missing")
}

// TestDiffChainsMatchesPrimary sanity-checks the placement differential
// runs standalone against the shared benchmark result.
func TestDiffChainsMatchesPrimary(t *testing.T) {
	res := compiledBenchmark(t)
	if err := DiffChains(context.Background(), res, tqec.FastOptions(), 2); err != nil {
		t.Fatal(err)
	}
}

// TestDiffPartitionSimsTinyCircuit checks the partition differential's
// simulation branch runs on circuits small enough to simulate and that
// the pass is clean on a genuine compile.
func TestDiffPartitionSimsTinyCircuit(t *testing.T) {
	c := qc.New("tiny-cut", 4)
	c.Append(qc.CNOT(0, 1), qc.CNOT(0, 1), qc.NOT(0), qc.CNOT(2, 3), qc.CNOT(2, 3), qc.NOT(3), qc.CNOT(1, 2))
	res, err := tqec.CompileContext(context.Background(), c, tqec.FastOptions())
	if err != nil {
		t.Fatal(err)
	}
	simmed, err := DiffPartition(context.Background(), res, tqec.FastOptions(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if !simmed {
		t.Fatal("4-qubit circuit should be within the simulation bound")
	}
}

// TestDiffPartitionOnBenchmark runs the partition differential against
// the shared paper benchmark (whose decomposed width exceeds the default
// simulation bound, so only the structural and determinism legs run).
func TestDiffPartitionOnBenchmark(t *testing.T) {
	res := compiledBenchmark(t)
	if _, err := DiffPartition(context.Background(), res, tqec.FastOptions(), 16); err != nil {
		t.Fatal(err)
	}
}

// TestSamePartitionedCatchesTampering corrupts independent aspects of a
// genuine partitioned result and checks the determinism comparator
// notices each.
func TestSamePartitionedCatchesTampering(t *testing.T) {
	c := qc.New("tamper", 4)
	c.Append(qc.CNOT(0, 1), qc.CNOT(0, 1), qc.NOT(0), qc.CNOT(2, 3), qc.CNOT(2, 3), qc.NOT(3), qc.CNOT(1, 2))
	opts := tqec.FastOptions()
	opts.Partition.MaxQubitsPerPart = 2
	opts.Partition.Seed = 1
	pres, err := tqec.CompilePartitionedContext(context.Background(), c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := samePartitioned(pres, pres); err != nil {
		t.Fatalf("result differs from itself: %v", err)
	}

	t.Run("slab", func(t *testing.T) {
		mod := *pres
		mod.Slabs = append(pres.Slabs[:0:0], pres.Slabs...)
		mod.Slabs[0] = mod.Slabs[0].Expand(1)
		if samePartitioned(pres, &mod) == nil {
			t.Fatal("moved slab not detected")
		}
	})
	t.Run("cut", func(t *testing.T) {
		mod := *pres
		p2 := *pres.Partition
		p2.QubitPart = append(pres.Partition.QubitPart[:0:0], pres.Partition.QubitPart...)
		p2.QubitPart[0] = p2.QubitPart[0] + 1
		mod.Partition = &p2
		if samePartitioned(pres, &mod) == nil {
			t.Fatal("reassigned qubit not detected")
		}
	})
	t.Run("volume", func(t *testing.T) {
		mod := *pres
		mod.Volume++
		if samePartitioned(pres, &mod) == nil {
			t.Fatal("inflated volume not detected")
		}
	})
	t.Run("seam-route", func(t *testing.T) {
		if pres.SeamRouting == nil || len(pres.SeamRouting.Routes) == 0 {
			t.Skip("no seam routes to corrupt")
		}
		mod := *pres
		sr := *pres.SeamRouting
		sr.Routes = copyRoutes(pres.SeamRouting)
		for id, p := range sr.Routes {
			if len(p) == 0 {
				continue
			}
			q := append(p[:0:0], p...)
			q[0] = q[0].Add(geom.Pt(0, 0, -1))
			sr.Routes[id] = q
			break
		}
		mod.SeamRouting = &sr
		if samePartitioned(pres, &mod) == nil {
			t.Fatal("shifted seam cell not detected")
		}
	})
}
