package tqec

import (
	"errors"
	"fmt"

	"repro/internal/faults"
)

// Stage names a pipeline stage in StageError and in the Hooks callbacks.
type Stage string

// The pipeline stages, in execution order.
const (
	StagePreprocess Stage = "preprocess" // decompose, ICM, canonical, modularization
	StageZXRewrite  Stage = "zx-rewrite" // ZX-calculus pre-compression of the decomposed circuit
	StageBridging   Stage = "bridging"
	StagePlacement  Stage = "placement"
	StageRouting    Stage = "routing"
	StagePartition  Stage = "partition" // qubit-interaction-graph cut (CompilePartitionedContext)
	StageStitch     Stage = "stitch"    // slab translation and seam routing (CompilePartitionedContext)
)

// Sentinel errors of the failure taxonomy. They are shared with the
// internal stage packages (via internal/faults), so errors.Is works on
// errors produced anywhere in the pipeline.
var (
	// ErrCanceled marks work aborted by context cancellation/deadline.
	ErrCanceled = faults.ErrCanceled
	// ErrUnroutable marks nets that exhausted every routing strategy.
	ErrUnroutable = faults.ErrUnroutable
	// ErrPlacementInvalid marks a placement failing structural
	// validation after all retry attempts.
	ErrPlacementInvalid = faults.ErrPlacementInvalid
	// ErrDegraded marks a result produced under graceful degradation.
	ErrDegraded = faults.ErrDegraded
	// ErrPanic marks a recovered panic converted into a StageError.
	ErrPanic = faults.ErrPanic
)

// StageError tags a pipeline failure with the stage that produced it. A
// panic recovered by the pipeline guard is converted into a StageError
// wrapping ErrPanic with the goroutine stack attached.
type StageError struct {
	// Stage is the pipeline stage that failed.
	Stage Stage
	// Err is the underlying cause.
	Err error
	// Stack holds the goroutine stack when Err stems from a recovered
	// panic; nil otherwise.
	Stack []byte
}

// Error implements error.
func (e *StageError) Error() string {
	return fmt.Sprintf("tqec: stage %s: %v", e.Stage, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *StageError) Unwrap() error { return e.Err }

// AsStageError extracts the StageError from an error chain, if any.
func AsStageError(err error) (*StageError, bool) {
	var se *StageError
	if errors.As(err, &se) {
		return se, true
	}
	return nil, false
}

// stageError wraps err (not already a StageError) with its stage tag,
// normalizing cancellation causes so errors.Is(err, ErrCanceled) holds for
// any context-induced abort.
func stageError(stage Stage, err error) error {
	var se *StageError
	if errors.As(err, &se) {
		return err
	}
	if faults.IsCancellation(err) && !errors.Is(err, ErrCanceled) {
		err = fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	return &StageError{Stage: stage, Err: err}
}
