package check

import (
	"fmt"
	"sort"

	"repro/internal/bridge"
	"repro/internal/distill"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/route"
	"repro/tqec"
)

// BridgeReconstructable verifies that the bridging result decomposes back
// into the original dual loops (the soundness condition of Algorithm 1):
// every chain is a simple pin sequence, chains of one loop are pairwise
// pin-disjoint, every live segment owned by a loop appears as an adjacent
// pin pair in exactly one of its chains, every removed segment is covered
// by a live representative segment of the loop's bridge structure whose
// pin pair the loop's chains traverse, structures partition the loops,
// and the generated nets close each loop's chains into a ring.
func BridgeReconstructable(res *tqec.Result) error {
	br := res.Bridging
	nl := br.NL
	if nl == nil {
		return fmt.Errorf("bridging result has no netlist")
	}
	if len(br.Chains) != len(nl.Loops) {
		return fmt.Errorf("chain sets: %d, loops: %d", len(br.Chains), len(nl.Loops))
	}

	structOf, err := structurePartition(br)
	if err != nil {
		return err
	}

	removed := 0
	for lp := range nl.Loops {
		adj, err := loopAdjacency(br, lp)
		if err != nil {
			return err
		}
		for k, segID := range nl.Loops[lp].Segments {
			if segID < 0 || segID >= len(nl.Segments) {
				return fmt.Errorf("loop %d: segment id %d out of range", lp, segID)
			}
			seg := nl.Segments[segID]
			pair := pairOf(seg.Pins[0], seg.Pins[1])
			if !seg.Removed {
				if adj[pair] != 1 {
					return fmt.Errorf("loop %d: live segment %d pin pair %v adjacent in %d chain position(s), want 1",
						lp, segID, pair, adj[pair])
				}
				continue
			}
			removed++
			// A removed segment must be replaced by the structure's live
			// representative segment at the same module, and the loop's
			// chains must traverse that representative's pin pair.
			sid, ok := structOf[lp]
			if !ok {
				return fmt.Errorf("loop %d: segment %d removed but the loop is in no bridge structure", lp, segID)
			}
			m := nl.Loops[lp].Modules[k]
			repID, ok := br.Structures[sid].RepSeg[m]
			if !ok {
				return fmt.Errorf("loop %d: removed segment %d at module %d has no representative in structure %d",
					lp, segID, m, sid)
			}
			rep := nl.Segments[repID]
			if rep.Removed {
				return fmt.Errorf("loop %d: representative segment %d at module %d is itself removed", lp, repID, m)
			}
			if adj[pairOf(rep.Pins[0], rep.Pins[1])] == 0 {
				return fmt.Errorf("loop %d: chains do not traverse representative segment %d of removed segment %d",
					lp, repID, segID)
			}
		}
	}
	if removed != br.RemovedSegments {
		return fmt.Errorf("removed-segment counter %d, but %d segments are flagged removed", br.RemovedSegments, removed)
	}
	return checkNets(br)
}

// structurePartition validates the bridge structures and returns the
// loop → structure index map. With bridging enabled every loop sits in
// exactly one structure; a disabled (ablation) run has no structures.
func structurePartition(br *bridge.Result) (map[int]int, error) {
	nl := br.NL
	structOf := map[int]int{}
	merges := 0
	for i, st := range br.Structures {
		if len(st.Loops) == 0 {
			return nil, fmt.Errorf("structure %d is empty", i)
		}
		merges += len(st.Loops) - 1
		for _, lp := range st.Loops {
			if lp < 0 || lp >= len(nl.Loops) {
				return nil, fmt.Errorf("structure %d: loop %d out of range", i, lp)
			}
			if prev, dup := structOf[lp]; dup {
				return nil, fmt.Errorf("loop %d in structures %d and %d", lp, prev, i)
			}
			structOf[lp] = i
		}
	}
	if len(br.Structures) > 0 {
		if len(structOf) != len(nl.Loops) {
			return nil, fmt.Errorf("structures cover %d of %d loops", len(structOf), len(nl.Loops))
		}
		if merges != br.Merges {
			return nil, fmt.Errorf("merge counter %d, but structures absorbed %d loops", br.Merges, merges)
		}
	}
	return structOf, nil
}

// loopAdjacency validates one loop's chains (non-empty, simple, pairwise
// pin-disjoint) and returns how often each unordered pin pair appears
// adjacently across them.
func loopAdjacency(br *bridge.Result, lp int) (map[[2]int]int, error) {
	adj := map[[2]int]int{}
	seen := map[int]bool{}
	for ci, c := range br.Chains[lp] {
		if len(c.Pins) == 0 {
			return nil, fmt.Errorf("loop %d: chain %d is empty", lp, ci)
		}
		for i, p := range c.Pins {
			if p < 0 || p >= len(br.NL.Pins) {
				return nil, fmt.Errorf("loop %d: chain %d pin %d out of range", lp, ci, p)
			}
			if seen[p] {
				return nil, fmt.Errorf("loop %d: pin %d appears twice across its chains", lp, p)
			}
			seen[p] = true
			if i > 0 {
				adj[pairOf(c.Pins[i-1], p)]++
			}
		}
	}
	return adj, nil
}

// checkNets validates the generated dual-defect nets: pin sanity, endpoint
// membership, and per-loop ring closure (consecutive chains in ring order
// either share the junction pin or are connected by a net — nets shared
// with another loop included).
func checkNets(br *bridge.Result) error {
	nl := br.NL
	netPairs := map[[2]int]bool{}
	for _, n := range br.Nets {
		if n.PinA == n.PinB {
			return fmt.Errorf("net %d connects pin %d to itself", n.ID, n.PinA)
		}
		for _, p := range []int{n.PinA, n.PinB} {
			if p < 0 || p >= len(nl.Pins) {
				return fmt.Errorf("net %d: pin %d out of range", n.ID, p)
			}
		}
		if n.Loop < 0 || n.Loop >= len(nl.Loops) {
			return fmt.Errorf("net %d: loop %d out of range", n.ID, n.Loop)
		}
		ends := map[int]bool{}
		for _, c := range br.Chains[n.Loop] {
			ends[c.Pins[0]] = true
			ends[c.Pins[len(c.Pins)-1]] = true
		}
		if !ends[n.PinA] || !ends[n.PinB] {
			return fmt.Errorf("net %d: pins %d/%d are not chain endpoints of loop %d", n.ID, n.PinA, n.PinB, n.Loop)
		}
		netPairs[pairOf(n.PinA, n.PinB)] = true
	}
	for lp := range nl.Loops {
		for _, gap := range ringGaps(br, lp) {
			if !netPairs[gap] {
				return fmt.Errorf("loop %d: ring gap %v closed by no net", lp, gap)
			}
		}
	}
	return nil
}

// ringGaps returns the unordered endpoint pairs a loop's ring closure
// requires a net for, mirroring the chain ordering of net generation:
// chains sorted by the ring position of their first own-module pin,
// connected tail to head cyclically, junctions sharing a pin excluded.
func ringGaps(br *bridge.Result, lp int) [][2]int {
	nl := br.NL
	chains := append([]*bridge.Chain(nil), br.Chains[lp]...)
	if len(chains) == 0 {
		return nil
	}
	modulePos := map[int]int{}
	for k, m := range nl.Loops[lp].Modules {
		modulePos[m] = k
	}
	ringIndex := func(c *bridge.Chain) int {
		best := 1 << 30
		for _, p := range c.Pins {
			m := nl.Segments[nl.Pins[p].Segment].Module
			if pos, ok := modulePos[m]; ok && pos < best {
				best = pos
			}
		}
		if best == 1<<30 {
			return 0
		}
		return best
	}
	sort.SliceStable(chains, func(i, j int) bool { return ringIndex(chains[i]) < ringIndex(chains[j]) })
	var gaps [][2]int
	for i := range chains {
		a := chains[i].Pins[len(chains[i].Pins)-1]
		b := chains[(i+1)%len(chains)].Pins[0]
		if len(chains) == 1 {
			a, b = chains[0].Pins[len(chains[0].Pins)-1], chains[0].Pins[0]
		}
		if a != b {
			gaps = append(gaps, pairOf(a, b))
		}
	}
	return gaps
}

// pairOf returns the unordered pin pair key.
func pairOf(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// PlacementLegal verifies the placement invariants: overlap freedom,
// time ordering, tier discipline (tier indices in range, one base plane
// per tier, planes ordered by tier index), and that every net pin
// resolves to an absolute cell.
func PlacementLegal(res *tqec.Result) error {
	p := res.Placement
	if err := p.CheckNoOverlap(); err != nil {
		return err
	}
	if err := p.CheckTimeOrdering(); err != nil {
		return err
	}
	if len(p.TierOf) != len(p.Clust.Supers) {
		return fmt.Errorf("tier assignments: %d, supers: %d", len(p.TierOf), len(p.Clust.Supers))
	}
	tierZ := map[int]int{}
	for s, t := range p.TierOf {
		if t < 0 || t >= p.Tiers {
			return fmt.Errorf("super %d on tier %d, want [0,%d)", s, t, p.Tiers)
		}
		z := p.Pos[s].Z
		if z < 1 {
			return fmt.Errorf("super %d base z=%d below the routing floor", s, z)
		}
		if prev, ok := tierZ[t]; ok && prev != z {
			return fmt.Errorf("tier %d has two base planes z=%d and z=%d", t, prev, z)
		}
		tierZ[t] = z
	}
	tiers := make([]int, 0, len(tierZ))
	for t := range tierZ {
		tiers = append(tiers, t)
	}
	sort.Ints(tiers)
	for i := 1; i < len(tiers); i++ {
		if tierZ[tiers[i-1]] >= tierZ[tiers[i]] {
			return fmt.Errorf("tier %d base z=%d not below tier %d base z=%d",
				tiers[i-1], tierZ[tiers[i-1]], tiers[i], tierZ[tiers[i]])
		}
	}
	for _, n := range res.Bridging.Nets {
		for _, pin := range []int{n.PinA, n.PinB} {
			if _, err := p.PinPos(pin); err != nil {
				return fmt.Errorf("net %d pin %d: %w", n.ID, pin, err)
			}
		}
	}
	return nil
}

// RoutingLegal re-walks the routing result: structural legality against
// the placement's static obstacles and the friend-net anchoring rules
// (route.Verify), net completeness (every generated net is either routed
// or diagnosed as failed, and nothing else is), and containment of every
// routed cell in the reported bounds.
func RoutingLegal(res *tqec.Result) error {
	if err := route.Verify(res.Placement, res.Routing); err != nil {
		return err
	}
	return routingConsistent(res)
}

// RoutingStructurallySound is RoutingLegal minus the strictness
// conditions: unrouted and fallback-routed nets are accepted, but
// whatever was routed must still be collision-free, anchored, complete
// and inside the reported bounds. It verifies results whose graceful
// degradation is expected (the unbridged ablation, hostile fuzz inputs).
func RoutingStructurallySound(res *tqec.Result) error {
	if err := route.VerifyStructure(res.Placement, res.Routing); err != nil {
		return err
	}
	return routingConsistent(res)
}

// routingConsistent checks net completeness (every generated net is
// either routed or diagnosed as failed, and nothing else is) and that
// every routed cell sits inside the reported bounds.
func routingConsistent(res *tqec.Result) error {
	r := res.Routing
	known := map[int]bool{}
	for _, n := range res.Bridging.Nets {
		known[n.ID] = true
		_, routed := r.Routes[n.ID]
		failed := false
		for _, id := range r.Failed {
			if id == n.ID {
				failed = true
			}
		}
		if routed == failed {
			return fmt.Errorf("net %d: routed=%v failed=%v, want exactly one", n.ID, routed, failed)
		}
	}
	for id := range r.Routes {
		if !known[id] {
			return fmt.Errorf("routed net %d is not a generated net", id)
		}
	}
	for id, path := range r.Routes {
		for _, c := range path {
			if !r.Bounds.Contains(c) {
				return fmt.Errorf("net %d cell %v outside reported bounds %v", id, c, r.Bounds)
			}
		}
	}
	return nil
}

// VolumeAccounting re-derives the reported compression metrics from the
// geometry: the routing bounds must be exactly the union of placed bodies,
// distillation boxes, routed cells and pin cells; the dimensions, final
// volume, canonical volume and box volume must match independent
// recomputation; and the compression ratio must follow from them.
func VolumeAccounting(res *tqec.Result) error {
	var want geom.Box
	want = want.Union(res.Placement.Bounds())
	ids := make([]int, 0, len(res.Routing.Routes))
	for id := range res.Routing.Routes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		want = want.Union(res.Routing.Routes[id].Bounds())
	}
	pins := make([]int, 0, len(res.Routing.PinCells))
	for pin := range res.Routing.PinCells {
		pins = append(pins, pin)
	}
	sort.Ints(pins)
	for _, pin := range pins {
		want = want.UnionPoint(res.Routing.PinCells[pin])
	}
	if res.Routing.Bounds != want {
		return fmt.Errorf("routing bounds %v, geometry spans %v", res.Routing.Bounds, want)
	}

	b := res.Routing.Bounds
	dims := metrics.Dims{W: b.Dy(), H: b.Dz(), D: b.Dx()}
	if res.Dims != dims {
		return fmt.Errorf("dims %+v, bounds imply %+v", res.Dims, dims)
	}
	if res.Volume != dims.Volume() {
		return fmt.Errorf("volume %d, dims imply %d", res.Volume, dims.Volume())
	}
	if res.Canonical != nil && res.CanonicalVolume != res.Canonical.Volume() {
		return fmt.Errorf("canonical volume %d, description has %d", res.CanonicalVolume, res.Canonical.Volume())
	}
	if res.ICM != nil {
		stats := res.ICM.Stats()
		if want := distill.BoxVolume(stats.NumY, stats.NumA); res.BoxVolume != want {
			return fmt.Errorf("box volume %d, ICM stats imply %d", res.BoxVolume, want)
		}
	}
	if res.Volume > 0 {
		want := float64(res.CanonicalVolume+res.BoxVolume) / float64(res.Volume)
		if got := res.CompressionRatio(); got != want {
			return fmt.Errorf("compression ratio %g, metrics imply %g", got, want)
		}
	}
	return nil
}
