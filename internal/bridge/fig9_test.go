package bridge

import (
	"testing"

	"repro/internal/modular"
)

// buildNetlist constructs a modular.Netlist directly from loop→modules
// penetration lists (bypassing the ICM/canonical pipeline), mirroring the
// paper's Fig. 9 presentation.
func buildNetlist(t *testing.T, nModules int, loops [][]int) *modular.Netlist {
	t.Helper()
	nl := &modular.Netlist{}
	for m := 0; m < nModules; m++ {
		nl.Modules = append(nl.Modules, modular.Module{ID: m, Line: m})
	}
	nl.ModulesOfLine = make([][]int, nModules)
	for m := 0; m < nModules; m++ {
		nl.ModulesOfLine[m] = []int{m}
	}
	for li, mods := range loops {
		loop := modular.Loop{ID: li}
		for _, m := range mods {
			segID := len(nl.Segments)
			p0 := len(nl.Pins)
			nl.Pins = append(nl.Pins,
				modular.Pin{ID: p0, Module: m, Segment: segID, End: 0},
				modular.Pin{ID: p0 + 1, Module: m, Segment: segID, End: 1},
			)
			nl.Segments = append(nl.Segments, modular.Segment{
				ID: segID, Loop: li, Module: m, Pins: [2]int{p0, p0 + 1},
			})
			nl.Modules[m].Segments = append(nl.Modules[m].Segments, segID)
			loop.Modules = append(loop.Modules, m)
			loop.Segments = append(loop.Segments, segID)
		}
		nl.Loops = append(nl.Loops, loop)
	}
	if err := nl.Validate(); err != nil {
		t.Fatalf("hand-built netlist invalid: %v", err)
	}
	return nl
}

// TestFig9Walkthrough replays the paper's Figs. 9 and 14-16: three dual
// loops over six modules — l1 penetrates {m1,m2,m4}, l2 penetrates
// {m2,m3}, l3 penetrates {m2,m4,m5} (0-indexed m0..m5; m2 is common to all
// three, m4 to l1 and l3). Iterative bridging merges all three into one
// bridge structure, and net generation emits eight nets from the initial
// nine (the paper's count).
func TestFig9Walkthrough(t *testing.T) {
	mk := func() *modular.Netlist {
		return buildNetlist(t, 6, [][]int{
			{0, 1, 3}, // l1: m1, m2, m4 of the paper
			{1, 2, 5}, // l2: m2, m3, m6
			{1, 3, 4}, // l3: m2, m4, m5
		})
	}
	// Unbridged, each loop contributes one net per penetrated module:
	// the paper's nine initial nets.
	unbridged, err := Run(mk(), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(unbridged.Nets) != 9 {
		t.Fatalf("initial nets: %d want 9", len(unbridged.Nets))
	}

	r, err := Run(mk(), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Structures) != 1 {
		t.Fatalf("structures: %d want 1 (all loops merge)", len(r.Structures))
	}
	if r.Merges != 2 {
		t.Fatalf("merges: %d want 2", r.Merges)
	}
	// The seed is l1 (first unprocessed); l3 shares two common modules
	// with it and l2 one, so the max-priority queue merges l3 first
	// (Fig. 15 before Fig. 16).
	st := r.Structures[0]
	if st.Loops[0] != 0 || st.Loops[1] != 2 || st.Loops[2] != 1 {
		t.Fatalf("merge order: %v want [0 2 1] (l3 before l2 by priority)", st.Loops)
	}
	// l3's segments through the common modules m2 and m4 are removed —
	// it shares l1's; l2's segment through m2 likewise.
	if r.RemovedSegments != 3 {
		t.Fatalf("removed segments: %d want 3", r.RemovedSegments)
	}
	// The paper's walkthrough generates eight nets; our cyclic chain
	// reconnection deduplicates one more shared connection and emits
	// seven — strictly fewer than the paper's count and far below the
	// initial nine.
	if len(r.Nets) >= 9 || len(r.Nets) < 6 {
		t.Fatalf("nets: %d want 6-8 (paper: 8 from 9)", len(r.Nets))
	}
	// Friend nets exist (shared chain endpoints).
	if len(r.FriendGroups()) == 0 {
		t.Fatal("expected friend nets after bridging")
	}
}

// TestFig10DoubleBridgeForbidden replays Fig. 10(e,f): two loops sharing
// two *non-adjacent* common module pairs must still be merged along a
// single continuous common segment — the path search connects all common
// modules in series, never as two separate bridges (which would induce an
// extra loop and corrupt the computation).
func TestFig10DoubleBridgeForbidden(t *testing.T) {
	// Two loops, both through m0, m1, m2, m3.
	nl := buildNetlist(t, 4, [][]int{
		{0, 1, 2, 3},
		{0, 1, 2, 3},
	})
	r, err := Run(nl, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Merges != 1 {
		t.Fatalf("merges: %d want 1", r.Merges)
	}
	// The merged loop must hold exactly ONE chain covering the common
	// segment (one bridge), not several disjoint shared chains.
	shared := r.Chains[1]
	if len(shared) != 1 {
		t.Fatalf("l2 chains after merge: %d want 1 single continuous common segment", len(shared))
	}
	// The single chain must pass through all four common modules' pins
	// in series: 8 pins.
	if got := len(shared[0].Pins); got != 8 {
		t.Fatalf("common segment pins: %d want 8", got)
	}
}

// TestReconstructabilityGuard builds a scenario where a candidate merge
// would close a chain of the structure into a premature cycle and checks
// that pathValid rejects the closing edge.
func TestReconstructabilityGuard(t *testing.T) {
	// Structure with a loop whose two chains are already joined once; an
	// edge joining the same (merged) chain again must be rejected.
	nl := buildNetlist(t, 2, [][]int{
		{0, 1},
		{0, 1},
	})
	r, err := Run(nl, true)
	if err != nil {
		t.Fatal(err)
	}
	// After merging l2 onto l1 through both modules, l1 has one chain.
	if len(r.Chains[0]) != 1 {
		t.Fatalf("l1 chains: %d", len(r.Chains[0]))
	}
	c := r.Chains[0][0]
	st := &r.Structures[0]
	if r.pathValid(st, []int{c.head(), c.tail()}) {
		t.Fatal("closing a chain onto itself must be invalid")
	}
}
