package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/faults"
	"repro/internal/partition"
	"repro/internal/qc"
	"repro/internal/resilience"
	"repro/tqec"
)

// CompileRequest is the JSON body of POST /v1/compile and POST /v1/jobs.
// Exactly one of Bench or Real selects the input circuit.
type CompileRequest struct {
	// Bench names one of the paper's RevLib benchmarks.
	Bench string `json:"bench,omitempty"`
	// Real is inline RevLib .real source text.
	Real string `json:"real,omitempty"`
	// Name labels a Real circuit (default "circuit"); ignored for Bench.
	Name string `json:"name,omitempty"`
	// Options tune the compilation.
	Options CompileOptions `json:"options"`
}

// CompileOptions is the request-facing subset of tqec.Options. Zero values
// mean the server's defaults (the journal-version flow).
type CompileOptions struct {
	// Seed drives all randomized stages; compilation is deterministic
	// for a fixed seed.
	Seed int64 `json:"seed"`
	// Iterations overrides the SA move budget (0 = auto).
	Iterations int `json:"iterations,omitempty"`
	// Chains sets the number of cooperating SA chains (0 = auto).
	Chains int `json:"chains,omitempty"`
	// NoBridging disables iterative bridging (the Table V ablation).
	NoBridging bool `json:"no_bridging,omitempty"`
	// NoZX disables the ZX-calculus pre-compression pass (the
	// paper-faithful ablation).
	NoZX bool `json:"no_zx,omitempty"`
	// Conference disables primal-group clustering (the conference
	// version [36]).
	Conference bool `json:"conference,omitempty"`
	// NoBoxes skips distillation-box attachment.
	NoBoxes bool `json:"no_boxes,omitempty"`
	// StrictRouting turns degraded routing into a compile error.
	StrictRouting bool `json:"strict_routing,omitempty"`
	// PartitionQubits caps the qubits per partition: a positive value
	// compiles through the partitioned pipeline (sub-circuits stitched
	// into time slabs, seam CNOTs routed across slab gaps) and responds
	// with the partitioned payload shape. 0 inherits the server's
	// -partition-qubits default; a negative value forces the ordinary
	// single-slab compile even when the server has a default.
	PartitionQubits int `json:"partition_qubits,omitempty"`
	// TimeoutMS bounds this compilation in milliseconds (0 = the
	// server's default; values above the server's maximum are clamped).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// FaultAttempts injects that many transient faults before the compile
	// is allowed to succeed — the chaos harness's hook for exercising the
	// retry path end to end. Rejected unless the server was configured
	// with AllowFaultInjection. It is deliberately excluded from the
	// content address: a faulted request retried to success must yield
	// byte-identical payloads to its unfaulted twin.
	FaultAttempts int `json:"fault_attempts,omitempty"`
}

// compileTask is a parsed, validated compile request ready for the worker
// pool: the circuit, the full pipeline options, the content address, the
// effective deadline, and the number of injected transient faults.
type compileTask struct {
	circuit       *qc.Circuit
	opts          tqec.Options
	key           string
	timeout       time.Duration
	faultAttempts int
}

// parseLimits bundles the server-side request validation knobs so the
// parser's signature survives growing new ones.
type parseLimits struct {
	// defaultTimeout applies when the request sets no timeout_ms.
	defaultTimeout time.Duration
	// maxTimeout clamps request-supplied timeouts.
	maxTimeout time.Duration
	// allowFaults admits the fault_attempts chaos hook.
	allowFaults bool
	// defaultPartition applies when the request leaves partition_qubits
	// at 0 (negative request values force partitioning off).
	defaultPartition int
}

// parseCompileRequest decodes and validates a request body into a
// compileTask, computing its content address. The returned *apiError is
// ready to serve on failure.
func parseCompileRequest(r io.Reader, lim parseLimits) (*compileTask, *apiError) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var req CompileRequest
	if err := dec.Decode(&req); err != nil {
		return nil, badRequest(fmt.Sprintf("invalid request body: %v", err))
	}
	// Reject trailing garbage so "two JSON documents" is not silently
	// half-accepted.
	if dec.More() {
		return nil, badRequest("invalid request body: trailing data after JSON object")
	}
	return buildCompileTask(&req, lim)
}

// buildCompileTask turns a decoded request into a runnable task.
func buildCompileTask(req *CompileRequest, lim parseLimits) (*compileTask, *apiError) {
	if req.Options.FaultAttempts < 0 {
		return nil, badRequest("fault_attempts must be non-negative")
	}
	if req.Options.FaultAttempts > 0 && !lim.allowFaults {
		return nil, badRequest("fault_attempts requires a server started with fault injection enabled")
	}
	circuit, aerr := loadCircuit(req)
	if aerr != nil {
		return nil, aerr
	}
	opts := requestOptions(req.Options)
	cap := req.Options.PartitionQubits
	if cap == 0 {
		cap = lim.defaultPartition
	}
	if cap > 0 {
		opts.Partition = partition.Options{MaxQubitsPerPart: cap, Seed: req.Options.Seed}
	}
	key, err := tqec.CacheKey(circuit, opts)
	if err != nil {
		return nil, badRequest(fmt.Sprintf("circuit rejected: %v", err))
	}
	timeout := lim.defaultTimeout
	if req.Options.TimeoutMS > 0 {
		timeout = time.Duration(req.Options.TimeoutMS) * time.Millisecond
	}
	if lim.maxTimeout > 0 && (timeout <= 0 || timeout > lim.maxTimeout) {
		timeout = lim.maxTimeout
	}
	return &compileTask{circuit: circuit, opts: opts, key: key, timeout: timeout,
		faultAttempts: req.Options.FaultAttempts}, nil
}

// loadCircuit resolves the request's circuit source.
func loadCircuit(req *CompileRequest) (*qc.Circuit, *apiError) {
	switch {
	case req.Bench != "" && req.Real != "":
		return nil, badRequest("set either bench or real, not both")
	case req.Bench != "":
		spec, err := qc.BenchmarkByName(req.Bench)
		if err != nil {
			return nil, &apiError{Status: 404, Body: ErrorBody{Message: fmt.Sprintf("unknown benchmark %q", req.Bench)}}
		}
		c, err := spec.Generate()
		if err != nil {
			return nil, badRequest(fmt.Sprintf("benchmark %q: %v", req.Bench, err))
		}
		return c, nil
	case req.Real != "":
		name := req.Name
		if name == "" {
			name = "circuit"
		}
		c, err := qc.ParseReal(name, strings.NewReader(req.Real))
		if err != nil {
			return nil, badRequest(fmt.Sprintf("real source rejected: %v", err))
		}
		if err := c.Validate(); err != nil {
			return nil, badRequest(fmt.Sprintf("real circuit invalid: %v", err))
		}
		return c, nil
	default:
		return nil, badRequest("select a circuit with bench or real")
	}
}

// requestOptions maps the wire options onto the full pipeline options,
// mirroring the tqecc CLI's flag semantics.
func requestOptions(o CompileOptions) tqec.Options {
	opts := tqec.DefaultOptions()
	opts.Place.Seed = o.Seed
	opts.Place.Iterations = o.Iterations
	opts.Place.Chains = o.Chains
	opts.Bridging = !o.NoBridging
	opts.ZX = !o.NoZX
	opts.PrimalGroups = !o.Conference
	opts.NoBoxes = o.NoBoxes
	opts.StrictRouting = o.StrictRouting
	if o.NoBridging {
		// Unbridged netlists keep every dual segment and net and need
		// more routing resource (the paper's Table V explanation).
		opts.Place.Margin = 2
		opts.Place.TierPitch = 4
	}
	return opts
}

// CompileResponse is the JSON body of a successful compile. Every field is
// deterministic for a (circuit, options) pair — wall-clock timings are
// deliberately excluded — so a cached payload is byte-identical to a fresh
// compilation's and responses can be content-addressed.
type CompileResponse struct {
	// Name is the compiled circuit's name.
	Name string `json:"name"`
	// Key is the compilation's content address (hex SHA-256).
	Key string `json:"key"`
	// Dims are the final W/H/D extents.
	Dims DimsBody `json:"dims"`
	// Volume is W×H×D.
	Volume int `json:"volume"`
	// CanonicalVolume is the canonical-form volume of the same circuit.
	CanonicalVolume int `json:"canonical_volume"`
	// BoxVolume is the lower-bound distillation box volume.
	BoxVolume int `json:"box_volume"`
	// CompressionRatio is (canonical + boxes) / final volume.
	CompressionRatio float64 `json:"compression_ratio"`
	// Degraded reports graceful routing degradation.
	Degraded bool `json:"degraded"`
	// PlacementAttempts counts SA placements (1 + retries).
	PlacementAttempts int `json:"placement_attempts"`
	// ICM summarizes the ICM conversion.
	ICM ICMBody `json:"icm"`
	// Netlist summarizes modularization.
	Netlist NetlistBody `json:"netlist"`
	// Bridging summarizes the iterative bridging stage.
	Bridging BridgingBody `json:"bridging"`
	// Placement summarizes the SA placement.
	Placement PlacementBody `json:"placement"`
	// Routing summarizes the net routing stage.
	Routing RoutingBody `json:"routing"`
	// Counters holds the non-zero fault-tolerance event counters.
	Counters map[string]int `json:"counters,omitempty"`
}

// DimsBody is a W/H/D extent triple.
type DimsBody struct {
	// W is the width.
	W int `json:"w"`
	// H is the height.
	H int `json:"h"`
	// D is the depth (time axis).
	D int `json:"d"`
}

// ICMBody summarizes an ICM circuit (Table I statistics).
type ICMBody struct {
	// Lines is the number of qubit lines.
	Lines int `json:"lines"`
	// CNOTs is the number of CNOT gates.
	CNOTs int `json:"cnots"`
	// NumY counts |Y⟩ state injections.
	NumY int `json:"num_y"`
	// NumA counts |A⟩ state injections.
	NumA int `json:"num_a"`
	// TGroups counts T-gate teleportation blocks.
	TGroups int `json:"t_groups"`
}

// NetlistBody summarizes the modularized geometric description.
type NetlistBody struct {
	// Modules is the number of dual-loop modules.
	Modules int `json:"modules"`
	// Loops is the number of dual loops.
	Loops int `json:"loops"`
}

// BridgingBody summarizes iterative bridging.
type BridgingBody struct {
	// Structures is the number of bridged structures.
	Structures int `json:"structures"`
	// Merges is the number of bridge merges performed.
	Merges int `json:"merges"`
	// Nets is the number of inter-structure nets to route.
	Nets int `json:"nets"`
}

// PlacementBody summarizes the SA placement.
type PlacementBody struct {
	// Nodes is the number of placed super-module nodes.
	Nodes int `json:"nodes"`
	// Tiers is the number of 2.5D tiers.
	Tiers int `json:"tiers"`
	// WireLength is the placement's half-perimeter wirelength.
	WireLength int `json:"wire_length"`
}

// RoutingBody summarizes net routing.
type RoutingBody struct {
	// Routed is the number of successfully routed nets.
	Routed int `json:"routed"`
	// FirstPass is how many nets routed in the first negotiation pass.
	FirstPass int `json:"first_pass"`
	// RippedUp counts rip-up-and-reroute events.
	RippedUp int `json:"ripped_up"`
	// WireCells is the total routed wire volume in cells.
	WireCells int `json:"wire_cells"`
	// Fallback counts nets rescued by the whole-world fallback router.
	Fallback int `json:"fallback"`
	// Failed counts nets left unrouted.
	Failed int `json:"failed"`
}

// EncodeResult renders a compilation result as the service's deterministic
// response payload. It is exported so tests (and clients embedding the
// pipeline) can compare a served body byte-for-byte against a direct
// tqec.CompileContext run.
func EncodeResult(key string, res *tqec.Result) ([]byte, error) {
	resp := CompileResponse{
		Name:              res.ICM.Name,
		Key:               key,
		Dims:              DimsBody{W: res.Dims.W, H: res.Dims.H, D: res.Dims.D},
		Volume:            res.Volume,
		CanonicalVolume:   res.CanonicalVolume,
		BoxVolume:         res.BoxVolume,
		CompressionRatio:  res.CompressionRatio(),
		Degraded:          res.Degraded,
		PlacementAttempts: res.PlacementAttempts,
		Netlist: NetlistBody{
			Modules: len(res.Netlist.Modules),
			Loops:   len(res.Netlist.Loops),
		},
		Bridging: BridgingBody{
			Structures: len(res.Bridging.Structures),
			Merges:     res.Bridging.Merges,
			Nets:       len(res.Bridging.Nets),
		},
		Placement: PlacementBody{
			Nodes:      res.Clustering.Stats().Nodes,
			Tiers:      res.Placement.Tiers,
			WireLength: res.Placement.WireLength,
		},
		Routing: RoutingBody{
			Routed:    len(res.Routing.Routes),
			FirstPass: res.Routing.FirstPassRouted,
			RippedUp:  res.Routing.RippedUp,
			WireCells: res.Routing.WireCells(),
			Fallback:  len(res.Routing.FallbackNets),
			Failed:    len(res.Routing.Failed),
		},
	}
	s := res.ICM.Stats()
	resp.ICM = ICMBody{Lines: s.Lines, CNOTs: s.CNOTs, NumY: s.NumY, NumA: s.NumA, TGroups: s.TGroups}
	for _, name := range res.Breakdown.Counters() {
		if n := res.Breakdown.Counter(name); n != 0 {
			if resp.Counters == nil {
				resp.Counters = map[string]int{}
			}
			resp.Counters[name] = n
		}
	}
	b, err := json.Marshal(resp)
	if err != nil {
		return nil, fmt.Errorf("encode result: %w", err)
	}
	return b, nil
}

// PartitionedResponse is the JSON body of a partitioned compile
// (partition_qubits > 0). Like CompileResponse it is deterministic for a
// (circuit, options) pair, so partitioned payloads are content-addressed
// and cached byte-for-byte identically.
type PartitionedResponse struct {
	// Name is the compiled circuit's name.
	Name string `json:"name"`
	// Key is the compilation's content address (hex SHA-256).
	Key string `json:"key"`
	// Dims are the combined W/H/D extents (slabs, seam routes and pins).
	Dims DimsBody `json:"dims"`
	// Volume is W×H×D of the combined extent.
	Volume int `json:"volume"`
	// CanonicalVolume sums the parts' canonical-form volumes.
	CanonicalVolume int `json:"canonical_volume"`
	// BoxVolume sums the parts' lower-bound distillation box volumes.
	BoxVolume int `json:"box_volume"`
	// CompressionRatio is (canonical + boxes) / final volume.
	CompressionRatio float64 `json:"compression_ratio"`
	// Degraded reports degraded routing in any part or the stitching.
	Degraded bool `json:"degraded"`
	// PlacementAttempts sums the parts' SA placements.
	PlacementAttempts int `json:"placement_attempts"`
	// Partition summarizes the qubit cut.
	Partition PartitionBody `json:"partition"`
	// Parts summarizes each compiled sub-circuit, in part order.
	Parts []PartBody `json:"parts"`
	// Seams summarizes the seam-net stitching routes.
	Seams RoutingBody `json:"seams"`
	// Counters holds the non-zero fault-tolerance event counters.
	Counters map[string]int `json:"counters,omitempty"`
}

// PartitionBody summarizes the qubit-interaction-graph cut.
type PartitionBody struct {
	// MaxQubitsPerPart is the effective per-part qubit cap.
	MaxQubitsPerPart int `json:"max_qubits_per_part"`
	// Parts is the number of sub-circuits.
	Parts int `json:"parts"`
	// Seams is the number of cut CNOTs.
	Seams int `json:"seams"`
	// Largest is the largest part's qubit count.
	Largest int `json:"largest"`
	// PassThrough marks a circuit that fit the cap and never split.
	PassThrough bool `json:"pass_through,omitempty"`
}

// PartBody summarizes one compiled sub-circuit.
type PartBody struct {
	// Qubits is the part's qubit count (source-circuit qubits).
	Qubits int `json:"qubits"`
	// Gates is the part's gate count (seam CNOTs belong to no part).
	Gates int `json:"gates"`
	// Volume is the part's standalone compiled volume (0 for a gateless
	// seam-only part).
	Volume int `json:"volume"`
	// Degraded reports the part compiled with degraded routing.
	Degraded bool `json:"degraded,omitempty"`
}

// EncodePartitionedResult renders a partitioned compilation as the
// service's deterministic response payload (the partitioned counterpart of
// EncodeResult). cap is the per-part qubit cap the compile ran with.
func EncodePartitionedResult(key, name string, cap int, res *tqec.PartitionedResult) ([]byte, error) {
	parts, seams, largest := res.Partition.Stats()
	resp := PartitionedResponse{
		Name:              name,
		Key:               key,
		Dims:              DimsBody{W: res.Dims.W, H: res.Dims.H, D: res.Dims.D},
		Volume:            res.Volume,
		CanonicalVolume:   res.CanonicalVolume,
		BoxVolume:         res.BoxVolume,
		CompressionRatio:  res.CompressionRatio(),
		Degraded:          res.Degraded,
		PlacementAttempts: res.PlacementAttempts,
		Partition: PartitionBody{
			MaxQubitsPerPart: cap,
			Parts:            parts,
			Seams:            seams,
			Largest:          largest,
			PassThrough:      res.PassThrough,
		},
	}
	for i, part := range res.Parts {
		pb := PartBody{
			Qubits: len(res.Partition.Parts[i].Qubits),
			Gates:  res.Partition.Parts[i].Circuit.NumGates(),
		}
		if part != nil {
			pb.Volume = part.Volume
			pb.Degraded = part.Degraded
		}
		resp.Parts = append(resp.Parts, pb)
	}
	if sr := res.SeamRouting; sr != nil {
		resp.Seams = RoutingBody{
			Routed:    len(sr.Routes),
			FirstPass: sr.FirstPassRouted,
			RippedUp:  sr.RippedUp,
			WireCells: sr.WireCells(),
			Fallback:  len(sr.FallbackNets),
			Failed:    len(sr.Failed),
		}
	}
	for _, cn := range res.Breakdown.Counters() {
		if n := res.Breakdown.Counter(cn); n != 0 {
			if resp.Counters == nil {
				resp.Counters = map[string]int{}
			}
			resp.Counters[cn] = n
		}
	}
	b, err := json.Marshal(resp)
	if err != nil {
		return nil, fmt.Errorf("encode partitioned result: %w", err)
	}
	return b, nil
}

// ErrorBody is the structured JSON error payload: the failed pipeline
// stage, the matching sentinel of the faults taxonomy, and whether the
// failure stems from a degraded compilation.
type ErrorBody struct {
	// Stage is the pipeline stage that failed, when known.
	Stage string `json:"stage,omitempty"`
	// Sentinel names the matched faults-taxonomy sentinel, when any.
	Sentinel string `json:"sentinel,omitempty"`
	// Message is the human-readable cause.
	Message string `json:"message"`
	// Degraded marks failures of degraded or unroutable compilations.
	Degraded bool `json:"degraded,omitempty"`
}

// ErrorResponse wraps ErrorBody the way error responses are framed on the
// wire: {"error": {...}}.
type ErrorResponse struct {
	// Error is the structured failure description.
	Error ErrorBody `json:"error"`
}

// apiError pairs an HTTP status with its wire body and an optional
// Retry-After hint for backpressure responses.
type apiError struct {
	Status     int
	Body       ErrorBody
	RetryAfter time.Duration
}

// badRequest is a 400 with a bare message.
func badRequest(msg string) *apiError {
	return &apiError{Status: 400, Body: ErrorBody{Message: msg}}
}

// Sentinels for queue overload and shutdown, mapped to 429/503 by
// compileError.
var (
	errOverloaded = errors.New("job queue full")
	errDraining   = errors.New("server draining")
)

// compileError maps a pipeline or queueing error onto the structured wire
// error: stage tag from StageError, sentinel from the faults taxonomy, and
// an HTTP status (429 overload, 503 draining, 504 deadline, 422
// unsatisfiable, 500 internal).
func compileError(err error) *apiError {
	ae := &apiError{Status: 500, Body: ErrorBody{Message: err.Error()}}
	if se, ok := tqec.AsStageError(err); ok {
		ae.Body.Stage = string(se.Stage)
	}
	switch {
	case errors.Is(err, errOverloaded):
		ae.Status = 429
	case errors.Is(err, errDraining):
		ae.Status = 503
	case errors.Is(err, resilience.ErrBreakerOpen):
		ae.Status = 503
		ae.Body.Sentinel = "breaker_open"
	case errors.Is(err, faults.ErrTransient):
		// A transient fault that survived the retry budget: the client
		// should try again shortly, not treat it as a hard failure.
		ae.Status = 503
		ae.Body.Sentinel = "transient"
	case faults.IsCancellation(err):
		ae.Status = 504
		ae.Body.Sentinel = "canceled"
	case errors.Is(err, faults.ErrUnroutable):
		ae.Status = 422
		ae.Body.Sentinel = "unroutable"
		ae.Body.Degraded = true
	case errors.Is(err, faults.ErrPlacementInvalid):
		ae.Status = 422
		ae.Body.Sentinel = "placement_invalid"
	case errors.Is(err, faults.ErrPanic):
		ae.Body.Sentinel = "panic"
	case errors.Is(err, faults.ErrInvariant):
		ae.Body.Sentinel = "invariant"
	case errors.Is(err, faults.ErrDegraded):
		ae.Status = 422
		ae.Body.Sentinel = "degraded"
		ae.Body.Degraded = true
	}
	return ae
}
