package viz

import (
	"fmt"
	"io"

	"repro/internal/geom"
)

// svg colors per cell kind.
var svgFill = map[CellKind]string{
	CellModule: "#b3452c", // primal modules (the paper draws primal red)
	CellBox:    "#666666", // distillation boxes
	CellNet:    "#2c6fb3", // dual-defect nets (dual drawn blue)
}

// WriteSVG renders the scene's z slices side by side as an SVG document
// (a publication-style alternative to the ASCII view of Fig. 20), with
// `scale` pixels per cell.
func (s *Scene) WriteSVG(w io.Writer, scale int) error {
	if scale < 1 {
		scale = 4
	}
	b := s.Bounds
	if b.Empty() {
		_, err := fmt.Fprint(w, `<svg xmlns="http://www.w3.org/2000/svg" width="1" height="1"/>`)
		return err
	}
	const gap = 2 // cells between slice panels
	panelW := b.Dx() + gap
	width := (panelW*b.Dz() - gap) * scale
	height := b.Dy() * scale
	if _, err := fmt.Fprintf(w,
		"<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" viewBox=\"0 0 %d %d\">\n",
		width, height+scale*2, width, height+scale*2); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "<rect width=\"100%%\" height=\"100%%\" fill=\"#ffffff\"/>\n"); err != nil {
		return err
	}
	for zi := 0; zi < b.Dz(); zi++ {
		z := b.Min.Z + zi
		x0 := zi * panelW * scale
		if _, err := fmt.Fprintf(w,
			"<text x=\"%d\" y=\"%d\" font-size=\"%d\" font-family=\"monospace\">z=%d</text>\n",
			x0, height+scale+scale/2, scale+scale/2, z); err != nil {
			return err
		}
		for y := b.Min.Y; y < b.Max.Y; y++ {
			for x := b.Min.X; x < b.Max.X; x++ {
				k := s.At(geom.Pt(x, y, z))
				if k == CellEmpty {
					continue
				}
				if _, err := fmt.Fprintf(w,
					"<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"%s\"/>\n",
					x0+(x-b.Min.X)*scale, (y-b.Min.Y)*scale, scale, scale, svgFill[k]); err != nil {
					return err
				}
			}
		}
	}
	_, err := fmt.Fprint(w, "</svg>\n")
	return err
}
