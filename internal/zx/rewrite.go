package zx

import "fmt"

// The rewrite engine. Every rule below strictly decreases the number of
// live spiders, so the whole simplification terminates after at most
// spiderCount rewrites; a hard cap backstops that argument in case a rule
// is ever changed. Rules scan vertices in ascending ID order and always
// pick the lowest-ID match, so the rewrite sequence — and therefore the
// extracted circuit — is a deterministic function of the input circuit.
//
// All rules are optional: whenever applying one would create a shape the
// engine cannot represent (a mixed plain/Hadamard parallel edge) or would
// break an extraction precondition (two qubit wires sharing a frontier
// spider), the match is skipped rather than forced.

// simplify runs the full rewrite system to a fixpoint: fusion, identity
// removal and scalar cleanup to saturation, then a single local
// complementation or pivot, repeated until nothing fires. It returns the
// number of rewrites applied.
func (d *diagram) simplify() (int, error) {
	return d.simplifyLevel(true)
}

// simplifyLevel is simplify with the Clifford structure rules (local
// complementation and pivoting) made optional. Without them the system
// only fuses, removes identities and drops scalars — a phase-folding-like
// pass that preserves the circuit's wire structure, so extraction tends
// to return a circuit shaped like the input. The Clifford rules remove
// more spiders (and more T-count via the phases they fold together) but
// leave a dense graph whose extraction re-synthesizes the CNOT layer,
// which can cost far more than the rewrites saved; Optimize prices both
// and keeps whichever is cheaper.
func (d *diagram) simplifyLevel(clifford bool) (int, error) {
	rewrites := 0
	limit := 10*d.spiderCount() + 1000
	for {
		for {
			n1, err := d.fuseRound()
			if err != nil {
				return rewrites, err
			}
			n2, err := d.idRound()
			if err != nil {
				return rewrites, err
			}
			n3 := d.scalarRound()
			rewrites += n1 + n2 + n3
			if rewrites > limit {
				return rewrites, fmt.Errorf("zx: rewrite limit %d exceeded (non-terminating rule?)", limit)
			}
			if n1+n2+n3 == 0 {
				break
			}
		}
		if !clifford {
			return rewrites, nil
		}
		ok, err := d.lcompOne()
		if err != nil {
			return rewrites, err
		}
		if !ok {
			ok, err = d.pivotOne()
			if err != nil {
				return rewrites, err
			}
		}
		if !ok {
			return rewrites, nil
		}
		rewrites++
		if rewrites > limit {
			return rewrites, fmt.Errorf("zx: rewrite limit %d exceeded (non-terminating rule?)", limit)
		}
	}
}

// bothTouch reports whether u and v each have a neighbor of boundary
// kind k. Fusing such a pair would let one spider serve as the frontier
// of two qubit wires, which the extractor forbids.
func (d *diagram) bothTouch(u, v int, k vkind) bool {
	return d.adjacentToKind(u, k) && d.adjacentToKind(v, k)
}

// canMergeEdges reports whether drop's edges can be transferred onto keep
// without creating a mixed parallel edge.
func (d *diagram) canMergeEdges(keep, drop int) bool {
	for m, ed := range d.adj[drop] {
		if m == keep {
			continue
		}
		if ek := d.edge(keep, m); ek != eNone && ek != ed {
			return false
		}
	}
	return true
}

// fuseRound fuses spiders connected by plain edges (phases add, edges
// merge under the Hopf/parallel laws) until no fusable pair remains, and
// returns the number of fusions performed.
func (d *diagram) fuseRound() (int, error) {
	count := 0
	for u := 0; u < len(d.kinds); u++ {
		if d.kinds[u] != vZ {
			continue
		}
		for again := true; again && d.kinds[u] == vZ; {
			again = false
			for _, m := range d.neighbors(u) {
				if d.kinds[m] != vZ || d.edge(u, m) != ePlain {
					continue
				}
				if d.bothTouch(u, m, vOut) || d.bothTouch(u, m, vIn) {
					continue
				}
				if !d.canMergeEdges(u, m) {
					continue
				}
				if err := d.fuse(u, m); err != nil {
					return count, err
				}
				count++
				again = true
				break
			}
		}
	}
	return count, nil
}

// fuse merges spider drop into spider keep across the plain edge between
// them. The caller has already checked canMergeEdges.
func (d *diagram) fuse(keep, drop int) error {
	d.addPhase(keep, d.phases[drop])
	ns := d.neighbors(drop)
	ks := make([]ekind, len(ns))
	for i, m := range ns {
		ks[i] = d.edge(drop, m)
	}
	d.removeVertex(drop)
	for i, m := range ns {
		if m == keep {
			continue
		}
		if err := d.connect(keep, m, ks[i]); err != nil {
			return err
		}
	}
	return nil
}

// idRound removes phase-0 degree-2 spiders, splicing their two edges into
// one whose type is the composition (Hadamard iff exactly one side was
// Hadamard). Matches are skipped when splicing would create a mixed
// parallel edge, give a qubit wire a second frontier spider, or join two
// boundaries of the same side.
func (d *diagram) idRound() (int, error) {
	count := 0
	for v := 0; v < len(d.kinds); v++ {
		if d.kinds[v] != vZ || d.phases[v] != 0 || d.degree(v) != 2 {
			continue
		}
		ns := d.neighbors(v)
		n1, n2 := ns[0], ns[1]
		t := ePlain
		if d.edge(v, n1) != d.edge(v, n2) {
			t = eHada
		}
		switch {
		case d.spider(n1) && d.spider(n2):
			if ex := d.edge(n1, n2); ex != eNone && ex != t {
				continue
			}
			d.removeVertex(v)
			if err := d.connect(n1, n2, t); err != nil {
				return count, err
			}
		case d.boundary(n1) && d.boundary(n2):
			if d.kinds[n1] == d.kinds[n2] {
				continue
			}
			d.removeVertex(v)
			d.setEdge(n1, n2, t)
		default:
			b, s := n1, n2
			if d.boundary(n2) {
				b, s = n2, n1
			}
			if d.adjacentToKind(s, d.kinds[b]) {
				continue
			}
			d.removeVertex(v)
			if err := d.connect(b, s, t); err != nil {
				return count, err
			}
		}
		count++
	}
	return count, nil
}

// scalarRound removes degree-0 spiders. A disconnected spider is a scalar
// factor of the diagram, and the pipeline compiles circuits up to global
// phase.
func (d *diagram) scalarRound() int {
	count := 0
	for v := 0; v < len(d.kinds); v++ {
		if d.spider(v) && d.degree(v) == 0 {
			d.removeVertex(v)
			count++
		}
	}
	return count
}

// allHadaSpiderNeighbors reports whether every edge at v is a Hadamard
// edge to a Z-spider — the "interior, graph-like" precondition shared by
// local complementation and pivoting.
func (d *diagram) allHadaSpiderNeighbors(v int) bool {
	for n, k := range d.adj[v] {
		if d.kinds[n] != vZ || k != eHada {
			return false
		}
	}
	return true
}

// lcompOne applies one local complementation: a ±π/2 interior spider v
// with all-Hadamard spider neighbors is deleted, its neighborhood is
// complemented, and each neighbor's phase decreases by v's phase. Skipped
// when any neighbor pair is joined by a plain edge (complementation only
// toggles Hadamard edges). Returns whether a rewrite fired.
func (d *diagram) lcompOne() (bool, error) {
	for v := 0; v < len(d.kinds); v++ {
		if d.kinds[v] != vZ {
			continue
		}
		if p := d.phases[v]; p != 2 && p != 6 {
			continue
		}
		if d.degree(v) == 0 || !d.allHadaSpiderNeighbors(v) {
			continue
		}
		ns := d.neighbors(v)
		clean := true
		for i := 0; i < len(ns) && clean; i++ {
			for j := i + 1; j < len(ns); j++ {
				if d.edge(ns[i], ns[j]) == ePlain {
					clean = false
					break
				}
			}
		}
		if !clean {
			continue
		}
		alpha := d.phases[v]
		d.removeVertex(v)
		for i := 0; i < len(ns); i++ {
			for j := i + 1; j < len(ns); j++ {
				d.toggleHada(ns[i], ns[j])
			}
			d.addPhase(ns[i], -alpha)
		}
		return true, nil
	}
	return false, nil
}

// pivotOne applies one pivot: two interior Pauli-phase (0 or π) spiders
// u, v joined by a Hadamard edge are deleted after complementing the
// three bipartite neighbor groups (exclusive-u, exclusive-v, common) and
// shifting phases — exclusive-u gains v's phase, exclusive-v gains u's,
// and common neighbors gain both plus π. Returns whether a rewrite fired.
func (d *diagram) pivotOne() (bool, error) {
	for u := 0; u < len(d.kinds); u++ {
		if d.kinds[u] != vZ {
			continue
		}
		if p := d.phases[u]; p != 0 && p != 4 {
			continue
		}
		for _, v := range d.neighbors(u) {
			if v < u || d.kinds[v] != vZ || d.edge(u, v) != eHada {
				continue
			}
			if p := d.phases[v]; p != 0 && p != 4 {
				continue
			}
			if !d.allHadaSpiderNeighbors(u) || !d.allHadaSpiderNeighbors(v) {
				continue
			}
			if d.pivotAt(u, v) {
				return true, nil
			}
		}
	}
	return false, nil
}

// pivotAt performs the pivot on the Hadamard edge u-v, or reports false
// when a plain edge inside the affected neighbor groups blocks it.
func (d *diagram) pivotAt(u, v int) bool {
	inU := map[int]bool{}
	for _, n := range d.neighbors(u) {
		if n != v {
			inU[n] = true
		}
	}
	inV := map[int]bool{}
	for _, n := range d.neighbors(v) {
		if n != u {
			inV[n] = true
		}
	}
	var a, b, c []int // exclusive-u, exclusive-v, common, each sorted
	for _, n := range d.neighbors(u) {
		if n == v {
			continue
		}
		if inV[n] {
			c = append(c, n)
		} else {
			a = append(a, n)
		}
	}
	for _, n := range d.neighbors(v) {
		if n != u && !inU[n] {
			b = append(b, n)
		}
	}
	groups := [3][2][]int{{a, b}, {a, c}, {b, c}}
	for _, g := range groups {
		for _, x := range g[0] {
			for _, y := range g[1] {
				if d.edge(x, y) == ePlain {
					return false
				}
			}
		}
	}
	pu, pv := d.phases[u], d.phases[v]
	d.removeVertex(u)
	d.removeVertex(v)
	for _, g := range groups {
		for _, x := range g[0] {
			for _, y := range g[1] {
				d.toggleHada(x, y)
			}
		}
	}
	for _, x := range a {
		d.addPhase(x, pv)
	}
	for _, x := range b {
		d.addPhase(x, pu)
	}
	for _, x := range c {
		d.addPhase(x, pu+pv+4)
	}
	return true
}
