package bench

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/bridge"
	"repro/internal/canonical"
	"repro/internal/cluster"
	"repro/internal/decompose"
	"repro/internal/faults"
	"repro/internal/icm"
	"repro/internal/modular"
	"repro/internal/place"
	"repro/internal/qc"
	"repro/internal/route"
	"repro/internal/zx"
)

// kernelBenchmark is the benchmark circuit the isolated kernel
// measurements run on: the smallest paper benchmark, so a kernel sweep
// stays in seconds while still exercising negotiation and tier packing.
const kernelBenchmark = "4gt10-v1_81"

// kernelPlaceIterations bounds the SA move budget of the placement
// kernel so testing.Benchmark's calibration loop converges quickly.
const kernelPlaceIterations = 2000

// runKernels measures the placement and routing kernels in isolation
// with testing.Benchmark. The pipeline prefix (decompose through
// clustering) is built once and shared; each kernel re-runs only its own
// stage.
func runKernels(ctx context.Context, opts Options) ([]Kernel, error) {
	if err := faults.Canceled(ctx); err != nil {
		return nil, err
	}
	spec, err := qc.BenchmarkByName(kernelBenchmark)
	if err != nil {
		return nil, err
	}
	c, err := spec.Generate()
	if err != nil {
		return nil, err
	}
	d, err := decompose.Decompose(c)
	if err != nil {
		return nil, err
	}

	var zxErr error
	zxRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := zx.Optimize(d.Circuit); err != nil {
				zxErr = err
				b.FailNow()
			}
		}
	})
	if zxErr != nil {
		return nil, fmt.Errorf("zx kernel: %w", zxErr)
	}

	ic, err := icm.FromDecomposed(d.Circuit)
	if err != nil {
		return nil, err
	}
	can, err := canonical.Build(ic)
	if err != nil {
		return nil, err
	}
	nl, err := modular.Build(can)
	if err != nil {
		return nil, err
	}
	br, err := bridge.RunContext(ctx, nl, true)
	if err != nil {
		return nil, err
	}
	cl, err := cluster.Build(nl, cluster.DefaultOptions())
	if err != nil {
		return nil, err
	}

	po := place.DefaultOptions()
	po.Seed = opts.Seed
	po.Iterations = kernelPlaceIterations
	var placeErr error
	placeRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := place.RunContext(ctx, cl, br.Nets, po); err != nil {
				placeErr = err
				b.FailNow()
			}
		}
	})
	if placeErr != nil {
		return nil, fmt.Errorf("place kernel: %w", placeErr)
	}

	pl, err := place.RunContext(ctx, cl, br.Nets, po)
	if err != nil {
		return nil, err
	}
	ro := route.DefaultOptions()
	var routeErr error
	routeRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := route.RunContext(ctx, pl, ro); err != nil {
				routeErr = err
				b.FailNow()
			}
		}
	})
	if routeErr != nil {
		return nil, fmt.Errorf("route kernel: %w", routeErr)
	}

	return []Kernel{
		{
			Name:        "zx/rewrite-extract",
			NSPerOp:     zxRes.NsPerOp(),
			AllocsPerOp: zxRes.AllocsPerOp(),
			BytesPerOp:  zxRes.AllocedBytesPerOp(),
		},
		{
			Name:        "place/sa-anneal",
			NSPerOp:     placeRes.NsPerOp(),
			AllocsPerOp: placeRes.AllocsPerOp(),
			BytesPerOp:  placeRes.AllocedBytesPerOp(),
		},
		{
			Name:        "route/negotiated-astar",
			NSPerOp:     routeRes.NsPerOp(),
			AllocsPerOp: routeRes.AllocsPerOp(),
			BytesPerOp:  routeRes.AllocedBytesPerOp(),
		},
	}, nil
}
