package metrics

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
				c.Add(2)
				c.Add(-5) // ignored: counters are monotone
			}
		}()
	}
	wg.Wait()
	if got, want := c.Value(), int64(goroutines*perG*3); got != want {
		t.Fatalf("Counter.Value() = %d, want %d", got, want)
	}
}

func TestGaugeConcurrent(t *testing.T) {
	var g Gauge
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 0 {
		t.Fatalf("Gauge.Value() = %d after balanced adds, want 0", got)
	}
	g.Set(42)
	if got := g.Value(); got != 42 {
		t.Fatalf("Gauge.Value() = %d after Set(42)", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	const goroutines, perG = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(time.Duration(g*perG+i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if want := int64(goroutines * perG); s.Count != want {
		t.Fatalf("Count = %d, want %d", s.Count, want)
	}
	var bucketSum int64
	for _, b := range s.Buckets {
		bucketSum += b.Count
	}
	if bucketSum != s.Count {
		t.Fatalf("bucket counts sum to %d, want %d", bucketSum, s.Count)
	}
	if s.MinNS != 0 {
		t.Fatalf("MinNS = %d, want 0", s.MinNS)
	}
	if want := int64((goroutines*perG - 1)) * int64(time.Microsecond); s.MaxNS != want {
		t.Fatalf("MaxNS = %d, want %d", s.MaxNS, want)
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Microsecond, 0},
		{time.Microsecond + 1, 1},
		{2 * time.Microsecond, 1},
		{time.Millisecond, 10},
		{time.Second, 20},
		{time.Hour, histBuckets}, // overflow
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestHistogramSnapshotEmpty(t *testing.T) {
	s := NewHistogram().Snapshot()
	if s.Count != 0 || s.SumNS != 0 || s.MinNS != 0 || s.MaxNS != 0 || len(s.Buckets) != 0 {
		t.Fatalf("empty snapshot not zero: %+v", s)
	}
}

// TestHistogramSnapshotJSONGolden pins the JSON wire shape of a histogram
// snapshot: /v1/metrics consumers depend on these exact field names.
func TestHistogramSnapshotJSONGolden(t *testing.T) {
	h := NewHistogram()
	h.Observe(500 * time.Nanosecond)
	h.Observe(3 * time.Microsecond)
	h.Observe(3 * time.Microsecond)
	b, err := json.Marshal(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	const want = `{"count":3,"sum_ns":6500,"min_ns":500,"max_ns":3000,` +
		`"buckets":[{"le_ns":1000,"count":1},{"le_ns":4000,"count":2}]}`
	if string(b) != want {
		t.Fatalf("snapshot JSON:\n got %s\nwant %s", b, want)
	}
}

func TestHistogramNegativeClamp(t *testing.T) {
	h := NewHistogram()
	h.Observe(-time.Second)
	s := h.Snapshot()
	if s.Count != 1 || s.SumNS != 0 || s.MinNS != 0 || s.MaxNS != 0 {
		t.Fatalf("negative observation not clamped: %+v", s)
	}
}

func TestHistogramMinSentinel(t *testing.T) {
	h := NewHistogram()
	if got := h.min.Load(); got != math.MaxInt64 {
		t.Fatalf("empty histogram min sentinel = %d", got)
	}
}
