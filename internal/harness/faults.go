package harness

import (
	"context"
	"fmt"

	"repro/tqec"
)

// FaultPlan injects failures into a compilation, exercising the pipeline's
// containment guarantees: panics become StageErrors with stacks, forced
// errors are stage-tagged, cancellation aborts iterative loops, and
// per-net routing failures trigger fallback routing or degradation.
// The zero value injects nothing.
type FaultPlan struct {
	// PanicStage panics just before the named stage runs ("" = never).
	// The panic itself is raised through Raise, which the fault-tolerance
	// tests install (non-test builds contain no panic site); with Raise
	// unset the plan degrades to a forced error at the same point.
	PanicStage tqec.Stage
	// Raise performs the PanicStage panic. Must not return normally.
	Raise func(msg string)
	// ErrorStage returns a forced error before the named stage.
	ErrorStage tqec.Stage
	// ErrorValue is the error ErrorStage injects (nil = a generic one).
	ErrorValue error
	// CancelStage cancels the compilation context just before the named
	// stage, so the stage itself observes a dead context.
	CancelStage tqec.Stage
	// FailNets lists net IDs the router must treat as unroutable during
	// normal negotiation (the whole-world fallback is exempt, so these
	// nets exercise the degradation path rather than hard failure).
	FailNets []int
}

// Install wires the plan into opts and returns the (possibly wrapped)
// context the compilation must run under.
func (f *FaultPlan) Install(ctx context.Context, opts *tqec.Options) context.Context {
	if f == nil {
		return ctx
	}
	var cancel context.CancelFunc
	if f.CancelStage != "" {
		ctx, cancel = context.WithCancel(ctx)
	}
	if len(f.FailNets) > 0 {
		bad := make(map[int]bool, len(f.FailNets))
		for _, id := range f.FailNets {
			bad[id] = true
		}
		// Chain rather than clobber, mirroring BeforeStage below: composing
		// two plans (or a plan over a caller-set hook) must fail the union
		// of their nets, not silently drop the earlier set.
		prevFail := opts.Route.FailNet
		opts.Route.FailNet = func(id int) bool {
			if prevFail != nil && prevFail(id) {
				return true
			}
			return bad[id]
		}
	}
	prev := opts.Hooks.BeforeStage
	opts.Hooks.BeforeStage = func(stage tqec.Stage) error {
		if prev != nil {
			if err := prev(stage); err != nil {
				return err
			}
		}
		if stage == f.PanicStage {
			msg := fmt.Sprintf("harness: injected panic before stage %s", stage)
			if f.Raise != nil {
				f.Raise(msg)
			}
			return fmt.Errorf("%s (no Raise installed)", msg)
		}
		if stage == f.CancelStage && cancel != nil {
			cancel()
		}
		if stage == f.ErrorStage {
			if f.ErrorValue != nil {
				return f.ErrorValue
			}
			return fmt.Errorf("harness: injected error before stage %s", stage)
		}
		return nil
	}
	return ctx
}
