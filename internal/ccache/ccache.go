// Package ccache is the compile service's content-addressed result cache:
// an in-memory, byte-bounded LRU of immutable result payloads keyed by
// canonical content addresses (tqec.CacheKey), with single-flight
// deduplication so N concurrent requests for the same address cost exactly
// one compilation. Compilation is deterministic for a fixed (circuit,
// options) pair, which is what makes content addressing sound: a cached
// payload is byte-identical to what a fresh compile would produce.
package ccache

import (
	"container/list"
	"context"
	"fmt"
	"sync"

	"repro/internal/faults"
)

// Outcome classifies how a Do call obtained its value.
type Outcome int

// Do outcomes.
const (
	// Miss means this call ran the compute function itself.
	Miss Outcome = iota
	// Hit means the value was already cached.
	Hit
	// Shared means another in-flight call computed the value and this
	// call waited for it (single-flight deduplication).
	Shared
)

// String returns the outcome's wire name (the X-Tqecd-Cache header value).
func (o Outcome) String() string {
	switch o {
	case Miss:
		return "miss"
	case Hit:
		return "hit"
	case Shared:
		return "shared"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// Stats is a point-in-time snapshot of the cache's counters, shaped for
// the /v1/metrics endpoint. Counters are accounted at resolution time, so
// Hits+Misses == Lookups always holds: a call only counts once its fate is
// known, and a coalesced wait that never materializes a value (failed or
// abandoned flight) is a miss, not a shared hit.
type Stats struct {
	// Lookups counts Do calls.
	Lookups int64 `json:"lookups"`
	// Hits counts Do calls served a value without running compute: direct
	// cache hits plus materialized single-flight waits.
	Hits int64 `json:"hits"`
	// Misses counts Do calls that ran their compute function, plus waits
	// on a flight that failed or was abandoned before a value arrived.
	Misses int64 `json:"misses"`
	// Shared counts the subset of Hits that coalesced onto another call's
	// in-flight compute and observed its published value (Shared ≤ Hits).
	Shared int64 `json:"shared"`
	// Evictions counts entries dropped to stay within the byte budget.
	Evictions int64 `json:"evictions"`
	// Uncacheable counts computed values too large to cache at all.
	Uncacheable int64 `json:"uncacheable"`
	// Entries is the current number of cached values.
	Entries int `json:"entries"`
	// Bytes is the current payload byte total.
	Bytes int64 `json:"bytes"`
	// MaxBytes is the configured byte budget.
	MaxBytes int64 `json:"max_bytes"`
}

// entry is one cached payload; it lives in the LRU list.
type entry struct {
	key string
	val []byte
}

// flight is one in-progress compute; waiters block on done.
type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

// Cache is a content-addressed LRU with single-flight deduplication. The
// zero value is not usable; call New. All methods are safe for concurrent
// use. Cached payloads are shared by reference: callers must treat the
// returned byte slices as immutable.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	lru      *list.List // front = most recently used; values are *entry
	entries  map[string]*list.Element
	inflight map[string]*flight

	lookups, hits, misses, shared, evictions, uncacheable int64
}

// New returns a cache bounded to maxBytes of payload (metadata overhead is
// not counted). A non-positive budget disables caching entirely while
// keeping single-flight deduplication.
func New(maxBytes int64) *Cache {
	return &Cache{
		maxBytes: maxBytes,
		lru:      list.New(),
		entries:  map[string]*list.Element{},
		inflight: map[string]*flight{},
	}
}

// Put inserts a payload directly, bypassing the single-flight machinery.
// It exists for crash recovery: the server re-populates the cache from the
// journal's canonical result bytes so a restart serves the same
// byte-identical payloads a live process would. Like Do's insertions it
// respects the byte budget and does not count as a hit or miss.
func (c *Cache) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insertLocked(key, val)
}

// Get returns the cached payload for key, if any, marking it recently
// used. It does not count as a Do hit/miss.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Do returns the payload for key, computing it at most once across all
// concurrent callers: a cached value is returned immediately (Hit); if
// another call is already computing the value, this call waits for it
// (Shared); otherwise this call runs compute (Miss) and publishes the
// result. Errors are not cached — every waiter of a failed flight receives
// the error, and the next Do retries. ctx bounds only the waiting of a
// Shared call; a Miss runs compute to completion on the calling goroutine,
// so callers bound the compute itself via the context they capture in it.
func (c *Cache) Do(ctx context.Context, key string, compute func() ([]byte, error)) ([]byte, Outcome, error) {
	c.mu.Lock()
	c.lookups++
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		val := el.Value.(*entry).val
		c.mu.Unlock()
		return val, Hit, nil
	}
	if f, ok := c.inflight[key]; ok {
		// Counters are settled only once the wait resolves: a shared hit
		// that never materializes (leader failed, wait abandoned) must not
		// be reported as one.
		c.mu.Unlock()
		select {
		case <-f.done:
			c.mu.Lock()
			if f.err == nil {
				c.hits++
				c.shared++
			} else {
				c.misses++
			}
			c.mu.Unlock()
			return f.val, Shared, f.err
		case <-ctx.Done():
			c.mu.Lock()
			c.misses++
			c.mu.Unlock()
			return nil, Shared, faults.Canceled(ctx)
		}
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.misses++
	c.mu.Unlock()

	f.val, f.err = compute()
	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil {
		c.insertLocked(key, f.val)
	}
	c.mu.Unlock()
	close(f.done)
	return f.val, Miss, f.err
}

// insertLocked stores a payload and evicts from the LRU tail until the
// byte budget holds. Payloads larger than the whole budget are not cached:
// they are counted uncacheable exactly once and never enter the LRU, so an
// oversized single-flight result cannot wedge eviction. A payload exactly
// at the budget is cacheable (it evicts everything else). With a
// non-positive budget nothing is cached — without the explicit check, a
// zero-byte payload would pass the size test and become a permanent entry
// the byte-driven eviction loop can never remove.
// Callers hold c.mu.
func (c *Cache) insertLocked(key string, val []byte) {
	if c.maxBytes <= 0 || int64(len(val)) > c.maxBytes {
		c.uncacheable++
		return
	}
	if el, ok := c.entries[key]; ok {
		// A racing Get/Do cannot have inserted (we held the flight), but
		// be defensive: replace rather than double-count.
		c.bytes += int64(len(val)) - int64(len(el.Value.(*entry).val))
		el.Value.(*entry).val = val
		c.lru.MoveToFront(el)
	} else {
		c.entries[key] = c.lru.PushFront(&entry{key: key, val: val})
		c.bytes += int64(len(val))
	}
	for c.bytes > c.maxBytes {
		tail := c.lru.Back()
		if tail == nil {
			break
		}
		e := tail.Value.(*entry)
		c.lru.Remove(tail)
		delete(c.entries, e.key)
		c.bytes -= int64(len(e.val))
		c.evictions++
	}
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Lookups:     c.lookups,
		Hits:        c.hits,
		Misses:      c.misses,
		Shared:      c.shared,
		Evictions:   c.evictions,
		Uncacheable: c.uncacheable,
		Entries:     len(c.entries),
		Bytes:       c.bytes,
		MaxBytes:    c.maxBytes,
	}
}
