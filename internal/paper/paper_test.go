package paper

import (
	"testing"

	"repro/internal/qc"
)

func TestEightBenchmarks(t *testing.T) {
	if len(Benchmarks) != 8 {
		t.Fatalf("benchmarks: %d", len(Benchmarks))
	}
	for _, b := range Benchmarks {
		if _, err := qc.BenchmarkByName(b.Name); err != nil {
			t.Errorf("%s missing from generator table", b.Name)
		}
	}
}

func TestInternalConsistency(t *testing.T) {
	for _, b := range Benchmarks {
		// Table I identities.
		if b.VolY != 18*b.NumY {
			t.Errorf("%s: Vol_|Y> %d ≠ 18×%d", b.Name, b.VolY, b.NumY)
		}
		if b.VolA != 192*b.NumA {
			t.Errorf("%s: Vol_|A> %d ≠ 192×%d", b.Name, b.VolA, b.NumA)
		}
		if b.NumY != 2*b.NumA {
			t.Errorf("%s: #|Y> %d ≠ 2×#|A> %d", b.Name, b.NumY, b.NumA)
		}
		// Table IV "Ours" dims multiply to the Table II volume.
		if b.OursW*b.OursH*b.OursD != b.OursVol {
			t.Errorf("%s: ours dims %d×%d×%d ≠ %d",
				b.Name, b.OursW, b.OursH, b.OursD, b.OursVol)
		}
		// Ordering: canonical > 1D > 2D > ours, and the ablations sit
		// above ours.
		if !(b.CanonicalVol > b.Lin1DVol && b.Lin1DVol > b.Lin2DVol && b.Lin2DVol > b.OursVol) {
			t.Errorf("%s: volume ordering broken", b.Name)
		}
		if b.ConferenceVol < b.OursVol || b.WithoutBridgingVol <= b.OursVol {
			t.Errorf("%s: ablation volumes should exceed ours", b.Name)
		}
	}
}

func TestByName(t *testing.T) {
	b, ok := ByName("ham15_107")
	if !ok || b.QubitsD != 3753 {
		t.Fatalf("lookup: %+v %v", b, ok)
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("unknown name found")
	}
}

func TestHeadline(t *testing.T) {
	h := Headline
	if h.CanonicalRatio < h.Lin1DRatio || h.Lin1DRatio < h.Lin2DRatio {
		t.Fatal("headline ratios out of order")
	}
	// Shares should sum to ~100%.
	sum := h.BridgingShare + h.PlacementShare + h.RoutingShare + h.OtherShare
	if sum < 99 || sum > 101 {
		t.Fatalf("breakdown shares sum to %.2f", sum)
	}
}
