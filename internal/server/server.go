// Package server implements the tqecd compile service: an HTTP/JSON daemon
// over tqec.CompileContext with a bounded FIFO job queue drained by a
// worker pool, a content-addressed single-flight result cache, and live
// metrics.
//
// Endpoints:
//
//	POST /v1/compile      synchronous compile; responds with the result
//	                      payload and X-Tqecd-Cache{,-Key} headers
//	POST /v1/jobs         asynchronous compile; responds 202 with a job ID
//	GET  /v1/jobs/{id}    poll a job: queued/running/done/failed
//	GET  /v1/metrics      counters, queue gauges, cache stats, latency
//	                      histograms (JSON)
//	GET  /healthz         liveness and drain state
//
// Compilation is deterministic for a fixed (circuit, options) pair, so
// results are content-addressed by tqec.CacheKey: concurrent identical
// requests coalesce onto one compile (single-flight) and repeats are served
// from the in-memory LRU byte-for-byte identically. Failures surface as
// structured JSON errors carrying the failed stage and the faults-taxonomy
// sentinel; queue overload returns 429 with queue-depth headers; draining
// returns 503 while queued work finishes.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/ccache"
	"repro/internal/metrics"
	"repro/tqec"
)

// Config sizes the service. Zero values mean defaults.
type Config struct {
	// Workers is the worker-pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the FIFO job queue (default 64).
	QueueDepth int
	// CacheBytes bounds the result cache payload bytes (default 64 MiB).
	CacheBytes int64
	// DefaultTimeout bounds each compile when the request does not set
	// one (default 2m).
	DefaultTimeout time.Duration
	// MaxTimeout caps request-supplied timeouts (default 10m).
	MaxTimeout time.Duration
	// MaxJobs bounds the async job registry (default 1024).
	MaxJobs int
	// JobTTL bounds how long finished async jobs stay pollable (default
	// 15m; negative disables TTL eviction, leaving only the MaxJobs cap).
	JobTTL time.Duration
	// MaxBodyBytes bounds request bodies (default 4 MiB).
	MaxBodyBytes int64
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Minute
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.JobTTL == 0 {
		c.JobTTL = 15 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 4 << 20
	}
	return c
}

// Server is the compile service. Create with New, launch the workers with
// Start, serve it as an http.Handler, and stop with Drain.
type Server struct {
	cfg      Config
	pool     *pool
	cache    *ccache.Cache
	jobs     *jobRegistry
	mux      *http.ServeMux
	draining atomic.Bool

	requests      metrics.Counter
	compiles      metrics.Counter
	errorsTotal   metrics.Counter
	rejected      metrics.Counter
	writeErrors   metrics.Counter
	jobsSubmitted metrics.Counter
	compileHist   *metrics.Histogram
	stageHists    map[string]*metrics.Histogram
}

// New builds a server from the config.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	jobs, err := newJobRegistry(cfg.MaxJobs, cfg.JobTTL)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s := &Server{
		cfg:         cfg,
		pool:        newPool(cfg.Workers, cfg.QueueDepth),
		cache:       ccache.New(cfg.CacheBytes),
		jobs:        jobs,
		mux:         http.NewServeMux(),
		compileHist: metrics.NewHistogram(),
		stageHists: map[string]*metrics.Histogram{
			metrics.StageBridging:  metrics.NewHistogram(),
			metrics.StagePlacement: metrics.NewHistogram(),
			metrics.StageRouting:   metrics.NewHistogram(),
			metrics.StageOther:     metrics.NewHistogram(),
		},
	}
	s.mux.HandleFunc("POST /v1/compile", s.handleCompile)
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s, nil
}

// Start launches the worker pool. ctx is the pool's lifetime: canceling it
// aborts in-flight compiles (hard stop); prefer Drain for graceful
// shutdown.
func (s *Server) Start(ctx context.Context) {
	s.pool.start(ctx)
}

// Drain stops accepting new jobs and waits, bounded by ctx, until every
// queued job has run. In-flight synchronous requests complete because their
// queued tasks run to completion; call the HTTP server's Shutdown first so
// no new requests arrive.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	return s.pool.drain(ctx)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// execute runs one compilation on a worker goroutine and encodes the
// deterministic response payload. It is the only place compiles happen, so
// the compile counter equals the number of cache misses.
func (s *Server) execute(ctx context.Context, ct *compileTask) ([]byte, error) {
	s.compiles.Inc()
	start := time.Now()
	res, err := tqec.CompileContext(ctx, ct.circuit, ct.opts)
	s.compileHist.Observe(time.Since(start))
	if err != nil {
		return nil, err
	}
	for stage, hist := range s.stageHists {
		hist.Observe(res.Breakdown.Get(stage))
	}
	return EncodeResult(ct.key, res)
}

// handleCompile serves POST /v1/compile: parse, content-address, coalesce
// through the cache, queue on miss, respond with the payload.
func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	ct, aerr := parseCompileRequest(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes),
		s.cfg.DefaultTimeout, s.cfg.MaxTimeout)
	if aerr != nil {
		s.writeError(w, aerr)
		return
	}
	body, outcome, err := s.cache.Do(r.Context(), ct.key, func() ([]byte, error) {
		return s.pool.run(ct.timeout, func(ctx context.Context) ([]byte, error) {
			return s.execute(ctx, ct)
		})
	})
	if err != nil {
		s.writeError(w, compileError(err))
		return
	}
	w.Header().Set("X-Tqecd-Cache", outcome.String())
	w.Header().Set("X-Tqecd-Cache-Key", ct.key)
	s.writeBody(w, http.StatusOK, body)
}

// handleJobSubmit serves POST /v1/jobs: register a job, enqueue its
// compile, respond 202 with the job ID (200 immediately on a cache hit).
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	ct, aerr := parseCompileRequest(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes),
		s.cfg.DefaultTimeout, s.cfg.MaxTimeout)
	if aerr != nil {
		s.writeError(w, aerr)
		return
	}
	if body, ok := s.cache.Get(ct.key); ok {
		s.jobsSubmitted.Inc()
		j := s.jobs.add(ct.key)
		j.finish(body, ccache.Hit, nil)
		s.writeJSON(w, http.StatusOK, j.view())
		return
	}
	j := s.jobs.add(ct.key)
	t := &task{timeout: ct.timeout, f: func(ctx context.Context) ([]byte, error) {
		j.setRunning()
		body, outcome, err := s.cache.Do(ctx, ct.key, func() ([]byte, error) {
			return s.execute(ctx, ct)
		})
		if err != nil {
			s.errorsTotal.Inc()
			j.finish(nil, outcome, compileError(err))
			return nil, err
		}
		j.finish(body, outcome, nil)
		return body, nil
	}}
	if err := s.pool.enqueue(t); err != nil {
		ae := compileError(err)
		j.finish(nil, ccache.Miss, ae)
		s.writeError(w, ae)
		return
	}
	s.jobsSubmitted.Inc()
	s.writeJSON(w, http.StatusAccepted, j.view())
}

// handleJobGet serves GET /v1/jobs/{id}.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		s.writeError(w, &apiError{Status: http.StatusNotFound,
			Body: ErrorBody{Message: fmt.Sprintf("unknown job %q", r.PathValue("id"))}})
		return
	}
	s.writeJSON(w, http.StatusOK, j.view())
}

// ServerStats are the request-level counters of MetricsSnapshot.
type ServerStats struct {
	// Requests counts every handled API request.
	Requests int64 `json:"requests"`
	// Compiles counts pipeline executions (equals cache misses).
	Compiles int64 `json:"compiles"`
	// Errors counts requests answered with an error body.
	Errors int64 `json:"errors"`
	// Rejected counts 429 overload responses.
	Rejected int64 `json:"rejected"`
	// WriteErrors counts response writes that failed mid-flight.
	WriteErrors int64 `json:"write_errors"`
}

// QueueStats are the worker-pool gauges of MetricsSnapshot.
type QueueStats struct {
	// Depth is the current queue occupancy.
	Depth int `json:"depth"`
	// Capacity is the queue bound.
	Capacity int `json:"capacity"`
	// Workers is the pool size.
	Workers int `json:"workers"`
	// Busy is the number of workers executing right now.
	Busy int64 `json:"busy"`
}

// JobsStats are the async-job counters of MetricsSnapshot.
type JobsStats struct {
	// Submitted counts accepted job submissions.
	Submitted int64 `json:"submitted"`
	// Queued is the number of registered jobs awaiting a worker.
	Queued int `json:"queued"`
	// Running is the number of jobs being compiled.
	Running int `json:"running"`
	// Done is the number of retained finished jobs.
	Done int `json:"done"`
	// Failed is the number of retained failed jobs.
	Failed int `json:"failed"`
	// Evicted counts finished jobs dropped by TTL or max-entries
	// eviction.
	Evicted int64 `json:"evicted"`
}

// MetricsSnapshot is the JSON body of GET /v1/metrics.
type MetricsSnapshot struct {
	// Server holds request-level counters.
	Server ServerStats `json:"server"`
	// Queue holds worker-pool gauges.
	Queue QueueStats `json:"queue"`
	// Jobs holds async-job counters.
	Jobs JobsStats `json:"jobs"`
	// Cache holds the result-cache counters.
	Cache ccache.Stats `json:"cache"`
	// LatencyNS holds latency histograms keyed by metric name:
	// "queue_wait", "compile", and "stage:<pipeline stage>".
	LatencyNS map[string]metrics.HistogramSnapshot `json:"latency_ns"`
}

// snapshot assembles the current metrics.
func (s *Server) snapshot() MetricsSnapshot {
	depth, capacity := s.pool.depth()
	queued, running, done, failed := s.jobs.counts()
	snap := MetricsSnapshot{
		Server: ServerStats{
			Requests:    s.requests.Value(),
			Compiles:    s.compiles.Value(),
			Errors:      s.errorsTotal.Value(),
			Rejected:    s.rejected.Value(),
			WriteErrors: s.writeErrors.Value(),
		},
		Queue: QueueStats{
			Depth:    depth,
			Capacity: capacity,
			Workers:  s.cfg.Workers,
			Busy:     s.pool.busy.Value(),
		},
		Jobs: JobsStats{
			Submitted: s.jobsSubmitted.Value(),
			Queued:    queued,
			Running:   running,
			Done:      done,
			Failed:    failed,
			Evicted:   s.jobs.evictions(),
		},
		Cache: s.cache.Stats(),
		LatencyNS: map[string]metrics.HistogramSnapshot{
			"queue_wait": s.pool.wait.Snapshot(),
			"compile":    s.compileHist.Snapshot(),
		},
	}
	for stage, hist := range s.stageHists {
		snap.LatencyNS["stage:"+stage] = hist.Snapshot()
	}
	return snap
}

// handleMetrics serves GET /v1/metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.snapshot())
}

// HealthBody is the JSON body of GET /healthz.
type HealthBody struct {
	// Status is "ok" while serving and "draining" after Drain began.
	Status string `json:"status"`
	// Workers is the pool size.
	Workers int `json:"workers"`
	// QueueDepth is the current queue occupancy.
	QueueDepth int `json:"queue_depth"`
	// QueueCapacity is the queue bound.
	QueueCapacity int `json:"queue_capacity"`
}

// handleHealthz serves GET /healthz: 200 while serving, 503 once draining.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	depth, capacity := s.pool.depth()
	h := HealthBody{Status: "ok", Workers: s.cfg.Workers, QueueDepth: depth, QueueCapacity: capacity}
	code := http.StatusOK
	if s.draining.Load() {
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, h)
}

// writeError emits a structured error response, stamping 429s with the
// queue-depth headers the issue of backpressure calls for.
func (s *Server) writeError(w http.ResponseWriter, ae *apiError) {
	s.errorsTotal.Inc()
	if ae.Status == http.StatusTooManyRequests {
		s.rejected.Inc()
		depth, capacity := s.pool.depth()
		w.Header().Set("X-Tqecd-Queue-Depth", strconv.Itoa(depth))
		w.Header().Set("X-Tqecd-Queue-Capacity", strconv.Itoa(capacity))
	}
	s.writeJSON(w, ae.Status, ErrorResponse{Error: ae.Body})
}

// writeJSON marshals v and writes it with the given status.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		// Marshaling our own response types cannot fail; if it somehow
		// does, serve a minimal 500 rather than a broken body.
		http.Error(w, `{"error":{"message":"response encoding failed"}}`, http.StatusInternalServerError)
		s.writeErrors.Inc()
		return
	}
	s.writeBody(w, code, b)
}

// writeBody writes a pre-encoded JSON payload. A failed write (client gone
// mid-response) is counted; there is no one left to report it to.
func (s *Server) writeBody(w http.ResponseWriter, code int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(code)
	if _, err := w.Write(body); err != nil {
		s.writeErrors.Inc()
	}
}
