package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the determinism-taint engine shared by the dettaint
// analyzer and the fact layer. Taint models "this value depends on
// process-local nondeterministic state": wall-clock reads, the global
// math/rand source, map-iteration order, pointer formatting and process
// identity. Flows are tracked flow-insensitively through assignments,
// struct fields, channels, closures and calls (via function summaries),
// and reported when a tainted value reaches a canonical-encoding sink.

// taintSources are the package-level functions whose results are tainted.
var taintSources = map[string]string{
	"time.Now":   "wall-clock time.Now",
	"time.Since": "wall-clock time.Since",
	"time.Until": "wall-clock time.Until",
	"os.Getpid":  "process id os.Getpid",
}

// sinkSpec names one determinism sink: a function whose listed parameters
// (-1 is the receiver) must only ever see deterministic values, because
// their bytes end up content-addressed, journaled or served.
type sinkSpec struct {
	id     FuncID
	params []int
	desc   string
}

// taintSinks is the sink registry. These are the repo's canonical
// encoders and durability boundaries: a nondeterministic value reaching
// any of them silently breaks the byte-identity contracts the cache,
// journal and verifier rely on.
var taintSinks = []sinkSpec{
	{id: "repro/tqec.CacheKey", params: []int{0, 1}, desc: "tqec.CacheKey content address"},
	{id: "repro/tqec.CacheKeyICM", params: []int{0, 1}, desc: "tqec.CacheKeyICM content address"},
	{id: "(repro/internal/icm.Circuit).AppendCanonical", params: []int{-1}, desc: "icm.AppendCanonical canonical encoding"},
	{id: "repro/internal/baseline.Canonical", params: []int{0}, desc: "baseline.Canonical canonical volume"},
	{id: "(repro/internal/journal.Journal).Append", params: []int{0}, desc: "journal record payload"},
	{id: "repro/internal/server.EncodeResult", params: []int{0, 1}, desc: "served compile payload (EncodeResult)"},
}

// resultStruct identifies repro/tqec.Result, whose fields are all sinks:
// every field feeds EncodeResult, the verifier or the paper tables.
const (
	resultPkg  = "repro/tqec"
	resultName = "Result"
	// resultExemptField is the one Result field allowed to carry
	// nondeterministic values: the per-stage wall-clock Breakdown, which
	// is diagnostics by design and excluded from EncodeResult and the
	// cache bytes. The exemption also stops taint from spreading to the
	// whole Result object through Breakdown writes.
	resultExemptField = "Breakdown"
)

// sinkByID returns the sink spec for a callee, or nil.
func sinkByID(id FuncID) *sinkSpec {
	for i := range taintSinks {
		if taintSinks[i].id == id {
			return &taintSinks[i]
		}
	}
	return nil
}

// taintScan is one flow-insensitive taint pass over a single function
// (closures included — they share the object space). assume seeds
// parameters as tainted for summary computation.
type taintScan struct {
	pkg     *Package
	store   *FactStore
	graph   *CallGraph
	fd      *ast.FuncDecl
	assume  map[types.Object]string
	tainted map[types.Object]string
}

func newTaintScan(pkg *Package, store *FactStore, graph *CallGraph, fd *ast.FuncDecl) *taintScan {
	return &taintScan{
		pkg:     pkg,
		store:   store,
		graph:   graph,
		fd:      fd,
		assume:  map[types.Object]string{},
		tainted: map[types.Object]string{},
	}
}

// propagate seeds map-order accumulators and iterates the assignment walk
// to a fixpoint.
func (s *taintScan) propagate() {
	s.seedMapOrder()
	for round := 0; round < 16; round++ {
		before := len(s.tainted)
		s.walkAssignments()
		if len(s.tainted) == before {
			return
		}
	}
}

// seedMapOrder taints slices that accumulate elements in map-iteration
// order without a subsequent sort in the same function: their element
// order is scheduling-dependent even though each element is deterministic.
func (s *taintScan) seedMapOrder() {
	ast.Inspect(s.fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := s.pkg.Info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		for _, obj := range rangeAppendTargets(s.pkg, rs) {
			if !sortedAfterStmt(s.pkg, s.fd, rs, obj) {
				if _, ok := s.tainted[obj]; !ok {
					s.tainted[obj] = "map-iteration order"
				}
			}
		}
		return true
	})
}

// walkAssignments performs one propagation round over every statement.
func (s *taintScan) walkAssignments() {
	ast.Inspect(s.fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			s.assign(n)
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				s.assignPair(identExprs(vs.Names), vs.Values)
			}
		case *ast.RangeStmt:
			// Ranging over a tainted collection taints the drawn
			// key/value bindings.
			if reason, ok := s.taintOf(n.X); ok {
				for _, lhs := range []ast.Expr{n.Key, n.Value} {
					if lhs != nil {
						s.taintLHS(lhs, reason)
					}
				}
			}
		case *ast.SendStmt:
			if reason, ok := s.taintOf(n.Value); ok {
				s.taintLHS(n.Chan, "channel carrying "+strip(reason))
			}
		case *ast.CallExpr:
			s.taintReceiverOfMutator(n)
		}
		return true
	})
}

// assign handles one assignment statement, aligning multi-value forms.
func (s *taintScan) assign(as *ast.AssignStmt) {
	if len(as.Lhs) > 1 && len(as.Rhs) == 1 {
		// a, b := f() — align against the call's per-result taint.
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok {
			results := s.callResultTaint(call)
			for i, lhs := range as.Lhs {
				if reason, ok := results[i]; ok {
					s.taintLHS(lhs, reason)
				}
			}
			return
		}
		// v, ok := m[k] / x.(T) / <-ch: taint follows the source expr.
		if reason, ok := s.taintOf(as.Rhs[0]); ok {
			s.taintLHS(as.Lhs[0], reason)
		}
		return
	}
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		if reason, ok := s.taintOf(as.Rhs[i]); ok {
			s.taintLHS(lhs, reason)
		}
	}
}

func (s *taintScan) assignPair(lhs, rhs []ast.Expr) {
	for i, l := range lhs {
		if i >= len(rhs) {
			break
		}
		if reason, ok := s.taintOf(rhs[i]); ok {
			s.taintLHS(l, reason)
		}
	}
}

// taintLHS marks the object behind an assignment target. Writing a
// tainted value into a field or element taints the whole root object
// (coarse but sound for the byte-encoding sinks), except through fields
// on the exemption list.
func (s *taintScan) taintLHS(lhs ast.Expr, reason string) {
	lhs = ast.Unparen(lhs)
	if sel, ok := lhs.(*ast.SelectorExpr); ok && s.exemptField(sel) {
		return
	}
	obj := s.rootObj(lhs)
	if obj == nil {
		return
	}
	if _, ok := s.tainted[obj]; !ok {
		s.tainted[obj] = reason
	}
}

// taintReceiverOfMutator taints a method call's receiver when a tainted
// argument is passed in: the method may store the value (buf.Write,
// list.PushBack). Exempt field chains (diagnostics sinks like
// Result.Breakdown) block the spread.
func (s *taintScan) taintReceiverOfMutator(call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	if _, isMethod := s.pkg.Info.Selections[sel]; !isMethod {
		return
	}
	var reason string
	tainted := false
	for _, arg := range call.Args {
		if r, ok := s.taintOf(arg); ok {
			reason, tainted = r, true
			break
		}
	}
	if !tainted {
		return
	}
	if s.exemptChain(sel.X) {
		return
	}
	s.taintLHS(sel.X, reason)
}

// exemptField reports whether sel selects a field on the exemption list
// (tqec.Result.Breakdown).
func (s *taintScan) exemptField(sel *ast.SelectorExpr) bool {
	path, name, ok := namedType(s.pkg.Info.TypeOf(sel.X))
	return ok && path == resultPkg && name == resultName && sel.Sel.Name == resultExemptField
}

// exemptChain reports whether any selector hop in e traverses an exempt
// field, so writes through res.Breakdown.X never taint res.
func (s *taintScan) exemptChain(e ast.Expr) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if s.exemptField(x) {
				return true
			}
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return false
		}
	}
}

// rootObj resolves an expression to the object at the base of its
// selector/index/deref chain ("x" in x.a[i].b).
func (s *taintScan) rootObj(e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return s.pkg.Info.ObjectOf(x)
		case *ast.SelectorExpr:
			// A package-qualified selector roots at the package-level
			// object itself.
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := s.pkg.Info.ObjectOf(id).(*types.PkgName); isPkg {
					return s.pkg.Info.ObjectOf(x.Sel)
				}
			}
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// taintOf reports whether e may carry a tainted value, with a human
// reason.
func (s *taintScan) taintOf(e ast.Expr) (string, bool) {
	if e == nil {
		return "", false
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := s.pkg.Info.ObjectOf(e)
		if obj == nil {
			return "", false
		}
		if r, ok := s.tainted[obj]; ok {
			return r, true
		}
		if r, ok := s.assume[obj]; ok {
			return r, true
		}
		return "", false
	case *ast.SelectorExpr:
		// Reading through an exempt field yields diagnostics, not taint
		// the sinks care about.
		if s.exemptField(e) {
			return "", false
		}
		if obj := s.rootObj(e); obj != nil {
			if r, ok := s.tainted[obj]; ok {
				return r, true
			}
			if r, ok := s.assume[obj]; ok {
				return r, true
			}
		}
		return "", false
	case *ast.CallExpr:
		results := s.callResultTaint(e)
		if r, ok := results[0]; ok {
			return r, true
		}
		// Any tainted result taints a single-value use conservatively.
		for _, r := range results {
			return r, true
		}
		return "", false
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			// Receiving from a tainted channel yields tainted values.
			return s.taintOf(e.X)
		}
		return s.taintOf(e.X)
	case *ast.BinaryExpr:
		if r, ok := s.taintOf(e.X); ok {
			return r, true
		}
		return s.taintOf(e.Y)
	case *ast.StarExpr:
		return s.taintOf(e.X)
	case *ast.IndexExpr:
		if r, ok := s.taintOf(e.X); ok {
			return r, true
		}
		return "", false
	case *ast.SliceExpr:
		return s.taintOf(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if r, ok := s.taintOf(kv.Value); ok {
					return r, true
				}
				continue
			}
			if r, ok := s.taintOf(el); ok {
				return r, true
			}
		}
		return "", false
	case *ast.TypeAssertExpr:
		return s.taintOf(e.X)
	}
	return "", false
}

// callResultTaint returns the taint of each result of a call, by index.
func (s *taintScan) callResultTaint(call *ast.CallExpr) map[int]string {
	out := map[int]string{}
	// Builtins: append propagates, everything else launders (len of a map
	// is deterministic even though iteration order is not).
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isBuiltin := s.pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			if b.Name() == "append" || b.Name() == "min" || b.Name() == "max" {
				for _, arg := range call.Args {
					if r, ok := s.taintOf(arg); ok {
						out[0] = r
						return out
					}
				}
			}
			return out
		}
	}
	// Type conversions propagate.
	if tv, ok := s.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			if r, ok := s.taintOf(call.Args[0]); ok {
				out[0] = r
			}
		}
		return out
	}
	// Direct sources.
	fn := calleeFunc(s.pkg.Info, call)
	if name := pkgFunc(fn); name != "" {
		if r, ok := taintSources[name]; ok {
			out[0] = r
			return out
		}
		if fn.Pkg().Path() == "math/rand" && detRandDraws[fn.Name()] {
			out[0] = "global math/rand source"
			return out
		}
	}
	if r, ok := s.pointerFormat(call, fn); ok {
		out[0] = r
		return out
	}
	// Summarized callees (CHA-expanded): merge every implementation.
	summarized := false
	for _, id := range s.calleeIDs(call) {
		facts := s.store.Get(id)
		if facts == nil {
			continue
		}
		summarized = true
		for idx, reason := range facts.TaintedResults {
			if _, ok := out[idx]; !ok {
				out[idx] = fmt.Sprintf("%s (via %s)", strip(reason), shortID(id))
			}
		}
		for p, resultIdxs := range facts.ParamFlows {
			arg, ok := s.argExpr(call, fn, p)
			if !ok {
				continue
			}
			if reason, tainted := s.taintOf(arg); tainted {
				for _, idx := range resultIdxs {
					if _, ok := out[idx]; !ok {
						out[idx] = reason
					}
				}
			}
		}
	}
	// Unsummarized callees (standard library, outside the loaded set):
	// assume every result carries any taint fed in through an argument or
	// the receiver. This is what keeps time.Now().Format(...) or
	// strings built from tainted parts tainted instead of laundered.
	if !summarized && fn != nil && len(out) == 0 {
		reason, tainted := "", false
		for _, arg := range call.Args {
			if r, ok := s.taintOf(arg); ok {
				reason, tainted = r, true
				break
			}
		}
		if !tainted {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				if _, isMethod := s.pkg.Info.Selections[sel]; isMethod && !s.exemptChain(sel.X) {
					if r, ok := s.taintOf(sel.X); ok {
						reason, tainted = r, true
					}
				}
			}
		}
		if tainted {
			if sig, ok := fn.Type().(*types.Signature); ok {
				for i := 0; i < sig.Results().Len(); i++ {
					out[i] = reason
				}
			}
		}
	}
	return out
}

// pointerFormat detects fmt formatting with a %p verb: the rendered
// address is fresh per process and per allocation.
func (s *taintScan) pointerFormat(call *ast.CallExpr, fn *types.Func) (string, bool) {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return "", false
	}
	for _, arg := range call.Args {
		lit, ok := ast.Unparen(arg).(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			continue
		}
		if strings.Contains(lit.Value, "%p") {
			return "pointer address (%p formatting)", true
		}
	}
	return "", false
}

// calleeIDs resolves a call to fact-store keys, CHA-expanded when a graph
// is available.
func (s *taintScan) calleeIDs(call *ast.CallExpr) []FuncID {
	if s.graph != nil {
		return s.graph.CalleeIDs(s.pkg.Info, call)
	}
	if id := funcID(calleeFunc(s.pkg.Info, call)); id != "" {
		return []FuncID{id}
	}
	return nil
}

// argExpr maps a callee parameter index (-1 = receiver) to the call-site
// expression feeding it.
func (s *taintScan) argExpr(call *ast.CallExpr, fn *types.Func, param int) (ast.Expr, bool) {
	if param == -1 {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return nil, false
		}
		return sel.X, true
	}
	if fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Variadic() && param >= sig.Params().Len()-1 {
			// Any variadic-slot argument can feed the variadic param.
			for _, a := range call.Args[min(param, len(call.Args)):] {
				if _, tainted := s.taintOf(a); tainted {
					return a, true
				}
			}
			if param < len(call.Args) {
				return call.Args[param], true
			}
			return nil, false
		}
	}
	if param < 0 || param >= len(call.Args) {
		return nil, false
	}
	return call.Args[param], true
}

// sinkHit is one tainted value reaching a sink.
type sinkHit struct {
	pos    token.Pos
	reason string
	sink   string
	via    string
}

// sinkHits walks the function after propagation and returns every place a
// tainted expression feeds a sink parameter, a summarized sink-reaching
// callee, or a field of tqec.Result.
func (s *taintScan) sinkHits() []sinkHit {
	var hits []sinkHit
	ast.Inspect(s.fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			hits = append(hits, s.callSinkHits(n)...)
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok || !s.resultField(sel) {
					continue
				}
				var rhs ast.Expr
				if len(n.Rhs) > i {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
				}
				if rhs == nil {
					continue
				}
				if reason, ok := s.taintOf(rhs); ok {
					hits = append(hits, sinkHit{pos: rhs.Pos(), reason: reason,
						sink: "tqec.Result." + sel.Sel.Name})
				}
			}
		case *ast.CompositeLit:
			path, name, ok := namedType(s.pkg.Info.TypeOf(n))
			if !ok || path != resultPkg || name != resultName {
				return true
			}
			for _, el := range n.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok || key.Name == resultExemptField {
					continue
				}
				if reason, ok := s.taintOf(kv.Value); ok {
					hits = append(hits, sinkHit{pos: kv.Value.Pos(), reason: reason,
						sink: "tqec.Result." + key.Name})
				}
			}
		}
		return true
	})
	return hits
}

// resultField reports whether sel writes a non-exempt field of
// tqec.Result.
func (s *taintScan) resultField(sel *ast.SelectorExpr) bool {
	path, name, ok := namedType(s.pkg.Info.TypeOf(sel.X))
	return ok && path == resultPkg && name == resultName && sel.Sel.Name != resultExemptField
}

// callSinkHits checks one call against the direct sink registry and
// against summarized sink-reaching callees.
func (s *taintScan) callSinkHits(call *ast.CallExpr) []sinkHit {
	var hits []sinkHit
	fn := calleeFunc(s.pkg.Info, call)
	seen := map[string]bool{}
	for _, id := range s.calleeIDs(call) {
		if spec := sinkByID(id); spec != nil {
			for _, p := range spec.params {
				arg, ok := s.argExpr(call, fn, p)
				if !ok {
					continue
				}
				if reason, tainted := s.taintOf(arg); tainted && !seen[spec.desc] {
					seen[spec.desc] = true
					hits = append(hits, sinkHit{pos: arg.Pos(), reason: reason, sink: spec.desc})
				}
			}
			continue
		}
		facts := s.store.Get(id)
		if facts == nil {
			continue
		}
		for p, sinkDesc := range facts.SinkParams {
			arg, ok := s.argExpr(call, fn, p)
			if !ok {
				continue
			}
			if reason, tainted := s.taintOf(arg); tainted && !seen[sinkDesc] {
				seen[sinkDesc] = true
				hits = append(hits, sinkHit{pos: arg.Pos(), reason: reason, sink: sinkDesc, via: shortID(id)})
			}
		}
	}
	return hits
}

// outerReturns collects the function's own return statements, skipping
// nested function literals (their returns belong to the literal).
func outerReturns(fd *ast.FuncDecl) []*ast.ReturnStmt {
	var out []*ast.ReturnStmt
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			out = append(out, n)
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
	return out
}

// resultTaint computes which of the function's results are tainted after
// propagation: explicit return expressions plus named-result objects.
func (s *taintScan) resultTaint() map[int]string {
	out := map[int]string{}
	sig, ok := s.pkg.Info.Defs[s.fd.Name].(*types.Func)
	if !ok {
		return out
	}
	nres := sig.Type().(*types.Signature).Results().Len()
	if nres == 0 {
		return out
	}
	for _, ret := range outerReturns(s.fd) {
		if len(ret.Results) == 1 && nres > 1 {
			if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
				for idx, reason := range s.callResultTaint(call) {
					if _, ok := out[idx]; !ok {
						out[idx] = reason
					}
				}
			}
			continue
		}
		for i, e := range ret.Results {
			if i >= nres {
				break
			}
			if reason, ok := s.taintOf(e); ok {
				if _, seen := out[i]; !seen {
					out[i] = reason
				}
			}
		}
	}
	// Named results assigned anywhere in the body.
	if s.fd.Type.Results != nil {
		i := 0
		for _, field := range s.fd.Type.Results.List {
			for _, name := range field.Names {
				if obj := s.pkg.Info.ObjectOf(name); obj != nil {
					if reason, ok := s.tainted[obj]; ok {
						if _, seen := out[i]; !seen {
							out[i] = reason
						}
					}
				}
				i++
			}
			if len(field.Names) == 0 {
				i++
			}
		}
	}
	return out
}

// paramObjects returns the function's parameter objects indexed the way
// summaries index them: -1 for the receiver, then 0..n-1.
func paramObjects(pkg *Package, fd *ast.FuncDecl) map[int]types.Object {
	out := map[int]types.Object{}
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		out[-1] = pkg.Info.ObjectOf(fd.Recv.List[0].Names[0])
	}
	i := 0
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			out[i] = pkg.Info.ObjectOf(name)
			i++
		}
		if len(field.Names) == 0 {
			i++
		}
	}
	return out
}

// identExprs widens a []*ast.Ident to []ast.Expr.
func identExprs(ids []*ast.Ident) []ast.Expr {
	out := make([]ast.Expr, len(ids))
	for i, id := range ids {
		out[i] = id
	}
	return out
}

// strip drops an existing "(via ...)" suffix so chained propagation
// reasons do not nest unboundedly.
func strip(reason string) string {
	if i := strings.Index(reason, " (via "); i > 0 {
		return reason[:i]
	}
	return reason
}

// shortID renders a FuncID for messages: the last path element is enough
// for a human ("server.EncodeResult", "(icm.Circuit).AppendCanonical").
func shortID(id FuncID) string {
	s := string(id)
	if i := strings.LastIndex(s, "/"); i >= 0 {
		return s[i+1:]
	}
	return s
}

// rangeAppendTargets returns the objects of slices appended to inside a
// map-range body that outlive the loop (declared outside it).
func rangeAppendTargets(pkg *Package, rs *ast.RangeStmt) []types.Object {
	seen := map[types.Object]bool{}
	var out []types.Object
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		callee, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		if b, isBuiltin := pkg.Info.Uses[callee].(*types.Builtin); !isBuiltin || b.Name() != "append" {
			return true
		}
		obj := pkg.Info.ObjectOf(id)
		if obj == nil || seen[obj] {
			return true
		}
		// A slice declared inside the loop body is rebuilt per iteration;
		// its order does not leak out of the range statement.
		if obj.Pos() >= rs.Body.Pos() && obj.Pos() <= rs.Body.End() {
			return true
		}
		seen[obj] = true
		out = append(out, obj)
		return true
	})
	return out
}

// detSortFuncs are calls accepted as establishing a deterministic order.
var detSortFuncs = map[string]bool{
	"sort.Ints": true, "sort.Strings": true, "sort.Float64s": true,
	"sort.Slice": true, "sort.SliceStable": true, "sort.Sort": true, "sort.Stable": true,
	"slices.Sort": true, "slices.SortFunc": true, "slices.SortStableFunc": true,
}

// sortedAfterStmt reports whether obj is passed to a sort call after the
// range statement, anywhere in the enclosing function.
func sortedAfterStmt(pkg *Package, fd *ast.FuncDecl, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || len(call.Args) == 0 {
			return true
		}
		if !detSortFuncs[pkgFunc(calleeFunc(pkg.Info, call))] {
			return true
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && pkg.Info.ObjectOf(id) == obj {
			found = true
		}
		return true
	})
	return found
}
