// Package journal is tqecd's durable write-ahead log of asynchronous job
// lifecycle events. Every accepted async compile is recorded — request
// bytes included — before the server acknowledges it, every state change
// (running, done, failed) is appended with a checksum and fsync'd, and on
// restart the log is replayed so that interrupted jobs are re-enqueued and
// finished jobs stay pollable with byte-identical result payloads.
//
// On-disk layout: a directory of segment files named %08d.wal, replayed in
// sequence order. Each record is framed as
//
//	[uint32 LE payload length][uint32 LE CRC32(payload)][payload JSON]
//
// so a torn tail (a crash mid-write) is detected by the length or checksum
// and truncated away rather than poisoning recovery. Appends go to the
// highest-numbered segment; once it exceeds the configured size the journal
// rotates to a fresh segment and compacts the older ones down to the
// minimal event set that reproduces the live state (interrupted jobs keep
// their accepted/running events, the most recent finished jobs keep their
// terminal event, older finished jobs are dropped). Replay is idempotent —
// duplicate events, including a second done record written by a crash
// between append and acknowledgement, are ignored — which also makes a
// crash in the middle of compaction safe: leftover pre-compaction segments
// merely replay a subset of the compacted events again.
package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Kind labels one lifecycle event.
type Kind string

// Lifecycle event kinds, in the order a healthy job emits them.
const (
	// KindAccepted records a newly accepted job with its request bytes.
	KindAccepted Kind = "accepted"
	// KindRunning records a worker picking the job up.
	KindRunning Kind = "running"
	// KindDone records successful completion with the canonical result
	// bytes.
	KindDone Kind = "done"
	// KindFailed records terminal failure with the structured error body.
	KindFailed Kind = "failed"
)

// Event is one journal record. Byte fields marshal as base64 inside the
// record's JSON payload; the framing checksum covers the whole payload.
type Event struct {
	// Kind is the lifecycle transition being recorded.
	Kind Kind `json:"kind"`
	// JobID identifies the job across its whole lifecycle.
	JobID string `json:"job_id"`
	// Key is the compilation's content address (accepted/done events).
	Key string `json:"key,omitempty"`
	// Request holds the raw compile-request body (accepted events).
	Request []byte `json:"request,omitempty"`
	// Result holds the canonical result payload (done events).
	Result []byte `json:"result,omitempty"`
	// Outcome is the cache outcome string of a done event.
	Outcome string `json:"outcome,omitempty"`
	// Error holds the structured error JSON of a failed event.
	Error []byte `json:"error,omitempty"`
}

// Status is a job's replayed lifecycle state.
type Status string

// Replayed job states. Accepted and Running are both "interrupted" from a
// recovery point of view: the job never reached a terminal event.
const (
	// StatusAccepted means the job was accepted but no worker claimed it.
	StatusAccepted Status = "accepted"
	// StatusRunning means a worker claimed the job but never finished it.
	StatusRunning Status = "running"
	// StatusDone means the job finished with a result payload.
	StatusDone Status = "done"
	// StatusFailed means the job failed with a structured error.
	StatusFailed Status = "failed"
)

// JobState is the replayed state of one job: the fold of its events.
type JobState struct {
	// ID is the job's identifier.
	ID string
	// Key is the compilation's content address.
	Key string
	// Status is the replayed lifecycle state.
	Status Status
	// Request holds the raw request bytes from the accepted event.
	Request []byte
	// Result holds the result payload of a done job.
	Result []byte
	// Outcome is the recorded cache outcome of a done job.
	Outcome string
	// Error holds the structured error JSON of a failed job.
	Error []byte
}

// Terminal reports whether the job reached done or failed.
func (s *JobState) Terminal() bool {
	return s.Status == StatusDone || s.Status == StatusFailed
}

// Interrupted reports whether the job was accepted but never finished —
// the set recovery must re-enqueue.
func (s *JobState) Interrupted() bool { return !s.Terminal() }

// Options tunes a journal. The zero value uses the defaults.
type Options struct {
	// SegmentBytes is the rotation threshold for the active segment
	// (default 8 MiB).
	SegmentBytes int64
	// RetainFinished bounds how many terminal jobs survive compaction,
	// newest first (default 1024, mirroring the server's job-registry
	// cap). Interrupted jobs are always retained.
	RetainFinished int
	// NoSync skips the per-append fsync. Only for tests that measure
	// logic, not durability.
	NoSync bool
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.RetainFinished <= 0 {
		o.RetainFinished = 1024
	}
	return o
}

// Stats is a point-in-time snapshot of the journal's counters, shaped for
// the server's /v1/metrics endpoint.
type Stats struct {
	// Appends counts records durably written.
	Appends int64 `json:"appends"`
	// Rotations counts segment rotations.
	Rotations int64 `json:"rotations"`
	// Compactions counts compaction passes.
	Compactions int64 `json:"compactions"`
	// DroppedJobs counts finished jobs dropped by compaction retention.
	DroppedJobs int64 `json:"dropped_jobs"`
	// TornBytes is how many trailing bytes recovery truncated away.
	TornBytes int64 `json:"torn_bytes"`
	// Segments is the current segment-file count.
	Segments int `json:"segments"`
	// ActiveBytes is the active segment's current size.
	ActiveBytes int64 `json:"active_bytes"`
	// FsyncNS is the per-append fsync latency histogram.
	FsyncNS metrics.HistogramSnapshot `json:"fsync_ns"`
}

// maxRecord bounds a single record's payload so a corrupt length field
// cannot demand an absurd allocation during replay.
const maxRecord = 64 << 20

// frameHeader is the per-record framing overhead: length plus checksum.
const frameHeader = 8

// Journal is a durable, append-only job event log. All methods are safe
// for concurrent use. Create with Open; the caller that opened it closes
// it after the server drains.
type Journal struct {
	mu        sync.Mutex
	dir       string
	opts      Options
	active    *os.File
	activeSeq int
	activeLen int64
	segments  int

	state map[string]*JobState
	order []string // acceptance order of the jobs in state

	recovered []JobState

	appends, rotations, compactions, dropped, tornBytes int64
	fsync                                               *metrics.Histogram
}

// Open replays every segment under dir (creating the directory when
// missing), truncates a torn tail, and returns a journal positioned to
// append. The replayed job states are available from Recovered.
func Open(dir string, opts Options) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{
		dir:   dir,
		opts:  opts.withDefaults(),
		state: map[string]*JobState{},
		fsync: metrics.NewHistogram(),
	}
	if err := j.replay(); err != nil {
		return nil, err
	}
	for _, id := range j.order {
		j.recovered = append(j.recovered, *j.state[id])
	}
	return j, nil
}

// Recovered returns the job states replayed at Open, in acceptance order.
// The slice is a snapshot: later appends do not change it.
func (j *Journal) Recovered() []JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.recovered
}

// segmentPath renders the path of segment seq.
func (j *Journal) segmentPath(seq int) string {
	return filepath.Join(j.dir, fmt.Sprintf("%08d.wal", seq))
}

// listSegments returns the existing segment sequence numbers in ascending
// order.
func (j *Journal) listSegments() ([]int, error) {
	entries, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	var seqs []int
	for _, e := range entries {
		var seq int
		if _, err := fmt.Sscanf(e.Name(), "%08d.wal", &seq); err == nil && e.Name() == fmt.Sprintf("%08d.wal", seq) {
			seqs = append(seqs, seq)
		}
	}
	sort.Ints(seqs)
	return seqs, nil
}

// replay loads every segment into the state map and opens the active
// segment for appending, truncating a torn tail first.
func (j *Journal) replay() error {
	seqs, err := j.listSegments()
	if err != nil {
		return err
	}
	if len(seqs) == 0 {
		return j.openActive(1, 0)
	}
	for i, seq := range seqs {
		data, err := os.ReadFile(j.segmentPath(seq))
		if err != nil {
			return fmt.Errorf("journal: %w", err)
		}
		events, clean := DecodeSegment(data)
		for _, ev := range events {
			j.apply(ev)
		}
		if torn := int64(len(data)) - clean; torn > 0 && i == len(seqs)-1 {
			// Only the active segment may legitimately carry a torn
			// tail (a crash mid-append); cut it off so the next append
			// starts at a clean frame boundary.
			j.tornBytes += torn
			if err := os.Truncate(j.segmentPath(seq), clean); err != nil {
				return fmt.Errorf("journal: truncate torn tail: %w", err)
			}
		}
	}
	j.segments = len(seqs)
	last := seqs[len(seqs)-1]
	info, err := os.Stat(j.segmentPath(last))
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return j.openActive(last, info.Size())
}

// openActive opens (creating if needed) segment seq for appending.
func (j *Journal) openActive(seq int, size int64) error {
	f, err := os.OpenFile(j.segmentPath(seq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.active = f
	j.activeSeq = seq
	j.activeLen = size
	if j.segments == 0 {
		j.segments = 1
	}
	return nil
}

// apply folds one event into the state map, idempotently: a terminal state
// is sticky, so duplicate done/failed records (a crash between append and
// acknowledgement) do not double-complete, and out-of-order duplicates
// from an interrupted compaction are ignored.
func (j *Journal) apply(ev Event) {
	if !ev.valid() {
		return // never fold a phantom event into the state
	}
	st, ok := j.state[ev.JobID]
	if !ok {
		st = &JobState{ID: ev.JobID, Status: StatusAccepted}
		j.state[ev.JobID] = st
		j.order = append(j.order, ev.JobID)
	}
	if ev.Key != "" {
		st.Key = ev.Key
	}
	switch ev.Kind {
	case KindAccepted:
		if len(ev.Request) > 0 && len(st.Request) == 0 {
			st.Request = ev.Request
		}
	case KindRunning:
		if !st.Terminal() {
			st.Status = StatusRunning
		}
	case KindDone:
		if !st.Terminal() {
			st.Status = StatusDone
			st.Result = ev.Result
			st.Outcome = ev.Outcome
		}
	case KindFailed:
		if !st.Terminal() {
			st.Status = StatusFailed
			st.Error = ev.Error
		}
	}
}

// encodeFrame renders one event as a length- and checksum-framed record.
func encodeFrame(ev Event) ([]byte, error) {
	payload, err := json.Marshal(ev)
	if err != nil {
		return nil, fmt.Errorf("journal: encode: %w", err)
	}
	if len(payload) > maxRecord {
		return nil, fmt.Errorf("journal: record of %d bytes exceeds the %d-byte cap", len(payload), maxRecord)
	}
	frame := make([]byte, frameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeader:], payload)
	return frame, nil
}

// Append durably writes one event: frame, write, fsync, then rotate when
// the active segment crossed the size threshold. The event is visible to a
// subsequent recovery the moment Append returns.
func (j *Journal) Append(ev Event) error {
	frame, err := encodeFrame(ev)
	if err != nil {
		return err
	}

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.active == nil {
		return fmt.Errorf("journal: closed")
	}
	if _, err := j.active.Write(frame); err != nil {
		return fmt.Errorf("journal: write: %w", err)
	}
	j.activeLen += int64(len(frame))
	if !j.opts.NoSync {
		start := time.Now()
		if err := j.active.Sync(); err != nil {
			return fmt.Errorf("journal: fsync: %w", err)
		}
		j.fsync.Observe(time.Since(start))
	}
	j.appends++
	j.apply(ev)
	if j.activeLen >= j.opts.SegmentBytes {
		if err := j.rotateLocked(); err != nil {
			return err
		}
	}
	return nil
}

// rotateLocked closes the active segment, opens the next one, and compacts
// everything older than the new active segment. Callers hold j.mu.
func (j *Journal) rotateLocked() error {
	if err := j.active.Close(); err != nil {
		return fmt.Errorf("journal: close segment: %w", err)
	}
	oldSeqs, err := j.listSegments()
	if err != nil {
		return err
	}
	if err := j.openActive(j.activeSeq+1, 0); err != nil {
		return err
	}
	if err := j.syncDir(); err != nil {
		return err
	}
	j.rotations++
	j.segments = len(oldSeqs) + 1
	return j.compactLocked(oldSeqs)
}

// compactLocked rewrites the segments in seqs (all older than the active
// one) into a single segment holding the minimal replayable state:
// interrupted jobs in full, the newest RetainFinished terminal jobs as
// accepted+terminal pairs, older terminal jobs dropped. The merged segment
// atomically replaces the lowest input segment — it keeps that sequence
// number, so it replays before the active segment — and the rest are
// deleted afterwards. A crash between those two steps leaves extra
// segments whose events are a subset of the merged ones; replay is
// idempotent, so nothing is lost or doubled. Callers hold j.mu.
func (j *Journal) compactLocked(seqs []int) error {
	if len(seqs) == 0 {
		return nil
	}
	// Decide retention: walk terminal jobs newest-first.
	terminalSeen := 0
	drop := map[string]bool{}
	for i := len(j.order) - 1; i >= 0; i-- {
		st := j.state[j.order[i]]
		if !st.Terminal() {
			continue
		}
		terminalSeen++
		if terminalSeen > j.opts.RetainFinished {
			drop[st.ID] = true
		}
	}

	tmp := filepath.Join(j.dir, "compact.tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	writeEvent := func(ev Event) error {
		frame, err := encodeFrame(ev)
		if err != nil {
			return err
		}
		_, err = f.Write(frame)
		return err
	}
	for _, id := range j.order {
		if drop[id] {
			continue
		}
		st := j.state[id]
		if err := j.writeState(writeEvent, st); err != nil {
			if cerr := f.Close(); cerr != nil {
				return fmt.Errorf("%w (and close: %v)", err, cerr)
			}
			return err
		}
	}
	if err := f.Sync(); err != nil {
		if cerr := f.Close(); cerr != nil {
			return fmt.Errorf("journal: compact fsync: %w (and close: %v)", err, cerr)
		}
		return fmt.Errorf("journal: compact fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: compact close: %w", err)
	}
	if err := os.Rename(tmp, j.segmentPath(seqs[0])); err != nil {
		return fmt.Errorf("journal: compact rename: %w", err)
	}
	if err := j.syncDir(); err != nil {
		return err
	}
	for _, seq := range seqs[1:] {
		if err := os.Remove(j.segmentPath(seq)); err != nil {
			return fmt.Errorf("journal: compact remove: %w", err)
		}
	}
	if err := j.syncDir(); err != nil {
		return err
	}
	// Apply retention to the in-memory state too, so memory stays bounded
	// and the next compaction does not resurrect dropped jobs.
	if len(drop) > 0 {
		kept := j.order[:0]
		for _, id := range j.order {
			if drop[id] {
				delete(j.state, id)
				j.dropped++
				continue
			}
			kept = append(kept, id)
		}
		j.order = kept
	}
	j.compactions++
	j.segments = 2 // the compacted segment plus the active one
	return nil
}

// writeState emits the minimal events that reproduce st on replay.
func (j *Journal) writeState(writeEvent func(Event) error, st *JobState) error {
	if err := writeEvent(Event{Kind: KindAccepted, JobID: st.ID, Key: st.Key, Request: st.Request}); err != nil {
		return fmt.Errorf("journal: compact write: %w", err)
	}
	var final *Event
	switch st.Status {
	case StatusRunning:
		final = &Event{Kind: KindRunning, JobID: st.ID}
	case StatusDone:
		final = &Event{Kind: KindDone, JobID: st.ID, Key: st.Key, Result: st.Result, Outcome: st.Outcome}
	case StatusFailed:
		final = &Event{Kind: KindFailed, JobID: st.ID, Error: st.Error}
	}
	if final != nil {
		if err := writeEvent(*final); err != nil {
			return fmt.Errorf("journal: compact write: %w", err)
		}
	}
	return nil
}

// syncDir fsyncs the journal directory so file creations, renames and
// removals are durable.
func (j *Journal) syncDir() error {
	d, err := os.Open(j.dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("journal: dir fsync: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("journal: dir close: %w", cerr)
	}
	return nil
}

// Stats snapshots the journal's counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Stats{
		Appends:     j.appends,
		Rotations:   j.rotations,
		Compactions: j.compactions,
		DroppedJobs: j.dropped,
		TornBytes:   j.tornBytes,
		Segments:    j.segments,
		ActiveBytes: j.activeLen,
		FsyncNS:     j.fsync.Snapshot(),
	}
}

// Close syncs and closes the active segment. Further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.active == nil {
		return nil
	}
	f := j.active
	j.active = nil
	if !j.opts.NoSync {
		if err := f.Sync(); err != nil {
			if cerr := f.Close(); cerr != nil {
				return fmt.Errorf("journal: close fsync: %w (and close: %v)", err, cerr)
			}
			return fmt.Errorf("journal: close fsync: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: close: %w", err)
	}
	return nil
}

// DecodeSegment parses one segment's bytes into its events and returns the
// clean prefix length: the offset after the last whole, checksum-valid
// record. Decoding stops — without error — at the first torn or corrupt
// frame, which is how a crash mid-append (or bit rot caught by the CRC)
// degrades to losing only the tail records, never the whole segment.
func DecodeSegment(data []byte) (events []Event, clean int64) {
	off := 0
	for {
		if len(data)-off < frameHeader {
			return events, int64(off)
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n > maxRecord || n > len(data)-off-frameHeader {
			return events, int64(off)
		}
		payload := data[off+frameHeader : off+frameHeader+n]
		if crc32.ChecksumIEEE(payload) != sum {
			return events, int64(off)
		}
		var ev Event
		if err := json.Unmarshal(payload, &ev); err != nil {
			return events, int64(off)
		}
		if !ev.valid() {
			// A checksum can validate garbage that still parses as JSON:
			// a zero-length payload frame is all zero bytes (CRC32 of the
			// empty string is 0), and a torn tail overwritten with "null"
			// or "{}" decodes into a zero Event. Folding such a phantom
			// into the state would create a job with no ID; treat it as
			// corruption and stop at the clean prefix instead.
			return events, int64(off)
		}
		events = append(events, ev)
		off += frameHeader + n
	}
}

// valid reports whether a decoded event could have been produced by
// encodeFrame: a real lifecycle kind attached to a real job.
func (ev Event) valid() bool {
	if ev.JobID == "" {
		return false
	}
	switch ev.Kind {
	case KindAccepted, KindRunning, KindDone, KindFailed:
		return true
	}
	return false
}
