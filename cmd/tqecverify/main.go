// Command tqecverify runs the pipeline's differential and invariant
// verifier (package check) against paper benchmarks and randomized
// circuits: bridging reconstructability, placement and routing legality,
// volume accounting, and the determinism differentials (multi-chain vs
// sequential placement, concurrent vs serial routing, cached vs fresh
// compile bytes, bridged vs unbridged compilation, and ZX-rewritten vs
// unrewritten compilation — the last two with state-vector backing on
// small circuits).
//
// Usage:
//
//	tqecverify [-bench name|all|seed] [-random N] [-qubits Q] [-gates G]
//	           [-seed S] [-iters N] [-no-diff] [-timeout 10m] [-v]
//
// The default workload (-bench seed) verifies the two smallest paper
// benchmarks — the configuration `make check` runs in CI. -bench all
// sweeps all eight benchmarks (slow: the large ones take many minutes
// each). -random N appends N randomized circuits; when a randomized
// circuit fails, tqecverify shrinks it to a minimal failing reproduction
// before exiting non-zero.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/check"
	"repro/internal/qc"
)

func main() {
	bench := flag.String("bench", "seed", `benchmarks to verify: a name, "all", or "seed" (the two smallest)`)
	random := flag.Int("random", 0, "additionally verify this many randomized circuits")
	qubits := flag.Int("qubits", 5, "qubit count for randomized circuits")
	gates := flag.Int("gates", 8, "gate count for randomized circuits")
	seed := flag.Int64("seed", 1, "base seed for randomized circuits and the SA engine")
	iters := flag.Int("iters", 0, "SA move budget (0 = the fast default)")
	noDiff := flag.Bool("no-diff", false, "run only the invariant passes (skip recompiling differentials)")
	timeout := flag.Duration("timeout", 0, "abort verification after this long (0 = no limit)")
	verbose := flag.Bool("v", false, "print every pass, not only failures")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	cfg := check.DefaultConfig()
	cfg.Differentials = !*noDiff
	cfg.Opts.Place.Seed = *seed
	if *iters > 0 {
		cfg.Opts.Place.Iterations = *iters
	}

	failures := 0
	report := func(rep *check.Report) {
		if *verbose || !rep.OK() {
			fmt.Print(rep)
		} else {
			fmt.Printf("%s: ok (%d passes)\n", rep.Target, len(rep.Passes))
		}
		if !rep.OK() {
			failures++
		}
	}

	for _, name := range benchNames(*bench) {
		rep, err := check.RunBenchmark(ctx, name, cfg)
		if err != nil {
			fatal(err)
		}
		report(rep)
	}

	rng := rand.New(rand.NewSource(*seed))
	for i := 0; i < *random; i++ {
		c, err := randomCircuit(rng, *qubits, *gates, i)
		if err != nil {
			fatal(err)
		}
		rep, err := check.Run(ctx, c, cfg)
		if err != nil {
			fatal(err)
		}
		report(rep)
		if !rep.OK() {
			shrinkAndPrint(ctx, c, cfg)
		}
	}

	if failures > 0 {
		fmt.Fprintf(os.Stderr, "tqecverify: %d target(s) failed\n", failures)
		os.Exit(1)
	}
}

// benchNames expands the -bench flag into benchmark names.
func benchNames(sel string) []string {
	switch sel {
	case "seed":
		return []string{"4gt10-v1_81", "4gt4-v0_73"}
	case "all":
		var names []string
		for _, b := range qc.Benchmarks {
			names = append(names, b.Name)
		}
		return names
	case "":
		return nil
	}
	return []string{sel}
}

// randomCircuit generates one randomized verification workload.
func randomCircuit(rng *rand.Rand, qubits, gates, index int) (*qc.Circuit, error) {
	spec := qc.BenchmarkSpec{
		Name:   fmt.Sprintf("random-%d", index),
		Qubits: qubits,
		Seed:   rng.Int63(),
	}
	for i := 0; i < gates; i++ {
		switch {
		case qubits >= 3 && rng.Intn(3) == 0:
			spec.Toffolis++
		case qubits >= 2 && rng.Intn(2) == 0:
			spec.CNOTs++
		default:
			spec.NOTs++
		}
	}
	return spec.Generate()
}

// shrinkAndPrint reduces a failing randomized circuit to a minimal
// reproduction and prints it.
func shrinkAndPrint(ctx context.Context, c *qc.Circuit, cfg check.Config) {
	fmt.Fprintf(os.Stderr, "tqecverify: shrinking %s (%d gates) to a minimal reproduction...\n", c.Name, c.NumGates())
	shrinkCfg := cfg
	shrinkCfg.Differentials = false // invariant failures shrink much faster
	start := time.Now()
	min := check.Shrink(ctx, c, 0, func(ctx context.Context, cand *qc.Circuit) bool {
		rep, err := check.Run(ctx, cand, shrinkCfg)
		if err != nil {
			return false // a compile error is a different failure mode
		}
		return !rep.OK()
	})
	fmt.Fprintf(os.Stderr, "tqecverify: minimal failing circuit after %v: %d qubits, %d gates\n",
		time.Since(start).Round(time.Millisecond), min.NumQubits(), min.NumGates())
	for _, g := range min.Gates {
		fmt.Fprintf(os.Stderr, "tqecverify:   %v\n", g)
	}
}

// fatal prints the error and exits non-zero.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tqecverify:", err)
	os.Exit(1)
}
