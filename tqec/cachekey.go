package tqec

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"

	"repro/internal/decompose"
	"repro/internal/icm"
	"repro/internal/qc"
)

// cacheKeyVersion tags the option-encoding layout hashed into CacheKey;
// bump it whenever a semantic Options field is added or the encoding
// changes so old addresses can never alias new configurations.
const cacheKeyVersion = 4

// CanonicalOptions returns a copy of opts normalized for content
// addressing: non-semantic fields are cleared (Hooks callbacks, the
// route fault-injection hook, the stage-timing Clock, the Serial
// debugging toggle, which is provably equivalent to the batched pass) and
// out-of-range values are
// clamped exactly the way the pipeline clamps them, so two Options values
// that compile identically canonicalize — and therefore hash — identically.
func CanonicalOptions(opts Options) Options {
	opts.Hooks = Hooks{}
	opts.Route.FailNet = nil
	opts.Route.Serial = false
	opts.Route.Clock = nil
	if opts.Retry.MaxAttempts < 1 {
		opts.Retry.MaxAttempts = 1
	}
	if opts.Retry.Escalation <= 1 {
		opts.Retry.Escalation = 2
	}
	if opts.PrimalGap < 1 {
		opts.PrimalGap = 1
	}
	// Restarts ≥ 2 takes precedence over Chains (legacy multi-start
	// semantics), so Chains is then irrelevant to the result.
	if opts.Place.Restarts >= 2 {
		opts.Place.Chains = 0
	}
	// A non-positive partition cap is pass-through, under which the
	// partition seed never feeds a PRNG.
	if opts.Partition.MaxQubitsPerPart <= 0 {
		opts.Partition.MaxQubitsPerPart = 0
		opts.Partition.Seed = 0
	}
	return opts
}

// CacheKey returns the canonical content address of a compilation: the hex
// SHA-256 of the circuit's deterministic ICM byte encoding concatenated
// with the normalized options. Two (circuit, options) pairs share an
// address iff CompileContext would produce the same result for both (up to
// wall-clock), so the address is safe to use as a result-cache key. The
// circuit is decomposed and ICM-converted to compute the address; both are
// deterministic and cheap next to a compilation.
func CacheKey(c *qc.Circuit, opts Options) (string, error) {
	d, err := decompose.Decompose(c)
	if err != nil {
		return "", fmt.Errorf("cache key: %w", err)
	}
	ic, err := icm.FromDecomposed(d.Circuit)
	if err != nil {
		return "", fmt.Errorf("cache key: %w", err)
	}
	return CacheKeyICM(ic, opts)
}

// CacheKeyICM is CacheKey for circuits already in ICM form (the
// CompileICMContext entry point).
func CacheKeyICM(ic *icm.Circuit, opts Options) (string, error) {
	if ic == nil {
		return "", fmt.Errorf("cache key: nil ICM circuit")
	}
	b := ic.AppendCanonical(nil)
	b = appendOptions(b, CanonicalOptions(opts))
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}

// appendOptions appends a fixed-order binary encoding of every semantic
// Options field. Field order is frozen per cacheKeyVersion.
func appendOptions(b []byte, o Options) []byte {
	b = append(b, 'o', 'p', 't', cacheKeyVersion)
	b = appendBool(b, o.Bridging)
	b = appendBool(b, o.ZX)
	b = appendBool(b, o.PrimalGroups)
	b = appendI64(b, int64(o.MaxGroupSize))
	b = appendBool(b, o.NoBoxes)
	b = appendI64(b, int64(o.PrimalGap))
	b = appendBool(b, o.StrictRouting)
	b = appendI64(b, int64(o.Retry.MaxAttempts))
	b = appendF64(b, o.Retry.Escalation)

	b = appendI64(b, int64(o.Place.Tiers))
	b = appendI64(b, int64(o.Place.Iterations))
	b = appendI64(b, o.Place.Seed)
	b = appendF64(b, o.Place.Alpha)
	b = appendF64(b, o.Place.Beta)
	b = appendF64(b, o.Place.Gamma)
	b = appendF64(b, o.Place.AspectTarget)
	b = appendI64(b, int64(o.Place.Margin))
	b = appendF64(b, o.Place.InitialTemp)
	b = appendF64(b, o.Place.FinalTemp)
	b = appendI64(b, int64(o.Place.TierPitch))
	b = appendI64(b, int64(o.Place.Restarts))
	b = appendI64(b, int64(o.Place.Chains))

	b = appendI64(b, int64(o.Route.MaxIterations))
	b = appendI64(b, int64(o.Route.InitialMargin))
	b = appendI64(b, int64(o.Route.ExpandStep))
	b = appendF64(b, o.Route.HistoryWeight)
	b = appendBool(b, o.Route.FriendNets)
	b = appendI64(b, int64(o.Route.MaxExpansions))
	b = appendBool(b, o.Route.Fallback)
	b = appendBool(b, o.Route.Bidirectional)
	b = appendBool(b, o.Route.Steiner)

	b = appendI64(b, int64(o.Partition.MaxQubitsPerPart))
	b = appendI64(b, o.Partition.Seed)
	return b
}

// appendI64 appends a little-endian int64.
func appendI64(b []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(b, uint64(v))
}

// appendF64 appends a float64's IEEE-754 bits.
func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// appendBool appends one byte, 0 or 1.
func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}
