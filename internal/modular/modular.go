// Package modular implements modularization (Asai & Yamashita; Section II-C
// of the paper): it derives, from the canonical geometric description of an
// ICM circuit, a set of primal-loop modules with enclosed dual segments,
// the dual loops penetrating them, and the pins through which dual-defect
// nets will later reconnect the loops.
//
// Derivation rules (documented in DESIGN.md):
//
//   - Each CNOT contributes one ancillary dual loop. In canonical form the
//     loop is a vertical ring at the CNOT's time slot spanning every line
//     between control and target inclusive; each crossed line is a
//     penetration whose dual segment is kept inside that line's module to
//     preserve the braiding relationship.
//   - Penetrations of one line at adjacent canonical slots are grouped into
//     a single module (a contiguous stretch of the line's primal loop);
//     penetrations separated by a slot gap start a new module.
//   - Each penetration is a dual segment with two pins (the points where
//     the segment leaves the primal loop).
//
// Modules additionally record the measurement/injection roles needed by
// module clustering: |Y⟩/|A⟩ injection sites and the modules carrying the
// time-ordered measurements of T-gate blocks.
package modular

import (
	"fmt"
	"sort"

	"repro/internal/canonical"
	"repro/internal/icm"
)

// ModuleKind classifies a module's special role, if any.
type ModuleKind int

// Module roles.
const (
	KindNormal  ModuleKind = iota
	KindInjectY            // first module of a |Y⟩-injected line
	KindInjectA            // first module of an |A⟩-injected line
)

// String returns a short mnemonic.
func (k ModuleKind) String() string {
	switch k {
	case KindNormal:
		return "normal"
	case KindInjectY:
		return "injectY"
	case KindInjectA:
		return "injectA"
	}
	return fmt.Sprintf("ModuleKind(%d)", int(k))
}

// Pin is one end of a dual segment on a module boundary.
type Pin struct {
	ID      int
	Module  int // module ID
	Segment int // segment ID
	End     int // 0 or 1: which end of the segment
}

// Segment is the part of a dual loop kept inside one module.
type Segment struct {
	ID     int
	Loop   int // dual loop (CNOT) ID
	Module int
	Pins   [2]int // pin IDs
	// Removed is set by bridging when the loop reuses a shared segment
	// through this module instead of its own.
	Removed bool
}

// Module is a primal loop stretch enclosing dual segments.
type Module struct {
	ID   int
	Line int // originating ICM line
	Kind ModuleKind
	// SlotLo and SlotHi bound the canonical slots grouped into this
	// module (inclusive).
	SlotLo, SlotHi int
	// Segments are the dual segment IDs enclosed, in slot order.
	Segments []int
	// Index is this module's position among the line's modules.
	Index int
}

// Loop is one dual loop (one per CNOT).
type Loop struct {
	ID int // = CNOT ID
	// Modules lists penetrated modules in ring order (by line index).
	Modules []int
	// Segments lists the loop's segment IDs, parallel to Modules.
	Segments []int
}

// Netlist is the modularized circuit.
type Netlist struct {
	ICM      *icm.Circuit
	Canon    *canonical.Description
	Modules  []Module
	Segments []Segment
	Pins     []Pin
	Loops    []Loop
	// ModulesOfLine indexes modules by originating line, in slot order.
	ModulesOfLine [][]int
	// ZMeasModule maps each TGroup ID to the module carrying the group's
	// first (Z-basis) measurement: the last module of the consumed line.
	ZMeasModule []int
	// TeleportModules maps each TGroup ID to the modules carrying its
	// four selective teleportation measurements.
	TeleportModules [][4]int
}

// Build modularizes the canonical description with the default grouping
// (penetrations at adjacent slots share a module).
func Build(d *canonical.Description) (*Netlist, error) {
	return BuildWithGap(d, 1)
}

// BuildWithGap modularizes with a configurable slot gap: penetrations of
// one line whose canonical slots differ by at most gap share a module.
// gap = 1 is the paper's modularization; larger gaps realize *primal
// bridging* — the same-type-structure merging Fowler & Devitt allow but
// the paper leaves unexplored ("we only add a bridge between dual
// structures to simplify"): two stretches of a line's primal loop are
// fused across the idle slots between them, trading a longer shared primal
// loop for fewer, denser modules.
func BuildWithGap(d *canonical.Description, gap int) (*Netlist, error) {
	if gap < 1 {
		return nil, fmt.Errorf("modular: gap must be ≥ 1, got %d", gap)
	}
	ic := d.ICM
	nl := &Netlist{ICM: ic, Canon: d, ModulesOfLine: make([][]int, len(ic.Lines))}

	// Collect penetrations per line: (slot, loop) pairs.
	type pen struct{ slot, loop int }
	perLine := make([][]pen, len(ic.Lines))
	for id := range ic.CNOTs {
		for _, line := range d.Penetrations(id) {
			perLine[line] = append(perLine[line], pen{slot: d.Slot[id], loop: id})
		}
	}

	// Group per-line penetrations at adjacent slots into modules.
	loopSegs := make(map[int][]int) // loop -> segment IDs in creation order
	for line := range perLine {
		pens := perLine[line]
		sort.Slice(pens, func(i, j int) bool { return pens[i].slot < pens[j].slot })
		var cur *Module
		for _, p := range pens {
			if cur == nil || p.slot > cur.SlotHi+gap {
				id := len(nl.Modules)
				nl.Modules = append(nl.Modules, Module{
					ID:     id,
					Line:   line,
					Kind:   KindNormal,
					SlotLo: p.slot,
					SlotHi: p.slot,
					Index:  len(nl.ModulesOfLine[line]),
				})
				nl.ModulesOfLine[line] = append(nl.ModulesOfLine[line], id)
				cur = &nl.Modules[id]
			} else {
				cur.SlotHi = p.slot
			}
			segID := len(nl.Segments)
			p0 := nl.newPin(cur.ID, segID, 0)
			p1 := nl.newPin(cur.ID, segID, 1)
			nl.Segments = append(nl.Segments, Segment{
				ID:     segID,
				Loop:   p.loop,
				Module: cur.ID,
				Pins:   [2]int{p0, p1},
			})
			cur.Segments = append(cur.Segments, segID)
			loopSegs[p.loop] = append(loopSegs[p.loop], segID)
		}
	}

	// Assemble loops in ring order (ascending line, which is the order the
	// segments were created in since lines are processed in order).
	nl.Loops = make([]Loop, len(ic.CNOTs))
	for id := range ic.CNOTs {
		l := Loop{ID: id}
		for _, segID := range loopSegs[id] {
			l.Segments = append(l.Segments, segID)
			l.Modules = append(l.Modules, nl.Segments[segID].Module)
		}
		nl.Loops[id] = l
	}

	// Mark injection modules: the first module of each injected line.
	for _, line := range ic.Lines {
		mods := nl.ModulesOfLine[line.ID]
		if len(mods) == 0 {
			continue
		}
		switch line.Init {
		case icm.InjectY:
			nl.Modules[mods[0]].Kind = KindInjectY
		case icm.InjectA:
			nl.Modules[mods[0]].Kind = KindInjectA
		}
	}

	// Resolve measurement modules for T groups: a line's measurement
	// happens at its end, i.e. in its last module.
	nl.ZMeasModule = make([]int, len(ic.TGroups))
	nl.TeleportModules = make([][4]int, len(ic.TGroups))
	for gi, tg := range ic.TGroups {
		zm, err := nl.lastModuleOf(tg.ZMeasLine)
		if err != nil {
			return nil, fmt.Errorf("modular: tgroup %d: %w", gi, err)
		}
		nl.ZMeasModule[gi] = zm
		for k, lineID := range tg.TeleportLines {
			m, err := nl.lastModuleOf(lineID)
			if err != nil {
				return nil, fmt.Errorf("modular: tgroup %d: %w", gi, err)
			}
			nl.TeleportModules[gi][k] = m
		}
	}
	return nl, nil
}

func (nl *Netlist) newPin(module, segment, end int) int {
	id := len(nl.Pins)
	nl.Pins = append(nl.Pins, Pin{ID: id, Module: module, Segment: segment, End: end})
	return id
}

func (nl *Netlist) lastModuleOf(line int) (int, error) {
	mods := nl.ModulesOfLine[line]
	if len(mods) == 0 {
		return 0, fmt.Errorf("line %d has no modules (no CNOT touches it)", line)
	}
	return mods[len(mods)-1], nil
}

// LiveSegments returns the number of segments not removed by bridging.
func (nl *Netlist) LiveSegments() int {
	n := 0
	for _, s := range nl.Segments {
		if !s.Removed {
			n++
		}
	}
	return n
}

// LiveSegmentsOf returns the non-removed segment IDs of module m, in slot
// order.
func (nl *Netlist) LiveSegmentsOf(m int) []int {
	var out []int
	for _, segID := range nl.Modules[m].Segments {
		if !nl.Segments[segID].Removed {
			out = append(out, segID)
		}
	}
	return out
}

// CommonModules returns the modules penetrated by both loops, in ring
// order of loop a.
func (nl *Netlist) CommonModules(a, b int) []int {
	inB := map[int]bool{}
	for _, m := range nl.Loops[b].Modules {
		inB[m] = true
	}
	var out []int
	for _, m := range nl.Loops[a].Modules {
		if inB[m] {
			out = append(out, m)
		}
	}
	return out
}

// RelativeLoops returns, for each loop, the set of other loops sharing at
// least one module (its "relative loops", Section III-B), as adjacency
// lists keyed by loop ID.
func (nl *Netlist) RelativeLoops() [][]int {
	loopsOfModule := make([][]int, len(nl.Modules))
	for _, l := range nl.Loops {
		for _, m := range l.Modules {
			loopsOfModule[m] = append(loopsOfModule[m], l.ID)
		}
	}
	seen := make([]map[int]bool, len(nl.Loops))
	for i := range seen {
		seen[i] = map[int]bool{}
	}
	out := make([][]int, len(nl.Loops))
	for _, loops := range loopsOfModule {
		for i := 0; i < len(loops); i++ {
			for j := i + 1; j < len(loops); j++ {
				a, b := loops[i], loops[j]
				if a == b || seen[a][b] {
					continue
				}
				seen[a][b], seen[b][a] = true, true
				out[a] = append(out[a], b)
				out[b] = append(out[b], a)
			}
		}
	}
	return out
}

// Validate checks structural invariants: segment/pin back-references, loop
// ring order, and module slot grouping.
func (nl *Netlist) Validate() error {
	for i, p := range nl.Pins {
		if p.ID != i {
			return fmt.Errorf("pin %d has ID %d", i, p.ID)
		}
		if p.Segment < 0 || p.Segment >= len(nl.Segments) {
			return fmt.Errorf("pin %d: bad segment", i)
		}
		if nl.Segments[p.Segment].Pins[p.End] != i {
			return fmt.Errorf("pin %d: segment back-reference broken", i)
		}
	}
	for i, s := range nl.Segments {
		if s.ID != i {
			return fmt.Errorf("segment %d has ID %d", i, s.ID)
		}
		if s.Module < 0 || s.Module >= len(nl.Modules) {
			return fmt.Errorf("segment %d: bad module", i)
		}
		if s.Loop < 0 || s.Loop >= len(nl.Loops) {
			return fmt.Errorf("segment %d: bad loop", i)
		}
	}
	for i, m := range nl.Modules {
		if m.ID != i {
			return fmt.Errorf("module %d has ID %d", i, m.ID)
		}
		if m.SlotHi < m.SlotLo {
			return fmt.Errorf("module %d: inverted slots", i)
		}
		for _, segID := range m.Segments {
			if nl.Segments[segID].Module != i {
				return fmt.Errorf("module %d: segment %d back-reference broken", i, segID)
			}
		}
	}
	for i, l := range nl.Loops {
		if l.ID != i {
			return fmt.Errorf("loop %d has ID %d", i, l.ID)
		}
		if len(l.Modules) != len(l.Segments) {
			return fmt.Errorf("loop %d: modules/segments length mismatch", i)
		}
		if len(l.Modules) == 0 {
			return fmt.Errorf("loop %d penetrates no module", i)
		}
		for k, segID := range l.Segments {
			s := nl.Segments[segID]
			if s.Loop != i {
				return fmt.Errorf("loop %d: segment %d belongs to loop %d", i, segID, s.Loop)
			}
			if s.Module != l.Modules[k] {
				return fmt.Errorf("loop %d: ring order broken at %d", i, k)
			}
		}
	}
	return nil
}

// Stats summarizes the modularization for Table I.
type Stats struct {
	Modules  int
	Segments int
	Loops    int
	Pins     int
}

// Stats tallies the netlist.
func (nl *Netlist) Stats() Stats {
	return Stats{
		Modules:  len(nl.Modules),
		Segments: len(nl.Segments),
		Loops:    len(nl.Loops),
		Pins:     len(nl.Pins),
	}
}
