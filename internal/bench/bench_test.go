package bench

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/tqec"
)

// stubCompile returns a Compile hook that fabricates deterministic
// results without running the pipeline.
func stubCompile(totalMS int64) func(context.Context, string, int64) (*tqec.Result, error) {
	return func(_ context.Context, name string, _ int64) (*tqec.Result, error) {
		res := &tqec.Result{Breakdown: metrics.NewBreakdown()}
		res.Breakdown.Add(metrics.StagePlacement, time.Duration(totalMS)*time.Millisecond/2)
		res.Breakdown.Add(metrics.StageRouting, time.Duration(totalMS)*time.Millisecond/2)
		res.Volume = 1000 + len(name)
		res.CanonicalVolume = 4000
		res.Dims = metrics.Dims{W: 10, H: 10, D: 10 + len(name)}
		return res, nil
	}
}

func stubFile(t *testing.T, totalMS int64) *File {
	t.Helper()
	f, err := Run(Options{
		Name:       "test",
		Suite:      []string{"a", "b"},
		Iterations: 2,
		Seed:       1,
		Compile:    stubCompile(totalMS),
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestRunProducesValidArtifact(t *testing.T) {
	f := stubFile(t, 1)
	if err := Validate(f); err != nil {
		t.Fatal(err)
	}
	if f.Schema != SchemaVersion || f.Iterations != 2 || len(f.Circuits) != 2 {
		t.Fatalf("unexpected artifact shape: %+v", f)
	}
	c := f.Circuits[0]
	if c.Total.MinNS <= 0 || c.Total.MaxNS < c.Total.MeanNS || c.Total.MeanNS < c.Total.MinNS {
		t.Fatalf("inconsistent total stat: %+v", c.Total)
	}
	if len(c.Stages) != 2 {
		t.Fatalf("want 2 stages, got %+v", c.Stages)
	}
	if c.Volume == 0 || c.CompressionRatio == 0 || c.Dims == "" {
		t.Fatalf("compression metrics missing: %+v", c)
	}
}

// TestFileRoundTrip pins that WriteFile output reads back identically
// enough to validate (the bench-smoke CI gate in miniature).
func TestFileRoundTrip(t *testing.T) {
	f := stubFile(t, 1)
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != f.Name || back.Seed != f.Seed || len(back.Circuits) != len(f.Circuits) {
		t.Fatalf("round trip lost data: %+v vs %+v", back, f)
	}
	if back.Circuits[0].Total != f.Circuits[0].Total {
		t.Fatalf("round trip changed stats: %+v vs %+v", back.Circuits[0].Total, f.Circuits[0].Total)
	}
}

// TestValidateRejectsMalformed covers the schema guard rails.
func TestValidateRejectsMalformed(t *testing.T) {
	cases := map[string]func(*File){
		"wrong schema":     func(f *File) { f.Schema = SchemaVersion + 1 },
		"no circuits":      func(f *File) { f.Circuits = nil },
		"unnamed circuit":  func(f *File) { f.Circuits[0].Name = "" },
		"dup circuit":      func(f *File) { f.Circuits[1].Name = f.Circuits[0].Name },
		"zero total":       func(f *File) { f.Circuits[0].Total = Stat{} },
		"inverted stat":    func(f *File) { f.Circuits[0].Total = Stat{MinNS: 10, MeanNS: 5, MaxNS: 20} },
		"zero iterations":  func(f *File) { f.Iterations = 0 },
		"missing volume":   func(f *File) { f.Circuits[0].Volume = 0 },
		"unnamed stage":    func(f *File) { f.Circuits[0].Stages[0].Name = "" },
		"bad kernel ns/op": func(f *File) { f.Kernels = []Kernel{{Name: "k"}} },
	}
	for name, corrupt := range cases {
		f := stubFile(t, 1)
		corrupt(f)
		if err := Validate(f); err == nil {
			t.Errorf("%s: Validate accepted a malformed artifact", name)
		}
	}
}

// TestCompareFlagsInjectedSlowdown pins the acceptance criterion: a >10%
// slowdown injected into the new artifact must be reported as a
// regression, while an identical artifact must not.
func TestCompareFlagsInjectedSlowdown(t *testing.T) {
	old := stubFile(t, 2)
	same, err := Compare(old, old, DefaultThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if regs := same.Regressions(); len(regs) != 0 {
		t.Fatalf("self-comparison flagged regressions: %+v", regs)
	}

	slow := copyFile(old)
	for i := range slow.Circuits {
		c := &slow.Circuits[i]
		c.Total.MinNS = c.Total.MinNS * 125 / 100
		c.Total.MeanNS = c.Total.MinNS
		c.Total.MaxNS = c.Total.MinNS
	}
	rep, err := Compare(old, slow, DefaultThreshold)
	if err != nil {
		t.Fatal(err)
	}
	regs := rep.Regressions()
	if len(regs) != len(old.Circuits) {
		t.Fatalf("want %d total-time regressions, got %+v", len(old.Circuits), regs)
	}
	for _, d := range regs {
		if !strings.HasSuffix(d.Metric, "/total") {
			t.Fatalf("unexpected regression metric %q", d.Metric)
		}
		if d.Ratio < 1.2 {
			t.Fatalf("ratio %v implausible for a 25%% slowdown", d.Ratio)
		}
	}
}

// copyFile deep-copies an artifact so tests can perturb one side of a
// comparison without aliasing.
func copyFile(f *File) *File {
	out := *f
	out.Circuits = append([]Circuit(nil), f.Circuits...)
	for i := range out.Circuits {
		out.Circuits[i].Stages = append([]StageTime(nil), f.Circuits[i].Stages...)
	}
	out.Kernels = append([]Kernel(nil), f.Kernels...)
	if f.Partitioned != nil {
		p := *f.Partitioned
		out.Partitioned = &p
	}
	return &out
}

// TestCompareToleratesNoise pins that a sub-threshold delta passes.
func TestCompareToleratesNoise(t *testing.T) {
	old := stubFile(t, 2)
	noisy := copyFile(old)
	for i := range noisy.Circuits {
		c := &noisy.Circuits[i]
		c.Total.MinNS = old.Circuits[i].Total.MinNS * 105 / 100
		c.Total.MeanNS = c.Total.MinNS
		c.Total.MaxNS = c.Total.MinNS
	}
	rep, err := Compare(old, noisy, DefaultThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if regs := rep.Regressions(); len(regs) != 0 {
		t.Fatalf("5%% noise flagged as regression: %+v", regs)
	}
}

// TestCompareKernelsJudgesOnlyKernels pins the blocking-gate semantics:
// kernel slowdowns beyond the floor fail, stage and total slowdowns are
// invisible to the kernels-only comparison, and an old artifact without
// kernels refuses to gate at all.
func TestCompareKernelsJudgesOnlyKernels(t *testing.T) {
	old := stubFile(t, 2)
	old.Kernels = []Kernel{
		{Name: "zx/rewrite-extract", NSPerOp: 1000, AllocsPerOp: 10, BytesPerOp: 100},
		{Name: "place/sa-anneal", NSPerOp: 2000, AllocsPerOp: 10, BytesPerOp: 100},
	}

	// A huge circuit-time regression plus a tolerable kernel delta: the
	// kernels-only gate must stay green.
	cur := copyFile(old)
	for i := range cur.Circuits {
		c := &cur.Circuits[i]
		c.Total.MinNS *= 10
		c.Total.MeanNS = c.Total.MinNS
		c.Total.MaxNS = c.Total.MinNS
	}
	cur.Kernels[0].NSPerOp = 1400 // 1.4x, inside the 1.5x floor
	rep, err := CompareKernels(old, cur, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if regs := rep.Regressions(); len(regs) != 0 {
		t.Fatalf("kernels-only gate flagged non-kernel metrics: %+v", regs)
	}
	if len(rep.Deltas) != len(old.Kernels) {
		t.Fatalf("want %d kernel deltas, got %+v", len(old.Kernels), rep.Deltas)
	}
	for _, d := range rep.Deltas {
		if !strings.HasPrefix(d.Metric, "kernel/") {
			t.Fatalf("non-kernel metric %q judged", d.Metric)
		}
	}

	// A kernel past the floor must fail.
	slow := copyFile(old)
	slow.Kernels[1].NSPerOp = old.Kernels[1].NSPerOp * 2
	rep, err = CompareKernels(old, slow, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	regs := rep.Regressions()
	if len(regs) != 1 || regs[0].Metric != "kernel/place/sa-anneal" {
		t.Fatalf("2x kernel slowdown not flagged: %+v", regs)
	}

	// A dropped kernel is surfaced as missing coverage.
	short := copyFile(old)
	short.Kernels = short.Kernels[:1]
	rep, err = CompareKernels(old, short, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Missing) != 1 || !strings.Contains(rep.Missing[0], "place/sa-anneal") {
		t.Fatalf("dropped kernel not reported: %+v", rep.Missing)
	}

	// No kernels in the baseline: the gate must refuse, not pass vacuously.
	bare := copyFile(old)
	bare.Kernels = nil
	if _, err := CompareKernels(bare, cur, 0.5); err == nil {
		t.Fatal("kernel-less baseline accepted by the kernel gate")
	}
}

// stubPartitioned fabricates a plausible partitioned-compile section.
func stubPartitioned() *Partitioned {
	return &Partitioned{
		Circuit: "clustered24", Qubits: 24, Gates: 91, Cap: 6, Parts: 4, Seams: 3,
		Whole:   Stat{MinNS: 4000, MeanNS: 4500, MaxNS: 5000},
		Split:   Stat{MinNS: 2000, MeanNS: 2100, MaxNS: 2200},
		Speedup: 2, WholeVolume: 100, SplitVolume: 120,
	}
}

// TestValidateRejectsMalformedPartitioned covers the guard rails of the
// optional partitioned section.
func TestValidateRejectsMalformedPartitioned(t *testing.T) {
	f := stubFile(t, 1)
	f.Partitioned = stubPartitioned()
	if err := Validate(f); err != nil {
		t.Fatalf("well-formed partitioned section rejected: %v", err)
	}
	cases := map[string]func(*Partitioned){
		"unnamed circuit": func(p *Partitioned) { p.Circuit = "" },
		"zero cap":        func(p *Partitioned) { p.Cap = 0 },
		"zero parts":      func(p *Partitioned) { p.Parts = 0 },
		"zero whole stat": func(p *Partitioned) { p.Whole = Stat{} },
		"inverted split":  func(p *Partitioned) { p.Split = Stat{MinNS: 10, MeanNS: 5, MaxNS: 20} },
		"zero volume":     func(p *Partitioned) { p.SplitVolume = 0 },
	}
	for name, corrupt := range cases {
		f := stubFile(t, 1)
		f.Partitioned = stubPartitioned()
		corrupt(f.Partitioned)
		if err := Validate(f); err == nil {
			t.Errorf("%s: Validate accepted a malformed partitioned section", name)
		}
	}
}

// TestComparePartitionedSection pins that the partitioned wall times are
// judged like any other metric and a dropped section surfaces as missing
// coverage.
func TestComparePartitionedSection(t *testing.T) {
	old := stubFile(t, 1)
	old.Partitioned = stubPartitioned()
	slow := copyFile(old)
	slow.Partitioned.Split.MinNS *= 2
	slow.Partitioned.Split.MeanNS *= 2
	slow.Partitioned.Split.MaxNS *= 2
	rep, err := Compare(old, slow, DefaultThreshold)
	if err != nil {
		t.Fatal(err)
	}
	regs := rep.Regressions()
	if len(regs) != 1 || regs[0].Metric != "partitioned/split" {
		t.Fatalf("2x split slowdown not flagged: %+v", regs)
	}

	bare := copyFile(old)
	bare.Partitioned = nil
	rep, err = Compare(old, bare, DefaultThreshold)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range rep.Missing {
		if strings.Contains(m, "partitioned") {
			found = true
		}
	}
	if !found {
		t.Fatalf("dropped partitioned section not reported: %+v", rep.Missing)
	}
}

// TestRunPartitionedMeasuresRealCompiles runs the partitioned stage with
// the smallest workload through the real pipeline and checks the section
// is complete and internally consistent.
func TestRunPartitionedMeasuresRealCompiles(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real pipeline compiles")
	}
	p, err := runPartitioned(context.Background(), Options{Iterations: 1, Seed: 1, PartitionCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	if p.Qubits != 16 || p.Cap != 4 {
		t.Fatalf("workload shape: %+v", p)
	}
	if p.Parts < 2 || p.Seams < 1 {
		t.Fatalf("workload did not split: %+v", p)
	}
	if p.Whole.MinNS <= 0 || p.Split.MinNS <= 0 || p.Speedup <= 0 {
		t.Fatalf("missing measurements: %+v", p)
	}
	if p.WholeVolume <= 0 || p.SplitVolume <= 0 {
		t.Fatalf("missing volumes: %+v", p)
	}
	f := stubFile(t, 1)
	f.Partitioned = p
	if err := Validate(f); err != nil {
		t.Fatalf("real section fails validation: %v", err)
	}
}

// TestCompareReportsMissingMetrics pins that dropped coverage is
// surfaced instead of silently passing.
func TestCompareReportsMissingMetrics(t *testing.T) {
	old := stubFile(t, 1)
	cur := stubFile(t, 1)
	cur.Circuits = cur.Circuits[:1]
	rep, err := Compare(old, cur, DefaultThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Missing) != 1 || !strings.Contains(rep.Missing[0], old.Circuits[1].Name) {
		t.Fatalf("missing circuit not reported: %+v", rep.Missing)
	}
}
