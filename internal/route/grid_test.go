package route

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/place"
	"repro/internal/qc"
)

// forceSparseSearch routes subsequent runs through the map-based A*
// fallback regardless of region volume; the returned func restores the
// dense path.
func forceSparseSearch() func() {
	old := denseSearchLimit
	denseSearchLimit = 0
	return func() { denseSearchLimit = old }
}

// TestCellIndexerRoundTrip pins the index/point bijection over a small
// asymmetric box, including negative coordinates.
func TestCellIndexerRoundTrip(t *testing.T) {
	b := geom.NewBox(-2, 1, -3, 3, 4, 0)
	ci := newCellIndexer(b)
	if ci.volume() != b.Volume() {
		t.Fatalf("volume %d, want %d", ci.volume(), b.Volume())
	}
	seen := make([]bool, ci.volume())
	for x := b.Min.X; x < b.Max.X; x++ {
		for y := b.Min.Y; y < b.Max.Y; y++ {
			for z := b.Min.Z; z < b.Max.Z; z++ {
				p := geom.Pt(x, y, z)
				i := ci.index(p)
				if i < 0 || i >= ci.volume() {
					t.Fatalf("index(%v) = %d out of range", p, i)
				}
				if seen[i] {
					t.Fatalf("index %d assigned twice", i)
				}
				seen[i] = true
				if got := ci.point(i); got != p {
					t.Fatalf("point(index(%v)) = %v", p, got)
				}
			}
		}
	}
}

// TestGridDenseSparseAgree drives the dense grid and the map fallback
// through an identical operation sequence and asserts every probe and the
// history statistics agree cell-for-cell.
func TestGridDenseSparseAgree(t *testing.T) {
	world := geom.NewBox(0, 0, 0, 6, 5, 4)
	dense := newGrid(world)
	sparse := &grid{world: world,
		staticM: map[geom.Point]bool{},
		netAtM:  map[geom.Point]int{},
		pinAtM:  map[geom.Point]int{},
		histM:   map[geom.Point]float64{},
	}
	if !dense.dense || sparse.dense {
		t.Fatal("fixture storage modes wrong")
	}
	for _, g := range []*grid{dense, sparse} {
		g.setStatic(geom.Pt(1, 1, 1))
		g.setNet(geom.Pt(2, 2, 2), 0) // net 0: zero-value collision hazard
		g.setNet(geom.Pt(3, 3, 3), 7)
		g.clearNet(geom.Pt(3, 3, 3), 5) // wrong owner: must be a no-op
		g.clearNet(geom.Pt(2, 2, 0), 0) // unowned cell: must be a no-op
		g.setPin(geom.Pt(0, 0, 0), 0)
		g.setPin(geom.Pt(4, 4, 3), 9)
		g.histAdd(geom.Pt(5, 0, 0), 1)
		g.histAdd(geom.Pt(5, 0, 0), 0.5)
		g.histAdd(geom.Pt(0, 4, 2), 2)
	}
	for x := world.Min.X; x < world.Max.X; x++ {
		for y := world.Min.Y; y < world.Max.Y; y++ {
			for z := world.Min.Z; z < world.Max.Z; z++ {
				p := geom.Pt(x, y, z)
				if a, b := dense.isStatic(p), sparse.isStatic(p); a != b {
					t.Fatalf("isStatic(%v): dense %v sparse %v", p, a, b)
				}
				an, aok := dense.netOwner(p)
				bn, bok := sparse.netOwner(p)
				if an != bn || aok != bok {
					t.Fatalf("netOwner(%v): dense (%d,%v) sparse (%d,%v)", p, an, aok, bn, bok)
				}
				ap, apok := dense.pinOwner(p)
				bp, bpok := sparse.pinOwner(p)
				if ap != bp || apok != bpok {
					t.Fatalf("pinOwner(%v): dense (%d,%v) sparse (%d,%v)", p, ap, apok, bp, bpok)
				}
				if a, b := dense.histAt(p), sparse.histAt(p); a != b {
					t.Fatalf("histAt(%v): dense %v sparse %v", p, a, b)
				}
			}
		}
	}
	dc, dm := dense.histStats()
	sc, sm := sparse.histStats()
	if dc != sc || dm != sm {
		t.Fatalf("histStats: dense (%d,%v) sparse (%d,%v)", dc, dm, sc, sm)
	}
	if dc != 2 || dm != 2 {
		t.Fatalf("histStats = (%d,%v), want (2,2)", dc, dm)
	}
	if owner, ok := dense.netOwner(geom.Pt(2, 2, 2)); !ok || owner != 0 {
		t.Fatalf("net 0 ownership lost: (%d,%v)", owner, ok)
	}
}

// TestGridOutOfWorldProbes pins that cells outside the world carry no
// state and that writes to them are dropped rather than panicking.
func TestGridOutOfWorldProbes(t *testing.T) {
	world := geom.NewBox(0, 0, 0, 2, 2, 2)
	g := newGrid(world)
	out := geom.Pt(-1, 5, 0)
	g.setStatic(out)
	g.setNet(out, 3)
	g.histAdd(out, 1)
	if g.isStatic(out) {
		t.Fatal("out-of-world static stuck")
	}
	if _, ok := g.netOwner(out); ok {
		t.Fatal("out-of-world net owner stuck")
	}
	if g.histAt(out) != 0 {
		t.Fatal("out-of-world history stuck")
	}
}

// TestScratchGenerationReuse pins that searchState reuse does not leak
// state between searches: g-scores and target stamps set in one
// generation are invisible after reset, in both storage modes, and a
// generation-counter wraparound invalidates everything.
func TestScratchGenerationReuse(t *testing.T) {
	region := geom.NewBox(0, 0, 0, 2, 2, 2)
	c := geom.Pt(1, 1, 0)
	for _, dense := range []bool{true, false} {
		var s searchState
		s.reset(region, dense)
		i := s.slot(c)
		s.setG(i, 1.5, -1)
		s.markTarget(i)
		if !s.seen(i) || s.g[i] != 1.5 || s.parent[i] != -1 || !s.isTarget(i) {
			t.Fatalf("dense=%v: setG/markTarget not visible in their own generation", dense)
		}
		s.reset(region, dense)
		i = s.slot(c)
		if s.seen(i) || s.isTarget(i) {
			t.Fatalf("dense=%v: stale state visible after reset", dense)
		}
		// Wraparound: a forced gen overflow must invalidate everything.
		s.setG(i, 2, -1)
		s.cur = ^uint32(0)
		s.gen[i] = s.cur
		s.tgen[i] = s.cur
		s.reset(region, dense)
		i = s.slot(c)
		if s.cur == 0 || s.seen(i) || s.isTarget(i) {
			t.Fatalf("dense=%v: wraparound left stale state (cur=%d)", dense, s.cur)
		}
	}
}

// routeFixture builds a bridged, placed benchmark circuit large enough to
// exercise negotiation and multi-net batches.
func routeFixture(t testing.TB) *place.Placement {
	t.Helper()
	spec, err := qc.BenchmarkByName("4gt10-v1_81")
	if err != nil {
		t.Fatal(err)
	}
	return placed(t, mustGen(t, spec), true, 300)
}

// sameRouting asserts two routing results are identical in every
// deterministic field.
func sameRouting(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if !reflect.DeepEqual(a.Routes, b.Routes) {
		t.Fatalf("%s: routes differ", label)
	}
	if !reflect.DeepEqual(sortedInts(a.Failed), sortedInts(b.Failed)) {
		t.Fatalf("%s: failed sets differ: %v vs %v", label, a.Failed, b.Failed)
	}
	if a.FirstPassRouted != b.FirstPassRouted {
		t.Fatalf("%s: first-pass counts differ: %d vs %d", label, a.FirstPassRouted, b.FirstPassRouted)
	}
	if a.Iterations != b.Iterations || a.RippedUp != b.RippedUp {
		t.Fatalf("%s: iteration/rip-up counts differ: (%d,%d) vs (%d,%d)",
			label, a.Iterations, a.RippedUp, b.Iterations, b.RippedUp)
	}
	if a.HistoryCells != b.HistoryCells || a.MaxHistory != b.MaxHistory {
		t.Fatalf("%s: history stats differ: (%d,%v) vs (%d,%v)",
			label, a.HistoryCells, a.MaxHistory, b.HistoryCells, b.MaxHistory)
	}
	if !reflect.DeepEqual(a.PinCells, b.PinCells) {
		t.Fatalf("%s: pin cells differ", label)
	}
	if a.Bounds != b.Bounds {
		t.Fatalf("%s: bounds differ: %v vs %v", label, a.Bounds, b.Bounds)
	}
}

func sortedInts(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}

// TestConcurrentFirstPassMatchesSerial pins the tentpole equivalence
// contract: the concurrent first pass (disjoint-region batches, in-order
// commits) must produce the identical result to Serial routing.
func TestConcurrentFirstPassMatchesSerial(t *testing.T) {
	pl := routeFixture(t)
	serialOpts := DefaultOptions()
	serialOpts.Serial = true
	serial, err := Run(pl, serialOpts)
	if err != nil {
		t.Fatal(err)
	}
	conc, err := Run(pl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sameRouting(t, "concurrent-vs-serial", serial, conc)
}

// TestRoutingDeterministicAcrossRuns pins bit-identical routing for a
// fixed placement: two runs (concurrent first pass included) must agree
// on every route, count and the HistoryCells/MaxHistory statistics. This
// is the regression test for the finish() history accounting, which now
// uses an order-independent aggregate instead of map iteration.
func TestRoutingDeterministicAcrossRuns(t *testing.T) {
	pl := routeFixture(t)
	a, err := Run(pl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(pl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sameRouting(t, "run-vs-run", a, b)
}

// TestDenseSparseSearchAgree pins that the dense flat-array A* and the
// map-based fallback return identical routes by re-running the same
// placement with the sparse path forced and comparing every field.
func TestDenseSparseSearchAgree(t *testing.T) {
	pl := routeFixture(t)
	dense, err := Run(pl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	restore := forceSparseSearch()
	defer restore()
	sparse, err := Run(pl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sameRouting(t, "dense-vs-sparse", dense, sparse)
}
