package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/qc"
	"repro/tqec"
)

// journalOpts keeps test journals small and fast (no fsync).
func journalOpts() journal.Options {
	return journal.Options{SegmentBytes: 1 << 20, NoSync: true}
}

// openJournal opens (or reopens) the journal under dir.
func openJournal(t *testing.T, dir string) *journal.Journal {
	t.Helper()
	j, err := journal.Open(dir, journalOpts())
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// directBytes computes the canonical payload for an inline circuit the way
// the service must serve it, for byte-identity assertions.
func directBytes(t *testing.T, src, name string, o CompileOptions) []byte {
	t.Helper()
	c, err := qc.ParseReal(name, strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	opts := requestOptions(o)
	res, err := tqec.CompileContext(context.Background(), c, opts)
	if err != nil {
		t.Fatal(err)
	}
	key, err := tqec.CacheKey(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeResult(key, res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// pollDone polls a job until it reaches a terminal state and returns the
// final view.
func pollDone(t *testing.T, s *Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		w := get(s, "/v1/jobs/"+id)
		if w.Code != 200 {
			t.Fatalf("poll %s: %d %s", id, w.Code, w.Body)
		}
		var v JobView
		if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
			t.Fatal(err)
		}
		if v.Status == JobDone || v.Status == JobFailed {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, v.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJournalKillAndRestartRecovery is the end-to-end crash drill: a job
// completes and is journaled, the process "dies" with more jobs accepted
// but never run, and the next process — sharing only the journal directory
// — serves the finished job byte-identically, re-enqueues the interrupted
// ones under their original IDs, and completes them. No job lost, none
// double-completed, every payload byte-identical to a direct compile.
func TestJournalKillAndRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	fastBody := compileBody(t, realSrc, "fig4", CompileOptions{Seed: 21, Iterations: 2000})
	direct := directBytes(t, realSrc, "fig4", CompileOptions{Seed: 21, Iterations: 2000})

	// Process 1: complete one job, then die.
	j1 := openJournal(t, dir)
	cfg := testConfig()
	cfg.Journal = j1
	s1 := startServer(t, cfg)
	w := post(s1, "/v1/jobs", fastBody)
	if w.Code != 202 {
		t.Fatalf("submit: %d %s", w.Code, w.Body)
	}
	var doneJob JobView
	if err := json.Unmarshal(w.Body.Bytes(), &doneJob); err != nil {
		t.Fatal(err)
	}
	final := pollDone(t, s1, doneJob.ID)
	if final.Status != JobDone || !bytes.Equal(final.Result, direct) {
		t.Fatalf("process-1 job: %s, byte-identical=%v", final.Status, bytes.Equal(final.Result, direct))
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// Process 2: accepts three more jobs but its workers never run (the
	// crash window between acknowledgement and execution).
	j2 := openJournal(t, dir)
	cfg2 := testConfig()
	cfg2.Journal = j2
	s2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	var interruptedIDs []string
	for i := 0; i < 3; i++ {
		body := compileBody(t, realSrc2, "other", CompileOptions{Seed: int64(100 + i), Iterations: 2000})
		w := post(s2, "/v1/jobs", body)
		if w.Code != 202 {
			t.Fatalf("process-2 submit %d: %d %s", i, w.Code, w.Body)
		}
		var v JobView
		if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
			t.Fatal(err)
		}
		interruptedIDs = append(interruptedIDs, v.ID)
	}
	// The finished job from process 1 survived into process 2 already.
	if v := pollDone(t, s2, doneJob.ID); v.Status != JobDone || !bytes.Equal(v.Result, direct) {
		t.Fatalf("process-2 lost the finished job: %+v", v)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}

	// Process 3: full recovery. The interrupted jobs re-enqueue under
	// their original IDs and run to completion.
	j3 := openJournal(t, dir)
	cfg3 := testConfig()
	cfg3.Journal = j3
	s3 := startServer(t, cfg3)
	for i, id := range interruptedIDs {
		v := pollDone(t, s3, id)
		if v.Status != JobDone {
			t.Fatalf("recovered job %s: %s (%+v)", id, v.Status, v.Error)
		}
		want := directBytes(t, realSrc2, "other", CompileOptions{Seed: int64(100 + i), Iterations: 2000})
		if !bytes.Equal(v.Result, want) {
			t.Fatalf("recovered job %s result differs from direct compile", id)
		}
		// A second poll must return the same terminal state and bytes:
		// completed exactly once.
		again := pollDone(t, s3, id)
		if again.Status != JobDone || !bytes.Equal(again.Result, v.Result) {
			t.Fatalf("job %s changed after completion", id)
		}
	}
	// The cache was re-populated from the journal: the sync endpoint
	// serves the process-1 payload as a hit, byte-identically.
	w = post(s3, "/v1/compile", fastBody)
	if w.Code != 200 || w.Header().Get("X-Tqecd-Cache") != "hit" {
		t.Fatalf("post-recovery compile: %d cache=%q", w.Code, w.Header().Get("X-Tqecd-Cache"))
	}
	if !bytes.Equal(w.Body.Bytes(), direct) {
		t.Fatal("post-recovery cached payload differs from direct compile")
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(get(s3, "/v1/metrics").Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Journal == nil || snap.Journal.RecoveredInterrupted != 3 || snap.Journal.RecoveredFinished < 1 {
		t.Fatalf("journal metrics %+v", snap.Journal)
	}
}

// TestJournalHardStopRecoversRunningJob kills the worker pool mid-compile:
// the in-flight job must not be journaled as failed — the next process
// re-runs it to completion.
func TestJournalHardStopRecoversRunningJob(t *testing.T) {
	dir := t.TempDir()
	j1 := openJournal(t, dir)
	cfg := testConfig()
	cfg.Workers = 1
	cfg.Journal = j1
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s1.Start(ctx)
	// A compile big enough to still be running when the plug is pulled.
	body := compileBody(t, realSrc, "slow", CompileOptions{Seed: 9, Iterations: 400000})
	w := post(s1, "/v1/jobs", body)
	if w.Code != 202 {
		t.Fatalf("submit: %d %s", w.Code, w.Body)
	}
	var v JobView
	if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to pick it up, then hard-stop.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var cur JobView
		if err := json.Unmarshal(get(s1, "/v1/jobs/"+v.ID).Body.Bytes(), &cur); err != nil {
			t.Fatal(err)
		}
		if cur.Status != JobQueued {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	// Let the canceled compile unwind before closing the journal.
	dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer dcancel()
	if err := s1.Drain(dctx); err != nil {
		t.Fatalf("drain after hard stop: %v", err)
	}
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	j2 := openJournal(t, dir)
	for _, st := range j2.Recovered() {
		if st.ID == v.ID && st.Terminal() {
			t.Fatalf("hard-stopped job journaled terminal: %s", st.Status)
		}
	}
	cfg2 := testConfig()
	cfg2.Journal = j2
	s2 := startServer(t, cfg2)
	fin := pollDone(t, s2, v.ID)
	if fin.Status != JobDone {
		t.Fatalf("recovered job: %s (%+v)", fin.Status, fin.Error)
	}
	want := directBytes(t, realSrc, "slow", CompileOptions{Seed: 9, Iterations: 400000})
	if !bytes.Equal(fin.Result, want) {
		t.Fatal("recovered result differs from direct compile")
	}
}

// TestJournalRecoveryWithFullQueue replays more interrupted jobs than the
// new process's queue can hold: the overflow must fail visibly (pollable,
// journaled) rather than vanish or wedge New.
func TestJournalRecoveryWithFullQueue(t *testing.T) {
	dir := t.TempDir()
	jw := openJournal(t, dir)
	for i := 0; i < 5; i++ {
		body := compileBody(t, realSrc, "fig4", CompileOptions{Seed: int64(i), Iterations: 2000})
		ev := journal.Event{Kind: journal.KindAccepted, JobID: fmt.Sprintf("lostjob-%d", i), Request: body}
		if err := jw.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}

	jr := openJournal(t, dir)
	cfg := testConfig()
	cfg.QueueDepth = 2
	cfg.Journal = jr
	s := startServer(t, cfg)
	var done, failed int
	for i := 0; i < 5; i++ {
		v := pollDone(t, s, fmt.Sprintf("lostjob-%d", i))
		switch v.Status {
		case JobDone:
			done++
		case JobFailed:
			failed++
			if v.Error == nil || v.Error.Message == "" {
				t.Fatalf("overflow job %d failed without a structured error", i)
			}
		}
	}
	if done+failed != 5 || done < 2 {
		t.Fatalf("recovery with full queue: done=%d failed=%d", done, failed)
	}

	// The failures were journaled: a further restart keeps them terminal
	// instead of retrying forever.
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
	j3 := openJournal(t, dir)
	defer func() {
		if err := j3.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	terminal := 0
	for _, st := range j3.Recovered() {
		if st.Terminal() {
			terminal++
		}
	}
	if terminal != 5 {
		t.Fatalf("journal after recovery: %d terminal states, want 5", terminal)
	}
}

// TestDrainDeadlineJournalsInterrupted documents the Drain/Close ordering
// contract: when the drain budget expires with jobs still queued, those
// jobs stay journaled as interrupted and the next process re-enqueues
// them — nothing is lost, nothing is falsely failed.
func TestDrainDeadlineJournalsInterrupted(t *testing.T) {
	dir := t.TempDir()
	j1 := openJournal(t, dir)
	cfg := testConfig()
	cfg.Workers = 1
	cfg.Journal = j1
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s1.Start(ctx)
	var ids []string
	for i := 0; i < 3; i++ {
		body := compileBody(t, realSrc, "slow", CompileOptions{Seed: int64(50 + i), Iterations: 400000})
		w := post(s1, "/v1/jobs", body)
		if w.Code != 202 {
			t.Fatalf("submit %d: %d %s", i, w.Code, w.Body)
		}
		var v JobView
		if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	// An expired drain budget: queued work is still pending.
	dctx, dcancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer dcancel()
	if err := s1.Drain(dctx); err == nil {
		t.Fatal("drain with pending slow jobs should exceed a 1ms budget")
	}
	cancel() // hard stop, per the documented Drain-then-cancel ordering
	time.Sleep(50 * time.Millisecond)
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	j2 := openJournal(t, dir)
	states := map[string]journal.JobState{}
	for _, st := range j2.Recovered() {
		states[st.ID] = st
	}
	for _, id := range ids {
		st, ok := states[id]
		if !ok {
			t.Fatalf("job %s lost from the journal", id)
		}
		if st.Status == journal.StatusFailed {
			t.Fatalf("job %s falsely journaled failed by the aborted drain", id)
		}
	}
	cfg2 := testConfig()
	cfg2.Journal = j2
	s2 := startServer(t, cfg2)
	for _, id := range ids {
		if v := pollDone(t, s2, id); v.Status != JobDone {
			t.Fatalf("job %s after recovery: %s (%+v)", id, v.Status, v.Error)
		}
	}
}
