package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os/exec"
	"path/filepath"
	"sort"
)

// listedPackage is the slice of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
}

// goList enumerates the packages matched by patterns, from dir. The go
// command is the one module-aware oracle the standard library offers, so the
// loader shells out to it for package discovery only; parsing and
// typechecking stay in-process.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json=ImportPath,Name,Dir,GoFiles,Imports"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %v: %w: %s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(&out)
	var pkgs []listedPackage
	for dec.More() {
		var p listedPackage
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadPackages loads and typechecks every package matched by patterns
// (e.g. "./...") relative to dir. Dependencies — in-module and standard
// library alike — are resolved from source by go/importer's "source"
// importer, keeping the loader free of external tooling. Loading fails on
// the first parse or type error: the analyzers only run over well-typed
// code.
func LoadPackages(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var out []*Package
	for _, lp := range listed {
		var paths []string
		for _, name := range lp.GoFiles {
			paths = append(paths, filepath.Join(lp.Dir, name))
		}
		pkg, err := typecheck(fset, imp, lp.ImportPath, lp.Dir, paths)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir loads the single package rooted at dir, typechecked under the
// synthetic import path asPath. The golden-file tests use it to place
// fixture packages inside an analyzer's scope (e.g. a detrand fixture under
// "repro/internal/qc/...") without touching the real tree.
func LoadDir(dir, asPath string) (*Package, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, fmt.Errorf("lint: globbing %s: %w", dir, err)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	sort.Strings(paths)
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	return typecheck(fset, imp, asPath, dir, paths)
}

// DirSpec names one fixture directory and the synthetic import path to
// typecheck it under.
type DirSpec struct {
	Dir    string
	AsPath string
}

// overlayImporter resolves the synthetic import paths of already-loaded
// fixture packages before falling back to the source importer, so one
// fixture package can import another — the shape a cross-package taint
// flow needs.
type overlayImporter struct {
	base types.Importer
	pkgs map[string]*types.Package
}

func (o *overlayImporter) Import(path string) (*types.Package, error) {
	if p, ok := o.pkgs[path]; ok {
		return p, nil
	}
	return o.base.Import(path)
}

// LoadDirs loads several fixture directories in order under their
// synthetic import paths; later directories may import earlier ones. Real
// module and standard-library imports still resolve from source.
func LoadDirs(specs []DirSpec) ([]*Package, error) {
	fset := token.NewFileSet()
	imp := &overlayImporter{
		base: importer.ForCompiler(fset, "source", nil),
		pkgs: map[string]*types.Package{},
	}
	var out []*Package
	for _, spec := range specs {
		paths, err := filepath.Glob(filepath.Join(spec.Dir, "*.go"))
		if err != nil {
			return nil, fmt.Errorf("lint: globbing %s: %w", spec.Dir, err)
		}
		if len(paths) == 0 {
			return nil, fmt.Errorf("lint: no Go files in %s", spec.Dir)
		}
		sort.Strings(paths)
		pkg, err := typecheck(fset, imp, spec.AsPath, spec.Dir, paths)
		if err != nil {
			return nil, err
		}
		imp.pkgs[spec.AsPath] = pkg.Types
		out = append(out, pkg)
	}
	return out, nil
}

// typecheck parses the given files and typechecks them as one package.
func typecheck(fset *token.FileSet, imp types.Importer, path, dir string, filePaths []string) (*Package, error) {
	var files []*ast.File
	for _, p := range filePaths {
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Name:  tpkg.Name(),
		Dir:   dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
