package decompose

import (
	"testing"
	"testing/quick"

	"repro/internal/qc"
)

func lower(t *testing.T, c *qc.Circuit) *Result {
	t.Helper()
	r, err := Decompose(c)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func count(t *testing.T, c *qc.Circuit) Stats {
	t.Helper()
	s, err := Count(c)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDecomposePassThrough(t *testing.T) {
	c := qc.New("pass", 2)
	c.Append(qc.CNOT(0, 1), qc.T(0), qc.P(1), qc.V(0), qc.Tdag(1))
	r := lower(t, c)
	if r.Circuit.NumGates() != 5 {
		t.Fatalf("pass-through changed gate count: %d", r.Circuit.NumGates())
	}
	for i, g := range r.Circuit.Gates {
		if g.Kind != c.Gates[i].Kind {
			t.Errorf("gate %d kind changed: %v", i, g.Kind)
		}
	}
}

func TestDecomposeToffoliComposition(t *testing.T) {
	c := qc.New("tof", 3)
	c.Append(qc.Toffoli(0, 1, 2))
	r := lower(t, c)
	s := count(t, r.Circuit)
	// Paper calibration: Toffoli → 6 CNOT, 7 T/T†, 2 H where each H = P·V·P.
	if s.Ts != 7 {
		t.Errorf("T count: %d want 7", s.Ts)
	}
	if s.CNOTs != 6 {
		t.Errorf("CNOT count: %d want 6", s.CNOTs)
	}
	if s.Ps != 4 || s.Vs != 2 {
		t.Errorf("H lowering: %d P, %d V want 4, 2", s.Ps, s.Vs)
	}
	if r.AncillaQubits != 0 {
		t.Errorf("toffoli should need no workspace ancillas")
	}
}

func TestDecomposeHadamard(t *testing.T) {
	c := qc.New("h", 1)
	c.Append(qc.H(0))
	r := lower(t, c)
	kinds := []qc.GateKind{qc.GateP, qc.GateV, qc.GateP}
	if len(r.Circuit.Gates) != 3 {
		t.Fatalf("H should lower to 3 gates, got %d", len(r.Circuit.Gates))
	}
	for i, k := range kinds {
		if r.Circuit.Gates[i].Kind != k {
			t.Errorf("gate %d: %v want %v", i, r.Circuit.Gates[i].Kind, k)
		}
	}
}

func TestDecomposeSwapFredkin(t *testing.T) {
	c := qc.New("sf", 3)
	c.Append(qc.Swap(0, 1))
	r := lower(t, c)
	if s := count(t, r.Circuit); s.CNOTs != 3 || s.Ts != 0 {
		t.Fatalf("swap: %+v", s)
	}

	c2 := qc.New("fred", 3)
	c2.Append(qc.Fredkin(0, 1, 2))
	r2 := lower(t, c2)
	s2 := count(t, r2.Circuit)
	// Fredkin = CNOT · Toffoli · CNOT.
	if s2.CNOTs != 8 || s2.Ts != 7 {
		t.Fatalf("fredkin: %+v", s2)
	}
}

func TestDecomposeControlledV(t *testing.T) {
	c := qc.New("cv", 2)
	c.Append(qc.Gate{Kind: qc.GateV, Controls: []int{0}, Targets: []int{1}})
	r := lower(t, c)
	s := count(t, r.Circuit)
	if s.CNOTs != 2 || s.Ts != 3 {
		t.Fatalf("controlled-V: %+v", s)
	}
	// Plain V passes through.
	c2 := qc.New("v", 1)
	c2.Append(qc.V(0))
	r2 := lower(t, c2)
	if r2.Circuit.NumGates() != 1 || r2.Circuit.Gates[0].Kind != qc.GateV {
		t.Fatalf("plain V should pass through")
	}
}

func TestDecomposeMCT(t *testing.T) {
	c := qc.New("mct", 5)
	c.Append(qc.MCT([]int{0, 1, 2, 3}, 4))
	r := lower(t, c)
	if r.AncillaQubits != 2 {
		t.Fatalf("4-control MCT needs 2 ancillas, got %d", r.AncillaQubits)
	}
	s := count(t, r.Circuit)
	// 2(k−2)+1 = 5 Toffolis, each with 7 T gates.
	if s.Ts != 5*7 {
		t.Fatalf("MCT T count: %d want 35", s.Ts)
	}
	if err := r.Circuit.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposeMCTThreeControls(t *testing.T) {
	c := qc.New("mct3", 4)
	c.Append(qc.MCT([]int{0, 1, 2}, 3))
	r := lower(t, c)
	if r.AncillaQubits != 1 {
		t.Fatalf("3-control MCT needs 1 ancilla, got %d", r.AncillaQubits)
	}
	if s := count(t, r.Circuit); s.Ts != 3*7 {
		t.Fatalf("T count: %d want 21", s.Ts)
	}
}

func TestDecomposePauliFrame(t *testing.T) {
	c := qc.New("pauli", 2)
	c.Append(qc.NOT(0), qc.Gate{Kind: qc.GateZ, Targets: []int{1}})
	r := lower(t, c)
	if s := count(t, r.Circuit); s.Paulis != 2 || s.CNOTs != 0 {
		t.Fatalf("pauli frame: %+v", s)
	}
}

func TestDecomposeRejectsInvalid(t *testing.T) {
	c := qc.New("bad", 1)
	c.Append(qc.CNOT(0, 5))
	if _, err := Decompose(c); err == nil {
		t.Fatal("invalid input accepted")
	}
}

func TestDecomposeBenchmarkCalibration(t *testing.T) {
	// The paper-facing identity: #|A⟩ = #T-type gates = 7·#Toffoli and the
	// CNOT count after decomposition ≈ 8·#|A⟩ (within a few percent).
	spec, err := qc.BenchmarkByName("4gt10-v1_81")
	if err != nil {
		t.Fatal(err)
	}
	c, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	r := lower(t, c)
	s := count(t, r.Circuit)
	if s.Ts != 7*spec.Toffolis {
		t.Fatalf("T gates: %d want %d", s.Ts, 7*spec.Toffolis)
	}
	if s.CNOTs != 6*spec.Toffolis+spec.CNOTs {
		t.Fatalf("CNOTs: %d want %d", s.CNOTs, 6*spec.Toffolis+spec.CNOTs)
	}
	if s.Vs != 2*spec.Toffolis {
		t.Fatalf("V gates: %d want %d", s.Vs, 2*spec.Toffolis)
	}
}

// Property: decomposition always yields a valid circuit containing only the
// TQEC gate set, regardless of the reversible input mix.
func TestQuickDecomposeClosed(t *testing.T) {
	f := func(q uint8, nt, nc, nn uint8, seed int64) bool {
		spec := qc.BenchmarkSpec{
			Name:     "fuzz",
			Qubits:   3 + int(q%20),
			Toffolis: int(nt % 20),
			CNOTs:    int(nc % 20),
			NOTs:     int(nn % 20),
			Seed:     seed,
		}
		c, err := spec.Generate()
		if err != nil {
			return false
		}
		r, err := Decompose(c)
		if err != nil {
			return false
		}
		for _, g := range r.Circuit.Gates {
			switch g.Kind {
			case qc.GateCNOT, qc.GateP, qc.GatePdag, qc.GateV, qc.GateVdag,
				qc.GateT, qc.GateTdag, qc.GateNOT:
			default:
				return false
			}
		}
		return r.Circuit.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
