package qc

import (
	"os"
	"path/filepath"
	"testing"
)

// TestGenerateTestdata regenerates the .real fixtures when invoked with
// QC_REGEN=1 (they are committed so the parser tests run offline).
func TestGenerateTestdata(t *testing.T) {
	if os.Getenv("QC_REGEN") == "" {
		t.Skip("set QC_REGEN=1 to regenerate testdata")
	}
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	for _, s := range Benchmarks {
		f, err := os.Create(filepath.Join("testdata", s.Name+".real"))
		if err != nil {
			t.Fatal(err)
		}
		c, err := s.Generate()
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteReal(f, c); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestParseRealFixtures loads every committed benchmark fixture and checks
// it round-trips to the generator's circuit exactly.
func TestParseRealFixtures(t *testing.T) {
	for _, s := range Benchmarks {
		path := filepath.Join("testdata", s.Name+".real")
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("%s: %v (regenerate with QC_REGEN=1)", path, err)
		}
		parsed, err := ParseReal(s.Name, f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		want, err := s.Generate()
		if err != nil {
			t.Fatal(err)
		}
		if parsed.NumQubits() != want.NumQubits() || parsed.NumGates() != want.NumGates() {
			t.Fatalf("%s: shape %d/%d want %d/%d", s.Name,
				parsed.NumQubits(), parsed.NumGates(), want.NumQubits(), want.NumGates())
		}
		for i := range want.Gates {
			g1, g2 := parsed.Gates[i], want.Gates[i]
			if g1.Kind != g2.Kind || g1.String() != g2.String() {
				t.Fatalf("%s: gate %d differs: %v vs %v", s.Name, i, g1, g2)
			}
		}
	}
}
