package tqec

import (
	"testing"

	"repro/internal/partition"
	"repro/internal/qc"
)

// partitionedFixture builds a circuit whose interaction graph has two
// dense clusters joined by one CNOT, so a cap of 3 splits it cleanly.
func partitionedFixture(t *testing.T) *qc.Circuit {
	t.Helper()
	c := qc.New("stitched", 6)
	for r := 0; r < 2; r++ {
		c.Append(qc.CNOT(0, 1), qc.CNOT(1, 2), qc.CNOT(0, 2))
		c.Append(qc.CNOT(3, 4), qc.CNOT(4, 5), qc.CNOT(3, 5))
	}
	c.Append(qc.CNOT(2, 3))
	c.Append(qc.NOT(0), qc.T(4))
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

func partitionedOpts(cap int) Options {
	o := FastOptions()
	o.Partition = partition.Options{MaxQubitsPerPart: cap, Seed: 1}
	return o
}

func TestCompilePartitionedStitchesSlabs(t *testing.T) {
	c := partitionedFixture(t)
	res, err := CompilePartitioned(c, partitionedOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.PassThrough {
		t.Fatal("six qubits with cap 3 compiled pass-through")
	}
	if got := len(res.Parts); got != 2 {
		t.Fatalf("%d parts, want 2", got)
	}
	if len(res.SeamNets) != 1 || res.SeamRouting == nil {
		t.Fatalf("seam nets %d (routing %v), want exactly the bridging CNOT", len(res.SeamNets), res.SeamRouting)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	if res.Volume <= 0 || res.Dims.Volume() != res.Volume {
		t.Fatalf("volume %d dims %v inconsistent", res.Volume, res.Dims)
	}
	// The combined extent must cover both slabs and the seam pins.
	for i, s := range res.Slabs {
		if s.Volume() <= 0 {
			t.Fatalf("slab %d is empty: %v", i, s)
		}
	}
	if res.Breakdown.Get("qubit partition") < 0 || res.Breakdown.Get("seam stitching") < 0 {
		t.Fatal("stitch stages missing from the breakdown")
	}
}

func TestCompilePartitionedPassThroughMatchesCompile(t *testing.T) {
	c := partitionedFixture(t)
	opts := partitionedOpts(0) // non-positive cap: pass-through
	pres, err := CompilePartitioned(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !pres.PassThrough || len(pres.Parts) != 1 || pres.SeamRouting != nil {
		t.Fatalf("cap 0 did not pass through: %d parts, seams %v", len(pres.Parts), pres.SeamRouting)
	}
	plain, err := Compile(c, FastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if pres.Volume != plain.Volume || pres.Dims != plain.Dims {
		t.Fatalf("pass-through volume %d %v, plain compile %d %v",
			pres.Volume, pres.Dims, plain.Volume, plain.Dims)
	}
}

func TestCompilePartitionedDeterministic(t *testing.T) {
	c := partitionedFixture(t)
	opts := partitionedOpts(3)
	a, err := CompilePartitioned(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CompilePartitioned(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Volume != b.Volume || a.Dims != b.Dims {
		t.Fatalf("reruns differ: %d %v vs %d %v", a.Volume, a.Dims, b.Volume, b.Dims)
	}
	for i := range a.Slabs {
		if a.Slabs[i] != b.Slabs[i] {
			t.Fatalf("slab %d differs across reruns: %v vs %v", i, a.Slabs[i], b.Slabs[i])
		}
	}
	for id, p := range a.SeamRouting.Routes {
		q := b.SeamRouting.Routes[id]
		if len(p) != len(q) {
			t.Fatalf("seam %d route differs across reruns", id)
		}
		for j := range p {
			if p[j] != q[j] {
				t.Fatalf("seam %d route differs at step %d", id, j)
			}
		}
	}
}

func TestCacheKeyDependsOnPartition(t *testing.T) {
	c := partitionedFixture(t)
	base, err := CacheKey(c, FastOptions())
	if err != nil {
		t.Fatal(err)
	}
	capped, err := CacheKey(c, partitionedOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	if base == capped {
		t.Fatal("cache key ignores the partition cap")
	}
	// A non-positive cap is pass-through; its seed must not perturb the
	// address.
	o := FastOptions()
	o.Partition = partition.Options{MaxQubitsPerPart: 0, Seed: 99}
	zeroCap, err := CacheKey(c, o)
	if err != nil {
		t.Fatal(err)
	}
	if zeroCap != base {
		t.Fatal("pass-through partition seed changed the cache key")
	}
}
