package modular

import (
	"testing"
	"testing/quick"

	"repro/internal/canonical"
	"repro/internal/decompose"
	"repro/internal/icm"
	"repro/internal/qc"
)

// threeCNOT builds the paper's motivating 3-CNOT ICM circuit (Fig. 4/9):
// CNOTs (0,1), (1,2), (0,2) over three lines.
func threeCNOT() *icm.Circuit {
	c := qc.New("fig9", 3)
	c.Append(qc.CNOT(0, 1), qc.CNOT(1, 2), qc.CNOT(0, 2))
	ic, err := icm.FromDecomposed(c)
	if err != nil {
		panic(err)
	}
	return ic
}

func buildNetlist(t *testing.T, ic *icm.Circuit) *Netlist {
	t.Helper()
	d, err := canonical.Build(ic)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := Build(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := nl.Validate(); err != nil {
		t.Fatalf("netlist invalid: %v", err)
	}
	return nl
}

func TestThreeCNOTModularization(t *testing.T) {
	nl := buildNetlist(t, threeCNOT())
	// Loop 0 spans lines 0-1, loop 1 spans 1-2, loop 2 spans 0-2. Line 1
	// is dead by loop 2's slot (its last CNOT is at slot 1), so loop 2
	// penetrates only lines 0 and 2.
	if got := len(nl.Loops[2].Modules); got != 2 {
		t.Errorf("loop 2 penetrations: %d want 2", got)
	}
	if got := len(nl.Loops[0].Modules); got != 2 {
		t.Errorf("loop 0 penetrations: %d want 2", got)
	}
	// Total segments = sum of penetrations = 2 + 2 + 2.
	if len(nl.Segments) != 6 {
		t.Errorf("segments: %d want 6", len(nl.Segments))
	}
	if len(nl.Pins) != 12 {
		t.Errorf("pins: %d want 12", len(nl.Pins))
	}
}

func TestAdjacentSlotsShareModule(t *testing.T) {
	// Two CNOTs at adjacent slots touching the same line group into one
	// module on that line.
	c := qc.New("adj", 3)
	c.Append(qc.CNOT(0, 1), qc.CNOT(1, 2))
	ic, err := icm.FromDecomposed(c)
	if err != nil {
		t.Fatal(err)
	}
	nl := buildNetlist(t, ic)
	if got := len(nl.ModulesOfLine[1]); got != 1 {
		t.Fatalf("line 1 modules: %d want 1 (adjacent slots merge)", got)
	}
	m := nl.Modules[nl.ModulesOfLine[1][0]]
	if len(m.Segments) != 2 {
		t.Fatalf("merged module segments: %d want 2", len(m.Segments))
	}
	if m.SlotLo != 0 || m.SlotHi != 1 {
		t.Fatalf("slot range: [%d,%d]", m.SlotLo, m.SlotHi)
	}
}

func TestBuildWithGapPrimalBridging(t *testing.T) {
	// CNOT 0 and CNOT 2 touch line 0 with a slot gap of 2: the default
	// modularization splits them; primal bridging with gap ≥ 2 fuses
	// them into one module.
	mk := func() *icm.Circuit {
		c := qc.New("gapfuse", 4)
		c.Append(qc.CNOT(0, 1), qc.CNOT(2, 3), qc.CNOT(0, 1))
		ic, err := icm.FromDecomposed(c)
		if err != nil {
			panic(err)
		}
		return ic
	}
	d1, err := canonical.Build(mk())
	if err != nil {
		t.Fatal(err)
	}
	split, err := BuildWithGap(d1, 1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := canonical.Build(mk())
	if err != nil {
		t.Fatal(err)
	}
	fused, err := BuildWithGap(d2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := fused.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(split.ModulesOfLine[0]) != 2 {
		t.Fatalf("gap=1 should split line 0: %d modules", len(split.ModulesOfLine[0]))
	}
	if len(fused.ModulesOfLine[0]) != 1 {
		t.Fatalf("gap=2 should fuse line 0: %d modules", len(fused.ModulesOfLine[0]))
	}
	if len(fused.Modules) >= len(split.Modules) {
		t.Fatalf("primal bridging should reduce modules: %d vs %d",
			len(fused.Modules), len(split.Modules))
	}
	if _, err := BuildWithGap(d2, 0); err == nil {
		t.Fatal("gap 0 should be rejected")
	}
}

func TestGappedSlotsSplitModules(t *testing.T) {
	// CNOT 0 and CNOT 2 touch line 0 with a gap (CNOT 1 does not), so
	// line 0 gets two modules.
	c := qc.New("gap", 4)
	c.Append(qc.CNOT(0, 1), qc.CNOT(2, 3), qc.CNOT(0, 1))
	ic, err := icm.FromDecomposed(c)
	if err != nil {
		t.Fatal(err)
	}
	nl := buildNetlist(t, ic)
	if got := len(nl.ModulesOfLine[0]); got != 2 {
		t.Fatalf("line 0 modules: %d want 2", got)
	}
}

func TestCommonModulesAndRelativeLoops(t *testing.T) {
	nl := buildNetlist(t, threeCNOT())
	// Loops 0 (lines 0-1) and 2 (lines 0,2) are at slots 0 and 2: slot
	// gap 2 on line 0 means separate modules — no common module.
	// Loops 1 (slot 1, lines 1-2) and 2 (slot 2, lines 0,2) share
	// adjacent slots on line 2 → one common module.
	common12 := nl.CommonModules(1, 2)
	if len(common12) != 1 {
		t.Fatalf("common modules of loops 1,2: %v", common12)
	}
	rel := nl.RelativeLoops()
	found := false
	for _, r := range rel[1] {
		if r == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("loops 1 and 2 should be relatives")
	}
}

func TestInjectionModuleMarking(t *testing.T) {
	c := qc.New("inj", 1)
	c.Append(qc.T(0))
	ic, err := icm.FromDecomposed(c)
	if err != nil {
		t.Fatal(err)
	}
	nl := buildNetlist(t, ic)
	var nY, nA int
	for _, m := range nl.Modules {
		switch m.Kind {
		case KindInjectY:
			nY++
		case KindInjectA:
			nA++
		}
	}
	if nY != 1 || nA != 1 {
		t.Fatalf("injection modules: %d Y, %d A want 1,1", nY, nA)
	}
}

func TestTGroupMeasurementModules(t *testing.T) {
	c := qc.New("tg", 1)
	c.Append(qc.T(0))
	ic, err := icm.FromDecomposed(c)
	if err != nil {
		t.Fatal(err)
	}
	nl := buildNetlist(t, ic)
	if len(nl.ZMeasModule) != 1 {
		t.Fatalf("ZMeasModule entries: %d", len(nl.ZMeasModule))
	}
	zm := nl.ZMeasModule[0]
	if nl.Modules[zm].Line != ic.TGroups[0].ZMeasLine {
		t.Fatalf("Z module on wrong line")
	}
	for k, m := range nl.TeleportModules[0] {
		if nl.Modules[m].Line != ic.TGroups[0].TeleportLines[k] {
			t.Fatalf("teleport module %d on wrong line", k)
		}
	}
}

func TestLiveSegments(t *testing.T) {
	nl := buildNetlist(t, threeCNOT())
	if nl.LiveSegments() != len(nl.Segments) {
		t.Fatal("all segments should start live")
	}
	nl.Segments[0].Removed = true
	if nl.LiveSegments() != len(nl.Segments)-1 {
		t.Fatal("removed segment still counted")
	}
	m := nl.Segments[0].Module
	live := nl.LiveSegmentsOf(m)
	for _, s := range live {
		if s == 0 {
			t.Fatal("removed segment returned by LiveSegmentsOf")
		}
	}
}

func TestBenchmarkScaleModularization(t *testing.T) {
	spec, err := qc.BenchmarkByName("4gt10-v1_81")
	if err != nil {
		t.Fatal(err)
	}
	r, err := decompose.Decompose(mustGen(t, spec))
	if err != nil {
		t.Fatal(err)
	}
	ic, err := icm.FromDecomposed(r.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	nl := buildNetlist(t, ic)
	s := nl.Stats()
	// Sanity bands: modules within [C, 4C], every loop penetrates ≥ 2
	// modules on average.
	c := len(ic.CNOTs)
	if s.Modules < c/2 || s.Modules > 6*c {
		t.Errorf("modules %d out of sanity band for %d CNOTs", s.Modules, c)
	}
	if s.Loops != c {
		t.Errorf("loops %d want %d", s.Loops, c)
	}
	if s.Segments < 2*c {
		t.Errorf("segments %d too few for %d CNOTs", s.Segments, c)
	}
	t.Logf("%s: %d modules, %d segments, %d loops", spec.Name, s.Modules, s.Segments, s.Loops)
}

// Property: for any generated circuit, modularization yields a netlist
// where every loop's penetration count equals its line span, and the
// canonical volume identity D×W×H = 3C × L × 2 holds.
func TestQuickModularizationInvariants(t *testing.T) {
	f := func(q uint8, nt, nn uint8, seed int64) bool {
		spec := qc.BenchmarkSpec{
			Name:     "fuzz",
			Qubits:   3 + int(q%8),
			Toffolis: 1 + int(nt%5),
			NOTs:     int(nn % 5),
			Seed:     seed,
		}
		r, err := decompose.Decompose(mustGen(t, spec))
		if err != nil {
			return false
		}
		ic, err := icm.FromDecomposed(r.Circuit)
		if err != nil {
			return false
		}
		d, err := canonical.Build(ic)
		if err != nil {
			return false
		}
		w, h, depth := d.Dims()
		if w != len(ic.Lines) || h != 2 || depth != 3*len(ic.CNOTs) {
			return false
		}
		nl, err := Build(d)
		if err != nil || nl.Validate() != nil {
			return false
		}
		for id := range nl.Loops {
			if len(nl.Loops[id].Segments) != len(d.Penetrations(id)) {
				return false
			}
			if len(nl.Loops[id].Segments) < 2 {
				return false // control and target always penetrate
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// mustGen generates a benchmark circuit, failing the test on error.
func mustGen(tb testing.TB, spec qc.BenchmarkSpec) *qc.Circuit {
	tb.Helper()
	c, err := spec.Generate()
	if err != nil {
		tb.Fatal(err)
	}
	return c
}
