// Package gltest exercises the goleak analyzer: every `go` statement in
// library code must be provably bounded — ctx/done-select, WaitGroup join,
// or channel join — and anything unprovable is a finding.
package gltest

import (
	"context"
	"sync"
)

type pool struct {
	wg   sync.WaitGroup
	jobs chan int
}

// worker is ctx-bounded through its own body; spawners of it are accepted
// via its summary fact, not its call site.
func (p *pool) worker(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case j := <-p.jobs:
			_ = j
		}
	}
}

// spin loops forever with no cancellation path.
func spin() {
	for {
	}
}

func (p *pool) start(ctx context.Context) {
	go p.worker(ctx) // ok: callee's summary says it observes ctx.Done

	go func() { // ok: body selects on ctx.Done
		select {
		case <-ctx.Done():
		case j := <-p.jobs:
			_ = j
		}
	}()

	go spin() // want `goroutine is neither ctx/done-bounded`

	go func() { // want `goroutine is neither ctx/done-bounded`
		n := 0
		for {
			n++
		}
	}()
}

// drainJobs ranges a channel: bounded by the sender closing it, which is
// the accepted producer/consumer shape.
func (p *pool) drainJobs() {
	go func() { // ok: range over a channel ends when it closes
		for j := range p.jobs {
			_ = j
		}
	}()
}

// joined spawns with the full WaitGroup contract: Add before the spawn,
// Done inside, Wait in the package.
func (p *pool) joined() {
	p.wg.Add(1)
	go func() { // ok: WaitGroup-joined (Wait lives in drain)
		defer p.wg.Done()
	}()
}

func (p *pool) drain() {
	p.wg.Wait()
}

// handshake uses the channel-join proof: the body closes the channel, the
// spawner blocks on it after the spawn.
func handshake() {
	done := make(chan struct{})
	go func() { // ok: channel-joined
		close(done)
	}()
	<-done
}

// fireAndForget has a Done but no Add before the spawn and no Wait pairing;
// the join cannot be proven.
func fireAndForget(wg *sync.WaitGroup) {
	go func() { // want `goroutine is neither ctx/done-bounded`
		wg.Done()
	}()
}
