// Package viz renders compressed TQEC layouts (the paper's Fig. 20): an
// ASCII time-slice view for terminals, a CSV cell dump for external
// plotting, and a Wavefront OBJ export of the module/box/net geometry for
// 3D viewers.
package viz

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/geom"
	"repro/internal/place"
	"repro/internal/route"
)

// CellKind classifies an occupied lattice cell.
type CellKind byte

// Cell kinds, also used as ASCII glyphs.
const (
	CellEmpty  CellKind = '.'
	CellModule CellKind = 'M'
	CellBox    CellKind = 'B'
	CellNet    CellKind = '*'
)

// Scene is a rasterized layout.
type Scene struct {
	Bounds geom.Box
	cells  map[geom.Point]CellKind
}

// BuildScene rasterizes a placement and its routing result.
func BuildScene(p *place.Placement, r *route.Result) *Scene {
	s := &Scene{cells: map[geom.Point]CellKind{}}
	fill := func(b geom.Box, k CellKind) {
		for x := b.Min.X; x < b.Max.X; x++ {
			for y := b.Min.Y; y < b.Max.Y; y++ {
				for z := b.Min.Z; z < b.Max.Z; z++ {
					s.cells[geom.Pt(x, y, z)] = k
				}
			}
		}
		s.Bounds = s.Bounds.Union(b)
	}
	for m := range p.Clust.NL.Modules {
		fill(p.ModuleBox(m), CellModule)
	}
	for _, b := range p.BoxObstacles() {
		fill(b, CellBox)
	}
	if r != nil {
		for _, path := range r.Routes {
			for _, c := range path {
				if _, occupied := s.cells[c]; !occupied {
					s.cells[c] = CellNet
				}
				s.Bounds = s.Bounds.UnionPoint(c)
			}
		}
	}
	return s
}

// At returns the cell kind at p.
func (s *Scene) At(p geom.Point) CellKind {
	if k, ok := s.cells[p]; ok {
		return k
	}
	return CellEmpty
}

// Occupied returns the number of non-empty cells.
func (s *Scene) Occupied() int { return len(s.cells) }

// WriteSlices renders one ASCII panel per z layer (height slice): x grows
// rightward (time), y grows downward.
func (s *Scene) WriteSlices(w io.Writer) error {
	b := s.Bounds
	for z := b.Min.Z; z < b.Max.Z; z++ {
		if _, err := fmt.Fprintf(w, "z=%d\n", z); err != nil {
			return err
		}
		for y := b.Min.Y; y < b.Max.Y; y++ {
			row := make([]byte, 0, b.Dx())
			for x := b.Min.X; x < b.Max.X; x++ {
				row = append(row, byte(s.At(geom.Pt(x, y, z))))
			}
			if _, err := fmt.Fprintf(w, "%s\n", row); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV dumps occupied cells as "x,y,z,kind" rows (deterministic
// order).
func (s *Scene) WriteCSV(w io.Writer) error {
	pts := make([]geom.Point, 0, len(s.cells))
	for p := range s.cells {
		pts = append(pts, p)
	}
	sort.Slice(pts, func(i, j int) bool {
		a, b := pts[i], pts[j]
		if a.Z != b.Z {
			return a.Z < b.Z
		}
		if a.Y != b.Y {
			return a.Y < b.Y
		}
		return a.X < b.X
	})
	if _, err := fmt.Fprintln(w, "x,y,z,kind"); err != nil {
		return err
	}
	for _, p := range pts {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%c\n", p.X, p.Y, p.Z, s.cells[p]); err != nil {
			return err
		}
	}
	return nil
}

// WriteOBJ exports module bodies and boxes as cuboids and routed nets as
// unit cubes in Wavefront OBJ format.
func WriteOBJ(w io.Writer, p *place.Placement, r *route.Result) error {
	vtx := 0
	cube := func(b geom.Box, group string) error {
		if _, err := fmt.Fprintf(w, "g %s\n", group); err != nil {
			return err
		}
		x0, y0, z0 := b.Min.X, b.Min.Y, b.Min.Z
		x1, y1, z1 := b.Max.X, b.Max.Y, b.Max.Z
		corners := [][3]int{
			{x0, y0, z0}, {x1, y0, z0}, {x1, y1, z0}, {x0, y1, z0},
			{x0, y0, z1}, {x1, y0, z1}, {x1, y1, z1}, {x0, y1, z1},
		}
		for _, c := range corners {
			if _, err := fmt.Fprintf(w, "v %d %d %d\n", c[0], c[1], c[2]); err != nil {
				return err
			}
		}
		faces := [][4]int{
			{1, 2, 3, 4}, {5, 8, 7, 6}, {1, 5, 6, 2}, {2, 6, 7, 3}, {3, 7, 8, 4}, {4, 8, 5, 1},
		}
		for _, f := range faces {
			if _, err := fmt.Fprintf(w, "f %d %d %d %d\n", vtx+f[0], vtx+f[1], vtx+f[2], vtx+f[3]); err != nil {
				return err
			}
		}
		vtx += 8
		return nil
	}
	for m := range p.Clust.NL.Modules {
		if err := cube(p.ModuleBox(m), fmt.Sprintf("module_%d", m)); err != nil {
			return err
		}
	}
	for i, b := range p.BoxObstacles() {
		if err := cube(b, fmt.Sprintf("box_%d", i)); err != nil {
			return err
		}
	}
	if r != nil {
		ids := make([]int, 0, len(r.Routes))
		for id := range r.Routes {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			for _, c := range r.Routes[id] {
				if err := cube(geom.CellBox(c), fmt.Sprintf("net_%d", id)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
