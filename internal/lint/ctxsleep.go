package lint

import (
	"go/ast"
)

// CtxSleep flags time.Sleep inside a loop in library code: a sleep-based
// retry/poll loop is blind to the caller's context — it keeps burning the
// deadline (and the worker) after cancellation, exactly the failure mode
// internal/resilience exists to prevent. Such loops must use
// resilience.Do (context-aware backoff) or an explicit timer/ctx select.
// A one-shot sleep outside a loop, main packages and _test.go files stay
// legal; a reviewed exception carries a //lint:ignore ctxsleep directive.
var CtxSleep = &Analyzer{
	Name: "ctxsleep",
	Doc:  "no time.Sleep retry loops in library code: use internal/resilience or a timer/ctx select",
	Run:  runCtxSleep,
}

func runCtxSleep(pass *Pass) {
	if pass.Pkg.IsMain() {
		return
	}
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			checkLoopSleeps(pass, body)
			return true
		})
	}
}

// checkLoopSleeps reports every time.Sleep directly under a loop body.
// Function literals are skipped (a closure built inside the loop runs on
// its own schedule, not as the loop's backoff), and so are nested loops —
// the enclosing Inspect pass visits those itself, keeping each sleep
// reported exactly once.
func checkLoopSleeps(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt:
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pkgFunc(calleeFunc(pass.Pkg.Info, call)) == "time.Sleep" {
			pass.Reportf(call.Pos(), "time.Sleep in a loop is context-blind: use resilience.Do or a timer/ctx select")
		}
		return true
	})
}
