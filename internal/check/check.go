// Package check is the pipeline's differential and invariant verifier.
// It re-derives, from first principles, the structural guarantees every
// stage of the bridge-based compression flow claims to maintain — bridging
// reconstructability (Algorithm 1's chains decompose back into the
// original dual loops), placement legality (overlap freedom, tier
// discipline, time ordering), routing legality (re-walked paths against
// static obstacles and pin anchors), and volume accounting (the reported
// compression metrics reconcile with the geometry) — and cross-checks the
// pipeline's determinism contracts differentially: multi-chain SA
// placement against its sequential twin, concurrent routing against the
// serial pass, cached compile bytes against a fresh compile, bridged
// against unbridged compilations, ZX-rewritten against unrewritten
// compilations, and partitioned against whole-circuit compilations (all
// backed by state-vector simulation on small circuits).
//
// The passes are pure observers: they never mutate the result under test.
// cmd/tqecverify drives them from the command line, `make check` wires
// them into CI, and FuzzPipelineInvariants feeds them randomized circuits.
package check

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/qc"
	"repro/tqec"
)

// PassResult records one verification pass's outcome.
type PassResult struct {
	// Name identifies the pass (e.g. "bridge-reconstructable").
	Name string
	// Err is nil when the pass succeeded.
	Err error
	// Skipped marks a pass that did not apply to this target (e.g. a
	// simulation bound was exceeded); Err is nil for skipped passes.
	Skipped bool
	// Detail optionally summarizes what the pass covered.
	Detail string
}

// Report aggregates the pass results for one verification target.
type Report struct {
	// Target names the circuit or benchmark verified.
	Target string
	// Passes lists every pass outcome in execution order.
	Passes []PassResult
}

// OK reports whether every pass succeeded (skipped passes count as ok).
func (r *Report) OK() bool {
	for _, p := range r.Passes {
		if p.Err != nil {
			return false
		}
	}
	return true
}

// Err returns the first pass failure, or nil when the report is clean.
func (r *Report) Err() error {
	for _, p := range r.Passes {
		if p.Err != nil {
			return fmt.Errorf("check: %s: %s: %w", r.Target, p.Name, p.Err)
		}
	}
	return nil
}

// String renders the report as one line per pass.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", r.Target)
	for _, p := range r.Passes {
		status := "ok"
		switch {
		case p.Err != nil:
			status = "FAIL: " + p.Err.Error()
		case p.Skipped:
			status = "skip"
		}
		fmt.Fprintf(&b, "  %-22s %s", p.Name, status)
		if p.Detail != "" && p.Err == nil {
			fmt.Fprintf(&b, " (%s)", p.Detail)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Config selects which pass families a Run executes.
type Config struct {
	// Opts configures the primary compilation under test.
	Opts tqec.Options
	// Differentials enables the recompilation-based passes (extra
	// placements, routings and compiles on top of the primary one).
	Differentials bool
	// MaxSimQubits bounds state-vector equivalence checking inside the
	// bridging differential: circuits whose decomposed form needs more
	// qubits skip the simulation (0 disables simulation entirely).
	MaxSimQubits int
	// Chains is the multi-chain fan-out K exercised by the placement
	// determinism differential (values below 2 default to 2).
	Chains int
}

// DefaultConfig returns the full pass set with fast compile options and a
// simulation bound affordable on a laptop.
func DefaultConfig() Config {
	return Config{
		Opts:          tqec.FastOptions(),
		Differentials: true,
		MaxSimQubits:  16,
		Chains:        2,
	}
}

// Run compiles the circuit once and executes every configured pass
// against the result. The compile error, if any, is returned directly;
// pass failures land in the report.
func Run(ctx context.Context, c *qc.Circuit, cfg Config) (*Report, error) {
	res, err := tqec.CompileContext(ctx, c, cfg.Opts)
	if err != nil {
		return nil, fmt.Errorf("check: compile %s: %w", c.Name, err)
	}
	return Result(ctx, res, cfg), nil
}

// RunBenchmark generates one of the paper's RevLib benchmarks and runs
// the configured passes on it.
func RunBenchmark(ctx context.Context, name string, cfg Config) (*Report, error) {
	spec, err := qc.BenchmarkByName(name)
	if err != nil {
		return nil, fmt.Errorf("check: %w", err)
	}
	c, err := spec.Generate()
	if err != nil {
		return nil, fmt.Errorf("check: %w", err)
	}
	return Run(ctx, c, cfg)
}

// Result executes the configured passes against an existing compilation
// result. The invariant passes always run; the differential passes run
// when cfg.Differentials is set.
func Result(ctx context.Context, res *tqec.Result, cfg Config) *Report {
	target := "circuit"
	if res.Circuit != nil && res.Circuit.Name != "" {
		target = res.Circuit.Name
	} else if res.ICM != nil && res.ICM.Name != "" {
		target = res.ICM.Name
	}
	rep := &Report{Target: target}
	add := func(name string, detail string, err error) {
		rep.Passes = append(rep.Passes, PassResult{Name: name, Err: err, Detail: detail})
	}

	add("bridge-reconstructable",
		fmt.Sprintf("%d loops, %d structures", len(res.Netlist.Loops), len(res.Bridging.Structures)),
		BridgeReconstructable(res))
	add("placement-legal",
		fmt.Sprintf("%d supers, %d tiers", len(res.Placement.Clust.Supers), res.Placement.Tiers),
		PlacementLegal(res))
	add("routing-legal",
		fmt.Sprintf("%d nets", len(res.Bridging.Nets)),
		RoutingLegal(res))
	add("volume-accounting",
		fmt.Sprintf("volume %d", res.Volume),
		VolumeAccounting(res))

	if !cfg.Differentials {
		return rep
	}
	chains := cfg.Chains
	if chains < 2 {
		chains = 2
	}
	add("diff-chains", fmt.Sprintf("K=%d", chains), DiffChains(ctx, res, cfg.Opts, chains))
	add("diff-serial-routing", "", DiffSerialRouting(ctx, res, cfg.Opts))
	if res.Circuit != nil {
		add("diff-cache-bytes", "", DiffCacheBytes(ctx, res, cfg.Opts))
		simmed, err := DiffBridging(ctx, res, cfg.Opts, cfg.MaxSimQubits)
		detail := "sim skipped"
		if simmed {
			detail = "sim verified"
		}
		add("diff-bridging", detail, err)
		simmed, err = DiffZX(ctx, res, cfg.Opts, cfg.MaxSimQubits)
		detail = "sim skipped"
		if simmed {
			detail = "sim verified"
		}
		add("diff-zx", detail, err)
		simmed, err = DiffPartition(ctx, res, cfg.Opts, cfg.MaxSimQubits)
		detail = "sim skipped"
		if simmed {
			detail = "sim verified"
		}
		add("diff-partition", detail, err)
	} else {
		rep.Passes = append(rep.Passes,
			PassResult{Name: "diff-cache-bytes", Skipped: true, Detail: "no source circuit"},
			PassResult{Name: "diff-bridging", Skipped: true, Detail: "no source circuit"},
			PassResult{Name: "diff-zx", Skipped: true, Detail: "no source circuit"},
			PassResult{Name: "diff-partition", Skipped: true, Detail: "no source circuit"})
	}
	return rep
}
