package zx

import (
	"fmt"

	"repro/internal/qc"
)

// zPhaseUnits maps a decomposed diagonal gate kind to its Z-spider phase in
// π/4 units, or -1 when the kind is not a Z-phase gate.
func zPhaseUnits(k qc.GateKind) int {
	switch k {
	case qc.GateT:
		return 1
	case qc.GateP:
		return 2
	case qc.GateZ:
		return 4
	case qc.GatePdag:
		return 6
	case qc.GateTdag:
		return 7
	}
	return -1
}

// xPhaseUnits maps a decomposed X-basis gate kind to its X-spider phase in
// π/4 units, or -1 when the kind is not an X-phase gate.
func xPhaseUnits(k qc.GateKind) int {
	switch k {
	case qc.GateV:
		return 2
	case qc.GateNOT:
		return 4
	case qc.GateVdag:
		return 6
	}
	return -1
}

// fromCircuit translates a decomposed circuit ({CNOT, P, P†, V, V†, T, T†,
// NOT, Z}, no controls outside CNOT) into a ZX diagram and normalizes it to
// graph-like form: only Z-spiders remain, connected among themselves by
// plain or Hadamard edges with no parallels or self-loops.
func fromCircuit(c *qc.Circuit) (*diagram, error) {
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("zx: invalid circuit: %w", err)
	}
	d := newDiagram(c.NumQubits())
	// last[q] is the most recent vertex on wire q; wires close onto the
	// output boundaries at the end.
	last := make([]int, c.NumQubits())
	copy(last, d.ins)
	app := func(q, v int) error {
		if err := d.connect(last[q], v, ePlain); err != nil {
			return err
		}
		last[q] = v
		return nil
	}
	for i, g := range c.Gates {
		if len(g.Controls) > 0 && g.Kind != qc.GateCNOT {
			return nil, fmt.Errorf("zx: gate %d (%v): controlled gates other than CNOT must be decomposed first", i, g.Kind)
		}
		switch {
		case g.Kind == qc.GateCNOT:
			ctl := d.newVertex(vZ, 0, -1)
			tgt := d.newVertex(vX, 0, -1)
			if err := app(g.Controls[0], ctl); err != nil {
				return nil, err
			}
			if err := app(g.Targets[0], tgt); err != nil {
				return nil, err
			}
			if err := d.connect(ctl, tgt, ePlain); err != nil {
				return nil, err
			}
		case zPhaseUnits(g.Kind) >= 0:
			v := d.newVertex(vZ, zPhaseUnits(g.Kind), -1)
			if err := app(g.Targets[0], v); err != nil {
				return nil, err
			}
		case xPhaseUnits(g.Kind) >= 0:
			v := d.newVertex(vX, xPhaseUnits(g.Kind), -1)
			if err := app(g.Targets[0], v); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("zx: gate %d: kind %v is not in the decomposed gate set", i, g.Kind)
		}
	}
	for q := 0; q < c.NumQubits(); q++ {
		if err := d.connect(last[q], d.outs[q], ePlain); err != nil {
			return nil, err
		}
	}
	d.toGraphLike()
	return d, nil
}

// toGraphLike applies the color-change rule to every X-spider: the spider
// becomes a Z-spider and each incident edge toggles between plain and
// Hadamard. An edge between two X-spiders toggles twice — once per
// endpoint conversion — restoring its original type, which is exactly the
// Hadamard-conjugation bookkeeping the rule demands.
func (d *diagram) toGraphLike() {
	for v := range d.kinds {
		if d.kinds[v] != vX {
			continue
		}
		d.kinds[v] = vZ
		for _, n := range d.neighbors(v) {
			if d.edge(v, n) == ePlain {
				d.setEdge(v, n, eHada)
			} else {
				d.setEdge(v, n, ePlain)
			}
		}
	}
}
