package cluster

import (
	"testing"

	"repro/internal/bridge"
	"repro/internal/canonical"
	"repro/internal/decompose"
	"repro/internal/distill"
	"repro/internal/icm"
	"repro/internal/modular"
	"repro/internal/qc"
)

func netlistFor(t testing.TB, c *qc.Circuit, bridged bool) *modular.Netlist {
	t.Helper()
	r, err := decompose.Decompose(c)
	if err != nil {
		t.Fatal(err)
	}
	ic, err := icm.FromDecomposed(r.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	d, err := canonical.Build(ic)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := modular.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bridge.Run(nl, bridged); err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestSingleTGate(t *testing.T) {
	c := qc.New("t", 1)
	c.Append(qc.T(0))
	nl := netlistFor(t, c, false)
	cl, err := Build(nl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := cl.Stats()
	if st.TimeDep != 1 {
		t.Fatalf("time-dependent supers: %d want 1", st.TimeDep)
	}
	// The T block's |A⟩ and |Y⟩ injections coincide with teleport
	// modules, so their boxes are embedded in the time-dependent super.
	var td *Super
	for i := range cl.Supers {
		if cl.Supers[i].Kind == KindTimeDep {
			td = &cl.Supers[i]
		}
	}
	if len(td.Members) != 5 {
		t.Fatalf("T super members: %d want 5", len(td.Members))
	}
	if len(td.Boxes) != 2 {
		t.Fatalf("T super boxes: %d want 2 (one |A⟩, one |Y⟩)", len(td.Boxes))
	}
	var haveY, haveA bool
	for _, b := range td.Boxes {
		if b.Kind == BoxY {
			haveY = true
		}
		if b.Kind == BoxA {
			haveA = true
		}
	}
	if !haveY || !haveA {
		t.Fatal("T super should embed one Y and one A box")
	}
	if len(cl.TSLs[0]) != 1 {
		t.Fatalf("TSL: %v", cl.TSLs)
	}
}

func TestZModuleLeftOfTeleports(t *testing.T) {
	c := qc.New("t", 1)
	c.Append(qc.T(0))
	nl := netlistFor(t, c, false)
	cl, err := Build(nl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range cl.Supers {
		if s.Kind != KindTimeDep {
			continue
		}
		zRight := s.Offsets[0].X + ModuleSize(nl, s.Members[0]).X
		for i := 1; i < len(s.Members); i++ {
			if s.Offsets[i].X < zRight {
				t.Fatalf("teleport module %d at x=%d not right of Z module (right edge %d)",
					s.Members[i], s.Offsets[i].X, zRight)
			}
			// Every teleport measurement must end after the Z module
			// ends (the time-ordered measurement constraint).
			sz := ModuleSize(nl, s.Members[i])
			if s.Offsets[i].X+sz.X < zRight {
				t.Fatalf("teleport module %d ends before Z module", s.Members[i])
			}
		}
	}
}

func TestDistillInjForPGate(t *testing.T) {
	c := qc.New("p", 1)
	c.Append(qc.P(0), qc.CNOT(0, 0)) // second gate invalid; drop it
	c.Gates = c.Gates[:1]
	// A single P gate has one CNOT, so the injection line has a module.
	nl := netlistFor(t, c, false)
	cl, err := Build(nl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := cl.Stats()
	if st.DistillInj != 1 {
		t.Fatalf("distill-injection supers: %d want 1", st.DistillInj)
	}
	for _, s := range cl.Supers {
		if s.Kind != KindDistillInj {
			continue
		}
		if len(s.Boxes) != 1 || s.Boxes[0].Kind != BoxY {
			t.Fatalf("P injection should get a Y box: %+v", s.Boxes)
		}
		// Box strictly left of the module (state must be ready before
		// injection).
		boxRight := s.Boxes[0].Offset.X + s.Boxes[0].Kind.Size().X
		if s.Offsets[0].X < boxRight {
			t.Fatal("box must precede injected module in time")
		}
	}
}

func TestPrimalGroupsReduceNodes(t *testing.T) {
	spec, err := qc.BenchmarkByName("4gt10-v1_81")
	if err != nil {
		t.Fatal(err)
	}
	nlA := netlistFor(t, mustGen(t, spec), true)
	with, err := Build(nlA, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	nlB := netlistFor(t, mustGen(t, spec), true)
	without, err := Build(nlB, Options{PrimalGroups: false, MaxGroupSize: 6})
	if err != nil {
		t.Fatal(err)
	}
	if with.Stats().Nodes >= without.Stats().Nodes {
		t.Fatalf("primal groups should reduce nodes: %d vs %d",
			with.Stats().Nodes, without.Stats().Nodes)
	}
	t.Logf("%s: nodes %d (journal) vs %d (conference), modules %d",
		spec.Name, with.Stats().Nodes, without.Stats().Nodes, len(nlA.Modules))
}

func TestEveryModuleAssignedOnce(t *testing.T) {
	spec, err := qc.BenchmarkByName("4gt10-v1_81")
	if err != nil {
		t.Fatal(err)
	}
	nl := netlistFor(t, mustGen(t, spec), true)
	cl, err := Build(nl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, len(nl.Modules))
	for _, s := range cl.Supers {
		for _, m := range s.Members {
			counts[m]++
		}
	}
	for m, n := range counts {
		if n != 1 {
			t.Fatalf("module %d in %d supers", m, n)
		}
	}
}

func TestTSLOrdering(t *testing.T) {
	c := qc.New("tt", 1)
	c.Append(qc.T(0), qc.T(0), qc.T(0))
	nl := netlistFor(t, c, false)
	cl, err := Build(nl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.TSLs[0]) != 3 {
		t.Fatalf("TSL length: %d want 3", len(cl.TSLs[0]))
	}
	for k, id := range cl.TSLs[0] {
		if cl.Supers[id].Seq != k {
			t.Fatalf("TSL[%d] has Seq %d", k, cl.Supers[id].Seq)
		}
	}
}

func TestModuleSizeTracksLiveSegments(t *testing.T) {
	c := qc.New("sz", 3)
	c.Append(qc.CNOT(0, 1), qc.CNOT(1, 2))
	nl := netlistFor(t, c, false)
	m := nl.ModulesOfLine[1][0] // two segments
	if got := ModuleSize(nl, m); got.X != 3 || got.Y != 3 || got.Z != 2 {
		t.Fatalf("size with 2 segments: %v", got)
	}
	nl.Segments[nl.Modules[m].Segments[0]].Removed = true
	if got := ModuleSize(nl, m); got.X != 2 {
		t.Fatalf("size with 1 live segment: %v", got)
	}
}

func TestPinOffset(t *testing.T) {
	c := qc.New("pin", 2)
	c.Append(qc.CNOT(0, 1))
	nl := netlistFor(t, c, false)
	cl, err := Build(nl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	seg := nl.Segments[0]
	lo, err := cl.PinOffset(seg.Pins[0])
	if err != nil {
		t.Fatal(err)
	}
	hi, err := cl.PinOffset(seg.Pins[1])
	if err != nil {
		t.Fatal(err)
	}
	if lo.Z != -1 || hi.Z != 2 {
		t.Fatalf("pin z offsets: %v %v", lo, hi)
	}
	if lo.X != hi.X || lo.Y != hi.Y {
		t.Fatal("the two pins of a segment share x/y")
	}
	// Removed segments have no pins.
	nl.Segments[0].Removed = true
	if _, err := cl.PinOffset(seg.Pins[0]); err == nil {
		t.Fatal("pin of removed segment should error")
	}
}

func TestBoxSizes(t *testing.T) {
	if BoxY.Size() != distill.YBoxSize || BoxA.Size() != distill.ABoxSize {
		t.Fatal("box sizes must match distill package")
	}
}

func TestConferenceVsJournalAtScale(t *testing.T) {
	// Table I's #Nodes column: the journal version roughly halves the
	// node count relative to per-module placement.
	spec, err := qc.BenchmarkByName("4gt4-v0_73")
	if err != nil {
		t.Fatal(err)
	}
	nl := netlistFor(t, mustGen(t, spec), true)
	cl, err := Build(nl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	nodes := cl.Stats().Nodes
	modules := len(nl.Modules)
	if nodes >= modules {
		t.Fatalf("clustering should reduce problem size: %d nodes for %d modules", nodes, modules)
	}
	t.Logf("%s: %d modules → %d nodes (%.0f%%)", spec.Name, modules, nodes,
		100*float64(nodes)/float64(modules))
}

// mustGen generates a benchmark circuit, failing the test on error.
func mustGen(tb testing.TB, spec qc.BenchmarkSpec) *qc.Circuit {
	tb.Helper()
	c, err := spec.Generate()
	if err != nil {
		tb.Fatal(err)
	}
	return c
}
