package zx

import "fmt"

// vkind enumerates the vertex kinds of a ZX diagram. Boundary vertices
// (vIn/vOut) carry a qubit index and always have degree one; spiders carry
// a phase in units of π/4. X-spiders exist only transiently while a
// circuit is being translated: toGraphLike converts every one of them into
// a Z-spider by toggling its incident edge types (the color-change rule),
// so the rewrite engine and the extractor only ever see Z-spiders.
type vkind uint8

const (
	vDead vkind = iota // removed vertex slot
	vIn                // input boundary
	vOut               // output boundary
	vZ                 // Z-spider
	vX                 // X-spider (build-time only)
)

// ekind is an edge type: absent, a plain wire, or a Hadamard edge.
type ekind uint8

const (
	eNone  ekind = iota
	ePlain       // identity wire
	eHada        // Hadamard edge
)

// diagram is an open ZX diagram over a fixed set of qubit wires. Vertices
// are identified by dense IDs; removed vertices stay as dead slots so IDs
// are stable. The adjacency is simple (no parallel edges, no self-loops):
// connect resolves would-be parallel edges and self-loops immediately with
// the Hopf and fusion laws, which keeps the diagram graph-like at all
// times.
type diagram struct {
	kinds  []vkind
	phases []int // spider phase in π/4 units, always normalized to 0..7
	qubits []int // boundary vertices: qubit index; spiders: -1
	adj    []map[int]ekind

	// ins and outs hold the boundary vertex of each qubit wire.
	ins, outs []int
}

// newDiagram returns an empty diagram with boundary vertices for n qubits.
func newDiagram(n int) *diagram {
	d := &diagram{}
	d.ins = make([]int, n)
	d.outs = make([]int, n)
	for q := 0; q < n; q++ {
		d.ins[q] = d.newVertex(vIn, 0, q)
	}
	for q := 0; q < n; q++ {
		d.outs[q] = d.newVertex(vOut, 0, q)
	}
	return d
}

// newVertex appends a vertex and returns its ID.
func (d *diagram) newVertex(k vkind, phase, qubit int) int {
	id := len(d.kinds)
	d.kinds = append(d.kinds, k)
	d.phases = append(d.phases, phase&7)
	d.qubits = append(d.qubits, qubit)
	d.adj = append(d.adj, map[int]ekind{})
	return id
}

// alive reports whether v is a live vertex.
func (d *diagram) alive(v int) bool { return d.kinds[v] != vDead }

// spider reports whether v is a live Z- or X-spider.
func (d *diagram) spider(v int) bool { return d.kinds[v] == vZ || d.kinds[v] == vX }

// boundary reports whether v is a live boundary vertex.
func (d *diagram) boundary(v int) bool { return d.kinds[v] == vIn || d.kinds[v] == vOut }

// edge returns the edge type between u and v (eNone when absent).
func (d *diagram) edge(u, v int) ekind { return d.adj[u][v] }

// setEdge records an edge unconditionally (no resolution).
func (d *diagram) setEdge(u, v int, k ekind) {
	d.adj[u][v] = k
	d.adj[v][u] = k
}

// delEdge removes the edge between u and v, if any.
func (d *diagram) delEdge(u, v int) {
	delete(d.adj[u], v)
	delete(d.adj[v], u)
}

// degree returns the number of incident edges.
func (d *diagram) degree(v int) int { return len(d.adj[v]) }

// addPhase adds k (π/4 units) to a spider's phase, mod 2π.
func (d *diagram) addPhase(v, k int) {
	d.phases[v] = (d.phases[v] + k%8 + 8) & 7
}

// neighbors returns v's neighbor IDs in ascending order. Every iteration
// over adjacency goes through this accessor so the rewrite engine and the
// extractor are deterministic regardless of map iteration order.
func (d *diagram) neighbors(v int) []int {
	ns := make([]int, 0, len(d.adj[v]))
	for n := range d.adj[v] {
		ns = append(ns, n)
	}
	insertionSort(ns)
	return ns
}

// insertionSort orders a small int slice ascending without importing sort
// in the hot path (neighbor lists are tiny).
func insertionSort(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// removeVertex deletes v and every incident edge.
func (d *diagram) removeVertex(v int) {
	for n := range d.adj[v] {
		delete(d.adj[n], v)
	}
	d.adj[v] = map[int]ekind{}
	d.kinds[v] = vDead
	d.phases[v] = 0
	d.qubits[v] = -1
}

// adjacentToKind reports whether v has a neighbor of boundary kind k.
func (d *diagram) adjacentToKind(v int, k vkind) bool {
	for n := range d.adj[v] {
		if d.kinds[n] == k {
			return true
		}
	}
	return false
}

// connect adds an edge of type k between u and v, resolving self-loops and
// would-be parallel edges immediately with the standard graph-like
// rewrite laws. Both endpoints of a resolved parallel edge must be
// Z-spiders (the laws below are the same-color forms); a parallel edge at
// a boundary vertex indicates an internal invariant violation and is
// reported as an error.
//
//   - A plain self-loop is the identity and vanishes.
//   - A Hadamard self-loop adds π to the spider's phase.
//   - Parallel Hadamard edges between Z-spiders cancel mod 2 (Hopf law).
//   - Parallel plain edges between Z-spiders collapse to one (fusing along
//     either leaves a vanishing plain self-loop, and re-splitting recovers
//     the single-edge form).
//
// A plain edge parallel to a Hadamard edge has no local resolution that
// keeps both spiders (it forces a fusion), so it is reported as an error;
// the rewrite rules pre-check for that shape and skip rather than create
// it.
func (d *diagram) connect(u, v int, k ekind) error {
	if k == eNone {
		return nil
	}
	if u == v {
		if k == eHada {
			d.addPhase(u, 4)
		}
		return nil
	}
	cur := d.edge(u, v)
	if cur == eNone {
		d.setEdge(u, v, k)
		return nil
	}
	if d.kinds[u] != vZ || d.kinds[v] != vZ {
		return fmt.Errorf("zx: parallel edge at non-Z vertex pair %d-%d", u, v)
	}
	switch {
	case cur == eHada && k == eHada:
		d.delEdge(u, v)
	case cur == ePlain && k == ePlain:
		// keep the single plain edge
	default:
		return fmt.Errorf("zx: mixed parallel edge between %d and %d", u, v)
	}
	return nil
}

// toggleHada flips the presence of a Hadamard edge between two Z-spiders
// (the elementary step of local complementation and pivoting). The caller
// guarantees no plain edge exists between them.
func (d *diagram) toggleHada(u, v int) {
	if d.edge(u, v) == eHada {
		d.delEdge(u, v)
	} else {
		d.setEdge(u, v, eHada)
	}
}

// spiderCount returns the number of live spiders.
func (d *diagram) spiderCount() int {
	n := 0
	for v := range d.kinds {
		if d.spider(v) {
			n++
		}
	}
	return n
}
