package icm

import "sort"

// RecycleWires computes a wire-recycling assignment in the spirit of Paler
// & Wille's causal-graph optimization (Section I-B of the paper): two ICM
// lines may share one physical wire when their lifetimes — from first to
// last CNOT in the ASAP schedule — are disjoint with at least one slot of
// separation (the measurement of the first must strictly precede the
// initialization of the second).
//
// It returns the wire index of every line and the number of wires used, a
// left-edge greedy coloring of the lifetime interval graph (optimal for
// interval graphs). Lines never touched by a CNOT share a single parking
// wire. The assignment is analysis-only: it bounds how far the canonical
// width could shrink before geometric compression even starts.
func (c *Circuit) RecycleWires() (wireOf []int, numWires int) {
	slots, _ := c.ScheduleASAP()
	type lifetime struct {
		line, lo, hi int
	}
	lives := make([]lifetime, 0, len(c.Lines))
	first := make([]int, len(c.Lines))
	last := make([]int, len(c.Lines))
	for i := range c.Lines {
		first[i], last[i] = -1, -1
	}
	for _, g := range c.CNOTs {
		s := slots[g.ID]
		for _, ln := range []int{g.Control, g.Target} {
			if first[ln] < 0 {
				first[ln] = s
			}
			last[ln] = s
		}
	}
	wireOf = make([]int, len(c.Lines))
	for i := range wireOf {
		wireOf[i] = -1
	}
	idleWire := -1
	for i := range c.Lines {
		if first[i] < 0 {
			// Untouched line: park all of them on one shared wire.
			if idleWire < 0 {
				idleWire = numWires
				numWires++
			}
			wireOf[i] = idleWire
			continue
		}
		lives = append(lives, lifetime{line: i, lo: first[i], hi: last[i]})
	}
	sort.Slice(lives, func(a, b int) bool {
		if lives[a].lo != lives[b].lo {
			return lives[a].lo < lives[b].lo
		}
		return lives[a].line < lives[b].line
	})
	// Left-edge: wires ordered by when they free up.
	type wire struct {
		id     int
		freeAt int // next slot this wire can host an initialization
	}
	var wires []wire
	for _, lv := range lives {
		assigned := false
		for w := range wires {
			if wires[w].freeAt <= lv.lo {
				wireOf[lv.line] = wires[w].id
				wires[w].freeAt = lv.hi + 2 // one idle slot between tenants
				assigned = true
				break
			}
		}
		if !assigned {
			id := numWires
			numWires++
			wires = append(wires, wire{id: id, freeAt: lv.hi + 2})
			wireOf[lv.line] = id
		}
	}
	return wireOf, numWires
}
