# Build/verify entry points. `make ci` is the full gate: vet, build,
# race-enabled tests, and a replay of the committed fuzz corpora.

GO ?= go

.PHONY: all build vet test race fuzz-seeds bench ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Replay the committed fuzz seed corpora as plain regression tests.
fuzz-seeds:
	$(GO) test -run 'Fuzz' ./internal/qc/

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

ci: vet build race fuzz-seeds
