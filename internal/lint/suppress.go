package lint

import (
	"strings"
)

// ignorePrefix is the directive marker. The form is
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// with no space between "//" and "lint": the directive shape Go reserves
// for machine-read comments.
const ignorePrefix = "//lint:ignore"

// directive is one parsed //lint:ignore comment, tracked through the run
// so suppressions that never match a finding can be audited: a directive
// nothing fires under is a stale exemption hiding nothing, and deleting it
// re-arms the check it names.
type directive struct {
	file      string
	line, col int
	analyzers []string
	used      map[string]bool
}

// suppressionSet indexes the ignore directives of one package. A directive
// suppresses matching findings on its own line (trailing-comment form) and
// on the line directly below it (preceding-comment form).
type suppressionSet struct {
	// byFile maps filename -> line -> analyzer -> the directives covering
	// that (line, analyzer).
	byFile map[string]map[int]map[string][]*directive
	// directives holds every well-formed directive in source order for the
	// post-run audit.
	directives []*directive
	// malformed collects directives missing an analyzer or a reason,
	// reported under the pseudo-analyzer "lint".
	malformed []Finding
}

func collectSuppressions(pkg *Package) *suppressionSet {
	s := &suppressionSet{byFile: map[string]map[int]map[string][]*directive{}}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(c.Text, ignorePrefix))
				if len(fields) < 2 {
					s.malformed = append(s.malformed, Finding{
						Analyzer: "lint",
						Message:  `malformed //lint:ignore directive: want "//lint:ignore <analyzer> <reason>"`,
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
					})
					continue
				}
				d := &directive{
					file:      pos.Filename,
					line:      pos.Line,
					col:       pos.Column,
					analyzers: strings.Split(fields[0], ","),
					used:      map[string]bool{},
				}
				s.directives = append(s.directives, d)
				lines := s.byFile[pos.Filename]
				if lines == nil {
					lines = map[int]map[string][]*directive{}
					s.byFile[pos.Filename] = lines
				}
				for _, name := range d.analyzers {
					for _, line := range []int{pos.Line, pos.Line + 1} {
						set := lines[line]
						if set == nil {
							set = map[string][]*directive{}
							lines[line] = set
						}
						set[name] = append(set[name], d)
					}
				}
			}
		}
	}
	return s
}

// covers reports whether a directive suppresses the finding, marking the
// matching directives as used for the audit.
func (s *suppressionSet) covers(f Finding) bool {
	ds := s.byFile[f.File][f.Line][f.Analyzer]
	for _, d := range ds {
		d.used[f.Analyzer] = true
	}
	return len(ds) > 0
}

// audit reports directives that did nothing this run: names that are not
// registered analyzers (a typo silently disabling nothing), and names that
// are in the run set but matched no finding (the suppressed violation is
// gone — delete the directive and re-arm the check). Names of registered
// analyzers outside the run set are left alone: a partial run cannot know
// whether they would fire.
func (s *suppressionSet) audit(runSet map[string]bool) []Finding {
	var out []Finding
	for _, d := range s.directives {
		for _, name := range d.analyzers {
			f := Finding{Analyzer: "lint", File: d.file, Line: d.line, Col: d.col}
			switch {
			case name != "lint" && ByName(name) == nil:
				f.Message = "//lint:ignore names unknown analyzer " + name + ": it suppresses nothing"
			case runSet[name] && !d.used[name]:
				f.Message = "unused //lint:ignore " + name + ": no finding fires here anymore; delete the directive to re-arm the check"
			default:
				continue
			}
			out = append(out, f)
		}
	}
	return out
}
