package server

// This file is the server's resilience glue: journal appends and crash
// recovery, the retry loop around the compile path, the circuit-breaker
// gate, and deadline-aware admission control. The mechanisms themselves
// live in internal/journal and internal/resilience; everything here is
// policy — which events are durable, which failures count as systemic,
// and when a request is doomed enough to reject on arrival.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/ccache"
	"repro/internal/faults"
	"repro/internal/journal"
	"repro/internal/resilience"
)

// gate runs the pre-queue rejection checks for a request that will need a
// worker: admission control first (it consumes nothing), then the circuit
// breaker (whose half-open probe slot the caller must resolve — by running
// the compile or by breaker.Abandon on a pre-compute rejection).
func (s *Server) gate(timeout time.Duration) *apiError {
	if ae := s.admit(timeout); ae != nil {
		return ae
	}
	if err := s.breaker.Allow(); err != nil {
		ae := compileError(err)
		ae.RetryAfter = s.breaker.RetryAfter()
		return ae
	}
	return nil
}

// admit is the deadline-aware admission controller: it estimates how long
// the queue takes to drain — pending work over the worker count, in waves
// of the exponentially weighted mean compile latency — and rejects a
// request on arrival when that estimate already exceeds its deadline.
// Queuing such a request wastes a worker on an answer nobody is waiting
// for; rejecting it immediately with Retry-After lets the client back off
// or route elsewhere. With no latency estimate yet (a cold server) or an
// idle worker available, everything is admitted.
func (s *Server) admit(timeout time.Duration) *apiError {
	if s.cfg.DisableAdmission {
		return nil
	}
	ew := s.compileEWMA.Load()
	if ew <= 0 {
		return nil
	}
	depth, _ := s.pool.depth()
	busy := s.pool.busy.Value()
	if depth == 0 && busy < int64(s.cfg.Workers) {
		return nil
	}
	waves := (int64(depth)+busy)/int64(s.cfg.Workers) + 1
	est := time.Duration(waves * ew)
	if est <= timeout {
		return nil
	}
	s.admissionRej.Inc()
	return &apiError{Status: http.StatusTooManyRequests, RetryAfter: est - timeout,
		Body: ErrorBody{Sentinel: "admission", Message: fmt.Sprintf(
			"queue drain estimate %v exceeds the request deadline %v", est, timeout)}}
}

// observeCompileEWMA folds one successful compile's latency into the
// admission controller's estimate (α = 1/4).
func (s *Server) observeCompileEWMA(d time.Duration) {
	obs := int64(d)
	for {
		old := s.compileEWMA.Load()
		next := obs
		if old > 0 {
			next = old + (obs-old)/4
		}
		if s.compileEWMA.CompareAndSwap(old, next) {
			return
		}
	}
}

// compileWithRetry is the resilient compile path every cache miss funnels
// through: retries with deterministic backoff for transient-class failures,
// placement-seed escalation when the previous attempt came back degraded,
// and breaker accounting. The whole ladder is a pure function of the
// request — jitter is seeded from the content address and the escalated
// seed from the attempt number — so a retried compile yields the same bytes
// on every process that runs it, which is what keeps cached payloads
// byte-identical across crash recovery.
func (s *Server) compileWithRetry(ctx context.Context, ct *compileTask) ([]byte, error) {
	var out []byte
	var lastErr error
	p := resilience.Policy{
		MaxAttempts: s.cfg.Retry.MaxAttempts,
		BaseDelay:   s.cfg.Retry.BaseDelay,
		MaxDelay:    s.cfg.Retry.MaxDelay,
		JitterSeed:  seedFromKey(ct.key),
		OnRetry:     func(int, error, time.Duration) { s.retries.Inc() },
	}
	err := resilience.Do(ctx, p, func(actx context.Context, attempt int) error {
		rct := ct
		if attempt > 0 && lastErr != nil && errors.Is(lastErr, faults.ErrDegraded) {
			// A degraded result is deterministic for its seed: retrying
			// verbatim would reproduce it. Escalate the placement seed by
			// the attempt number — deterministic, so every process derives
			// the same ladder for the same request.
			esc := *ct
			esc.opts.Place.Seed += int64(attempt)
			rct = &esc
		}
		b, aerr := s.execute(actx, rct, attempt)
		lastErr = aerr
		if aerr != nil {
			return aerr
		}
		out = b
		return nil
	})
	// Breaker accounting: only systemic failures say the service itself is
	// sick. A clean result, a client-caused failure (bad deadline), or an
	// unsatisfiable circuit all mean the machinery works.
	if err != nil && systemicFailure(err) {
		s.breaker.Failure()
	} else {
		s.breaker.Success()
	}
	return out, err
}

// systemicFailure reports whether err indicts the service rather than the
// request: recovered panics, invariant violations, and transient faults
// that survived the whole retry budget.
func systemicFailure(err error) bool {
	return errors.Is(err, faults.ErrPanic) ||
		errors.Is(err, faults.ErrInvariant) ||
		errors.Is(err, faults.ErrTransient)
}

// seedFromKey derives the deterministic jitter seed from a content address
// (the leading 16 hex digits of the SHA-256 key).
func seedFromKey(key string) uint64 {
	if len(key) < 16 {
		return 0
	}
	seed, err := strconv.ParseUint(key[:16], 16, 64)
	if err != nil {
		return 0
	}
	return seed
}

// outcomeFromString parses a journaled cache-outcome name back into its
// enum; unknown strings degrade to Miss.
func outcomeFromString(s string) ccache.Outcome {
	switch s {
	case "hit":
		return ccache.Hit
	case "shared":
		return ccache.Shared
	}
	return ccache.Miss
}

// wireError is the journaled form of an apiError: status plus structured
// body, so a recovered failed job serves the same error it died with.
type wireError struct {
	// Status is the HTTP status of the failure.
	Status int `json:"status"`
	// Body is the structured error payload.
	Body ErrorBody `json:"body"`
}

// encodeWireError renders an apiError for a failed journal event.
func encodeWireError(ae *apiError) []byte {
	b, err := json.Marshal(wireError{Status: ae.Status, Body: ae.Body})
	if err != nil {
		// ErrorBody marshals by construction; guard anyway.
		return []byte(`{"status":500,"body":{"message":"unencodable error"}}`)
	}
	return b
}

// decodeWireError parses a journaled failure back into an apiError,
// degrading to a generic 500 when the bytes do not parse.
func decodeWireError(b []byte) *apiError {
	var we wireError
	if err := json.Unmarshal(b, &we); err != nil || we.Status < 400 || we.Status > 599 {
		return &apiError{Status: http.StatusInternalServerError,
			Body: ErrorBody{Message: "job failed before the last shutdown (journaled error unreadable)"}}
	}
	return &apiError{Status: we.Status, Body: we.Body}
}

// journalAccepted durably records a job acceptance — request bytes included
// — before the server acknowledges it. On append failure the job is failed
// in memory and the request rejected: a 202 the journal cannot back would
// be a durability promise the server cannot keep.
func (s *Server) journalAccepted(j *job, raw []byte) *apiError {
	if s.cfg.Journal == nil {
		return nil
	}
	err := s.cfg.Journal.Append(journal.Event{Kind: journal.KindAccepted, JobID: j.id, Key: j.key, Request: raw})
	if err == nil {
		return nil
	}
	s.journalErrs.Inc()
	ae := &apiError{Status: http.StatusInternalServerError,
		Body: ErrorBody{Sentinel: "journal", Message: fmt.Sprintf("could not journal job acceptance: %v", err)}}
	j.finish(nil, ccache.Miss, ae)
	return ae
}

// journalAppend best-effort appends a post-acceptance event. Failures are
// counted, not fatal: the in-memory job still completes, and recovery
// degrades to re-running the job (safe, deterministic) rather than losing
// it.
func (s *Server) journalAppend(ev journal.Event) {
	if s.cfg.Journal == nil {
		return
	}
	if err := s.cfg.Journal.Append(ev); err != nil {
		s.journalErrs.Inc()
	}
}

// journalFinish records a job's terminal event: done with the canonical
// result bytes, or failed with the encoded error.
func (s *Server) journalFinish(j *job, body []byte, outcome ccache.Outcome, ae *apiError) {
	if s.cfg.Journal == nil {
		return
	}
	if ae != nil {
		s.journalAppend(journal.Event{Kind: journal.KindFailed, JobID: j.id, Key: j.key, Error: encodeWireError(ae)})
		return
	}
	s.journalAppend(journal.Event{Kind: journal.KindDone, JobID: j.id, Key: j.key, Result: body, Outcome: outcome.String()})
}

// recoverFromJournal replays the journal's recovered job states into a
// fresh server: done jobs return to the registry with their results pushed
// back into the cache (byte-identical serving across the crash), failed
// jobs return with their journaled errors, and interrupted jobs — accepted
// or running when the process died — are re-enqueued under their original
// IDs so pollers never observe a vanished job. Runs before Start, so the
// re-enqueued backlog is first in line when the workers come up.
func (s *Server) recoverFromJournal() {
	for _, st := range s.cfg.Journal.Recovered() {
		switch st.Status {
		case journal.StatusDone:
			if st.Key != "" && len(st.Result) > 0 {
				s.cache.Put(st.Key, st.Result)
			}
			s.jobs.restore(st.ID, st.Key, JobDone, outcomeFromString(st.Outcome), st.Result, nil)
			s.recFinished++
		case journal.StatusFailed:
			s.jobs.restore(st.ID, st.Key, JobFailed, ccache.Miss, nil, decodeWireError(st.Error))
			s.recFinished++
		default:
			ct, aerr := parseCompileRequest(bytes.NewReader(st.Request), s.cfg.limits())
			if aerr != nil {
				// The journaled request bytes no longer parse (corruption
				// caught by the CRC upstream, or a config change): fail
				// the job visibly rather than dropping it silently.
				j := s.jobs.restore(st.ID, st.Key, JobQueued, ccache.Miss, nil, nil)
				j.finish(nil, ccache.Miss, aerr)
				s.journalFinish(j, nil, ccache.Miss, aerr)
				s.recInterrupt++
				continue
			}
			j := s.jobs.restore(st.ID, ct.key, JobQueued, ccache.Miss, nil, nil)
			// enqueueJob journals the failure itself when the queue is
			// already full, so the rejection needs no extra handling here.
			if ae := s.enqueueJob(j, ct); ae != nil {
				s.errorsTotal.Inc()
			}
			s.recInterrupt++
		}
	}
}
