package route_test

import (
	"context"
	"fmt"
	"time"

	"repro/internal/bridge"
	"repro/internal/canonical"
	"repro/internal/cluster"
	"repro/internal/decompose"
	"repro/internal/icm"
	"repro/internal/modular"
	"repro/internal/place"
	"repro/internal/qc"
	"repro/internal/route"
)

// ExampleRunContext routes the nets of a placed netlist under a
// deadline. The pipeline prefix — decompose, ICM conversion, canonical
// form, modular netlist, bridging, clustering, SA placement — produces
// the placement; RunContext then runs the negotiated A* router over it.
// Unless Options.Serial is set, nets whose search regions are disjoint
// are searched concurrently, with results committed in net order, so the
// outcome is identical to a serial run.
func ExampleRunContext() {
	c := qc.New("chain", 3)
	c.Append(qc.CNOT(0, 1), qc.CNOT(1, 2))

	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	d, err := decompose.Decompose(c)
	must(err)
	ic, err := icm.FromDecomposed(d.Circuit)
	must(err)
	cf, err := canonical.Build(ic)
	must(err)
	nl, err := modular.Build(cf)
	must(err)
	br, err := bridge.Run(nl, true)
	must(err)
	cl, err := cluster.Build(nl, cluster.DefaultOptions())
	must(err)
	po := place.DefaultOptions()
	po.Seed = 7
	po.Iterations = 300
	pl, err := place.Run(cl, br.Nets, po)
	must(err)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := route.RunContext(ctx, pl, route.DefaultOptions())
	must(err)

	fmt.Println("all nets routed:", len(res.Routes) == len(pl.Nets))
	fmt.Println("degraded:", res.Degraded)
	fmt.Println("legal:", route.Verify(pl, res) == nil)
	// Output:
	// all nets routed: true
	// degraded: false
	// legal: true
}
