// Package paper records the published numbers of the paper's tables so the
// experiment harness can print paper-vs-measured comparisons
// (EXPERIMENTS.md). Values are transcribed from the TCAD version's Tables
// I, II, IV and V.
package paper

// Benchmark holds one benchmark's published rows.
type Benchmark struct {
	Name string

	// Table I.
	QubitsO, Gates, QubitsD, CNOTs int
	NumY, NumA                     int
	VolY, VolA                     int
	Modules, Nets, Nodes           int

	// Table II (total volumes incl. distillation boxes) and runtimes (s).
	CanonicalVol                 int
	Lin1DVol, Lin2DVol           int
	OursVol                      int
	Lin1DTime, Lin2DTime         float64
	OursTime                     float64
	ConferenceVol                int // Table III
	WithoutBridgingVol           int // Table V
	WithoutBridgingTime          float64
	WithBridgingTime             float64
	OursW, OursH, OursD          int // Table IV ("Ours")
	Canon1DW, Canon1DH, Canon1DD int // Table IV [22] 1D
	Canon2DW, Canon2DH, Canon2DD int // Table IV [22] 2D
}

// Benchmarks lists the paper's eight benchmarks in table order.
var Benchmarks = []Benchmark{
	{
		Name: "4gt10-v1_81", QubitsO: 5, Gates: 6, QubitsD: 131, CNOTs: 168,
		NumY: 42, NumA: 21, VolY: 756, VolA: 4032,
		Modules: 362, Nets: 483, Nodes: 190,
		CanonicalVol: 136836, Lin1DVol: 98322, Lin2DVol: 91116, OursVol: 24840,
		Lin1DTime: 0.9, Lin2DTime: 0.8, OursTime: 14,
		ConferenceVol: 25520, WithoutBridgingVol: 33660,
		WithoutBridgingTime: 20, WithBridgingTime: 14,
		OursW: 45, OursH: 24, OursD: 23,
		Canon1DW: 357, Canon1DH: 2, Canon1DD: 131,
		Canon2DW: 327, Canon2DH: 8, Canon2DD: 33,
	},
	{
		Name: "4gt4-v0_73", QubitsO: 5, Gates: 17, QubitsD: 257, CNOTs: 341,
		NumY: 84, NumA: 42, VolY: 1512, VolA: 8064,
		Modules: 724, Nets: 978, Nodes: 384,
		CanonicalVol: 535398, Lin1DVol: 361152, Lin2DVol: 327816, OursVol: 58056,
		Lin1DTime: 0.3, Lin2DTime: 0.3, OursTime: 25,
		ConferenceVol: 58696, WithoutBridgingVol: 76328,
		WithoutBridgingTime: 43, WithBridgingTime: 25,
		OursW: 59, OursH: 41, OursD: 24,
		Canon1DW: 684, Canon1DH: 2, Canon1DD: 257,
		Canon2DW: 612, Canon2DH: 8, Canon2DD: 65,
	},
	{
		Name: "rd84_142", QubitsO: 15, Gates: 28, QubitsD: 897, CNOTs: 1162,
		NumY: 294, NumA: 147, VolY: 5292, VolA: 28224,
		Modules: 2500, Nets: 3339, Nodes: 1316,
		CanonicalVol: 6287400, Lin1DVol: 2805246, Lin2DVol: 2744316, OursVol: 450912,
		Lin1DTime: 8, Lin2DTime: 9, OursTime: 194,
		ConferenceVol: 451440, WithoutBridgingVol: 640332,
		WithoutBridgingTime: 403, WithBridgingTime: 194,
		OursW: 122, OursH: 112, OursD: 33,
		Canon1DW: 1545, Canon1DH: 2, Canon1DD: 897,
		Canon2DW: 1506, Canon2DH: 8, Canon2DD: 225,
	},
	{
		Name: "hwb5_53", QubitsO: 5, Gates: 55, QubitsD: 1307, CNOTs: 1729,
		NumY: 434, NumA: 217, VolY: 7812, VolA: 41664,
		Modules: 3687, Nets: 4982, Nodes: 1933,
		CanonicalVol: 13608294, Lin1DVol: 9114828, Lin2DVol: 8203548, OursVol: 1184040,
		Lin1DTime: 28, Lin2DTime: 24, OursTime: 438,
		ConferenceVol: 1341704, WithoutBridgingVol: 1659864,
		WithoutBridgingTime: 584, WithBridgingTime: 438,
		OursW: 184, OursH: 165, OursD: 39,
		Canon1DW: 3468, Canon1DH: 2, Canon1DD: 1307,
		Canon2DW: 3117, Canon2DH: 8, Canon2DD: 327,
	},
	{
		Name: "add16_174", QubitsO: 49, Gates: 64, QubitsD: 1394, CNOTs: 1792,
		NumY: 448, NumA: 224, VolY: 8064, VolA: 43008,
		Modules: 3857, Nets: 5167, Nodes: 2032,
		CanonicalVol: 15028608, Lin1DVol: 6449532, Lin2DVol: 6173928, OursVol: 959262,
		Lin1DTime: 26, Lin2DTime: 23, OursTime: 629,
		ConferenceVol: 1069362, WithoutBridgingVol: 1439064,
		WithoutBridgingTime: 740, WithBridgingTime: 629,
		OursW: 174, OursH: 149, OursD: 37,
		Canon1DW: 2295, Canon1DH: 2, Canon1DD: 1394,
		Canon2DW: 2193, Canon2DH: 8, Canon2DD: 349,
	},
	{
		Name: "sym6_145", QubitsO: 7, Gates: 36, QubitsD: 1519, CNOTs: 1980,
		NumY: 504, NumA: 252, VolY: 9072, VolA: 48384,
		Modules: 4255, Nets: 5688, Nodes: 2257,
		// The PDF prints the 1D volume as "1072836" (a dropped digit);
		// 10722836 restores the printed ratio of 6.196.
		CanonicalVol: 18103176, Lin1DVol: 10722836, Lin2DVol: 9852336, OursVol: 1730352,
		Lin1DTime: 39, Lin2DTime: 34, OursTime: 791,
		ConferenceVol: 1971840, WithoutBridgingVol: 2509920,
		WithoutBridgingTime: 900, WithBridgingTime: 791,
		OursW: 208, OursH: 177, OursD: 47,
		Canon1DW: 3510, Canon1DH: 2, Canon1DD: 1519,
		Canon2DW: 3222, Canon2DH: 8, Canon2DD: 380,
	},
	{
		Name: "cycle17_3_112", QubitsO: 20, Gates: 48, QubitsD: 1911, CNOTs: 2478,
		NumY: 630, NumA: 315, VolY: 11340, VolA: 60480,
		Modules: 5321, Nets: 7119, Nodes: 2833,
		CanonicalVol: 28469700, Lin1DVol: 19082448, Lin2DVol: 16843884, OursVol: 1842050,
		Lin1DTime: 71, Lin2DTime: 61, OursTime: 1375,
		ConferenceVol: 2354100, WithoutBridgingVol: 2750895,
		WithoutBridgingTime: 1642, WithBridgingTime: 1375,
		OursW: 175, OursH: 277, OursD: 38,
		Canon1DW: 4974, Canon1DH: 2, Canon1DD: 1911,
		Canon2DW: 4386, Canon2DH: 8, Canon2DD: 478,
	},
	{
		Name: "ham15_107", QubitsO: 15, Gates: 132, QubitsD: 3753, CNOTs: 4938,
		NumY: 1246, NumA: 623, VolY: 22428, VolA: 119616,
		Modules: 10560, Nets: 14215, Nodes: 5566,
		CanonicalVol: 111335928, Lin1DVol: 69294822, Lin2DVol: 63017484, OursVol: 6527070,
		Lin1DTime: 459, Lin2DTime: 396, OursTime: 4108,
		ConferenceVol: 7331454, WithoutBridgingVol: 8852480,
		WithoutBridgingTime: 6786, WithBridgingTime: 4108,
		OursW: 330, OursH: 347, OursD: 57,
		Canon1DW: 9213, Canon1DH: 2, Canon1DD: 3753,
		Canon2DW: 8370, Canon2DH: 8, Canon2DD: 939,
	},
}

// ByName returns the published rows of a benchmark.
func ByName(name string) (Benchmark, bool) {
	for _, b := range Benchmarks {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// Headline holds the paper's aggregate claims, used by EXPERIMENTS.md and
// the harness summary.
var Headline = struct {
	// Average canonical/ours, [22]-1D/ours, [22]-2D/ours volume ratios
	// (Table II's Avg. Ratio row).
	CanonicalRatio, Lin1DRatio, Lin2DRatio float64
	// Conference/ours average ratio (Table III).
	ConferenceRatio float64
	// W/o-bridging volume and runtime ratios (Table V).
	NoBridgeVolRatio, NoBridgeTimeRatio float64
	// Runtime breakdown shares in percent (Table VI averages).
	BridgingShare, PlacementShare, RoutingShare, OtherShare float64
	// First-iteration routing success band in percent.
	FirstPassLo, FirstPassHi int
}{
	CanonicalRatio: 12.351, Lin1DRatio: 7.249, Lin2DRatio: 6.657,
	ConferenceRatio:  1.104,
	NoBridgeVolRatio: 1.412, NoBridgeTimeRatio: 1.465,
	BridgingShare: 1.14, PlacementShare: 66.81, RoutingShare: 31.94, OtherShare: 0.11,
	FirstPassLo: 85, FirstPassHi: 95,
}
