package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/qc"
	"repro/internal/server"
	"repro/tqec"
)

// chaosSrc is a tiny 3-CNOT circuit (the paper's Fig. 4 example) that
// compiles in milliseconds, so the soak turns jobs over fast enough to
// catch crashes in every lifecycle phase.
const chaosSrc = ".version 1.0\n.numvars 3\n.variables a b c\n.begin\nt2 a b\nt2 b c\nt2 a c\n.end\n"

// chaosVariants are the distinct request option sets the soak cycles
// through; each maps to one expected canonical payload.
var chaosVariants = []server.CompileOptions{
	{Seed: 1, Iterations: 2000},
	{Seed: 2, Iterations: 2000},
	{Seed: 3, Iterations: 2000},
	{Seed: 4, Iterations: 2000},
}

// chaosBody renders the soak request body for one variant.
func chaosBody(t *testing.T, o server.CompileOptions) []byte {
	t.Helper()
	b, err := json.Marshal(server.CompileRequest{Real: chaosSrc, Name: "fig4", Options: o})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// chaosDirect computes the canonical payload for a variant the same way
// the service must serve it, for byte-identity assertions that are
// independent of any server or cache under test.
func chaosDirect(t *testing.T, o server.CompileOptions) []byte {
	t.Helper()
	c, err := qc.ParseReal("fig4", strings.NewReader(chaosSrc))
	if err != nil {
		t.Fatal(err)
	}
	opts := tqec.DefaultOptions()
	opts.Place.Seed = o.Seed
	opts.Place.Iterations = o.Iterations
	res, err := tqec.CompileContext(context.Background(), c, opts)
	if err != nil {
		t.Fatal(err)
	}
	key, err := tqec.CacheKey(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := server.EncodeResult(key, res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// chaosRig owns the restartable server under test: a journal directory
// shared across "process" generations, the current server instance behind
// an atomic pointer (so the HTTP front door survives restarts), and the
// crash cycle that hard-stops one generation and recovers the next from
// the journal alone.
type chaosRig struct {
	t   *testing.T
	dir string

	mu     sync.Mutex
	jnl    *journal.Journal
	cancel context.CancelFunc

	cur          atomic.Pointer[server.Server]
	corruptArmed atomic.Bool
	restarts     atomic.Uint64
}

// chaosJournalOpts keeps soak journals small and fast (no fsync), with
// finished-job retention raised far above what a soak can accept — the
// accounting phase audits every accepted job, so the default retention
// caps (tuned for a long-lived service) must not evict any of them.
func chaosJournalOpts() journal.Options {
	return journal.Options{SegmentBytes: 1 << 20, RetainFinished: 1 << 17, NoSync: true}
}

// start boots a fresh server generation over the shared journal
// directory. Callers hold rig.mu (or are still single-goroutine).
func (rig *chaosRig) start() {
	j, err := journal.Open(rig.dir, chaosJournalOpts())
	if err != nil {
		rig.t.Error(err)
		return
	}
	cfg := server.Config{
		Workers: 2, QueueDepth: 128, CacheBytes: 1 << 20,
		MaxJobs:        1 << 17,
		DefaultTimeout: 30 * time.Second, MaxTimeout: time.Minute,
		AllowFaultInjection: true,
		Journal:             j,
	}
	s, err := server.New(cfg)
	if err != nil {
		rig.t.Error(err)
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.Start(ctx)
	rig.jnl, rig.cancel = j, cancel
	rig.cur.Store(s)
	rig.restarts.Add(1)
}

// crash simulates a process death and restart: hard-stop the lifetime
// context, let in-flight work unwind, close the journal, optionally
// scribble garbage on its tail (the armed corruption), and recover a new
// generation from the directory. Serialized so overlapping chaos triggers
// queue instead of racing.
func (rig *chaosRig) crash() {
	rig.mu.Lock()
	defer rig.mu.Unlock()
	rig.cancel()
	dctx, dcancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer dcancel()
	if err := rig.cur.Load().Drain(dctx); err != nil {
		rig.t.Errorf("chaos drain: %v", err)
	}
	if err := rig.jnl.Close(); err != nil {
		rig.t.Errorf("chaos journal close: %v", err)
	}
	if rig.corruptArmed.Swap(false) {
		rig.scribble()
	}
	rig.start()
}

// scribble appends garbage to the newest journal segment while it is
// closed — a torn/corrupted tail the next generation's decoder must
// detect, truncate and survive without losing any intact record.
func (rig *chaosRig) scribble() {
	names, err := filepath.Glob(filepath.Join(rig.dir, "*.wal"))
	if err != nil || len(names) == 0 {
		rig.t.Errorf("scribble: no journal segments (%v)", err)
		return
	}
	sort.Strings(names)
	f, err := os.OpenFile(names[len(names)-1], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		rig.t.Errorf("scribble open: %v", err)
		return
	}
	if _, err := f.Write([]byte("\xde\xad\xbe\xef torn tail garbage")); err != nil {
		rig.t.Errorf("scribble write: %v", err)
	}
	if err := f.Close(); err != nil {
		rig.t.Errorf("scribble close: %v", err)
	}
}

// shutdown drains the final generation and closes its journal cleanly.
func (rig *chaosRig) shutdown() {
	rig.mu.Lock()
	defer rig.mu.Unlock()
	dctx, dcancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer dcancel()
	if err := rig.cur.Load().Drain(dctx); err != nil {
		rig.t.Errorf("final drain: %v", err)
	}
	rig.cancel()
	if err := rig.jnl.Close(); err != nil {
		rig.t.Errorf("final journal close: %v", err)
	}
}

// chaosSeconds reads the soak duration from TQEC_CHAOS_SECONDS (the
// `make chaos` knob), defaulting to a short always-on run.
func chaosSeconds(t *testing.T) time.Duration {
	t.Helper()
	v := os.Getenv("TQEC_CHAOS_SECONDS")
	if v == "" {
		return 3 * time.Second
	}
	n, err := strconv.Atoi(v)
	if err != nil || n <= 0 {
		t.Fatalf("TQEC_CHAOS_SECONDS=%q: want a positive integer", v)
	}
	return time.Duration(n) * time.Second
}

// TestChaosSoak is the service-layer chaos drill: a journal-backed tqecd
// is bombarded with async jobs (a fraction carrying injected transient
// faults) while a ChaosPlan injects 5xx bursts, slow responses, periodic
// hard crashes with journal-only recovery, and torn-tail journal
// corruption. Afterwards every accepted job must be terminal exactly once,
// every completed payload byte-identical to an independent direct compile,
// and the journal's own record must agree — no job lost, none
// double-completed.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	rig := &chaosRig{t: t, dir: t.TempDir()}
	rig.start()

	plan := &ChaosPlan{
		Seed:          42,
		ErrorFraction: 0.02,
		BurstLen:      3,
		SlowFraction:  0.05,
		SlowDelay:     20 * time.Millisecond,
		CrashEvery:    250,
		Crash:         rig.crash,
		CorruptEvery:  600,
		Corrupt:       func() { rig.corruptArmed.Store(true) },
	}
	front := httptest.NewServer(plan.Middleware(http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) {
			rig.cur.Load().ServeHTTP(w, r)
		})))
	defer front.Close()
	client := &http.Client{Transport: plan.RoundTripper(nil), Timeout: 30 * time.Second}

	// The soak: rounds of concurrent async submissions with a fault mix,
	// polled through the chaos layers, until the budget expires. Every
	// 202-accepted job ID is recorded with its expected variant.
	type accepted struct {
		id      string
		variant int
	}
	var acc []accepted
	deadline := time.Now().Add(chaosSeconds(t))
	for round := 0; time.Now().Before(deadline); round++ {
		bodies := make([][]byte, 12)
		for i := range bodies {
			bodies[i] = chaosBody(t, chaosVariants[(round*len(bodies)+i)%len(chaosVariants)])
		}
		results, err := RunLoad(context.Background(), LoadOptions{
			BaseURL:       front.URL,
			Client:        client,
			Bodies:        bodies,
			Concurrency:   4,
			Async:         true,
			PollInterval:  15 * time.Millisecond,
			FaultFraction: 0.3,
			FaultAttempts: 2,
			FaultSeed:     uint64(round),
		})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for _, r := range results {
			if r.JobID != "" {
				acc = append(acc, accepted{id: r.JobID, variant: (round*len(bodies) + r.Index) % len(chaosVariants)})
			}
		}
	}
	if len(acc) == 0 {
		t.Fatal("soak accepted no jobs")
	}

	// One last controlled kill/restart so even jobs accepted in the final
	// instants recover from the journal, then settle with chaos disabled
	// so the accounting phase sees the service, not the injection.
	plan.Disable()
	rig.crash()
	stats := plan.Stats()
	t.Logf("chaos soak: %d accepted jobs, %d restarts, stats %+v", len(acc), rig.restarts.Load(), stats)
	if stats.Shed == 0 || stats.Delayed == 0 {
		t.Fatalf("chaos plan never fired: %+v", stats)
	}
	if rig.restarts.Load() < 2 {
		t.Fatalf("soak never crashed a generation: %d restarts", rig.restarts.Load())
	}

	// Every accepted job must reach a terminal state on the recovered
	// server: done payloads byte-identical to an independent compile,
	// failures visible and structured, and a second poll identical to the
	// first (completed exactly once, terminally sticky).
	expected := make([][]byte, len(chaosVariants))
	for i, o := range chaosVariants {
		expected[i] = chaosDirect(t, o)
	}
	calm := &http.Client{Timeout: 30 * time.Second}
	seen := map[string]bool{}
	var done, failed int
	for _, a := range acc {
		if seen[a.id] {
			t.Fatalf("job %s accepted twice", a.id)
		}
		seen[a.id] = true
		v := chaosPollDone(t, calm, front.URL, a.id)
		again := chaosPollDone(t, calm, front.URL, a.id)
		if v.Status != again.Status || !bytes.Equal(v.Result, again.Result) {
			t.Fatalf("job %s changed after completion: %s vs %s", a.id, v.Status, again.Status)
		}
		switch v.Status {
		case "done":
			done++
			if !bytes.Equal(v.Result, expected[a.variant]) {
				t.Fatalf("job %s payload differs from the direct compile of variant %d", a.id, a.variant)
			}
		case "failed":
			failed++
			if len(v.Error) == 0 {
				t.Fatalf("job %s failed without a structured error", a.id)
			}
		default:
			t.Fatalf("job %s not terminal: %s", a.id, v.Status)
		}
	}
	t.Logf("chaos soak: %d done, %d failed", done, failed)
	if done == 0 {
		t.Fatal("no job completed through the chaos")
	}

	// The journal's own record must agree: after a clean shutdown, replay
	// shows exactly one terminal state per accepted job, with done
	// payloads byte-identical to the direct compile.
	rig.shutdown()
	j, err := journal.Open(rig.dir, chaosJournalOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := j.Close(); err != nil {
			t.Error(err)
		}
	}()
	states := map[string]journal.JobState{}
	for _, st := range j.Recovered() {
		states[st.ID] = st
	}
	for _, a := range acc {
		st, ok := states[a.id]
		if !ok {
			t.Fatalf("job %s lost from the journal", a.id)
		}
		if !st.Terminal() {
			t.Fatalf("job %s non-terminal in the journal after shutdown: %s", a.id, st.Status)
		}
		if st.Status == journal.StatusDone && !bytes.Equal(st.Result, expected[a.variant]) {
			t.Fatalf("journaled payload for %s differs from the direct compile", a.id)
		}
	}
}

// chaosPollDone polls a job through plain HTTP (no chaos) to a terminal
// state.
func chaosPollDone(t *testing.T, client *http.Client, base, id string) loadJobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		st, payload, err := getJSON(ctx, client, base+"/v1/jobs/"+id)
		cancel()
		if err != nil {
			t.Fatalf("poll %s: %v", id, err)
		}
		if st != http.StatusOK {
			t.Fatalf("poll %s: %d %s", id, st, payload)
		}
		var v loadJobView
		if err := json.Unmarshal(payload, &v); err != nil {
			t.Fatal(err)
		}
		if v.Status == "done" || v.Status == "failed" {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, v.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
