// Live instruments: lock-free counters, gauges and latency histograms for
// long-running processes (the tqecd daemon). Unlike Breakdown, which
// accumulates one compilation's wall clock on a single goroutine, these
// types are safe for concurrent use from any number of goroutines and are
// read via consistent-enough snapshots that marshal to stable JSON.

package metrics

import (
	"math"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event counter safe for concurrent
// use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (negative deltas are ignored so the
// counter stays monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous level (queue depth, busy workers) safe for
// concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (which may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of exponential latency buckets: bucket i counts
// observations with d ≤ 1µs·2^i, spanning 1µs up to ~34s, plus one
// overflow bucket for everything slower.
const histBuckets = 25

// histBase is the upper bound of the first bucket.
const histBase = time.Microsecond

// Histogram is a fixed-bucket exponential latency histogram safe for
// concurrent use. Buckets double from 1µs; observations beyond the last
// bound land in an overflow bucket. Sum, count, min and max are tracked
// exactly.
type Histogram struct {
	buckets [histBuckets + 1]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	min     atomic.Int64 // nanoseconds; math.MaxInt64 when empty
	max     atomic.Int64 // nanoseconds
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// Observe records one duration. Negative durations are clamped to zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	ns := int64(d)
	h.buckets[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.min.Load()
		if ns >= cur || h.min.CompareAndSwap(cur, ns) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			break
		}
	}
}

// bucketIndex maps a duration to its bucket: the smallest i with
// d ≤ 1µs·2^i, or the overflow index.
func bucketIndex(d time.Duration) int {
	bound := histBase
	for i := 0; i < histBuckets; i++ {
		if d <= bound {
			return i
		}
		bound *= 2
	}
	return histBuckets
}

// HistogramBucket is one bucket of a histogram snapshot: Count observations
// at most LeNS nanoseconds (LeNS < 0 marks the overflow bucket).
type HistogramBucket struct {
	// LeNS is the bucket's inclusive upper bound in nanoseconds, or -1
	// for the overflow bucket.
	LeNS int64 `json:"le_ns"`
	// Count is the number of observations that fell in this bucket.
	Count int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram, shaped for JSON
// (the daemon's /v1/metrics endpoint). Empty buckets are elided so the
// payload stays small.
type HistogramSnapshot struct {
	// Count is the total number of observations.
	Count int64 `json:"count"`
	// SumNS is the sum of all observed durations in nanoseconds.
	SumNS int64 `json:"sum_ns"`
	// MinNS and MaxNS bound the observed durations (0 when empty).
	MinNS int64 `json:"min_ns"`
	// MaxNS is the largest observed duration in nanoseconds.
	MaxNS int64 `json:"max_ns"`
	// Buckets lists the non-empty buckets in ascending bound order.
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's current state. Concurrent Observe calls
// may straddle the copy; the snapshot is internally consistent enough for
// monitoring (count equals the sum of bucket counts as of each bucket's
// read).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		SumNS: h.sum.Load(),
		MaxNS: h.max.Load(),
	}
	if min := h.min.Load(); min != math.MaxInt64 {
		s.MinNS = min
	}
	bound := int64(histBase)
	for i := 0; i <= histBuckets; i++ {
		n := h.buckets[i].Load()
		le := bound
		if i == histBuckets {
			le = -1
		}
		if n > 0 {
			s.Buckets = append(s.Buckets, HistogramBucket{LeNS: le, Count: n})
		}
		bound *= 2
	}
	return s
}
