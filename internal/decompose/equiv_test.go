package decompose

import (
	"testing"

	"repro/internal/qc"
	"repro/internal/sim"
)

// checkEquivalent verifies that the decomposition of `orig` implements the
// same unitary as `orig` itself (up to one global phase) on every basis
// state, using the dense state-vector simulator.
func checkEquivalent(t *testing.T, orig *qc.Circuit) {
	t.Helper()
	r, err := Decompose(orig)
	if err != nil {
		t.Fatal(err)
	}
	n := len(r.Circuit.Qubits) // includes MCT workspace ancillas
	// Pad the original to the same width (extra qubits untouched) and
	// compare only on clean-ancilla inputs, the V-chain's contract.
	padded := orig.Clone()
	padded.Qubits = append([]string(nil), r.Circuit.Qubits...)
	ok, err := sim.EquivalentOnCleanAncillas(n, orig.NumQubits(), padded, r.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("decomposition of %s is not unitarily equivalent", orig.Name)
	}
}

func TestToffoliNetworkEquivalence(t *testing.T) {
	c := qc.New("toffoli", 3)
	c.Append(qc.Toffoli(0, 1, 2))
	checkEquivalent(t, c)
}

func TestToffoliAllOrientations(t *testing.T) {
	perms := [][3]int{{0, 1, 2}, {2, 1, 0}, {1, 2, 0}, {0, 2, 1}}
	for _, p := range perms {
		c := qc.New("tof", 3)
		c.Append(qc.Toffoli(p[0], p[1], p[2]))
		checkEquivalent(t, c)
	}
}

func TestHadamardPVPEquivalence(t *testing.T) {
	c := qc.New("h", 1)
	c.Append(qc.H(0))
	checkEquivalent(t, c)
}

func TestFredkinEquivalence(t *testing.T) {
	c := qc.New("fredkin", 3)
	c.Append(qc.Fredkin(0, 1, 2))
	checkEquivalent(t, c)
}

func TestSwapEquivalence(t *testing.T) {
	c := qc.New("swap", 2)
	c.Append(qc.Swap(0, 1))
	checkEquivalent(t, c)
}

func TestControlledVEquivalence(t *testing.T) {
	c := qc.New("cv", 2)
	c.Append(qc.Gate{Kind: qc.GateV, Controls: []int{0}, Targets: []int{1}})
	checkEquivalent(t, c)

	cd := qc.New("cvdag", 2)
	cd.Append(qc.Gate{Kind: qc.GateVdag, Controls: []int{0}, Targets: []int{1}})
	checkEquivalent(t, cd)
}

func TestMCTEquivalence(t *testing.T) {
	// 3-control MCT expands with one clean ancilla; the ancilla must be
	// returned to |0⟩, which EquivalentUpToPhase verifies implicitly on
	// the padded original (which leaves the ancilla untouched).
	c := qc.New("mct3", 4)
	c.Append(qc.MCT([]int{0, 1, 2}, 3))
	checkEquivalent(t, c)
}

func TestCompositeCircuitEquivalence(t *testing.T) {
	c := qc.New("mix", 3)
	c.Append(
		qc.NOT(0),
		qc.Toffoli(0, 1, 2),
		qc.CNOT(2, 1),
		qc.H(1),
		qc.Fredkin(2, 0, 1),
		qc.T(0),
		qc.Swap(1, 2),
	)
	checkEquivalent(t, c)
}

func TestGeneratedBenchmarkEquivalence(t *testing.T) {
	// A seeded 4-qubit generated workload, end to end.
	spec := qc.BenchmarkSpec{Name: "equiv", Qubits: 4, Toffolis: 3, CNOTs: 2, NOTs: 2, Seed: 99}
	c, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, c)
}
