// Quickstart: compress the paper's motivating three-CNOT circuit
// (Figs. 4/5/9) through the full bridge-based compression flow and print
// what every stage did.
package main

import (
	"fmt"
	"log"

	"repro/internal/qc"
	"repro/tqec"
)

func main() {
	// The circuit of Fig. 4(a): three CNOT gates over three qubits. Its
	// canonical geometric description has volume 9×3×2 = 54; bridge
	// compression plus topological deformation shrinks it dramatically
	// (the paper reaches 18 with its module geometry).
	c := qc.New("fig4", 3)
	c.Append(
		qc.CNOT(0, 1),
		qc.CNOT(1, 2),
		qc.CNOT(0, 2),
	)

	opts := tqec.DefaultOptions()
	opts.Place.Seed = 42
	res, err := tqec.Compile(c, opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("input:        %d qubits, %d gates\n", c.NumQubits(), c.NumGates())
	fmt.Printf("ICM:          %d lines, %d CNOTs\n", len(res.ICM.Lines), len(res.ICM.CNOTs))
	fmt.Printf("canonical:    volume %d\n", res.CanonicalVolume)
	fmt.Printf("modularized:  %d modules, %d dual loops\n",
		len(res.Netlist.Modules), len(res.Netlist.Loops))
	fmt.Printf("bridging:     %d merges -> %d bridge structures, %d nets\n",
		res.Bridging.Merges, len(res.Bridging.Structures), len(res.Bridging.Nets))
	fmt.Printf("placement:    %d super-modules on %d tiers\n",
		len(res.Clustering.Supers), res.Placement.Tiers)
	fmt.Printf("routing:      %d/%d nets routed\n",
		len(res.Routing.Routes), len(res.Bridging.Nets))
	fmt.Printf("result:       %s vs canonical %d\n", res.Dims, res.CanonicalVolume)
	fmt.Println()
	fmt.Println("At this toy scale the fixed module geometry (3-cell-wide primal")
	fmt.Println("loops, routing margins, tier pitch) outweighs the savings; run")
	fmt.Println("examples/adder or cmd/tqecc -bench 4gt10-v1_81 for circuits at the")
	fmt.Println("paper's scale, where bridge compression wins by 4-6x.")
}
