package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces the context-threading discipline PR 1 introduced: every
// stage accepts a context.Context as its first parameter and forwards it.
//
//   - A context.Context parameter must come first in the signature.
//   - context.Background()/context.TODO() are banned outside main packages
//     and tests: a library mints no root contexts. Sanctioned no-context
//     entry points (route.Run and friends) carry an explicit
//     //lint:ignore ctxflow directive.
//   - A function that has a ctx in scope must not call the context-less
//     variant of a pair like Run/RunContext: when the callee's package also
//     defines <Name>Context with a leading context parameter, the call must
//     go through it.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "ctx is the first parameter, is always forwarded, and roots (Background/TODO) stay in main packages",
	Run:  runCtxFlow,
}

func isContextType(t types.Type) bool {
	path, name, ok := namedType(t)
	return ok && path == "context" && name == "Context"
}

func runCtxFlow(pass *Pass) {
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkCtxFirst(pass, n.Type)
			case *ast.FuncLit:
				checkCtxFirst(pass, n.Type)
			case *ast.CallExpr:
				checkCtxRoot(pass, n)
			}
			return true
		})
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasCtxParam(pass, fd.Type) {
				continue
			}
			checkCtxForwarded(pass, fd.Body)
		}
	}
}

// checkCtxFirst reports a context parameter hiding behind others.
func checkCtxFirst(pass *Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	seen := 0
	for _, field := range ft.Params.List {
		if isContextType(pass.TypeOf(field.Type)) && seen > 0 {
			pass.Reportf(field.Pos(), "context.Context must be the first parameter")
			return
		}
		seen += len(field.Names)
		if len(field.Names) == 0 {
			seen++
		}
	}
}

// checkCtxRoot reports context.Background/TODO in library code.
func checkCtxRoot(pass *Pass, call *ast.CallExpr) {
	if pass.Pkg.IsMain() {
		return
	}
	switch name := pkgFunc(calleeFunc(pass.Pkg.Info, call)); name {
	case "context.Background", "context.TODO":
		pass.Reportf(call.Pos(), "%s() in library code: thread the caller's ctx instead", name)
	}
}

// hasCtxParam reports whether the signature takes a context.Context.
func hasCtxParam(pass *Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isContextType(pass.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

// checkCtxForwarded flags calls that drop an in-scope ctx when the callee's
// package offers a <Name>Context variant taking one.
func checkCtxForwarded(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass.Pkg.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() != nil || signatureHasCtx(sig) {
			return true
		}
		alt, ok := fn.Pkg().Scope().Lookup(fn.Name() + "Context").(*types.Func)
		if !ok {
			return true
		}
		altSig, ok := alt.Type().(*types.Signature)
		if !ok || altSig.Params().Len() == 0 || !isContextType(altSig.Params().At(0).Type()) {
			return true
		}
		pass.Reportf(call.Pos(), "ctx is in scope but %s drops it: call %s.%sContext", fn.Name(), fn.Pkg().Name(), fn.Name())
		return true
	})
}

func signatureHasCtx(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}
