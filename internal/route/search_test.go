package route

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/bridge"
	"repro/internal/geom"
	"repro/internal/place"
	"repro/internal/rtree"
)

// newTestRouter builds a router over pl exactly as RunContext does, but
// stops before routing so tests can drive internal phases directly.
func newTestRouter(t *testing.T, pl *place.Placement, opts Options) *router {
	t.Helper()
	if opts.MaxExpansions <= 0 {
		opts.MaxExpansions = 200000
	}
	r := &router{
		p:           pl,
		nets:        pl.Nets,
		opts:        opts,
		ctx:         context.Background(),
		static:      rtree.New(),
		pinCell:     map[int]geom.Point{},
		routes:      map[int]geom.Path{},
		routeBounds: map[int]geom.Box{},
		netTree:     rtree.New(),
		friends:     map[int][]int{},
		eps:         make([]netEndpoints, len(pl.Nets)),
		pinRev:      map[int]uint64{},
		dirtyPins:   map[int]bool{},
		result:      &Result{Routes: map[int]geom.Path{}},
	}
	if err := r.build(); err != nil {
		t.Fatal(err)
	}
	return r
}

// kernelRouter builds a placement-free router over an empty world, for
// driving the A* kernels directly against synthetic obstacle grids.
func kernelRouter(world geom.Box) *router {
	return &router{
		opts:   DefaultOptions(),
		ctx:    context.Background(),
		grid:   newGrid(world),
		world:  world,
		result: &Result{Routes: map[int]geom.Path{}},
	}
}

// pathCost is the router's cost model read off a finished path: entering a
// cell costs 1 plus the weighted congestion history of that cell.
func pathCost(g *grid, p geom.Path, hw float64) float64 {
	cost := 0.0
	for _, c := range p[1:] {
		_, _, _, hist := g.cellState(c)
		cost += 1 + hw*hist
	}
	return cost
}

// checkLegalPath asserts p is a simple, 6-connected, obstacle-free path
// from start to target.
func checkLegalPath(t *testing.T, r *router, p geom.Path, start, target geom.Point) {
	t.Helper()
	if len(p) == 0 || p[0] != start || p[len(p)-1] != target {
		t.Fatalf("path endpoints %v..%v, want %v..%v", p[0], p[len(p)-1], start, target)
	}
	seen := map[geom.Point]bool{}
	for i, c := range p {
		if seen[c] {
			t.Fatalf("cell %v repeats: path is not simple", c)
		}
		seen[c] = true
		if !r.world.Contains(c) {
			t.Fatalf("cell %v outside the world", c)
		}
		if r.grid.isStatic(c) {
			t.Fatalf("cell %v is a static obstacle", c)
		}
		if i > 0 && p[i-1].Manhattan(c) != 1 {
			t.Fatalf("cells %v and %v not adjacent", p[i-1], c)
		}
	}
}

// TestBidiUniEquivalence drives both kernels over randomized obstacle
// grids with randomized congestion history and pins that they agree on
// reachability and on path cost, and that both paths are legal. The
// kernels may prefer different equal-cost geometry, so the paths
// themselves are not compared.
func TestBidiUniEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	world := geom.NewBox(0, 0, 0, 12, 12, 4)
	n := bridge.Net{ID: 0, PinA: 0, PinB: 1}
	found := 0
	for trial := 0; trial < 80; trial++ {
		r := kernelRouter(world)
		for x := world.Min.X; x < world.Max.X; x++ {
			for y := world.Min.Y; y < world.Max.Y; y++ {
				for z := world.Min.Z; z < world.Max.Z; z++ {
					c := geom.Pt(x, y, z)
					if rng.Float64() < 0.25 {
						r.grid.setStatic(c)
					} else if rng.Float64() < 0.2 {
						r.grid.histAdd(c, rng.Float64()*3)
					}
				}
			}
		}
		randFree := func() geom.Point {
			for {
				c := geom.Pt(
					world.Min.X+rng.Intn(world.Dx()),
					world.Min.Y+rng.Intn(world.Dy()),
					world.Min.Z+rng.Intn(world.Dz()),
				)
				if !r.grid.isStatic(c) {
					return c
				}
			}
		}
		start, target := randFree(), randFree()
		if start == target {
			continue
		}
		maxExp := 4 * world.Volume()
		uni := r.astarUni(n, []geom.Point{start}, []geom.Point{target},
			geom.CellBox(target), world, true, maxExp)
		bidi := r.astarBidi(n, start, target, world, true, maxExp)
		if (uni == nil) != (bidi == nil) {
			t.Fatalf("trial %d: reachability disagrees: uni=%v bidi=%v", trial, uni != nil, bidi != nil)
		}
		if uni == nil {
			continue
		}
		found++
		checkLegalPath(t, r, uni, start, target)
		checkLegalPath(t, r, bidi, start, target)
		hw := r.opts.HistoryWeight
		if uc, bc := pathCost(r.grid, uni, hw), pathCost(r.grid, bidi, hw); uc != bc {
			t.Fatalf("trial %d: cost disagrees: uni=%v bidi=%v", trial, uc, bc)
		}
	}
	if found < 20 {
		t.Fatalf("only %d trials found a path; fixture too hostile to be meaningful", found)
	}
}

// TestBidiUniEquivalenceSparse re-runs a slice of the equivalence check in
// the sparse (hash-map slot) storage mode.
func TestBidiUniEquivalenceSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	world := geom.NewBox(0, 0, 0, 9, 9, 3)
	n := bridge.Net{ID: 0, PinA: 0, PinB: 1}
	for trial := 0; trial < 30; trial++ {
		r := kernelRouter(world)
		for i := 0; i < 40; i++ {
			r.grid.setStatic(geom.Pt(rng.Intn(9), rng.Intn(9), rng.Intn(3)))
		}
		start := geom.Pt(0, 0, 0)
		target := geom.Pt(8, 8, 2)
		if r.grid.isStatic(start) || r.grid.isStatic(target) {
			continue
		}
		maxExp := 4 * world.Volume()
		uni := r.astarUni(n, []geom.Point{start}, []geom.Point{target},
			geom.CellBox(target), world, false, maxExp)
		bidi := r.astarBidi(n, start, target, world, false, maxExp)
		if (uni == nil) != (bidi == nil) {
			t.Fatalf("trial %d: reachability disagrees", trial)
		}
		if uni == nil {
			continue
		}
		checkLegalPath(t, r, uni, start, target)
		checkLegalPath(t, r, bidi, start, target)
		if uc, bc := pathCost(r.grid, uni, 0), pathCost(r.grid, bidi, 0); uc != bc {
			t.Fatalf("trial %d: cost disagrees: uni=%v bidi=%v", trial, uc, bc)
		}
	}
}

// TestColorBatchesConflictFree pins the two properties firstPass's serial
// equivalence rests on: no two nets whose search regions intersect share a
// batch, and every earlier-order conflicting net sits in a strictly
// earlier batch.
func TestColorBatchesConflictFree(t *testing.T) {
	pl := routeFixture(t)
	r := newTestRouter(t, pl, DefaultOptions())
	order := make([]int, len(r.nets))
	for i := range order {
		order[i] = i
	}
	margin := make([]int, len(r.nets))
	for i := range margin {
		margin[i] = r.opts.InitialMargin
	}
	batches := r.colorBatches(order, margin)

	batchOf := map[int]int{}
	total := 0
	for b, batch := range batches {
		total += len(batch)
		for _, idx := range batch {
			batchOf[idx] = b
		}
	}
	if total != len(order) {
		t.Fatalf("batches hold %d nets, want %d", total, len(order))
	}
	regions := make([]geom.Box, len(order))
	for oi, idx := range order {
		regions[oi] = r.searchRegion(r.nets[idx], margin[idx])
	}
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if !regions[i].Intersects(regions[j]) {
				continue
			}
			bi, bj := batchOf[order[i]], batchOf[order[j]]
			if bi == bj {
				t.Fatalf("conflicting nets %d and %d share batch %d", order[i], order[j], bi)
			}
			if bi >= bj {
				t.Fatalf("earlier conflicting net %d in batch %d, later net %d in batch %d",
					order[i], bi, order[j], bj)
			}
		}
	}
}

// TestEndpointCacheReuse is the sortedStarts regression test: unchanged
// endpoints must not be re-collected (and re-sorted) across search
// attempts, and a commit on an incident pin must invalidate exactly the
// affected cache entry.
func TestEndpointCacheReuse(t *testing.T) {
	pl := routeFixture(t)
	r := newTestRouter(t, pl, DefaultOptions())
	n := r.nets[0]
	base := endpointRebuilds.Load()
	ep1 := r.endpointsFor(n)
	if got := endpointRebuilds.Load() - base; got != 1 {
		t.Fatalf("first lookup performed %d rebuilds, want 1", got)
	}
	ep2 := r.endpointsFor(n)
	if got := endpointRebuilds.Load() - base; got != 1 {
		t.Fatalf("unchanged endpoints were re-sorted (%d rebuilds after second lookup)", got)
	}
	if ep1 != ep2 {
		t.Fatal("second lookup returned a different cache entry")
	}
	// A commit on one of the net's pins bumps the pin revision and forces
	// one rebuild on the next lookup.
	r.commit(n, geom.Path{r.pinCell[n.PinA]})
	r.endpointsFor(n)
	if got := endpointRebuilds.Load() - base; got != 2 {
		t.Fatalf("lookup after an incident commit performed %d rebuilds total, want 2", got)
	}
}

// TestFriendGroupsComponents pins friendGroups' component construction:
// pin-sharing nets merge transitively (including through cycles),
// singleton nets are excluded, and groups come back ordered by smallest
// member index with sorted members and pins.
func TestFriendGroupsComponents(t *testing.T) {
	nets := []bridge.Net{
		{ID: 0, PinA: 1, PinB: 2},
		{ID: 1, PinA: 7, PinB: 8}, // singleton
		{ID: 2, PinA: 2, PinB: 3},
		{ID: 3, PinA: 3, PinB: 1}, // closes a cycle in the first group
		{ID: 4, PinA: 9, PinB: 10},
		{ID: 5, PinA: 10, PinB: 11},
	}
	groups := friendGroups(nets)
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(groups))
	}
	g0, g1 := groups[0], groups[1]
	wantNets0 := []int{0, 2, 3}
	wantPins0 := []int{1, 2, 3}
	if len(g0.nets) != 3 || g0.nets[0] != wantNets0[0] || g0.nets[1] != wantNets0[1] || g0.nets[2] != wantNets0[2] {
		t.Fatalf("group 0 nets %v, want %v", g0.nets, wantNets0)
	}
	if len(g0.pins) != 3 || g0.pins[0] != wantPins0[0] || g0.pins[1] != wantPins0[1] || g0.pins[2] != wantPins0[2] {
		t.Fatalf("group 0 pins %v, want %v", g0.pins, wantPins0)
	}
	if len(g1.nets) != 2 || g1.nets[0] != 4 || g1.nets[1] != 5 {
		t.Fatalf("group 1 nets %v, want [4 5]", g1.nets)
	}
}

// TestSteinerRouting routes a friend-net-heavy fixture in Steiner mode:
// the result must carry the Steiner flag, verify under the group
// connectivity rule, and be byte-identical between the serial and batched
// schedulers and across repeated runs.
func TestSteinerRouting(t *testing.T) {
	pl := routeFixture(t)
	opts := DefaultOptions()
	opts.Steiner = true
	res, err := Run(pl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Steiner {
		t.Fatal("result does not carry the Steiner flag")
	}
	if err := VerifyStructure(pl, res); err != nil {
		t.Fatal(err)
	}
	again, err := Run(pl, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameRouting(t, "steiner rerun", res, again)
	serialOpts := opts
	serialOpts.Serial = true
	serial, err := Run(pl, serialOpts)
	if err != nil {
		t.Fatal(err)
	}
	sameRouting(t, "steiner serial vs batched", res, serial)
}

// TestRoutingStatsCollected pins the Clock contract: with a clock
// injected the sub-stage durations and counters are populated, and the
// routed cells are identical to an untimed run (timing never affects
// routing output).
func TestRoutingStatsCollected(t *testing.T) {
	pl := routeFixture(t)
	opts := DefaultOptions()
	var fake int64
	opts.Clock = func() time.Duration { fake += 1000; return time.Duration(fake) }
	timed, err := Run(pl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if timed.Stats.Searches == 0 || timed.Stats.Commits == 0 {
		t.Fatalf("counters not collected: %+v", timed.Stats)
	}
	if timed.Stats.Search == 0 || timed.Stats.Commit == 0 {
		t.Fatalf("durations not collected: %+v", timed.Stats)
	}
	opts.Clock = nil
	untimed, err := Run(pl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if untimed.Stats.Search != 0 || untimed.Stats.Commit != 0 || untimed.Stats.RipUp != 0 {
		t.Fatalf("durations collected without a clock: %+v", untimed.Stats)
	}
	if untimed.Stats.Searches != timed.Stats.Searches {
		t.Fatalf("search counts differ with/without clock: %d vs %d",
			untimed.Stats.Searches, timed.Stats.Searches)
	}
	sameRouting(t, "timed vs untimed", timed, untimed)
}
