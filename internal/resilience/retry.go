// Package resilience is the service layer's fault-handling toolkit:
// deterministic-under-test retry with exponential backoff and jitter,
// classification of the internal/faults taxonomy into retryable versus
// terminal failures, and a circuit breaker that sheds load while a
// dependency is melting down. It exists so that no library code hand-rolls
// a time.Sleep retry loop (the tqeclint ctxsleep analyzer enforces this):
// every backoff here is context-aware and every random choice flows from
// an explicit seed.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/faults"
)

// Class is a retry verdict for one failure.
type Class int

// Failure classes, from most to least final.
const (
	// Terminal failures never improve on retry: invalid placements,
	// cancellations, malformed inputs.
	Terminal Class = iota
	// Retryable failures are expected to clear: injected transients and
	// degraded results that a re-run with an escalated seed may fix.
	Retryable
	// RetryOnce failures get exactly one more attempt: a recovered panic
	// may be a cosmic-ray one-off, but two in a row mean a real bug.
	RetryOnce
)

// String names the class for logs and metrics.
func (c Class) String() string {
	switch c {
	case Terminal:
		return "terminal"
	case Retryable:
		return "retryable"
	case RetryOnce:
		return "retry_once"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Classify maps the internal/faults taxonomy onto retry classes:
//
//	ErrTransient            → Retryable   (injected/chaos faults clear)
//	ErrDegraded             → Retryable   (an escalated re-run may route fully)
//	ErrPanic                → RetryOnce   (one more shot, then it's a bug)
//	ErrCanceled / context   → Terminal    (the caller gave up)
//	ErrPlacementInvalid     → Terminal    (deterministic after escalation)
//	ErrUnroutable           → Terminal    (every strategy already failed)
//	ErrInvariant            → Terminal    (internal bug; retrying hides it)
//	anything else           → Terminal    (unknown failures default safe)
func Classify(err error) Class {
	switch {
	case err == nil:
		return Terminal
	case faults.IsCancellation(err):
		return Terminal
	case errors.Is(err, faults.ErrTransient):
		return Retryable
	case errors.Is(err, faults.ErrPanic):
		return RetryOnce
	case errors.Is(err, faults.ErrPlacementInvalid),
		errors.Is(err, faults.ErrUnroutable),
		errors.Is(err, faults.ErrInvariant):
		return Terminal
	case errors.Is(err, faults.ErrDegraded):
		return Retryable
	}
	return Terminal
}

// Policy configures Do. The zero value retries up to 3 attempts with a
// 10ms..1s exponential backoff, deterministic jitter from seed 0, and the
// default Classify.
type Policy struct {
	// MaxAttempts bounds the total number of fn invocations (default 3).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 10ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff (default 1s).
	MaxDelay time.Duration
	// AttemptTimeout, when positive, bounds each attempt with its own
	// deadline (clamped to the parent's remaining budget), so one stuck
	// attempt cannot eat the whole retry budget.
	AttemptTimeout time.Duration
	// JitterSeed seeds the deterministic jitter sequence. Equal seeds
	// yield equal delay schedules, which is what makes retry behaviour
	// reproducible in tests.
	JitterSeed uint64
	// Classify overrides the default failure classification (nil =
	// Classify).
	Classify func(error) Class
	// Sleep overrides the backoff sleep (nil = a context-aware timer).
	// Tests inject a recorder to assert the schedule without waiting.
	Sleep func(ctx context.Context, d time.Duration) error
	// OnRetry observes each scheduled retry (metrics hooks).
	OnRetry func(attempt int, err error, delay time.Duration)
}

// withDefaults fills unset fields.
func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	if p.Classify == nil {
		p.Classify = Classify
	}
	if p.Sleep == nil {
		p.Sleep = sleepCtx
	}
	return p
}

// sleepCtx waits d or until ctx dies, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return faults.Canceled(ctx)
	}
}

// splitmix64 advances the deterministic jitter state; it is the same
// generator the placement stage uses for per-chain seed derivation.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d4b33a2af89d25
	return z ^ (z >> 31)
}

// backoff returns the attempt'th delay: exponential growth capped at
// MaxDelay, with deterministic equal-jitter (half fixed, half seeded) so
// concurrent retries with different seeds decorrelate.
func (p Policy) backoff(attempt int) time.Duration {
	d := p.BaseDelay
	for i := 0; i < attempt && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	half := d / 2
	r := splitmix64(p.JitterSeed + uint64(attempt))
	return half + time.Duration(r%uint64(half+1))
}

// Do runs fn with retry: attempt 0 immediately, each retry after a
// deterministic backoff, stopping on success, a Terminal classification, a
// RetryOnce error past its single retry, exhaustion of MaxAttempts, or a
// dead context. Each attempt receives its own context bounded by
// AttemptTimeout (when set) under the parent's deadline. The returned
// error is the last attempt's, so callers map it exactly as they would an
// unretried failure.
func Do(ctx context.Context, p Policy, fn func(ctx context.Context, attempt int) error) error {
	p = p.withDefaults()
	var last error
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		if err := faults.Canceled(ctx); err != nil {
			if last != nil {
				return last
			}
			return err
		}
		actx := ctx
		cancel := context.CancelFunc(func() {})
		if p.AttemptTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, p.AttemptTimeout)
		}
		err := fn(actx, attempt)
		cancel()
		if err == nil {
			return nil
		}
		last = err
		// An attempt killed by its own per-attempt deadline — not the
		// parent's — is a timeout of one try, which is retryable by
		// construction; everything else goes through the classifier.
		class := p.Classify(err)
		if p.AttemptTimeout > 0 && faults.IsCancellation(err) && ctx.Err() == nil {
			class = Retryable
		}
		switch class {
		case Terminal:
			return last
		case RetryOnce:
			if attempt >= 1 {
				return last
			}
		}
		if attempt == p.MaxAttempts-1 {
			return last
		}
		delay := p.backoff(attempt)
		if p.OnRetry != nil {
			p.OnRetry(attempt, err, delay)
		}
		if serr := p.Sleep(ctx, delay); serr != nil {
			return last
		}
	}
	return last
}
