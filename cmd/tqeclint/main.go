// Command tqeclint runs the repo's static-analysis passes (internal/lint)
// over the given package patterns and reports findings as
//
//	file:line:col: [analyzer] message
//
// exiting 1 when anything is found and 2 on load errors. It is wired into
// `make lint` (and thus `make ci`); the self-check test in internal/lint
// keeps the CLI and CI in lockstep.
//
// Usage:
//
//	tqeclint [-json] [-github] [-list] [-C dir] [-facts-dir dir] [-graph]
//	         [-stats] [-summary file] [packages ...]
//
// With no patterns it analyzes ./... . -json emits the findings as a JSON
// array for tooling; -github emits GitHub Actions workflow commands
// (::error file=...,line=...,col=...::message) so findings surface as
// inline annotations on pull requests; -list prints the analyzer registry.
//
// -facts-dir enables the incremental driver: per-package function
// summaries and findings persist there keyed by content hash, so a run
// over unchanged packages replays instead of re-analyzing (a fully warm
// run does not even parse). -graph dumps the CHA call graph and exits.
// -stats prints per-analyzer timing to stderr; -summary appends a
// Markdown run report to the given file (pass "$GITHUB_STEP_SUMMARY" in
// CI).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	github := flag.Bool("github", false, "emit findings as GitHub Actions ::error annotations")
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	dir := flag.String("C", ".", "directory to resolve package patterns from")
	factsDir := flag.String("facts-dir", "", "persist per-package facts and findings here for incremental runs")
	graph := flag.Bool("graph", false, "dump the CHA call graph instead of running analyzers")
	stats := flag.Bool("stats", false, "print per-analyzer timing and cache stats to stderr")
	summary := flag.String("summary", "", "append a Markdown run summary to this file")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: tqeclint [-json] [-github] [-list] [-C dir] [-facts-dir dir] [-graph] [-stats] [-summary file] [packages ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()

	if *graph {
		pkgs, err := lint.LoadPackages(*dir, patterns...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tqeclint:", err)
			os.Exit(2)
		}
		lint.BuildCallGraph(pkgs).Dump(os.Stdout)
		return
	}

	var findings []lint.Finding
	var runStats *lint.RunStats
	if *factsDir != "" {
		var err error
		findings, runStats, err = lint.RunIncremental(*dir, *factsDir, patterns, lint.Analyzers())
		if err != nil {
			fmt.Fprintln(os.Stderr, "tqeclint:", err)
			os.Exit(2)
		}
	} else {
		pkgs, err := lint.LoadPackages(*dir, patterns...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tqeclint:", err)
			os.Exit(2)
		}
		findings, runStats = lint.RunAnalyzersStats(pkgs, lint.Analyzers())
	}

	switch {
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "tqeclint:", err)
			os.Exit(2)
		}
	case *github:
		for _, f := range relFindings(findings) {
			fmt.Println(githubAnnotation(f))
		}
	default:
		for _, f := range relFindings(findings) {
			fmt.Println(f)
		}
	}
	if *stats {
		fmt.Fprint(os.Stderr, statsText(runStats))
	}
	if *summary != "" {
		if err := appendSummary(*summary, runStats, len(findings)); err != nil {
			fmt.Fprintln(os.Stderr, "tqeclint: writing summary:", err)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// statsText renders the run stats as aligned plain text.
func statsText(s *lint.RunStats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "packages: %d (%d cached)  facts: %s  total: %s\n",
		s.Packages, s.CachedPackages, s.FactsDuration.Round(1e6), s.TotalDuration.Round(1e6))
	for _, a := range s.Analyzers {
		fmt.Fprintf(&b, "  %-12s %4d findings  %8s\n", a.Name, a.Findings, a.Duration.Round(1e6))
	}
	return b.String()
}

// appendSummary appends a Markdown table of the run to path — the shape
// GitHub renders in the Actions job summary.
func appendSummary(path string, s *lint.RunStats, findings int) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	var b strings.Builder
	fmt.Fprintf(&b, "### tqeclint\n\n")
	fmt.Fprintf(&b, "%d finding(s) across %d package(s), %d served from the facts cache. Facts %s, total %s.\n\n",
		findings, s.Packages, s.CachedPackages, s.FactsDuration.Round(1e6), s.TotalDuration.Round(1e6))
	fmt.Fprintf(&b, "| analyzer | findings | time |\n|---|---:|---:|\n")
	for _, a := range s.Analyzers {
		fmt.Fprintf(&b, "| %s | %d | %s |\n", a.Name, a.Findings, a.Duration.Round(1e6))
	}
	fmt.Fprintf(&b, "\n")
	_, err = f.WriteString(b.String())
	return err
}

// relFindings rewrites absolute file paths relative to the working
// directory, which for -github must be the repository root so annotations
// attach to the right files in the diff view.
func relFindings(findings []lint.Finding) []lint.Finding {
	cwd, err := os.Getwd()
	if err != nil {
		return findings
	}
	out := make([]lint.Finding, len(findings))
	for i, f := range findings {
		if rel, err := filepath.Rel(cwd, f.File); err == nil {
			f.File = rel
		}
		out[i] = f
	}
	return out
}

// githubAnnotation renders one finding as a GitHub Actions workflow
// command. Message data must escape %, CR and LF; property values
// additionally escape ':' and ','.
func githubAnnotation(f lint.Finding) string {
	esc := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
	prop := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A", ":", "%3A", ",", "%2C")
	return fmt.Sprintf("::error file=%s,line=%d,col=%d,title=tqeclint %s::[%s] %s",
		prop.Replace(f.File), f.Line, f.Col, prop.Replace(f.Analyzer),
		esc.Replace(f.Analyzer), esc.Replace(f.Message))
}
