package place

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/qc"
)

// corpus returns the seed-corpus circuits the multi-chain equivalence
// tests sweep: the Fig. 4 motivating circuit, a T-gate circuit (TSL
// reallocation active) and a benchmark-scale netlist.
func corpus(t *testing.T) map[string]func() *qc.Circuit {
	t.Helper()
	return map[string]func() *qc.Circuit{
		"three-cnot": func() *qc.Circuit {
			c := qc.New("small", 3)
			c.Append(qc.CNOT(0, 1), qc.CNOT(1, 2), qc.CNOT(0, 2))
			return c
		},
		"tgate": func() *qc.Circuit {
			c := qc.New("tg", 2)
			c.Append(qc.T(0), qc.CNOT(0, 1), qc.T(0), qc.T(1))
			return c
		},
		"benchmark": func() *qc.Circuit {
			spec, err := qc.BenchmarkByName("4gt10-v1_81")
			if err != nil {
				t.Fatal(err)
			}
			return mustGen(t, spec)
		},
	}
}

// samePlacement asserts every derived field of two placements matches
// exactly (bit-identical positions, tiers, cost, move count).
func samePlacement(t *testing.T, label string, a, b *Placement) {
	t.Helper()
	if !reflect.DeepEqual(a.Pos, b.Pos) {
		t.Fatalf("%s: positions differ:\n%v\n%v", label, a.Pos, b.Pos)
	}
	if !reflect.DeepEqual(a.TierOf, b.TierOf) {
		t.Fatalf("%s: tiers differ: %v vs %v", label, a.TierOf, b.TierOf)
	}
	if a.Cost != b.Cost {
		t.Fatalf("%s: costs differ: %v vs %v", label, a.Cost, b.Cost)
	}
	if a.Moves != b.Moves {
		t.Fatalf("%s: move counts differ: %d vs %d", label, a.Moves, b.Moves)
	}
	if a.WireLength != b.WireLength {
		t.Fatalf("%s: wirelengths differ: %d vs %d", label, a.WireLength, b.WireLength)
	}
}

// TestChainsOneMatchesSequential pins the tentpole equivalence contract:
// for the whole seed corpus, Chains=1 must produce byte-identical output
// to the plain sequential placer (runOnce), i.e. the multi-chain driver
// adds no PRNG draws, no reordering and no extra moves for a lone chain.
func TestChainsOneMatchesSequential(t *testing.T) {
	for name, mk := range corpus(t) {
		for _, seed := range []int64{1, 7, 42} {
			cl, nets := pipeline(t, mk())
			o := quickOpts(200)
			o.Seed = seed
			seq, err := runOnce(context.Background(), cl, nets, o)
			if err != nil {
				t.Fatal(err)
			}
			o.Chains = 1
			chained, err := Run(cl, nets, o)
			if err != nil {
				t.Fatal(err)
			}
			samePlacement(t, name, seq, chained)
		}
	}
}

// TestChainsDeterministicForFixedSeed verifies the bit-identical-repro
// contract for a fixed (seed, chains) pair, including under the race
// detector where goroutine interleavings vary wildly between runs.
func TestChainsDeterministicForFixedSeed(t *testing.T) {
	for name, mk := range corpus(t) {
		run := func() *Placement {
			cl, nets := pipeline(t, mk())
			o := quickOpts(200)
			o.Seed = 5
			o.Chains = 4
			p, err := Run(cl, nets, o)
			if err != nil {
				t.Fatal(err)
			}
			return p
		}
		samePlacement(t, name, run(), run())
	}
}

// TestChainsProduceValidPlacement checks the structural invariants hold
// for multi-chain results across chain counts.
func TestChainsProduceValidPlacement(t *testing.T) {
	for _, chains := range []int{2, 3, 4} {
		cl, nets := pipeline(t, corpus(t)["tgate"]())
		o := quickOpts(300)
		o.Chains = chains
		p, err := Run(cl, nets, o)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.CheckNoOverlap(); err != nil {
			t.Fatalf("chains=%d: %v", chains, err)
		}
		if err := p.CheckTimeOrdering(); err != nil {
			t.Fatalf("chains=%d: %v", chains, err)
		}
	}
}

// TestChainsCancellation verifies that canceling a multi-chain run aborts
// every chain without deadlocking the exchange barrier.
func TestChainsCancellation(t *testing.T) {
	cl, nets := pipeline(t, corpus(t)["benchmark"]())
	o := quickOpts(100000)
	o.Chains = 3
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, cl, nets, o)
	if !errors.Is(err, faults.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

// TestChainSeedDerivation pins the per-chain seed contract: chain 0 gets
// the base seed verbatim, higher chains get distinct decorrelated seeds,
// and the derivation is a pure function.
func TestChainSeedDerivation(t *testing.T) {
	if got := chainSeed(99, 0); got != 99 {
		t.Fatalf("chain 0 seed = %d, want the base seed", got)
	}
	seen := map[int64]int{99: 0}
	for k := 1; k < 16; k++ {
		s := chainSeed(99, k)
		if prev, dup := seen[s]; dup {
			t.Fatalf("chains %d and %d share seed %d", prev, k, s)
		}
		seen[s] = k
		if s != chainSeed(99, k) {
			t.Fatalf("chain %d seed not reproducible", k)
		}
	}
}

// TestEffectiveChains pins the default-resolution rule.
func TestEffectiveChains(t *testing.T) {
	if got := (Options{Chains: 3}).EffectiveChains(); got != 3 {
		t.Fatalf("explicit Chains ignored: %d", got)
	}
	got := (Options{}).EffectiveChains()
	if got < 1 || got > 4 {
		t.Fatalf("auto chains %d outside [1,4]", got)
	}
}
