package rtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func box(x, y, z, sx, sy, sz int) geom.Box {
	return geom.BoxAt(geom.Pt(x, y, z), sx, sy, sz)
}

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatalf("len: %d", tr.Len())
	}
	if tr.Intersects(box(0, 0, 0, 100, 100, 100)) {
		t.Fatal("empty tree should intersect nothing")
	}
	if got := tr.Search(box(0, 0, 0, 10, 10, 10), nil); len(got) != 0 {
		t.Fatalf("search on empty tree: %v", got)
	}
}

func TestInsertSearchSmall(t *testing.T) {
	tr := New()
	tr.Insert(box(0, 0, 0, 2, 2, 2), 1)
	tr.Insert(box(5, 5, 5, 2, 2, 2), 2)
	tr.Insert(box(1, 1, 1, 2, 2, 2), 3)
	if tr.Len() != 3 {
		t.Fatalf("len: %d", tr.Len())
	}
	got := tr.Search(box(0, 0, 0, 3, 3, 3), nil)
	ids := map[int]bool{}
	for _, e := range got {
		ids[e.ID] = true
	}
	if !ids[1] || !ids[3] || ids[2] {
		t.Fatalf("search ids: %v", ids)
	}
	if !tr.Intersects(box(6, 6, 6, 1, 1, 1)) {
		t.Fatal("should intersect entry 2")
	}
	if tr.Intersects(box(100, 100, 100, 1, 1, 1)) {
		t.Fatal("should not intersect far window")
	}
}

func TestIntersectsExcept(t *testing.T) {
	tr := New()
	tr.Insert(box(0, 0, 0, 2, 2, 2), 7)
	tr.Insert(box(1, 1, 1, 2, 2, 2), 8)
	w := box(0, 0, 0, 3, 3, 3)
	if !tr.IntersectsExcept(w, map[int]bool{7: true}) {
		t.Fatal("entry 8 should still block")
	}
	if tr.IntersectsExcept(w, map[int]bool{7: true, 8: true}) {
		t.Fatal("both skipped, nothing should block")
	}
	if tr.IntersectsExcept(box(50, 0, 0, 1, 1, 1), nil) {
		t.Fatal("far window should be clear")
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	b := box(3, 3, 3, 2, 2, 2)
	tr.Insert(b, 42)
	tr.Insert(box(0, 0, 0, 1, 1, 1), 43)
	if !tr.Delete(b, 42) {
		t.Fatal("delete should succeed")
	}
	if tr.Delete(b, 42) {
		t.Fatal("double delete should fail")
	}
	if tr.Len() != 1 {
		t.Fatalf("len after delete: %d", tr.Len())
	}
	if tr.Intersects(b) {
		t.Fatal("deleted box should not intersect")
	}
}

func TestDeleteAll(t *testing.T) {
	tr := New()
	for i := 0; i < 20; i++ {
		tr.Insert(box(i, 0, 0, 1, 1, 1), 5)
		tr.Insert(box(i, 2, 0, 1, 1, 1), 6)
	}
	if n := tr.DeleteAll(5); n != 20 {
		t.Fatalf("deleted %d entries for id 5", n)
	}
	if tr.Len() != 20 {
		t.Fatalf("len: %d", tr.Len())
	}
	if tr.Intersects(box(0, 0, 0, 40, 1, 1)) {
		t.Fatal("row y=0 should be empty")
	}
	if !tr.Intersects(box(0, 2, 0, 40, 1, 1)) {
		t.Fatal("row y=2 should remain")
	}
}

func TestManyInsertsSplitCorrectness(t *testing.T) {
	tr := New()
	const n = 500
	rng := rand.New(rand.NewSource(1))
	boxes := make([]geom.Box, n)
	for i := 0; i < n; i++ {
		boxes[i] = box(rng.Intn(100), rng.Intn(100), rng.Intn(20), 1+rng.Intn(3), 1+rng.Intn(3), 1+rng.Intn(2))
		tr.Insert(boxes[i], i)
	}
	if tr.Len() != n {
		t.Fatalf("len: %d", tr.Len())
	}
	// Cross-check window queries against brute force.
	for trial := 0; trial < 50; trial++ {
		w := box(rng.Intn(100), rng.Intn(100), rng.Intn(20), 1+rng.Intn(10), 1+rng.Intn(10), 1+rng.Intn(5))
		want := map[int]bool{}
		for i, b := range boxes {
			if b.Intersects(w) {
				want[i] = true
			}
		}
		got := map[int]bool{}
		for _, e := range tr.Search(w, nil) {
			got[e.ID] = true
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d want %d", trial, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("trial %d: missing id %d", trial, id)
			}
		}
		if tr.Intersects(w) != (len(want) > 0) {
			t.Fatalf("trial %d: Intersects mismatch", trial)
		}
	}
}

func TestAll(t *testing.T) {
	tr := New()
	for i := 0; i < 30; i++ {
		tr.Insert(box(i, i, 0, 1, 1, 1), i)
	}
	got := tr.All(nil)
	if len(got) != 30 {
		t.Fatalf("all: %d entries", len(got))
	}
	seen := map[int]bool{}
	for _, e := range got {
		seen[e.ID] = true
	}
	for i := 0; i < 30; i++ {
		if !seen[i] {
			t.Fatalf("missing id %d", i)
		}
	}
}

func TestBoundsTracksInserts(t *testing.T) {
	tr := New()
	tr.Insert(box(0, 0, 0, 1, 1, 1), 0)
	tr.Insert(box(9, 9, 9, 1, 1, 1), 1)
	want := geom.NewBox(0, 0, 0, 10, 10, 10)
	if tr.Bounds() != want {
		t.Fatalf("bounds: %v want %v", tr.Bounds(), want)
	}
}

func TestDeleteInterleaved(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(7))
	live := map[int]geom.Box{}
	next := 0
	for step := 0; step < 2000; step++ {
		if rng.Intn(3) != 0 || len(live) == 0 {
			b := box(rng.Intn(50), rng.Intn(50), rng.Intn(10), 1, 1, 1)
			tr.Insert(b, next)
			live[next] = b
			next++
		} else {
			// delete a random live entry
			for id, b := range live {
				if !tr.Delete(b, id) {
					t.Fatalf("delete of live entry %d failed", id)
				}
				delete(live, id)
				break
			}
		}
	}
	if tr.Len() != len(live) {
		t.Fatalf("len %d want %d", tr.Len(), len(live))
	}
	// Full-window query returns exactly the live set.
	got := map[int]bool{}
	for _, e := range tr.Search(box(-1, -1, -1, 60, 60, 20), nil) {
		got[e.ID] = true
	}
	if len(got) != len(live) {
		t.Fatalf("query %d live %d", len(got), len(live))
	}
}

// Property: after inserting any set of boxes, every box is findable via a
// query of itself, and Bounds contains all of them.
func TestQuickInsertFindable(t *testing.T) {
	f := func(coords []int16) bool {
		tr := New()
		var boxes []geom.Box
		for i := 0; i+2 < len(coords) && i < 60; i += 3 {
			b := box(int(coords[i]%100), int(coords[i+1]%100), int(coords[i+2]%20), 2, 2, 2)
			boxes = append(boxes, b)
			tr.Insert(b, i/3)
		}
		for i, b := range boxes {
			// The same box may be inserted twice with different IDs;
			// require the exact (box,id) pair to be present.
			found := false
			for _, e := range tr.Search(b, nil) {
				if e.Box == b && e.ID == i {
					found = true
					break
				}
			}
			if !found {
				return false
			}
			if !tr.Bounds().ContainsBox(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// checkInvariants walks the whole tree and asserts the structural R-tree
// invariants Delete's condense pass must preserve: every non-root node
// meets the minimum fill, every node's bounds exactly cover its payload,
// and parent pointers are consistent.
func checkInvariants(t *testing.T, tr *Tree) {
	t.Helper()
	var walk func(n *node)
	walk = func(n *node) {
		if n != tr.root && n.underfull() {
			t.Fatalf("non-root node underfull: leaf=%v entries=%d children=%d",
				n.leaf, len(n.entries), len(n.children))
		}
		var want geom.Box
		if n.leaf {
			for _, e := range n.entries {
				want = want.Union(e.Box)
			}
		} else {
			for _, c := range n.children {
				if c.parent != n {
					t.Fatal("child with stale parent pointer")
				}
				want = want.Union(c.bounds)
				walk(c)
			}
		}
		if n.bounds != want {
			t.Fatalf("node bounds %v, recomputed %v", n.bounds, want)
		}
	}
	walk(tr.root)
}

// TestIncrementalMatchesRebuild interleaves inserts and deletes and
// periodically cross-checks window queries against a tree rebuilt from
// scratch over the same live set — the parity that lets the router
// maintain its net index incrementally through rip-up rounds.
func TestIncrementalMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tr := New()
	live := map[int]geom.Box{}
	var liveIDs []int
	next := 0
	compare := func(step int) {
		t.Helper()
		fresh := New()
		for _, id := range liveIDs {
			fresh.Insert(live[id], id)
		}
		if tr.Len() != fresh.Len() {
			t.Fatalf("step %d: len %d incremental vs %d rebuilt", step, tr.Len(), fresh.Len())
		}
		for trial := 0; trial < 20; trial++ {
			w := box(rng.Intn(60)-5, rng.Intn(60)-5, rng.Intn(12)-2, 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(6))
			got := map[int]int{}
			for _, e := range tr.Search(w, nil) {
				got[e.ID]++
			}
			want := map[int]int{}
			for _, e := range fresh.Search(w, nil) {
				want[e.ID]++
			}
			if len(got) != len(want) {
				t.Fatalf("step %d window %v: %d ids incremental vs %d rebuilt", step, w, len(got), len(want))
			}
			for id, n := range want {
				if got[id] != n {
					t.Fatalf("step %d window %v: id %d seen %d times, want %d", step, w, id, got[id], n)
				}
			}
		}
	}
	for step := 0; step < 1200; step++ {
		if len(liveIDs) == 0 || rng.Intn(5) < 3 {
			b := box(rng.Intn(50), rng.Intn(50), rng.Intn(10), 1+rng.Intn(4), 1+rng.Intn(4), 1+rng.Intn(3))
			tr.Insert(b, next)
			live[next] = b
			liveIDs = append(liveIDs, next)
			next++
		} else {
			i := rng.Intn(len(liveIDs))
			id := liveIDs[i]
			if !tr.Delete(live[id], id) {
				t.Fatalf("step %d: delete of live entry %d failed", step, id)
			}
			delete(live, id)
			liveIDs[i] = liveIDs[len(liveIDs)-1]
			liveIDs = liveIDs[:len(liveIDs)-1]
		}
		if step%150 == 0 {
			compare(step)
			checkInvariants(t, tr)
		}
	}
	compare(1200)
	checkInvariants(t, tr)
}

// TestDeleteCondensesToEmpty deletes every entry of a multi-level tree and
// checks the tree shrinks back to a usable empty root with the fill
// invariant held the whole way down.
func TestDeleteCondensesToEmpty(t *testing.T) {
	tr := New()
	boxes := make([]geom.Box, 200)
	for i := range boxes {
		boxes[i] = box(i%20, i/20, 0, 2, 2, 1)
		tr.Insert(boxes[i], i)
	}
	for i := range boxes {
		if !tr.Delete(boxes[i], i) {
			t.Fatalf("delete %d failed", i)
		}
		checkInvariants(t, tr)
	}
	if tr.Len() != 0 {
		t.Fatalf("len %d after deleting everything", tr.Len())
	}
	tr.Insert(box(1, 1, 1, 1, 1, 1), 0)
	if got := tr.Search(box(0, 0, 0, 3, 3, 3), nil); len(got) != 1 {
		t.Fatalf("tree unusable after draining: %v", got)
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Insert(box(rng.Intn(500), rng.Intn(500), rng.Intn(60), 2, 2, 2), i)
	}
}

func BenchmarkSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	tr := New()
	for i := 0; i < 10000; i++ {
		tr.Insert(box(rng.Intn(500), rng.Intn(500), rng.Intn(60), 2, 2, 2), i)
	}
	var dst []Entry
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = tr.Search(box(rng.Intn(500), rng.Intn(500), rng.Intn(60), 8, 8, 8), dst[:0])
	}
}

func BenchmarkIntersects(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	tr := New()
	for i := 0; i < 10000; i++ {
		tr.Insert(box(rng.Intn(500), rng.Intn(500), rng.Intn(60), 2, 2, 2), i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Intersects(box(rng.Intn(500), rng.Intn(500), rng.Intn(60), 1, 1, 1))
	}
}
