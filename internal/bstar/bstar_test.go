package bstar

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mkBlocks(dims ...[2]int) []*Block {
	out := make([]*Block, len(dims))
	for i, d := range dims {
		out[i] = &Block{W: d[0], H: d[1]}
	}
	return out
}

func allIdx(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func overlaps(a, b *Block) bool {
	return a.X < b.X+b.W && b.X < a.X+a.W && a.Y < b.Y+b.H && b.Y < a.Y+a.H
}

func checkNoOverlap(t *testing.T, blocks []*Block, members []int) {
	t.Helper()
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			a, b := blocks[members[i]], blocks[members[j]]
			if overlaps(a, b) {
				t.Fatalf("blocks %d and %d overlap: %+v %+v", members[i], members[j], a, b)
			}
		}
	}
}

func TestPackSingle(t *testing.T) {
	blocks := mkBlocks([2]int{3, 4})
	tr := NewTree(blocks, allIdx(1))
	w, h := tr.Pack()
	if w != 3 || h != 4 {
		t.Fatalf("pack: %d×%d", w, h)
	}
	if blocks[0].X != 0 || blocks[0].Y != 0 {
		t.Fatalf("position: %+v", blocks[0])
	}
}

func TestPackEmpty(t *testing.T) {
	tr := NewTree(nil, nil)
	if w, h := tr.Pack(); w != 0 || h != 0 {
		t.Fatalf("empty pack: %d×%d", w, h)
	}
	if tr.Len() != 0 {
		t.Fatalf("len: %d", tr.Len())
	}
}

func TestPackRow(t *testing.T) {
	// A left-child chain packs as a row.
	blocks := mkBlocks([2]int{2, 2}, [2]int{3, 2}, [2]int{1, 2})
	tr := NewTree(blocks, nil)
	// Build the chain manually: 0 root, 1 left of 0, 2 left of 1.
	tr = &Tree{blocks: blocks, root: -1}
	if err := tr.Insert(0, -1, true); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(1, 0, true); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(2, 1, true); err != nil {
		t.Fatal(err)
	}
	w, h := tr.Pack()
	if w != 6 || h != 2 {
		t.Fatalf("row pack: %d×%d want 6×2", w, h)
	}
	if blocks[1].X != 2 || blocks[2].X != 5 {
		t.Fatalf("row xs: %d %d", blocks[1].X, blocks[2].X)
	}
	checkNoOverlap(t, blocks, allIdx(3))
}

func TestPackRightChildStacks(t *testing.T) {
	blocks := mkBlocks([2]int{2, 2}, [2]int{2, 3})
	tr := &Tree{blocks: blocks, root: -1}
	if err := tr.Insert(0, -1, true); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(1, 0, false); err != nil {
		t.Fatal(err)
	}
	w, h := tr.Pack()
	if w != 2 || h != 5 {
		t.Fatalf("stack pack: %d×%d want 2×5", w, h)
	}
	if blocks[1].X != 0 || blocks[1].Y != 2 {
		t.Fatalf("stacked block: %+v", blocks[1])
	}
}

func TestNewTreeCompleteShape(t *testing.T) {
	blocks := mkBlocks([2]int{1, 1}, [2]int{1, 1}, [2]int{1, 1}, [2]int{1, 1}, [2]int{1, 1})
	tr := NewTree(blocks, allIdx(5))
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 5 {
		t.Fatalf("len: %d", tr.Len())
	}
	tr.Pack()
	checkNoOverlap(t, blocks, allIdx(5))
}

func TestRemoveInsert(t *testing.T) {
	blocks := mkBlocks([2]int{2, 2}, [2]int{3, 3}, [2]int{1, 1}, [2]int{2, 1})
	tr := NewTree(blocks, allIdx(4))
	rng := rand.New(rand.NewSource(3))
	for step := 0; step < 200; step++ {
		n := tr.RandomNode(rng)
		b := tr.Remove(n)
		if err := tr.Validate(); err != nil {
			t.Fatalf("step %d after remove: %v", step, err)
		}
		if tr.Len() == 0 {
			if err := tr.Insert(b, -1, true); err != nil {
				t.Fatal(err)
			}
		} else {
			p := tr.RandomNode(rng)
			if err := tr.Insert(b, p, rng.Intn(2) == 0); err != nil {
				t.Fatal(err)
			}
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("step %d after insert: %v", step, err)
		}
		if tr.Len() != 4 {
			t.Fatalf("step %d: len %d", step, tr.Len())
		}
		tr.Pack()
		checkNoOverlap(t, blocks, allIdx(4))
	}
}

func TestSwapBlocks(t *testing.T) {
	blocks := mkBlocks([2]int{2, 2}, [2]int{4, 4})
	tr := NewTree(blocks, allIdx(2))
	n0, n1 := 0, 1
	b0, b1 := tr.BlockAt(n0), tr.BlockAt(n1)
	tr.SwapBlocks(n0, n1)
	if tr.BlockAt(n0) != b1 || tr.BlockAt(n1) != b0 {
		t.Fatal("swap did not exchange blocks")
	}
	tr.Pack()
	checkNoOverlap(t, blocks, allIdx(2))
}

func TestSwapAcrossTrees(t *testing.T) {
	blocks := mkBlocks([2]int{2, 2}, [2]int{3, 3})
	t1 := NewTree(blocks, []int{0})
	t2 := NewTree(blocks, []int{1})
	SwapBlocksAcross(t1, 0, t2, 0)
	if t1.BlockAt(0) != 1 || t2.BlockAt(0) != 0 {
		t.Fatal("cross swap failed")
	}
	if err := t1.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := t2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertSecondRootFails(t *testing.T) {
	blocks := mkBlocks([2]int{1, 1}, [2]int{1, 1})
	tr := NewTree(blocks, []int{0})
	if err := tr.Insert(1, -1, true); err == nil {
		t.Fatal("second root accepted")
	}
}

func TestBlocksListsMembers(t *testing.T) {
	blocks := mkBlocks([2]int{1, 1}, [2]int{1, 1}, [2]int{1, 1})
	tr := NewTree(blocks, []int{2, 0, 1})
	got := map[int]bool{}
	for _, b := range tr.Blocks() {
		got[b] = true
	}
	if !got[0] || !got[1] || !got[2] {
		t.Fatalf("blocks: %v", tr.Blocks())
	}
}

// Property: any random perturbation sequence keeps the packing overlap-free
// and the tree valid, and packing area ≥ total block area.
func TestQuickPerturbationsSafe(t *testing.T) {
	f := func(sizes []uint8, seed int64) bool {
		if len(sizes) < 4 {
			return true
		}
		if len(sizes) > 24 {
			sizes = sizes[:24]
		}
		var blocks []*Block
		area := 0
		for i := 0; i+1 < len(sizes); i += 2 {
			w, h := 1+int(sizes[i]%6), 1+int(sizes[i+1]%6)
			blocks = append(blocks, &Block{W: w, H: h})
			area += w * h
		}
		tr := NewTree(blocks, allIdx(len(blocks)))
		rng := rand.New(rand.NewSource(seed))
		for step := 0; step < 40; step++ {
			switch rng.Intn(2) {
			case 0:
				n := tr.RandomNode(rng)
				b := tr.Remove(n)
				if tr.Len() == 0 {
					_ = tr.Insert(b, -1, true)
				} else {
					_ = tr.Insert(b, tr.RandomNode(rng), rng.Intn(2) == 0)
				}
			case 1:
				a, b := tr.RandomNode(rng), tr.RandomNode(rng)
				tr.SwapBlocks(a, b)
			}
			if tr.Validate() != nil {
				return false
			}
		}
		w, h := tr.Pack()
		if w*h < area {
			return false
		}
		for i := 0; i < len(blocks); i++ {
			for j := i + 1; j < len(blocks); j++ {
				if overlaps(blocks[i], blocks[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPack(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	var blocks []*Block
	for i := 0; i < 500; i++ {
		blocks = append(blocks, &Block{W: 2 + rng.Intn(20), H: 2 + rng.Intn(8)})
	}
	tr := NewTree(blocks, allIdx(len(blocks)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Pack()
	}
}

func BenchmarkPerturbPack(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	var blocks []*Block
	for i := 0; i < 200; i++ {
		blocks = append(blocks, &Block{W: 2 + rng.Intn(20), H: 2 + rng.Intn(8)})
	}
	tr := NewTree(blocks, allIdx(len(blocks)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := tr.RandomNode(rng)
		blk := tr.Remove(n)
		if tr.Len() == 0 {
			_ = tr.Insert(blk, -1, true)
		} else {
			_ = tr.Insert(blk, tr.RandomNode(rng), rng.Intn(2) == 0)
		}
		tr.Pack()
	}
}
