// Package server implements the tqecd compile service: an HTTP/JSON daemon
// over tqec.CompileContext with a bounded FIFO job queue drained by a
// worker pool, a content-addressed single-flight result cache, and live
// metrics.
//
// Endpoints:
//
//	POST /v1/compile      synchronous compile; responds with the result
//	                      payload and X-Tqecd-Cache{,-Key} headers
//	POST /v1/jobs         asynchronous compile; responds 202 with a job ID
//	GET  /v1/jobs/{id}    poll a job: queued/running/done/failed
//	GET  /v1/metrics      counters, queue gauges, cache stats, latency
//	                      histograms (JSON)
//	GET  /healthz         liveness and drain state
//
// Compilation is deterministic for a fixed (circuit, options) pair, so
// results are content-addressed by tqec.CacheKey: concurrent identical
// requests coalesce onto one compile (single-flight) and repeats are served
// from the in-memory LRU byte-for-byte identically. Failures surface as
// structured JSON errors carrying the failed stage and the faults-taxonomy
// sentinel; queue overload returns 429 with queue-depth headers; draining
// returns 503 while queued work finishes.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/ccache"
	"repro/internal/faults"
	"repro/internal/journal"
	"repro/internal/metrics"
	"repro/internal/resilience"
	"repro/tqec"
)

// Journal is the durability hook the server writes async job lifecycle
// events through. *journal.Journal implements it; a nil Journal in Config
// keeps today's purely in-memory behaviour.
type Journal interface {
	// Append durably records one lifecycle event before the server acts
	// on it.
	Append(ev journal.Event) error
	// Recovered returns the job states replayed at open, in acceptance
	// order; New consumes them to re-enqueue interrupted jobs and restore
	// finished ones.
	Recovered() []journal.JobState
	// Stats snapshots the journal counters for /v1/metrics.
	Stats() journal.Stats
}

// Config sizes the service. Zero values mean defaults.
type Config struct {
	// Workers is the worker-pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the FIFO job queue (default 64).
	QueueDepth int
	// CacheBytes bounds the result cache payload bytes (default 64 MiB).
	CacheBytes int64
	// CacheShards splits the result cache into this many independently
	// locked shards (consistent hash of the content address), so lookups
	// stop serializing on one mutex under concurrent load. 0 or 1 keeps
	// the single-mutex cache. Single-flight stays per key either way.
	CacheShards int
	// PartitionQubits, when positive, makes partitioned compilation the
	// default: requests that leave partition_qubits at 0 compile with
	// this per-part qubit cap (a negative request value still forces the
	// ordinary pipeline). 0 keeps unpartitioned compiles the default.
	PartitionQubits int
	// DefaultTimeout bounds each compile when the request does not set
	// one (default 2m).
	DefaultTimeout time.Duration
	// MaxTimeout caps request-supplied timeouts (default 10m).
	MaxTimeout time.Duration
	// MaxJobs bounds the async job registry (default 1024).
	MaxJobs int
	// JobTTL bounds how long finished async jobs stay pollable (default
	// 15m; negative disables TTL eviction, leaving only the MaxJobs cap).
	JobTTL time.Duration
	// MaxBodyBytes bounds request bodies (default 4 MiB).
	MaxBodyBytes int64
	// Journal, when non-nil, makes async jobs durable: every lifecycle
	// event is appended (and fsync'd) before the server acknowledges it,
	// and New replays the journal's recovered states — re-enqueueing
	// interrupted jobs and restoring finished ones into the registry and
	// result cache. Nil keeps jobs in memory only.
	Journal Journal
	// BreakerThreshold is how many consecutive systemic compile failures
	// (panics, invariant violations, unresolved transients) trip the
	// circuit breaker open (default 8).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker sheds load before
	// probing (default 10s).
	BreakerCooldown time.Duration
	// DisableAdmission turns off deadline-aware admission control, which
	// otherwise rejects a request on arrival (429 + Retry-After) when the
	// queue's estimated drain time already exceeds its deadline.
	DisableAdmission bool
	// AllowFaultInjection admits the fault_attempts chaos hook in request
	// options. Leave off outside tests and chaos drills.
	AllowFaultInjection bool
	// Retry tunes the transient-failure retry inside the compile path.
	// Zero fields mean defaults (3 attempts, 5ms..100ms backoff).
	Retry RetryConfig
}

// RetryConfig tunes the server's compile retry loop.
type RetryConfig struct {
	// MaxAttempts bounds compile attempts per request (default 3).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 5ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff; workers sleep through it, so it stays
	// small (default 100ms).
	MaxDelay time.Duration
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Minute
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 1024
	}
	if c.JobTTL == 0 {
		c.JobTTL = 15 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 4 << 20
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 8
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 10 * time.Second
	}
	if c.Retry.MaxAttempts <= 0 {
		c.Retry.MaxAttempts = 3
	}
	if c.Retry.BaseDelay <= 0 {
		c.Retry.BaseDelay = 5 * time.Millisecond
	}
	if c.Retry.MaxDelay <= 0 {
		c.Retry.MaxDelay = 100 * time.Millisecond
	}
	return c
}

// limits bundles the request-parsing knobs.
func (c Config) limits() parseLimits {
	return parseLimits{defaultTimeout: c.DefaultTimeout, maxTimeout: c.MaxTimeout,
		allowFaults: c.AllowFaultInjection, defaultPartition: c.PartitionQubits}
}

// Server is the compile service. Create with New, launch the workers with
// Start, serve it as an http.Handler, and stop with Drain.
type Server struct {
	cfg      Config
	pool     *pool
	cache    ccache.Store
	jobs     *jobRegistry
	mux      *http.ServeMux
	breaker  *resilience.Breaker
	draining atomic.Bool
	// lifetime holds the Start context so the compile path can tell a
	// hard stop (lifetime canceled: leave the job un-acknowledged in the
	// journal for recovery) from an ordinary per-request deadline (a real
	// failure to record).
	lifetime atomic.Value // context.Context

	requests      metrics.Counter
	compiles      metrics.Counter
	errorsTotal   metrics.Counter
	rejected      metrics.Counter
	writeErrors   metrics.Counter
	jobsSubmitted metrics.Counter
	retries       metrics.Counter
	transients    metrics.Counter
	admissionRej  metrics.Counter
	journalErrs   metrics.Counter
	compileEWMA   atomic.Int64 // ns, exponentially weighted compile latency
	recInterrupt  int64        // jobs re-enqueued by recovery
	recFinished   int64        // jobs restored terminal by recovery
	compileHist   *metrics.Histogram
	stageHists    map[string]*metrics.Histogram
}

// New builds a server from the config. With a journal configured it also
// runs crash recovery: finished jobs return to the registry (and their
// results to the cache), interrupted jobs are re-enqueued under their
// original IDs — so the worker pool starts with the backlog the previous
// process lost.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	jobs, err := newJobRegistry(cfg.MaxJobs, cfg.JobTTL)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	var cache ccache.Store
	if cfg.CacheShards > 1 {
		cache = ccache.NewSharded(cfg.CacheShards, cfg.CacheBytes)
	} else {
		cache = ccache.New(cfg.CacheBytes)
	}
	s := &Server{
		cfg:         cfg,
		pool:        newPool(cfg.Workers, cfg.QueueDepth),
		cache:       cache,
		jobs:        jobs,
		mux:         http.NewServeMux(),
		breaker:     resilience.NewBreaker(resilience.BreakerSettings{Threshold: cfg.BreakerThreshold, Cooldown: cfg.BreakerCooldown}),
		compileHist: metrics.NewHistogram(),
		stageHists: map[string]*metrics.Histogram{
			metrics.StageBridging:  metrics.NewHistogram(),
			metrics.StagePlacement: metrics.NewHistogram(),
			metrics.StageRouting:   metrics.NewHistogram(),
			metrics.StageOther:     metrics.NewHistogram(),
		},
	}
	s.mux.HandleFunc("POST /v1/compile", s.handleCompile)
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	if cfg.Journal != nil {
		s.recoverFromJournal()
	}
	return s, nil
}

// Start launches the worker pool. ctx is the pool's lifetime: canceling it
// aborts in-flight compiles (hard stop); prefer Drain for graceful
// shutdown. With a journal configured a hard stop is the crash-consistency
// path: killed jobs keep their accepted/running journal entries and the
// next New with the same journal re-enqueues them.
func (s *Server) Start(ctx context.Context) {
	s.lifetime.Store(ctx)
	s.pool.start(ctx)
}

// Drain stops accepting new jobs and waits, bounded by ctx, until every
// queued job has run. In-flight synchronous requests complete because their
// queued tasks run to completion; call the HTTP server's Shutdown first so
// no new requests arrive, and cancel the Start context only after Drain
// returns — that ordering is what guarantees every queued async job either
// completes (journaled done/failed) or, if the drain deadline expires
// first, stays journaled as interrupted for the next process to pick up.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	return s.pool.drain(ctx)
}

// hardStopped reports whether err is the lifetime context's cancellation
// surfacing through a compile — the signature of a hard stop, where the
// right move is to leave the job un-acknowledged so recovery re-runs it.
func (s *Server) hardStopped(err error) bool {
	ctx, ok := s.lifetime.Load().(context.Context)
	return ok && ctx.Err() != nil && faults.IsCancellation(err)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// execute runs one compilation attempt on a worker goroutine and encodes
// the deterministic response payload. It is the only place compiles happen,
// so the compile counter equals cache misses plus retried attempts.
// Attempts below the task's injected fault budget fail with a transient
// fault instead of compiling (the chaos hook); successful attempts feed the
// admission controller's latency estimate.
func (s *Server) execute(ctx context.Context, ct *compileTask, attempt int) ([]byte, error) {
	if attempt < ct.faultAttempts {
		s.transients.Inc()
		return nil, faults.Transient(fmt.Sprintf("injected fault %d of %d", attempt+1, ct.faultAttempts), nil)
	}
	s.compiles.Inc()
	start := time.Now()
	if ct.opts.Partition.MaxQubitsPerPart > 0 {
		pres, err := tqec.CompilePartitionedContext(ctx, ct.circuit, ct.opts)
		elapsed := time.Since(start)
		s.compileHist.Observe(elapsed)
		if err != nil {
			return nil, err
		}
		s.observeCompileEWMA(elapsed)
		for stage, hist := range s.stageHists {
			hist.Observe(pres.Breakdown.Get(stage))
		}
		return EncodePartitionedResult(ct.key, ct.circuit.Name, ct.opts.Partition.MaxQubitsPerPart, pres)
	}
	res, err := tqec.CompileContext(ctx, ct.circuit, ct.opts)
	elapsed := time.Since(start)
	s.compileHist.Observe(elapsed)
	if err != nil {
		return nil, err
	}
	s.observeCompileEWMA(elapsed)
	for stage, hist := range s.stageHists {
		hist.Observe(res.Breakdown.Get(stage))
	}
	return EncodeResult(ct.key, res)
}

// handleCompile serves POST /v1/compile: parse, content-address, coalesce
// through the cache, queue on miss, respond with the payload. Uncached
// requests pass the circuit breaker and admission gates first; cached ones
// bypass them, since serving a hit consumes no worker.
func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	ct, aerr := parseCompileRequest(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes), s.cfg.limits())
	if aerr != nil {
		s.writeError(w, aerr)
		return
	}
	gated := false
	if _, ok := s.cache.Get(ct.key); !ok {
		if ae := s.gate(ct.timeout); ae != nil {
			s.writeError(w, ae)
			return
		}
		gated = true
	}
	ran := false
	body, outcome, err := s.cache.Do(r.Context(), ct.key, func() ([]byte, error) {
		return s.pool.run(ct.timeout, func(ctx context.Context) ([]byte, error) {
			ran = true
			return s.compileWithRetry(ctx, ct)
		})
	})
	if gated && !ran {
		// The breaker admitted this request (possibly as the half-open
		// probe) but the compile never ran under it — a race turned it
		// into a hit/shared flight, or the queue rejected it. Release the
		// probe slot so the breaker cannot wedge.
		s.breaker.Abandon()
	}
	if err != nil {
		s.writeError(w, compileError(err))
		return
	}
	w.Header().Set("X-Tqecd-Cache", outcome.String())
	w.Header().Set("X-Tqecd-Cache-Key", ct.key)
	s.writeBody(w, http.StatusOK, body)
}

// handleJobSubmit serves POST /v1/jobs: journal the acceptance, register a
// job, enqueue its compile, respond 202 with the job ID (200 immediately on
// a cache hit). With a journal configured the 202 is a durability promise —
// the accepted event (request bytes included) is fsync'd before the
// response, so a crash after acknowledgement cannot lose the job.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.writeError(w, badRequest(fmt.Sprintf("invalid request body: %v", err)))
		return
	}
	ct, aerr := parseCompileRequest(bytes.NewReader(raw), s.cfg.limits())
	if aerr != nil {
		s.writeError(w, aerr)
		return
	}
	if body, ok := s.cache.Get(ct.key); ok {
		j := s.jobs.add(ct.key)
		if ae := s.journalAccepted(j, raw); ae != nil {
			s.writeError(w, ae)
			return
		}
		s.jobsSubmitted.Inc()
		j.finish(body, ccache.Hit, nil)
		s.journalFinish(j, body, ccache.Hit, nil)
		s.writeJSON(w, http.StatusOK, j.view())
		return
	}
	if ae := s.gate(ct.timeout); ae != nil {
		s.writeError(w, ae)
		return
	}
	j := s.jobs.add(ct.key)
	if ae := s.journalAccepted(j, raw); ae != nil {
		s.breaker.Abandon()
		s.writeError(w, ae)
		return
	}
	if ae := s.enqueueJob(j, ct); ae != nil {
		s.breaker.Abandon()
		s.writeError(w, ae)
		return
	}
	s.jobsSubmitted.Inc()
	s.writeJSON(w, http.StatusAccepted, j.view())
}

// enqueueJob queues the compile for an accepted async job. On queue
// rejection the job fails immediately (journaled, pollable). Shared by the
// submit handler and crash recovery.
func (s *Server) enqueueJob(j *job, ct *compileTask) *apiError {
	t := &task{timeout: ct.timeout, f: func(ctx context.Context) ([]byte, error) {
		j.setRunning()
		s.journalAppend(journal.Event{Kind: journal.KindRunning, JobID: j.id})
		body, outcome, err := s.cache.Do(ctx, ct.key, func() ([]byte, error) {
			return s.compileWithRetry(ctx, ct)
		})
		if err != nil {
			if s.hardStopped(err) {
				// The process is going down, not the job: leave it
				// un-acknowledged so recovery re-enqueues it instead of
				// recording a failure the job never earned.
				return nil, err
			}
			s.errorsTotal.Inc()
			ae := compileError(err)
			j.finish(nil, outcome, ae)
			s.journalFinish(j, nil, outcome, ae)
			return nil, err
		}
		j.finish(body, outcome, nil)
		s.journalFinish(j, body, outcome, nil)
		return body, nil
	}}
	if err := s.pool.enqueue(t); err != nil {
		ae := compileError(err)
		j.finish(nil, ccache.Miss, ae)
		s.journalFinish(j, nil, ccache.Miss, ae)
		return ae
	}
	return nil
}

// handleJobGet serves GET /v1/jobs/{id}.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		s.writeError(w, &apiError{Status: http.StatusNotFound,
			Body: ErrorBody{Message: fmt.Sprintf("unknown job %q", r.PathValue("id"))}})
		return
	}
	s.writeJSON(w, http.StatusOK, j.view())
}

// ServerStats are the request-level counters of MetricsSnapshot.
type ServerStats struct {
	// Requests counts every handled API request.
	Requests int64 `json:"requests"`
	// Compiles counts pipeline executions (equals cache misses).
	Compiles int64 `json:"compiles"`
	// Errors counts requests answered with an error body.
	Errors int64 `json:"errors"`
	// Rejected counts 429 overload responses.
	Rejected int64 `json:"rejected"`
	// WriteErrors counts response writes that failed mid-flight.
	WriteErrors int64 `json:"write_errors"`
}

// QueueStats are the worker-pool gauges of MetricsSnapshot.
type QueueStats struct {
	// Depth is the current queue occupancy.
	Depth int `json:"depth"`
	// Capacity is the queue bound.
	Capacity int `json:"capacity"`
	// Workers is the pool size.
	Workers int `json:"workers"`
	// Busy is the number of workers executing right now.
	Busy int64 `json:"busy"`
}

// JobsStats are the async-job counters of MetricsSnapshot.
type JobsStats struct {
	// Submitted counts accepted job submissions.
	Submitted int64 `json:"submitted"`
	// Queued is the number of registered jobs awaiting a worker.
	Queued int `json:"queued"`
	// Running is the number of jobs being compiled.
	Running int `json:"running"`
	// Done is the number of retained finished jobs.
	Done int `json:"done"`
	// Failed is the number of retained failed jobs.
	Failed int `json:"failed"`
	// Evicted counts finished jobs dropped by TTL or max-entries
	// eviction.
	Evicted int64 `json:"evicted"`
}

// ResilienceStats are the retry/breaker/admission counters of
// MetricsSnapshot.
type ResilienceStats struct {
	// Retries counts scheduled compile retries.
	Retries int64 `json:"retries"`
	// TransientFaults counts injected transient faults (chaos hook).
	TransientFaults int64 `json:"transient_faults"`
	// BreakerState is the circuit breaker's current mode.
	BreakerState string `json:"breaker_state"`
	// BreakerTrips counts closed-to-open transitions.
	BreakerTrips int64 `json:"breaker_trips"`
	// AdmissionRejected counts requests rejected on arrival by the
	// deadline-aware admission controller.
	AdmissionRejected int64 `json:"admission_rejected"`
	// CompileEWMANS is the admission controller's latency estimate.
	CompileEWMANS int64 `json:"compile_ewma_ns"`
}

// JournalStats are the durability counters of MetricsSnapshot, present only
// when a journal is configured.
type JournalStats struct {
	journal.Stats
	// AppendErrors counts journal appends that failed.
	AppendErrors int64 `json:"append_errors"`
	// RecoveredInterrupted counts jobs re-enqueued by crash recovery.
	RecoveredInterrupted int64 `json:"recovered_interrupted"`
	// RecoveredFinished counts terminal jobs restored by crash recovery.
	RecoveredFinished int64 `json:"recovered_finished"`
}

// MetricsSnapshot is the JSON body of GET /v1/metrics.
type MetricsSnapshot struct {
	// Server holds request-level counters.
	Server ServerStats `json:"server"`
	// Queue holds worker-pool gauges.
	Queue QueueStats `json:"queue"`
	// Jobs holds async-job counters.
	Jobs JobsStats `json:"jobs"`
	// Cache holds the result-cache counters.
	Cache ccache.Stats `json:"cache"`
	// Resilience holds retry, breaker and admission counters.
	Resilience ResilienceStats `json:"resilience"`
	// Journal holds durability counters when a journal is configured.
	Journal *JournalStats `json:"journal,omitempty"`
	// LatencyNS holds latency histograms keyed by metric name:
	// "queue_wait", "compile", and "stage:<pipeline stage>".
	LatencyNS map[string]metrics.HistogramSnapshot `json:"latency_ns"`
}

// snapshot assembles the current metrics.
func (s *Server) snapshot() MetricsSnapshot {
	depth, capacity := s.pool.depth()
	queued, running, done, failed := s.jobs.counts()
	snap := MetricsSnapshot{
		Server: ServerStats{
			Requests:    s.requests.Value(),
			Compiles:    s.compiles.Value(),
			Errors:      s.errorsTotal.Value(),
			Rejected:    s.rejected.Value(),
			WriteErrors: s.writeErrors.Value(),
		},
		Queue: QueueStats{
			Depth:    depth,
			Capacity: capacity,
			Workers:  s.cfg.Workers,
			Busy:     s.pool.busy.Value(),
		},
		Jobs: JobsStats{
			Submitted: s.jobsSubmitted.Value(),
			Queued:    queued,
			Running:   running,
			Done:      done,
			Failed:    failed,
			Evicted:   s.jobs.evictions(),
		},
		Cache: s.cache.Stats(),
		Resilience: ResilienceStats{
			Retries:           s.retries.Value(),
			TransientFaults:   s.transients.Value(),
			BreakerState:      s.breaker.State().String(),
			BreakerTrips:      s.breaker.Trips(),
			AdmissionRejected: s.admissionRej.Value(),
			CompileEWMANS:     s.compileEWMA.Load(),
		},
		LatencyNS: map[string]metrics.HistogramSnapshot{
			"queue_wait": s.pool.wait.Snapshot(),
			"compile":    s.compileHist.Snapshot(),
		},
	}
	if s.cfg.Journal != nil {
		snap.Journal = &JournalStats{
			Stats:                s.cfg.Journal.Stats(),
			AppendErrors:         s.journalErrs.Value(),
			RecoveredInterrupted: s.recInterrupt,
			RecoveredFinished:    s.recFinished,
		}
	}
	for stage, hist := range s.stageHists {
		snap.LatencyNS["stage:"+stage] = hist.Snapshot()
	}
	return snap
}

// handleMetrics serves GET /v1/metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.snapshot())
}

// HealthBody is the JSON body of GET /healthz.
type HealthBody struct {
	// Status is "ok" while serving and "draining" after Drain began.
	Status string `json:"status"`
	// Workers is the pool size.
	Workers int `json:"workers"`
	// QueueDepth is the current queue occupancy.
	QueueDepth int `json:"queue_depth"`
	// QueueCapacity is the queue bound.
	QueueCapacity int `json:"queue_capacity"`
}

// handleHealthz serves GET /healthz: 200 while serving, 503 once draining.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	depth, capacity := s.pool.depth()
	h := HealthBody{Status: "ok", Workers: s.cfg.Workers, QueueDepth: depth, QueueCapacity: capacity}
	code := http.StatusOK
	if s.draining.Load() {
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, h)
}

// writeError emits a structured error response, stamping 429s with the
// queue-depth headers the issue of backpressure calls for and backoff
// rejections with a Retry-After hint (whole seconds, rounded up). Every
// 429/503 carries the header, clamped to at least one second: RFC 9110
// clients treat Retry-After: 0 as "retry immediately", so a sub-second (or
// absent) estimate on a shed response would invite an instant hammer of
// the very queue or breaker that is shedding load.
func (s *Server) writeError(w http.ResponseWriter, ae *apiError) {
	s.errorsTotal.Inc()
	if ae.Status == http.StatusTooManyRequests {
		s.rejected.Inc()
		depth, capacity := s.pool.depth()
		w.Header().Set("X-Tqecd-Queue-Depth", strconv.Itoa(depth))
		w.Header().Set("X-Tqecd-Queue-Capacity", strconv.Itoa(capacity))
	}
	if ae.RetryAfter > 0 || ae.Status == http.StatusTooManyRequests || ae.Status == http.StatusServiceUnavailable {
		secs := int64((ae.RetryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	s.writeJSON(w, ae.Status, ErrorResponse{Error: ae.Body})
}

// writeJSON marshals v and writes it with the given status.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		// Marshaling our own response types cannot fail; if it somehow
		// does, serve a minimal 500 rather than a broken body.
		http.Error(w, `{"error":{"message":"response encoding failed"}}`, http.StatusInternalServerError)
		s.writeErrors.Inc()
		return
	}
	s.writeBody(w, code, b)
}

// writeBody writes a pre-encoded JSON payload. A failed write (client gone
// mid-response) is counted; there is no one left to report it to.
func (s *Server) writeBody(w http.ResponseWriter, code int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(code)
	if _, err := w.Write(body); err != nil {
		s.writeErrors.Inc()
	}
}
