// Command tqeclint runs the repo's static-analysis passes (internal/lint)
// over the given package patterns and reports findings as
//
//	file:line:col: [analyzer] message
//
// exiting 1 when anything is found and 2 on load errors. It is wired into
// `make lint` (and thus `make ci`); the self-check test in internal/lint
// keeps the CLI and CI in lockstep.
//
// Usage:
//
//	tqeclint [-json] [-github] [-list] [-C dir] [packages ...]
//
// With no patterns it analyzes ./... . -json emits the findings as a JSON
// array for tooling; -github emits GitHub Actions workflow commands
// (::error file=...,line=...,col=...::message) so findings surface as
// inline annotations on pull requests; -list prints the analyzer registry.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	github := flag.Bool("github", false, "emit findings as GitHub Actions ::error annotations")
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	dir := flag.String("C", ".", "directory to resolve package patterns from")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: tqeclint [-json] [-github] [-list] [-C dir] [packages ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	pkgs, err := lint.LoadPackages(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tqeclint:", err)
		os.Exit(2)
	}
	findings := lint.RunAnalyzers(pkgs, lint.Analyzers())

	switch {
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "tqeclint:", err)
			os.Exit(2)
		}
	case *github:
		for _, f := range relFindings(findings) {
			fmt.Println(githubAnnotation(f))
		}
	default:
		for _, f := range relFindings(findings) {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// relFindings rewrites absolute file paths relative to the working
// directory, which for -github must be the repository root so annotations
// attach to the right files in the diff view.
func relFindings(findings []lint.Finding) []lint.Finding {
	cwd, err := os.Getwd()
	if err != nil {
		return findings
	}
	out := make([]lint.Finding, len(findings))
	for i, f := range findings {
		if rel, err := filepath.Rel(cwd, f.File); err == nil {
			f.File = rel
		}
		out[i] = f
	}
	return out
}

// githubAnnotation renders one finding as a GitHub Actions workflow
// command. Message data must escape %, CR and LF; property values
// additionally escape ':' and ','.
func githubAnnotation(f lint.Finding) string {
	esc := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
	prop := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A", ":", "%3A", ",", "%2C")
	return fmt.Sprintf("::error file=%s,line=%d,col=%d,title=tqeclint %s::[%s] %s",
		prop.Replace(f.File), f.Line, f.Col, prop.Replace(f.Analyzer),
		esc.Replace(f.Analyzer), esc.Replace(f.Message))
}
