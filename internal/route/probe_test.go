package route

import (
	"os"
	"testing"
	"time"

	"repro/internal/qc"
)

// TestRouteProbe (enabled via ROUTE_PROBE=1) times routing alone on rd84.
func TestRouteProbe(t *testing.T) {
	if os.Getenv("ROUTE_PROBE") == "" {
		t.Skip("set ROUTE_PROBE=1")
	}
	spec, err := qc.BenchmarkByName("rd84_142")
	if err != nil {
		t.Fatal(err)
	}
	pl := placed(t, mustGen(t, spec), true, 0)
	start := time.Now()
	res, err := Run(pl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("routing %.1fs: %d/%d routed, first pass %d, %d rip-ups, %d iterations, failed %d",
		time.Since(start).Seconds(), len(res.Routes), len(pl.Nets),
		res.FirstPassRouted, res.RippedUp, res.Iterations, len(res.Failed))
}
