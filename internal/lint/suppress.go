package lint

import (
	"strings"
)

// ignorePrefix is the directive marker. The form is
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// with no space between "//" and "lint": the directive shape Go reserves
// for machine-read comments.
const ignorePrefix = "//lint:ignore"

// suppressionSet indexes the ignore directives of one package. A directive
// suppresses matching findings on its own line (trailing-comment form) and
// on the line directly below it (preceding-comment form).
type suppressionSet struct {
	// byFile maps filename -> line -> the analyzers ignored on that line.
	byFile map[string]map[int]map[string]bool
	// malformed collects directives missing an analyzer or a reason,
	// reported under the pseudo-analyzer "lint".
	malformed []Finding
}

func collectSuppressions(pkg *Package) *suppressionSet {
	s := &suppressionSet{byFile: map[string]map[int]map[string]bool{}}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(c.Text, ignorePrefix))
				if len(fields) < 2 {
					s.malformed = append(s.malformed, Finding{
						Analyzer: "lint",
						Message:  `malformed //lint:ignore directive: want "//lint:ignore <analyzer> <reason>"`,
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
					})
					continue
				}
				lines := s.byFile[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					s.byFile[pos.Filename] = lines
				}
				for _, name := range strings.Split(fields[0], ",") {
					for _, line := range []int{pos.Line, pos.Line + 1} {
						set := lines[line]
						if set == nil {
							set = map[string]bool{}
							lines[line] = set
						}
						set[name] = true
					}
				}
			}
		}
	}
	return s
}

// covers reports whether a directive suppresses the finding.
func (s *suppressionSet) covers(f Finding) bool {
	return s.byFile[f.File][f.Line][f.Analyzer]
}
