// Package bench produces and judges the repository's reproducible
// performance artifacts (the committed BENCH_*.json trajectory): it runs
// the paper circuit suite through the full compression pipeline N times,
// records per-stage wall time, allocation deltas and compression
// metrics, measures the placement and routing kernels with
// testing.Benchmark, and compares two artifacts with a relative
// regression threshold. The JSON schema is stable and versioned
// (SchemaVersion); readers reject files from other schema versions
// instead of misinterpreting them.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/qc"
	"repro/tqec"
)

// SchemaVersion identifies the BENCH_*.json layout. Bump it on any
// incompatible change; Validate rejects mismatched files.
const SchemaVersion = 1

// File is the root of a BENCH_*.json artifact.
type File struct {
	// Schema is the SchemaVersion the file was written with.
	Schema int `json:"schema"`
	// Name labels the artifact (e.g. "seed").
	Name string `json:"name"`
	// Seed drove every randomized pipeline stage.
	Seed int64 `json:"seed"`
	// Iterations is the number of pipeline runs behind each statistic.
	Iterations int `json:"iterations"`
	// CreatedAt is the RFC 3339 creation time (informational only;
	// Compare ignores it).
	CreatedAt string `json:"created_at"`
	// Go, GOOS, GOARCH, NumCPU and GOMAXPROCS describe the machine the
	// numbers were taken on; cross-machine comparisons are meaningless.
	Go         string `json:"go"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Circuits holds one entry per benchmark circuit, in suite order.
	Circuits []Circuit `json:"circuits"`
	// Kernels holds the isolated kernel measurements, in fixed order.
	Kernels []Kernel `json:"kernels,omitempty"`
	// Partitioned, when present, records the partitioned-compile stage:
	// a generated clustered circuit compiled whole and split under the
	// same options (see Options.PartitionCap).
	Partitioned *Partitioned `json:"partitioned,omitempty"`
}

// Stat summarizes one wall-time measurement over the iterations. Min is
// the comparison basis: it is the least noisy estimate of the true cost.
type Stat struct {
	MinNS  int64 `json:"min_ns"`
	MeanNS int64 `json:"mean_ns"`
	MaxNS  int64 `json:"max_ns"`
}

// newStat folds per-iteration durations into a Stat.
func newStat(ds []time.Duration) Stat {
	if len(ds) == 0 {
		return Stat{}
	}
	var s Stat
	var sum int64
	for i, d := range ds {
		ns := d.Nanoseconds()
		sum += ns
		if i == 0 || ns < s.MinNS {
			s.MinNS = ns
		}
		if ns > s.MaxNS {
			s.MaxNS = ns
		}
	}
	s.MeanNS = sum / int64(len(ds))
	return s
}

// StageTime is one pipeline stage's wall-time statistic.
type StageTime struct {
	Name string `json:"name"`
	Time Stat   `json:"time"`
}

// Circuit carries every measurement for one benchmark circuit.
type Circuit struct {
	Name string `json:"name"`
	// Total is the end-to-end compile wall time; Stages breaks it down
	// in pipeline order (metrics.Breakdown stage names).
	Total  Stat        `json:"total"`
	Stages []StageTime `json:"stages"`
	// AllocBytes and AllocObjects are the per-run runtime.MemStats
	// deltas (TotalAlloc / Mallocs), minimum over the iterations.
	AllocBytes   uint64 `json:"alloc_bytes"`
	AllocObjects uint64 `json:"alloc_objects"`
	// Volume, CompressionRatio and Dims record the compression result so
	// a perf win that regresses quality is visible in the same artifact.
	Volume           int     `json:"volume"`
	CompressionRatio float64 `json:"compression_ratio"`
	Dims             string  `json:"dims"`
}

// Kernel is one isolated testing.Benchmark measurement.
type Kernel struct {
	Name        string `json:"name"`
	NSPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
}

// Options configures a benchmark run.
type Options struct {
	// Name labels the artifact (File.Name).
	Name string
	// Suite lists the benchmark circuit names to run.
	Suite []string
	// Iterations is how many times each circuit compiles (min/mean/max
	// are taken across them). Values below 1 mean 1.
	Iterations int
	// Seed drives all randomized stages.
	Seed int64
	// Kernels additionally runs the isolated placement/routing kernel
	// benchmarks (slower: testing.Benchmark calibrates each for ~1s).
	Kernels bool
	// PartitionCap, when positive, additionally runs the
	// partitioned-compile stage: a generated clustered circuit of four
	// CNOT rings of PartitionCap qubits each is compiled whole and
	// through the partitioned pipeline with this per-part cap, and both
	// wall times land in File.Partitioned.
	PartitionCap int
	// Compile runs one full pipeline compilation and returns its result;
	// it exists so the harness can be stubbed in tests. Nil uses the real
	// tqec pipeline.
	Compile func(ctx context.Context, name string, seed int64) (*tqec.Result, error)
}

// Run executes the suite and returns the artifact.
func Run(opts Options) (*File, error) {
	//lint:ignore ctxflow sanctioned no-context entry point; RunContext is the threaded variant
	return RunContext(context.Background(), opts)
}

// RunContext is Run with cooperative cancellation between compilations.
func RunContext(ctx context.Context, opts Options) (*File, error) {
	if opts.Iterations < 1 {
		opts.Iterations = 1
	}
	compile := opts.Compile
	if compile == nil {
		compile = compilePipeline
	}
	f := &File{
		Schema:     SchemaVersion,
		Name:       opts.Name,
		Seed:       opts.Seed,
		Iterations: opts.Iterations,
		CreatedAt:  time.Now().UTC().Format(time.RFC3339),
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, name := range opts.Suite {
		c, err := runCircuit(ctx, name, opts, compile)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", name, err)
		}
		f.Circuits = append(f.Circuits, c)
	}
	if opts.Kernels {
		ks, err := runKernels(ctx, opts)
		if err != nil {
			return nil, fmt.Errorf("bench: kernels: %w", err)
		}
		f.Kernels = ks
	}
	if opts.PartitionCap > 0 {
		p, err := runPartitioned(ctx, opts)
		if err != nil {
			return nil, fmt.Errorf("bench: partitioned: %w", err)
		}
		f.Partitioned = p
	}
	return f, nil
}

// compilePipeline is the production Compile hook: one full tqec
// compilation of the named paper benchmark.
func compilePipeline(ctx context.Context, name string, seed int64) (*tqec.Result, error) {
	spec, err := qc.BenchmarkByName(name)
	if err != nil {
		return nil, err
	}
	c, err := spec.Generate()
	if err != nil {
		return nil, err
	}
	o := tqec.DefaultOptions()
	o.Place.Seed = seed
	return tqec.CompileContext(ctx, c, o)
}

// runCircuit compiles one benchmark Iterations times and folds the
// measurements.
func runCircuit(ctx context.Context, name string, opts Options, compile func(context.Context, string, int64) (*tqec.Result, error)) (Circuit, error) {
	c := Circuit{Name: name}
	totals := make([]time.Duration, 0, opts.Iterations)
	stageTimes := map[string][]time.Duration{}
	var stageOrder []string
	for it := 0; it < opts.Iterations; it++ {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		res, err := compile(ctx, name, opts.Seed)
		elapsed := time.Since(start)
		if err != nil {
			return c, err
		}
		runtime.ReadMemStats(&after)
		totals = append(totals, elapsed)
		allocB := after.TotalAlloc - before.TotalAlloc
		allocN := after.Mallocs - before.Mallocs
		if it == 0 || allocB < c.AllocBytes {
			c.AllocBytes = allocB
		}
		if it == 0 || allocN < c.AllocObjects {
			c.AllocObjects = allocN
		}
		if res.Breakdown != nil {
			for _, stage := range res.Breakdown.Stages() {
				if _, seen := stageTimes[stage]; !seen {
					stageOrder = append(stageOrder, stage)
				}
				stageTimes[stage] = append(stageTimes[stage], res.Breakdown.Get(stage))
			}
		}
		if res.Routing != nil {
			// Router-internal sub-stage attribution (route.RoutingStats,
			// measured by the clock the pipeline injects). The rows nest
			// under the "routing" stage and never exceed it.
			for _, sub := range []struct {
				name string
				d    time.Duration
			}{
				{"routing/search", res.Routing.Stats.Search},
				{"routing/commit", res.Routing.Stats.Commit},
				{"routing/ripup", res.Routing.Stats.RipUp},
			} {
				if _, seen := stageTimes[sub.name]; !seen {
					stageOrder = append(stageOrder, sub.name)
				}
				stageTimes[sub.name] = append(stageTimes[sub.name], sub.d)
			}
		}
		// The compression metrics are deterministic for a fixed seed;
		// the last iteration's values stand for all of them.
		c.Volume = res.Volume
		c.CompressionRatio = res.CompressionRatio()
		c.Dims = res.Dims.String()
	}
	c.Total = newStat(totals)
	for _, stage := range stageOrder {
		st := newStat(stageTimes[stage])
		if st.MinNS <= 0 {
			// A sub-stage that never ran (e.g. no rip-up rounds) would fail
			// Validate's positive-stat invariant; drop the row instead.
			continue
		}
		c.Stages = append(c.Stages, StageTime{Name: stage, Time: st})
	}
	return c, nil
}

// WriteFile marshals the artifact to path with stable indentation.
func WriteFile(path string, f *File) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshal: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	return nil
}

// ReadFile loads and validates an artifact.
func ReadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	if err := Validate(&f); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &f, nil
}

// Validate checks the invariants every well-formed artifact satisfies:
// the schema version matches, every circuit is named and carries
// consistent statistics, and stage breakdowns never exceed their total.
func Validate(f *File) error {
	if f.Schema != SchemaVersion {
		return fmt.Errorf("schema %d, want %d", f.Schema, SchemaVersion)
	}
	if f.Iterations < 1 {
		return fmt.Errorf("iterations %d < 1", f.Iterations)
	}
	if len(f.Circuits) == 0 {
		return fmt.Errorf("no circuits")
	}
	seen := map[string]bool{}
	for _, c := range f.Circuits {
		if c.Name == "" {
			return fmt.Errorf("unnamed circuit entry")
		}
		if seen[c.Name] {
			return fmt.Errorf("duplicate circuit %q", c.Name)
		}
		seen[c.Name] = true
		if err := validStat(c.Total); err != nil {
			return fmt.Errorf("circuit %q total: %w", c.Name, err)
		}
		for _, s := range c.Stages {
			if s.Name == "" {
				return fmt.Errorf("circuit %q: unnamed stage", c.Name)
			}
			if err := validStat(s.Time); err != nil {
				return fmt.Errorf("circuit %q stage %q: %w", c.Name, s.Name, err)
			}
		}
		if c.Volume <= 0 {
			return fmt.Errorf("circuit %q: volume %d", c.Name, c.Volume)
		}
	}
	for _, k := range f.Kernels {
		if k.Name == "" {
			return fmt.Errorf("unnamed kernel entry")
		}
		if k.NSPerOp <= 0 {
			return fmt.Errorf("kernel %q: ns/op %d", k.Name, k.NSPerOp)
		}
	}
	if p := f.Partitioned; p != nil {
		if p.Circuit == "" || p.Qubits <= 0 || p.Cap <= 0 || p.Parts <= 0 {
			return fmt.Errorf("partitioned section: circuit %q, %d qubits, cap %d, %d parts", p.Circuit, p.Qubits, p.Cap, p.Parts)
		}
		if err := validStat(p.Whole); err != nil {
			return fmt.Errorf("partitioned whole: %w", err)
		}
		if err := validStat(p.Split); err != nil {
			return fmt.Errorf("partitioned split: %w", err)
		}
		if p.WholeVolume <= 0 || p.SplitVolume <= 0 {
			return fmt.Errorf("partitioned volumes %d whole, %d split", p.WholeVolume, p.SplitVolume)
		}
	}
	return nil
}

func validStat(s Stat) error {
	if s.MinNS <= 0 || s.MeanNS < s.MinNS || s.MaxNS < s.MeanNS {
		return fmt.Errorf("inconsistent stat min=%d mean=%d max=%d", s.MinNS, s.MeanNS, s.MaxNS)
	}
	return nil
}

// Delta is one compared measurement.
type Delta struct {
	// Metric names the measurement ("circuit/total", "circuit/stage", or
	// "kernel/ns_per_op" style paths).
	Metric string
	// Old and New are the compared values (nanoseconds).
	Old, New int64
	// Ratio is New/Old.
	Ratio float64
	// Regression marks deltas beyond the comparison threshold.
	Regression bool
}

// Report is the outcome of comparing two artifacts.
type Report struct {
	// Threshold is the relative slowdown above which a delta is a
	// regression (0.10 = 10%).
	Threshold float64
	// Deltas lists every compared measurement, in artifact order.
	Deltas []Delta
	// Missing lists metrics present in the old artifact but absent from
	// the new one (coverage loss, reported but not a regression).
	Missing []string
}

// Regressions returns the deltas that exceeded the threshold.
func (r *Report) Regressions() []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if d.Regression {
			out = append(out, d)
		}
	}
	return out
}

// DefaultThreshold is the relative slowdown -compare flags by default.
const DefaultThreshold = 0.10

// Compare judges new against old: every circuit total, per-stage time
// and kernel cost present in both artifacts is compared by its minimum
// (the least noisy estimate), and any slowdown strictly beyond threshold
// is a regression. Metrics only one side has are reported as missing,
// never judged.
func Compare(old, cur *File, threshold float64) (*Report, error) {
	if err := Validate(old); err != nil {
		return nil, fmt.Errorf("bench: old artifact: %w", err)
	}
	if err := Validate(cur); err != nil {
		return nil, fmt.Errorf("bench: new artifact: %w", err)
	}
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	rep := &Report{Threshold: threshold}
	judge := func(metric string, oldNS, newNS int64) {
		if oldNS <= 0 || newNS <= 0 {
			return
		}
		ratio := float64(newNS) / float64(oldNS)
		rep.Deltas = append(rep.Deltas, Delta{
			Metric:     metric,
			Old:        oldNS,
			New:        newNS,
			Ratio:      ratio,
			Regression: ratio > 1+threshold,
		})
	}
	curCircuits := map[string]Circuit{}
	for _, c := range cur.Circuits {
		curCircuits[c.Name] = c
	}
	for _, oc := range old.Circuits {
		nc, ok := curCircuits[oc.Name]
		if !ok {
			rep.Missing = append(rep.Missing, "circuit "+oc.Name)
			continue
		}
		judge(oc.Name+"/total", oc.Total.MinNS, nc.Total.MinNS)
		newStages := map[string]Stat{}
		for _, s := range nc.Stages {
			newStages[s.Name] = s.Time
		}
		for _, s := range oc.Stages {
			ns, ok := newStages[s.Name]
			if !ok {
				rep.Missing = append(rep.Missing, "circuit "+oc.Name+" stage "+s.Name)
				continue
			}
			judge(oc.Name+"/"+s.Name, s.Time.MinNS, ns.MinNS)
		}
	}
	judgeKernels(rep, old, cur, judge)
	switch {
	case old.Partitioned != nil && cur.Partitioned != nil:
		judge("partitioned/whole", old.Partitioned.Whole.MinNS, cur.Partitioned.Whole.MinNS)
		judge("partitioned/split", old.Partitioned.Split.MinNS, cur.Partitioned.Split.MinNS)
	case old.Partitioned != nil:
		rep.Missing = append(rep.Missing, "partitioned section")
	}
	sort.Strings(rep.Missing)
	return rep, nil
}

// judgeKernels compares the kernel measurements shared by both artifacts
// and records old-only kernels as missing.
func judgeKernels(rep *Report, old, cur *File, judge func(metric string, oldNS, newNS int64)) {
	curKernels := map[string]Kernel{}
	for _, k := range cur.Kernels {
		curKernels[k.Name] = k
	}
	for _, ok_ := range old.Kernels {
		nk, ok := curKernels[ok_.Name]
		if !ok {
			rep.Missing = append(rep.Missing, "kernel "+ok_.Name)
			continue
		}
		judge("kernel/"+ok_.Name, ok_.NSPerOp, nk.NSPerOp)
	}
}

// CompareKernels judges only the isolated kernel measurements of new
// against old, ignoring circuit totals and stage timings entirely. The
// kernels are testing.Benchmark numbers — calibrated, allocation-stable
// and far less runner-sensitive than wall-clock stage timings — so they
// can carry a blocking CI floor while the stage comparison stays
// advisory. An old artifact with no kernel measurements is an error: the
// gate must never pass vacuously.
func CompareKernels(old, cur *File, threshold float64) (*Report, error) {
	if err := Validate(old); err != nil {
		return nil, fmt.Errorf("bench: old artifact: %w", err)
	}
	if err := Validate(cur); err != nil {
		return nil, fmt.Errorf("bench: new artifact: %w", err)
	}
	if len(old.Kernels) == 0 {
		return nil, fmt.Errorf("bench: old artifact %q has no kernel measurements to gate on", old.Name)
	}
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	rep := &Report{Threshold: threshold}
	judgeKernels(rep, old, cur, func(metric string, oldNS, newNS int64) {
		if oldNS <= 0 || newNS <= 0 {
			return
		}
		ratio := float64(newNS) / float64(oldNS)
		rep.Deltas = append(rep.Deltas, Delta{
			Metric:     metric,
			Old:        oldNS,
			New:        newNS,
			Ratio:      ratio,
			Regression: ratio > 1+threshold,
		})
	})
	sort.Strings(rep.Missing)
	return rep, nil
}
