// Command tqeclint runs the repo's static-analysis passes (internal/lint)
// over the given package patterns and reports findings as
//
//	file:line:col: [analyzer] message
//
// exiting 1 when anything is found and 2 on load errors. It is wired into
// `make lint` (and thus `make ci`); the self-check test in internal/lint
// keeps the CLI and CI in lockstep.
//
// Usage:
//
//	tqeclint [-json] [-list] [-C dir] [packages ...]
//
// With no patterns it analyzes ./... . -json emits the findings as a JSON
// array for tooling; -list prints the analyzer registry.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	dir := flag.String("C", ".", "directory to resolve package patterns from")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: tqeclint [-json] [-list] [-C dir] [packages ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	pkgs, err := lint.LoadPackages(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tqeclint:", err)
		os.Exit(2)
	}
	findings := lint.RunAnalyzers(pkgs, lint.Analyzers())

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "tqeclint:", err)
			os.Exit(2)
		}
	} else {
		cwd, err := os.Getwd()
		if err != nil {
			cwd = ""
		}
		for _, f := range findings {
			if cwd != "" {
				if rel, err := filepath.Rel(cwd, f.File); err == nil {
					f.File = rel
				}
			}
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
