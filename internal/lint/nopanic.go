package lint

import (
	"go/ast"
	"go/types"
)

// faultsPkg is the one library package allowed to reason about panics: the
// failure-taxonomy package whose recover guards convert residual panics
// into StageError values.
const faultsPkg = "repro/internal/faults"

// NoPanic enforces PR 1's panic-free contract: library code returns errors
// from the faults taxonomy instead of panicking or killing the process.
//
//   - panic(...) is banned everywhere outside internal/faults and _test.go
//     files.
//   - log.Fatal/Fatalf/Fatalln and os.Exit are banned in non-main packages;
//     a command's main package owns process exit, a library never does.
var NoPanic = &Analyzer{
	Name: "nopanic",
	Doc:  "no panic/log.Fatal/os.Exit in library code; failures flow through the faults error taxonomy",
	Run:  runNoPanic,
}

func runNoPanic(pass *Pass) {
	if pass.Pkg.Path == faultsPkg {
		return
	}
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, isBuiltin := pass.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "panic" {
					pass.Reportf(call.Pos(), "call to panic: return an error wrapping faults.ErrInvariant instead")
				}
				return true
			}
			if pass.Pkg.IsMain() {
				return true
			}
			switch name := pkgFunc(calleeFunc(pass.Pkg.Info, call)); name {
			case "log.Fatal", "log.Fatalf", "log.Fatalln":
				pass.Reportf(call.Pos(), "call to %s in library code: return the error to the caller", name)
			case "os.Exit":
				pass.Reportf(call.Pos(), "call to os.Exit in library code: only main packages may end the process")
			}
			return true
		})
	}
}
