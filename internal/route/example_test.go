package route_test

import (
	"context"
	"fmt"
	"time"

	"repro/internal/bridge"
	"repro/internal/canonical"
	"repro/internal/cluster"
	"repro/internal/decompose"
	"repro/internal/icm"
	"repro/internal/modular"
	"repro/internal/place"
	"repro/internal/qc"
	"repro/internal/route"
)

// ExampleRunContext routes the nets of a placed netlist under a
// deadline. The pipeline prefix — decompose, ICM conversion, canonical
// form, modular netlist, bridging, clustering, SA placement — produces
// the placement; RunContext then runs the negotiated A* router over it.
// Unless Options.Serial is set, nets whose search regions are disjoint
// are searched concurrently, with results committed in net order, so the
// outcome is identical to a serial run.
// examplePlacement runs the pipeline prefix — decompose, ICM conversion,
// canonical form, modular netlist, bridging, clustering, SA placement —
// shared by the routing examples.
func examplePlacement() *place.Placement {
	c := qc.New("chain", 3)
	c.Append(qc.CNOT(0, 1), qc.CNOT(1, 2))

	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	d, err := decompose.Decompose(c)
	must(err)
	ic, err := icm.FromDecomposed(d.Circuit)
	must(err)
	cf, err := canonical.Build(ic)
	must(err)
	nl, err := modular.Build(cf)
	must(err)
	br, err := bridge.Run(nl, true)
	must(err)
	cl, err := cluster.Build(nl, cluster.DefaultOptions())
	must(err)
	po := place.DefaultOptions()
	po.Seed = 7
	po.Iterations = 300
	pl, err := place.Run(cl, br.Nets, po)
	must(err)
	return pl
}

func ExampleRunContext() {
	pl := examplePlacement()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := route.RunContext(ctx, pl, route.DefaultOptions())
	if err != nil {
		panic(err)
	}

	fmt.Println("all nets routed:", len(res.Routes) == len(pl.Nets))
	fmt.Println("degraded:", res.Degraded)
	fmt.Println("legal:", route.Verify(pl, res) == nil)
	// Output:
	// all nets routed: true
	// degraded: false
	// legal: true
}

// ExampleOptions demonstrates the scheduler and kernel knobs: the batched
// first pass (the default; Serial disables it) co-schedules nets whose
// search regions are disjoint under a conflict-graph coloring, and
// Bidirectional picks the meet-in-the-middle A* kernel for
// single-start/single-target nets. Both are exactly equivalent to the
// serial unidirectional configuration in routed cells and diagnostics —
// only the wall-clock differs — so flipping them never changes a result.
func ExampleOptions() {
	pl := examplePlacement()

	fast := route.DefaultOptions() // batched + bidirectional
	slow := fast
	slow.Serial = true
	slow.Bidirectional = false

	a, err := route.Run(pl, fast)
	if err != nil {
		panic(err)
	}
	b, err := route.Run(pl, slow)
	if err != nil {
		panic(err)
	}

	same := len(a.Routes) == len(b.Routes)
	for id, p := range a.Routes {
		q := b.Routes[id]
		same = same && len(p) == len(q)
	}
	fmt.Println("batched+bidi matches serial+uni:", same)
	// Output:
	// batched+bidi matches serial+uni: true
}

// ExampleOptions_steiner routes friend-net groups as multi-terminal
// Steiner nets: every connected component of pin-sharing nets grows one
// tree by nearest-terminal merging instead of routing each two-pin net
// separately. The result carries the Steiner flag, and Verify switches to
// the group-connectivity terminal rule (each routed net's pin pair must
// be connected through the union of its group's paths).
func ExampleOptions_steiner() {
	pl := examplePlacement()

	opts := route.DefaultOptions()
	opts.Steiner = true // requires FriendNets (on by default)

	res, err := route.Run(pl, opts)
	if err != nil {
		panic(err)
	}

	fmt.Println("steiner mode:", res.Steiner)
	fmt.Println("all nets routed:", len(res.Routes) == len(pl.Nets))
	fmt.Println("legal:", route.Verify(pl, res) == nil)
	// Output:
	// steiner mode: true
	// all nets routed: true
	// legal: true
}
