package icm

import (
	"testing"
	"testing/quick"

	"repro/internal/decompose"
	"repro/internal/qc"
)

func TestRecycleDisjointLifetimes(t *testing.T) {
	// Line 1 dies (last CNOT slot 0) before line 2 is born (slot 1 is its
	// first), with line 0 alive across both: 2 wires suffice... but the
	// separation rule (one idle slot) forbids slot-adjacent reuse, so
	// lines 1 and 2 need separate wires here.
	c := &Circuit{Name: "r", TSL: map[int][]int{}}
	for i := 0; i < 3; i++ {
		c.newLine(InitZero, MeasZ, "", i)
	}
	c.addCNOT(0, 1) // slot 0: lines 0,1
	c.addCNOT(0, 2) // slot 1: lines 0,2
	wires, n := c.RecycleWires()
	if n != 3 {
		t.Fatalf("wires: %d want 3 (adjacent lifetimes may not share)", n)
	}
	if wires[1] == wires[2] {
		t.Fatal("slot-adjacent lines must not share a wire")
	}
}

func TestRecycleWithGap(t *testing.T) {
	// Line 1's lifetime is {0}, line 3's is {2}: the idle slot between
	// them allows sharing.
	c := &Circuit{Name: "g", TSL: map[int][]int{}}
	for i := 0; i < 4; i++ {
		c.newLine(InitZero, MeasZ, "", i)
	}
	c.addCNOT(0, 1) // slot 0
	c.addCNOT(0, 2) // slot 1
	c.addCNOT(0, 3) // slot 2
	wires, n := c.RecycleWires()
	if wires[1] != wires[3] {
		t.Fatalf("lines 1 and 3 should share a wire: %v", wires)
	}
	if n != 3 {
		t.Fatalf("wires: %d want 3", n)
	}
}

func TestRecycleIdleLinesShareParking(t *testing.T) {
	c := &Circuit{Name: "idle", TSL: map[int][]int{}}
	for i := 0; i < 4; i++ {
		c.newLine(InitZero, MeasZ, "", i)
	}
	c.addCNOT(0, 1)
	// Lines 2 and 3 are untouched.
	wires, _ := c.RecycleWires()
	if wires[2] != wires[3] {
		t.Fatal("idle lines should share a parking wire")
	}
	if wires[2] == wires[0] || wires[2] == wires[1] {
		t.Fatal("parking wire must not collide with active wires")
	}
}

func TestRecycleShrinksBenchmarks(t *testing.T) {
	// T-block ancillas have short lifetimes; recycling should cut the
	// wire count well below the line count on real workloads.
	spec, err := qc.BenchmarkByName("4gt10-v1_81")
	if err != nil {
		t.Fatal(err)
	}
	d, err := decompose.Decompose(mustGen(t, spec))
	if err != nil {
		t.Fatal(err)
	}
	ic, err := FromDecomposed(d.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	_, n := ic.RecycleWires()
	if n >= len(ic.Lines)/2 {
		t.Fatalf("recycling too weak: %d wires for %d lines", n, len(ic.Lines))
	}
	t.Logf("%s: %d lines → %d wires (%.0f%%)", spec.Name, len(ic.Lines), n,
		100*float64(n)/float64(len(ic.Lines)))
}

// Property: the assignment is a proper coloring — two lines sharing a wire
// never have overlapping (or slot-adjacent) lifetimes.
func TestQuickRecycleProper(t *testing.T) {
	f := func(q uint8, nt uint8, seed int64) bool {
		spec := qc.BenchmarkSpec{
			Name:     "fuzz",
			Qubits:   3 + int(q%8),
			Toffolis: 1 + int(nt%5),
			Seed:     seed,
		}
		d, err := decompose.Decompose(mustGen(t, spec))
		if err != nil {
			return false
		}
		ic, err := FromDecomposed(d.Circuit)
		if err != nil {
			return false
		}
		wires, n := ic.RecycleWires()
		slots, _ := ic.ScheduleASAP()
		first := make(map[int]int)
		last := make(map[int]int)
		for _, g := range ic.CNOTs {
			s := slots[g.ID]
			for _, ln := range []int{g.Control, g.Target} {
				if _, ok := first[ln]; !ok {
					first[ln] = s
				}
				last[ln] = s
			}
		}
		for a := range ic.Lines {
			if wires[a] < 0 || wires[a] >= n {
				return false
			}
			fa, ok := first[a]
			if !ok {
				continue
			}
			for b := a + 1; b < len(ic.Lines); b++ {
				fb, ok := first[b]
				if !ok || wires[a] != wires[b] {
					continue
				}
				// Require ≥1 idle slot between tenancies.
				if fa <= last[b]+1 && fb <= last[a]+1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
