// Package qc defines the front-end quantum/reversible circuit representation
// consumed by the TQEC compression flow: gate kinds, circuits over named
// qubit lines, a RevLib ".real" parser and a seeded benchmark generator that
// reconstructs the paper's RevLib workloads from their published statistics.
package qc

import (
	"fmt"
	"strings"
)

// GateKind enumerates the gate vocabulary understood by the front end.
// TQEC natively supports {CNOT, P, V, T}; everything else is decomposed by
// package decompose before entering the ICM conversion.
type GateKind int

// Supported gate kinds.
const (
	// Reversible-logic gates (RevLib vocabulary).
	GateNOT     GateKind = iota // X on one target
	GateCNOT                    // controlled NOT
	GateToffoli                 // doubly-controlled NOT (CCX)
	GateFredkin                 // controlled SWAP
	GateSwap                    // SWAP
	GateMCT                     // multi-controlled Toffoli with ≥3 controls

	// Single-qubit gates of the TQEC universal set and their relatives.
	GateH    // Hadamard
	GateP    // phase gate S = diag(1, i)
	GatePdag // S†
	GateV    // √X (up to global phase), the paper's V
	GateVdag // V†
	GateT    // π/8 gate diag(1, e^{iπ/4})
	GateTdag // T†
	GateZ    // Pauli Z
)

// String returns the RevLib-flavored mnemonic of the gate kind.
func (k GateKind) String() string {
	switch k {
	case GateNOT:
		return "not"
	case GateCNOT:
		return "cnot"
	case GateToffoli:
		return "toffoli"
	case GateFredkin:
		return "fredkin"
	case GateSwap:
		return "swap"
	case GateMCT:
		return "mct"
	case GateH:
		return "h"
	case GateP:
		return "p"
	case GatePdag:
		return "p+"
	case GateV:
		return "v"
	case GateVdag:
		return "v+"
	case GateT:
		return "t"
	case GateTdag:
		return "t+"
	case GateZ:
		return "z"
	}
	return fmt.Sprintf("GateKind(%d)", int(k))
}

// Gate is one gate instance: a kind plus its control and target qubits
// (indices into the circuit's qubit list).
type Gate struct {
	Kind     GateKind
	Controls []int
	Targets  []int
}

// NOT returns an X gate on target t.
func NOT(t int) Gate { return Gate{Kind: GateNOT, Targets: []int{t}} }

// CNOT returns a CNOT with control c and target t.
func CNOT(c, t int) Gate { return Gate{Kind: GateCNOT, Controls: []int{c}, Targets: []int{t}} }

// Toffoli returns a CCX with controls c1, c2 and target t.
func Toffoli(c1, c2, t int) Gate {
	return Gate{Kind: GateToffoli, Controls: []int{c1, c2}, Targets: []int{t}}
}

// Fredkin returns a controlled SWAP with control c swapping a and b.
func Fredkin(c, a, b int) Gate {
	return Gate{Kind: GateFredkin, Controls: []int{c}, Targets: []int{a, b}}
}

// Swap returns a SWAP of qubits a and b.
func Swap(a, b int) Gate { return Gate{Kind: GateSwap, Targets: []int{a, b}} }

// MCT returns a multi-controlled Toffoli.
func MCT(controls []int, t int) Gate {
	return Gate{Kind: GateMCT, Controls: append([]int(nil), controls...), Targets: []int{t}}
}

// H returns a Hadamard on target t.
func H(t int) Gate { return Gate{Kind: GateH, Targets: []int{t}} }

// Z returns a Pauli Z gate on target t.
func Z(t int) Gate { return Gate{Kind: GateZ, Targets: []int{t}} }

// P returns a phase (S) gate on target t.
func P(t int) Gate { return Gate{Kind: GateP, Targets: []int{t}} }

// V returns a V (√X) gate on target t.
func V(t int) Gate { return Gate{Kind: GateV, Targets: []int{t}} }

// T returns a T (π/8) gate on target t.
func T(t int) Gate { return Gate{Kind: GateT, Targets: []int{t}} }

// Tdag returns a T† gate on target t.
func Tdag(t int) Gate { return Gate{Kind: GateTdag, Targets: []int{t}} }

// Qubits returns all qubit indices the gate touches, controls first.
func (g Gate) Qubits() []int {
	out := make([]int, 0, len(g.Controls)+len(g.Targets))
	out = append(out, g.Controls...)
	out = append(out, g.Targets...)
	return out
}

// MaxQubit returns the largest qubit index used by the gate, or -1.
func (g Gate) MaxQubit() int {
	m := -1
	for _, q := range g.Qubits() {
		if q > m {
			m = q
		}
	}
	return m
}

// Validate checks structural sanity: correct operand counts, no duplicate
// operands, non-negative indices.
func (g Gate) Validate() error {
	wantC, wantT := -1, -1
	switch g.Kind {
	case GateNOT, GateH, GateP, GatePdag, GateT, GateTdag, GateZ:
		wantC, wantT = 0, 1
	case GateV, GateVdag:
		// RevLib writes controlled-V/V† (quantum realizations of Toffoli
		// networks); both the plain and singly-controlled forms are legal.
		if len(g.Controls) > 1 {
			return fmt.Errorf("%v gate: at most 1 control, got %d", g.Kind, len(g.Controls))
		}
		wantC, wantT = len(g.Controls), 1
	case GateCNOT:
		wantC, wantT = 1, 1
	case GateToffoli:
		wantC, wantT = 2, 1
	case GateFredkin:
		wantC, wantT = 1, 2
	case GateSwap:
		wantC, wantT = 0, 2
	case GateMCT:
		if len(g.Controls) < 3 {
			return fmt.Errorf("mct gate needs ≥3 controls, got %d", len(g.Controls))
		}
		wantC, wantT = len(g.Controls), 1
	default:
		return fmt.Errorf("unknown gate kind %v", g.Kind)
	}
	if len(g.Controls) != wantC {
		return fmt.Errorf("%v gate: want %d controls, got %d", g.Kind, wantC, len(g.Controls))
	}
	if len(g.Targets) != wantT {
		return fmt.Errorf("%v gate: want %d targets, got %d", g.Kind, wantT, len(g.Targets))
	}
	seen := map[int]bool{}
	for _, q := range g.Qubits() {
		if q < 0 {
			return fmt.Errorf("%v gate: negative qubit index %d", g.Kind, q)
		}
		if seen[q] {
			return fmt.Errorf("%v gate: duplicate qubit %d", g.Kind, q)
		}
		seen[q] = true
	}
	return nil
}

// String renders the gate RevLib-style, e.g. "t3 a b c" for a Toffoli.
func (g Gate) String() string {
	var b strings.Builder
	switch g.Kind {
	case GateNOT, GateCNOT, GateToffoli, GateMCT:
		fmt.Fprintf(&b, "t%d", len(g.Controls)+1)
	case GateFredkin, GateSwap:
		fmt.Fprintf(&b, "f%d", len(g.Controls)+2)
	default:
		b.WriteString(g.Kind.String())
	}
	for _, q := range g.Qubits() {
		fmt.Fprintf(&b, " q%d", q)
	}
	return b.String()
}

// Circuit is an ordered gate list over a set of named qubits.
type Circuit struct {
	Name   string
	Qubits []string
	Gates  []Gate
}

// New returns an empty circuit with n anonymous qubits q0..q(n-1).
func New(name string, n int) *Circuit {
	c := &Circuit{Name: name}
	for i := 0; i < n; i++ {
		c.Qubits = append(c.Qubits, fmt.Sprintf("q%d", i))
	}
	return c
}

// NumQubits returns the number of declared qubits.
func (c *Circuit) NumQubits() int { return len(c.Qubits) }

// NumGates returns the number of gates.
func (c *Circuit) NumGates() int { return len(c.Gates) }

// Append adds gates to the circuit.
func (c *Circuit) Append(gates ...Gate) { c.Gates = append(c.Gates, gates...) }

// Validate checks every gate and that all indices are within range.
func (c *Circuit) Validate() error {
	for i, g := range c.Gates {
		if err := g.Validate(); err != nil {
			return fmt.Errorf("gate %d: %w", i, err)
		}
		if g.MaxQubit() >= len(c.Qubits) {
			return fmt.Errorf("gate %d (%v): qubit %d out of range (circuit has %d)",
				i, g, g.MaxQubit(), len(c.Qubits))
		}
	}
	return nil
}

// CountKind returns how many gates of kind k the circuit contains.
func (c *Circuit) CountKind(k GateKind) int {
	n := 0
	for _, g := range c.Gates {
		if g.Kind == k {
			n++
		}
	}
	return n
}

// Depth returns the circuit depth under the usual parallel model: gates
// touching disjoint qubit sets may share a layer; gates sharing a qubit
// serialize in program order.
func (c *Circuit) Depth() int {
	ready := make([]int, len(c.Qubits))
	depth := 0
	for _, g := range c.Gates {
		layer := 0
		for _, q := range g.Qubits() {
			if ready[q] > layer {
				layer = ready[q]
			}
		}
		for _, q := range g.Qubits() {
			ready[q] = layer + 1
		}
		if layer+1 > depth {
			depth = layer + 1
		}
	}
	return depth
}

// Histogram returns the gate count per kind.
func (c *Circuit) Histogram() map[GateKind]int {
	h := map[GateKind]int{}
	for _, g := range c.Gates {
		h[g.Kind]++
	}
	return h
}

// TCount returns the number of T/T† gates — the standard cost metric for
// fault-tolerant circuits (each consumes one distilled |A⟩).
func (c *Circuit) TCount() int {
	return c.CountKind(GateT) + c.CountKind(GateTdag)
}

// Clone returns a deep copy of the circuit.
func (c *Circuit) Clone() *Circuit {
	out := &Circuit{
		Name:   c.Name,
		Qubits: append([]string(nil), c.Qubits...),
		Gates:  make([]Gate, len(c.Gates)),
	}
	for i, g := range c.Gates {
		out.Gates[i] = Gate{
			Kind:     g.Kind,
			Controls: append([]int(nil), g.Controls...),
			Targets:  append([]int(nil), g.Targets...),
		}
	}
	return out
}
