package harness

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/qc"
	"repro/tqec"
)

// smallCircuit is the Fig. 4 motivating example: three CNOTs, enough to
// exercise every pipeline stage in milliseconds.
func smallCircuit() *qc.Circuit {
	c := qc.New("fault-probe", 3)
	c.Append(qc.CNOT(0, 1), qc.CNOT(1, 2), qc.CNOT(0, 2))
	return c
}

func raise(msg string) { panic(msg) }

// An injected panic at any stage boundary must surface as a StageError
// wrapping ErrPanic with the stage tag and a captured stack, never crash
// the process, and leave the result nil.
func TestInjectedPanicBecomesStageError(t *testing.T) {
	for _, stage := range []tqec.Stage{
		tqec.StagePreprocess, tqec.StageBridging, tqec.StagePlacement, tqec.StageRouting,
	} {
		t.Run(string(stage), func(t *testing.T) {
			plan := &FaultPlan{PanicStage: stage, Raise: raise}
			opts := tqec.FastOptions()
			ctx := plan.Install(context.Background(), &opts)
			res, err := tqec.CompileContext(ctx, smallCircuit(), opts)
			if res != nil {
				t.Fatalf("result should be nil, got %v", res)
			}
			se, ok := tqec.AsStageError(err)
			if !ok {
				t.Fatalf("want StageError, got %v", err)
			}
			if se.Stage != stage {
				t.Fatalf("stage = %s, want %s", se.Stage, stage)
			}
			if !errors.Is(err, tqec.ErrPanic) {
				t.Fatalf("want ErrPanic in chain, got %v", err)
			}
			if len(se.Stack) == 0 || !strings.Contains(string(se.Stack), "goroutine") {
				t.Fatalf("want captured stack, got %q", se.Stack)
			}
		})
	}
}

// A forced error before a stage must come back tagged with that stage and
// preserve the injected error for errors.Is.
func TestInjectedErrorIsStageTagged(t *testing.T) {
	sentinel := errors.New("backend offline")
	plan := &FaultPlan{ErrorStage: tqec.StagePlacement, ErrorValue: sentinel}
	opts := tqec.FastOptions()
	ctx := plan.Install(context.Background(), &opts)
	res, err := tqec.CompileContext(ctx, smallCircuit(), opts)
	if res != nil {
		t.Fatal("result should be nil")
	}
	se, ok := tqec.AsStageError(err)
	if !ok || se.Stage != tqec.StagePlacement {
		t.Fatalf("want placement StageError, got %v", err)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("injected error lost from chain: %v", err)
	}
}

// Cancellation injected at a stage boundary must abort that stage with
// ErrCanceled and a nil result.
func TestInjectedCancellationAbortsStage(t *testing.T) {
	for _, stage := range []tqec.Stage{
		tqec.StageBridging, tqec.StagePlacement, tqec.StageRouting,
	} {
		t.Run(string(stage), func(t *testing.T) {
			plan := &FaultPlan{CancelStage: stage}
			opts := tqec.FastOptions()
			ctx := plan.Install(context.Background(), &opts)
			res, err := tqec.CompileContext(ctx, smallCircuit(), opts)
			if res != nil {
				t.Fatal("result should be nil")
			}
			if !errors.Is(err, tqec.ErrCanceled) {
				t.Fatalf("want ErrCanceled, got %v", err)
			}
			se, ok := tqec.AsStageError(err)
			if !ok || se.Stage != stage {
				t.Fatalf("want stage %s, got %v", stage, err)
			}
		})
	}
}

// Forced per-net routing failures must be rescued by the whole-world
// fallback: compilation succeeds but the result is flagged Degraded with
// per-net diagnostics, the breakdown counts the fallbacks, and Verify
// refuses to bless the result.
func TestForcedNetFailuresDegradeGracefully(t *testing.T) {
	plan := &FaultPlan{FailNets: []int{0, 1, 2, 3, 4, 5, 6, 7}}
	opts := tqec.FastOptions()
	ctx := plan.Install(context.Background(), &opts)
	res, err := tqec.CompileContext(ctx, smallCircuit(), opts)
	if err != nil {
		t.Fatalf("degraded compile should succeed, got %v", err)
	}
	if !res.Degraded {
		t.Fatal("result should be flagged Degraded")
	}
	if len(res.Routing.FallbackNets) == 0 {
		t.Fatal("want fallback-routed nets")
	}
	if len(res.Routing.FailedNets) == 0 {
		t.Fatal("want per-net diagnostics in FailedNets")
	}
	for _, f := range res.Routing.FailedNets {
		if f.Reason == "" {
			t.Fatalf("net %d: empty diagnostic reason", f.NetID)
		}
	}
	if got := res.Breakdown.Counter(metrics.CounterFallbackNets); got == 0 {
		t.Fatal("breakdown should count fallback nets")
	}
	if got := res.Breakdown.Counter(metrics.CounterDegradations); got != 1 {
		t.Fatalf("degradations counter = %d, want 1", got)
	}
	if verr := res.Verify(); !errors.Is(verr, tqec.ErrDegraded) {
		t.Fatalf("Verify must fail with ErrDegraded on degraded routing, got %v", verr)
	}
}

// Two composed FaultPlans must fail the union of their nets: Install used
// to clobber a pre-existing Route.FailNet hook, silently dropping the
// earlier plan's set, where BeforeStage already chained correctly.
func TestComposedFaultPlansFailNetUnion(t *testing.T) {
	first := &FaultPlan{FailNets: []int{0, 1}}
	second := &FaultPlan{FailNets: []int{2, 3}}
	opts := tqec.FastOptions()
	ctx := first.Install(context.Background(), &opts)
	ctx = second.Install(ctx, &opts)

	for id := 0; id < 4; id++ {
		if !opts.Route.FailNet(id) {
			t.Fatalf("net %d escaped the composed plans", id)
		}
	}
	if opts.Route.FailNet(4) {
		t.Fatal("net 4 failed by neither plan")
	}

	// The composed hook drives a real compile the same way one plan does:
	// every injected net degrades to fallback routing, none hard-fails.
	res, err := tqec.CompileContext(ctx, smallCircuit(), opts)
	if err != nil {
		t.Fatalf("composed degraded compile should succeed, got %v", err)
	}
	if !res.Degraded {
		t.Fatal("result should be flagged Degraded")
	}
	failed := map[int]bool{}
	for _, f := range res.Routing.FailedNets {
		failed[f.NetID] = true
	}
	for id := 0; id < 4; id++ {
		if !failed[id] {
			t.Fatalf("net %d missing from FailedNets: the second plan clobbered the first", id)
		}
	}
}

// A PanicStage without an installed Raise degrades to a forced error (the
// non-test build contains no panic site).
func TestPanicStageWithoutRaiserIsError(t *testing.T) {
	plan := &FaultPlan{PanicStage: tqec.StageBridging}
	opts := tqec.FastOptions()
	ctx := plan.Install(context.Background(), &opts)
	_, err := tqec.CompileContext(ctx, smallCircuit(), opts)
	se, ok := tqec.AsStageError(err)
	if !ok || se.Stage != tqec.StageBridging {
		t.Fatalf("want bridging StageError, got %v", err)
	}
	if errors.Is(err, tqec.ErrPanic) {
		t.Fatalf("no panic should have been raised: %v", err)
	}
}

// Config.Timeout must bound a harness run: an already-expired deadline
// aborts compilation with ErrCanceled instead of wedging.
func TestConfigTimeoutAborts(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Benchmarks = cfg.Benchmarks[:1]
	cfg.Ablations = false
	cfg.Timeout = time.Nanosecond
	_, err := Run(cfg)
	if !errors.Is(err, tqec.ErrCanceled) {
		t.Fatalf("want ErrCanceled from expired timeout, got %v", err)
	}
}
