package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"io"
	"sort"
	"strings"
)

// FuncID is the stable, serializable identity of a function across the
// module: "pkgpath.Name" for package functions, "(pkgpath.Recv).Name" for
// methods (pointer receivers included under the same ID as their value
// form, since facts describe behaviour, not call shape). It is the key of
// the fact store and of call-graph nodes, so cached facts from a previous
// run can be joined against a fresh load.
type FuncID string

// funcID canonicalizes fn. It returns "" for nil, builtins and functions
// without a package (error.Error and friends).
func funcID(fn *types.Func) FuncID {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		path, name, ok := namedType(recv.Type())
		if !ok {
			// Interface receivers canonicalize through the interface's
			// own named type when there is one; anonymous shapes get no
			// identity and stay out of the fact store.
			return ""
		}
		return FuncID(fmt.Sprintf("(%s.%s).%s", path, name, fn.Name()))
	}
	return FuncID(fn.Pkg().Path() + "." + fn.Name())
}

// CallGraph is a CHA-style (class-hierarchy analysis) call graph over the
// loaded packages: static calls resolve to their single callee, and calls
// through an interface method resolve to that method on every loaded
// concrete type whose method set satisfies the interface. Calls through
// plain function values have no callee nodes; callers carry a Dynamic
// marker instead so downstream analyses know the edge set is incomplete
// there.
type CallGraph struct {
	// Nodes maps every function with a body in the loaded set.
	Nodes map[FuncID]*CallNode
	// methodIndex maps a method name to the loaded concrete methods
	// bearing it, the candidate set CHA filters with types.Implements.
	methodIndex map[string][]*types.Func
}

// CallNode is one function in the graph.
type CallNode struct {
	ID   FuncID
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	// Callees are the resolved outgoing edges, sorted and deduplicated.
	Callees []FuncID
	// Dynamic reports that the body also calls through function values,
	// so Callees underapproximates the true out-edges.
	Dynamic bool
}

// BuildCallGraph indexes every function declaration in pkgs and resolves
// the call edges, expanding interface-method calls by CHA.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		Nodes:       map[FuncID]*CallNode{},
		methodIndex: map[string][]*types.Func{},
	}
	// Pass 1: nodes and the concrete-method index.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				id := funcID(fn)
				if id == "" {
					continue
				}
				g.Nodes[id] = &CallNode{ID: id, Fn: fn, Decl: fd, Pkg: pkg}
				if sig := fn.Type().(*types.Signature); sig.Recv() != nil {
					if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); !isIface {
						g.methodIndex[fn.Name()] = append(g.methodIndex[fn.Name()], fn)
					}
				}
			}
		}
	}
	// Pass 2: edges.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				node := g.Nodes[funcID(fn)]
				if node == nil {
					continue
				}
				seen := map[FuncID]bool{}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					callees, dynamic := g.resolve(pkg.Info, call)
					if dynamic {
						node.Dynamic = true
					}
					for _, c := range callees {
						if id := funcID(c); id != "" && !seen[id] {
							seen[id] = true
							node.Callees = append(node.Callees, id)
						}
					}
					return true
				})
				sort.Slice(node.Callees, func(i, j int) bool { return node.Callees[i] < node.Callees[j] })
			}
		}
	}
	return g
}

// resolve returns the possible callees of call. Static calls yield one
// function; interface-method calls yield every CHA implementation;
// builtin calls and type conversions yield none; calls through function
// values yield none and set dynamic.
func (g *CallGraph) resolve(info *types.Info, call *ast.CallExpr) ([]*types.Func, bool) {
	if fn := calleeFunc(info, call); fn != nil {
		sig, ok := fn.Type().(*types.Signature)
		if ok && sig.Recv() != nil {
			if iface, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
				return g.implementations(iface, fn.Name()), false
			}
		}
		return []*types.Func{fn}, false
	}
	// Distinguish conversions and builtins from true dynamic calls.
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch info.Uses[fun].(type) {
		case *types.Builtin, *types.TypeName, nil:
			return nil, false
		}
	case *ast.SelectorExpr:
		if _, isType := info.Uses[fun.Sel].(*types.TypeName); isType {
			return nil, false
		}
	case *ast.ArrayType, *ast.MapType, *ast.ChanType, *ast.FuncType, *ast.StarExpr, *ast.InterfaceType:
		return nil, false
	case *ast.FuncLit:
		// An immediately-invoked literal runs inline; its body is walked
		// as part of the enclosing function, so no edge is needed.
		return nil, false
	}
	return nil, true
}

// implementations returns method `name` on every loaded concrete type
// whose method set satisfies iface.
func (g *CallGraph) implementations(iface *types.Interface, name string) []*types.Func {
	var out []*types.Func
	for _, m := range g.methodIndex[name] {
		recv := m.Type().(*types.Signature).Recv().Type()
		if types.Implements(recv, iface) || types.Implements(types.NewPointer(recv), iface) {
			out = append(out, m)
		}
	}
	return out
}

// CalleeIDs resolves one call expression to fact-store keys, CHA-expanded.
func (g *CallGraph) CalleeIDs(info *types.Info, call *ast.CallExpr) []FuncID {
	fns, _ := g.resolve(info, call)
	var out []FuncID
	for _, fn := range fns {
		if id := funcID(fn); id != "" {
			out = append(out, id)
		}
	}
	return out
}

// Dump writes the graph as sorted "caller -> callee" lines, one edge per
// line, with dynamic callers marked. The tqeclint -graph flag serves it as
// a debugging view of what the interprocedural analyses can and cannot
// see.
func (g *CallGraph) Dump(w io.Writer) error {
	ids := make([]string, 0, len(g.Nodes))
	for id := range g.Nodes {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	for _, id := range ids {
		node := g.Nodes[FuncID(id)]
		marker := ""
		if node.Dynamic {
			marker = " [+dynamic]"
		}
		if len(node.Callees) == 0 {
			if _, err := fmt.Fprintf(w, "%s -> (leaf)%s\n", id, marker); err != nil {
				return err
			}
			continue
		}
		var b strings.Builder
		for i, c := range node.Callees {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(string(c))
		}
		if _, err := fmt.Fprintf(w, "%s -> %s%s\n", id, b.String(), marker); err != nil {
			return err
		}
	}
	return nil
}
