package lint

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// engineVersion invalidates every cache entry when the analysis engine
// itself changes meaning: bump it whenever an analyzer's rules, the fact
// schema, or the taint model move.
const engineVersion = "tqeclint-facts-v1"

// cacheEntry is one package's persisted analysis: its content key, the
// function summaries other packages consume, and the findings to replay
// when the package is warm. File paths inside are module-root-relative so
// a cache restored in a different checkout location still joins.
type cacheEntry struct {
	Engine     string                `json:"engine"`
	ImportPath string                `json:"import_path"`
	Key        string                `json:"key"`
	Facts      map[FuncID]*FuncFacts `json:"facts,omitempty"`
	Findings   []Finding             `json:"findings,omitempty"`
}

// cacheFileName flattens an import path into one file name.
func cacheFileName(importPath string) string {
	return strings.NewReplacer("/", "__", ".", "_").Replace(importPath) + ".json"
}

// contentKeys computes the cache key of every listed package: a hash of
// the engine version, the analyzer set, the package's source bytes, and
// the keys of its in-listing dependencies — so editing one package
// invalidates exactly its importers' chain. An unreadable file yields an
// empty key, which never matches and forces a re-analysis.
func contentKeys(listed []listedPackage, analyzers []*Analyzer) map[string]string {
	byPath := map[string]*listedPackage{}
	for i := range listed {
		byPath[listed[i].ImportPath] = &listed[i]
	}
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	keys := map[string]string{}
	var visit func(path string) string
	visit = func(path string) string {
		if k, ok := keys[path]; ok {
			return k
		}
		keys[path] = "" // cycle guard; go packages cannot cycle anyway
		lp := byPath[path]
		var b bytes.Buffer
		fmt.Fprintln(&b, engineVersion)
		fmt.Fprintln(&b, strings.Join(names, ","))
		files := append([]string(nil), lp.GoFiles...)
		sort.Strings(files)
		for _, name := range files {
			data, err := os.ReadFile(filepath.Join(lp.Dir, name))
			if err != nil {
				return ""
			}
			fmt.Fprintf(&b, "%s %d\n", name, len(data))
			b.Write(data)
		}
		imps := append([]string(nil), lp.Imports...)
		sort.Strings(imps)
		for _, imp := range imps {
			if _, inSet := byPath[imp]; inSet {
				dep := visit(imp)
				if dep == "" {
					return ""
				}
				fmt.Fprintf(&b, "dep %s %s\n", imp, dep)
			}
		}
		sum := sha256.Sum256(b.Bytes())
		key := hex.EncodeToString(sum[:])
		keys[path] = key
		return key
	}
	for _, lp := range listed {
		visit(lp.ImportPath)
	}
	return keys
}

// readEntry loads one cache entry, nil on any miss or decode error (a
// corrupt entry is just a cold package).
func readEntry(factsDir, importPath string) *cacheEntry {
	data, err := os.ReadFile(filepath.Join(factsDir, cacheFileName(importPath)))
	if err != nil {
		return nil
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil || e.Engine != engineVersion {
		return nil
	}
	return &e
}

// writeEntry persists one entry; errors are returned so the CLI can warn
// without failing the run (a read-only cache dir degrades to cold runs).
func writeEntry(factsDir string, e *cacheEntry) error {
	if err := os.MkdirAll(factsDir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(factsDir, cacheFileName(e.ImportPath)+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(factsDir, cacheFileName(e.ImportPath)))
}

// relativize maps an absolute file path under root to a slash-separated
// relative one; paths outside root pass through unchanged.
func relativize(root, file string) string {
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return file
}

// absolutize undoes relativize.
func absolutize(root, file string) string {
	if filepath.IsAbs(file) {
		return file
	}
	return filepath.Join(root, filepath.FromSlash(file))
}

// relFacts / absFacts rewrite the position-bearing parts of a package's
// summaries (lock pair sites) between absolute and cache-relative form.
func relFacts(root string, facts map[FuncID]*FuncFacts) map[FuncID]*FuncFacts {
	return mapFacts(facts, func(file string) string { return relativize(root, file) })
}

func absFacts(root string, facts map[FuncID]*FuncFacts) map[FuncID]*FuncFacts {
	return mapFacts(facts, func(file string) string { return absolutize(root, file) })
}

func mapFacts(facts map[FuncID]*FuncFacts, f func(string) string) map[FuncID]*FuncFacts {
	out := make(map[FuncID]*FuncFacts, len(facts))
	for id, ff := range facts {
		cp := *ff
		if len(ff.LockPairs) > 0 {
			cp.LockPairs = make([]LockPair, len(ff.LockPairs))
			for i, p := range ff.LockPairs {
				p.File = f(p.File)
				cp.LockPairs[i] = p
			}
		}
		out[id] = &cp
	}
	return out
}

// RunIncremental is the facts-cache-aware driver behind `make lint`. It
// keys every package by content hash (source bytes plus in-module dep
// keys); packages whose entry in factsDir still matches are not even
// parsed — their findings replay and their summaries feed the analysis of
// the stale rest. When everything is warm the run does no typechecking at
// all, which is what makes a no-change `make lint` fast.
func RunIncremental(dir, factsDir string, patterns []string, analyzers []*Analyzer) ([]Finding, *RunStats, error) {
	start := time.Now()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, nil, err
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	stats := &RunStats{Packages: len(listed)}
	keys := contentKeys(listed, analyzers)

	warm := map[string]*cacheEntry{}
	for _, lp := range listed {
		if e := readEntry(factsDir, lp.ImportPath); e != nil && e.Key != "" && e.Key == keys[lp.ImportPath] {
			warm[lp.ImportPath] = e
		}
	}
	stats.CachedPackages = len(warm)

	// Fully warm: replay without loading a single file.
	if len(warm) == len(listed) {
		var all []Finding
		for _, lp := range listed {
			for _, f := range warm[lp.ImportPath].Findings {
				f.File = absolutize(root, f.File)
				all = append(all, f)
			}
		}
		for _, a := range analyzers {
			stats.Analyzers = append(stats.Analyzers, AnalyzerStat{Name: a.Name})
		}
		sortFindings(all)
		stats.TotalDuration = time.Since(start)
		return all, stats, nil
	}

	// Partially warm: load everything (stale packages need their deps'
	// type information), but re-analyze only the stale packages, with the
	// warm packages represented by their cached facts and findings.
	pkgs, err := LoadPackages(dir, patterns...)
	if err != nil {
		return nil, nil, err
	}
	graph := BuildCallGraph(pkgs)
	store := NewFactStore()
	var stale []*Package
	var all []Finding
	for _, pkg := range pkgs {
		if e, ok := warm[pkg.Path]; ok {
			store.Merge(absFacts(root, e.Facts))
			for _, f := range e.Findings {
				f.File = absolutize(root, f.File)
				all = append(all, f)
			}
			continue
		}
		stale = append(stale, pkg)
	}
	factsStart := time.Now()
	ComputeFacts(store, graph, stale)
	stats.FactsDuration = time.Since(factsStart)
	all = append(all, analyzePackages(stale, analyzers, store, graph, stats)...)
	sortFindings(all)

	// Persist the stale packages' fresh entries. Findings are stored
	// per-package by file ownership.
	byFile := map[string]string{} // abs file -> import path
	for _, pkg := range stale {
		for _, f := range pkg.Files {
			byFile[pkg.Fset.Position(f.Package).Filename] = pkg.Path
		}
	}
	perPkg := map[string][]Finding{}
	for _, f := range all {
		if path, ok := byFile[f.File]; ok {
			rf := f
			rf.File = relativize(root, rf.File)
			perPkg[path] = append(perPkg[path], rf)
		}
	}
	for _, pkg := range stale {
		e := &cacheEntry{
			Engine:     engineVersion,
			ImportPath: pkg.Path,
			Key:        keys[pkg.Path],
			Facts:      relFacts(root, store.PackageFacts(pkg)),
			Findings:   perPkg[pkg.Path],
		}
		if e.Key == "" {
			continue
		}
		if err := writeEntry(factsDir, e); err != nil {
			return all, stats, fmt.Errorf("lint: writing facts cache: %w", err)
		}
	}
	stats.TotalDuration = time.Since(start)
	return all, stats, nil
}
