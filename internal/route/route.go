// Package route implements the paper's dual-defect net routing (Section
// III-D): iterative A* maze routing inside bounded search regions, a
// negotiation-based rip-up-and-reroute scheme with a history map
// (PathFinder-style), an R-tree obstacle index for module bodies and
// distillation boxes, and friend-net-aware targets — a net sharing a pin
// with an already routed net may terminate anywhere on the routed friend's
// path instead of at the pin, a topological deformation that preserves the
// braiding relationship (Fig. 19).
package route

import (
	"container/heap"
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/bridge"
	"repro/internal/faults"
	"repro/internal/geom"
	"repro/internal/place"
	"repro/internal/rtree"
)

// cancelCheckExpansions bounds how many A* expansions may elapse between
// context checks inside one search.
const cancelCheckExpansions = 2048

// Options configures the router.
type Options struct {
	// MaxIterations bounds the rip-up-and-reroute rounds after the first
	// pass.
	MaxIterations int
	// InitialMargin expands each net's initial search region (the
	// bounding box of its two pins) on every side.
	InitialMargin int
	// ExpandStep widens a failed net's region each retry.
	ExpandStep int
	// HistoryWeight scales the congestion history cost.
	HistoryWeight float64
	// FriendNets toggles friend-net-aware targets (disable for the
	// ablation: without bridging there are no shared pins anyway).
	FriendNets bool
	// MaxExpansions caps A* node expansions per attempt (safety valve).
	MaxExpansions int
	// Fallback enables graceful degradation: nets abandoned by the
	// negotiation rounds are rescued by a last-resort route over the
	// whole expanded world (larger volume, but connected). Rescued nets
	// set Result.Degraded and are listed in Result.FallbackNets.
	Fallback bool
	// FailNet, when non-nil, forces the listed nets to fail their normal
	// routing attempts (fault injection for degradation tests). Fallback
	// rescue attempts are not affected. Unless Serial is set, FailNet may
	// be called from concurrent first-pass searches and must be safe for
	// concurrent use.
	FailNet func(id int) bool
	// Serial disables the concurrent first pass: every net is searched on
	// the calling goroutine even when search regions are disjoint. The
	// parallel first pass only co-schedules nets whose search regions are
	// pairwise disjoint and commits results in net order, so it is exactly
	// equivalent to the serial pass; Serial exists for debugging and for
	// benchmarking the difference.
	Serial bool
}

// DefaultOptions returns the standard configuration. The expansion and
// rip-up bounds are sized so hopeless nets fail fast instead of thrashing
// congested regions.
func DefaultOptions() Options {
	return Options{
		MaxIterations: 5,
		InitialMargin: 3,
		ExpandStep:    4,
		HistoryWeight: 1.5,
		FriendNets:    true,
		MaxExpansions: 60000,
		Fallback:      true,
	}
}

// FailedNet diagnoses one net that exhausted the negotiation rounds.
type FailedNet struct {
	// NetID is the net's ID.
	NetID int
	// PinA and PinB are the net's (rehomed) pin cells.
	PinA, PinB geom.Point
	// Manhattan is the pin-to-pin Manhattan distance.
	Manhattan int
	// Attempts counts routing attempts (first pass included).
	Attempts int
	// LastMargin is the search-region margin of the final attempt.
	LastMargin int
	// Fallback reports whether the net was rescued by fallback routing.
	Fallback bool
	// Reason describes the outcome.
	Reason string
}

// Result is the routing outcome.
type Result struct {
	// Routes maps net ID to its routed path (endpoints inclusive).
	Routes map[int]geom.Path
	// Failed lists net IDs that could not be routed at all (fallback
	// included, when enabled).
	Failed []int
	// FailedNets carries per-net diagnostics for every net that
	// exhausted the negotiation rounds, whether or not the fallback
	// rescued it.
	FailedNets []FailedNet
	// FallbackNets lists net IDs routed by the degraded fallback.
	FallbackNets []int
	// Degraded reports that the result is usable but below full
	// quality: at least one net is fallback-routed or unrouted.
	Degraded bool
	// FirstPassRouted counts nets routed in the first iteration
	// (the paper reports 85-95%).
	FirstPassRouted int
	// Iterations is the number of routing rounds performed.
	Iterations int
	// RippedUp counts rip-up events.
	RippedUp int
	// HistoryCells counts cells that accumulated congestion history and
	// MaxHistory is the largest accumulated charge — both zero when the
	// first pass routed everything.
	HistoryCells int
	MaxHistory   float64
	// PinCells maps pin ID to the cell the router homed it to (pins may
	// be rehomed away from their geometric position, see homePin). Verify
	// uses it to check that every path terminal is anchored; results built
	// by hand may leave it nil, which skips the terminal check.
	PinCells map[int]geom.Point
	// Bounds is the bounding box of bodies, boxes and routes.
	Bounds geom.Box
}

// WireCells returns the total number of cells used by routed nets.
func (r *Result) WireCells() int {
	n := 0
	for _, p := range r.Routes {
		n += len(p)
	}
	return n
}

type router struct {
	p    *place.Placement
	nets []bridge.Net
	opts Options

	// ctx and ctxErr implement cooperative cancellation: every routing
	// loop and the A* inner loop poll checkCtx and unwind when it trips.
	ctx    context.Context
	ctxErr error
	// inFallback marks the degraded rescue phase (disables FailNet
	// injection so forced failures can be rescued).
	inFallback bool

	static *rtree.Tree // module bodies and distillation boxes

	// grid holds the per-cell world state — rasterized static obstacles,
	// net ownership (a cell is recorded for its first owner only; friend
	// endpoints may coincide), pin ownership and congestion history — in
	// dense flat arrays for O(1) map-free probes in the A* inner loop
	// (with a hash-map fallback above denseGridLimit cells).
	grid *grid

	pinCell map[int]geom.Point // pin ID -> cell
	routes  map[int]geom.Path
	// routeBounds caches each routed path's bounding box so rip-up
	// victim scans can skip distant nets cheaply.
	routeBounds map[int]geom.Box

	// friends[pin] lists net IDs sharing the pin.
	friends map[int][]int

	// world clamps all search regions.
	world geom.Box

	result *Result
}

// Run routes all nets of the placement.
func Run(p *place.Placement, opts Options) (*Result, error) {
	//lint:ignore ctxflow sanctioned no-context entry point; RunContext is the threaded variant
	return RunContext(context.Background(), p, opts)
}

// RunContext is Run with cooperative cancellation: the routing rounds and
// the A* inner loop poll ctx, so a deadline aborts within a bounded number
// of expansions and returns an error wrapping faults.ErrCanceled.
func RunContext(ctx context.Context, p *place.Placement, opts Options) (*Result, error) {
	if opts.MaxIterations < 0 {
		return nil, fmt.Errorf("route: negative iterations")
	}
	if opts.MaxExpansions <= 0 {
		opts.MaxExpansions = 200000
	}
	if err := faults.Canceled(ctx); err != nil {
		return nil, fmt.Errorf("route: %w", err)
	}
	r := &router{
		p:           p,
		nets:        p.Nets,
		opts:        opts,
		ctx:         ctx,
		static:      rtree.New(),
		pinCell:     map[int]geom.Point{},
		routes:      map[int]geom.Path{},
		routeBounds: map[int]geom.Box{},
		friends:     map[int][]int{},
		result:      &Result{Routes: map[int]geom.Path{}},
	}
	if err := r.build(); err != nil {
		return nil, err
	}
	r.route()
	if r.ctxErr != nil {
		return nil, fmt.Errorf("route: %w", r.ctxErr)
	}
	r.finish()
	return r.result, nil
}

// checkCtx polls the context, caching the first cancellation error. It
// reports true when the router should unwind.
func (r *router) checkCtx() bool {
	if r.ctxErr != nil {
		return true
	}
	if err := faults.Canceled(r.ctx); err != nil {
		r.ctxErr = err
		return true
	}
	return false
}

// build populates obstacles, pin cells, friend groups and the per-cell
// grid. The grid is indexed by the routable world, which depends on the
// homed pin cells, so obstacles and pins first land in temporary maps
// (which homePin also consults) and are transferred once the world is
// known.
func (r *router) build() error {
	cl := r.p.Clust
	staticCells := map[geom.Point]bool{}
	cellPin := map[geom.Point]int{}
	rasterize := func(b geom.Box) {
		for x := b.Min.X; x < b.Max.X; x++ {
			for y := b.Min.Y; y < b.Max.Y; y++ {
				for z := b.Min.Z; z < b.Max.Z; z++ {
					staticCells[geom.Pt(x, y, z)] = true
				}
			}
		}
	}
	for m := range cl.NL.Modules {
		b := r.p.ModuleBox(m)
		r.static.Insert(b, -1)
		rasterize(b)
	}
	for _, b := range r.p.BoxObstacles() {
		r.static.Insert(b, -1)
		rasterize(b)
	}
	for _, n := range r.nets {
		for _, pid := range []int{n.PinA, n.PinB} {
			if _, ok := r.pinCell[pid]; ok {
				continue
			}
			pos, err := r.p.PinPos(pid)
			if err != nil {
				return fmt.Errorf("route: net %d: %w", n.ID, err)
			}
			pos, err = r.homePin(pid, pos, staticCells, cellPin)
			if err != nil {
				return fmt.Errorf("route: net %d: %w", n.ID, err)
			}
			r.pinCell[pid] = pos
			cellPin[pos] = pid
		}
		r.friends[n.PinA] = append(r.friends[n.PinA], n.ID)
		r.friends[n.PinB] = append(r.friends[n.PinB], n.ID)
	}
	// The routable world: everything placed, expanded generously so
	// detours around the hull remain possible.
	bounds := r.p.Bounds()
	for _, c := range r.pinCell {
		bounds = bounds.UnionPoint(c)
	}
	r.world = bounds.Expand(6 + 2*r.opts.MaxIterations*r.opts.ExpandStep)
	// Transfer the build-time maps into the world-indexed grid. Both
	// transfers only set independent per-cell flags, so map iteration
	// order cannot influence the result.
	r.grid = newGrid(r.world)
	for c := range staticCells {
		r.grid.setStatic(c)
	}
	for c, pid := range cellPin {
		r.grid.setPin(c, pid)
	}
	return nil
}

// homePin resolves pin-cell collisions: with the shared inter-tier routing
// plane, the natural pin cell of one module can coincide with a facing
// pin of the adjacent tier or sit inside an obstacle. The dual segment may
// exit its primal ring anywhere along the opening, so the pin is rehomed
// to the nearest free cell in the same plane above/below its module body.
func (r *router) homePin(pid int, pos geom.Point, staticCells map[geom.Point]bool, cellPin map[geom.Point]int) (geom.Point, error) {
	free := func(c geom.Point) bool {
		if staticCells[c] {
			return false
		}
		_, taken := cellPin[c]
		return !taken
	}
	if free(pos) {
		return pos, nil
	}
	pin := r.p.Clust.NL.Pins[pid]
	m := r.p.Clust.NL.Segments[pin.Segment].Module
	mb := r.p.ModuleBox(m)
	// Search the pin plane over the module footprint, nearest first.
	type cand struct {
		c geom.Point
		d int
	}
	var cands []cand
	for x := mb.Min.X; x < mb.Max.X; x++ {
		for y := mb.Min.Y; y < mb.Max.Y; y++ {
			c := geom.Pt(x, y, pos.Z)
			if free(c) {
				cands = append(cands, cand{c: c, d: c.Manhattan(pos)})
			}
		}
	}
	if len(cands) == 0 {
		return pos, fmt.Errorf("pin %d: no free cell in plane z=%d over module %d", pid, pos.Z, m)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d != cands[j].d {
			return cands[i].d < cands[j].d
		}
		a, b := cands[i].c, cands[j].c
		if a.X != b.X {
			return a.X < b.X
		}
		return a.Y < b.Y
	})
	return cands[0].c, nil
}

// route performs the iterative routing with rip-up and reroute.
func (r *router) route() {
	// First iteration: all nets, sorted by non-decreasing Manhattan
	// distance.
	order := make([]int, len(r.nets))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return r.netDist(r.nets[order[i]]) < r.netDist(r.nets[order[j]])
	})

	margin := make([]int, len(r.nets))
	for i := range margin {
		margin[i] = r.opts.InitialMargin
	}

	failed := r.firstPass(order, margin)
	if r.ctxErr != nil {
		return
	}
	r.result.Iterations = 1

	// Negotiation bounds: a net is retried at most MaxIterations times,
	// and the total rip-up budget is proportional to the netlist size —
	// without these, a handful of genuinely unroutable nets can thrash
	// the whole region indefinitely.
	attempts := make([]int, len(r.nets))
	ripBudget := 3 * len(r.nets)
	var abandoned []int
	for iter := 0; iter < r.opts.MaxIterations && len(failed) > 0; iter++ {
		r.result.Iterations++
		var still []int
		for _, idx := range failed {
			if r.checkCtx() {
				return
			}
			if attempts[idx] >= r.opts.MaxIterations {
				abandoned = append(abandoned, idx)
				continue
			}
			attempts[idx]++
			margin[idx] += r.opts.ExpandStep
			n := r.nets[idx]
			if r.tryRoute(n, margin[idx]) {
				continue
			}
			if r.result.RippedUp >= ripBudget {
				still = append(still, idx)
				continue
			}
			// Negotiate: first rip up only the nets hugging the pins
			// (the usual blockage), then everything in the search
			// region; history charges accumulate on ripped cells.
			ripped := r.ripUpRegion(r.searchRegion(n, 1), n.ID)
			if !r.tryRoute(n, margin[idx]) {
				ripped = append(ripped, r.ripUpRegion(r.searchRegion(n, margin[idx]), n.ID)...)
			}
			if r.tryRoute(n, margin[idx]) {
				// Re-route the victims immediately (they keep their
				// original margins).
				for _, v := range ripped {
					if !r.tryRoute(r.nets[v], margin[v]+r.opts.ExpandStep) {
						still = append(still, v)
					}
				}
				continue
			}
			// Restore victims and give up this round.
			for _, v := range ripped {
				if !r.tryRoute(r.nets[v], margin[v]) {
					still = append(still, v)
				}
			}
			still = append(still, idx)
		}
		failed = dedupInts(still)
	}
	failed = append(failed, abandoned...)
	// Restore the friend-net anchoring invariant: rip-ups may have left
	// nets terminating on paths that no longer exist. Nets the repair
	// cannot re-route join the failed set for the degradation path.
	failed = append(failed, r.repairDangling(margin)...)
	var exhausted []int
	for _, idx := range dedupInts(failed) {
		if _, routed := r.routes[r.nets[idx].ID]; !routed {
			exhausted = append(exhausted, idx)
		}
	}
	sort.Ints(exhausted)
	r.degrade(exhausted, attempts, margin)
}

// firstPass routes every net once, in the given order, and returns the
// indices of the nets that failed. Unless Options.Serial is set, it
// peels maximal prefixes of the remaining order whose search regions are
// pairwise disjoint (checked against an R-tree of the batch's regions)
// and searches each batch concurrently, committing results serially in
// net order. Because a committed path never leaves its net's search
// region and friend nets always share a pin cell (hence overlapping
// regions), a batch member can neither block nor feed another, so the
// outcome is exactly the serial pass's.
func (r *router) firstPass(order, margin []int) (failed []int) {
	for len(order) > 0 {
		if r.checkCtx() {
			return failed
		}
		batch := r.disjointPrefix(order, margin)
		paths := make([]geom.Path, len(batch))
		if len(batch) == 1 {
			paths[0] = r.searchNet(r.nets[batch[0]], margin[batch[0]])
		} else {
			var wg sync.WaitGroup
			for bi, idx := range batch {
				wg.Add(1)
				go func(bi, idx int) {
					defer wg.Done()
					paths[bi] = r.searchNet(r.nets[idx], margin[idx])
				}(bi, idx)
			}
			wg.Wait()
		}
		for bi, idx := range batch {
			if paths[bi] != nil {
				r.commit(r.nets[idx], paths[bi])
				r.result.FirstPassRouted++
			} else {
				failed = append(failed, idx)
			}
		}
		order = order[len(batch):]
	}
	return failed
}

// disjointPrefix returns the maximal prefix of order whose search
// regions are pairwise disjoint (always at least one net). With
// Options.Serial set every batch is a single net.
func (r *router) disjointPrefix(order, margin []int) []int {
	if r.opts.Serial {
		return order[:1]
	}
	regions := rtree.New()
	n := 0
	for _, idx := range order {
		region := r.searchRegion(r.nets[idx], margin[idx])
		if n > 0 && regions.Intersects(region) {
			break
		}
		regions.Insert(region, idx)
		n++
	}
	return order[:n]
}

// degrade handles the nets left unrouted after the negotiation rounds:
// it records per-net diagnostics and, when enabled, attempts a
// last-resort fallback route over the whole expanded world. Any net the
// fallback rescues marks the result Degraded; any net it cannot rescue
// additionally lands in Failed.
func (r *router) degrade(exhausted []int, attempts, margin []int) {
	if len(exhausted) == 0 {
		return
	}
	// A margin this large makes searchRegion degenerate to the full
	// world (searchRegion clamps against it).
	worldMargin := r.world.Dx() + r.world.Dy() + r.world.Dz()
	for _, idx := range exhausted {
		if r.checkCtx() {
			return
		}
		n := r.nets[idx]
		fn := FailedNet{
			NetID:      n.ID,
			PinA:       r.pinCell[n.PinA],
			PinB:       r.pinCell[n.PinB],
			Manhattan:  r.netDist(n),
			Attempts:   attempts[idx] + 1,
			LastMargin: margin[idx],
		}
		if r.opts.Fallback {
			r.inFallback = true
			ok := r.tryRoute(n, worldMargin)
			r.inFallback = false
			if ok {
				fn.Fallback = true
				fn.Reason = "negotiation exhausted; rescued by whole-world fallback route"
				r.result.FallbackNets = append(r.result.FallbackNets, n.ID)
				r.result.FailedNets = append(r.result.FailedNets, fn)
				continue
			}
			fn.Reason = "unroutable: negotiation and whole-world fallback both exhausted"
		} else {
			fn.Reason = "negotiation exhausted (fallback disabled)"
		}
		r.result.Failed = append(r.result.Failed, n.ID)
		r.result.FailedNets = append(r.result.FailedNets, fn)
	}
	r.result.Degraded = len(r.result.FallbackNets) > 0 || len(r.result.Failed) > 0
}

func dedupInts(xs []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

func (r *router) netDist(n bridge.Net) int {
	return r.pinCell[n.PinA].Manhattan(r.pinCell[n.PinB])
}

func (r *router) searchRegion(n bridge.Net, margin int) geom.Box {
	b := geom.CellBox(r.pinCell[n.PinA]).UnionPoint(r.pinCell[n.PinB]).Expand(margin)
	return b.Intersect(r.world)
}

// ripUpRegion removes routed nets whose cells intersect the region,
// charging congestion history, and returns the victims' net indices.
// Ripping a net can leave a friend that terminated on its path with a
// dangling terminal; repairDangling re-anchors those after the
// negotiation rounds instead of cascading rip-ups here (eager transitive
// ripping thrashes the rip budget on congested regions).
func (r *router) ripUpRegion(region geom.Box, exceptNet int) []int {
	victims := map[int]bool{}
	for id, path := range r.routes {
		if id == exceptNet || !r.routeBounds[id].Intersects(region) {
			continue
		}
		for _, c := range path {
			if region.Contains(c) {
				victims[id] = true
				break
			}
		}
	}
	var out []int
	for id := range victims {
		for _, c := range r.routes[id] {
			r.grid.histAdd(c, 1.0)
			r.grid.clearNet(c, id)
		}
		delete(r.routes, id)
		delete(r.routeBounds, id)
		r.result.RippedUp++
		// net IDs equal their index in r.nets (bridge assigns them so).
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// anchored reports whether cell c is a legal terminal for net n's pin:
// the net's own (rehomed) pin cell, or a cell of a committed route of
// another net sharing the pin (the friend-net deformation).
func (r *router) anchored(netID, pin int, c geom.Point) bool {
	if c == r.pinCell[pin] {
		return true
	}
	for _, fid := range r.friends[pin] {
		if fid == netID {
			continue
		}
		for _, fc := range r.routes[fid] {
			if fc == c {
				return true
			}
		}
	}
	return false
}

// danglingNets returns the routed nets whose paths are no longer anchored
// at both ends — a friend whose path a terminal borrowed was ripped up
// without this net being re-routed. A terminal at the net's own pin cell
// never dangles, so nets merely sharing a pin cell stay out.
func (r *router) danglingNets() []int {
	var bad []int
	for id, path := range r.routes {
		n := r.nets[id]
		head, tail := path[0], path[len(path)-1]
		if (r.anchored(id, n.PinA, head) && r.anchored(id, n.PinB, tail)) ||
			(r.anchored(id, n.PinB, head) && r.anchored(id, n.PinA, tail)) {
			continue
		}
		bad = append(bad, id)
	}
	sort.Ints(bad)
	return bad
}

// uncommit removes a net's committed route without charging congestion
// history (used by terminal repair, which is not a congestion event).
func (r *router) uncommit(id int) {
	for _, c := range r.routes[id] {
		r.grid.clearNet(c, id)
	}
	delete(r.routes, id)
	delete(r.routeBounds, id)
}

// repairDangling restores the friend-net anchoring invariant after the
// negotiation rounds: nets whose borrowed terminal dangles are ripped and
// re-routed against the current committed paths. Re-routing one net can
// strand another that borrowed its old path, so the scan iterates to a
// fixpoint; any net still unanchored at the bound is ripped for good and
// returned so the caller hands it to the degradation path.
func (r *router) repairDangling(margin []int) []int {
	var lost []int
	for pass := 0; pass <= len(r.nets); pass++ {
		if r.checkCtx() {
			return lost
		}
		bad := r.danglingNets()
		if len(bad) == 0 {
			return lost
		}
		for _, id := range bad {
			r.uncommit(id)
		}
		if pass == len(r.nets) {
			// Fixpoint bound hit: leave the stragglers unrouted rather
			// than committing paths that violate the anchoring invariant.
			return append(lost, bad...)
		}
		for _, id := range bad {
			if !r.tryRoute(r.nets[id], margin[id]+r.opts.ExpandStep) {
				lost = append(lost, id)
			}
		}
	}
	return lost
}

// endpointSets returns the start and target cell sets for a net, including
// friend-net path cells when enabled.
func (r *router) endpointSets(n bridge.Net) (starts, targets map[geom.Point]bool) {
	starts = map[geom.Point]bool{r.pinCell[n.PinA]: true}
	targets = map[geom.Point]bool{r.pinCell[n.PinB]: true}
	if !r.opts.FriendNets {
		return starts, targets
	}
	add := func(set map[geom.Point]bool, pin int) {
		for _, fid := range r.friends[pin] {
			if fid == n.ID {
				continue
			}
			for _, c := range r.routes[fid] {
				set[c] = true
			}
		}
	}
	add(starts, n.PinA)
	add(targets, n.PinB)
	return starts, targets
}

// tryRoute attempts to route one net within its current search region,
// committing the path on success.
func (r *router) tryRoute(n bridge.Net, margin int) bool {
	if _, done := r.routes[n.ID]; done {
		return true
	}
	path := r.searchNet(n, margin)
	if path == nil {
		return false
	}
	r.commit(n, path)
	return true
}

// searchNet finds a path for one net within its current search region
// without committing it. It mutates no router state, so independent nets
// may search concurrently; the caller must not have routed n already.
func (r *router) searchNet(n bridge.Net, margin int) geom.Path {
	// Fault injection: force this net's normal attempts to fail so
	// degradation paths can be exercised under test. The fallback rescue
	// phase is exempt.
	if r.opts.FailNet != nil && !r.inFallback && r.opts.FailNet(n.ID) {
		return nil
	}
	starts, targets := r.endpointSets(n)
	// Degenerate: a start cell that is already a target (friend paths
	// touching) routes with a single-cell path; the lowest such cell in
	// (Z, Y, X) order wins so the choice never depends on map iteration.
	var deg geom.Point
	haveDeg := false
	for c := range starts {
		if targets[c] && (!haveDeg || cellLess(c, deg)) {
			deg, haveDeg = c, true
		}
	}
	if haveDeg {
		return geom.Path{deg}
	}
	region := r.searchRegion(n, margin)
	// Region must cover all explicit endpoints; friend cells outside are
	// simply unusable this attempt.
	return r.astar(n, starts, targets, region)
}

func (r *router) commit(n bridge.Net, path geom.Path) {
	r.routes[n.ID] = path
	r.routeBounds[n.ID] = path.Bounds()
	for _, c := range path {
		if _, occ := r.grid.netOwner(c); !occ {
			r.grid.setNet(c, n.ID)
		}
	}
}

// blocked reports whether net n may not occupy cell c.
func (r *router) blocked(n bridge.Net, c geom.Point) bool {
	if owner, occ := r.grid.netOwner(c); occ && owner != n.ID {
		return true
	}
	if pid, isPin := r.grid.pinOwner(c); isPin && pid != n.PinA && pid != n.PinB {
		return true // foreign pin access cell
	}
	return r.grid.isStatic(c)
}

// pqItem is an A* frontier entry.
type pqItem struct {
	cell geom.Point
	f, g float64
}

type pq []pqItem

// cellLess orders cells by (Z, Y, X); the router's deterministic
// tie-breaker wherever an arbitrary-but-reproducible cell choice is
// needed.
func cellLess(a, b geom.Point) bool {
	if a.Z != b.Z {
		return a.Z < b.Z
	}
	if a.Y != b.Y {
		return a.Y < b.Y
	}
	return a.X < b.X
}

func (q pq) Len() int { return len(q) }
func (q pq) Less(i, j int) bool {
	// Deterministic ordering: break f ties by g, then by cell coordinates,
	// so identical inputs route identically across runs.
	if q[i].f != q[j].f {
		return q[i].f < q[j].f
	}
	if q[i].g != q[j].g {
		return q[i].g < q[j].g
	}
	return cellLess(q[i].cell, q[j].cell)
}
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)         { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any           { it := (*q)[len(*q)-1]; *q = (*q)[:len(*q)-1]; return it }
func (q *pq) PushItem(it pqItem) { heap.Push(q, it) }

// searchCanceled polls the context without caching the error; unlike
// checkCtx it writes no router state, so concurrent searches may call it.
// The serial phases rediscover the cancellation through checkCtx at the
// next loop boundary.
func (r *router) searchCanceled() bool {
	return faults.Canceled(r.ctx) != nil
}

// boxDistance returns the Manhattan distance from c to box b — the A*
// heuristic for a multi-target search (admissible: every target lies in
// the targets' bounding box).
func boxDistance(c geom.Point, b geom.Box) float64 {
	d := 0
	if c.X < b.Min.X {
		d += b.Min.X - c.X
	} else if c.X >= b.Max.X {
		d += c.X - (b.Max.X - 1)
	}
	if c.Y < b.Min.Y {
		d += b.Min.Y - c.Y
	} else if c.Y >= b.Max.Y {
		d += c.Y - (b.Max.Y - 1)
	}
	if c.Z < b.Min.Z {
		d += b.Min.Z - c.Z
	} else if c.Z >= b.Max.Z {
		d += c.Z - (b.Max.Z - 1)
	}
	return float64(d)
}

// sortedStarts returns the in-region start cells in deterministic
// (Z, Y, X) order; out-of-region friend cells are unusable this attempt.
func sortedStarts(starts map[geom.Point]bool, region geom.Box) []geom.Point {
	cells := make([]geom.Point, 0, len(starts))
	for c := range starts {
		if region.Contains(c) {
			cells = append(cells, c)
		}
	}
	sort.Slice(cells, func(i, j int) bool { return cellLess(cells[i], cells[j]) })
	return cells
}

// astar searches a cheapest path from any start to any target within the
// region. The heuristic is the Manhattan distance to the targets' bounding
// box. Regions up to denseSearchLimit cells (all but degenerate
// whole-world rescues) run on pooled flat-array scratch state; larger
// ones fall back to hash maps. Both variants expand nodes in the exact
// same deterministic order and return identical paths.
func (r *router) astar(n bridge.Net, starts, targets map[geom.Point]bool, region geom.Box) geom.Path {
	var tbox geom.Box
	for c := range targets {
		tbox = tbox.UnionPoint(c)
	}
	h := func(c geom.Point) float64 { return boxDistance(c, tbox) }

	// A region can never yield more useful expansions than it has cells.
	maxExp := r.opts.MaxExpansions
	if r.inFallback {
		// The rescue pass searches the whole world; give it more room
		// (still bounded so enclosed pins cannot wedge the router).
		maxExp *= 8
	}
	if v := region.Volume(); v < maxExp {
		maxExp = v
	}
	if region.Volume() <= denseSearchLimit {
		return r.astarDense(n, starts, targets, region, h, maxExp)
	}
	return r.astarSparse(n, starts, targets, region, h, maxExp)
}

// astarDense is the hot-path A*: g-scores, parent links and the visited
// set live in pooled generation-stamped flat arrays indexed by the
// region-local cell index, so the inner loop performs no map operations
// and no per-search allocations beyond heap growth.
func (r *router) astarDense(n bridge.Net, starts, targets map[geom.Point]bool, region geom.Box, h func(geom.Point) float64, maxExp int) geom.Path {
	ci := newCellIndexer(region)
	s := scratchPool.Get().(*scratch)
	defer scratchPool.Put(s)
	s.reset(ci.volume())
	open := &s.open
	for _, c := range sortedStarts(starts, region) {
		s.setG(ci.index(c), 0, -1)
		open.PushItem(pqItem{cell: c, g: 0, f: h(c)})
	}
	expansions := 0
	for open.Len() > 0 {
		cur := heap.Pop(open).(pqItem)
		curIdx := ci.index(cur.cell)
		if cur.g > s.g[curIdx] {
			continue // stale entry
		}
		if targets[cur.cell] {
			// Reconstruct by walking the parent indices (-1 marks a start).
			var path geom.Path
			for i := int32(curIdx); i >= 0; i = s.parent[i] {
				path = append(path, ci.point(int(i)))
			}
			return path.Reverse()
		}
		expansions++
		if expansions > maxExp {
			return nil
		}
		if expansions%cancelCheckExpansions == 0 && r.searchCanceled() {
			return nil
		}
		for _, d := range geom.Dirs6 {
			next := cur.cell.Step(d)
			if !region.Contains(next) {
				continue
			}
			// Targets are enterable even when occupied by a friend path.
			if !targets[next] && r.blocked(n, next) {
				continue
			}
			ng := cur.g + 1 + r.opts.HistoryWeight*r.grid.histAt(next)
			ni := ci.index(next)
			if s.seen(ni) && ng >= s.g[ni] {
				continue
			}
			s.setG(ni, ng, int32(curIdx))
			open.PushItem(pqItem{cell: next, g: ng, f: ng + h(next)})
		}
	}
	return nil
}

// astarSparse is the map-based fallback for regions whose volume exceeds
// the dense scratch limit; same algorithm, same expansion order.
func (r *router) astarSparse(n bridge.Net, starts, targets map[geom.Point]bool, region geom.Box, h func(geom.Point) float64, maxExp int) geom.Path {
	open := &pq{}
	gScore := map[geom.Point]float64{}
	parent := map[geom.Point]geom.Point{}
	for _, c := range sortedStarts(starts, region) {
		gScore[c] = 0
		open.PushItem(pqItem{cell: c, g: 0, f: h(c)})
	}
	expansions := 0
	for open.Len() > 0 {
		cur := heap.Pop(open).(pqItem)
		if cur.g > gScore[cur.cell] {
			continue // stale entry
		}
		if targets[cur.cell] {
			// Reconstruct.
			var path geom.Path
			c := cur.cell
			for {
				path = append(path, c)
				p, ok := parent[c]
				if !ok {
					break
				}
				c = p
			}
			return path.Reverse()
		}
		expansions++
		if expansions > maxExp {
			return nil
		}
		if expansions%cancelCheckExpansions == 0 && r.searchCanceled() {
			return nil
		}
		for _, d := range geom.Dirs6 {
			next := cur.cell.Step(d)
			if !region.Contains(next) {
				continue
			}
			// Targets are enterable even when occupied by a friend path.
			if !targets[next] && r.blocked(n, next) {
				continue
			}
			ng := cur.g + 1 + r.opts.HistoryWeight*r.grid.histAt(next)
			if old, seen := gScore[next]; seen && ng >= old {
				continue
			}
			gScore[next] = ng
			parent[next] = cur.cell
			open.PushItem(pqItem{cell: next, g: ng, f: ng + h(next)})
		}
	}
	return nil
}

// finish records routes and computes the final bounds. The history
// statistics come from grid.histStats, an order-independent aggregate,
// so the reported counts are identical across runs regardless of storage
// (dense array or map fallback).
func (r *router) finish() {
	r.result.HistoryCells, r.result.MaxHistory = r.grid.histStats()
	b := r.p.Bounds()
	for id, path := range r.routes {
		r.result.Routes[id] = path
		b = b.Union(path.Bounds())
	}
	r.result.PinCells = make(map[int]geom.Point, len(r.pinCell))
	for pid, c := range r.pinCell {
		r.result.PinCells[pid] = c
		b = b.UnionPoint(c)
	}
	r.result.Bounds = b
}

// Verify checks that every routed path is connected, collision-free
// against module bodies/boxes, and does not overlap other nets except at
// shared friend cells (path endpoints). When the result carries PinCells,
// it additionally checks that every path terminal is anchored: at the
// net's own pin cell, or on the committed path of a friend net sharing
// that pin (the Fig. 19 deformation). A result with unrouted nets fails
// with an error wrapping faults.ErrUnroutable; a degraded (fallback-
// routed) result fails with an error wrapping faults.ErrDegraded, so a
// degraded routing can never verify silently.
func Verify(p *place.Placement, res *Result) error {
	if err := VerifyStructure(p, res); err != nil {
		return err
	}
	if len(res.Failed) > 0 {
		return fmt.Errorf("route: %w: %d nets unrouted: %v", faults.ErrUnroutable, len(res.Failed), res.Failed)
	}
	if res.Degraded || len(res.FallbackNets) > 0 {
		return fmt.Errorf("route: %w: %d fallback-routed nets: %v",
			faults.ErrDegraded, len(res.FallbackNets), res.FallbackNets)
	}
	return nil
}

// VerifyStructure is Verify without the strictness conditions: it checks
// path connectivity, obstacle freedom, friend-cell sharing and terminal
// anchoring of whatever was routed, but accepts results with unrouted or
// fallback-routed nets. Degradation-tolerant verifiers (the unbridged
// ablation differential in internal/check) use it to confirm a degraded
// routing is still structurally sound.
func VerifyStructure(p *place.Placement, res *Result) error {
	if err := verifyStructure(p, res); err != nil {
		return err
	}
	if res.PinCells != nil {
		return verifyTerminals(p, res)
	}
	return nil
}

// verifyStructure runs the structural path checks shared by strict and
// degraded verification.
func verifyStructure(p *place.Placement, res *Result) error {
	// Module bodies carry their module index so a violation names the
	// module it pierces; distillation boxes use -1.
	static := rtree.New()
	for m := range p.Clust.NL.Modules {
		static.Insert(p.ModuleBox(m), m)
	}
	for _, b := range p.BoxObstacles() {
		static.Insert(b, -1)
	}
	type use struct {
		id  int
		mid bool
	}
	uses := map[geom.Point][]use{}
	for id, path := range res.Routes {
		if len(path) == 0 {
			return fmt.Errorf("route: net %d has empty path", id)
		}
		if !path.Valid() {
			return fmt.Errorf("route: net %d path disconnected", id)
		}
		for i, c := range path {
			if static.Intersects(geom.CellBox(c)) {
				return fmt.Errorf("route: net %d cell %v %s", id, c, obstacleName(static, c))
			}
			uses[c] = append(uses[c], use{id: id, mid: i != 0 && i != len(path)-1})
		}
	}
	// A cell may be shared only under the friend-net rule: at most one of
	// the sharing nets passes through it mid-path; the others terminate
	// there (ending on a friend's routed path is a valid topological
	// deformation).
	for c, us := range uses {
		mids := 0
		for _, u := range us {
			if u.mid {
				mids++
			}
		}
		if mids > 1 {
			return fmt.Errorf("route: %d nets overlap mid-path at %v", mids, c)
		}
	}
	return nil
}

// obstacleName describes the static obstacle covering cell c: the pierced
// module by index, or a distillation box.
func obstacleName(static *rtree.Tree, c geom.Point) string {
	for _, e := range static.Search(geom.CellBox(c), nil) {
		if e.ID >= 0 {
			return fmt.Sprintf("inside module %d body", e.ID)
		}
	}
	return "inside a distillation-box obstacle"
}

// verifyTerminals enforces the friend-net anchoring invariant on every
// routed path: each terminal must sit at the net's own (rehomed) pin cell
// or on the committed path of another net sharing that pin, with one
// terminal anchoring each pin. A path that anchors neither orientation is
// dangling — the friend path its deformation borrowed was ripped up
// without this net being re-routed.
func verifyTerminals(p *place.Placement, res *Result) error {
	netByID := make(map[int]bridge.Net, len(p.Nets))
	friends := map[int][]int{}
	for _, n := range p.Nets {
		netByID[n.ID] = n
		friends[n.PinA] = append(friends[n.PinA], n.ID)
		friends[n.PinB] = append(friends[n.PinB], n.ID)
	}
	onFriendPath := func(netID, pin int, c geom.Point) bool {
		for _, fid := range friends[pin] {
			if fid == netID {
				continue
			}
			for _, fc := range res.Routes[fid] {
				if fc == c {
					return true
				}
			}
		}
		return false
	}
	ids := make([]int, 0, len(res.Routes))
	for id := range res.Routes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		n, ok := netByID[id]
		if !ok {
			return fmt.Errorf("route: routed net %d not in the netlist", id)
		}
		path := res.Routes[id]
		head, tail := path[0], path[len(path)-1]
		anchors := func(pin int, c geom.Point) bool {
			return c == res.PinCells[pin] || onFriendPath(id, pin, c)
		}
		if !(anchors(n.PinA, head) && anchors(n.PinB, tail)) &&
			!(anchors(n.PinB, head) && anchors(n.PinA, tail)) {
			return fmt.Errorf("route: net %d terminals %v..%v dangle: want pin cells %v/%v or a friend path at each end",
				id, head, tail, res.PinCells[n.PinA], res.PinCells[n.PinB])
		}
	}
	return nil
}
