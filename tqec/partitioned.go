package tqec

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/decompose"
	"repro/internal/faults"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/partition"
	"repro/internal/qc"
	"repro/internal/route"
)

// slabGap is the empty time-axis spacing between adjacent part slabs: at
// least 2 so seam pin cells on the facing slab boundaries can never
// coincide, and wide enough that seam routes have slack to fan out
// between slabs without detouring around the hull.
const slabGap = 4

// PartitionedResult carries a partitioned compilation: the qubit cut,
// each part's full compilation artifact, the disjoint time slabs the
// parts were translated into, and the routed seam nets stitching them.
type PartitionedResult struct {
	// Partition is the qubit-interaction-graph cut.
	Partition *partition.Result
	// Parts holds each sub-circuit's compilation, aligned with
	// Partition.Parts. A part with no gates (its qubits interact only
	// across seams) has a nil entry and occupies a unit slab.
	Parts []*Result
	// Slabs are the parts' routing bounds translated into disjoint
	// time-axis slabs (slab i starts where slab i-1 ended plus slabGap),
	// aligned with Parts.
	Slabs []geom.Box
	// SeamNets are the stitched nets, one per Partition.Seams entry in
	// order: endpoints sit on the z=-1 plane outside every slab, at the
	// facing time-boundaries of the two slabs the cut CNOT couples.
	SeamNets []route.SeamNet
	// SeamRouting is the negotiated-A* result for SeamNets; nil when the
	// partition produced no seams.
	SeamRouting *route.Result

	// Dims and Volume measure the combined extent: every slab, every
	// seam route and every seam pin.
	Dims   metrics.Dims
	Volume int
	// CanonicalVolume and BoxVolume sum the parts' values (seam CNOTs
	// belong to no part, so the sums exclude their canonical slots).
	CanonicalVolume int
	BoxVolume       int
	// PlacementAttempts sums the parts' SA attempts.
	PlacementAttempts int
	// Degraded reports degraded routing in any part or in the seam
	// stitching.
	Degraded bool
	// PassThrough marks a compile that never split: the circuit fit
	// MaxQubitsPerPart (or the cap was non-positive), so Parts holds the
	// single ordinary compilation.
	PassThrough bool
	// Breakdown aggregates the per-stage wall-clock of every part
	// (concurrent parts sum to more than elapsed time) plus the
	// partition and stitch stages, and the parts' event counters.
	Breakdown *metrics.Breakdown
}

// CompilePartitioned runs the partitioned compression flow.
func CompilePartitioned(c *qc.Circuit, opts Options) (*PartitionedResult, error) {
	//lint:ignore ctxflow sanctioned no-context entry point; CompilePartitionedContext is the threaded variant
	return CompilePartitionedContext(context.Background(), c, opts)
}

// CompilePartitionedContext splits the decomposed circuit along its
// qubit-interaction graph (opts.Partition), compiles every part
// concurrently through the ordinary CompileContext pipeline, translates
// each part's geometry into its own time slab, and routes one seam net
// per cut CNOT across the slab gaps with the negotiated-A* router. With
// a non-positive MaxQubitsPerPart — or a circuit already within the cap —
// it degenerates to a single CompileContext call wrapped as a
// pass-through result.
//
// The combined result is deterministic for a fixed (circuit, Options)
// pair: the cut is seeded, every part compiles with the same seeds an
// unpartitioned compile would use, parts are stitched in part order, and
// seam routing is deterministic for identical inputs.
func CompilePartitionedContext(ctx context.Context, c *qc.Circuit, opts Options) (*PartitionedResult, error) {
	pres := &PartitionedResult{Breakdown: metrics.NewBreakdown()}
	err := runStage(pres.Breakdown, metrics.StagePartition, StagePartition, opts.Hooks, func() error {
		if err := faults.Canceled(ctx); err != nil {
			return err
		}
		d, err := decompose.Decompose(c)
		if err != nil {
			return err
		}
		pres.Partition, err = partition.Partition(d.Circuit, opts.Partition)
		return err
	})
	if err != nil {
		return nil, err
	}

	partOpts := opts
	partOpts.Partition = partition.Options{}
	if pres.Partition.PassThrough {
		inner, err := CompileContext(ctx, c, partOpts)
		if err != nil {
			return nil, err
		}
		pres.Parts = []*Result{inner}
		pres.Slabs = []geom.Box{inner.Routing.Bounds}
		pres.Dims, pres.Volume = inner.Dims, inner.Volume
		pres.CanonicalVolume, pres.BoxVolume = inner.CanonicalVolume, inner.BoxVolume
		pres.PlacementAttempts = inner.PlacementAttempts
		pres.Degraded = inner.Degraded
		pres.PassThrough = true
		mergeBreakdown(pres.Breakdown, inner.Breakdown)
		return pres, nil
	}

	// Compile every non-empty part concurrently. Each part runs the full
	// pipeline with the same option set (the partitioner cleared), so a
	// part compiles exactly as it would standalone.
	pres.Parts = make([]*Result, len(pres.Partition.Parts))
	errs := make([]error, len(pres.Partition.Parts))
	var wg sync.WaitGroup
	for i := range pres.Partition.Parts {
		pc := pres.Partition.Parts[i].Circuit
		if pc.NumGates() == 0 {
			continue // seam-only part; gets a unit slab below
		}
		wg.Add(1)
		go func(i int, pc *qc.Circuit) {
			defer wg.Done()
			pres.Parts[i], errs[i] = CompileContext(ctx, pc, partOpts)
			if errors.Is(errs[i], faults.ErrEmpty) {
				// The part's gates all canceled during rewriting (e.g. a
				// self-inverse CNOT pair isolated by the cut): it
				// occupies no volume, like a part that started gateless.
				pres.Parts[i], errs[i] = nil, nil
			}
		}(i, pc)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("tqec: part %d: %w", i, err)
		}
	}
	for _, part := range pres.Parts {
		if part == nil {
			continue
		}
		pres.CanonicalVolume += part.CanonicalVolume
		pres.BoxVolume += part.BoxVolume
		pres.PlacementAttempts += part.PlacementAttempts
		pres.Degraded = pres.Degraded || part.Degraded
		mergeBreakdown(pres.Breakdown, part.Breakdown)
	}

	err = runStage(pres.Breakdown, metrics.StageStitch, StageStitch, opts.Hooks, func() error {
		if err := faults.Canceled(ctx); err != nil {
			return err
		}
		return pres.stitch(ctx, opts)
	})
	if err != nil {
		return nil, err
	}
	return pres, nil
}

// stitch translates each part's routing bounds into its time slab, builds
// one seam net per cut CNOT on the z=-1 plane at the facing slab
// boundaries, and routes them. It fills Slabs, SeamNets, SeamRouting and
// the combined Dims/Volume.
func (pres *PartitionedResult) stitch(ctx context.Context, opts Options) error {
	pres.Slabs = make([]geom.Box, len(pres.Parts))
	curX := 0
	for i, part := range pres.Parts {
		if part == nil {
			// Seam-only part: a unit placeholder slab so its seam pins
			// have a boundary to attach to.
			pres.Slabs[i] = geom.CellBox(geom.Pt(curX, 0, 0))
		} else {
			b := part.Routing.Bounds
			pres.Slabs[i] = b.Translate(geom.Pt(curX-b.Min.X, -b.Min.Y, -b.Min.Z))
		}
		curX = pres.Slabs[i].Max.X + slabGap
	}
	base := pres.Slabs[0]
	for _, s := range pres.Slabs[1:] {
		base = base.Union(s)
	}

	if len(pres.Partition.Seams) == 0 {
		b := base
		pres.Dims = metrics.Dims{W: b.Dy(), H: b.Dz(), D: b.Dx()}
		pres.Volume = pres.Dims.Volume()
		return nil
	}

	// One net per seam, rank-indexed: pins sit on the z=-1 plane (below
	// every slab, whose extents start at z=0) at the facing time
	// boundaries, with the seam's rank as the y coordinate so no two
	// seams share a pin cell.
	pres.SeamNets = make([]route.SeamNet, len(pres.Partition.Seams))
	for r, s := range pres.Partition.Seams {
		a, b := pres.Slabs[s.ControlPart], pres.Slabs[s.TargetPart]
		pres.SeamNets[r] = route.SeamNet{
			ID: r,
			A:  geom.Pt(a.Max.X, r, -1),
			B:  geom.Pt(b.Min.X-1, r, -1),
		}
	}
	ropts := opts.Route
	if ropts.Clock == nil {
		start := time.Now()
		ropts.Clock = func() time.Duration { return time.Since(start) }
	}
	sr, err := route.RouteSeams(ctx, pres.Slabs, pres.SeamNets, base, ropts)
	if err != nil {
		return err
	}
	pres.SeamRouting = sr
	if n := len(sr.FallbackNets); n > 0 {
		pres.Breakdown.Count(metrics.CounterFallbackNets, n)
	}
	if n := len(sr.Failed); n > 0 {
		pres.Breakdown.Count(metrics.CounterUnroutedNets, n)
		if opts.StrictRouting {
			return fmt.Errorf("%w: %d seam net(s) failed negotiation and fallback", faults.ErrUnroutable, n)
		}
	}
	if sr.Degraded {
		pres.Breakdown.Count(metrics.CounterDegradations, 1)
		pres.Degraded = true
	}
	b := sr.Bounds
	pres.Dims = metrics.Dims{W: b.Dy(), H: b.Dz(), D: b.Dx()}
	pres.Volume = pres.Dims.Volume()
	return nil
}

// CompressionRatio returns the summed canonical volume over the combined
// final volume (see Result.CompressionRatio).
func (pres *PartitionedResult) CompressionRatio() float64 {
	if pres.Volume == 0 {
		return 0
	}
	return float64(pres.CanonicalVolume+pres.BoxVolume) / float64(pres.Volume)
}

// Verify re-checks the structural guarantees of every layer: each part's
// ordinary Result.Verify, pairwise slab disjointness, and — when seams
// were routed — the seam nets' structural legality and completeness
// (route.VerifySeams). Like Result.Verify, a degraded stitching fails.
func (pres *PartitionedResult) Verify() error {
	for i, part := range pres.Parts {
		if part == nil {
			continue
		}
		if err := part.Verify(); err != nil {
			return fmt.Errorf("tqec: part %d: %w", i, err)
		}
	}
	for i := range pres.Slabs {
		for j := i + 1; j < len(pres.Slabs); j++ {
			if pres.Slabs[i].Intersects(pres.Slabs[j]) {
				return fmt.Errorf("tqec: slabs %d and %d overlap: %v, %v", i, j, pres.Slabs[i], pres.Slabs[j])
			}
		}
	}
	if pres.SeamRouting != nil {
		if err := route.VerifySeams(pres.Slabs, pres.SeamNets, pres.SeamRouting); err != nil {
			return err
		}
	}
	return nil
}

// mergeBreakdown folds src's stage durations and event counters into dst.
func mergeBreakdown(dst, src *metrics.Breakdown) {
	for _, st := range src.Stages() {
		dst.Add(st, src.Get(st))
	}
	for _, cn := range src.Counters() {
		dst.Count(cn, src.Counter(cn))
	}
}
