package geom

import (
	"testing"
	"testing/quick"
)

func TestAxisString(t *testing.T) {
	if AxisX.String() != "x" || AxisY.String() != "y" || AxisZ.String() != "z" {
		t.Fatalf("axis names: %v %v %v", AxisX, AxisY, AxisZ)
	}
	if Axis(9).String() != "Axis(9)" {
		t.Fatalf("unknown axis: %v", Axis(9))
	}
}

func TestPointArithmetic(t *testing.T) {
	p := Pt(1, 2, 3)
	q := Pt(4, -1, 2)
	if got := p.Add(q); got != Pt(5, 1, 5) {
		t.Errorf("Add: %v", got)
	}
	if got := p.Sub(q); got != Pt(-3, 3, 1) {
		t.Errorf("Sub: %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4, 6) {
		t.Errorf("Scale: %v", got)
	}
	if got := p.Manhattan(q); got != 3+3+1 {
		t.Errorf("Manhattan: %d", got)
	}
	if p.String() != "(1,2,3)" {
		t.Errorf("String: %s", p.String())
	}
}

func TestPointAxisAccess(t *testing.T) {
	p := Pt(7, 8, 9)
	if p.Axis(AxisX) != 7 || p.Axis(AxisY) != 8 || p.Axis(AxisZ) != 9 {
		t.Fatalf("Axis access: %v", p)
	}
	if got := p.WithAxis(AxisY, 0); got != Pt(7, 0, 9) {
		t.Errorf("WithAxis y: %v", got)
	}
	if got := p.WithAxis(AxisX, -1); got != Pt(-1, 8, 9) {
		t.Errorf("WithAxis x: %v", got)
	}
	if got := p.WithAxis(AxisZ, 5); got != Pt(7, 8, 5) {
		t.Errorf("WithAxis z: %v", got)
	}
}

func TestDirStepReverse(t *testing.T) {
	p := Pt(0, 0, 0)
	for _, d := range Dirs6 {
		q := p.Step(d)
		if q.Manhattan(p) != 1 {
			t.Errorf("step %v not unit", d)
		}
		if q.Step(d.Reverse()) != p {
			t.Errorf("reverse of %v does not return", d)
		}
	}
}

func TestBoxBasics(t *testing.T) {
	b := NewBox(0, 0, 0, 3, 4, 5)
	if b.Volume() != 60 {
		t.Errorf("volume: %d", b.Volume())
	}
	if b.Dx() != 3 || b.Dy() != 4 || b.Dz() != 5 {
		t.Errorf("dims: %d %d %d", b.Dx(), b.Dy(), b.Dz())
	}
	if b.Size() != Pt(3, 4, 5) {
		t.Errorf("size: %v", b.Size())
	}
	if !b.Contains(Pt(2, 3, 4)) || b.Contains(Pt(3, 0, 0)) {
		t.Errorf("contains edge cases wrong")
	}
	if (Box{}).Volume() != 0 || !(Box{}).Empty() {
		t.Errorf("zero box should be empty")
	}
}

func TestNewBoxNormalizes(t *testing.T) {
	b := NewBox(3, 4, 5, 0, 0, 0)
	if b != NewBox(0, 0, 0, 3, 4, 5) {
		t.Fatalf("normalization failed: %v", b)
	}
}

func TestBoxIntersectUnion(t *testing.T) {
	a := NewBox(0, 0, 0, 4, 4, 4)
	b := NewBox(2, 2, 2, 6, 6, 6)
	if !a.Intersects(b) {
		t.Fatal("should intersect")
	}
	got := a.Intersect(b)
	if got != NewBox(2, 2, 2, 4, 4, 4) {
		t.Errorf("intersect: %v", got)
	}
	u := a.Union(b)
	if u != NewBox(0, 0, 0, 6, 6, 6) {
		t.Errorf("union: %v", u)
	}
	c := NewBox(10, 10, 10, 11, 11, 11)
	if a.Intersects(c) {
		t.Error("disjoint boxes reported intersecting")
	}
	if !a.Intersect(c).Empty() {
		t.Error("intersection of disjoint boxes not empty")
	}
}

func TestBoxTouchingDoNotIntersect(t *testing.T) {
	a := NewBox(0, 0, 0, 2, 2, 2)
	b := NewBox(2, 0, 0, 4, 2, 2) // face-adjacent
	if a.Intersects(b) {
		t.Fatal("face-adjacent boxes must not intersect (half-open)")
	}
}

func TestBoxUnionEmpty(t *testing.T) {
	a := NewBox(1, 1, 1, 2, 2, 2)
	if a.Union(Box{}) != a || (Box{}).Union(a) != a {
		t.Fatal("union with empty must be identity")
	}
}

func TestBoxContainsBox(t *testing.T) {
	a := NewBox(0, 0, 0, 5, 5, 5)
	if !a.ContainsBox(NewBox(1, 1, 1, 4, 4, 4)) {
		t.Error("inner box should be contained")
	}
	if a.ContainsBox(NewBox(1, 1, 1, 6, 4, 4)) {
		t.Error("overhanging box should not be contained")
	}
	if !a.ContainsBox(Box{}) {
		t.Error("empty box is contained in everything")
	}
}

func TestBoxExpand(t *testing.T) {
	a := NewBox(2, 2, 2, 4, 4, 4)
	if got := a.Expand(1); got != NewBox(1, 1, 1, 5, 5, 5) {
		t.Errorf("expand: %v", got)
	}
	if got := a.Expand(-1); !got.Empty() {
		t.Errorf("collapsed expand should be empty: %v", got)
	}
	if !(Box{}).Expand(3).Empty() {
		t.Error("expanding empty box must stay empty")
	}
}

func TestBoxTranslateCenter(t *testing.T) {
	a := NewBox(0, 0, 0, 3, 3, 3)
	if got := a.Translate(Pt(1, 2, 3)); got != NewBox(1, 2, 3, 4, 5, 6) {
		t.Errorf("translate: %v", got)
	}
	if c := a.Center(); c != Pt(1, 1, 1) {
		t.Errorf("center: %v", c)
	}
}

func TestBoundingBox(t *testing.T) {
	got := BoundingBox([]Box{
		NewBox(0, 0, 0, 1, 1, 1),
		NewBox(5, 5, 5, 6, 6, 6),
		{},
	})
	if got != NewBox(0, 0, 0, 6, 6, 6) {
		t.Fatalf("bounding box: %v", got)
	}
}

func TestSegmentCells(t *testing.T) {
	s := Segment{Pt(0, 0, 0), Pt(0, 3, 0)}
	if !s.Valid() {
		t.Fatal("segment should be valid")
	}
	cells := s.Cells()
	if len(cells) != 4 || cells[0] != Pt(0, 0, 0) || cells[3] != Pt(0, 3, 0) {
		t.Fatalf("cells: %v", cells)
	}
	if s.Len() != 4 {
		t.Errorf("len: %d", s.Len())
	}
	if s.Bounds() != NewBox(0, 0, 0, 1, 4, 1) {
		t.Errorf("bounds: %v", s.Bounds())
	}
	diag := Segment{Pt(0, 0, 0), Pt(1, 1, 0)}
	if diag.Valid() {
		t.Error("diagonal segment reported valid")
	}
	pointSeg := Segment{Pt(2, 2, 2), Pt(2, 2, 2)}
	if pointSeg.Len() != 1 || len(pointSeg.Cells()) != 1 {
		t.Error("degenerate segment should be one cell")
	}
}

func TestPathValidSegments(t *testing.T) {
	p := Path{Pt(0, 0, 0), Pt(1, 0, 0), Pt(2, 0, 0), Pt(2, 1, 0), Pt(2, 2, 0)}
	if !p.Valid() {
		t.Fatal("path should be valid")
	}
	segs := p.Segments()
	if len(segs) != 2 {
		t.Fatalf("segments: %v", segs)
	}
	if segs[0] != (Segment{Pt(0, 0, 0), Pt(2, 0, 0)}) {
		t.Errorf("seg0: %v", segs[0])
	}
	if segs[1] != (Segment{Pt(2, 0, 0), Pt(2, 2, 0)}) {
		t.Errorf("seg1: %v", segs[1])
	}
	bad := Path{Pt(0, 0, 0), Pt(2, 0, 0)}
	if bad.Valid() {
		t.Error("gapped path reported valid")
	}
	if Path(nil).Segments() != nil {
		t.Error("empty path should have nil segments")
	}
}

func TestPathReverseBounds(t *testing.T) {
	p := Path{Pt(0, 0, 0), Pt(0, 1, 0), Pt(0, 1, 1)}
	b := p.Bounds()
	if b != NewBox(0, 0, 0, 1, 2, 2) {
		t.Errorf("bounds: %v", b)
	}
	p.Reverse()
	if p[0] != Pt(0, 1, 1) || p[2] != Pt(0, 0, 0) {
		t.Errorf("reverse: %v", p)
	}
}

// Property: Union is commutative, associative-enough for bounding, and
// always contains both operands.
func TestQuickBoxUnionContains(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz, cx, cy, cz, dx, dy, dz int8) bool {
		a := NewBox(int(ax), int(ay), int(az), int(bx), int(by), int(bz))
		b := NewBox(int(cx), int(cy), int(cz), int(dx), int(dy), int(dz))
		u := a.Union(b)
		return u == b.Union(a) && u.ContainsBox(a) && u.ContainsBox(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the intersection is contained in both operands and Intersects
// agrees with non-emptiness of Intersect.
func TestQuickBoxIntersect(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz, cx, cy, cz, dx, dy, dz int8) bool {
		a := NewBox(int(ax), int(ay), int(az), int(bx), int(by), int(bz))
		b := NewBox(int(cx), int(cy), int(cz), int(dx), int(dy), int(dz))
		i := a.Intersect(b)
		if a.Intersects(b) != !i.Empty() {
			return false
		}
		return a.ContainsBox(i) && b.ContainsBox(i)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Manhattan distance is a metric (symmetry + triangle inequality).
func TestQuickManhattanMetric(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz, cx, cy, cz int8) bool {
		a := Pt(int(ax), int(ay), int(az))
		b := Pt(int(bx), int(by), int(bz))
		c := Pt(int(cx), int(cy), int(cz))
		if a.Manhattan(b) != b.Manhattan(a) {
			return false
		}
		if a.Manhattan(a) != 0 {
			return false
		}
		return a.Manhattan(c) <= a.Manhattan(b)+b.Manhattan(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a segment's cells form a valid path whose bounds equal the
// segment bounds.
func TestQuickSegmentCellsPath(t *testing.T) {
	f := func(x, y, z int8, axis uint8, length uint8) bool {
		a := Pt(int(x), int(y), int(z))
		b := a.WithAxis(Axis(axis%3), a.Axis(Axis(axis%3))+int(length%20))
		s := Segment{a, b}
		p := Path(s.Cells())
		return p.Valid() && p.Bounds() == s.Bounds() && p.Len() == s.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
