package place

import (
	"testing"

	"repro/internal/bridge"
	"repro/internal/canonical"
	"repro/internal/cluster"
	"repro/internal/decompose"
	"repro/internal/icm"
	"repro/internal/modular"
	"repro/internal/qc"
)

func pipeline(t testing.TB, c *qc.Circuit) (*cluster.Clustering, []bridge.Net) {
	t.Helper()
	r, err := decompose.Decompose(c)
	if err != nil {
		t.Fatal(err)
	}
	ic, err := icm.FromDecomposed(r.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	d, err := canonical.Build(ic)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := modular.Build(d)
	if err != nil {
		t.Fatal(err)
	}
	br, err := bridge.Run(nl, true)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.Build(nl, cluster.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return cl, br.Nets
}

func quickOpts(iters int) Options {
	o := DefaultOptions()
	o.Iterations = iters
	o.Seed = 1
	return o
}

func TestPlaceSmallCircuit(t *testing.T) {
	c := qc.New("small", 3)
	c.Append(qc.CNOT(0, 1), qc.CNOT(1, 2), qc.CNOT(0, 2))
	cl, nets := pipeline(t, c)
	p, err := Run(cl, nets, quickOpts(100))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckNoOverlap(); err != nil {
		t.Fatal(err)
	}
	if err := p.CheckTimeOrdering(); err != nil {
		t.Fatal(err)
	}
	w, h, d := p.Dims()
	if w <= 0 || h <= 0 || d <= 0 {
		t.Fatalf("degenerate dims %d×%d×%d", w, h, d)
	}
}

func TestPlaceTGateCircuit(t *testing.T) {
	c := qc.New("tg", 2)
	c.Append(qc.T(0), qc.CNOT(0, 1), qc.T(0), qc.T(1))
	cl, nets := pipeline(t, c)
	p, err := Run(cl, nets, quickOpts(200))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.CheckNoOverlap(); err != nil {
		t.Fatal(err)
	}
	if err := p.CheckTimeOrdering(); err != nil {
		t.Fatal(err)
	}
}

func TestTSLResizeMakesEqualFootprints(t *testing.T) {
	c := qc.New("tsl", 1)
	c.Append(qc.T(0), qc.T(0), qc.T(0))
	cl, nets := pipeline(t, c)
	e, err := newEngine(cl, nets, quickOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	tsl := cl.TSLs[0]
	if len(tsl) != 3 {
		t.Fatalf("tsl: %v", tsl)
	}
	first := e.sizes[tsl[0]]
	for _, id := range tsl[1:] {
		if e.sizes[id] != first {
			t.Fatalf("TSL footprints differ: %v vs %v", e.sizes[id], first)
		}
	}
}

func TestSAImprovesOrMatchesInitialCost(t *testing.T) {
	spec, err := qc.BenchmarkByName("4gt10-v1_81")
	if err != nil {
		t.Fatal(err)
	}
	cl, nets := pipeline(t, mustGen(t, spec))

	e0, err := newEngine(cl, nets, quickOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	initial := e0.cost()

	p, err := Run(cl, nets, quickOpts(400))
	if err != nil {
		t.Fatal(err)
	}
	if p.Cost > initial+1e-9 {
		t.Fatalf("SA made things worse: %.4f → %.4f", initial, p.Cost)
	}
	t.Logf("cost %.4f → %.4f over 400 iterations", initial, p.Cost)
}

func TestPlacementDeterministicForSeed(t *testing.T) {
	c := qc.New("det", 2)
	c.Append(qc.T(0), qc.CNOT(0, 1))
	cl1, nets1 := pipeline(t, c)
	p1, err := Run(cl1, nets1, quickOpts(150))
	if err != nil {
		t.Fatal(err)
	}
	cl2, nets2 := pipeline(t, c)
	p2, err := Run(cl2, nets2, quickOpts(150))
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Pos) != len(p2.Pos) {
		t.Fatal("different super counts")
	}
	for i := range p1.Pos {
		if p1.Pos[i] != p2.Pos[i] {
			t.Fatalf("super %d: %v vs %v", i, p1.Pos[i], p2.Pos[i])
		}
	}
}

func TestPinPositionsOutsideBodies(t *testing.T) {
	c := qc.New("pins", 3)
	c.Append(qc.CNOT(0, 1), qc.CNOT(1, 2))
	cl, nets := pipeline(t, c)
	p, err := Run(cl, nets, quickOpts(50))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nets {
		for _, pid := range []int{n.PinA, n.PinB} {
			pos, err := p.PinPos(pid)
			if err != nil {
				t.Fatal(err)
			}
			for m := range cl.NL.Modules {
				if p.ModuleBox(m).Contains(pos) {
					t.Fatalf("pin %d at %v inside module %d body", pid, pos, m)
				}
			}
		}
	}
}

func TestTierAssignmentConsistent(t *testing.T) {
	spec, err := qc.BenchmarkByName("4gt10-v1_81")
	if err != nil {
		t.Fatal(err)
	}
	cl, nets := pipeline(t, mustGen(t, spec))
	p, err := Run(cl, nets, quickOpts(100))
	if err != nil {
		t.Fatal(err)
	}
	if p.Tiers < 1 {
		t.Fatalf("tiers: %d", p.Tiers)
	}
	for s, tier := range p.TierOf {
		if tier < 0 || tier >= p.Tiers {
			t.Fatalf("super %d on tier %d of %d", s, tier, p.Tiers)
		}
	}
	t.Logf("%d supers on %d tiers", len(cl.Supers), p.Tiers)
}

func TestRestartsPickBest(t *testing.T) {
	spec, err := qc.BenchmarkByName("4gt10-v1_81")
	if err != nil {
		t.Fatal(err)
	}
	cl, nets := pipeline(t, mustGen(t, spec))
	single, err := Run(cl, nets, quickOpts(300))
	if err != nil {
		t.Fatal(err)
	}
	multiOpts := quickOpts(300)
	multiOpts.Restarts = 4
	multi, err := Run(cl, nets, multiOpts)
	if err != nil {
		t.Fatal(err)
	}
	// The multi-start result includes the single chain's seed, so it can
	// only be at least as good.
	if multi.Cost > single.Cost+1e-9 {
		t.Fatalf("multi-start cost %.4f worse than single %.4f", multi.Cost, single.Cost)
	}
	if err := multi.CheckNoOverlap(); err != nil {
		t.Fatal(err)
	}
	if err := multi.CheckTimeOrdering(); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsEmpty(t *testing.T) {
	cl := &cluster.Clustering{}
	if _, err := Run(cl, nil, quickOpts(10)); err == nil {
		t.Fatal("empty clustering accepted")
	}
}

func TestTierPitchOption(t *testing.T) {
	spec, err := qc.BenchmarkByName("4gt10-v1_81")
	if err != nil {
		t.Fatal(err)
	}
	cl3, nets3 := pipeline(t, mustGen(t, spec))
	o3 := quickOpts(100)
	p3, err := Run(cl3, nets3, o3)
	if err != nil {
		t.Fatal(err)
	}
	cl4, nets4 := pipeline(t, mustGen(t, spec))
	o4 := quickOpts(100)
	o4.TierPitch = 4
	p4, err := Run(cl4, nets4, o4)
	if err != nil {
		t.Fatal(err)
	}
	if p3.Tiers < 2 || p4.Tiers < 2 {
		t.Skip("need multiple tiers to observe pitch")
	}
	// Tier bases must be spaced by the pitch.
	zs3 := map[int]bool{}
	for _, pos := range p3.Pos {
		zs3[pos.Z] = true
	}
	for z := range zs3 {
		if (z-1)%DefaultTierPitch != 0 {
			t.Fatalf("pitch-3 tier base at z=%d", z)
		}
	}
	for _, pos := range p4.Pos {
		if (pos.Z-1)%4 != 0 {
			t.Fatalf("pitch-4 tier base at z=%d", pos.Z)
		}
	}
	// Wider pitch yields a taller placement for the same tier count.
	_, h3, _ := p3.Dims()
	_, h4, _ := p4.Dims()
	if p3.Tiers == p4.Tiers && h4 <= h3 {
		t.Fatalf("pitch 4 should be taller: %d vs %d", h4, h3)
	}
}

func TestMarginSeparatesBodies(t *testing.T) {
	spec, err := qc.BenchmarkByName("4gt10-v1_81")
	if err != nil {
		t.Fatal(err)
	}
	cl, nets := pipeline(t, mustGen(t, spec))
	o := quickOpts(100)
	o.Margin = 2
	p, err := Run(cl, nets, o)
	if err != nil {
		t.Fatal(err)
	}
	// With margin 2 every pair of same-tier supers is ≥ 4 apart in x or y.
	for a := 0; a < len(cl.Supers); a++ {
		for b := a + 1; b < len(cl.Supers); b++ {
			if p.TierOf[a] != p.TierOf[b] {
				continue
			}
			ba, bb := p.SuperBox(a), p.SuperBox(b)
			if ba.Expand(2).Intersects(bb) {
				t.Fatalf("supers %d and %d closer than the margin: %v %v", a, b, ba, bb)
			}
		}
	}
}

func TestAspectRatioPressure(t *testing.T) {
	// With gamma heavily weighted, the result should lean toward the
	// target aspect ratio rather than away from it.
	spec, err := qc.BenchmarkByName("4gt10-v1_81")
	if err != nil {
		t.Fatal(err)
	}
	cl, nets := pipeline(t, mustGen(t, spec))
	o := quickOpts(300)
	o.Gamma = 2.0
	p, err := Run(cl, nets, o)
	if err != nil {
		t.Fatal(err)
	}
	w, h, _ := p.Dims()
	r := float64(w) / float64(h)
	if r > 4.0 || r < 0.05 {
		t.Fatalf("aspect ratio %0.2f wildly off target 0.5", r)
	}
}

// mustGen generates a benchmark circuit, failing the test on error.
func mustGen(tb testing.TB, spec qc.BenchmarkSpec) *qc.Circuit {
	tb.Helper()
	c, err := spec.Generate()
	if err != nil {
		tb.Fatal(err)
	}
	return c
}
