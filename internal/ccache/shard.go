package ccache

import "context"

// Store is the cache surface the compile service consumes. Both the
// single-mutex Cache and the Sharded wrapper implement it, so the server
// can swap between them with a configuration knob.
type Store interface {
	// Get returns the cached payload for key, if any.
	Get(key string) ([]byte, bool)
	// Put inserts a payload directly (crash recovery; no hit/miss).
	Put(key string, val []byte)
	// Do returns the payload for key, computing it at most once across
	// all concurrent callers of the store.
	Do(ctx context.Context, key string, compute func() ([]byte, error)) ([]byte, Outcome, error)
	// Stats snapshots the store's counters.
	Stats() Stats
}

var (
	_ Store = (*Cache)(nil)
	_ Store = (*Sharded)(nil)
)

// Sharded is a content-addressed cache split into independently-locked
// shards by a consistent hash of the key, so lookups under concurrent load
// stop serializing on a single mutex. Keys are content addresses
// (tqec.CacheKey SHA-256 hex), so the hash spreads uniformly. Single-flight
// deduplication is preserved per shard, which is exactly per key: a key
// always maps to the same shard, so N concurrent Do calls for one address
// still cost one compute.
type Sharded struct {
	shards []*Cache
}

// NewSharded returns a store of n independently-locked shards splitting a
// total payload budget of maxBytes evenly. n is clamped to at least 1; a
// non-positive budget disables caching (every shard gets a zero budget)
// while keeping single-flight deduplication.
func NewSharded(n int, maxBytes int64) *Sharded {
	if n < 1 {
		n = 1
	}
	per := maxBytes / int64(n)
	s := &Sharded{shards: make([]*Cache, n)}
	for i := range s.shards {
		s.shards[i] = New(per)
	}
	return s
}

// shard maps a key to its owning shard by FNV-1a hash.
func (s *Sharded) shard(key string) *Cache {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return s.shards[h%uint32(len(s.shards))]
}

// Shards returns the number of shards.
func (s *Sharded) Shards() int { return len(s.shards) }

// Get returns the cached payload for key from its shard.
func (s *Sharded) Get(key string) ([]byte, bool) { return s.shard(key).Get(key) }

// Put inserts a payload into the key's shard.
func (s *Sharded) Put(key string, val []byte) { s.shard(key).Put(key, val) }

// Do runs the single-flight protocol on the key's shard.
func (s *Sharded) Do(ctx context.Context, key string, compute func() ([]byte, error)) ([]byte, Outcome, error) {
	return s.shard(key).Do(ctx, key, compute)
}

// Stats unions the per-shard counters into one snapshot. MaxBytes is the
// sum of the per-shard budgets (the usable total). Each shard maintains
// Hits+Misses == Lookups, so the union does too.
func (s *Sharded) Stats() Stats {
	var out Stats
	for _, c := range s.shards {
		st := c.Stats()
		out.Lookups += st.Lookups
		out.Hits += st.Hits
		out.Misses += st.Misses
		out.Shared += st.Shared
		out.Evictions += st.Evictions
		out.Uncacheable += st.Uncacheable
		out.Entries += st.Entries
		out.Bytes += st.Bytes
		out.MaxBytes += st.MaxBytes
	}
	return out
}
