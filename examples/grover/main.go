// Grover: compile one iteration of Grover search on n qubits — the
// unstructured-database-search workload the paper's introduction motivates
// — through the bridge-based compression flow, and report the fault-
// tolerant resource estimate (T count, distillation volume, compressed
// space-time volume).
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/qc"
	"repro/tqec"
)

// groverIteration builds one Grover iteration marking the all-ones item:
// oracle (multi-controlled Z up to basis change) followed by the diffusion
// operator, everything expressed over the H/X/CNOT/Toffoli/MCT vocabulary
// the decomposer lowers to the TQEC gate set.
func groverIteration(n int) *qc.Circuit {
	c := qc.New(fmt.Sprintf("grover%d", n), n)
	// Initial superposition.
	for q := 0; q < n; q++ {
		c.Append(qc.H(q))
	}
	// Oracle for |11…1⟩: Z on the last qubit controlled on the rest,
	// via H-conjugated (multi-controlled) NOT.
	mcx := func() {
		switch n {
		case 2:
			c.Append(qc.CNOT(0, 1))
		case 3:
			c.Append(qc.Toffoli(0, 1, 2))
		default:
			ctrls := make([]int, n-1)
			for i := range ctrls {
				ctrls[i] = i
			}
			c.Append(qc.MCT(ctrls, n-1))
		}
	}
	c.Append(qc.H(n - 1))
	mcx()
	c.Append(qc.H(n - 1))
	// Diffusion: H X (controlled-Z) X H on every qubit.
	for q := 0; q < n; q++ {
		c.Append(qc.H(q), qc.NOT(q))
	}
	c.Append(qc.H(n - 1))
	mcx()
	c.Append(qc.H(n - 1))
	for q := 0; q < n; q++ {
		c.Append(qc.NOT(q), qc.H(q))
	}
	return c
}

func main() {
	n := flag.Int("qubits", 3, "search register width")
	seed := flag.Int64("seed", 1, "placement seed")
	flag.Parse()
	if *n < 2 {
		log.Fatal("need at least 2 qubits")
	}

	circuit := groverIteration(*n)
	fmt.Printf("Grover iteration on %d qubits: %d gates, logical depth %d\n",
		*n, circuit.NumGates(), circuit.Depth())

	opts := tqec.DefaultOptions()
	opts.Place.Seed = *seed
	res, err := tqec.Compile(circuit, opts)
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		log.Fatal(err)
	}

	s := res.ICM.Stats()
	fmt.Printf("fault-tolerant cost: T count %d, %d |A⟩ + %d |Y⟩ distillations (box volume %d)\n",
		res.Decomposed.TCount(), s.NumA, s.NumY, res.BoxVolume)
	fmt.Printf("ICM: %d lines, %d CNOTs → %d modules, %d nets after bridging\n",
		s.Lines, s.CNOTs, len(res.Netlist.Modules), len(res.Bridging.Nets))
	fmt.Printf("compressed: %s (canonical + boxes %d, ratio %.2f), %d/%d nets routed\n",
		res.Dims, res.CanonicalVolume+res.BoxVolume, res.CompressionRatio(),
		len(res.Routing.Routes), len(res.Bridging.Nets))
}
