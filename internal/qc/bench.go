package qc

import (
	"fmt"
	"math/rand"
)

// BenchmarkSpec describes one of the paper's RevLib workloads in terms of
// its reversible gate mix. The RevLib archive is not redistributable here,
// so Generate rebuilds a circuit of the published scale: the gate mix is
// calibrated so that gate decomposition reproduces Table I's derived
// statistics (#Qubits_d, #CNOTs, #|Y⟩, #|A⟩) — see DESIGN.md for the
// calibration identities (#|A⟩ = 7·#Toffoli, #Qubits_d ≈ #Qubits_o +
// 6·#|A⟩, #CNOTs ≈ 8·#|A⟩).
type BenchmarkSpec struct {
	Name     string
	Qubits   int // #Qubits_o
	Toffolis int
	CNOTs    int
	NOTs     int
	Seed     int64
}

// Gates returns the total reversible gate count (the paper's "#Gates").
func (s BenchmarkSpec) Gates() int { return s.Toffolis + s.CNOTs + s.NOTs }

// Benchmarks lists the paper's eight RevLib benchmarks in Table I order.
// Toffoli counts derive from #|A⟩/7; CNOT/NOT counts fill the published
// total gate count while matching the published decomposed-CNOT count as
// closely as the calibration permits.
var Benchmarks = []BenchmarkSpec{
	{Name: "4gt10-v1_81", Qubits: 5, Toffolis: 3, CNOTs: 0, NOTs: 3, Seed: 0x4610},
	{Name: "4gt4-v0_73", Qubits: 5, Toffolis: 6, CNOTs: 5, NOTs: 6, Seed: 0x4440},
	{Name: "rd84_142", Qubits: 15, Toffolis: 21, CNOTs: 0, NOTs: 7, Seed: 0x8414},
	{Name: "hwb5_53", Qubits: 5, Toffolis: 31, CNOTs: 0, NOTs: 24, Seed: 0x0553},
	{Name: "add16_174", Qubits: 49, Toffolis: 32, CNOTs: 0, NOTs: 32, Seed: 0xadd1},
	{Name: "sym6_145", Qubits: 7, Toffolis: 36, CNOTs: 0, NOTs: 0, Seed: 0x6145},
	{Name: "cycle17_3_112", Qubits: 20, Toffolis: 45, CNOTs: 0, NOTs: 3, Seed: 0xc173},
	{Name: "ham15_107", Qubits: 15, Toffolis: 89, CNOTs: 0, NOTs: 43, Seed: 0x1510},
}

// BenchmarkByName returns the spec with the given name.
func BenchmarkByName(name string) (BenchmarkSpec, error) {
	for _, s := range Benchmarks {
		if s.Name == name {
			return s, nil
		}
	}
	return BenchmarkSpec{}, fmt.Errorf("unknown benchmark %q", name)
}

// Validate checks that the spec's gate mix is realizable on its qubit
// count (a Toffoli needs 3 distinct operands, a CNOT 2, a NOT 1).
func (s BenchmarkSpec) Validate() error {
	need := 0
	switch {
	case s.Toffolis > 0:
		need = 3
	case s.CNOTs > 0:
		need = 2
	case s.NOTs > 0:
		need = 1
	}
	if s.Qubits < need {
		return fmt.Errorf("benchmark %q: gate mix needs %d qubits, spec has %d", s.Name, need, s.Qubits)
	}
	if s.Toffolis < 0 || s.CNOTs < 0 || s.NOTs < 0 {
		return fmt.Errorf("benchmark %q: negative gate count", s.Name)
	}
	return nil
}

// Generate builds a deterministic reversible circuit with the spec's gate
// mix. Gate kinds are interleaved pseudo-randomly (seeded) and operands are
// drawn uniformly without repetition within a gate, mimicking the control/
// target diversity of the original RevLib netlists. An unrealizable spec
// (e.g. Toffolis on fewer than 3 qubits) is rejected with an error.
func (s BenchmarkSpec) Generate() (*Circuit, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.Seed))
	c := New(s.Name, s.Qubits)
	// Build the multiset of gate kinds, then shuffle for interleaving.
	kinds := make([]GateKind, 0, s.Gates())
	for i := 0; i < s.Toffolis; i++ {
		kinds = append(kinds, GateToffoli)
	}
	for i := 0; i < s.CNOTs; i++ {
		kinds = append(kinds, GateCNOT)
	}
	for i := 0; i < s.NOTs; i++ {
		kinds = append(kinds, GateNOT)
	}
	rng.Shuffle(len(kinds), func(i, j int) { kinds[i], kinds[j] = kinds[j], kinds[i] })
	for _, k := range kinds {
		switch k {
		case GateToffoli:
			q, err := pickDistinct(rng, s.Qubits, 3)
			if err != nil {
				return nil, fmt.Errorf("benchmark %q: %w", s.Name, err)
			}
			c.Append(Toffoli(q[0], q[1], q[2]))
		case GateCNOT:
			q, err := pickDistinct(rng, s.Qubits, 2)
			if err != nil {
				return nil, fmt.Errorf("benchmark %q: %w", s.Name, err)
			}
			c.Append(CNOT(q[0], q[1]))
		default:
			c.Append(NOT(rng.Intn(s.Qubits)))
		}
	}
	return c, nil
}

// pickDistinct draws k distinct values from [0,n); k > n is rejected.
func pickDistinct(rng *rand.Rand, n, k int) ([]int, error) {
	if k > n || n <= 0 {
		return nil, fmt.Errorf("pickDistinct: cannot draw %d distinct values from [0,%d)", k, n)
	}
	picked := map[int]bool{}
	out := make([]int, 0, k)
	for len(out) < k {
		v := rng.Intn(n)
		if !picked[v] {
			picked[v] = true
			out = append(out, v)
		}
	}
	return out, nil
}
