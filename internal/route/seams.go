package route

import (
	"context"
	"fmt"

	"repro/internal/bridge"
	"repro/internal/faults"
	"repro/internal/geom"
	"repro/internal/rtree"
)

// SeamNet is a two-terminal net between explicit lattice cells, used by
// the partitioned compiler to stitch sub-circuit slabs: each seam CNOT
// cut by the qubit partitioner becomes one net whose endpoints sit on the
// boundary faces of the two slabs it connects. ID is the caller's label
// (the seam index) and is echoed in diagnostics; results are keyed by the
// net's position in the slice passed to RouteSeams.
type SeamNet struct {
	ID   int
	A, B geom.Point
}

// RouteSeams routes point-to-point nets through the free space around a
// set of obstacle boxes using the same negotiated-A* machinery as the
// placement router (rip-up and re-route, congestion history, conflict-
// graph batched first pass, degradation fallback). Unlike RunContext it
// needs no placement: obstacles are given as explicit boxes (the
// partitioned compiler passes each slab's translated routing bounds) and
// pins as explicit cells, which must be unique and outside every
// obstacle — there is no rehoming. base is the extent the result's
// Bounds must cover even if no route leaves it (the union of all slabs).
//
// Friend-net deformation and Steiner grouping are forced off: seam pins
// are pairwise distinct, so there is nothing to group and every net is a
// plain two-terminal route. The result is deterministic for identical
// inputs and options.
func RouteSeams(ctx context.Context, obstacles []geom.Box, nets []SeamNet, base geom.Box, opts Options) (*Result, error) {
	if opts.MaxIterations < 0 {
		return nil, fmt.Errorf("route: negative iterations")
	}
	if opts.MaxExpansions <= 0 {
		opts.MaxExpansions = 200000
	}
	opts.FriendNets = false
	opts.Steiner = false
	if err := faults.Canceled(ctx); err != nil {
		return nil, fmt.Errorf("route: %w", err)
	}
	bnets := make([]bridge.Net, len(nets))
	for i := range nets {
		bnets[i] = bridge.Net{ID: i, PinA: 2 * i, PinB: 2*i + 1}
	}
	r := &router{
		nets:        bnets,
		opts:        opts,
		ctx:         ctx,
		static:      rtree.New(),
		pinCell:     map[int]geom.Point{},
		routes:      map[int]geom.Path{},
		routeBounds: map[int]geom.Box{},
		netTree:     rtree.New(),
		friends:     map[int][]int{},
		eps:         make([]netEndpoints, len(bnets)),
		pinRev:      map[int]uint64{},
		dirtyPins:   map[int]bool{},
		result:      &Result{Routes: map[int]geom.Path{}},
	}
	if err := r.buildSeams(obstacles, nets, base); err != nil {
		return nil, err
	}
	r.route()
	if r.ctxErr != nil {
		return nil, fmt.Errorf("route: %w", r.ctxErr)
	}
	r.finish()
	return r.result, nil
}

// buildSeams is the placement-free analogue of build: obstacles land in
// the static R-tree and grid verbatim, and pin cells are taken as given
// (erroring instead of rehoming when a pin collides with an obstacle or
// another pin, since seam pins are chosen by the stitcher on planes it
// knows to be free).
func (r *router) buildSeams(obstacles []geom.Box, nets []SeamNet, base geom.Box) error {
	staticCells := map[geom.Point]bool{}
	for _, b := range obstacles {
		if b.Volume() <= 0 {
			continue
		}
		r.static.Insert(b, -1)
		for x := b.Min.X; x < b.Max.X; x++ {
			for y := b.Min.Y; y < b.Max.Y; y++ {
				for z := b.Min.Z; z < b.Max.Z; z++ {
					staticCells[geom.Pt(x, y, z)] = true
				}
			}
		}
	}
	cellPin := map[geom.Point]int{}
	for i, sn := range nets {
		for _, end := range []struct {
			pin int
			c   geom.Point
		}{{2 * i, sn.A}, {2*i + 1, sn.B}} {
			if staticCells[end.c] {
				return fmt.Errorf("route: seam %d: pin cell %v inside an obstacle", sn.ID, end.c)
			}
			if prev, taken := cellPin[end.c]; taken {
				return fmt.Errorf("route: seam %d: pin cell %v already used by seam %d", sn.ID, end.c, nets[prev/2].ID)
			}
			r.pinCell[end.pin] = end.c
			cellPin[end.c] = end.pin
		}
		r.friends[2*i] = append(r.friends[2*i], i)
		r.friends[2*i+1] = append(r.friends[2*i+1], i)
	}
	r.base = base
	for _, b := range obstacles {
		r.base = r.base.Union(b)
	}
	bounds := r.base
	for _, c := range r.pinCell {
		bounds = bounds.UnionPoint(c)
	}
	r.world = bounds.Expand(6 + 2*r.opts.MaxIterations*r.opts.ExpandStep)
	r.grid = newGrid(r.world)
	for c := range staticCells {
		r.grid.setStatic(c)
	}
	for c, pid := range cellPin {
		r.grid.setPin(c, pid)
	}
	return nil
}

// VerifySeams checks a RouteSeams result: every net routed (none failed
// or fallback-degraded), every path connected, endpoint-anchored at its
// net's two pin cells, collision-free against the obstacle boxes, and
// cell-disjoint from every other path (seam nets share no pins, so no
// friend-sharing exemption applies). Structural violations are reported
// first; a structurally sound but incomplete routing fails with an error
// wrapping faults.ErrUnroutable, and a degraded one with
// faults.ErrDegraded.
func VerifySeams(obstacles []geom.Box, nets []SeamNet, res *Result) error {
	static := rtree.New()
	for _, b := range obstacles {
		if b.Volume() > 0 {
			static.Insert(b, -1)
		}
	}
	owner := map[geom.Point]int{}
	for i, sn := range nets {
		path, ok := res.Routes[i]
		if !ok {
			continue // reported below via res.Failed
		}
		if len(path) == 0 || !path.Valid() {
			return fmt.Errorf("route: seam %d path disconnected", sn.ID)
		}
		head, tail := path[0], path[len(path)-1]
		if !(head == sn.A && tail == sn.B) && !(head == sn.B && tail == sn.A) {
			return fmt.Errorf("route: seam %d terminals %v..%v, want %v..%v", sn.ID, head, tail, sn.A, sn.B)
		}
		for _, c := range path {
			if static.Intersects(geom.CellBox(c)) {
				return fmt.Errorf("route: seam %d cell %v pierces a slab obstacle", sn.ID, c)
			}
			if prev, used := owner[c]; used {
				return fmt.Errorf("route: seams %d and %d overlap at %v", nets[prev].ID, sn.ID, c)
			}
			owner[c] = i
		}
	}
	if len(res.Failed) > 0 {
		return fmt.Errorf("route: %w: %d seams unrouted: %v", faults.ErrUnroutable, len(res.Failed), res.Failed)
	}
	if res.Degraded || len(res.FallbackNets) > 0 {
		return fmt.Errorf("route: %w: %d fallback-routed seams: %v",
			faults.ErrDegraded, len(res.FallbackNets), res.FallbackNets)
	}
	return nil
}
