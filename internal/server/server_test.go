package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/qc"
	"repro/tqec"
)

// realSrc is a tiny 3-CNOT circuit (the paper's Fig. 4 example) that
// compiles in milliseconds.
const realSrc = ".version 1.0\n.numvars 3\n.variables a b c\n.begin\nt2 a b\nt2 b c\nt2 a c\n.end\n"

// realSrc2 is a distinct circuit for multi-key tests.
const realSrc2 = ".version 1.0\n.numvars 3\n.variables a b c\n.begin\nt3 a b c\n.end\n"

// testConfig keeps compiles fast and queues small.
func testConfig() Config {
	return Config{Workers: 2, QueueDepth: 16, CacheBytes: 1 << 20,
		DefaultTimeout: 30 * time.Second, MaxTimeout: time.Minute}
}

// startServer builds and starts a server whose workers stop with the test.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	s.Start(ctx)
	return s
}

// compileBody builds a request body for the inline circuit source.
func compileBody(t *testing.T, src, name string, opts CompileOptions) []byte {
	t.Helper()
	b, err := json.Marshal(CompileRequest{Real: src, Name: name, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// post performs an in-process request against the handler.
func post(s *Server, path string, body []byte) *httptest.ResponseRecorder {
	w := httptest.NewRecorder()
	r := httptest.NewRequest("POST", path, bytes.NewReader(body))
	s.ServeHTTP(w, r)
	return w
}

func get(s *Server, path string) *httptest.ResponseRecorder {
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
	return w
}

func TestCompileSyncCacheAndDeterminism(t *testing.T) {
	s := startServer(t, testConfig())
	body := compileBody(t, realSrc, "fig4", CompileOptions{Seed: 7, Iterations: 2000})

	w1 := post(s, "/v1/compile", body)
	if w1.Code != 200 {
		t.Fatalf("first compile: %d %s", w1.Code, w1.Body)
	}
	if got := w1.Header().Get("X-Tqecd-Cache"); got != "miss" {
		t.Fatalf("first compile cache header = %q, want miss", got)
	}
	w2 := post(s, "/v1/compile", body)
	if w2.Code != 200 || w2.Header().Get("X-Tqecd-Cache") != "hit" {
		t.Fatalf("second compile: %d, cache %q", w2.Code, w2.Header().Get("X-Tqecd-Cache"))
	}
	if !bytes.Equal(w1.Body.Bytes(), w2.Body.Bytes()) {
		t.Fatal("cached response differs from the original")
	}

	// The served payload must be byte-identical to a direct
	// tqec.CompileContext run with the same seed.
	c, err := qc.ParseReal("fig4", strings.NewReader(realSrc))
	if err != nil {
		t.Fatal(err)
	}
	opts := requestOptions(CompileOptions{Seed: 7, Iterations: 2000})
	res, err := tqec.CompileContext(context.Background(), c, opts)
	if err != nil {
		t.Fatal(err)
	}
	key, err := tqec.CacheKey(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := EncodeResult(key, res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w1.Body.Bytes(), direct) {
		t.Fatalf("served body differs from direct compile:\n served %s\n direct %s", w1.Body, direct)
	}
	if got := w1.Header().Get("X-Tqecd-Cache-Key"); got != key {
		t.Fatalf("cache-key header %q, want %q", got, key)
	}
}

func TestCompileBenchSource(t *testing.T) {
	s := startServer(t, testConfig())
	b, err := json.Marshal(CompileRequest{Bench: "4gt10-v1_81", Options: CompileOptions{Seed: 1, Iterations: 2000}})
	if err != nil {
		t.Fatal(err)
	}
	w := post(s, "/v1/compile", b)
	if w.Code != 200 {
		t.Fatalf("bench compile: %d %s", w.Code, w.Body)
	}
	var resp CompileResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Name != "4gt10-v1_81" || resp.Volume <= 0 {
		t.Fatalf("response %+v", resp)
	}
}

func TestCompileRequestErrors(t *testing.T) {
	s := startServer(t, testConfig())
	cases := []struct {
		name string
		body string
		want int
	}{
		{"bad json", `{`, 400},
		{"unknown field", `{"bogus":1}`, 400},
		{"no source", `{"options":{}}`, 400},
		{"both sources", `{"bench":"x","real":"y"}`, 400},
		{"unknown bench", `{"bench":"no-such-benchmark"}`, 404},
		{"bad real", `{"real":"t2 a b"}`, 400},
		{"trailing data", `{"bench":"4gt10-v1_81"} {"x":1}`, 400},
	}
	for _, c := range cases {
		w := post(s, "/v1/compile", []byte(c.body))
		if w.Code != c.want {
			t.Errorf("%s: status %d, want %d (body %s)", c.name, w.Code, c.want, w.Body)
			continue
		}
		var er ErrorResponse
		if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil || er.Error.Message == "" {
			t.Errorf("%s: error body not structured: %s (%v)", c.name, w.Body, err)
		}
	}
}

func TestCompileDeadlineError(t *testing.T) {
	s := startServer(t, testConfig())
	// A microscopic budget forces ErrCanceled inside the pipeline.
	body := compileBody(t, realSrc, "slow", CompileOptions{Seed: 1, Iterations: 500000, TimeoutMS: 1})
	w := post(s, "/v1/compile", body)
	if w.Code != 504 {
		t.Fatalf("status %d, want 504 (body %s)", w.Code, w.Body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	if er.Error.Sentinel != "canceled" || er.Error.Stage == "" {
		t.Fatalf("error body %+v: want sentinel canceled with a stage tag", er.Error)
	}
}

func TestJobsLifecycle(t *testing.T) {
	s := startServer(t, testConfig())
	body := compileBody(t, realSrc, "fig4", CompileOptions{Seed: 3, Iterations: 2000})

	w := post(s, "/v1/jobs", body)
	if w.Code != 202 {
		t.Fatalf("submit: %d %s", w.Code, w.Body)
	}
	var v JobView
	if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	if v.ID == "" || v.Key == "" {
		t.Fatalf("job view %+v", v)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		w = get(s, "/v1/jobs/"+v.ID)
		if w.Code != 200 {
			t.Fatalf("poll: %d %s", w.Code, w.Body)
		}
		if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
			t.Fatal(err)
		}
		if v.Status == JobDone || v.Status == JobFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", v.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if v.Status != JobDone || v.Cache != "miss" || len(v.Result) == 0 {
		t.Fatalf("finished job %+v", v)
	}

	// The same submission now completes instantly from the cache.
	w = post(s, "/v1/jobs", body)
	if w.Code != 200 {
		t.Fatalf("resubmit: %d %s", w.Code, w.Body)
	}
	var v2 JobView
	if err := json.Unmarshal(w.Body.Bytes(), &v2); err != nil {
		t.Fatal(err)
	}
	if v2.Status != JobDone || v2.Cache != "hit" {
		t.Fatalf("resubmitted job %+v", v2)
	}
	if !bytes.Equal(v2.Result, v.Result) {
		t.Fatal("cached job result differs")
	}

	// The sync endpoint shares the same cache.
	w = post(s, "/v1/compile", body)
	if w.Code != 200 || w.Header().Get("X-Tqecd-Cache") != "hit" {
		t.Fatalf("sync after async: %d, cache %q", w.Code, w.Header().Get("X-Tqecd-Cache"))
	}
	if !bytes.Equal(w.Body.Bytes(), v.Result) {
		t.Fatal("sync body differs from async result")
	}
}

func TestJobNotFound(t *testing.T) {
	s := startServer(t, testConfig())
	if w := get(s, "/v1/jobs/nope"); w.Code != 404 {
		t.Fatalf("status %d, want 404", w.Code)
	}
}

func TestOverloadReturns429(t *testing.T) {
	// One-slot queue and a never-started pool: the first submission
	// occupies the queue, the second must bounce with 429 and depth
	// headers.
	s, err := New(Config{Workers: 1, QueueDepth: 1, CacheBytes: 1 << 20,
		DefaultTimeout: time.Second, MaxTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	b1 := compileBody(t, realSrc, "a", CompileOptions{Seed: 1, Iterations: 1000})
	b2 := compileBody(t, realSrc2, "b", CompileOptions{Seed: 1, Iterations: 1000})
	if w := post(s, "/v1/jobs", b1); w.Code != 202 {
		t.Fatalf("first submit: %d %s", w.Code, w.Body)
	}
	w := post(s, "/v1/jobs", b2)
	if w.Code != 429 {
		t.Fatalf("second submit: %d, want 429 (body %s)", w.Code, w.Body)
	}
	if w.Header().Get("X-Tqecd-Queue-Depth") != "1" || w.Header().Get("X-Tqecd-Queue-Capacity") != "1" {
		t.Fatalf("queue headers missing: %v", w.Header())
	}
	var er ErrorResponse
	if err := json.Unmarshal(w.Body.Bytes(), &er); err != nil || er.Error.Message == "" {
		t.Fatalf("429 body not structured: %s", w.Body)
	}
}

func TestDrainRejectsAndFinishesQueued(t *testing.T) {
	s := startServer(t, testConfig())
	body := compileBody(t, realSrc, "fig4", CompileOptions{Seed: 11, Iterations: 2000})
	w := post(s, "/v1/jobs", body)
	if w.Code != 202 {
		t.Fatalf("submit: %d", w.Code)
	}
	var v JobView
	if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// The queued job ran to completion during the drain.
	w = get(s, "/v1/jobs/"+v.ID)
	if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	if v.Status != JobDone {
		t.Fatalf("job after drain: %+v", v)
	}
	// New work is rejected with 503, and healthz reports draining.
	if w := post(s, "/v1/compile", body); w.Header().Get("X-Tqecd-Cache") == "miss" {
		t.Fatalf("post-drain compile was accepted for compute: %d", w.Code)
	}
	w2 := post(s, "/v1/compile", compileBody(t, realSrc2, "other", CompileOptions{Seed: 1}))
	if w2.Code != 503 {
		t.Fatalf("post-drain new-key compile: %d, want 503", w2.Code)
	}
	if h := get(s, "/healthz"); h.Code != 503 || !strings.Contains(h.Body.String(), "draining") {
		t.Fatalf("healthz after drain: %d %s", h.Code, h.Body)
	}
}

func TestHealthz(t *testing.T) {
	s := startServer(t, testConfig())
	w := get(s, "/healthz")
	if w.Code != 200 {
		t.Fatalf("healthz: %d", w.Code)
	}
	var h HealthBody
	if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Workers != 2 || h.QueueCapacity != 16 {
		t.Fatalf("health %+v", h)
	}
}

// TestMetricsJSONGolden pins the exact JSON wire shape of /v1/metrics on a
// fresh server: field names and nesting are API, monitored by dashboards.
func TestMetricsJSONGolden(t *testing.T) {
	s, err := New(Config{Workers: 2, QueueDepth: 8, CacheBytes: 1024,
		DefaultTimeout: time.Second, MaxTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	w := get(s, "/v1/metrics")
	if w.Code != 200 {
		t.Fatalf("metrics: %d", w.Code)
	}
	const want = `{"server":{"requests":0,"compiles":0,"errors":0,"rejected":0,"write_errors":0},` +
		`"queue":{"depth":0,"capacity":8,"workers":2,"busy":0},` +
		`"jobs":{"submitted":0,"queued":0,"running":0,"done":0,"failed":0,"evicted":0},` +
		`"cache":{"lookups":0,"hits":0,"misses":0,"shared":0,"evictions":0,"uncacheable":0,"entries":0,"bytes":0,"max_bytes":1024},` +
		`"resilience":{"retries":0,"transient_faults":0,"breaker_state":"closed","breaker_trips":0,"admission_rejected":0,"compile_ewma_ns":0},` +
		`"latency_ns":{` +
		`"compile":{"count":0,"sum_ns":0,"min_ns":0,"max_ns":0},` +
		`"queue_wait":{"count":0,"sum_ns":0,"min_ns":0,"max_ns":0},` +
		`"stage:dual-defect net routing":{"count":0,"sum_ns":0,"min_ns":0,"max_ns":0},` +
		`"stage:iterative bridging":{"count":0,"sum_ns":0,"min_ns":0,"max_ns":0},` +
		`"stage:module placement":{"count":0,"sum_ns":0,"min_ns":0,"max_ns":0},` +
		`"stage:other":{"count":0,"sum_ns":0,"min_ns":0,"max_ns":0}}}`
	if got := w.Body.String(); got != want {
		t.Fatalf("metrics JSON:\n got %s\nwant %s", got, want)
	}
}

func TestMetricsCountTraffic(t *testing.T) {
	s := startServer(t, testConfig())
	body := compileBody(t, realSrc, "fig4", CompileOptions{Seed: 5, Iterations: 2000})
	for i := 0; i < 3; i++ {
		if w := post(s, "/v1/compile", body); w.Code != 200 {
			t.Fatalf("compile %d: %d", i, w.Code)
		}
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(get(s, "/v1/metrics").Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Server.Compiles != 1 {
		t.Fatalf("compiles = %d, want 1 (single-flight + cache)", snap.Server.Compiles)
	}
	if snap.Cache.Hits != 2 || snap.Cache.Misses != 1 {
		t.Fatalf("cache stats %+v", snap.Cache)
	}
	if snap.LatencyNS["compile"].Count != 1 {
		t.Fatalf("compile histogram %+v", snap.LatencyNS["compile"])
	}
	if snap.LatencyNS["stage:module placement"].Count != 1 {
		t.Fatalf("stage histogram %+v", snap.LatencyNS["stage:module placement"])
	}
	if snap.LatencyNS["queue_wait"].Count != 1 {
		t.Fatalf("queue-wait histogram %+v", snap.LatencyNS["queue_wait"])
	}
}

func TestTimeoutClamping(t *testing.T) {
	lim := parseLimits{defaultTimeout: time.Second, maxTimeout: 2 * time.Second}
	ct, aerr := buildCompileTask(&CompileRequest{Real: realSrc, Options: CompileOptions{TimeoutMS: 3600_000}}, lim)
	if aerr != nil {
		t.Fatalf("buildCompileTask: %+v", aerr)
	}
	if ct.timeout != 2*time.Second {
		t.Fatalf("timeout %v, want clamped to 2s", ct.timeout)
	}
	ct, aerr = buildCompileTask(&CompileRequest{Real: realSrc}, lim)
	if aerr != nil {
		t.Fatalf("buildCompileTask: %+v", aerr)
	}
	if ct.timeout != time.Second {
		t.Fatalf("timeout %v, want default 1s", ct.timeout)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := startServer(t, testConfig())
	if w := get(s, "/v1/compile"); w.Code != 405 {
		t.Fatalf("GET /v1/compile: %d, want 405", w.Code)
	}
}

// FuzzParseCompileRequest feeds arbitrary bodies through the request
// parser (and thus the .real parser, decomposer, ICM converter and cache
// key hasher): it must reject garbage with a structured error, never
// panic. The seed corpus under testdata/fuzz is replayed by `make
// fuzz-seeds`.
func FuzzParseCompileRequest(f *testing.F) {
	f.Add([]byte(`{"bench":"4gt10-v1_81","options":{"seed":1}}`))
	f.Add([]byte(fmt.Sprintf(`{"real":%q,"name":"fig4","options":{"iterations":100,"timeout_ms":5}}`, realSrc)))
	f.Add([]byte(`{"real":".numvars 1\n.begin\nt1 x0\n.end"}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"bench":"x","real":"y"}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		ct, aerr := parseCompileRequest(bytes.NewReader(data),
			parseLimits{defaultTimeout: time.Second, maxTimeout: time.Minute, allowFaults: true})
		if (ct == nil) == (aerr == nil) {
			t.Fatalf("exactly one of task/error must be set: %v %v", ct, aerr)
		}
		if aerr != nil && (aerr.Status < 400 || aerr.Status > 599 || aerr.Body.Message == "") {
			t.Fatalf("malformed apiError %+v", aerr)
		}
		if ct != nil && (len(ct.key) != 64 || ct.timeout <= 0) {
			t.Fatalf("malformed task: key %q timeout %v", ct.key, ct.timeout)
		}
	})
}
