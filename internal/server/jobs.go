package server

import (
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/ccache"
)

// JobStatus is the lifecycle state of an asynchronous compile job.
type JobStatus string

// Job lifecycle states.
const (
	// JobQueued means the job sits in the FIFO queue.
	JobQueued JobStatus = "queued"
	// JobRunning means a worker is compiling (or waiting on another
	// in-flight compilation of the same content address).
	JobRunning JobStatus = "running"
	// JobDone means the result payload is available.
	JobDone JobStatus = "done"
	// JobFailed means the compile failed; the structured error is
	// available.
	JobFailed JobStatus = "failed"
)

// JobView is the JSON body of GET /v1/jobs/{id}.
type JobView struct {
	// ID is the job's identifier.
	ID string `json:"id"`
	// Status is the current lifecycle state.
	Status JobStatus `json:"status"`
	// Key is the compilation's content address.
	Key string `json:"key"`
	// Cache reports how the result was obtained (hit/miss/shared), set
	// once the job finishes successfully.
	Cache string `json:"cache,omitempty"`
	// Result is the compile payload when Status is done.
	Result json.RawMessage `json:"result,omitempty"`
	// Error is the structured failure when Status is failed.
	Error *ErrorBody `json:"error,omitempty"`
}

// job tracks one async compilation.
type job struct {
	mu      sync.Mutex
	id      string
	key     string
	status  JobStatus
	outcome ccache.Outcome
	body    []byte
	apiErr  *apiError
	// now is the registry's clock; finish uses it to stamp finishedAt.
	now func() time.Time
	// finishedAt is when the job reached a terminal state; the registry's
	// TTL sweep measures retention from it.
	finishedAt time.Time
}

// view snapshots the job for serving.
func (j *job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{ID: j.id, Status: j.status, Key: j.key}
	switch j.status {
	case JobDone:
		v.Cache = j.outcome.String()
		v.Result = json.RawMessage(j.body)
	case JobFailed:
		body := j.apiErr.Body
		v.Error = &body
	}
	return v
}

// setRunning marks the job as picked up by a worker.
func (j *job) setRunning() {
	j.mu.Lock()
	j.status = JobRunning
	j.mu.Unlock()
}

// finish records the job's terminal state.
func (j *job) finish(body []byte, outcome ccache.Outcome, aerr *apiError) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finishedAt = j.now()
	if aerr != nil {
		j.status = JobFailed
		j.apiErr = aerr
		return
	}
	j.status = JobDone
	j.outcome = outcome
	j.body = body
}

// terminal reports whether the job has finished (done or failed).
func (j *job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status == JobDone || j.status == JobFailed
}

// expiredBefore reports whether the job finished at or before cutoff.
func (j *job) expiredBefore(cutoff time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != JobDone && j.status != JobFailed {
		return false
	}
	return !j.finishedAt.After(cutoff)
}

// jobRegistry issues job IDs and retains finished jobs up to a cap and a
// TTL: finished jobs older than the TTL are dropped, and when the registry
// still exceeds the cap the oldest finished jobs go first, so results stay
// pollable for a while without unbounded memory growth. Unfinished jobs
// are never evicted (their count is bounded by the queue depth plus the
// worker count).
type jobRegistry struct {
	mu      sync.Mutex
	prefix  string
	seq     int64
	max     int
	ttl     time.Duration // <= 0 disables TTL eviction
	now     func() time.Time
	evicted int64
	jobs    map[string]*job
	order   []string // insertion order, for eviction scans
}

// newJobRegistry seeds the process-unique ID prefix from crypto/rand.
func newJobRegistry(maxJobs int, ttl time.Duration) (*jobRegistry, error) {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return nil, fmt.Errorf("job id prefix: %w", err)
	}
	return &jobRegistry{
		prefix: hex.EncodeToString(b[:]),
		max:    maxJobs,
		ttl:    ttl,
		now:    time.Now,
		jobs:   map[string]*job{},
	}, nil
}

// add registers a new queued job for the given content address.
func (r *jobRegistry) add(key string) *job {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	j := &job{id: fmt.Sprintf("%s-%d", r.prefix, r.seq), key: key, status: JobQueued, now: r.now}
	r.jobs[j.id] = j
	r.order = append(r.order, j.id)
	r.sweepLocked()
	return j
}

// restore re-registers a journaled job under its original ID, so clients
// polling across a crash keep their handle. Terminal jobs get their full
// state back and a fresh retention clock (the TTL measures pollability,
// which restarts with the process); interrupted jobs come back queued and
// are re-enqueued by the caller. A duplicate ID returns the existing job
// untouched: replay is idempotent.
func (r *jobRegistry) restore(id, key string, status JobStatus, outcome ccache.Outcome, body []byte, aerr *apiError) *job {
	r.mu.Lock()
	defer r.mu.Unlock()
	if j, ok := r.jobs[id]; ok {
		return j
	}
	j := &job{id: id, key: key, status: status, outcome: outcome, body: body, apiErr: aerr, now: r.now}
	if status == JobDone || status == JobFailed {
		j.finishedAt = r.now()
	}
	r.jobs[id] = j
	r.order = append(r.order, id)
	r.sweepLocked()
	return j
}

// sweepLocked drops finished jobs past the TTL, then — if the registry
// still exceeds its cap — the oldest finished jobs until it fits. Stale
// order entries are skipped, not treated as evictions: the previous
// implementation returned as soon as it saw one, leaving the registry over
// its cap. Callers hold r.mu.
func (r *jobRegistry) sweepLocked() {
	var cutoff time.Time
	if r.ttl > 0 {
		cutoff = r.now().Add(-r.ttl)
	}
	kept := r.order[:0]
	for _, id := range r.order {
		j, ok := r.jobs[id]
		if !ok {
			continue // stale order entry: drop and keep scanning
		}
		if r.ttl > 0 && j.expiredBefore(cutoff) {
			delete(r.jobs, id)
			r.evicted++
			continue
		}
		kept = append(kept, id)
	}
	r.order = kept
	if len(r.jobs) <= r.max {
		return
	}
	kept = r.order[:0]
	for _, id := range r.order {
		if len(r.jobs) > r.max && r.jobs[id].terminal() {
			delete(r.jobs, id)
			r.evicted++
			continue
		}
		kept = append(kept, id)
	}
	r.order = kept
}

// get looks a job up by ID, sweeping expired jobs first so a TTL-evicted
// job is not observable after its deadline.
func (r *jobRegistry) get(id string) (*job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sweepLocked()
	j, ok := r.jobs[id]
	return j, ok
}

// evictions returns the number of jobs dropped by TTL or cap eviction.
func (r *jobRegistry) evictions() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evicted
}

// counts tallies jobs by lifecycle state.
func (r *jobRegistry) counts() (queued, running, done, failed int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, j := range r.jobs {
		j.mu.Lock()
		st := j.status
		j.mu.Unlock()
		switch st {
		case JobQueued:
			queued++
		case JobRunning:
			running++
		case JobDone:
			done++
		case JobFailed:
			failed++
		}
	}
	return
}
