package route

// steiner.go routes friend-net groups as multi-terminal Steiner nets
// (Options.Steiner): a friend group — a connected component of nets
// sharing pins — is routed by approximate nearest-terminal merging on the
// grid instead of as sequential two-pin nets. A growing tree starts at
// one terminal; each round the unconnected terminal nearest the tree (by
// bounding-box distance, with deterministic tie-breaks) is connected by
// an A* search targeting every tree cell, and the found path is assigned
// to one unrouted member net. Verification switches from per-terminal
// anchoring to group connectivity: every routed member's pin pair must be
// connected through the union of the group's paths. A group either routes
// completely or is handed member-by-member to the regular negotiation
// loop, so partial trees never commit.

import (
	"fmt"
	"sort"

	"repro/internal/bridge"
	"repro/internal/geom"
	"repro/internal/place"
)

// steinerGroup is one friend-net group: the member net indices and the
// distinct pins they touch, both ascending.
type steinerGroup struct {
	nets []int
	pins []int
}

// friendGroups returns the friend-net groups with at least two member
// nets, ordered by their smallest member net index. Groups are the
// connected components of the pin-sharing graph (pins are vertices, nets
// are edges), computed with a union-find over the netlist in index order.
func friendGroups(nets []bridge.Net) []steinerGroup {
	parent := map[int]int{}
	var find func(int) int
	find = func(p int) int {
		if parent[p] == p {
			return p
		}
		root := find(parent[p])
		parent[p] = root
		return root
	}
	for _, n := range nets {
		for _, p := range []int{n.PinA, n.PinB} {
			if _, ok := parent[p]; !ok {
				parent[p] = p
			}
		}
		ra, rb := find(n.PinA), find(n.PinB)
		if ra != rb {
			if ra > rb {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	byRoot := map[int]*steinerGroup{}
	for i, n := range nets {
		root := find(n.PinA)
		g, ok := byRoot[root]
		if !ok {
			g = &steinerGroup{}
			byRoot[root] = g
		}
		g.nets = append(g.nets, i)
	}
	var groups []steinerGroup
	for _, g := range byRoot {
		if len(g.nets) < 2 {
			continue
		}
		pinSeen := map[int]bool{}
		for _, idx := range g.nets {
			for _, p := range []int{nets[idx].PinA, nets[idx].PinB} {
				if !pinSeen[p] {
					pinSeen[p] = true
					g.pins = append(g.pins, p)
				}
			}
		}
		sort.Ints(g.pins)
		groups = append(groups, *g)
	}
	sort.Slice(groups, func(i, j int) bool { return groups[i].nets[0] < groups[j].nets[0] })
	return groups
}

// routeSteinerGroups routes every friend group as a multi-terminal net
// and returns the set of net indices it handled (routed or failed) plus
// the failed indices in ascending order. Failed groups are rolled back
// completely — their members route individually through the normal
// negotiation path.
func (r *router) routeSteinerGroups() (grouped map[int]bool, failed []int) {
	grouped = map[int]bool{}
	for _, g := range friendGroups(r.nets) {
		for _, idx := range g.nets {
			grouped[idx] = true
		}
		if r.checkCtx() {
			failed = append(failed, g.nets...)
			continue
		}
		if r.routeGroup(g, r.opts.InitialMargin) {
			r.result.FirstPassRouted += len(g.nets)
		} else {
			failed = append(failed, g.nets...)
		}
	}
	sort.Ints(failed)
	return grouped, failed
}

// routeGroup routes one friend group by nearest-terminal merging inside
// the group region (the pins' bounding box expanded by margin). On
// success every member net has a committed path and the union of those
// paths is a connected tree touching every group pin; on failure all
// partial commits are rolled back and false is returned. Deterministic:
// the seed terminal is the cellLess-smallest pin cell, each round
// connects the unconnected terminal with the smallest (box distance to
// the tree's bounding box, cellLess, pin ID) key, and found paths are
// assigned to the lowest-index eligible unrouted member.
func (r *router) routeGroup(g steinerGroup, margin int) bool {
	cells := make([]geom.Point, len(g.pins))
	region := geom.CellBox(r.pinCell[g.pins[0]])
	for i, p := range g.pins {
		cells[i] = r.pinCell[p]
		region = region.UnionPoint(cells[i])
	}
	region = region.Expand(margin).Intersect(r.world)

	// The growing tree, as a cellLess-sorted target list.
	seed := 0
	for i := range g.pins {
		if cellLess(cells[i], cells[seed]) {
			seed = i
		}
	}
	connected := make([]bool, len(g.pins))
	connected[seed] = true
	tree := []geom.Point{cells[seed]}
	tbox := geom.CellBox(cells[seed])
	routed := map[int]bool{}

	rollback := func() bool {
		for id := range routed {
			r.uncommit(id)
		}
		return false
	}
	for remaining := len(g.pins) - 1; remaining > 0; remaining-- {
		if r.checkCtx() {
			return rollback()
		}
		// Nearest unconnected terminal, approximated by distance to the
		// tree's bounding box.
		join := -1
		var joinD float64
		for i := range g.pins {
			if connected[i] {
				continue
			}
			d := boxDistance(cells[i], tbox)
			if join < 0 || d < joinD ||
				(d == joinD && cellLess(cells[i], cells[join])) {
				join, joinD = i, d
			}
		}
		idx := r.groupCarrier(g, g.pins[join], routed)
		n := r.nets[idx]
		ep := &netEndpoints{
			starts:  []geom.Point{cells[join]},
			targets: tree,
			sbox:    geom.CellBox(cells[join]),
			tbox:    tbox,
		}
		t0 := r.tick()
		path := r.astar(n, ep, region)
		r.result.Stats.Search += r.tick() - t0
		r.result.Stats.Searches++
		if path == nil {
			return rollback()
		}
		r.commit(n, path)
		routed[idx] = true
		connected[join] = true
		// Junction cells may repeat in the target list; markTarget is
		// idempotent, so no dedup is needed.
		tree = append(tree, path...)
		tbox = tbox.Union(path.Bounds())
	}
	// Leftover members (cycle edges of the pin graph) ride the tree with
	// a degenerate single-cell path at their first pin, which is already
	// a tree cell.
	for _, idx := range g.nets {
		if routed[idx] {
			continue
		}
		r.commit(r.nets[idx], geom.Path{r.pinCell[r.nets[idx].PinA]})
		routed[idx] = true
	}
	return true
}

// groupCarrier picks the member net that will own the path connecting pin
// to the tree: the lowest-index unrouted member incident to the pin, or
// failing that the lowest-index unrouted member anywhere in the group (a
// pin's incident nets can all be consumed carrying other joins; the group
// has at least pins-1 members, so a spare always exists).
func (r *router) groupCarrier(g steinerGroup, pin int, routed map[int]bool) int {
	spare := -1
	for _, idx := range g.nets {
		if routed[idx] {
			continue
		}
		if n := r.nets[idx]; n.PinA == pin || n.PinB == pin {
			return idx
		}
		if spare < 0 {
			spare = idx
		}
	}
	return spare
}

// brokenGroups returns the friend groups whose committed paths no longer
// connect every routed member's pin pair (negotiation rip-ups can remove
// tree segments), ordered by smallest member net index.
func (r *router) brokenGroups() []steinerGroup {
	var bad []steinerGroup
	for _, g := range friendGroups(r.nets) {
		if !r.groupConnected(g) {
			bad = append(bad, g)
		}
	}
	return bad
}

// groupConnected reports whether every routed member net of g has its two
// pin cells connected through the union of the group's committed paths.
func (r *router) groupConnected(g steinerGroup) bool {
	var cells []geom.Point
	for _, idx := range g.nets {
		cells = append(cells, r.routes[idx]...)
	}
	comp := components(cells)
	for _, idx := range g.nets {
		if _, ok := r.routes[idx]; !ok {
			continue
		}
		n := r.nets[idx]
		ca, oka := comp[r.pinCell[n.PinA]]
		cb, okb := comp[r.pinCell[n.PinB]]
		if !oka || !okb || ca != cb {
			return false
		}
	}
	return true
}

// components labels the 6-connected components of a cell set; the label
// values are arbitrary but equal exactly for connected cells.
func components(cells []geom.Point) map[geom.Point]int {
	comp := make(map[geom.Point]int, len(cells))
	for _, c := range cells {
		comp[c] = -1
	}
	label := 0
	var stack []geom.Point
	for _, c := range cells {
		if comp[c] != -1 {
			continue
		}
		comp[c] = label
		stack = append(stack[:0], c)
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, d := range geom.Dirs6 {
				next := cur.Step(d)
				if l, ok := comp[next]; ok && l == -1 {
					comp[next] = label
					stack = append(stack, next)
				}
			}
		}
		label++
	}
	return comp
}

// repairGroups is the Steiner-mode analogue of repairDangling: groups
// whose trees were broken by negotiation rip-ups are uncommitted wholesale
// and re-routed as fresh multi-terminal nets (with the margin widened each
// pass); members of groups that cannot be restored are returned for the
// degradation path.
func (r *router) repairGroups(margin []int) []int {
	var lost []int
	maxPass := len(r.nets) + 1
	for pass := 0; pass < maxPass; pass++ {
		if r.checkCtx() {
			return lost
		}
		bad := r.brokenGroups()
		if len(bad) == 0 {
			return lost
		}
		for _, g := range bad {
			for _, idx := range g.nets {
				if _, ok := r.routes[idx]; ok {
					r.uncommit(idx)
				}
			}
			if pass == maxPass-1 || !r.routeGroup(g, r.opts.InitialMargin+(pass+1)*r.opts.ExpandStep) {
				lost = append(lost, g.nets...)
			}
		}
		if len(lost) > 0 {
			// Unrestorable groups stay unrouted; their members are
			// reported once.
			return dedupInts(lost)
		}
	}
	return lost
}

// verifyGroups enforces the Steiner-mode connectivity invariant on a
// result: for every friend group, each routed member net's two pin cells
// must be connected through the union of the group's committed paths (the
// multi-terminal generalization of the Fig. 19 deformation — a braid may
// terminate anywhere on its group's tree because the tree reaches its
// pin). Singleton nets, which have no friends, are checked by the plain
// terminal rule.
func verifyGroups(p *place.Placement, res *Result) error {
	netByIdx := make(map[int]bridge.Net, len(p.Nets))
	for _, n := range p.Nets {
		netByIdx[n.ID] = n
	}
	inGroup := map[int]bool{}
	for _, g := range friendGroups(p.Nets) {
		for _, idx := range g.nets {
			inGroup[idx] = true
		}
		var cells []geom.Point
		for _, idx := range g.nets {
			cells = append(cells, res.Routes[idx]...)
		}
		comp := components(cells)
		for _, idx := range g.nets {
			if _, ok := res.Routes[idx]; !ok {
				continue
			}
			n := netByIdx[idx]
			ca, oka := comp[res.PinCells[n.PinA]]
			cb, okb := comp[res.PinCells[n.PinB]]
			if !oka || !okb || ca != cb {
				return fmt.Errorf("route: steiner group of net %d: pins %d and %d not connected through the group's paths",
					idx, n.PinA, n.PinB)
			}
		}
	}
	// Singletons still follow the two-pin terminal rule.
	for id, path := range res.Routes {
		if inGroup[id] {
			continue
		}
		n, ok := netByIdx[id]
		if !ok {
			return fmt.Errorf("route: routed net %d not in the netlist", id)
		}
		head, tail := path[0], path[len(path)-1]
		a, b := res.PinCells[n.PinA], res.PinCells[n.PinB]
		if !(head == a && tail == b) && !(head == b && tail == a) {
			return fmt.Errorf("route: net %d terminals %v..%v do not sit at its pin cells %v/%v",
				id, head, tail, a, b)
		}
	}
	return nil
}
