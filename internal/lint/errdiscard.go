package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// ErrDiscard enforces error propagation in library code.
//
//   - Assigning an error result to the blank identifier is banned.
//   - Calling an error-returning function as a bare statement is banned,
//     except for writes into the infallible in-memory writers
//     (*bytes.Buffer, *strings.Builder) and into the sticky-error
//     *bufio.Writer, whose first failure latches and resurfaces at Flush —
//     Flush itself is never exempt.
//   - fmt.Errorf applied to an error value must wrap it with %w so
//     errors.Is/As keep seeing the sentinel taxonomy across package
//     boundaries.
//
// Main packages and _test.go files are out of scope: commands report to
// stderr and exit, and tests discard at will.
var ErrDiscard = &Analyzer{
	Name: "errdiscard",
	Doc:  "library code neither discards error results nor flattens wrapped errors (%v instead of %w)",
	Run:  runErrDiscard,
}

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	errIface, ok := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Implements(t, errIface)
}

func runErrDiscard(pass *Pass) {
	if pass.Pkg.IsMain() {
		return
	}
	for _, f := range pass.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				checkBlankErrAssign(pass, n)
			case *ast.ExprStmt:
				checkBareErrCall(pass, n)
			case *ast.CallExpr:
				checkErrorfWrap(pass, n)
			}
			return true
		})
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// checkBlankErrAssign flags `_ = f()` and `v, _ := g()` when the discarded
// position carries an error.
func checkBlankErrAssign(pass *Pass, n *ast.AssignStmt) {
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		tuple, ok := pass.TypeOf(n.Rhs[0]).(*types.Tuple)
		if !ok {
			return
		}
		for i, lhs := range n.Lhs {
			if isBlank(lhs) && i < tuple.Len() && isErrorType(tuple.At(i).Type()) {
				pass.Reportf(lhs.Pos(), "error result discarded with _: handle it or propagate it")
			}
		}
		return
	}
	for i, lhs := range n.Lhs {
		if isBlank(lhs) && i < len(n.Rhs) && isErrorType(pass.TypeOf(n.Rhs[i])) {
			pass.Reportf(lhs.Pos(), "error result discarded with _: handle it or propagate it")
		}
	}
}

// checkBareErrCall flags statement-position calls that drop an error result.
func checkBareErrCall(pass *Pass, n *ast.ExprStmt) {
	call, ok := n.X.(*ast.CallExpr)
	if !ok {
		return
	}
	t := pass.TypeOf(call)
	hasErr := false
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				hasErr = true
			}
		}
	default:
		hasErr = isErrorType(t)
	}
	if !hasErr || infallibleWriter(pass, call) {
		return
	}
	pass.Reportf(call.Pos(), "call discards its error result: check it or assign it")
}

// infallibleWriter reports writes whose dropped error is either statically
// impossible (bytes.Buffer, strings.Builder) or latched for a later,
// checked Flush (bufio.Writer).
func infallibleWriter(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.Pkg.Info, call)
	if fn == nil {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return isSafeWriter(sig.Recv().Type()) && fn.Name() != "Flush"
	}
	switch pkgFunc(fn) {
	case "fmt.Fprint", "fmt.Fprintf", "fmt.Fprintln":
		return len(call.Args) > 0 && isSafeWriter(pass.TypeOf(call.Args[0]))
	}
	return false
}

func isSafeWriter(t types.Type) bool {
	path, name, ok := namedType(t)
	if !ok {
		return false
	}
	switch path + "." + name {
	case "bytes.Buffer", "strings.Builder", "bufio.Writer":
		return true
	}
	return false
}

// checkErrorfWrap flags fmt.Errorf calls that format an error argument
// without %w, which severs the error chain.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	if pkgFunc(calleeFunc(pass.Pkg.Info, call)) != "fmt.Errorf" || len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil || strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if isErrorType(pass.TypeOf(arg)) {
			pass.Reportf(arg.Pos(), "fmt.Errorf formats an error without %%w: errors.Is/As lose the cause")
			return
		}
	}
}
