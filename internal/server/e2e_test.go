package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/qc"
	"repro/tqec"
)

// e2eVariant is one unique compile request in the end-to-end load mix.
type e2eVariant struct {
	src  string
	name string
	seed int64
}

// body renders the variant as a compile-request body.
func (v e2eVariant) body(t *testing.T) []byte {
	t.Helper()
	return compileBody(t, v.src, v.name, CompileOptions{Seed: v.seed, Iterations: 2000})
}

// direct compiles the variant in-process and encodes it exactly as the
// server does, for byte-identity checks.
func (v e2eVariant) direct(t *testing.T) (key string, payload []byte) {
	t.Helper()
	c, err := qc.ParseReal(v.name, strings.NewReader(v.src))
	if err != nil {
		t.Fatal(err)
	}
	opts := requestOptions(CompileOptions{Seed: v.seed, Iterations: 2000})
	res, err := tqec.CompileContext(context.Background(), c, opts)
	if err != nil {
		t.Fatal(err)
	}
	key, err = tqec.CacheKey(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	payload, err = EncodeResult(key, res)
	if err != nil {
		t.Fatal(err)
	}
	return key, payload
}

// TestEndToEndLoad runs the full daemon wiring — a real http.Server on a
// random port, the bounded worker pool, the content-addressed cache — under
// the harness load generator: 32 concurrent synchronous requests over 4
// unique circuits, then 16 asynchronous jobs over 2 more, then a graceful
// drain. It asserts every response is structured, each unique content
// address compiles exactly once, and served payloads are byte-identical to
// direct tqec.CompileContext output.
func TestEndToEndLoad(t *testing.T) {
	cfg := testConfig()
	cfg.QueueDepth = 64
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s}
	serveDone := make(chan struct{})
	go func() { defer close(serveDone); _ = hs.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	// 4 unique circuits, each duplicated 8 times and interleaved so
	// duplicates race each other through the single-flight path.
	variants := []e2eVariant{
		{realSrc, "fig4", 21},
		{realSrc, "fig4", 22},
		{realSrc2, "toffoli", 21},
		{realSrc2, "toffoli", 22},
	}
	var bodies [][]byte
	for rep := 0; rep < 8; rep++ {
		for _, v := range variants {
			bodies = append(bodies, v.body(t))
		}
	}
	lctx, lcancel := context.WithTimeout(ctx, 2*time.Minute)
	defer lcancel()
	results, err := harness.RunLoad(lctx, harness.LoadOptions{
		BaseURL:     base,
		Bodies:      bodies,
		Concurrency: 16,
	})
	if err != nil {
		t.Fatalf("load: %v", err)
	}

	direct := map[string][]byte{} // content address -> expected payload
	for _, v := range variants {
		key, payload := v.direct(t)
		direct[key] = payload
	}
	outcomes := map[string]map[string]int{} // key -> cache outcome counts
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("request %d: transport error %v", r.Index, r.Err)
		}
		if r.Status != 200 {
			var er ErrorResponse
			if jerr := json.Unmarshal(r.ErrorBody, &er); jerr != nil || er.Error.Message == "" {
				t.Fatalf("request %d: status %d with unstructured body %s", r.Index, r.Status, r.ErrorBody)
			}
			t.Fatalf("request %d: unexpected failure %d: %s", r.Index, r.Status, r.ErrorBody)
		}
		want, ok := direct[r.Key]
		if !ok {
			t.Fatalf("request %d: unknown content address %q", r.Index, r.Key)
		}
		if !bytes.Equal(r.Body, want) {
			t.Fatalf("request %d: served payload differs from direct compile", r.Index)
		}
		m := outcomes[r.Key]
		if m == nil {
			m = map[string]int{}
			outcomes[r.Key] = m
		}
		m[r.Cache]++
	}
	if len(outcomes) != len(variants) {
		t.Fatalf("saw %d unique keys, want %d", len(outcomes), len(variants))
	}
	for key, m := range outcomes {
		if m["miss"] != 1 {
			t.Errorf("key %s: %d misses, want exactly 1 (outcomes %v)", key, m["miss"], m)
		}
		if m["miss"]+m["hit"]+m["shared"] != 8 {
			t.Errorf("key %s: outcomes %v do not cover all 8 duplicates", key, m)
		}
	}

	// Async jobs over two fresh circuits, again with duplicates.
	asyncVariants := []e2eVariant{
		{realSrc, "fig4", 23},
		{realSrc2, "toffoli", 23},
	}
	bodies = nil
	for rep := 0; rep < 8; rep++ {
		for _, v := range asyncVariants {
			bodies = append(bodies, v.body(t))
		}
	}
	results, err = harness.RunLoad(lctx, harness.LoadOptions{
		BaseURL:     base,
		Bodies:      bodies,
		Concurrency: 16,
		Async:       true,
	})
	if err != nil {
		t.Fatalf("async load: %v", err)
	}
	for _, v := range asyncVariants {
		key, payload := v.direct(t)
		direct[key] = payload
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("async request %d: %v", r.Index, r.Err)
		}
		if r.Status != 202 && r.Status != 200 {
			t.Fatalf("async request %d: submit status %d (%s)", r.Index, r.Status, r.ErrorBody)
		}
		if len(r.ErrorBody) > 0 {
			t.Fatalf("async request %d: job failed: %s", r.Index, r.ErrorBody)
		}
		if !bytes.Equal(r.Body, direct[r.Key]) {
			t.Fatalf("async request %d: payload differs from direct compile", r.Index)
		}
	}

	// Exactly one underlying compile per unique content address, across
	// both endpoints.
	var snap MetricsSnapshot
	st, payload, gerr := getBody(ctx, base+"/v1/metrics")
	if gerr != nil || st != 200 {
		t.Fatalf("metrics fetch: %d %v", st, gerr)
	}
	if err := json.Unmarshal(payload, &snap); err != nil {
		t.Fatal(err)
	}
	wantCompiles := int64(len(variants) + len(asyncVariants))
	if snap.Server.Compiles != wantCompiles {
		t.Fatalf("compiles = %d, want %d (one per unique key)", snap.Server.Compiles, wantCompiles)
	}
	if snap.Cache.Misses != wantCompiles {
		t.Fatalf("cache misses = %d, want %d", snap.Cache.Misses, wantCompiles)
	}

	// Graceful shutdown: a queued job survives the drain, then the
	// listener closes and new work is rejected.
	w := post(s, "/v1/jobs", compileBody(t, realSrc, "fig4", CompileOptions{Seed: 24, Iterations: 2000}))
	if w.Code != 202 {
		t.Fatalf("pre-drain submit: %d", w.Code)
	}
	var v JobView
	if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	dctx, dcancel := context.WithTimeout(context.Background(), time.Minute)
	defer dcancel()
	if err := hs.Shutdown(dctx); err != nil {
		t.Fatalf("http shutdown: %v", err)
	}
	<-serveDone
	if err := s.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	w = get(s, "/v1/jobs/"+v.ID)
	if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
		t.Fatal(err)
	}
	if v.Status != JobDone {
		t.Fatalf("queued job after drain: %+v", v)
	}
	if w := post(s, "/v1/jobs", compileBody(t, realSrc, "fig4", CompileOptions{Seed: 25})); w.Code != 503 {
		t.Fatalf("post-drain submit: %d, want 503", w.Code)
	}
}

// getBody fetches a URL over the network for the e2e test.
func getBody(ctx context.Context, url string) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return 0, nil, err
	}
	if resp.StatusCode == 0 {
		return 0, nil, fmt.Errorf("no status for %s", url)
	}
	return resp.StatusCode, buf.Bytes(), nil
}
