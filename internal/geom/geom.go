// Package geom provides the integer 3D geometry primitives used throughout
// the TQEC compression flow: lattice points, axis-aligned boxes, axis
// directions, rectilinear segments and paths.
//
// The coordinate convention follows the paper: the x axis is the time axis
// (time flows toward +x), y is the width axis, and z is the height axis.
// A TQEC geometric description occupies a finite box of unit cells; two
// disjoint defect structures must be separated by at least one unit, which
// is modelled by treating occupied cells as blocking and requiring paths to
// use distinct cells.
package geom

import "fmt"

// Axis identifies one of the three lattice axes.
type Axis int

// The three lattice axes. X is the time axis in the paper's convention.
const (
	AxisX Axis = iota
	AxisY
	AxisZ
)

// String returns "x", "y" or "z".
func (a Axis) String() string {
	switch a {
	case AxisX:
		return "x"
	case AxisY:
		return "y"
	case AxisZ:
		return "z"
	}
	return fmt.Sprintf("Axis(%d)", int(a))
}

// Point is a point on the integer lattice.
type Point struct {
	X, Y, Z int
}

// Pt is shorthand for Point{x, y, z}.
func Pt(x, y, z int) Point { return Point{x, y, z} }

// Add returns p+q componentwise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y, p.Z + q.Z} }

// Sub returns p−q componentwise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y, p.Z - q.Z} }

// Scale returns p scaled by k.
func (p Point) Scale(k int) Point { return Point{p.X * k, p.Y * k, p.Z * k} }

// Axis returns the coordinate of p along axis a.
func (p Point) Axis(a Axis) int {
	switch a {
	case AxisX:
		return p.X
	case AxisY:
		return p.Y
	default:
		return p.Z
	}
}

// WithAxis returns a copy of p with the coordinate along a replaced by v.
func (p Point) WithAxis(a Axis, v int) Point {
	switch a {
	case AxisX:
		p.X = v
	case AxisY:
		p.Y = v
	default:
		p.Z = v
	}
	return p
}

// Manhattan returns the L1 distance between p and q.
func (p Point) Manhattan(q Point) int {
	return abs(p.X-q.X) + abs(p.Y-q.Y) + abs(p.Z-q.Z)
}

// MaxPoint returns the componentwise maximum of p and q.
func MaxPoint(p, q Point) Point {
	return Point{max(p.X, q.X), max(p.Y, q.Y), max(p.Z, q.Z)}
}

// MinPoint returns the componentwise minimum of p and q.
func MinPoint(p, q Point) Point {
	return Point{min(p.X, q.X), min(p.Y, q.Y), min(p.Z, q.Z)}
}

// String formats the point as "(x,y,z)".
func (p Point) String() string { return fmt.Sprintf("(%d,%d,%d)", p.X, p.Y, p.Z) }

// Dir is one of the six axis-aligned unit steps (or the zero step).
type Dir struct {
	DX, DY, DZ int
}

// The six axis-aligned unit directions.
var (
	DirPosX = Dir{1, 0, 0}
	DirNegX = Dir{-1, 0, 0}
	DirPosY = Dir{0, 1, 0}
	DirNegY = Dir{0, -1, 0}
	DirPosZ = Dir{0, 0, 1}
	DirNegZ = Dir{0, 0, -1}
)

// Dirs6 lists the six axis-aligned unit directions in a fixed order.
var Dirs6 = []Dir{DirPosX, DirNegX, DirPosY, DirNegY, DirPosZ, DirNegZ}

// Step returns p moved one unit along d.
func (p Point) Step(d Dir) Point { return Point{p.X + d.DX, p.Y + d.DY, p.Z + d.DZ} }

// Reverse returns the opposite direction.
func (d Dir) Reverse() Dir { return Dir{-d.DX, -d.DY, -d.DZ} }

// Box is an axis-aligned box of lattice cells. Min is inclusive and Max is
// exclusive, so the box spans cells with Min.X ≤ x < Max.X and likewise for
// y and z. The zero Box is empty.
type Box struct {
	Min, Max Point
}

// NewBox returns the box spanning [x0,x1)×[y0,y1)×[z0,z1). It normalizes
// the corners so Min ≤ Max on every axis.
func NewBox(x0, y0, z0, x1, y1, z1 int) Box {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	if z0 > z1 {
		z0, z1 = z1, z0
	}
	return Box{Point{x0, y0, z0}, Point{x1, y1, z1}}
}

// BoxAt returns a box with minimum corner at p and the given sizes.
func BoxAt(p Point, sx, sy, sz int) Box {
	return Box{p, Point{p.X + sx, p.Y + sy, p.Z + sz}}
}

// CellBox returns the 1×1×1 box holding the single cell p.
func CellBox(p Point) Box { return BoxAt(p, 1, 1, 1) }

// Dx returns the box extent along x.
func (b Box) Dx() int { return b.Max.X - b.Min.X }

// Dy returns the box extent along y.
func (b Box) Dy() int { return b.Max.Y - b.Min.Y }

// Dz returns the box extent along z.
func (b Box) Dz() int { return b.Max.Z - b.Min.Z }

// Size returns the extents of b along all three axes.
func (b Box) Size() Point { return b.Max.Sub(b.Min) }

// Volume returns the number of cells in b (#x × #y × #z in the paper's
// volume convention).
func (b Box) Volume() int {
	if b.Empty() {
		return 0
	}
	return b.Dx() * b.Dy() * b.Dz()
}

// Empty reports whether b contains no cells.
func (b Box) Empty() bool {
	return b.Max.X <= b.Min.X || b.Max.Y <= b.Min.Y || b.Max.Z <= b.Min.Z
}

// Contains reports whether cell p lies inside b.
func (b Box) Contains(p Point) bool {
	return p.X >= b.Min.X && p.X < b.Max.X &&
		p.Y >= b.Min.Y && p.Y < b.Max.Y &&
		p.Z >= b.Min.Z && p.Z < b.Max.Z
}

// ContainsBox reports whether o lies entirely inside b.
func (b Box) ContainsBox(o Box) bool {
	if o.Empty() {
		return true
	}
	return o.Min.X >= b.Min.X && o.Max.X <= b.Max.X &&
		o.Min.Y >= b.Min.Y && o.Max.Y <= b.Max.Y &&
		o.Min.Z >= b.Min.Z && o.Max.Z <= b.Max.Z
}

// Intersects reports whether b and o share at least one cell.
func (b Box) Intersects(o Box) bool {
	if b.Empty() || o.Empty() {
		return false
	}
	return b.Min.X < o.Max.X && o.Min.X < b.Max.X &&
		b.Min.Y < o.Max.Y && o.Min.Y < b.Max.Y &&
		b.Min.Z < o.Max.Z && o.Min.Z < b.Max.Z
}

// Intersect returns the overlap of b and o (possibly empty).
func (b Box) Intersect(o Box) Box {
	r := Box{
		Point{max(b.Min.X, o.Min.X), max(b.Min.Y, o.Min.Y), max(b.Min.Z, o.Min.Z)},
		Point{min(b.Max.X, o.Max.X), min(b.Max.Y, o.Max.Y), min(b.Max.Z, o.Max.Z)},
	}
	if r.Empty() {
		return Box{}
	}
	return r
}

// Union returns the smallest box containing both b and o.
func (b Box) Union(o Box) Box {
	if b.Empty() {
		return o
	}
	if o.Empty() {
		return b
	}
	return Box{
		Point{min(b.Min.X, o.Min.X), min(b.Min.Y, o.Min.Y), min(b.Min.Z, o.Min.Z)},
		Point{max(b.Max.X, o.Max.X), max(b.Max.Y, o.Max.Y), max(b.Max.Z, o.Max.Z)},
	}
}

// UnionPoint returns the smallest box containing b and cell p.
func (b Box) UnionPoint(p Point) Box { return b.Union(CellBox(p)) }

// Expand grows b by k cells on every face (shrinks for negative k); the
// result is normalized to the empty box if it collapses.
func (b Box) Expand(k int) Box {
	if b.Empty() {
		return b
	}
	r := Box{
		Point{b.Min.X - k, b.Min.Y - k, b.Min.Z - k},
		Point{b.Max.X + k, b.Max.Y + k, b.Max.Z + k},
	}
	if r.Empty() {
		return Box{}
	}
	return r
}

// Translate returns b shifted by d.
func (b Box) Translate(d Point) Box {
	if b.Empty() {
		return b
	}
	return Box{b.Min.Add(d), b.Max.Add(d)}
}

// Center returns the (floored) center cell of b.
func (b Box) Center() Point {
	return Point{
		(b.Min.X + b.Max.X - 1) / 2,
		(b.Min.Y + b.Max.Y - 1) / 2,
		(b.Min.Z + b.Max.Z - 1) / 2,
	}
}

// String formats the box as "[min..max)".
func (b Box) String() string { return fmt.Sprintf("[%v..%v)", b.Min, b.Max) }

// BoundingBox returns the smallest box containing every given box.
func BoundingBox(boxes []Box) Box {
	var r Box
	for _, b := range boxes {
		r = r.Union(b)
	}
	return r
}

// Segment is an axis-aligned lattice segment from A to B inclusive.
// A and B must differ along at most one axis.
type Segment struct {
	A, B Point
}

// Valid reports whether the segment is axis-aligned.
func (s Segment) Valid() bool {
	n := 0
	if s.A.X != s.B.X {
		n++
	}
	if s.A.Y != s.B.Y {
		n++
	}
	if s.A.Z != s.B.Z {
		n++
	}
	return n <= 1
}

// Len returns the number of cells covered by the segment (≥1 when valid).
func (s Segment) Len() int { return s.A.Manhattan(s.B) + 1 }

// Cells returns every lattice cell covered by the segment, from A to B.
func (s Segment) Cells() []Point {
	n := s.Len()
	out := make([]Point, 0, n)
	d := Dir{sign(s.B.X - s.A.X), sign(s.B.Y - s.A.Y), sign(s.B.Z - s.A.Z)}
	p := s.A
	for {
		out = append(out, p)
		if p == s.B {
			break
		}
		p = p.Step(d)
	}
	return out
}

// Bounds returns the bounding box of the segment.
func (s Segment) Bounds() Box {
	return CellBox(s.A).UnionPoint(s.B)
}

// Path is a rectilinear lattice path: a sequence of adjacent cells.
type Path []Point

// Len returns the number of cells on the path.
func (p Path) Len() int { return len(p) }

// Valid reports whether consecutive cells are lattice neighbors.
func (p Path) Valid() bool {
	for i := 1; i < len(p); i++ {
		if p[i].Manhattan(p[i-1]) != 1 {
			return false
		}
	}
	return true
}

// Bounds returns the bounding box of the path.
func (p Path) Bounds() Box {
	var b Box
	for _, q := range p {
		b = b.UnionPoint(q)
	}
	return b
}

// Reverse reverses the path in place and returns it.
func (p Path) Reverse() Path {
	for i, j := 0, len(p)-1; i < j; i, j = i+1, j-1 {
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Segments compresses the path into maximal axis-aligned segments.
func (p Path) Segments() []Segment {
	if len(p) == 0 {
		return nil
	}
	var segs []Segment
	start := p[0]
	var cur Dir
	have := false
	for i := 1; i < len(p); i++ {
		d := Dir{p[i].X - p[i-1].X, p[i].Y - p[i-1].Y, p[i].Z - p[i-1].Z}
		if have && d != cur {
			segs = append(segs, Segment{start, p[i-1]})
			start = p[i-1]
		}
		cur, have = d, true
	}
	segs = append(segs, Segment{start, p[len(p)-1]})
	return segs
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func sign(v int) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	}
	return 0
}
