package server

import (
	"sync"
	"testing"
	"time"

	"repro/internal/ccache"
)

// fakeClock is a manually advanced clock for registry TTL tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestRegistry(t *testing.T, max int, ttl time.Duration) (*jobRegistry, *fakeClock) {
	t.Helper()
	r, err := newJobRegistry(max, ttl)
	if err != nil {
		t.Fatal(err)
	}
	clk := &fakeClock{t: time.Unix(1000, 0)}
	r.now = clk.Now
	return r, clk
}

// TestJobTTLEviction is the regression for unbounded async-job retention:
// finished jobs past the TTL must become unobservable and count as
// evictions, while unfinished jobs are never TTL-evicted.
func TestJobTTLEviction(t *testing.T) {
	r, clk := newTestRegistry(t, 100, time.Minute)

	done := r.add("k1")
	done.finish([]byte(`{}`), ccache.Miss, nil)
	pending := r.add("k2")

	// Within the TTL both jobs are pollable.
	clk.Advance(30 * time.Second)
	if _, ok := r.get(done.id); !ok {
		t.Fatal("finished job evicted before its TTL")
	}

	// Past the TTL the finished job is gone; the pending one survives.
	clk.Advance(time.Minute)
	if _, ok := r.get(done.id); ok {
		t.Fatal("finished job still pollable after its TTL")
	}
	if _, ok := r.get(pending.id); !ok {
		t.Fatal("unfinished job was TTL-evicted")
	}
	if n := r.evictions(); n != 1 {
		t.Fatalf("evictions = %d, want 1", n)
	}

	// A job finishing after the sweep starts a fresh TTL window.
	pending.finish(nil, ccache.Miss, &apiError{Status: 500, Body: ErrorBody{Message: "boom"}})
	clk.Advance(30 * time.Second)
	if _, ok := r.get(pending.id); !ok {
		t.Fatal("freshly finished job evicted early")
	}
	clk.Advance(time.Minute)
	if _, ok := r.get(pending.id); ok {
		t.Fatal("failed job still pollable after its TTL")
	}
	if n := r.evictions(); n != 2 {
		t.Fatalf("evictions = %d, want 2", n)
	}
}

// TestJobCapEviction checks max-entries eviction: exceeding the cap drops
// the oldest finished jobs first and never touches unfinished ones, even
// when that leaves the registry temporarily over its cap.
func TestJobCapEviction(t *testing.T) {
	r, _ := newTestRegistry(t, 2, -1) // TTL disabled

	j1 := r.add("k1")
	j1.finish(nil, ccache.Hit, nil)
	j2 := r.add("k2")
	j2.finish(nil, ccache.Hit, nil)
	j3 := r.add("k3")

	if _, ok := r.get(j1.id); ok {
		t.Fatal("oldest finished job not evicted at the cap")
	}
	if _, ok := r.get(j2.id); !ok {
		t.Fatal("newer finished job evicted too eagerly")
	}
	if _, ok := r.get(j3.id); !ok {
		t.Fatal("new job missing")
	}
	if n := r.evictions(); n != 1 {
		t.Fatalf("evictions = %d, want 1", n)
	}

	// Unfinished jobs are never evicted: the registry may exceed its cap.
	j4 := r.add("k4")
	j5 := r.add("k5")
	for _, j := range []*job{j3, j4, j5} {
		if _, ok := r.get(j.id); !ok {
			t.Fatalf("unfinished job %s evicted", j.id)
		}
	}
}

// TestJobEvictionsSurfacedInMetrics checks the /v1/metrics plumbing: job
// evictions appear in the snapshot's jobs counters.
func TestJobEvictionsSurfacedInMetrics(t *testing.T) {
	s, err := New(Config{MaxJobs: 1, JobTTL: -1})
	if err != nil {
		t.Fatal(err)
	}
	j1 := s.jobs.add("k1")
	j1.finish([]byte(`{}`), ccache.Hit, nil)
	s.jobs.add("k2")

	snap := s.snapshot()
	if snap.Jobs.Evicted != 1 {
		t.Fatalf("snapshot.Jobs.Evicted = %d, want 1", snap.Jobs.Evicted)
	}
}
