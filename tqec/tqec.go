// Package tqec is the public API of the bridge-based TQEC circuit
// compressor: it reproduces the automated space-time-volume optimization
// flow of Tseng, Hsu, Lin and Chang (DAC'21 / TCAD), turning an arbitrary
// reversible or quantum circuit into a compacted 3D geometric description.
//
// The pipeline (Fig. 11 of the paper):
//
//	gate decomposition → ICM conversion → canonical geometric description
//	→ modularization → iterative bridging → super-module clustering
//	→ time-ordering-aware 2.5D placement (SA) → friend-net-aware routing.
//
// Compile runs the whole flow and returns every intermediate artifact plus
// the final dimensions, volume and per-stage runtime breakdown; the
// Options toggles reproduce the paper's ablations (bridging on/off for
// Table V, primal-group clustering on/off for Table III).
package tqec

import (
	"fmt"

	"repro/internal/bridge"
	"repro/internal/canonical"
	"repro/internal/cluster"
	"repro/internal/decompose"
	"repro/internal/distill"
	"repro/internal/icm"
	"repro/internal/metrics"
	"repro/internal/modular"
	"repro/internal/place"
	"repro/internal/qc"
	"repro/internal/route"
)

// Options configures a compilation.
type Options struct {
	// Bridging enables the iterative bridging stage (disable to
	// reproduce the paper's "w/o bridging" ablation, Table V).
	Bridging bool
	// PrimalGroups enables primal-group super-modules (disable to
	// reproduce the conference version [36], Table III).
	PrimalGroups bool
	// MaxGroupSize caps primal-group membership.
	MaxGroupSize int
	// NoBoxes skips distillation-box attachment: injections are treated
	// as raw state injections (used when compressing a distillation
	// circuit itself).
	NoBoxes bool
	// PrimalGap controls primal bridging, an extension beyond the paper:
	// penetrations of one line within this many canonical slots share a
	// module (fusing stretches of the primal loop across idle slots).
	// 0 or 1 reproduces the paper's dual-only bridging.
	PrimalGap int
	// Place configures the SA placement engine.
	Place place.Options
	// Route configures the dual-defect net router.
	Route route.Options
}

// DefaultOptions returns the journal-version flow with the paper's SA
// parameterization (2000 iterations).
func DefaultOptions() Options {
	return Options{
		Bridging:     true,
		PrimalGroups: true,
		MaxGroupSize: 6,
		Place:        place.DefaultOptions(),
		Route:        route.DefaultOptions(),
	}
}

// FastOptions returns a reduced-effort configuration suitable for tests
// and quick exploration (a few thousand SA moves instead of the automatic
// 200-per-node budget).
func FastOptions() Options {
	o := DefaultOptions()
	o.Place.Iterations = 5000
	return o
}

// Result carries every artifact of a compilation.
type Result struct {
	// Input and intermediate representations.
	Circuit    *qc.Circuit
	Decomposed *qc.Circuit
	ICM        *icm.Circuit
	Canonical  *canonical.Description
	Netlist    *modular.Netlist
	Bridging   *bridge.Result
	Clustering *cluster.Clustering
	Placement  *place.Placement
	Routing    *route.Result

	// Dims are the final W/H/D extents of the compressed description
	// (module bodies, distillation boxes and routed nets).
	Dims metrics.Dims
	// Volume is the final space-time volume W×H×D. Distillation boxes
	// are integrated into the layout, so no separate box volume is added
	// (Table II's "Ours" column).
	Volume int
	// CanonicalVolume is the canonical-form volume of the same circuit.
	CanonicalVolume int
	// BoxVolume is the lower-bound distillation box volume (Vol_|Y⟩ +
	// Vol_|A⟩ of Table I), used when comparing against baselines that do
	// not integrate boxes.
	BoxVolume int
	// Breakdown is the per-stage wall-clock breakdown (Table VI).
	Breakdown *metrics.Breakdown
}

// CompressionRatio returns canonical volume over final volume (how many
// times smaller the compressed description is).
func (r *Result) CompressionRatio() float64 {
	if r.Volume == 0 {
		return 0
	}
	return float64(r.CanonicalVolume+r.BoxVolume) / float64(r.Volume)
}

// Compile runs the full compression flow on a reversible/quantum circuit.
func Compile(c *qc.Circuit, opts Options) (*Result, error) {
	res := &Result{Circuit: c, Breakdown: metrics.NewBreakdown()}
	var err error
	res.Breakdown.Time(metrics.StageOther, func() {
		var d *decompose.Result
		if d, err = decompose.Decompose(c); err != nil {
			return
		}
		res.Decomposed = d.Circuit
		res.ICM, err = icm.FromDecomposed(res.Decomposed)
	})
	if err != nil {
		return nil, fmt.Errorf("tqec: preprocess: %w", err)
	}
	return compileFrom(res, opts)
}

// CompileICM runs the flow on a circuit already in ICM form (e.g. the
// state distillation circuits of package distill, the workloads Fowler &
// Devitt compressed by hand).
func CompileICM(ic *icm.Circuit, opts Options) (*Result, error) {
	res := &Result{ICM: ic, Breakdown: metrics.NewBreakdown()}
	return compileFrom(res, opts)
}

// compileFrom continues the pipeline after res.ICM is set.
func compileFrom(res *Result, opts Options) (*Result, error) {
	var err error
	// Canonical description and modularization (charged to "other" per
	// Table VI).
	res.Breakdown.Time(metrics.StageOther, func() {
		if res.Canonical, err = canonical.Build(res.ICM); err != nil {
			return
		}
		gap := opts.PrimalGap
		if gap < 1 {
			gap = 1
		}
		res.Netlist, err = modular.BuildWithGap(res.Canonical, gap)
	})
	if err != nil {
		return nil, fmt.Errorf("tqec: preprocess: %w", err)
	}
	stats := res.ICM.Stats()
	res.CanonicalVolume = res.Canonical.Volume()
	res.BoxVolume = distill.BoxVolume(stats.NumY, stats.NumA)

	res.Breakdown.Time(metrics.StageBridging, func() {
		res.Bridging, err = bridge.Run(res.Netlist, opts.Bridging)
	})
	if err != nil {
		return nil, fmt.Errorf("tqec: bridging: %w", err)
	}

	res.Breakdown.Time(metrics.StagePlacement, func() {
		var cl *cluster.Clustering
		cl, err = cluster.Build(res.Netlist, cluster.Options{
			PrimalGroups: opts.PrimalGroups,
			MaxGroupSize: opts.MaxGroupSize,
			NoBoxes:      opts.NoBoxes,
		})
		if err != nil {
			return
		}
		res.Clustering = cl
		res.Placement, err = place.Run(cl, res.Bridging.Nets, opts.Place)
	})
	if err != nil {
		return nil, fmt.Errorf("tqec: placement: %w", err)
	}

	res.Breakdown.Time(metrics.StageRouting, func() {
		res.Routing, err = route.Run(res.Placement, opts.Route)
	})
	if err != nil {
		return nil, fmt.Errorf("tqec: routing: %w", err)
	}

	b := res.Routing.Bounds
	res.Dims = metrics.Dims{W: b.Dy(), H: b.Dz(), D: b.Dx()}
	res.Volume = res.Dims.Volume()
	return res, nil
}

// CompileBenchmark generates one of the paper's RevLib benchmarks and
// compiles it.
func CompileBenchmark(name string, opts Options) (*Result, error) {
	spec, err := qc.BenchmarkByName(name)
	if err != nil {
		return nil, err
	}
	return Compile(spec.Generate(), opts)
}

// Verify re-checks the result's structural guarantees: placement overlap
// freedom, time-ordering constraints, and routing legality. It is meant
// for tests and examples; Compile's stages already maintain these
// invariants.
func (r *Result) Verify() error {
	if err := r.Netlist.Validate(); err != nil {
		return err
	}
	if err := r.Placement.CheckNoOverlap(); err != nil {
		return err
	}
	if err := r.Placement.CheckTimeOrdering(); err != nil {
		return err
	}
	return route.Verify(r.Placement, r.Routing)
}
