// Package harness regenerates the paper's tables and figure-shaped
// results: it runs the full compression flow plus the baselines and
// ablations on the RevLib-scale benchmarks and prints paper-vs-measured
// rows (Tables I-VI, plus the Fig. 4/5 motivating example and the Fig. 19
// friend-net experiment).
package harness

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/baseline"
	"repro/internal/decompose"
	"repro/internal/distill"
	"repro/internal/icm"
	"repro/internal/metrics"
	"repro/internal/paper"
	"repro/internal/qc"
	"repro/internal/route"
	"repro/tqec"
)

// Config selects benchmarks and effort.
type Config struct {
	// Benchmarks lists benchmark names to run.
	Benchmarks []string
	// PlaceIterations overrides the SA move budget (0 = auto).
	PlaceIterations int
	// Seed drives all randomized stages.
	Seed int64
	// Ablations enables the no-bridging and conference-version runs
	// (needed by Tables III and V).
	Ablations bool
	// Timeout bounds each compilation (0 = none); expiry aborts the SA,
	// negotiation and bridging loops and surfaces tqec.ErrCanceled.
	Timeout time.Duration
	// Faults optionally injects failures into each compilation (panics,
	// forced stage errors, cancellation, per-net routing failures); used
	// by the fault-tolerance tests.
	Faults *FaultPlan
}

// DefaultConfig runs the two smallest benchmarks (the full suite takes the
// paper's workstation an hour; use Full for everything).
func DefaultConfig() Config {
	return Config{
		Benchmarks: []string{"4gt10-v1_81", "4gt4-v0_73"},
		Seed:       1,
		Ablations:  true,
	}
}

// FullConfig runs all eight benchmarks.
func FullConfig() Config {
	c := DefaultConfig()
	c.Benchmarks = nil
	for _, b := range qc.Benchmarks {
		c.Benchmarks = append(c.Benchmarks, b.Name)
	}
	return c
}

// Row carries every measured artifact for one benchmark.
type Row struct {
	Name string
	Spec qc.BenchmarkSpec

	ICMStats icm.Stats
	BoxVolY  int
	BoxVolA  int

	Canonical baseline.Layout
	Lin1D     baseline.Layout
	Lin2D     baseline.Layout
	Lin1DTime time.Duration
	Lin2DTime time.Duration

	Ours         *tqec.Result
	OursTime     time.Duration
	NoBridge     *tqec.Result
	NoBridgeTime time.Duration
	Conference   *tqec.Result
}

// Run executes the configured benchmarks.
func Run(cfg Config) ([]*Row, error) {
	//lint:ignore ctxflow sanctioned no-context entry point; RunContext is the threaded variant
	return RunContext(context.Background(), cfg)
}

// RunContext is Run with cooperative cancellation: ctx bounds every
// compilation (Config.Timeout still applies per benchmark, nested under
// ctx).
func RunContext(ctx context.Context, cfg Config) ([]*Row, error) {
	var rows []*Row
	for _, name := range cfg.Benchmarks {
		row, err := runOne(ctx, name, cfg)
		if err != nil {
			return nil, fmt.Errorf("harness: %s: %w", name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runOne(ctx context.Context, name string, cfg Config) (*Row, error) {
	spec, err := qc.BenchmarkByName(name)
	if err != nil {
		return nil, err
	}
	row := &Row{Name: name, Spec: spec}

	if cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
		defer cancel()
	}

	// Baselines share one ICM conversion.
	c, err := spec.Generate()
	if err != nil {
		return nil, err
	}
	d, err := decompose.Decompose(c)
	if err != nil {
		return nil, err
	}
	ic, err := icm.FromDecomposed(d.Circuit)
	if err != nil {
		return nil, err
	}
	row.ICMStats = ic.Stats()
	row.BoxVolY = row.ICMStats.NumY * distill.YBoxVolume
	row.BoxVolA = row.ICMStats.NumA * distill.ABoxVolume
	row.Canonical = baseline.Canonical(ic)
	start := time.Now()
	if row.Lin1D, err = baseline.Lin1D(ic); err != nil {
		return nil, err
	}
	row.Lin1DTime = time.Since(start)
	start = time.Now()
	if row.Lin2D, err = baseline.Lin2D(ic); err != nil {
		return nil, err
	}
	row.Lin2DTime = time.Since(start)

	opts := tqec.DefaultOptions()
	opts.Place.Iterations = cfg.PlaceIterations
	opts.Place.Seed = cfg.Seed
	if cfg.Faults != nil {
		ctx = cfg.Faults.Install(ctx, &opts)
	}
	start = time.Now()
	if row.Ours, err = tqec.CompileContext(ctx, c, opts); err != nil {
		return nil, err
	}
	row.OursTime = time.Since(start)

	if cfg.Ablations {
		nb := opts
		nb.Bridging = false
		// Unbridged netlists keep every dual segment and every net, so
		// they need more routing resource: a wider block margin and a
		// dedicated routing plane per tier face. This is the paper's own
		// explanation for Table V ("the required routing resource thus
		// increases, which causes larger space-time volume").
		nb.Place.Margin = 2
		nb.Place.TierPitch = 4
		start = time.Now()
		if row.NoBridge, err = tqec.CompileContext(ctx, c, nb); err != nil {
			return nil, err
		}
		row.NoBridgeTime = time.Since(start)

		conf := opts
		conf.PrimalGroups = false
		if row.Conference, err = tqec.CompileContext(ctx, c, conf); err != nil {
			return nil, err
		}
	}
	return row, nil
}

// boxVol is the benchmark's lower-bound distillation volume.
func (r *Row) boxVol() int { return r.BoxVolY + r.BoxVolA }

// printer is a sticky-error writer: the first failed write latches, later
// calls become no-ops, and the error surfaces once from the table function.
// It keeps the row formatting linear without discarding write errors.
type printer struct {
	w   io.Writer
	err error
}

func (p *printer) printf(format string, args ...any) {
	if p.err == nil {
		_, p.err = fmt.Fprintf(p.w, format, args...)
	}
}

// Table1 prints benchmark statistics (paper Table I) with the published
// values alongside.
func Table1(w io.Writer, rows []*Row) error {
	pr := &printer{w: w}
	pr.printf("Table I — benchmark statistics (measured | paper)\n")
	pr.printf("%-14s %9s %7s %9s %9s %7s %7s %9s %9s %9s %8s %8s\n",
		"benchmark", "#Qubits_o", "#Gates", "#Qubits_d", "#CNOTs", "#|Y>", "#|A>",
		"Vol_|Y>", "Vol_|A>", "#Modules", "#Nets", "#Nodes")
	for _, r := range rows {
		p, _ := paper.ByName(r.Name)
		pr.printf("%-14s %9d %7d %4d|%-4d %4d|%-4d %3d|%-3d %3d|%-3d %4d|%-4d %5d|%-6d %4d|%-5d %4d|%-5d %4d|%-4d\n",
			r.Name, r.Spec.Qubits, r.Spec.Gates(),
			r.ICMStats.Lines, p.QubitsD,
			r.ICMStats.CNOTs, p.CNOTs,
			r.ICMStats.NumY, p.NumY,
			r.ICMStats.NumA, p.NumA,
			r.BoxVolY, p.VolY,
			r.BoxVolA, p.VolA,
			len(r.Ours.Netlist.Modules), p.Modules,
			len(r.Ours.Bridging.Nets), p.Nets,
			r.Ours.Clustering.Stats().Nodes, p.Nodes)
	}
	return pr.err
}

// Table2 prints the space-time volume comparison (paper Table II):
// canonical, [22] 1D/2D (plus box volume) and ours.
func Table2(w io.Writer, rows []*Row) error {
	pr := &printer{w: w}
	pr.printf("Table II — space-time volume (ratio over ours; paper avg ratios: canonical %.2f, 1D %.2f, 2D %.2f)\n",
		paper.Headline.CanonicalRatio, paper.Headline.Lin1DRatio, paper.Headline.Lin2DRatio)
	pr.printf("%-14s %12s %7s %12s %7s %12s %7s %12s %10s\n",
		"benchmark", "canonical", "ratio", "[22]1D", "ratio", "[22]2D", "ratio", "ours", "time")
	var sc, s1, s2 float64
	for _, r := range rows {
		box := r.boxVol()
		can := r.Canonical.TotalVolume(box)
		l1 := r.Lin1D.TotalVolume(box)
		l2 := r.Lin2D.TotalVolume(box)
		ours := r.Ours.Volume
		sc += metrics.Ratio(can, ours)
		s1 += metrics.Ratio(l1, ours)
		s2 += metrics.Ratio(l2, ours)
		pr.printf("%-14s %12d %7.3f %12d %7.3f %12d %7.3f %12d %9.1fs\n",
			r.Name, can, metrics.Ratio(can, ours), l1, metrics.Ratio(l1, ours),
			l2, metrics.Ratio(l2, ours), ours, r.OursTime.Seconds())
	}
	n := float64(len(rows))
	pr.printf("%-14s %12s %7.3f %12s %7.3f %12s %7.3f %12s\n",
		"Avg. Ratio", "", sc/n, "", s1/n, "", s2/n, "1.000")
	return pr.err
}

// Table3 prints ours vs the conference version [36] (paper Table III).
func Table3(w io.Writer, rows []*Row) error {
	pr := &printer{w: w}
	pr.printf("Table III — conference version [36] vs ours (paper avg ratio %.3f)\n",
		paper.Headline.ConferenceRatio)
	pr.printf("%-14s %12s %7s %8s %12s %8s\n",
		"benchmark", "conference", "ratio", "nodes", "ours", "nodes")
	var sum float64
	cnt := 0
	for _, r := range rows {
		if r.Conference == nil {
			continue
		}
		ratio := metrics.Ratio(r.Conference.Volume, r.Ours.Volume)
		sum += ratio
		cnt++
		pr.printf("%-14s %12d %7.3f %8d %12d %8d\n",
			r.Name, r.Conference.Volume, ratio,
			r.Conference.Clustering.Stats().Nodes,
			r.Ours.Volume, r.Ours.Clustering.Stats().Nodes)
	}
	if cnt > 0 {
		pr.printf("%-14s %12s %7.3f\n", "Avg. Ratio", "", sum/float64(cnt))
	}
	return pr.err
}

// Table4 prints resulting dimensions (paper Table IV).
func Table4(w io.Writer, rows []*Row) error {
	pr := &printer{w: w}
	pr.printf("Table IV — dimensions W×H×D (measured; paper 'Ours' in parentheses)\n")
	pr.printf("%-14s %18s %18s %18s %18s %20s\n",
		"benchmark", "canonical", "[22]1D", "[22]2D", "ours", "paper ours")
	for _, r := range rows {
		p, _ := paper.ByName(r.Name)
		pr.printf("%-14s %18s %18s %18s %18s %20s\n",
			r.Name,
			fmt.Sprintf("%d×%d×%d", r.Canonical.W, r.Canonical.H, r.Canonical.D),
			fmt.Sprintf("%d×%d×%d", r.Lin1D.W, r.Lin1D.H, r.Lin1D.D),
			fmt.Sprintf("%d×%d×%d", r.Lin2D.W, r.Lin2D.H, r.Lin2D.D),
			fmt.Sprintf("%d×%d×%d", r.Ours.Dims.W, r.Ours.Dims.H, r.Ours.Dims.D),
			fmt.Sprintf("(%d×%d×%d)", p.OursW, p.OursH, p.OursD))
	}
	return pr.err
}

// Table5 prints the bridging ablation (paper Table V).
func Table5(w io.Writer, rows []*Row) error {
	pr := &printer{w: w}
	pr.printf("Table V — w/o vs w/ iterative bridging (paper avg: vol ×%.3f, time ×%.3f)\n",
		paper.Headline.NoBridgeVolRatio, paper.Headline.NoBridgeTimeRatio)
	pr.printf("%-14s %12s %7s %9s %7s %12s %9s\n",
		"benchmark", "w/o vol", "ratio", "w/o time", "ratio", "w/ vol", "w/ time")
	var sv, st float64
	cnt := 0
	for _, r := range rows {
		if r.NoBridge == nil {
			continue
		}
		rv := metrics.Ratio(r.NoBridge.Volume, r.Ours.Volume)
		rt := r.NoBridgeTime.Seconds() / r.OursTime.Seconds()
		sv += rv
		st += rt
		cnt++
		pr.printf("%-14s %12d %7.3f %8.1fs %7.3f %12d %8.1fs\n",
			r.Name, r.NoBridge.Volume, rv, r.NoBridgeTime.Seconds(), rt,
			r.Ours.Volume, r.OursTime.Seconds())
	}
	if cnt > 0 {
		pr.printf("%-14s %12s %7.3f %9s %7.3f\n", "Avg. Ratio", "", sv/float64(cnt), "", st/float64(cnt))
	}
	return pr.err
}

// Table6 prints the runtime breakdown (paper Table VI).
func Table6(w io.Writer, rows []*Row) error {
	pr := &printer{w: w}
	pr.printf("Table VI — runtime breakdown (paper avg: bridging %.1f%%, placement %.1f%%, routing %.1f%%, other %.1f%%)\n",
		paper.Headline.BridgingShare, paper.Headline.PlacementShare,
		paper.Headline.RoutingShare, paper.Headline.OtherShare)
	pr.printf("%-14s %10s %7s %10s %7s %10s %7s %10s %7s %9s\n",
		"benchmark", "bridging", "%", "placement", "%", "routing", "%", "other", "%", "total")
	for _, r := range rows {
		b := r.Ours.Breakdown
		pr.printf("%-14s %9.2fs %6.2f%% %9.2fs %6.2f%% %9.2fs %6.2f%% %9.3fs %6.2f%% %8.2fs\n",
			r.Name,
			b.Get(metrics.StageBridging).Seconds(), b.Ratio(metrics.StageBridging),
			b.Get(metrics.StagePlacement).Seconds(), b.Ratio(metrics.StagePlacement),
			b.Get(metrics.StageRouting).Seconds(), b.Ratio(metrics.StageRouting),
			b.Get(metrics.StageOther).Seconds(), b.Ratio(metrics.StageOther),
			b.Total().Seconds())
	}
	for _, r := range rows {
		total := len(r.Ours.Bridging.Nets)
		if total == 0 {
			continue
		}
		pr.printf("%-14s first-pass routing: %d%% of nets (paper band %d-%d%%)\n",
			r.Name, 100*r.Ours.Routing.FirstPassRouted/total,
			paper.Headline.FirstPassLo, paper.Headline.FirstPassHi)
	}
	return pr.err
}

// FigMotivation reproduces the Fig. 4/5 narrative: the three-CNOT circuit
// whose canonical volume is 54, compressed by the flow.
func FigMotivation(w io.Writer, seed int64) error {
	c := qc.New("fig4", 3)
	c.Append(qc.CNOT(0, 1), qc.CNOT(1, 2), qc.CNOT(0, 2))
	opts := tqec.DefaultOptions()
	opts.Place.Seed = seed
	res, err := tqec.Compile(c, opts)
	if err != nil {
		return err
	}
	pr := &printer{w: w}
	pr.printf("Fig. 4/5 — motivating 3-CNOT circuit\n")
	pr.printf("canonical volume: %d (paper: 54)\n", res.CanonicalVolume)
	pr.printf("compressed dims:  %s (paper: bridge-compressed 18 = 3×3×2 for its tighter module geometry)\n", res.Dims)
	pr.printf("bridge merges:    %d, nets %d, unrouted %d\n",
		res.Bridging.Merges, len(res.Bridging.Nets), len(res.Routing.Failed))
	return pr.err
}

// FigBoxes prints the distillation box volumes (Figs. 6/7).
func FigBoxes(w io.Writer) error {
	pr := &printer{w: w}
	pr.printf("Fig. 6/7 — state distillation boxes\n")
	pr.printf("|Y> box: %d×%d×%d = %d (paper: 3×3×2 = 18); ICM circuit: %d lines, %d CNOTs\n",
		distill.YBoxSize.X, distill.YBoxSize.Y, distill.YBoxSize.Z, distill.YBoxVolume,
		len(distill.YCircuit().Lines), len(distill.YCircuit().CNOTs))
	pr.printf("|A> box: %d×%d×%d = %d (paper: 16×6×2 = 192); ICM circuit: %d lines, %d CNOTs\n",
		distill.ABoxSize.X, distill.ABoxSize.Y, distill.ABoxSize.Z, distill.ABoxVolume,
		len(distill.ACircuit().Lines), len(distill.ACircuit().CNOTs))
	return pr.err
}

// FigFriendNet measures the friend-net routing effect (Fig. 19): the same
// placement routed with and without friend-net awareness.
func FigFriendNet(w io.Writer, name string, seed int64) error {
	spec, err := qc.BenchmarkByName(name)
	if err != nil {
		return err
	}
	opts := tqec.DefaultOptions()
	opts.Place.Seed = seed
	c, err := spec.Generate()
	if err != nil {
		return err
	}
	res, err := tqec.Compile(c, opts)
	if err != nil {
		return err
	}
	// Re-route the identical placement without friend nets.
	plain := route.DefaultOptions()
	plain.FriendNets = false
	res2, err := route.Run(res.Placement, plain)
	if err != nil {
		return err
	}
	pr := &printer{w: w}
	pr.printf("Fig. 19 — friend-net-aware routing on %s (identical placement)\n", name)
	pr.printf("friend-aware: %d/%d routed, %d wire cells, bounds %v\n",
		len(res.Routing.Routes), len(res.Bridging.Nets), res.Routing.WireCells(), res.Routing.Bounds.Size())
	pr.printf("plain:        %d/%d routed, %d wire cells, bounds %v\n",
		len(res2.Routes), len(res.Bridging.Nets), res2.WireCells(), res2.Bounds.Size())
	return pr.err
}

// Summary prints the headline reproduction result.
func Summary(w io.Writer, rows []*Row) error {
	var sc, s2 float64
	for _, r := range rows {
		box := r.boxVol()
		sc += metrics.Ratio(r.Canonical.TotalVolume(box), r.Ours.Volume)
		s2 += metrics.Ratio(r.Lin2D.TotalVolume(box), r.Ours.Volume)
	}
	n := float64(len(rows))
	pr := &printer{w: w}
	pr.printf("Headline: avg volume reduction vs canonical %.0f%% (paper 91%%), vs [22]-2D %.0f%% (paper 84%%)\n",
		100*(1-n/sc), 100*(1-n/s2))
	return pr.err
}
