// Package distill models the |Y⟩ and |A⟩ state distillation circuits and
// their optimized TQEC boxes (Section II-A of the paper).
//
// Following the paper, the geometric flow treats a distillation circuit as
// an opaque box reserved in the layout: the |Y⟩ box occupies 3×3×2 = 18
// cells and the |A⟩ box 16×6×2 = 192 cells — the manually optimized volumes
// of Fowler & Devitt that the paper adopts (Figs. 6 and 7). The package
// also provides the distillation circuits in ICM form so the full flow can
// be exercised end-to-end on them (the |Y⟩ circuit is the scenario Fowler &
// Devitt compressed by hand, which examples/distillation automates).
package distill

import (
	"repro/internal/geom"
	"repro/internal/icm"
)

// Box dimensions of the optimized distillation circuits used by the paper
// ([20]): |Y⟩ is 3×3×2 and |A⟩ is 16×6×2, with the x axis being time.
var (
	// YBoxSize is the (time, width, height) extent of a |Y⟩ box.
	YBoxSize = geom.Pt(3, 3, 2)
	// ABoxSize is the (time, width, height) extent of an |A⟩ box.
	ABoxSize = geom.Pt(16, 6, 2)
)

// YBoxVolume is the space-time volume of one |Y⟩ state distillation box.
const YBoxVolume = 18

// ABoxVolume is the space-time volume of one |A⟩ state distillation box.
const ABoxVolume = 192

// BoxVolume returns the total lower-bound distillation volume for a circuit
// consuming nY |Y⟩ ancillas and nA |A⟩ ancillas (the paper's Vol_|Y⟩ +
// Vol_|A⟩ columns of Table I).
func BoxVolume(nY, nA int) int {
	return nY*YBoxVolume + nA*ABoxVolume
}

// YCircuit returns the |Y⟩ state distillation circuit in ICM form
// (Fig. 6(a)): the Steane-code-based 7-to-1 distillation. Seven noisy |Y⟩
// states are injected, verified against the code stabilizers via CNOTs and
// X-basis measurements, and one high-fidelity |Y⟩ is produced on the
// output line.
func YCircuit() *icm.Circuit {
	c := &icm.Circuit{Name: "distill-Y", TSL: map[int][]int{}, NumLogical: 1}
	// Output line carrying the distilled state.
	out := addLine(c, icm.InitZero, icm.MeasOut, "yout", 0)
	// Seven noisy |Y⟩ injections.
	inj := make([]int, 7)
	for i := range inj {
		inj[i] = addLine(c, icm.InjectY, icm.MeasX, "", -1)
	}
	// Steane [[7,1,3]] encoding CNOT pattern: each of the three X
	// stabilizer generators couples four injected qubits; the decoded
	// qubit couples to the output.
	stabilizers := [][4]int{
		{0, 2, 4, 6},
		{1, 2, 5, 6},
		{3, 4, 5, 6},
	}
	for _, s := range stabilizers {
		for i := 1; i < 4; i++ {
			addCNOT(c, inj[s[0]], inj[s[i]])
		}
	}
	// Decode onto the output line.
	addCNOT(c, inj[6], out)
	addCNOT(c, inj[5], out)
	addCNOT(c, inj[3], out)
	return c
}

// ACircuit returns the |A⟩ state distillation circuit in ICM form
// (Fig. 7(a)): the Reed-Muller-code-based 15-to-1 distillation. Fifteen
// noisy |A⟩ states are injected and one high-fidelity |A⟩ is produced.
func ACircuit() *icm.Circuit {
	c := &icm.Circuit{Name: "distill-A", TSL: map[int][]int{}, NumLogical: 1}
	out := addLine(c, icm.InitZero, icm.MeasOut, "aout", 0)
	inj := make([]int, 15)
	for i := range inj {
		inj[i] = addLine(c, icm.InjectA, icm.MeasX, "", -1)
	}
	// [[15,1,3]] punctured Reed-Muller encoding: the four X stabilizer
	// generators follow the RM(1,4) pattern — qubit q (1-based) is in
	// generator g when bit g of q is set.
	for g := 0; g < 4; g++ {
		var members []int
		for q := 1; q <= 15; q++ {
			if q&(1<<g) != 0 {
				members = append(members, q-1)
			}
		}
		for i := 1; i < len(members); i++ {
			addCNOT(c, inj[members[0]], inj[members[i]])
		}
	}
	// Decode onto the output line from the weight-15 logical operator's
	// representative qubits.
	addCNOT(c, inj[14], out)
	addCNOT(c, inj[13], out)
	addCNOT(c, inj[11], out)
	addCNOT(c, inj[7], out)
	return c
}

func addLine(c *icm.Circuit, init icm.InitKind, meas icm.MeasKind, label string, qubit int) int {
	id := len(c.Lines)
	c.Lines = append(c.Lines, icm.Line{ID: id, Init: init, Meas: meas, Label: label, Qubit: qubit})
	return id
}

func addCNOT(c *icm.Circuit, control, target int) {
	c.CNOTs = append(c.CNOTs, icm.CNOT{ID: len(c.CNOTs), Control: control, Target: target})
}
