package check

import (
	"context"

	"repro/internal/qc"
)

// defaultShrinkProbes bounds predicate evaluations when the caller does
// not: each probe typically costs a full compile.
const defaultShrinkProbes = 64

// Shrink reduces a failing circuit toward a minimal one that still fails,
// for bug reports: it greedily deletes gate chunks (halving the chunk
// size down to single gates, the ddmin schedule) and then drops qubits no
// remaining gate touches. The failing predicate must return true for the
// input circuit's failure mode; maxProbes bounds how many candidate
// circuits are tried (values below 1 use a default budget). The input
// circuit is never mutated; the returned circuit always fails the
// predicate (in the worst case it is the input itself).
func Shrink(ctx context.Context, c *qc.Circuit, maxProbes int, failing func(context.Context, *qc.Circuit) bool) *qc.Circuit {
	if maxProbes < 1 {
		maxProbes = defaultShrinkProbes
	}
	best := c.Clone()
	probes := 0
	probe := func(cand *qc.Circuit) bool {
		if probes >= maxProbes || ctx.Err() != nil {
			return false
		}
		probes++
		return failing(ctx, cand)
	}

	for chunk := (len(best.Gates) + 1) / 2; chunk >= 1; chunk /= 2 {
		// Keep at least one gate: an empty circuit is no reproduction.
		for start := 0; start+chunk <= len(best.Gates) && len(best.Gates)-chunk >= 1; {
			cand := best.Clone()
			cand.Gates = append(append([]qc.Gate(nil), best.Gates[:start]...), best.Gates[start+chunk:]...)
			if probe(cand) {
				best = cand // deletion kept the failure; retry same offset
			} else {
				start += chunk
			}
		}
	}
	if cand := dropIdleQubits(best); len(cand.Qubits) < len(best.Qubits) && probe(cand) {
		best = cand
	}
	return best
}

// dropIdleQubits returns a copy of the circuit with qubits no gate
// touches removed and all gate operands renumbered accordingly.
func dropIdleQubits(c *qc.Circuit) *qc.Circuit {
	used := make([]bool, len(c.Qubits))
	for _, g := range c.Gates {
		for _, q := range g.Qubits() {
			if q >= 0 && q < len(used) {
				used[q] = true
			}
		}
	}
	remap := make([]int, len(c.Qubits))
	out := c.Clone()
	out.Qubits = nil
	for q, name := range c.Qubits {
		remap[q] = len(out.Qubits)
		if used[q] {
			out.Qubits = append(out.Qubits, name)
		}
	}
	for gi := range out.Gates {
		g := &out.Gates[gi]
		g.Controls = append([]int(nil), g.Controls...)
		g.Targets = append([]int(nil), g.Targets...)
		for i, q := range g.Controls {
			g.Controls[i] = remap[q]
		}
		for i, q := range g.Targets {
			g.Targets[i] = remap[q]
		}
	}
	return out
}
