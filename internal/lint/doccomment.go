package lint

import (
	"go/ast"
	"strings"
)

// DocComment is the docs gate: every exported declaration in a non-test
// file must carry a doc comment, and every package must have a package
// comment. Exported means reachable API — methods on unexported types are
// exempt (they are not part of the package surface), as are test files.
// A doc comment on a grouped const/var/type block covers all of the
// block's specs, matching godoc's rendering.
var DocComment = &Analyzer{
	Name: "doccomment",
	Doc:  "exported declarations and packages carry doc comments (godoc completeness)",
	Run:  runDocComment,
}

func runDocComment(pass *Pass) {
	files := pass.SourceFiles()
	if len(files) == 0 {
		return
	}
	hasPkgDoc := false
	for _, f := range files {
		if !docEmpty(f.Doc) {
			hasPkgDoc = true
			break
		}
	}
	if !hasPkgDoc {
		pass.Reportf(files[0].Package, "package %s has no package comment", pass.Pkg.Name)
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkFuncDoc(pass, d)
			case *ast.GenDecl:
				checkGenDoc(pass, d)
			}
		}
	}
}

// docEmpty reports whether a comment group carries no prose.
func docEmpty(cg *ast.CommentGroup) bool {
	return cg == nil || strings.TrimSpace(cg.Text()) == ""
}

// checkFuncDoc flags exported functions and exported methods on exported
// receiver types that lack a doc comment.
func checkFuncDoc(pass *Pass, d *ast.FuncDecl) {
	if !d.Name.IsExported() {
		return
	}
	kind := "function"
	if d.Recv != nil {
		recv := receiverIdent(d.Recv)
		if recv == nil || !recv.IsExported() {
			return
		}
		kind = "method " + recv.Name + "."
	}
	if docEmpty(d.Doc) {
		if d.Recv != nil {
			pass.Reportf(d.Pos(), "exported %s%s has no doc comment", kind, d.Name.Name)
		} else {
			pass.Reportf(d.Pos(), "exported %s %s has no doc comment", kind, d.Name.Name)
		}
	}
}

// receiverIdent unwraps a method receiver to its base type identifier
// (through pointers and type-parameter instantiations).
func receiverIdent(recv *ast.FieldList) *ast.Ident {
	if recv == nil || len(recv.List) == 0 {
		return nil
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt
		default:
			return nil
		}
	}
}

// checkGenDoc flags exported const/var/type specs whose spec has no doc
// comment and whose enclosing block has none either.
func checkGenDoc(pass *Pass, d *ast.GenDecl) {
	blockDoc := !docEmpty(d.Doc)
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() || blockDoc || !docEmpty(s.Doc) {
				continue
			}
			pass.Reportf(s.Pos(), "exported type %s has no doc comment", s.Name.Name)
		case *ast.ValueSpec:
			// Trailing line comments (s.Comment) deliberately do not
			// count: the gate wants real doc comments above the decl.
			if blockDoc || !docEmpty(s.Doc) {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					pass.Reportf(s.Pos(), "exported %s %s has no doc comment", declKind(d), name.Name)
					break
				}
			}
		}
	}
}

// declKind names a GenDecl's keyword for findings.
func declKind(d *ast.GenDecl) string {
	return d.Tok.String()
}
